// Unit tests for the observability layer (src/obs/): metrics
// instruments and their JSON snapshot, ScopedTimer, the tracer's
// session/track/span machinery, and the JSON / Chrome-trace validator
// that backs `example_trace_lint`.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <thread>

#include "obs/json_check.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"

namespace nmdt::obs {
namespace {

// ---------------------------------------------------------------------
// Metrics instruments.

TEST(Metrics, CounterAddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, GaugeSetAndReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramTracksCountSumMinMax) {
  Histogram h;
  h.observe(2.0);
  h.observe(0.5);
  h.observe(8.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 10.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(Metrics, HistogramBucketsArePowerOfTwoBounds) {
  Histogram h;
  h.observe(1.0);   // <= 2^0  -> bucket kZero
  h.observe(3.0);   // <= 2^2  -> bucket kZero + 2
  h.observe(0.0);   // non-positive -> bucket 0
  const auto s = h.snapshot();
  EXPECT_EQ(s.buckets[Histogram::kZero], 1u);
  EXPECT_EQ(s.buckets[Histogram::kZero + 2], 1u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(Histogram::kZero), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(Histogram::kZero + 3), 8.0);
}

TEST(Metrics, HistogramBoundaryObservationsLandInExactlyOneBucket) {
  // Boundary cases of the log2 bucket function: 0 and negatives pin to
  // bucket 0; exact powers of two land ON their bound (observe uses
  // ceil(log2)); everything past 2^(kBuckets-1-kZero) clamps into the
  // last bucket instead of indexing out of range.
  Histogram h;
  h.observe(0.0);                                      // -> bucket 0
  h.observe(-3.5);                                     // -> bucket 0
  h.observe(1.0);                                      // == 2^0 -> kZero
  h.observe(2.0);                                      // == 2^1 -> kZero + 1
  h.observe(2.0 + 1e-9);                               // just over -> kZero + 2
  h.observe(Histogram::bucket_bound(Histogram::kBuckets - 1));  // last bound
  h.observe(1e18);                                     // beyond every bound
  h.observe(static_cast<double>(UINT64_MAX));          // clamps, not UB
  const auto s = h.snapshot();
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[Histogram::kZero], 1u);
  EXPECT_EQ(s.buckets[Histogram::kZero + 1], 1u);
  EXPECT_EQ(s.buckets[Histogram::kZero + 2], 1u);
  EXPECT_EQ(s.buckets[Histogram::kBuckets - 1], 3u);
  // Every observation landed in exactly one bucket (the invariant the
  // --metrics validator re-checks on every snapshot).
  u64 total = 0;
  for (u64 b : s.buckets) total += b;
  EXPECT_EQ(total, s.count);
  EXPECT_EQ(s.count, 8u);
}

TEST(Metrics, HistogramSubUnitObservationsUseNegativeExponentBuckets) {
  Histogram h;
  h.observe(0.5);      // == 2^-1 -> kZero - 1
  h.observe(1.0e-9);   // below 2^-20: clamps to bucket 0
  const auto s = h.snapshot();
  EXPECT_EQ(s.buckets[Histogram::kZero - 1], 1u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_DOUBLE_EQ(s.min, 1.0e-9);
}

TEST(Metrics, HistogramEmptySnapshotHasZeroMinMax) {
  Histogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  MetricsRegistry& reg = MetricsRegistry::global();
  Counter& a = reg.counter("obs_test.stable");
  Counter& b = reg.counter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  a.add(7);
  reg.reset();
  EXPECT_EQ(b.value(), 0);  // reset zeroes in place, reference survives
}

TEST(Metrics, RegistrySnapshotIsValidJson) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("obs_test.count\"quoted\"").add(3);
  reg.gauge("obs_test.gauge").set(1.5);
  reg.histogram("obs_test.hist").observe(4.0);
  std::ostringstream os;
  reg.write_json(os);
  std::string error;
  EXPECT_TRUE(json_is_valid(os.str(), &error)) << error;
  EXPECT_NE(os.str().find("obs_test.gauge"), std::string::npos);
}

TEST(Metrics, ScopedTimerObservesOnceIntoHistogram) {
  MetricsRegistry& reg = MetricsRegistry::global();
  Histogram& h = reg.histogram("obs_test.timer_ms");
  h.reset();
  {
    ScopedTimer t("obs_test.timer_ms");
    const double ms = t.stop();
    EXPECT_GE(ms, 0.0);
  }  // dtor after stop() must not double-observe
  EXPECT_EQ(h.snapshot().count, 1u);
  { ScopedTimer t(h); }
  EXPECT_EQ(h.snapshot().count, 2u);
}

// ---------------------------------------------------------------------
// Tracer sessions, tracks, spans.

TEST(Trace, NoSessionMeansDisabledSpans) {
  ASSERT_EQ(TraceSession::active(), nullptr);
  TraceSpan span("orphan");
  EXPECT_FALSE(span.enabled());
  span.arg("ignored", i64{1});  // must be a no-op, not a crash
}

TEST(Trace, SessionCollectsSpansInOrder) {
  TraceSession session;
  session.install();
  EXPECT_EQ(TraceSession::active(), &session);
  {
    TraceSpan outer("outer");
    outer.arg("n", i64{3});
    { NMDT_TRACE_SCOPE("inner"); }
  }
  session.uninstall();
  EXPECT_EQ(TraceSession::active(), nullptr);
  const auto events = session.events();
  ASSERT_EQ(events.size(), 2u);
  // Same track; inner closed first but "outer" opened first (seq order).
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[0].track, events[1].track);
  EXPECT_NE(events[0].args_json.find("\"n\":3"), std::string::npos);
}

TEST(Trace, SpansAfterUninstallAreDropped) {
  TraceSession session;
  session.install();
  auto span = std::make_unique<TraceSpan>("late");
  session.uninstall();
  span.reset();  // closes after uninstall: must be dropped
  EXPECT_TRUE(session.events().empty());
}

TEST(Trace, TrackDeriveIsAPureFunction) {
  const u64 a = TraceTrack::derive(0, "shard", 3);
  const u64 b = TraceTrack::derive(0, "shard", 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, TraceTrack::derive(0, "shard", 4));
  EXPECT_NE(a, TraceTrack::derive(1, "shard", 3));
  EXPECT_NE(a, TraceTrack::derive(0, "row", 3));
}

TEST(Trace, TrackGuardNestsAndRestores) {
  EXPECT_EQ(TraceTrack::current(), 0u);
  {
    TraceTrack outer("row", 1);
    const u64 outer_id = TraceTrack::current();
    EXPECT_EQ(outer_id, TraceTrack::derive(0, "row", 1));
    {
      TraceTrack inner("shard", 2);
      EXPECT_EQ(TraceTrack::current(), TraceTrack::derive(outer_id, "shard", 2));
    }
    EXPECT_EQ(TraceTrack::current(), outer_id);
  }
  EXPECT_EQ(TraceTrack::current(), 0u);
}

TEST(Trace, ExplicitParentTrackIgnoresThreadState) {
  const u64 parent = TraceTrack::derive(0, "suite_row", 5);
  u64 seen = 0;
  std::thread worker([&] {
    TraceTrack track(parent, "shard", 1);
    seen = TraceTrack::current();
  });
  worker.join();
  EXPECT_EQ(seen, TraceTrack::derive(parent, "shard", 1));
}

TEST(Trace, CrossThreadSpansMergeByTrack) {
  TraceSession session;
  session.install();
  {
    TraceSpan main_span("main");
    std::thread worker([&] {
      TraceTrack track(0, "worker", 1);
      NMDT_TRACE_SCOPE("work");
    });
    worker.join();
  }
  session.uninstall();
  const auto events = session.events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by (track, seq): track 0 ("main") first, the derived worker
  // lane after — regardless of which OS thread buffered what.
  EXPECT_EQ(events[0].name, "main");
  EXPECT_EQ(events[0].track, 0u);
  EXPECT_EQ(events[1].name, "work");
  EXPECT_EQ(events[1].track, TraceTrack::derive(0, "worker", 1));
}

TEST(Trace, ChromeExportPassesTheValidator) {
  TraceSession session;
  session.install();
  {
    TraceSpan span("export.me");
    span.arg("bytes", i64{128}).arg("label", "a \"quoted\" name").arg("frac", 0.5);
  }
  session.uninstall();
  std::ostringstream os;
  session.write_chrome_json(os);
  std::string error;
  TraceCheckReport report;
  EXPECT_TRUE(validate_chrome_trace(os.str(), &error, &report)) << error;
  EXPECT_EQ(report.complete_spans, 1u);
  EXPECT_GE(report.metadata, 1u);
  EXPECT_EQ(report.tracks, 1u);
}

TEST(Trace, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

// ---------------------------------------------------------------------
// JSON / trace-schema validator.

TEST(JsonCheck, AcceptsWellFormedDocuments) {
  std::string error;
  EXPECT_TRUE(json_is_valid("{}", &error)) << error;
  EXPECT_TRUE(json_is_valid("[1, -2.5e3, \"x\", true, false, null]", &error)) << error;
  EXPECT_TRUE(json_is_valid("{\"a\": {\"b\": [1, {\"c\": \"\\u00e9\"}]}}", &error))
      << error;
}

TEST(JsonCheck, RejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(json_is_valid("", &error));
  EXPECT_FALSE(json_is_valid("{", &error));
  EXPECT_FALSE(json_is_valid("{\"a\": 1,}", &error));
  EXPECT_FALSE(json_is_valid("[1 2]", &error));
  EXPECT_FALSE(json_is_valid("{\"a\": 1} trailing", &error));
  EXPECT_FALSE(json_is_valid("{'a': 1}", &error));
}

TEST(JsonCheck, RejectsNonTraceSchemas) {
  std::string error;
  EXPECT_FALSE(validate_chrome_trace("[]", &error));              // not an object
  EXPECT_FALSE(validate_chrome_trace("{}", &error));              // no traceEvents
  EXPECT_FALSE(validate_chrome_trace("{\"traceEvents\": 3}", &error));
  // A complete event without "dur" must fail.
  EXPECT_FALSE(validate_chrome_trace(
      "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"X\", \"ts\": 0, \"tid\": 1}]}",
      &error));
  // A well-formed complete event must pass.
  TraceCheckReport report;
  EXPECT_TRUE(validate_chrome_trace(
      "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"X\", \"ts\": 0, "
      "\"dur\": 2, \"pid\": 1, \"tid\": 1}]}",
      &error, &report))
      << error;
  EXPECT_EQ(report.complete_spans, 1u);
}

// ---------------------------------------------------------------------
// Metrics-snapshot validator (backs `trace_lint --metrics`).

TEST(MetricsCheck, RegistrySnapshotRoundTripsThroughValidator) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset();
  reg.counter("mcheck.count").add(7);
  reg.gauge("mcheck.gauge").set(-2.5);
  Histogram& h = reg.histogram("mcheck.hist");
  h.observe(0.0);
  h.observe(1.0);
  h.observe(1e18);
  std::ostringstream os;
  reg.write_json(os);

  std::string error;
  MetricsCheckReport report;
  ASSERT_TRUE(validate_metrics_json(os.str(), &error, &report)) << error;
  EXPECT_GE(report.counters, 1u);
  EXPECT_GE(report.gauges, 1u);
  EXPECT_GE(report.histograms, 1u);
}

TEST(MetricsCheck, RejectsMissingSectionsAndBrokenInvariants) {
  std::string error;
  EXPECT_FALSE(validate_metrics_json("[]", &error));  // not an object
  EXPECT_FALSE(validate_metrics_json("{\"counters\": {}}", &error));  // no gauges
  EXPECT_FALSE(validate_metrics_json(
      "{\"counters\": {\"c\": \"NaN\"}, \"gauges\": {}, \"histograms\": {}}",
      &error));  // non-numeric counter
  // Histogram whose bucket counts do not sum to `count`.
  EXPECT_FALSE(validate_metrics_json(
      "{\"counters\": {}, \"gauges\": {}, \"histograms\": {\"h\": "
      "{\"count\": 3, \"sum\": 1.0, \"min\": 0.0, \"max\": 1.0, \"mean\": 0.33, "
      "\"buckets\": [{\"le\": 1.0, \"count\": 1}]}}}",
      &error));
  EXPECT_NE(error.find("bucket"), std::string::npos) << error;
  // Buckets with non-ascending bounds.
  EXPECT_FALSE(validate_metrics_json(
      "{\"counters\": {}, \"gauges\": {}, \"histograms\": {\"h\": "
      "{\"count\": 2, \"sum\": 1.0, \"min\": 0.0, \"max\": 1.0, \"mean\": 0.5, "
      "\"buckets\": [{\"le\": 4.0, \"count\": 1}, {\"le\": 2.0, \"count\": 1}]}}}",
      &error));
  // The same document with ascending bounds and a correct sum passes.
  MetricsCheckReport report;
  EXPECT_TRUE(validate_metrics_json(
      "{\"counters\": {}, \"gauges\": {}, \"histograms\": {\"h\": "
      "{\"count\": 2, \"sum\": 1.0, \"min\": 0.0, \"max\": 1.0, \"mean\": 0.5, "
      "\"buckets\": [{\"le\": 2.0, \"count\": 1}, {\"le\": 4.0, \"count\": 1}]}}}",
      &error, &report))
      << error;
  EXPECT_EQ(report.histograms, 1u);
}

}  // namespace
}  // namespace nmdt::obs
