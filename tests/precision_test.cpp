// Mixed-precision value pipeline tests: ToleranceComparator edge cases
// (NaN/Inf, empty rows, the eps boundary), bf16 determinism across the
// jobs axis for every kernel, PlanCache precision keying, and the
// serialized value-width contract.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "core/executor.hpp"
#include "core/plan.hpp"
#include "formats/retype.hpp"
#include "formats/serialize.hpp"
#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "transform/comparator.hpp"
#include "util/error.hpp"
#include "util/precision.hpp"
#include "util/rng.hpp"

namespace nmdt {
namespace {

constexpr KernelKind kAllKernels[] = {
    KernelKind::kCsrCStationaryRowWarp,  KernelKind::kCsrCStationaryRowThread,
    KernelKind::kDcsrCStationary,        KernelKind::kTiledCsrBStationary,
    KernelKind::kTiledDcsrBStationary,   KernelKind::kTiledDcsrOnline,
    KernelKind::kAStationary,            KernelKind::kMergeCStationary,
    KernelKind::kHongHybrid,
};

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// One-column matrices: each row is an independent comparison case with
/// its own scale, matching the comparator's per-row max_val contract.
DenseMatrixT<double> column(const std::vector<double>& v) {
  DenseMatrixT<double> m(static_cast<index_t>(v.size()), 1);
  for (usize i = 0; i < v.size(); ++i) m.at(static_cast<index_t>(i), 0) = v[i];
  return m;
}

TEST(ToleranceComparator, EpsExactlyAtBoundaryPasses) {
  // |e - a| == eps * max_val must PASS (the bound is strict-greater);
  // all quantities are exactly representable so there is no rounding
  // slack hiding the boundary.
  const ToleranceComparator cmp(0.5);
  const std::vector<double> scales{1.0, 1.0};
  const auto expected = column({0.0, 0.0});
  EXPECT_TRUE(cmp.compare(expected, column({0.5, -0.5}), scales).pass);
  const ToleranceVerdict over = cmp.compare(expected, column({0.75, 0.0}), scales);
  EXPECT_FALSE(over.pass);
  EXPECT_EQ(over.mismatched, 1u);
  EXPECT_EQ(over.first_row, 0);
  EXPECT_EQ(over.first_col, 0);
  EXPECT_DOUBLE_EQ(over.first_actual, 0.75);
}

TEST(ToleranceComparator, ZeroMaxValRequiresExactMatch) {
  // An empty row has max_val == 0: any bound-based check degenerates,
  // so the contract is exact equality (with ±0 conflated).
  const ToleranceComparator cmp(1.0);
  const std::vector<double> scales{0.0, 0.0, 0.0};
  EXPECT_TRUE(cmp.compare(column({0.0, 3.0, 0.0}), column({-0.0, 3.0, 0.0}), scales).pass);
  const ToleranceVerdict v =
      cmp.compare(column({0.0, 0.0, 0.0}), column({0.0, 1e-300, 0.0}), scales);
  EXPECT_FALSE(v.pass);  // even a denormal is a mismatch when max_val == 0
  EXPECT_EQ(v.first_row, 1);
}

TEST(ToleranceComparator, NanMustMatchNan) {
  const ToleranceComparator cmp(1.0);
  const std::vector<double> scales{1.0};
  EXPECT_TRUE(cmp.compare(column({kNan}), column({kNan}), scales).pass);
  EXPECT_FALSE(cmp.compare(column({kNan}), column({1.0}), scales).pass);
  EXPECT_FALSE(cmp.compare(column({1.0}), column({kNan}), scales).pass);
}

TEST(ToleranceComparator, InfMustMatchInSign) {
  const ToleranceComparator cmp(1.0);
  const std::vector<double> scales{1.0, 1.0};
  EXPECT_TRUE(cmp.compare(column({kInf, -kInf}), column({kInf, -kInf}), scales).pass);
  EXPECT_FALSE(cmp.compare(column({kInf, 0.0}), column({-kInf, 0.0}), scales).pass);
  EXPECT_FALSE(cmp.compare(column({kInf, 0.0}), column({1e308, 0.0}), scales).pass);
}

TEST(ToleranceComparator, MaxRelErrorTracksOnlyFiniteScaledElements) {
  const ToleranceComparator cmp(1.0);
  const std::vector<double> scales{2.0, 0.0, 1.0};
  const ToleranceVerdict v =
      cmp.compare(column({1.0, 0.0, kNan}), column({2.0, 0.0, kNan}), scales);
  EXPECT_TRUE(v.pass);                     // |1-2| = 1 <= 1.0 * 2.0
  EXPECT_DOUBLE_EQ(v.max_rel_error, 0.5);  // 1 / 2.0; NaN and empty rows excluded
  EXPECT_EQ(v.compared, 3u);
}

TEST(ToleranceComparator, CrossPrecisionF32PassesToleranceButFailsBitwise) {
  // The headline use: an f32 run of a real kernel against the f64
  // reference on the same operands is NOT bitwise equal (the narrow
  // accumulator rounds), yet every element sits inside the fSPMV bound.
  const Csr A = gen_powerlaw_rows(128, 128, 0.05, 1.2, 21);
  DenseMatrix B(A.cols, 8);
  Rng rng(3);
  B.randomize(rng);
  const SpmmConfig cfg = evaluation_config(A.rows, 8);
  const SpmmResult r = run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cfg);
  const DenseMatrixT<double> ref = spmm_reference_f64(A, B);
  const DenseMatrixT<double> actual = retype<double>(r.C);

  EXPECT_GT(actual.max_abs_diff(ref), 0.0);  // fails bitwise
  const ToleranceVerdict v =
      ToleranceComparator(default_tolerance(Precision::kF32)).compare(ref, actual, A, B);
  EXPECT_TRUE(v.pass) << v.mismatched << " of " << v.compared << " out of bound";
  EXPECT_GT(v.max_rel_error, 0.0);
}

TEST(ToleranceComparator, RowScalesMatchHandComputedBound) {
  // 2x2: row 0 holds {2, -4}, row 1 empty.  max|B| = 3.
  Csr A;
  A.rows = 2;
  A.cols = 2;
  A.row_ptr = {0, 2, 2};
  A.col_idx = {0, 1};
  A.val = {2.0f, -4.0f};
  DenseMatrix B(2, 2);
  B.at(0, 0) = 3.0f;
  B.at(0, 1) = -1.0f;
  B.at(1, 0) = 0.5f;
  B.at(1, 1) = 1.0f;
  const std::vector<double> s = ToleranceComparator::row_scales(A, B);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 2.0 * 4.0 * 3.0);  // nnz * max|A_row| * max|B|
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

TEST(Bf16, EveryKernelIsBitIdenticalAcrossJobs) {
  // The determinism contract extends to the narrow precision: shard
  // decomposition is jobs-invariant, so bf16 (which re-rounds C on
  // store) must produce identical bits and metrics at jobs 1 and 4.
  const Csr A = gen_powerlaw_rows(256, 256, 0.03, 1.2, 17);
  const index_t K = 16;
  Rng rng(5);
  DenseMatrix B(A.cols, K);
  B.randomize(rng);
  SpmmConfig cfg = evaluation_config(A.rows, K);
  cfg.precision = Precision::kBf16;
  const auto plan = build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0,
                                   Precision::kBf16});
  for (KernelKind kind : kAllKernels) {
    SpmmConfig c1 = cfg, c4 = cfg;
    c1.jobs = 1;
    c4.jobs = 4;
    const SpmmResult r1 = SpmmExecutor(c1).execute(kind, *plan, B);
    const SpmmResult r4 = SpmmExecutor(c4).execute(kind, *plan, B);
    EXPECT_EQ(r1.C.max_abs_diff(r4.C), 0.0) << kernel_name(kind);
    EXPECT_TRUE(r1.counters == r4.counters) << kernel_name(kind);
    EXPECT_TRUE(r1.mem == r4.mem) << kernel_name(kind);
    // Every stored element must carry bf16-rounded bits: the low 16
    // mantissa bits of the f32 representation are zero.
    for (const float x : r1.C.data()) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(x) & 0xFFFFu, 0u) << kernel_name(kind);
    }
  }
}

TEST(Bf16, ResultStaysInsideToleranceOfF64Reference) {
  const Csr A = gen_magnitude_pruned(192, 192, 0.3, 16, 9);
  DenseMatrix B(A.cols, 8);
  Rng rng(7);
  B.randomize(rng);
  SpmmConfig cfg = evaluation_config(A.rows, 8);
  cfg.precision = Precision::kBf16;
  const auto plan =
      build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0, Precision::kBf16});
  const CsrT<bf16_t>& a = plan->operands_at<bf16_t>().csr;
  const DenseMatrixT<bf16_t> b = retype<bf16_t>(B);
  const DenseMatrixT<double> ref = spmm_reference_f64(a, b);
  const SpmmResult r = SpmmExecutor(cfg).execute(KernelKind::kTiledDcsrOnline, *plan, B);
  const ToleranceVerdict v = ToleranceComparator(default_tolerance(Precision::kBf16))
                                 .compare(ref, retype<double>(r.C), a, b);
  EXPECT_TRUE(v.pass) << v.mismatched << " of " << v.compared;
}

TEST(PlanCache, PrecisionIsPartOfTheKey) {
  // Same matrix, options differing only in precision: the cache must
  // MISS and keep both plans resident — aliasing would hand a bf16
  // execute an f32 operand set.
  PlanCache cache;
  const Csr A = gen_uniform(100, 100, 0.05, 1);
  PlanOptions f32;
  PlanOptions bf16;
  bf16.precision = Precision::kBf16;
  const auto p32 = cache.get_or_build(A, f32);
  bool hit = true;
  const auto pbf = cache.get_or_build(A, bf16, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(p32.get(), pbf.get());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(p32->precision(), Precision::kF32);
  EXPECT_EQ(pbf->precision(), Precision::kBf16);
  // And the second lookup at each precision hits its own entry.
  cache.get_or_build(A, f32, &hit);
  EXPECT_TRUE(hit);
  cache.get_or_build(A, bf16, &hit);
  EXPECT_TRUE(hit);
}

TEST(Executor, RejectsPlanOfDifferentPrecision) {
  const Csr A = gen_uniform(64, 64, 0.1, 1);
  SpmmConfig cfg = evaluation_config(64, 8);
  cfg.precision = Precision::kF64;
  const auto plan = build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0,
                                   Precision::kBf16});
  DenseMatrix B(A.cols, 8);
  Rng rng(1);
  B.randomize(rng);
  EXPECT_THROW(SpmmExecutor(cfg).execute(KernelKind::kCsrCStationaryRowWarp, *plan, B),
               ConfigError);
}

TEST(Serialize, ValueWidthRoundTripsAndMismatchIsTyped) {
  const Csr A = gen_uniform(64, 64, 0.08, 5);
  const CsrT<double> a64 = retype<double>(A);
  std::stringstream ss;
  save_csr(ss, a64);
  const CsrT<double> back = load_csr<double>(ss);
  EXPECT_EQ(back.val, a64.val);
  EXPECT_EQ(back.col_idx, a64.col_idx);
  // Loading the f64 stream as f32 must fail loudly (typed), never
  // reinterpret 8-byte values as pairs of floats.
  std::stringstream ss2;
  save_csr(ss2, a64);
  EXPECT_THROW(load_csr<float>(ss2), ParseError);
}

TEST(MagnitudePruned, DeterministicBlockStructureAtRequestedDensity) {
  const index_t n = 128, bs = 16;
  const Csr A = gen_magnitude_pruned(n, n, 0.25, bs, 42);
  const Csr A2 = gen_magnitude_pruned(n, n, 0.25, bs, 42);
  EXPECT_EQ(A.val, A2.val);
  EXPECT_EQ(A.col_idx, A2.col_idx);
  // Kept blocks are fully dense, so nnz is an exact multiple of the
  // block area and matches the top-`density` fraction of blocks.
  const i64 blocks = static_cast<i64>(n / bs) * (n / bs);
  const i64 kept = std::llround(0.25 * static_cast<double>(blocks));
  EXPECT_EQ(A.nnz(), kept * bs * bs);
  // A different seed ranks different blocks.
  const Csr B = gen_magnitude_pruned(n, n, 0.25, bs, 43);
  EXPECT_NE(A.col_idx, B.col_idx);
}

}  // namespace
}  // namespace nmdt
