// CancelToken concurrency tests: parent/child chaining, typed
// deadline/cancellation polling, and — the service-tier hardening
// case — concurrent request()/set_deadline()/poll() hammering from
// many threads (the tsan preset runs this suite under ThreadSanitizer).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

using Clock = CancelToken::Clock;
using std::chrono::milliseconds;

TEST(CancelToken, FreshTokenIsNotCancelled) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  EXPECT_NO_THROW(token.poll());
}

TEST(CancelToken, FirstRequestWinsAndCopiesShareState) {
  CancelToken token;
  const CancelToken copy = token;
  token.request(CancelReason::kUser);
  token.request(CancelReason::kDeadline);  // ignored: first request won
  EXPECT_TRUE(copy.cancelled());
  EXPECT_EQ(copy.reason(), CancelReason::kUser);
  EXPECT_THROW(copy.poll(), CancelledError);
}

TEST(CancelToken, PollThrowsTypedErrorPerReason) {
  CancelToken user;
  user.request(CancelReason::kUser);
  EXPECT_THROW(user.poll(), CancelledError);

  CancelToken deadline;
  deadline.set_deadline(Clock::now() - milliseconds(1), CancelReason::kDeadline);
  EXPECT_TRUE(deadline.cancelled());
  EXPECT_THROW(deadline.poll(), TimeoutError);

  CancelToken suite;
  suite.set_deadline(Clock::now() - milliseconds(1), CancelReason::kSuiteDeadline);
  EXPECT_THROW(suite.poll(), CancelledError);
}

TEST(CancelToken, FutureDeadlineExpiresWithoutAnyRequest) {
  CancelToken token;
  token.set_deadline(Clock::now() + milliseconds(20), CancelReason::kDeadline);
  EXPECT_FALSE(token.cancelled());
  std::this_thread::sleep_for(milliseconds(40));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
}

TEST(CancelToken, ChildObservesParentCancellation) {
  CancelToken parent;
  CancelToken child = CancelToken::child_of(parent);
  CancelToken grandchild = CancelToken::child_of(child);
  EXPECT_FALSE(grandchild.cancelled());
  parent.request(CancelReason::kUser);
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(grandchild.cancelled());
  EXPECT_EQ(grandchild.reason(), CancelReason::kUser);
  EXPECT_THROW(grandchild.poll(), CancelledError);
}

TEST(CancelToken, ChildCancellationDoesNotPropagateUpward) {
  // The service invariant: expiring one request's token (a child of the
  // server token) must not take the server — or sibling requests —
  // down with it.
  CancelToken server;
  CancelToken victim = CancelToken::child_of(server);
  CancelToken sibling = CancelToken::child_of(server);
  victim.set_deadline(Clock::now() - milliseconds(1), CancelReason::kDeadline);
  EXPECT_TRUE(victim.cancelled());
  EXPECT_FALSE(server.cancelled());
  EXPECT_FALSE(sibling.cancelled());
}

TEST(CancelToken, OwnReasonShadowsAncestorReason) {
  CancelToken parent;
  CancelToken child = CancelToken::child_of(parent);
  child.set_deadline(Clock::now() - milliseconds(1), CancelReason::kDeadline);
  parent.request(CancelReason::kUser);
  // The child's own deadline is consulted before the ancestor chain.
  EXPECT_EQ(child.reason(), CancelReason::kDeadline);
  EXPECT_THROW(child.poll(), TimeoutError);
}

TEST(CancelToken, ConcurrentRequestAndDeadlineHammerFromManyThreads) {
  // N threads race request()s, set_deadline()s, and child creation
  // against constant poll()ing — the exact contention pattern of the
  // request daemon's submit edge (admission thread arming deadlines)
  // racing its signal handler (request from signal context) and worker
  // polls.  TSan must stay quiet and exactly one reason must win.
  constexpr int kRounds = 50;
  constexpr int kThreads = 8;
  for (int round = 0; round < kRounds; ++round) {
    CancelToken root;
    std::atomic<bool> go{false};
    std::atomic<int> observed_cancelled{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        switch (t % 4) {
          case 0:
            root.request(CancelReason::kUser);
            break;
          case 1:
            root.set_deadline(Clock::now() - milliseconds(1),
                              CancelReason::kDeadline);
            break;
          case 2:
            root.set_deadline(Clock::now() + std::chrono::hours(1),
                              CancelReason::kDeadline);
            break;
          default: {
            CancelToken child = CancelToken::child_of(root);
            for (int i = 0; i < 100; ++i) {
              try {
                child.poll();
              } catch (const Error&) {
                observed_cancelled.fetch_add(1, std::memory_order_relaxed);
                break;
              }
              std::this_thread::yield();
            }
            break;
          }
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    // A request() definitely ran, so the token ends cancelled with a
    // typed reason — whichever store won the race.
    EXPECT_TRUE(root.cancelled());
    const CancelReason r = root.reason();
    EXPECT_TRUE(r == CancelReason::kUser || r == CancelReason::kDeadline);
    EXPECT_THROW(root.poll(), Error);
  }
}

TEST(CancelToken, ConcurrentChildChainingUnderParentCancellation) {
  // Threads build child chains while another cancels the root: every
  // chain, whenever it was built, must observe the cancellation.
  CancelToken root;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        CancelToken child = CancelToken::child_of(root);
        CancelToken grand = CancelToken::child_of(child);
        if (root.cancelled()) {
          EXPECT_TRUE(grand.cancelled());
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    root.request(CancelReason::kUser);
  });
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  CancelToken late = CancelToken::child_of(root);
  EXPECT_TRUE(late.cancelled());
}

TEST(CancelToken, ScopeInstallsAndRestoresThreadLocal) {
  EXPECT_EQ(current_cancel_token(), nullptr);
  EXPECT_NO_THROW(poll_cancellation());  // agnostic outside any scope
  CancelToken outer_token;
  {
    CancelScope outer(outer_token);
    ASSERT_NE(current_cancel_token(), nullptr);
    CancelToken inner_token;
    inner_token.request(CancelReason::kUser);
    {
      CancelScope inner(inner_token);
      EXPECT_THROW(poll_cancellation(), CancelledError);
    }
    EXPECT_NO_THROW(poll_cancellation());  // outer restored
  }
  EXPECT_EQ(current_cancel_token(), nullptr);
}

}  // namespace
}  // namespace nmdt
