// Tests for the transform-module extensions: the Sec. 4.1 CSR-baseline
// strawmen (stateless/stateful converters), the DCSC wide-matrix path,
// and the dynamic prefetch-buffer model.
#include <gtest/gtest.h>

#include "formats/convert.hpp"
#include "formats/dcsc.hpp"
#include "matgen/generators.hpp"
#include "transform/buffer_model.hpp"
#include "transform/csr_baseline.hpp"
#include "transform/engine.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

// ---------------------------------------------------------------------
// CSR baseline converters (Sec. 4.1).
// ---------------------------------------------------------------------

void expect_tiles_equal(const std::vector<DcsrTile>& a, const std::vector<DcsrTile>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (usize t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].body.row_idx, b[t].body.row_idx) << "tile " << t;
    EXPECT_EQ(a[t].body.row_ptr, b[t].body.row_ptr) << "tile " << t;
    EXPECT_EQ(a[t].body.col_idx, b[t].body.col_idx) << "tile " << t;
    EXPECT_EQ(a[t].body.val, b[t].body.val) << "tile " << t;
  }
}

class CsrBaseline : public testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(CsrBaseline, AllThreeConvertersProduceIdenticalTiles) {
  const auto [rows, cols, density] = GetParam();
  const Csr csr = gen_uniform(rows, cols, density, 900 + rows);
  const Csc csc = csc_from_csr(csr);
  const TilingSpec spec{64, 64};
  ConversionEngine engine;
  CsrStatefulConverter stateful(csr);
  CsrConversionCosts stateless_costs;
  for (index_t s = 0; s < spec.num_strips(csr.cols); ++s) {
    const auto reference = engine.convert_strip(csc, s, spec);
    expect_tiles_equal(csr_stateless_convert_strip(csr, s, spec, stateless_costs),
                       reference);
    expect_tiles_equal(stateful.convert_strip(s, spec), reference);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CsrBaseline,
                         testing::Values(std::make_tuple(200, 200, 0.02),
                                         std::make_tuple(128, 300, 0.05),
                                         std::make_tuple(300, 65, 0.01),
                                         std::make_tuple(100, 100, 0.0)));

TEST(CsrBaseline, StatelessProbesEveryRowPerStrip) {
  const Csr csr = gen_uniform(256, 256, 0.01, 1);
  const TilingSpec spec{64, 64};
  CsrConversionCosts costs;
  for (index_t s = 0; s < spec.num_strips(csr.cols); ++s) {
    csr_stateless_convert_strip(csr, s, spec, costs);
  }
  EXPECT_EQ(costs.rows_scanned,
            static_cast<u64>(csr.rows) * static_cast<u64>(spec.num_strips(csr.cols)));
  EXPECT_EQ(costs.state_bytes, 0);
  EXPECT_EQ(costs.elements_emitted, static_cast<u64>(csr.nnz()));
}

TEST(CsrBaseline, StatefulKeepsJaggedFrontier) {
  const Csr csr = gen_uniform(256, 256, 0.01, 2);
  CsrStatefulConverter conv(csr);
  EXPECT_EQ(conv.costs().state_bytes, csr.rows * 4);
}

TEST(CsrBaseline, StatefulRejectsRandomStripAccess) {
  const Csr csr = gen_uniform(256, 256, 0.01, 3);
  const TilingSpec spec{64, 64};
  CsrStatefulConverter conv(csr);
  conv.convert_strip(0, spec);
  EXPECT_THROW(conv.convert_strip(3, spec), FormatError);  // skipping ahead
  CsrStatefulConverter conv2(csr);
  conv2.convert_strip(0, spec);
  conv2.convert_strip(1, spec);
  EXPECT_THROW(conv2.convert_strip(0, spec), FormatError);  // rewind
}

TEST(CsrBaseline, EngineDoesFarLessProbing) {
  // The Sec. 4.1 argument in one assertion: for a sparse matrix the
  // engine's work scales with elements, the CSR designs with rows.
  const Csr csr = gen_uniform(2048, 2048, 0.0005, 4);
  const Csc csc = csc_from_csr(csr);
  const TilingSpec spec{64, 64};
  CsrConversionCosts stateless;
  ConversionEngine engine;
  for (index_t s = 0; s < spec.num_strips(csr.cols); ++s) {
    csr_stateless_convert_strip(csr, s, spec, stateless);
    engine.convert_strip(csc, s, spec);
  }
  EXPECT_LT(engine.stats().steps * 10, stateless.rows_scanned);
}

// ---------------------------------------------------------------------
// DCSC (Sec. 4.1 wide-matrix path).
// ---------------------------------------------------------------------

TEST(Dcsc, RoundTripThroughCsc) {
  const Csr csr = gen_uniform(100, 150, 0.03, 5);
  const Csc csc = csc_from_csr(csr);
  const Dcsc d = dcsc_from_csc(csc);
  d.validate();
  const Csc back = csc_from_dcsc(d);
  EXPECT_EQ(back.col_ptr, csc.col_ptr);
  EXPECT_EQ(back.row_idx, csc.row_idx);
  EXPECT_EQ(back.val, csc.val);
}

TEST(Dcsc, DropsEmptyColumns) {
  Coo coo;
  coo.rows = 4;
  coo.cols = 5;
  coo.push(1, 0, 1.0f);
  coo.push(2, 3, 2.0f);
  const Dcsc d = dcsc_from_csc(csc_from_coo(coo));
  EXPECT_EQ(d.nnz_cols(), 2);
  EXPECT_EQ(d.col_idx, (std::vector<index_t>{0, 3}));
}

TEST(Dcsc, ValidateRejectsEmptyDenseColumn) {
  Coo coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.push(0, 0, 1.0f);
  Dcsc d = dcsc_from_csc(csc_from_coo(coo));
  d.col_idx.push_back(2);
  d.col_ptr.push_back(d.col_ptr.back());
  EXPECT_THROW(d.validate(), FormatError);
}

TEST(Dcsc, TransposeViewIsInvolutive) {
  const Csr csr = gen_uniform(80, 120, 0.05, 6);
  const Csr back = transpose_view(transpose_view(csr));
  EXPECT_EQ(back.rows, csr.rows);
  EXPECT_EQ(back.cols, csr.cols);
  EXPECT_EQ(back.row_ptr, csr.row_ptr);
  EXPECT_EQ(back.col_idx, csr.col_idx);
}

TEST(Dcsc, EngineDcscStripMatchesTransposedDcsrPath) {
  // Converting a horizontal strip of A to DCSC must equal converting
  // the corresponding vertical strip of Aᵀ to DCSR, relabeled.
  const Csr csr = gen_uniform(200, 300, 0.02, 7);
  const TilingSpec spec{64, 64};
  ConversionEngine engine;
  const index_t row_strips = spec.num_strips(csr.rows);
  i64 total = 0;
  for (index_t s = 0; s < row_strips; ++s) {
    const std::vector<DcscTile> tiles = engine.convert_strip_dcsc(csr, s, spec);
    for (const auto& tile : tiles) {
      tile.body.validate();
      total += tile.nnz();
      // Every element's global coordinates must exist in the source.
      for (i64 k = 0; k < tile.body.nnz_cols(); ++k) {
        const index_t gcol = tile.col_begin + tile.body.dense_col(k);
        const auto rows = tile.body.dense_col_rows(k);
        const auto vals = tile.body.dense_col_vals(k);
        for (usize j = 0; j < rows.size(); ++j) {
          const index_t grow = tile.row_begin + rows[j];
          bool found = false;
          for (index_t p = csr.row_ptr[grow]; p < csr.row_ptr[grow + 1]; ++p) {
            if (csr.col_idx[p] == gcol && csr.val[p] == vals[j]) found = true;
          }
          EXPECT_TRUE(found) << "element (" << grow << ", " << gcol << ") mismatched";
        }
      }
    }
  }
  EXPECT_EQ(total, csr.nnz());
}

// ---------------------------------------------------------------------
// Prefetch buffer model (Sec. 5.3 sizing).
// ---------------------------------------------------------------------

TEST(BufferModel, PaperSizingHasNoStallsOnWorstCase) {
  const EngineHwModel hw;  // 256 B per lane
  const BufferSimResult r = simulate_prefetch_buffer(hw, single_lane_trace(10000));
  EXPECT_EQ(r.stall_beats, 0u);
  EXPECT_EQ(r.productive_beats, 10000u);
}

TEST(BufferModel, HalfSizedBufferStallsOnWorstCase) {
  EngineHwModel hw;
  hw.buffer_bytes_per_lane = 128;
  const BufferSimResult r = simulate_prefetch_buffer(hw, single_lane_trace(10000));
  EXPECT_GT(r.stall_fraction(), 0.3);
}

TEST(BufferModel, DoublePrecisionAlsoCovered) {
  const EngineHwModel hw;
  const BufferSimResult r =
      simulate_prefetch_buffer(hw, single_lane_trace(5000), /*double_precision=*/true);
  EXPECT_EQ(r.stall_beats, 0u);
}

TEST(BufferModel, RoundRobinTrafficNeverStalls) {
  EngineHwModel hw;
  hw.buffer_bytes_per_lane = 32;  // tiny buffer
  std::vector<int> trace;
  for (int i = 0; i < 6400; ++i) trace.push_back(i % 64);
  const BufferSimResult r = simulate_prefetch_buffer(hw, trace);
  EXPECT_EQ(r.stall_beats, 0u) << "64-beat revisit period exceeds any refill latency";
}

TEST(BufferModel, ConversionTraceMatchesStripElements) {
  const Csr csr = gen_uniform(300, 64, 0.05, 8);
  const Csc csc = csc_from_csr(csr);
  const std::vector<int> trace = conversion_lane_trace(csc, 0, TilingSpec{64, 64});
  EXPECT_EQ(static_cast<i64>(trace.size()), csr.nnz());
  for (int lane : trace) {
    EXPECT_GE(lane, 0);
    EXPECT_LT(lane, 64);
  }
}

TEST(BufferModel, RejectsBadLaneIds) {
  const EngineHwModel hw;
  const std::vector<int> bad{0, 99};
  EXPECT_THROW(simulate_prefetch_buffer(hw, bad), FormatError);
}

}  // namespace
}  // namespace nmdt
