// End-to-end integration tests: file I/O → engine → verification across
// every matrix family, invariance properties of the full pipeline, and
// the Fig. 16 orderings at test scale.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/spmm_engine.hpp"
#include "formats/matrix_market.hpp"
#include "formats/serialize.hpp"
#include "matgen/generators.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

TEST(Integration, EngineVerifiesEveryFamilyInSmokeSuite) {
  EngineOptions options;
  options.spmm = evaluation_config(512, 32);
  const SpmmEngine engine(options);
  Rng rng(1);
  for (const auto& spec : smoke_suite()) {
    const Csr A = spec.generate();
    DenseMatrix B(A.cols, 32);
    B.randomize(rng);
    const SpmmReport r = engine.run(A, B);
    EXPECT_LT(r.max_abs_error, 1e-2) << spec.name;
    EXPECT_GT(r.result.timing.total_ns, 0.0) << spec.name;
    ASSERT_TRUE(r.baseline.has_value());
  }
}

TEST(Integration, MatrixMarketToEngineRoundTrip) {
  // Write a generated matrix to a Matrix Market file, reload it the way
  // a user would, and push it through the heuristic engine.
  const Csr original = gen_block_clustered(300, 6, 0.1, 0.001, 2);
  const std::string path = testing::TempDir() + "/nmdt_integration.mtx";
  write_matrix_market_file(path, coo_from_csr(original));
  const Csr loaded = csr_from_coo(read_matrix_market_file(path));
  EXPECT_EQ(loaded.nnz(), original.nnz());

  Rng rng(3);
  DenseMatrix B(loaded.cols, 16);
  B.randomize(rng);
  EngineOptions options;
  options.spmm = evaluation_config(loaded.rows, 16);
  const SpmmReport r = SpmmEngine(options).run(loaded, B);
  EXPECT_LT(r.max_abs_error, 1e-3);
}

TEST(Integration, BinaryAndMarketFormatsAgree) {
  const Csr m = gen_powerlaw_cols(200, 200, 0.02, 1.1, 4);
  const std::string mtx = testing::TempDir() + "/nmdt_agree.mtx";
  const std::string bin = testing::TempDir() + "/nmdt_agree.bin";
  write_matrix_market_file(mtx, coo_from_csr(m));
  save_csr_file(bin, m);
  const Csr from_mtx = csr_from_coo(read_matrix_market_file(mtx));
  const Csr from_bin = load_csr_file(bin);
  EXPECT_EQ(from_mtx.row_ptr, from_bin.row_ptr);
  EXPECT_EQ(from_mtx.col_idx, from_bin.col_idx);
  // Matrix Market is decimal text: values agree to print precision.
  ASSERT_EQ(from_mtx.val.size(), from_bin.val.size());
  for (usize i = 0; i < from_mtx.val.size(); ++i) {
    EXPECT_NEAR(from_mtx.val[i], from_bin.val[i], 1e-5);
  }
}

TEST(Integration, PlacementPolicyDoesNotChangeResults) {
  const Csr A = gen_uniform(500, 500, 0.01, 5);
  Rng rng(6);
  DenseMatrix B(A.cols, 48);
  B.randomize(rng);
  SpmmConfig camping = evaluation_config(A.rows, 48);
  camping.placement = PlacementPolicy::kStripCamping;
  SpmmConfig rotation = camping;
  rotation.placement = PlacementPolicy::kTileRotation;
  const DenseMatrix c1 = run_spmm(KernelKind::kTiledDcsrOnline, A, B, camping).C;
  const DenseMatrix c2 = run_spmm(KernelKind::kTiledDcsrOnline, A, B, rotation).C;
  EXPECT_DOUBLE_EQ(c1.max_abs_diff(c2), 0.0);
}

TEST(Integration, MemModeDoesNotChangeResults) {
  const Csr A = gen_banded(400, 8, 0.4, 7);
  Rng rng(8);
  DenseMatrix B(A.cols, 40);
  B.randomize(rng);
  SpmmConfig counting;
  SpmmConfig cached;
  cached.mem_mode = MemMode::kCacheSim;
  for (KernelKind kind : {KernelKind::kCsrCStationaryRowWarp,
                          KernelKind::kTiledDcsrOnline, KernelKind::kHongHybrid}) {
    const DenseMatrix c1 = run_spmm(kind, A, B, counting).C;
    const DenseMatrix c2 = run_spmm(kind, A, B, cached).C;
    EXPECT_DOUBLE_EQ(c1.max_abs_diff(c2), 0.0) << kernel_name(kind);
  }
}

TEST(Integration, SuiteOrderingsHoldAtTestScale) {
  // The Fig. 16 shape checks on the tiny suite: hybrid >= blind, and
  // offline-with-prep <= online for the B-preferring matrices.
  const SpmmConfig cfg = evaluation_config(512, 32);
  const auto rows = run_suite(standard_suite(SuiteScale::kTiny), cfg, 32);
  ASSERT_GT(rows.size(), 10u);
  const SsfThreshold th = train_threshold(rows);
  double hybrid_log = 0.0, blind_log = 0.0;
  for (const auto& r : rows) {
    const bool use_b = r.profile.ssf > th.threshold;
    hybrid_log += std::log(r.t_baseline_ms / (use_b ? r.t_online_b_ms : r.t_dcsr_c_ms));
    blind_log += std::log(r.speedup_online_b_arm());
  }
  // The learned threshold maximizes classification accuracy, not the
  // geomean, so at tiny (launch-dominated) scale it may trail blind
  // all-tiling by noise; allow 1% per matrix of slack.
  EXPECT_GE(hybrid_log, blind_log - 0.01 * static_cast<double>(rows.size()))
      << "heuristic selection must not meaningfully lose to blind all-tiling";
  EXPECT_GE(th.accuracy, 0.5);
}

TEST(Integration, SampledProfilingAgreesWithFullOnEngineDecision) {
  const Csr clustered = gen_block_clustered(1024, 16, 0.08, 1e-4, 9);
  Rng rng(10);
  DenseMatrix B(clustered.cols, 32);
  B.randomize(rng);
  EngineOptions full;
  full.spmm = evaluation_config(clustered.rows, 32);
  full.run_baseline = false;
  EngineOptions sampled = full;
  sampled.profile_sample_fraction = 0.25;
  const SpmmReport r_full = SpmmEngine(full).run(clustered, B);
  const SpmmReport r_sampled = SpmmEngine(sampled).run(clustered, B);
  EXPECT_EQ(r_full.chosen, r_sampled.chosen);
  EXPECT_LT(r_sampled.max_abs_error, 1e-3);
}

}  // namespace
}  // namespace nmdt
