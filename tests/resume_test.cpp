// Durable suite execution: the checkpoint/resume journal, cooperative
// cancellation, and per-arm deadlines (core/journal.hpp + the
// SuiteOptions path through run_suite).
//
// The load-bearing invariant: a sweep interrupted at ANY point and then
// resumed from its journal produces bit-identical rows — same values,
// same ordering — as an uninterrupted run, at any job count.  The tests
// interrupt via injected cancellation at three points (after the first
// arm, mid-sweep, after the last arm) × jobs {1, 4} and compare against
// an uninterrupted baseline with exact EXPECT_EQ on every double.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/journal.hpp"
#include "obs/json_check.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

std::vector<MatrixSpec> tiny_specs() {
  auto specs = standard_suite(SuiteScale::kTiny);
  if (specs.size() > 8) specs.resize(8);
  return specs;
}

void expect_rows_identical(const std::vector<SuiteRow>& a,
                           const std::vector<SuiteRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.name, b[i].spec.name) << "row " << i;
    // Bit-identical doubles — not approximate — is the contract.
    EXPECT_EQ(a[i].profile.ssf, b[i].profile.ssf) << a[i].spec.name;
    EXPECT_EQ(a[i].t_baseline_ms, b[i].t_baseline_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].t_dcsr_c_ms, b[i].t_dcsr_c_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].t_online_b_ms, b[i].t_online_b_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].t_offline_b_ms, b[i].t_offline_b_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].offline_prep_ms, b[i].offline_prep_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].error, b[i].error) << a[i].spec.name;
    EXPECT_EQ(a[i].arm_error, b[i].arm_error) << a[i].spec.name;
  }
}

/// Unique per-test journal path under the gtest temp dir; removed up
/// front so a crashed earlier run can't leak state in.
std::string journal_path(const std::string& stem) {
  const std::string path = testing::TempDir() + "nmdt_" + stem + ".nmdj";
  std::remove(path.c_str());
  return path;
}

/// Run a journaled sweep that cancels itself once `cancel_at` journal
/// entries have been appended; returns true when the sweep was actually
/// interrupted (it may finish first if cancel_at is past the end).
/// With `resume` the sweep replays the journal first; `cancel_at` then
/// counts freshly appended entries only.
bool run_until(const std::vector<MatrixSpec>& specs, const SpmmConfig& cfg, index_t K,
               const std::string& path, int jobs, usize cancel_at,
               bool resume = false) {
  SuiteOptions opts;
  opts.jobs = jobs;
  opts.journal_path = path;
  opts.resume = resume;
  CancelToken token;
  opts.cancel = token;
  opts.on_checkpoint = [token, cancel_at](usize entries) {
    if (entries >= cancel_at) token.request(CancelReason::kUser);
  };
  try {
    run_suite(specs, cfg, K, {}, opts);
    return false;
  } catch (const CancelledError&) {
    return true;
  }
}

std::vector<SuiteRow> resume(const std::vector<MatrixSpec>& specs,
                             const SpmmConfig& cfg, index_t K,
                             const std::string& path, int jobs) {
  SuiteOptions opts;
  opts.jobs = jobs;
  opts.journal_path = path;
  opts.resume = true;
  return run_suite(specs, cfg, K, {}, opts);
}

class ResumeBitIdentical : public testing::TestWithParam<int> {};

TEST_P(ResumeBitIdentical, InterruptAfterFirstArmThenResume) {
  const int jobs = GetParam();
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto baseline = run_suite(specs, cfg, K, {}, 1);
  const std::string path =
      journal_path("first_arm_j" + std::to_string(jobs));
  // Entry 1 is the first row's plan record, entry 2 its first finished
  // arm — cancelling there leaves a partially-executed row behind.
  ASSERT_TRUE(run_until(specs, cfg, K, path, jobs, 2));
  expect_rows_identical(baseline, resume(specs, cfg, K, path, jobs));
}

TEST_P(ResumeBitIdentical, InterruptMidSweepThenResume) {
  const int jobs = GetParam();
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto baseline = run_suite(specs, cfg, K, {}, 1);
  const std::string path = journal_path("mid_sweep_j" + std::to_string(jobs));
  // An uninterrupted sweep journals ~5 entries per row (plan + 4 arms).
  const usize midpoint = specs.size() * 5 / 2;
  ASSERT_TRUE(run_until(specs, cfg, K, path, jobs, midpoint));
  expect_rows_identical(baseline, resume(specs, cfg, K, path, jobs));
}

TEST_P(ResumeBitIdentical, ResumeAfterCompletionIsAPureReplay) {
  const int jobs = GetParam();
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto baseline = run_suite(specs, cfg, K, {}, 1);
  const std::string path = journal_path("complete_j" + std::to_string(jobs));
  // Not interrupted: every arm lands in the journal.
  ASSERT_FALSE(run_until(specs, cfg, K, path, jobs, ~usize{0}));
  const auto before = std::filesystem::file_size(path);
  expect_rows_identical(baseline, resume(specs, cfg, K, path, jobs));
  // A pure replay executes nothing, so it appends nothing.
  EXPECT_EQ(std::filesystem::file_size(path), before);
}

INSTANTIATE_TEST_SUITE_P(Jobs, ResumeBitIdentical, testing::Values(1, 4));

TEST(ResumeVerification, MismatchedFingerprintIsRejected) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const std::string path = journal_path("fingerprint");
  ASSERT_TRUE(run_until(specs, cfg, K, path, 1, 2));
  // Same journal, different sweep (K changed): resuming would silently
  // mix results from two experiments.
  EXPECT_THROW(resume(specs, cfg, 16, path, 1), ConfigError);
}

TEST(ResumeVerification, CorruptedEntryChecksumIsRejected) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const std::string path = journal_path("crc");
  ASSERT_FALSE(run_until(specs, cfg, K, path, 1, ~usize{0}));
  // Flip a byte inside the final frame's CRC trailer: the frame is
  // complete (not a torn tail) but no longer self-consistent.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size - 2);
    char byte = 0;
    f.seekg(size - 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(size - 2);
    f.write(&byte, 1);
  }
  EXPECT_THROW(read_journal_file(path), FormatError);
  EXPECT_THROW(resume(specs, cfg, K, path, 1), FormatError);
}

TEST(ResumeVerification, TornTailIsDroppedAndReExecuted) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto baseline = run_suite(specs, cfg, K, {}, 1);
  const std::string path = journal_path("torn");
  ASSERT_FALSE(run_until(specs, cfg, K, path, 1, ~usize{0}));
  // Chop the file mid-frame, as a crash between write and sync would:
  // the incomplete tail entry is dropped and its work re-executed.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);
  const JournalReplay replay = read_journal_file(path);
  EXPECT_TRUE(replay.torn_tail);
  expect_rows_identical(baseline, resume(specs, cfg, K, path, 1));
}

TEST(ResumeVerification, TornTailSurvivesResumeInterruptResumeCycle) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto baseline = run_suite(specs, cfg, K, {}, 1);
  const std::string path = journal_path("torn_cycle");
  ASSERT_TRUE(run_until(specs, cfg, K, path, 1, 4));
  // Crash with a torn tail: chop the last frame mid-trailer.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 3);
  ASSERT_TRUE(read_journal_file(path).torn_tail);
  // Resume must truncate the residual torn bytes before appending;
  // otherwise the next read would see the stale length prefix span into
  // the fresh frames and report a CRC mismatch.  Interrupt this resumed
  // run too, then re-read and resume again — the second resume is
  // exactly the "one crash + one resume + any later interrupt" sequence
  // that must not lose the checkpointed work.
  ASSERT_TRUE(run_until(specs, cfg, K, path, 1, 3, /*resume=*/true));
  const JournalReplay replay = read_journal_file(path);
  EXPECT_FALSE(replay.torn_tail);  // drained cleanly: no new tear
  EXPECT_TRUE(replay.has_header);
  expect_rows_identical(baseline, resume(specs, cfg, K, path, 1));
}

TEST(ResumeVerification, ArmEntriesWithoutPlanEntryDoNotDeadlock) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto baseline = run_suite(specs, cfg, K, {}, 1);
  const std::string path = journal_path("arms_no_plan");
  // A CRC-valid journal in an order the writer never produces: all four
  // arm outcomes for row 0 but no row_planned entry.  The row is not
  // complete(), so it takes the live path with zero arms left to run —
  // which must still report the row rather than wait forever for an arm
  // callback that will never fire.
  {
    JournalWriter w(path, suite_fingerprint(specs, cfg, K, SuiteRow::kArmCount),
                    specs.size(), K, SuiteRow::kArmCount, 1, false);
    for (int a = 0; a < SuiteRow::kArmCount; ++a) w.arm_done(0, a, 1.0, 0.0);
  }
  const auto rows = resume(specs, cfg, K, path, 2);
  EXPECT_EQ(rows.size(), baseline.size());
}

TEST(ResumeVerification, EmptyJournalIsACleanFreshStart) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto baseline = run_suite(specs, cfg, K, {}, 1);
  const std::string path = journal_path("empty");
  std::ofstream(path, std::ios::binary).close();  // zero bytes
  expect_rows_identical(baseline, resume(specs, cfg, K, path, 1));
}

TEST(ResumeTimeouts, ArmTimeoutBecomesTypedRowsUnderContinue) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  SuiteOptions opts;
  opts.jobs = 2;
  opts.policy = SuiteErrorPolicy::kContinue;
  // An already-expired deadline: the very first cancellation poll in
  // each arm throws, deterministically, regardless of machine speed.
  opts.arm_timeout_ms = 1e-6;
  const auto rows = run_suite(specs, cfg, K, {}, opts);
  ASSERT_FALSE(rows.empty());
  for (const auto& r : rows) {
    EXPECT_FALSE(r.ok());
    for (const auto& e : r.arm_error) {
      EXPECT_EQ(e.rfind("TimeoutError", 0), 0u) << r.spec.name << ": " << e;
    }
  }
}

TEST(ResumeTimeouts, ArmTimeoutThrowsUnderFailFast) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  SuiteOptions opts;
  opts.jobs = 2;
  opts.policy = SuiteErrorPolicy::kFailFast;
  opts.arm_timeout_ms = 1e-6;
  EXPECT_THROW(run_suite(specs, cfg, K, {}, opts), TimeoutError);
}

TEST(ResumeTimeouts, SuiteDeadlineThrowsTimeoutAfterDrain) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  SuiteOptions opts;
  opts.jobs = 2;
  opts.suite_timeout_ms = 1e-6;  // expired before the first row starts
  EXPECT_THROW(run_suite(specs, cfg, K, {}, opts), TimeoutError);
}

TEST(ResumeTimeouts, SuiteDeadlineDoesNotPoisonTheCallersToken) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  // run_suite arms the suite deadline on a child token, never on the
  // caller's: a token reused for a second sweep (or any other polled
  // work) must not inherit the first sweep's expired deadline.
  CancelToken token;
  SuiteOptions first;
  first.jobs = 2;
  first.suite_timeout_ms = 1e-6;
  first.cancel = token;
  EXPECT_THROW(run_suite(specs, cfg, K, {}, first), TimeoutError);
  EXPECT_FALSE(token.cancelled());
  SuiteOptions second;
  second.jobs = 2;
  second.cancel = token;
  const auto rows = run_suite(specs, cfg, K, {}, second);
  EXPECT_EQ(rows.size(), run_suite(specs, cfg, K, {}, 1).size());
}

TEST(ResumeTimeouts, TimedOutArmsAreJournaledAndReplayedAsFailures) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const std::string path = journal_path("timeout_journal");
  SuiteOptions opts;
  opts.jobs = 1;
  opts.policy = SuiteErrorPolicy::kContinue;
  opts.arm_timeout_ms = 1e-6;
  opts.journal_path = path;
  const auto rows = run_suite(specs, cfg, K, {}, opts);
  // Unlike cancellation, a timeout is a *result*: it lands in the
  // journal, and a later resume (without the timeout) replays it rather
  // than silently retrying.
  SuiteOptions again;
  again.jobs = 1;
  again.policy = SuiteErrorPolicy::kContinue;
  again.journal_path = path;
  again.resume = true;
  const auto replayed = run_suite(specs, cfg, K, {}, again);
  expect_rows_identical(rows, replayed);
}

TEST(ResumeTimeouts, ReplayedTimeoutRethrowsAsTimeoutUnderFailFast) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const std::string path = journal_path("timeout_fail_fast");
  SuiteOptions opts;
  opts.jobs = 1;
  opts.policy = SuiteErrorPolicy::kContinue;
  opts.arm_timeout_ms = 1e-6;
  opts.journal_path = path;
  (void)run_suite(specs, cfg, K, {}, opts);
  // fail_fast on resume must map the journaled description back to the
  // original exception type (same CLI exit code as the first run).
  SuiteOptions again;
  again.jobs = 1;
  again.policy = SuiteErrorPolicy::kFailFast;
  again.journal_path = path;
  again.resume = true;
  EXPECT_THROW(run_suite(specs, cfg, K, {}, again), TimeoutError);
}

TEST(JournalSummary, SummaryJsonCountsMatchTheReplay) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const std::string path = journal_path("summary");
  ASSERT_FALSE(run_until(specs, cfg, K, path, 1, ~usize{0}));
  const JournalReplay replay = read_journal_file(path);
  EXPECT_TRUE(replay.has_header);
  EXPECT_EQ(replay.total, static_cast<i64>(specs.size()));
  const std::string json = journal_summary_json(replay, path);
  EXPECT_NE(json.find("\"entries\": " + std::to_string(replay.entries)),
            std::string::npos);
  EXPECT_NE(json.find("\"torn_tail\": false"), std::string::npos);
  std::string error;
  EXPECT_TRUE(obs::json_is_valid(json, &error)) << error;
}

TEST(JournalSummary, PathWithQuotesAndBackslashesYieldsValidJson) {
  // The journal path is user input; embedding it unescaped would make
  // the summary invalid JSON and trace_lint --journal would misreport
  // the breakage as a library bug.
  const std::string hostile = "sweeps\\\"2026\\torn.nmdj";
  const std::string json = journal_summary_json(JournalReplay{}, hostile);
  std::string error;
  EXPECT_TRUE(obs::json_is_valid(json, &error)) << error << "\n" << json;
}

}  // namespace
}  // namespace nmdt
