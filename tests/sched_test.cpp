// Layout / load-balancing tests (Sec. 6.1) and the multi-GPU streaming
// planner (Sec. 6.2).
#include <gtest/gtest.h>

#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "sched/layout.hpp"
#include "sched/multigpu.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

TEST(Layout, CampingPinsStripToOneChannel) {
  const StripPlacement p(PlacementPolicy::kStripCamping, 8);
  for (index_t t = 0; t < 100; ++t) EXPECT_EQ(p.channel_for(3, t), 3);
  EXPECT_EQ(p.channel_for(11, 0), 3);  // wraps
  EXPECT_EQ(p.switches_per_strip(100), 0);
}

TEST(Layout, RotationSpreadsTilesAcrossChannels) {
  const StripPlacement p(PlacementPolicy::kTileRotation, 8);
  std::set<int> channels;
  for (index_t t = 0; t < 8; ++t) channels.insert(p.channel_for(0, t));
  EXPECT_EQ(channels.size(), 8u);
  EXPECT_EQ(p.switches_per_strip(8), 7);
  EXPECT_EQ(p.switches_per_strip(1), 0);
}

TEST(Layout, HandoffBytesAreSmall) {
  // col_idx_frontier (64×4B) + next_fb_ptr: trivially small vs tile
  // payloads — the Sec. 6.1 claim that the handoff is negligible.
  EXPECT_EQ(StripPlacement::switch_handoff_bytes(64), 64 * 4 + 8);
}

TEST(Layout, ImbalanceMetricDetectsCamping) {
  MemStats stats;
  stats.channels.assign(64, {});
  // All traffic on one partition (channels 0..7).
  for (int c = 0; c < 8; ++c) stats.channels[c].read_bytes = 1000;
  EXPECT_NEAR(partition_imbalance(stats, 8), 8.0, 1e-9);
  // Balanced traffic.
  for (auto& ch : stats.channels) ch.read_bytes = 100;
  EXPECT_NEAR(partition_imbalance(stats, 8), 1.0, 1e-9);
}

TEST(Layout, EmptyStatsAreBalanced) {
  MemStats stats;
  stats.channels.assign(64, {});
  EXPECT_DOUBLE_EQ(partition_imbalance(stats, 8), 1.0);
}

TEST(Layout, OnlineKernelBalancesWithRotation) {
  // End-to-end: the online kernel under camping placement must show
  // worse partition balance than under tile rotation (Fig. 17).
  const Csr A = gen_uniform(1024, 1024, 0.005, 55);
  Rng rng(1);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  SpmmConfig camping;
  camping.placement = PlacementPolicy::kStripCamping;
  SpmmConfig rotation;
  rotation.placement = PlacementPolicy::kTileRotation;
  const SpmmResult r_camp = run_spmm(KernelKind::kTiledDcsrOnline, A, B, camping);
  const SpmmResult r_rot = run_spmm(KernelKind::kTiledDcsrOnline, A, B, rotation);
  EXPECT_GT(r_camp.engine_busy_ns, r_rot.engine_busy_ns)
      << "camping serializes conversions on few engines";
  EXPECT_EQ(r_camp.engine.elements, r_rot.engine.elements)
      << "placement must not change the work, only its distribution";
}

TEST(Layout, InvalidConfigThrows) {
  EXPECT_THROW(StripPlacement(PlacementPolicy::kTileRotation, 0), ConfigError);
  MemStats stats;
  EXPECT_THROW(partition_imbalance(stats, 0), ConfigError);
}

// ---------------------------------------------------------------------
// Multi-GPU planner.
// ---------------------------------------------------------------------

MatrixStats big_matrix_stats(index_t n, double density) {
  MatrixStats s;
  s.rows = n;
  s.cols = n;
  s.nnz = static_cast<i64>(density * static_cast<double>(n) * n);
  s.density = density;
  return s;
}

TEST(MultiGpu, SmallProblemFitsUnchunked) {
  const MatrixStats s = big_matrix_stats(44000, 0.001);
  MultiGpuConfig cfg;
  const MultiGpuPlan plan = plan_multi_gpu(s, 44000, csr_bytes(s.rows, s.nnz), cfg);
  EXPECT_TRUE(plan.fits_unchunked);
  EXPECT_EQ(plan.num_chunks, 1);
  EXPECT_GT(plan.overlap_efficiency, 0.0);
}

TEST(MultiGpu, HugeProblemRequiresChunking) {
  // 2M×2M dense B/C is ~17 TB (the paper's example): must chunk.
  const MatrixStats s = big_matrix_stats(2'000'000, 1e-5);
  MultiGpuConfig cfg;
  const MultiGpuPlan plan = plan_multi_gpu(s, 2'000'000, csr_bytes(s.rows, s.nnz), cfg);
  EXPECT_FALSE(plan.fits_unchunked);
  EXPECT_GT(plan.num_chunks, 1);
  EXPECT_GT(plan.b_bytes_per_gpu, i64{1} << 40);  // > 1 TiB per GPU
}

TEST(MultiGpu, MoreGpusShrinkPerGpuWork) {
  const MatrixStats s = big_matrix_stats(500'000, 1e-5);
  MultiGpuConfig two;
  two.gpus = 2;
  MultiGpuConfig eight;
  eight.gpus = 8;
  const i64 a_bytes = csr_bytes(s.rows, s.nnz);
  const MultiGpuPlan p2 = plan_multi_gpu(s, 500'000, a_bytes, two);
  const MultiGpuPlan p8 = plan_multi_gpu(s, 500'000, a_bytes, eight);
  EXPECT_NEAR(static_cast<double>(p2.b_bytes_per_gpu) / p8.b_bytes_per_gpu, 4.0, 0.01);
  EXPECT_LT(p8.total_ns, p2.total_ns);
}

TEST(MultiGpu, CompactAFormatImprovesChunking) {
  // The Sec. 6.2 argument: CSC (compact) leaves more room for B/C
  // chunks than a pre-tiled DCSR image ~1.4x larger → fewer chunks,
  // fewer A re-reads, faster total.
  const MatrixStats s = big_matrix_stats(400'000, 5e-5);
  MultiGpuConfig cfg;
  cfg.gpu_memory_gb = 16.0;
  const i64 csc_size = csr_bytes(s.rows, s.nnz);
  const i64 tiled_size = static_cast<i64>(csc_size * 1.4);
  const MultiGpuPlan compact = plan_multi_gpu(s, 400'000, csc_size, cfg);
  const MultiGpuPlan tiled = plan_multi_gpu(s, 400'000, tiled_size, cfg);
  EXPECT_LE(compact.num_chunks, tiled.num_chunks);
  EXPECT_LE(compact.compute_ns, tiled.compute_ns);
}

TEST(MultiGpu, RejectsImpossibleConfigs) {
  const MatrixStats s = big_matrix_stats(1000, 0.01);
  MultiGpuConfig cfg;
  cfg.gpus = 0;
  EXPECT_THROW(plan_multi_gpu(s, 64, 1000, cfg), ConfigError);
  MultiGpuConfig tiny;
  tiny.gpu_memory_gb = 1e-9;
  EXPECT_THROW(plan_multi_gpu(s, 64, 1000, tiny), ConfigError);
}

}  // namespace
}  // namespace nmdt
