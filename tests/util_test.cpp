// Unit and property tests for the util module: RNG determinism and
// distribution sanity, statistics helpers, histogram edge handling,
// table/CSV emission, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nmdt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const u64 first = a();
  a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(5);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BelowRejectsZero) { EXPECT_THROW(Rng(1).below(0), FormatError); }

TEST(Rng, RangeInclusive) {
  Rng rng(6);
  std::set<i64> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasApproximatelyUnitVariance) {
  Rng rng(8);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.05);
  EXPECT_NEAR(stddev(xs), 1.0, 0.05);
}

TEST(Rng, ChanceProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Zipf, UniformExponentIsFlat) {
  Rng rng(10);
  ZipfSampler z(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[z(rng)];
  for (int c : counts) EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
}

TEST(Zipf, HeavyTailFavorsSmallIndices) {
  Rng rng(11);
  ZipfSampler z(1000, 1.2);
  i64 first_decile = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    if (z(rng) < 100) ++first_decile;
  }
  // Under zipf(1.2) the first 10% of ranks receives far more than 10% of
  // the mass.
  EXPECT_GT(static_cast<double>(first_decile) / samples, 0.5);
}

TEST(Zipf, SamplesInRange) {
  Rng rng(12);
  ZipfSampler z(17, 0.8);
  for (int i = 0; i < 5000; ++i) {
    const i64 s = z(rng);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 17);
  }
}

TEST(Zipf, RejectsEmptyDomain) { EXPECT_THROW(ZipfSampler(0, 1.0), FormatError); }

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, GeomeanOfPowers) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geomean(xs), FormatError);
}

TEST(Stats, MedianOddEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 20.0);
}

TEST(Stats, FractionAbove) {
  const std::vector<double> xs{0.5, 1.5, 2.5, 3.5};
  EXPECT_DOUBLE_EQ(fraction_above(xs, 1.0), 0.75);
  EXPECT_DOUBLE_EQ(fraction_above(xs, 10.0), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 0.5);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), FormatError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), FormatError);
}

TEST(Table, PrintAligned) {
  Table t({"name", "value"});
  t.begin_row().cell("alpha").cell(1.5, 1);
  t.begin_row().cell("b").cell(i64{42});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a"});
  t.begin_row().cell("x,y\"z");
  const std::string path = testing::TempDir() + "/nmdt_table_test.csv";
  t.write_csv(path);
  std::ifstream is(path);
  std::string header, row;
  std::getline(is, header);
  std::getline(is, row);
  EXPECT_EQ(header, "a");
  EXPECT_EQ(row, "\"x,y\"\"z\"");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_bytes(1536.0), "1.5 KiB");
  EXPECT_EQ(format_sci(0.000123).substr(0, 4), "1.23");
}

TEST(Cli, ParsesBothSyntaxes) {
  const char* argv[] = {"prog", "--n", "128", "--density=0.01", "--flag"};
  CliParser cli(5, argv);
  cli.declare("n", "");
  cli.declare("density", "");
  cli.declare("flag", "");
  cli.validate();
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("density", 0.0), 0.01);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus", "1"};
  CliParser cli(3, argv);
  cli.declare("n", "");
  EXPECT_THROW(cli.validate(), ParseError);
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n", "abc"};
  CliParser cli(3, argv);
  EXPECT_THROW(cli.get_int("n", 0), ParseError);
  EXPECT_THROW(cli.get_double("n", 0.0), ParseError);
}

TEST(Cli, RejectsPositional) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(CliParser(2, argv), ParseError);
}

TEST(ExitCodes, PinsTheDocumentedErrorToExitCodeTable) {
  // The README exit-code table, pinned so scripts (and tier1.sh) can
  // rely on it: every typed error class maps to a distinct code, both
  // live objects and exceptions rebuilt from their wire descriptions.
  EXPECT_EQ(exit_code_for(ParseError("x")), 2);
  EXPECT_EQ(exit_code_for(FormatError("x")), 3);
  EXPECT_EQ(exit_code_for(ConfigError("x")), 4);
  EXPECT_EQ(exit_code_for(FaultError("x")), 5);
  EXPECT_EQ(exit_code_for(TimeoutError("x")), 6);
  EXPECT_EQ(exit_code_for(OverloadError("x")), 7);
  EXPECT_EQ(exit_code_for(WorkerError("x")), 8);
  EXPECT_EQ(exit_code_for(CancelledError("x")), 130);
  EXPECT_EQ(exit_code_for(std::runtime_error("x")), 1);
  EXPECT_EQ(exit_code_for(Error("x")), 1);  // untyped base stays generic
}

TEST(ExitCodes, DerivedClassesKeepTheirSlotAfterDescriptionRoundTrip) {
  // describe_exception → exception_from_description → exit_code_for
  // must agree with the original object's code (the journal replays
  // errors through this path).
  const OverloadError shed("queue full", 250);
  EXPECT_EQ(shed.retry_after_ms(), 250);
  try {
    std::rethrow_exception(exception_from_description(describe_exception(shed)));
    FAIL() << "expected a rethrow";
  } catch (const std::exception& e) {
    EXPECT_EQ(exit_code_for(e), 7);
  }
  try {
    std::rethrow_exception(
        exception_from_description(describe_exception(TimeoutError("late"))));
    FAIL() << "expected a rethrow";
  } catch (const std::exception& e) {
    EXPECT_EQ(exit_code_for(e), 6);
  }
  // WorkerError crosses the supervisor's result pipe as a description
  // and must land back in slot 8 (the quarantine → fail_fast path).
  try {
    std::rethrow_exception(exception_from_description(
        describe_exception(WorkerError("worker process killed by signal 9"))));
    FAIL() << "expected a rethrow";
  } catch (const WorkerError& e) {
    EXPECT_EQ(exit_code_for(e), 8);
  }
}

}  // namespace
}  // namespace nmdt
