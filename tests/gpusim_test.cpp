// GPU-model tests: architecture presets, interleaver bijectivity,
// sectored-L2 behaviour (hits, sector fills, LRU eviction, writeback),
// memory-system accounting, warp-issue helpers, and the timing model.
#include <gtest/gtest.h>

#include <map>

#include "gpusim/cache.hpp"
#include "gpusim/interleave.hpp"
#include "gpusim/memory_system.hpp"
#include "gpusim/timing.hpp"
#include "gpusim/warp.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nmdt {
namespace {

TEST(Arch, Gv100PresetMatchesPaperNumbers) {
  const ArchConfig c = ArchConfig::gv100();
  EXPECT_EQ(c.num_sms, 80);
  EXPECT_EQ(c.pseudo_channels, 64);
  EXPECT_NEAR(c.total_bandwidth_gbps(), 870.4, 0.1);  // 64 × 13.6
  EXPECT_EQ(c.l2_bytes, 6144 * 1024);
  EXPECT_EQ(c.shared_mem_per_sm, 96 * 1024);
  EXPECT_NEAR(c.die_area_mm2, 815.0, 1e-9);
  EXPECT_NEAR(c.tdp_watts, 250.0, 1e-9);
}

TEST(Arch, Tu116PresetMatchesPaperNumbers) {
  const ArchConfig c = ArchConfig::tu116();
  EXPECT_EQ(c.pseudo_channels, 24);
  EXPECT_NEAR(c.total_bandwidth_gbps(), 288.0, 0.1);  // 24 × 12
  EXPECT_NEAR(c.die_area_mm2, 284.0, 1e-9);
}

TEST(Arch, ValidateRejectsBadGeometry) {
  ArchConfig c = ArchConfig::gv100();
  c.l2_line_bytes = 100;  // not a multiple of sector
  EXPECT_THROW(c.validate(), ConfigError);
  c = ArchConfig::gv100();
  c.interleave_bytes = 100;  // not a power of two
  EXPECT_THROW(c.validate(), ConfigError);
  c = ArchConfig::gv100();
  c.fb_partitions = 7;  // does not divide 64 channels
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(Interleaver, StableWithinGranuleAndDeterministic) {
  const Interleaver il(ArchConfig::gv100());
  EXPECT_EQ(il.granule_bytes(), 256);
  // All addresses within one granule map to one channel, and the
  // mapping is a pure function of the address.
  EXPECT_EQ(il.channel_of(0), il.channel_of(255));
  EXPECT_EQ(il.channel_of(4096), il.channel_of(4096 + 100));
  EXPECT_EQ(il.channel_of(12345), il.channel_of(12345));
}

TEST(Interleaver, HashSpreadsSequentialStream) {
  const Interleaver il(ArchConfig::gv100());
  std::map<int, i64> hits;
  const i64 granules = 64 * 256;
  for (u64 a = 0; a < static_cast<u64>(granules) * 256; a += 256) {
    ++hits[il.channel_of(a)];
  }
  ASSERT_EQ(hits.size(), 64u);
  for (const auto& [ch, n] : hits) {
    EXPECT_GT(n, 256 / 2) << "channel " << ch;
    EXPECT_LT(n, 256 * 2) << "channel " << ch;
  }
}

TEST(Interleaver, HashSpreadsPowerOfTwoStrides) {
  // The motivating case for hashing: a 2^k stride must not camp on a
  // subset of channels.
  const Interleaver il(ArchConfig::gv100());
  std::map<int, i64> hits;
  for (u64 i = 0; i < 4096; ++i) ++hits[il.channel_of(i * 64 * 256)];
  EXPECT_GT(hits.size(), 48u);
}

TEST(Interleaver, PartitionGroupsConsecutiveChannels) {
  const Interleaver il(ArchConfig::gv100());
  // 64 channels / 8 partitions = 8 channels per partition.
  EXPECT_EQ(il.partition_of_channel(0), 0);
  EXPECT_EQ(il.partition_of_channel(7), 0);
  EXPECT_EQ(il.partition_of_channel(8), 1);
  EXPECT_EQ(il.partition_of_channel(63), 7);
}

TEST(L2Cache, SectorFillOnFirstTouchThenHit) {
  L2Cache l2(ArchConfig::gv100());
  const auto miss = l2.access(0x1000, false);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.dram_read_bytes, 32);
  const auto hit = l2.access(0x1000, false);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.dram_read_bytes, 0);
}

TEST(L2Cache, ResidentLineMissingSectorCostsOnlySectorFill) {
  L2Cache l2(ArchConfig::gv100());
  l2.access(0x1000, false);            // sector 0 of the line
  const auto r = l2.access(0x1020, false);  // sector 1, same 128B line
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.dram_read_bytes, 32);
  EXPECT_EQ(l2.stats().evictions, 0u);  // no new line allocated
}

TEST(L2Cache, LruEvictionWithinSet) {
  ArchConfig small = ArchConfig::gv100();
  small.l2_bytes = 2 * 128 * 4;  // 2 ways, 4 sets
  small.l2_ways = 2;
  L2Cache l2(small);
  ASSERT_EQ(l2.num_sets(), 4);
  const u64 set_stride = 4 * 128;  // same set every 512 bytes
  l2.access(0 * set_stride, false);   // way 0
  l2.access(1 * set_stride, false);   // way 1
  l2.access(0 * set_stride, false);   // refresh line A
  l2.access(2 * set_stride, false);   // evicts line B (LRU)
  const auto a = l2.access(0 * set_stride, false);
  EXPECT_TRUE(a.hit) << "most recently used line must survive";
  const auto b = l2.access(1 * set_stride, false);
  EXPECT_FALSE(b.hit) << "LRU victim must have been evicted";
}

TEST(L2Cache, DirtyEvictionWritesBack) {
  ArchConfig small = ArchConfig::gv100();
  small.l2_bytes = 1 * 128 * 2;  // 1 way, 2 sets
  small.l2_ways = 1;
  L2Cache l2(small);
  const u64 set_stride = 2 * 128;
  l2.access(0, true);  // dirty
  const auto evict = l2.access(set_stride, false);  // same set, evicts
  EXPECT_EQ(evict.dram_write_bytes, 32);
  EXPECT_EQ(l2.stats().writebacks, 1u);
}

TEST(L2Cache, ResetClearsState) {
  L2Cache l2(ArchConfig::gv100());
  l2.access(0x1000, false);
  l2.reset();
  EXPECT_EQ(l2.stats().accesses, 0u);
  EXPECT_FALSE(l2.access(0x1000, false).hit);
}

TEST(MemorySystem, AllocationsDoNotShareGranules) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  const u64 a = mem.allocate(100, "a");
  const u64 b = mem.allocate(100, "b");
  EXPECT_GE(b - a, 256u);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
}

TEST(MemorySystem, CountingModeChargesSectorGranularity) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  const u64 base = mem.allocate(4096, "x");
  mem.warp_load(base, 4);  // 4 bytes still occupy one 32 B sector
  EXPECT_EQ(mem.stats().total_dram_bytes(), 32);
  mem.warp_load(base + 32, 64);  // spans exactly two sectors
  EXPECT_EQ(mem.stats().total_dram_bytes(), 32 + 64);
}

TEST(MemorySystem, AtomicsChargedDouble) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  const u64 base = mem.allocate(4096, "c");
  mem.warp_atomic(base, 32);
  i64 atomic_bytes = 0;
  for (const auto& ch : mem.stats().channels) atomic_bytes += ch.atomic_bytes;
  EXPECT_EQ(atomic_bytes, 64);  // 32 bytes × 2 (Table 1 atomic model)
}

TEST(MemorySystem, CacheModeFiltersRepeatedLoads) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCacheSim);
  const u64 base = mem.allocate(4096, "b");
  mem.warp_load(base, 128);
  const i64 first = mem.stats().total_dram_bytes();
  mem.warp_load(base, 128);  // all hits
  EXPECT_EQ(mem.stats().total_dram_bytes(), first);
  EXPECT_GT(mem.stats().l2.sector_hits, 0u);
}

TEST(MemorySystem, EngineReadsExactBytesOnAddressedChannel) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  const int ch = mem.interleaver().channel_of(256);
  mem.engine_read(256, 8);  // exact bytes, no sector inflation
  EXPECT_EQ(mem.stats().channels[ch].read_bytes, 8);
  const int other = ch == 5 ? 6 : 5;
  mem.engine_read_channel(other, 100);
  EXPECT_EQ(mem.stats().channels[other].read_bytes, 100);
  EXPECT_THROW(mem.engine_read_channel(64, 1), FormatError);
}

TEST(MemorySystem, MaxPartitionBytesGroupsChannels) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  mem.engine_read_channel(0, 100);
  mem.engine_read_channel(7, 100);   // same partition as channel 0
  mem.engine_read_channel(8, 50);    // partition 1
  EXPECT_EQ(mem.stats().max_partition_bytes(8), 200);
  EXPECT_EQ(mem.stats().max_channel_bytes(), 100);
}

TEST(MemorySystem, ResetStats) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  mem.warp_load(mem.allocate(64, "x"), 64);
  mem.xbar_transfer(10);
  mem.reset_stats();
  EXPECT_EQ(mem.stats().total_dram_bytes(), 0);
  EXPECT_EQ(mem.stats().xbar_bytes, 0);
}

TEST(Warp, IssueClampsAndCountsLaneSlots) {
  KernelCounters c;
  const ArchConfig arch = ArchConfig::gv100();
  issue(c, arch, InstrClass::kFp, 20);
  EXPECT_EQ(c.fp_instr, 1u);
  EXPECT_EQ(c.lane_slots_active, 20u);
  EXPECT_EQ(c.lane_slots_inactive, 12u);
  issue(c, arch, InstrClass::kControl, 100);  // clamped to warp size
  EXPECT_EQ(c.lane_slots_active, 52u);
}

TEST(Warp, IssueWavesSplitsRemainder) {
  KernelCounters c;
  const ArchConfig arch = ArchConfig::gv100();
  issue_waves(c, arch, InstrClass::kMemory, 70);  // 2 full waves + 6 lanes
  EXPECT_EQ(c.memory_instr, 3u);
  EXPECT_EQ(c.lane_slots_active, 70u);
  EXPECT_EQ(c.lane_slots_inactive, 3u * 32 - 70u);
}

TEST(Warp, IssueWavesZeroElementsNoOp) {
  KernelCounters c;
  issue_waves(c, ArchConfig::gv100(), InstrClass::kMemory, 0);
  EXPECT_EQ(c.total_instr(), 0u);
}

TEST(Counters, AccumulateAndInactiveFraction) {
  KernelCounters a, b;
  const ArchConfig arch = ArchConfig::gv100();
  issue(a, arch, InstrClass::kFp, 16);
  issue(b, arch, InstrClass::kInt, 32);
  a += b;
  EXPECT_EQ(a.total_instr(), 2u);
  EXPECT_NEAR(a.inactive_fraction(), 16.0 / 64.0, 1e-12);
}

TEST(Timing, MemoryBoundKernelAttributesStallsToMemory) {
  const ArchConfig arch = ArchConfig::gv100();
  KernelCounters c;
  c.kernel_launches = 1;
  issue(c, arch, InstrClass::kFp, 32, 1000);  // tiny compute
  MemStats mem;
  mem.channels.assign(64, {});
  mem.channels[0].read_bytes = 10'000'000;  // one hot channel
  const TimingBreakdown t = compute_timing(arch, c, mem);
  EXPECT_GT(t.memory_ns, t.compute_ns);
  EXPECT_NEAR(t.memory_ns, 10'000'000 / 13.6, 1.0);
  EXPECT_GT(t.frac_memory, 0.9);
  EXPECT_NEAR(t.frac_memory + t.frac_sm + t.frac_other, 1.0, 1e-12);
}

TEST(Timing, ComputeBoundKernelHasNoMemoryStall) {
  const ArchConfig arch = ArchConfig::gv100();
  KernelCounters c;
  issue(c, arch, InstrClass::kFp, 32, 100'000'000);
  MemStats mem;
  mem.channels.assign(64, {});
  mem.channels[0].read_bytes = 100;
  const TimingBreakdown t = compute_timing(arch, c, mem);
  EXPECT_DOUBLE_EQ(t.frac_memory, 0.0);
  EXPECT_GT(t.frac_sm, 0.99);
}

TEST(Timing, InflationStretchesComputeOnly) {
  const ArchConfig arch = ArchConfig::gv100();
  KernelCounters c;
  issue(c, arch, InstrClass::kFp, 32, 1000);
  MemStats mem;
  mem.channels.assign(64, {});
  const TimingBreakdown t1 = compute_timing(arch, c, mem, 1.0);
  const TimingBreakdown t2 = compute_timing(arch, c, mem, 2.0);
  EXPECT_NEAR(t2.compute_ns, 2.0 * t1.compute_ns, 1e-9);
  EXPECT_THROW(compute_timing(arch, c, mem, 0.5), ConfigError);
}

TEST(MemorySystem, OperandAttributionFollowsAllocations) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  const u64 a = mem.allocate(4096, "A.row_ptr");
  const u64 b = mem.allocate(4096, "B");
  const u64 c = mem.allocate(4096, "C");
  mem.warp_load(a, 64);
  mem.warp_load(b, 128);
  mem.warp_store(c, 32);
  mem.warp_atomic(c, 32);  // 2x
  const auto& ops = mem.stats().operand_bytes;
  EXPECT_EQ(ops.at("A"), 64);
  EXPECT_EQ(ops.at("B"), 128);
  EXPECT_EQ(ops.at("C"), 32 + 64);
  // Unmapped addresses attribute to "?" rather than a neighbour.
  mem.warp_load(c + (u64{1} << 40), 32);
  EXPECT_EQ(mem.stats().operand_bytes.at("?"), 32);
}

TEST(MemorySystem, EngineChannelReadsTagAsSparseInput) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  mem.engine_read_channel(3, 100);
  EXPECT_EQ(mem.stats().operand_bytes.at("A"), 100);
}

TEST(MemStats, MergeAccumulatesEverything) {
  MemStats a, b;
  a.channels.assign(4, {});
  b.channels.assign(4, {});
  a.channels[1].read_bytes = 10;
  b.channels[1].read_bytes = 5;
  b.channels[2].atomic_bytes = 7;
  b.channels[2].busy_ns = 3.5;
  b.channels[2].row_misses = 2;
  a.xbar_bytes = 1;
  b.xbar_bytes = 2;
  b.l2.sector_hits = 9;
  b.l2_service_bytes = 64;
  a += b;
  EXPECT_EQ(a.channels[1].read_bytes, 15);
  EXPECT_EQ(a.channels[2].atomic_bytes, 7);
  EXPECT_DOUBLE_EQ(a.channels[2].busy_ns, 3.5);
  EXPECT_EQ(a.channels[2].row_misses, 2u);
  EXPECT_EQ(a.xbar_bytes, 3);
  EXPECT_EQ(a.l2.sector_hits, 9u);
  EXPECT_EQ(a.l2_service_bytes, 64);
}

TEST(MemorySystem, MergeFoldsPeerStatsIntoThis) {
  // The shard merge: two instances that replayed the same allocation
  // sequence, merged, must equal the elementwise sum of their stats.
  MemorySystem a(ArchConfig::gv100(), MemMode::kCounting);
  MemorySystem b(ArchConfig::gv100(), MemMode::kCounting);
  const u64 pa = a.allocate(4096, "X");
  const u64 pb = b.allocate(4096, "X");
  ASSERT_EQ(pa, pb);
  a.warp_load(pa, 128);
  b.warp_load(pb + 256, 64);
  b.warp_atomic(pb, 32);
  b.xbar_transfer(10);
  MemStats expected = a.stats();
  expected += b.stats();
  a.merge(b);
  EXPECT_EQ(a.stats(), expected);
}

TEST(MemorySystem, MergeRejectsModeMismatch) {
  MemorySystem a(ArchConfig::gv100(), MemMode::kCounting);
  MemorySystem b(ArchConfig::gv100(), MemMode::kCacheSim);
  EXPECT_THROW(a.merge(b), FormatError);
}

TEST(MemorySystem, WarpLoadRunMatchesPerEntryLoads) {
  // The batched API must be a pure event-coalescing change: same
  // addresses, same bytes, identical stats in both memory modes.
  for (MemMode mode : {MemMode::kCounting, MemMode::kCacheSim}) {
    MemorySystem per_entry(ArchConfig::gv100(), mode);
    MemorySystem batched(ArchConfig::gv100(), mode);
    const u64 base1 = per_entry.allocate(1 << 20, "B");
    const u64 base2 = batched.allocate(1 << 20, "B");
    ASSERT_EQ(base1, base2);
    std::vector<u64> addrs;
    for (u64 i = 0; i < 64; ++i) addrs.push_back(base1 + (i * 7919) % (1 << 19));
    addrs.push_back(addrs.front());  // repeat (cache-mode hit path)
    for (u64 addr : addrs) per_entry.warp_load(addr, 96);
    batched.warp_load_run(addrs, 96);
    EXPECT_EQ(per_entry.stats(), batched.stats()) << "mode " << static_cast<int>(mode);
  }
}

TEST(MemorySystem, WarpAtomicRunMatchesPerEntryAtomics) {
  for (MemMode mode : {MemMode::kCounting, MemMode::kCacheSim}) {
    MemorySystem per_entry(ArchConfig::gv100(), mode);
    MemorySystem batched(ArchConfig::gv100(), mode);
    const u64 base1 = per_entry.allocate(1 << 18, "C");
    const u64 base2 = batched.allocate(1 << 18, "C");
    ASSERT_EQ(base1, base2);
    std::vector<u64> addrs;
    for (u64 i = 0; i < 48; ++i) addrs.push_back(base1 + i * 1024 + (i % 3) * 8);
    for (u64 addr : addrs) per_entry.warp_atomic(addr, 256);
    batched.warp_atomic_run(addrs, 256);
    EXPECT_EQ(per_entry.stats(), batched.stats()) << "mode " << static_cast<int>(mode);
  }
}

TEST(MemorySystem, RunApisTolerateEmptyRuns) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  mem.warp_load_run({}, 32);
  mem.warp_atomic_run({}, 32);
  EXPECT_EQ(mem.stats().total_dram_bytes(), 0);
}

TEST(MemStats, ServiceTimeTakesMaxOfTransferAndBusy) {
  MemStats s;
  s.channels.assign(2, {});
  s.channels[0].read_bytes = 1360;  // 100 ns at 13.6 B/ns
  s.channels[1].read_bytes = 136;   // 10 ns transfer...
  s.channels[1].busy_ns = 500.0;    // ...but bank model says 500 ns
  EXPECT_NEAR(s.max_channel_service_ns(13.6), 500.0, 1e-9);
  s.channels[1].busy_ns = 0.0;
  EXPECT_NEAR(s.max_channel_service_ns(13.6), 100.0, 1e-9);
}

TEST(Timing, LlcAtomicBandwidthTerm) {
  const ArchConfig arch = ArchConfig::gv100();
  KernelCounters c;
  MemStats mem;
  mem.channels.assign(64, {});
  mem.l2_service_bytes = 2'000'000'000;  // 2 GB through a 2000 GB/s LLC
  mem.atomic_rmw_bytes = 1'000'000'000;  // +1 GB of RMW at 2x
  const TimingBreakdown t = compute_timing(arch, c, mem);
  // (2e9 + 1e9 * (2-1)) / 2000 GB/s = 1.5e6 ns
  EXPECT_NEAR(t.llc_ns, 1.5e6, 1.0);
  EXPECT_NEAR(t.total_ns, 1.5e6, 1.0);
}

TEST(Timing, EngineBoundKernel) {
  const ArchConfig arch = ArchConfig::gv100();
  KernelCounters c;
  MemStats mem;
  mem.channels.assign(64, {});
  const TimingBreakdown t = compute_timing(arch, c, mem, 1.0, /*engine_ns=*/5000.0);
  EXPECT_NEAR(t.total_ns, 5000.0, 1e-9);
}

}  // namespace
}  // namespace nmdt
