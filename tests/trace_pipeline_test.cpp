// Pipeline-level tracer tests — the three guarantees the obs layer
// makes (DESIGN.md "Observability"):
//
//  * TracePipeline.*: a traced SpmmEngine run exports schema-valid
//    Chrome trace JSON containing the plan, cache, per-shard kernel,
//    and transform-engine spans.
//  * TraceDeterminism.*: two identical runs at jobs=4 produce the same
//    span tree — (track, name, args) in export order — modulo
//    timestamps.
//  * TraceNoop.*: with tracing disabled, the 9-kernel sweep is
//    bit-identical to a traced run (spans only observe).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/executor.hpp"
#include "core/spmm_engine.hpp"
#include "kernels/spmm.hpp"
#include "util/error.hpp"
#include "matgen/generators.hpp"
#include "obs/json_check.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace nmdt {
namespace {

constexpr KernelKind kAllKernels[] = {
    KernelKind::kCsrCStationaryRowWarp,  KernelKind::kCsrCStationaryRowThread,
    KernelKind::kDcsrCStationary,        KernelKind::kTiledCsrBStationary,
    KernelKind::kTiledDcsrBStationary,   KernelKind::kTiledDcsrOnline,
    KernelKind::kAStationary,            KernelKind::kMergeCStationary,
    KernelKind::kHongHybrid,
};

DenseMatrix random_b(index_t rows, index_t cols, u64 seed) {
  Rng rng(seed);
  DenseMatrix B(rows, cols);
  B.randomize(rng);
  return B;
}

/// 4096 columns = 64 default-width strips = 4 shards for the tiled
/// B-stationary family: wide enough that per-shard spans really fan
/// out, small enough to keep the test fast.
Csr test_matrix() { return gen_powerlaw_rows(512, 4096, 0.01, 1.2, 7); }

void expect_identical(const SpmmResult& a, const SpmmResult& b) {
  ASSERT_EQ(a.C.rows(), b.C.rows());
  ASSERT_EQ(a.C.cols(), b.C.cols());
  const auto xs = a.C.data();
  const auto ys = b.C.data();
  i64 mismatches = 0;
  for (usize i = 0; i < xs.size(); ++i) mismatches += xs[i] != ys[i] ? 1 : 0;
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.mem, b.mem);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.engine_busy_ns, b.engine_busy_ns);
  EXPECT_EQ(a.timing.total_ns, b.timing.total_ns);
}

// ---------------------------------------------------------------------
// Schema: a traced engine run exports valid Chrome trace JSON carrying
// every pipeline stage.

TEST(TracePipeline, EngineRunExportsSchemaValidTraceWithPipelineSpans) {
  const Csr A = test_matrix();
  const DenseMatrix B = random_b(A.cols, 8, 2);
  EngineOptions options;
  options.spmm.jobs = 4;
  options.verify = false;
  options.run_baseline = false;
  const SpmmEngine engine(options);

  obs::TraceSession session;
  session.install();
  (void)engine.run(A, B);  // cache miss: plans, converts, executes
  (void)engine.run(A, B);  // cache hit: execute only
  // The online kernel drives the near-memory conversion engine
  // explicitly so transform spans are guaranteed regardless of the
  // SSF decision above.
  (void)engine.run_kernel(KernelKind::kTiledDcsrOnline, A, B);
  session.uninstall();

  std::ostringstream os;
  session.write_chrome_json(os);
  std::string error;
  obs::TraceCheckReport report;
  ASSERT_TRUE(obs::validate_chrome_trace(os.str(), &error, &report)) << error;
  EXPECT_GT(report.complete_spans, 0u);
  EXPECT_GT(report.tracks, 1u);  // shards left the main lane

  std::set<std::string> names;
  for (const auto& ev : session.events()) names.insert(ev.name);
  EXPECT_TRUE(names.count("plan.build"));
  EXPECT_TRUE(names.count("plan.profile"));
  EXPECT_TRUE(names.count("plan.convert.dcsr"));
  EXPECT_TRUE(names.count("plan_cache.lookup"));
  EXPECT_TRUE(names.count("shard_set"));
  EXPECT_TRUE(names.count("shard"));
  EXPECT_TRUE(names.count("shard_merge"));
  EXPECT_TRUE(names.count("mem.merge"));
  EXPECT_TRUE(names.count("engine.convert_tile"));
  EXPECT_TRUE(names.count(kernel_name(KernelKind::kTiledDcsrOnline)));
}

TEST(TracePipeline, SuiteRunnerEmitsOneSpanPerMatrixKernelArm) {
  std::vector<MatrixSpec> specs(2);
  specs[0] = {"uniform-a", MatrixFamily::kUniform, 96, 96, 0.05, 0.0, 0, 11};
  specs[1] = {"uniform-b", MatrixFamily::kUniform, 96, 96, 0.08, 0.0, 0, 12};

  obs::TraceSession session;
  session.install();
  const auto rows = run_suite(specs, SpmmConfig{}, 4, {}, 4);
  session.uninstall();
  ASSERT_EQ(rows.size(), 2u);

  usize arms = 0, plans = 0, suite_runs = 0;
  for (const auto& ev : session.events()) {
    arms += ev.name == "suite.arm" ? 1 : 0;
    plans += ev.name == "suite.plan" ? 1 : 0;
    suite_runs += ev.name == "suite.run" ? 1 : 0;
  }
  EXPECT_EQ(suite_runs, 1u);
  EXPECT_EQ(plans, 2u);   // one plan per matrix
  EXPECT_EQ(arms, 8u);    // 2 matrices x 4 kernel arms
}

// ---------------------------------------------------------------------
// Determinism: the exported span tree is a pure function of the work,
// not of OS scheduling.

using SpanTree = std::vector<std::tuple<u64, std::string, std::string>>;

SpanTree traced_online_run(int jobs) {
  const Csr A = test_matrix();
  SpmmConfig cfg;  // counting mode: fast and fully deterministic
  cfg.jobs = jobs;
  const auto plan = build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0});
  const DenseMatrix B = random_b(A.cols, 8, 3);

  obs::TraceSession session;
  session.install();
  (void)run_spmm(KernelKind::kTiledDcsrOnline, plan->operands(), B, cfg);
  session.uninstall();

  SpanTree tree;
  for (const auto& ev : session.events()) {
    tree.emplace_back(ev.track, ev.name, ev.args_json);
  }
  return tree;
}

TEST(TraceDeterminism, RepeatedJobs4RunsExportIdenticalSpanTrees) {
  const SpanTree first = traced_online_run(4);
  const SpanTree second = traced_online_run(4);
  EXPECT_EQ(first, second);

  usize shard_spans = 0;
  std::set<u64> shard_tracks;
  for (const auto& [track, name, args] : first) {
    if (name == "shard") {
      ++shard_spans;
      shard_tracks.insert(track);
    }
  }
  EXPECT_GE(shard_spans, 2u) << "matrix too small to shard: test is vacuous";
  EXPECT_EQ(shard_tracks.size(), shard_spans) << "each shard must own its track";
}

TEST(TraceDeterminism, SuiteSpanTreeIsStableAcrossRuns) {
  std::vector<MatrixSpec> specs(2);
  specs[0] = {"uniform-a", MatrixFamily::kUniform, 96, 96, 0.05, 0.0, 0, 11};
  specs[1] = {"uniform-b", MatrixFamily::kUniform, 96, 96, 0.08, 0.0, 0, 12};
  auto traced_suite = [&] {
    obs::TraceSession session;
    session.install();
    (void)run_suite(specs, SpmmConfig{}, 4, {}, 4);
    session.uninstall();
    SpanTree tree;
    for (const auto& ev : session.events()) {
      tree.emplace_back(ev.track, ev.name, ev.args_json);
    }
    return tree;
  };
  EXPECT_EQ(traced_suite(), traced_suite());
}

// ---------------------------------------------------------------------
// Cancellation: a sweep interrupted mid-suite still exports a
// schema-valid trace covering the work that did complete — the first
// artifact anyone reads when diagnosing why a run was cut short.

TEST(TracePipeline, MidSuiteCancellationStillExportsSchemaValidTrace) {
  std::vector<MatrixSpec> specs(4);
  specs[0] = {"uniform-a", MatrixFamily::kUniform, 96, 96, 0.05, 0.0, 0, 11};
  specs[1] = {"uniform-b", MatrixFamily::kUniform, 96, 96, 0.08, 0.0, 0, 12};
  specs[2] = {"uniform-c", MatrixFamily::kUniform, 96, 96, 0.06, 0.0, 0, 13};
  specs[3] = {"uniform-d", MatrixFamily::kUniform, 96, 96, 0.07, 0.0, 0, 14};

  const std::string path = testing::TempDir() + "nmdt_trace_cancel.nmdj";
  std::remove(path.c_str());
  SuiteOptions opts;
  opts.jobs = 1;  // serial arms: the cut point is exactly reproducible
  opts.journal_path = path;
  // Fire the cancel from the worker-side checkpoint hook right after
  // the first journal append (row 0's plan entry): with jobs=1 every
  // arm behind it observes the request at its entry poll and is
  // abandoned, and run_suite throws CancelledError after the drain.
  opts.on_checkpoint = [&](usize entries) {
    if (entries == 1) opts.cancel.request(CancelReason::kUser);
  };

  obs::TraceSession session;
  session.install();
  EXPECT_THROW((void)run_suite(specs, SpmmConfig{}, 4, {}, opts), CancelledError);
  session.uninstall();
  std::remove(path.c_str());

  // The interrupted session still holds spans for the completed prefix
  // and exports exactly the same schema an uninterrupted run would.
  ASSERT_FALSE(session.events().empty());
  std::ostringstream os;
  session.write_chrome_json(os);
  std::string error;
  obs::TraceCheckReport report;
  ASSERT_TRUE(obs::validate_chrome_trace(os.str(), &error, &report)) << error;
  EXPECT_GT(report.complete_spans, 0u);

  usize runs = 0, arms_done = 0, arms_abandoned = 0;
  for (const auto& ev : session.events()) {
    runs += ev.name == "suite.run" ? 1 : 0;
    if (ev.name == "suite.arm") {
      if (ev.args_json.find("\"cancelled\":1") != std::string::npos) {
        ++arms_abandoned;
      } else {
        ++arms_done;
      }
    }
  }
  EXPECT_EQ(runs, 1u);  // the suite.run span closed on the throw path
  // Abandoned arms are visible in the trace (the `cancelled` arg), and
  // the sweep really was cut short: nowhere near all 16 arms committed.
  EXPECT_GE(arms_abandoned, 1u);
  EXPECT_LT(arms_done, specs.size() * 4);
}

// ---------------------------------------------------------------------
// No-op: tracing never changes results.

TEST(TraceNoop, TracedSweepIsBitIdenticalToUntraced) {
  const Csr A = test_matrix();
  const DenseMatrix B = random_b(A.cols, 8, 5);
  SpmmConfig cfg;
  cfg.jobs = 4;

  for (KernelKind kind : kAllKernels) {
    SCOPED_TRACE(kernel_name(kind));
    const SpmmResult bare = run_spmm(kind, A, B, cfg);
    SpmmResult traced = [&] {
      obs::TraceSession session;
      session.install();
      SpmmResult r = run_spmm(kind, A, B, cfg);
      session.uninstall();
      EXPECT_FALSE(session.events().empty());
      return r;
    }();
    expect_identical(bare, traced);
  }
}

}  // namespace
}  // namespace nmdt
