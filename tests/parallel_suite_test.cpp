// Concurrency tests: the ThreadPool primitive and the parallel suite
// runner.  The load-bearing property is determinism — run_suite must
// produce bit-identical rows at any job count — plus the SuiteProgress
// contract (caller thread only, monotonically increasing `done`).
// These are the tests the tsan CMake preset runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/executor.hpp"
#include "util/thread_pool.hpp"

namespace nmdt {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  // The suite runner's fan-out shape: a prep task enqueues four arm
  // tasks.  Workers must never block waiting for their children.
  ThreadPool pool(2);
  std::atomic<int> arms{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      for (int a = 0; a < 4; ++a) {
        pool.submit([&] { arms.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(arms.load(), 40);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after the queue is empty
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, NonPositiveThreadCountMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
  EXPECT_EQ(pool.size(), ThreadPool::default_jobs());
}

TEST(ThreadPool, RunIndexedVisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  run_indexed(4, static_cast<i64>(hits.size()),
              [&](i64 i) { hits[static_cast<usize>(i)].fetch_add(1); });
  for (usize i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, RunIndexedSingleJobRunsInline) {
  // jobs == 1 must not spawn a pool: the shard bodies of a serial
  // kernel run on the calling thread (and tools like gdb see one
  // stack).
  const auto caller = std::this_thread::get_id();
  bool same_thread = true;
  run_indexed(1, 16, [&](i64) {
    if (std::this_thread::get_id() != caller) same_thread = false;
  });
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPool, RunIndexedZeroItemsIsANoOp) {
  int calls = 0;
  run_indexed(4, 0, [&](i64) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, RunIndexedPropagatesTheFirstException) {
  std::atomic<int> ran{0};
  EXPECT_THROW(run_indexed(4, 64,
                           [&](i64 i) {
                             ran.fetch_add(1);
                             if (i == 7) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // Remaining indices still execute (no worker abandons the loop).
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, RunIndexedRethrowsTheLowestIndexExceptionAtAnyJobCount) {
  // Several indices throw; the caller must deterministically see the
  // lowest one — regardless of which worker finished first — and every
  // index must still run (the drain-then-rethrow contract the suite
  // runner's error isolation builds on).
  for (int jobs : {1, 2, 8}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    std::atomic<int> ran{0};
    try {
      run_indexed(jobs, 64, [&](i64 i) {
        ran.fetch_add(1);
        if (i == 5 || i == 20 || i == 41) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "the exception must propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 5");
    }
    EXPECT_EQ(ran.load(), 64);
  }
}

std::vector<MatrixSpec> tiny_specs() {
  // A slice of the standard suite, small enough to run all four arms
  // per matrix quickly but large enough to exercise the fan-out.
  auto specs = standard_suite(SuiteScale::kTiny);
  if (specs.size() > 12) specs.resize(12);
  return specs;
}

void expect_rows_identical(const std::vector<SuiteRow>& a,
                           const std::vector<SuiteRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.name, b[i].spec.name) << "row " << i;
    // Bit-identical doubles — not approximate — is the contract.
    EXPECT_EQ(a[i].profile.ssf, b[i].profile.ssf) << a[i].spec.name;
    EXPECT_EQ(a[i].t_baseline_ms, b[i].t_baseline_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].t_dcsr_c_ms, b[i].t_dcsr_c_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].t_online_b_ms, b[i].t_online_b_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].t_offline_b_ms, b[i].t_offline_b_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].offline_prep_ms, b[i].offline_prep_ms) << a[i].spec.name;
  }
}

TEST(ParallelSuite, RowsAreBitIdenticalAcrossJobCounts) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto seq = run_suite(specs, cfg, K, {}, 1);
  const auto par = run_suite(specs, cfg, K, {}, 4);
  expect_rows_identical(seq, par);
}

TEST(ParallelSuite, RepeatedParallelRunsAreDeterministic) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto first = run_suite(specs, cfg, K, {}, 4);
  const auto second = run_suite(specs, cfg, K, {}, 4);
  expect_rows_identical(first, second);
}

TEST(ParallelSuite, ProgressIsMonotoneAndCallerThreadOnly) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const std::thread::id caller = std::this_thread::get_id();
  usize last_done = 0;
  usize calls = 0;
  const auto rows = run_suite(
      specs, cfg, K,
      [&](usize done, usize total, const SuiteRow&) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(done, last_done + 1);  // strictly increasing by one
        EXPECT_LE(done, total);
        last_done = done;
        ++calls;
      },
      4);
  EXPECT_EQ(calls, rows.size());
  EXPECT_EQ(last_done, rows.size());
}

}  // namespace
}  // namespace nmdt
