// Offline trace analytics + hardware profiler tests (src/obs/
// trace_analysis.hpp, src/obs/profiler.hpp):
//
//  * TraceAnalysis.*: nesting reconstruction, exclusive-time
//    accounting, critical path, folded stacks, and diff — first on a
//    synthetic trace with exact expected values, then round-tripped
//    through the real tracer on a deterministic jobs=4 kernel run.
//  * Profiler.*: ProfScope is a strict no-op unless profiling is
//    explicitly enabled; when enabled it attaches hw.* args to spans
//    and degrades to the rusage fallback where perf_event is
//    unavailable (containers, non-Linux) without ever failing.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

#include "core/plan.hpp"
#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nmdt::obs {
namespace {

/// Hand-built trace with a known tree:
///   tid 1:  root[0,100]  >  child[10,40]  >  leaf[12,17]
///                         >  child[50,70]
///   tid 2:  other[0,40]
/// Exclusive: root 50, first child 25, second child 20, leaf 5, other 40.
const char* kSyntheticTrace = R"({"traceEvents": [
  {"name": "root",  "ph": "X", "ts": 0.0,  "dur": 100.0, "pid": 1, "tid": 1},
  {"name": "child", "ph": "X", "ts": 10.0, "dur": 30.0,  "pid": 1, "tid": 1},
  {"name": "leaf",  "ph": "X", "ts": 12.0, "dur": 5.0,   "pid": 1, "tid": 1},
  {"name": "child", "ph": "X", "ts": 50.0, "dur": 20.0,  "pid": 1, "tid": 1},
  {"name": "other", "ph": "X", "ts": 0.0,  "dur": 40.0,  "pid": 1, "tid": 2},
  {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "nmdt"}}
]})";

const LabelStat* find_label(const TraceProfile& p, const std::string& name) {
  for (const auto& l : p.labels) {
    if (l.label == name) return &l;
  }
  return nullptr;
}

TEST(TraceAnalysis, SyntheticTraceHasExactExclusiveTimes) {
  const TraceProfile p = analyze_trace(kSyntheticTrace);
  ASSERT_EQ(p.spans.size(), 5u);  // metadata event ignored
  EXPECT_EQ(p.tracks, 2u);
  EXPECT_DOUBLE_EQ(p.wall_us, 100.0);
  // Σ exclusive == Σ root inclusive (100 + 40).
  EXPECT_DOUBLE_EQ(p.total_excl_us, 140.0);

  const LabelStat* root = find_label(p, "root");
  const LabelStat* child = find_label(p, "child");
  const LabelStat* leaf = find_label(p, "leaf");
  const LabelStat* other = find_label(p, "other");
  ASSERT_TRUE(root && child && leaf && other);
  EXPECT_DOUBLE_EQ(root->excl_us, 50.0);  // 100 - 30 - 20
  EXPECT_DOUBLE_EQ(root->incl_us, 100.0);
  EXPECT_EQ(child->count, 2u);
  EXPECT_DOUBLE_EQ(child->excl_us, 45.0);  // (30 - 5) + 20
  EXPECT_DOUBLE_EQ(child->incl_us, 50.0);
  EXPECT_DOUBLE_EQ(leaf->excl_us, 5.0);
  EXPECT_DOUBLE_EQ(other->excl_us, 40.0);
  // Labels are sorted by exclusive time, descending.
  EXPECT_EQ(p.labels.front().label, "root");

  // Depth / parent reconstruction for the deepest chain.
  for (const auto& s : p.spans) {
    if (s.name == "leaf") {
      EXPECT_EQ(s.depth, 2);
      ASSERT_GE(s.parent, 0);
      EXPECT_EQ(p.spans[static_cast<usize>(s.parent)].name, "child");
    }
  }
}

TEST(TraceAnalysis, SyntheticCriticalPathDescendsLongestChild) {
  const TraceProfile p = analyze_trace(kSyntheticTrace);
  // Longest root is "root" (100); its longest child the 30 us "child";
  // its only child the 5 us "leaf".
  ASSERT_EQ(p.critical_path.size(), 3u);
  EXPECT_EQ(p.critical_path[0].name, "root");
  EXPECT_DOUBLE_EQ(p.critical_path[0].incl_us, 100.0);
  EXPECT_EQ(p.critical_path[1].name, "child");
  EXPECT_DOUBLE_EQ(p.critical_path[1].incl_us, 30.0);
  EXPECT_EQ(p.critical_path[2].name, "leaf");
  EXPECT_DOUBLE_EQ(p.critical_path[2].incl_us, 5.0);
}

TEST(TraceAnalysis, SyntheticFoldedStacksCarryIntegerNanoseconds) {
  const TraceProfile p = analyze_trace(kSyntheticTrace);
  // Exclusive time keyed by semicolon-joined stack path, in µs.
  ASSERT_TRUE(p.folded.count("root"));
  EXPECT_DOUBLE_EQ(p.folded.at("root"), 50.0);
  EXPECT_DOUBLE_EQ(p.folded.at("root;child"), 45.0);
  EXPECT_DOUBLE_EQ(p.folded.at("root;child;leaf"), 5.0);
  EXPECT_DOUBLE_EQ(p.folded.at("other"), 40.0);

  const std::string lines = folded_stacks(p);
  EXPECT_NE(lines.find("root;child;leaf 5000\n"), std::string::npos);
  EXPECT_NE(lines.find("root 50000\n"), std::string::npos);
  // Every line is "stack <integer>": no decimal points anywhere.
  EXPECT_EQ(lines.find('.'), std::string::npos);
}

TEST(TraceAnalysis, DiffReportsPerLabelDeltasSortedByMagnitude) {
  const TraceProfile base = analyze_trace(kSyntheticTrace);
  const char* faster = R"({"traceEvents": [
    {"name": "root",  "ph": "X", "ts": 0.0, "dur": 60.0, "pid": 1, "tid": 1},
    {"name": "child", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 1, "tid": 1},
    {"name": "fresh", "ph": "X", "ts": 0.0, "dur": 8.0,  "pid": 1, "tid": 2}
  ]})";
  const TraceProfile cur = analyze_trace(faster);
  const auto deltas = diff_profiles(base, cur);

  double prev = 1e300;
  bool saw_child = false, saw_fresh = false, saw_other = false;
  for (const auto& d : deltas) {
    const double mag = d.delta_us() < 0 ? -d.delta_us() : d.delta_us();
    EXPECT_LE(mag, prev);  // sorted by |delta| descending
    prev = mag;
    if (d.label == "child") {
      saw_child = true;
      EXPECT_DOUBLE_EQ(d.excl_base_us, 45.0);
      EXPECT_DOUBLE_EQ(d.excl_cur_us, 10.0);
      EXPECT_EQ(d.count_base, 2u);
      EXPECT_EQ(d.count_cur, 1u);
    } else if (d.label == "fresh") {  // only in cur
      saw_fresh = true;
      EXPECT_DOUBLE_EQ(d.excl_base_us, 0.0);
      EXPECT_DOUBLE_EQ(d.ratio(), 0.0);
    } else if (d.label == "other") {  // only in base
      saw_other = true;
      EXPECT_DOUBLE_EQ(d.excl_cur_us, 0.0);
    }
  }
  EXPECT_TRUE(saw_child && saw_fresh && saw_other);
}

TEST(TraceAnalysis, MalformedInputThrowsParseError) {
  EXPECT_THROW(analyze_trace("{"), ParseError);
  EXPECT_THROW(analyze_trace("[]"), ParseError);            // not an object
  EXPECT_THROW(analyze_trace("{\"a\": 1}"), ParseError);    // no traceEvents
  EXPECT_THROW(analyze_trace_file("/nonexistent/t.json"), ParseError);
}

TEST(TraceAnalysis, MarkdownReportCarriesEverySection) {
  const TraceProfile p = analyze_trace(kSyntheticTrace);
  std::ostringstream os;
  ReportOptions opts;
  opts.top_n = 3;
  opts.trace_label = "synthetic.json";
  write_markdown_report(os, p, opts);
  const std::string md = os.str();
  EXPECT_NE(md.find("# nmdt trace report"), std::string::npos);
  EXPECT_NE(md.find("synthetic.json"), std::string::npos);
  EXPECT_NE(md.find("## Hotspots"), std::string::npos);
  EXPECT_NE(md.find("## Critical path"), std::string::npos);
  EXPECT_NE(md.find("## Folded stacks"), std::string::npos);
  EXPECT_NE(md.find("`root`"), std::string::npos);
  EXPECT_EQ(md.find("## Diff"), std::string::npos);  // no baseline given

  std::ostringstream os2;
  write_markdown_report(os2, p, opts, &p);  // self-diff: all ratios 1.0
  EXPECT_NE(os2.str().find("## Diff"), std::string::npos);
}

// ---------------------------------------------------------------------
// Round-trip through the real tracer: a deterministic jobs=4 kernel run
// exported to Chrome JSON and analyzed back.

std::string traced_online_json() {
  const Csr A = gen_powerlaw_rows(512, 4096, 0.01, 1.2, 7);
  SpmmConfig cfg;  // counting mode: fast and fully deterministic
  cfg.jobs = 4;
  const auto plan = build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0});
  Rng rng(3);
  DenseMatrix B(A.cols, 8);
  B.randomize(rng);

  TraceSession session;
  session.install();
  (void)run_spmm(KernelKind::kTiledDcsrOnline, plan->operands(), B, cfg);
  session.uninstall();
  std::ostringstream os;
  session.write_chrome_json(os);
  return os.str();
}

TEST(TraceAnalysis, RoundTripsDeterministicJobs4Trace) {
  const TraceProfile p = analyze_trace(traced_online_json());
  ASSERT_FALSE(p.spans.empty());
  EXPECT_GT(p.tracks, 1u);  // shards fanned out to their own lanes
  EXPECT_GT(p.wall_us, 0.0);

  // Accounting invariants: exclusive ≤ inclusive per span, and the
  // folded stacks partition exactly the total exclusive time.
  double folded_sum = 0.0;
  for (const auto& [stack, us] : p.folded) folded_sum += us;
  EXPECT_NEAR(folded_sum, p.total_excl_us, 1e-6 * std::max(1.0, p.total_excl_us));
  for (const auto& s : p.spans) {
    EXPECT_GE(s.self_us, 0.0);
    EXPECT_LE(s.self_us, s.dur_us + 1e-9);
  }

  std::set<std::string> labels;
  for (const auto& l : p.labels) labels.insert(l.label);
  EXPECT_TRUE(labels.count("shard"));
  EXPECT_TRUE(labels.count("shard_set"));
  ASSERT_FALSE(p.critical_path.empty());
  EXPECT_EQ(p.critical_path.front().depth, 0);

  // The span *structure* is deterministic run-to-run: same label set
  // and counts, same stack shapes — only the time values move.
  const TraceProfile q = analyze_trace(traced_online_json());
  ASSERT_EQ(q.labels.size(), p.labels.size());
  std::set<std::string> labels_q;
  for (const auto& l : q.labels) labels_q.insert(l.label);
  EXPECT_EQ(labels_q, labels);
  std::set<std::string> stacks_p, stacks_q;
  for (const auto& [stack, us] : p.folded) stacks_p.insert(stack);
  for (const auto& [stack, us] : q.folded) stacks_q.insert(stack);
  EXPECT_EQ(stacks_p, stacks_q);
}

// ---------------------------------------------------------------------
// Hardware profiler: explicit opt-in, graceful degradation.

TEST(Profiler, HostInfoIsPopulatedAndStable) {
  const HostInfo& h = host_info();
  EXPECT_FALSE(h.cpu_model.empty());
  EXPECT_GT(h.cores, 0);
  EXPECT_FALSE(h.simd_tier.empty());
  EXPECT_FALSE(h.compiler.empty());
  EXPECT_EQ(h.fingerprint(), host_info().fingerprint());
  EXPECT_NE(h.fingerprint().find('|'), std::string::npos);
  // The JSON literal parses and carries the fields downstream tooling
  // keys on.
  EXPECT_NE(h.json().find("cpu_model"), std::string::npos);
  EXPECT_NE(h.json().find("simd_tier"), std::string::npos);
}

TEST(Profiler, DisabledScopeIsAStrictNoop) {
  ASSERT_FALSE(profiling_enabled());  // default state
  TraceSession session;
  session.install();
  {
    TraceSpan span("prof.off");
    ProfScope prof(span);
    EXPECT_FALSE(prof.active());
    EXPECT_FALSE(prof.sample().valid());
  }
  session.uninstall();
  ASSERT_EQ(session.events().size(), 1u);
  // No hw.* args were attached: the deterministic-trace contract holds.
  EXPECT_EQ(session.events()[0].args_json.find("hw."), std::string::npos);
}

TEST(Profiler, EnabledScopeAttachesCountersAndDegradesGracefully) {
  if (profiler_backend() == ProfBackend::kDisabled) {
    GTEST_SKIP() << "NMDT_PERF_EVENTS=off in this environment";
  }
  set_profiling_enabled(true);
  TraceSession session;
  session.install();
  {
    TraceSpan span("prof.on");
    ProfScope prof(span);
    EXPECT_TRUE(prof.active());
    // Burn a little CPU so the deltas are non-trivially sampled.
    volatile double acc = 0.0;
    for (int i = 0; i < 100000; ++i) acc = acc + static_cast<double>(i) * 1e-9;
    const HwCounters c = prof.sample();
    EXPECT_TRUE(c.valid());
    if (c.source == ProfBackend::kPerfEvent) {
      EXPECT_TRUE(c.has_counters());
      EXPECT_GT(c.cycles, 0);
      EXPECT_GT(c.instructions, 0);
      EXPECT_GT(c.ipc(), 0.0);
    } else {
      // Fallback: counters absent by contract, times still filled.
      EXPECT_EQ(c.source, ProfBackend::kFallback);
      EXPECT_FALSE(c.has_counters());
      EXPECT_DOUBLE_EQ(c.ipc(), 0.0);
    }
    EXPECT_NE(c.json().find("\"source\""), std::string::npos);
  }
  session.uninstall();
  set_profiling_enabled(false);
  ASSERT_EQ(session.events().size(), 1u);
  EXPECT_NE(session.events()[0].args_json.find("\"hw.src\""), std::string::npos);
}

}  // namespace
}  // namespace nmdt::obs
