// Binary serialization tests: round trips, cross-kind rejection, and
// corruption/truncation failure injection.
#include <gtest/gtest.h>

#include <sstream>

#include "formats/serialize.hpp"
#include "matgen/generators.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

TEST(Serialize, CsrRoundTrip) {
  const Csr m = gen_uniform(200, 150, 0.03, 1);
  std::stringstream ss;
  save_csr(ss, m);
  const Csr back = load_csr(ss);
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.cols, m.cols);
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.val, m.val);
}

TEST(Serialize, EmptyCsrRoundTrip) {
  Csr m;
  m.rows = 5;
  m.cols = 7;
  m.row_ptr.assign(6, 0);
  std::stringstream ss;
  save_csr(ss, m);
  const Csr back = load_csr(ss);
  EXPECT_EQ(back.nnz(), 0);
  EXPECT_EQ(back.cols, 7);
}

TEST(Serialize, DenseRoundTrip) {
  Rng rng(2);
  DenseMatrix m(33, 17);
  m.randomize(rng);
  std::stringstream ss;
  save_dense(ss, m);
  const DenseMatrix back = load_dense(ss);
  EXPECT_DOUBLE_EQ(m.max_abs_diff(back), 0.0);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/nmdt_serialize_test.bin";
  const Csr m = gen_banded(100, 4, 0.5, 3);
  save_csr_file(path, m);
  const Csr back = load_csr_file(path);
  EXPECT_EQ(back.val, m.val);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream ss;
  ss << "JUNKJUNKJUNKJUNKJUNK";
  EXPECT_THROW(load_csr(ss), ParseError);
}

TEST(Serialize, RejectsWrongKind) {
  Rng rng(4);
  DenseMatrix m(4, 4);
  m.randomize(rng);
  std::stringstream ss;
  save_dense(ss, m);
  EXPECT_THROW(load_csr(ss), ParseError);
}

TEST(Serialize, RejectsTruncation) {
  const Csr m = gen_uniform(64, 64, 0.1, 5);
  std::stringstream ss;
  save_csr(ss, m);
  const std::string full = ss.str();
  for (usize cut : {usize{3}, usize{10}, full.size() / 2, full.size() - 2}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(load_csr(truncated), Error) << "cut at " << cut;
  }
}

TEST(Serialize, RejectsCorruptedStructure) {
  const Csr m = gen_uniform(64, 64, 0.1, 6);
  std::stringstream ss;
  save_csr(ss, m);
  std::string bytes = ss.str();
  // Flip a byte inside row_ptr payload (past the 28-byte header+dims).
  bytes[40] = static_cast<char>(bytes[40] ^ 0x7f);
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_csr(corrupted), Error);
}

TEST(Serialize, RejectsImplausibleVectorLength) {
  // Hand-craft a version-2 payload (valid checksum) with an absurd
  // row_ptr length: the rejection must come from the sanity bound, not
  // from the CRC.
  std::string payload;
  const auto append = [&payload](const void* p, usize n) {
    payload.append(static_cast<const char*>(p), n);
  };
  const u32 kind = 1;
  const i64 rows = 4, cols = 4, absurd = i64{1} << 40;
  append(&kind, 4);
  append(&rows, 8);
  append(&cols, 8);
  append(&absurd, 8);
  std::stringstream ss;
  ss.write("NMDT", 4);
  const u32 version = 2;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  ss.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const u32 crc = crc32(payload.data(), payload.size());
  ss.write(reinterpret_cast<const char*>(&crc), 4);
  EXPECT_THROW(load_csr(ss), ParseError);
}

TEST(Serialize, RejectsPreChecksumVersionWithClearError) {
  std::stringstream ss;
  ss.write("NMDT", 4);
  const u32 version = 1, kind = 1;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  ss.write(reinterpret_cast<const char*>(&kind), 4);
  try {
    load_csr(ss);
    FAIL() << "version-1 stream must be rejected";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("version 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("re-save"), std::string::npos);
  }
}

TEST(Serialize, ChecksumCatchesEveryPayloadByteFlip) {
  Csr m;
  m.rows = 2;
  m.cols = 2;
  m.row_ptr = {0, 1, 2};
  m.col_idx = {0, 1};
  m.val = {1.0f, 2.0f};
  std::stringstream ss;
  save_csr(ss, m);
  const std::string golden = ss.str();
  // Flip one bit of every byte past the version word (payload + CRC
  // trailer): each single-bit corruption must be rejected.
  for (usize i = 8; i < golden.size(); ++i) {
    std::string bytes = golden;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x10);
    std::stringstream corrupted(bytes);
    EXPECT_THROW(load_csr(corrupted), FormatError) << "flip at byte " << i;
  }
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW(load_csr_file("/nonexistent/m.bin"), ParseError);
}

}  // namespace
}  // namespace nmdt
