// Binary serialization tests: round trips, cross-kind rejection, and
// corruption/truncation failure injection.
#include <gtest/gtest.h>

#include <sstream>

#include "formats/serialize.hpp"
#include "matgen/generators.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

TEST(Serialize, CsrRoundTrip) {
  const Csr m = gen_uniform(200, 150, 0.03, 1);
  std::stringstream ss;
  save_csr(ss, m);
  const Csr back = load_csr(ss);
  EXPECT_EQ(back.rows, m.rows);
  EXPECT_EQ(back.cols, m.cols);
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.val, m.val);
}

TEST(Serialize, EmptyCsrRoundTrip) {
  Csr m;
  m.rows = 5;
  m.cols = 7;
  m.row_ptr.assign(6, 0);
  std::stringstream ss;
  save_csr(ss, m);
  const Csr back = load_csr(ss);
  EXPECT_EQ(back.nnz(), 0);
  EXPECT_EQ(back.cols, 7);
}

TEST(Serialize, DenseRoundTrip) {
  Rng rng(2);
  DenseMatrix m(33, 17);
  m.randomize(rng);
  std::stringstream ss;
  save_dense(ss, m);
  const DenseMatrix back = load_dense(ss);
  EXPECT_DOUBLE_EQ(m.max_abs_diff(back), 0.0);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/nmdt_serialize_test.bin";
  const Csr m = gen_banded(100, 4, 0.5, 3);
  save_csr_file(path, m);
  const Csr back = load_csr_file(path);
  EXPECT_EQ(back.val, m.val);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream ss;
  ss << "JUNKJUNKJUNKJUNKJUNK";
  EXPECT_THROW(load_csr(ss), ParseError);
}

TEST(Serialize, RejectsWrongKind) {
  Rng rng(4);
  DenseMatrix m(4, 4);
  m.randomize(rng);
  std::stringstream ss;
  save_dense(ss, m);
  EXPECT_THROW(load_csr(ss), ParseError);
}

TEST(Serialize, RejectsTruncation) {
  const Csr m = gen_uniform(64, 64, 0.1, 5);
  std::stringstream ss;
  save_csr(ss, m);
  const std::string full = ss.str();
  for (usize cut : {usize{3}, usize{10}, full.size() / 2, full.size() - 2}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(load_csr(truncated), Error) << "cut at " << cut;
  }
}

TEST(Serialize, RejectsCorruptedStructure) {
  const Csr m = gen_uniform(64, 64, 0.1, 6);
  std::stringstream ss;
  save_csr(ss, m);
  std::string bytes = ss.str();
  // Flip a byte inside row_ptr payload (past the 28-byte header+dims).
  bytes[40] = static_cast<char>(bytes[40] ^ 0x7f);
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_csr(corrupted), Error);
}

TEST(Serialize, RejectsImplausibleVectorLength) {
  // Hand-craft a header with an absurd row_ptr length.
  std::stringstream ss;
  ss.write("NMDT", 4);
  const u32 version = 1, kind = 1;
  ss.write(reinterpret_cast<const char*>(&version), 4);
  ss.write(reinterpret_cast<const char*>(&kind), 4);
  const i64 rows = 4, cols = 4, absurd = i64{1} << 40;
  ss.write(reinterpret_cast<const char*>(&rows), 8);
  ss.write(reinterpret_cast<const char*>(&cols), 8);
  ss.write(reinterpret_cast<const char*>(&absurd), 8);
  EXPECT_THROW(load_csr(ss), ParseError);
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW(load_csr_file("/nonexistent/m.bin"), ParseError);
}

}  // namespace
}  // namespace nmdt
