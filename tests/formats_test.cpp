// Unit and property tests for the formats module: validation failure
// injection, round-trip conversions, tiling partition properties, and
// footprint accounting identities.
#include <gtest/gtest.h>

#include <sstream>

#include "formats/convert.hpp"
#include "formats/footprint.hpp"
#include "formats/matrix_market.hpp"
#include "formats/tiling.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nmdt {
namespace {

/// The paper's Fig. 1 example: 3x4 with entries a,b,c in row 0 and x,y
/// in row 2; row 1 empty.
Csr fig1_matrix() {
  Coo coo;
  coo.rows = 3;
  coo.cols = 4;
  coo.push(0, 0, 1.0f);  // a
  coo.push(0, 1, 2.0f);  // b
  coo.push(0, 2, 3.0f);  // c
  coo.push(2, 1, 4.0f);  // x
  coo.push(2, 3, 5.0f);  // y
  return csr_from_coo(coo);
}

Coo random_coo(index_t rows, index_t cols, double density, u64 seed) {
  Rng rng(seed);
  Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (rng.chance(density)) coo.push(r, c, static_cast<value_t>(rng.uniform(-1, 1)));
    }
  }
  return coo;
}

TEST(Coo, DensityAndPush) {
  Coo coo;
  coo.rows = 10;
  coo.cols = 10;
  coo.push(1, 2, 3.0f);
  EXPECT_EQ(coo.nnz(), 1);
  EXPECT_DOUBLE_EQ(coo.density(), 0.01);
}

TEST(Coo, CoalesceSumsDuplicates) {
  Coo coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(1, 1, 2.0f);
  coo.push(0, 0, 1.0f);
  coo.push(1, 1, 3.0f);
  coo.coalesce();
  EXPECT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.row[0], 0);
  EXPECT_FLOAT_EQ(coo.val[1], 5.0f);
}

TEST(Coo, ValidateRejectsOutOfRange) {
  Coo coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(2, 0, 1.0f);
  EXPECT_THROW(coo.validate(), FormatError);
}

TEST(Coo, ValidateRejectsLengthMismatch) {
  Coo coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.row.push_back(0);
  EXPECT_THROW(coo.validate(), FormatError);
}

TEST(Csr, Fig1Example) {
  const Csr csr = fig1_matrix();
  EXPECT_EQ(csr.nnz(), 5);
  EXPECT_EQ(csr.rows, 3);
  // Paper Fig. 1: row_ptr = [0, 3, 3, 5]; row 1 is empty.
  EXPECT_EQ(csr.row_ptr, (std::vector<index_t>{0, 3, 3, 5}));
  EXPECT_TRUE(csr.row_empty(1));
  EXPECT_EQ(csr.nonzero_rows(), 2);
}

TEST(Csr, ValidateRejectsNonMonotoneRowPtr) {
  Csr csr = fig1_matrix();
  csr.row_ptr[1] = 4;
  csr.row_ptr[2] = 3;
  EXPECT_THROW(csr.validate(), FormatError);
}

TEST(Csr, ValidateRejectsBadColumnIndex) {
  Csr csr = fig1_matrix();
  csr.col_idx[0] = 99;
  EXPECT_THROW(csr.validate(), FormatError);
}

TEST(Csr, ValidateRejectsDescendingColumns) {
  Csr csr = fig1_matrix();
  std::swap(csr.col_idx[0], csr.col_idx[1]);
  EXPECT_THROW(csr.validate(), FormatError);
}

TEST(Csr, ValidateRejectsWrongRowPtrLength) {
  Csr csr = fig1_matrix();
  csr.row_ptr.pop_back();
  EXPECT_THROW(csr.validate(), FormatError);
}

TEST(Csc, TransposeOfFig1) {
  const Csc csc = csc_from_csr(fig1_matrix());
  csc.validate();
  EXPECT_EQ(csc.nnz(), 5);
  EXPECT_EQ(csc.col_nnz(1), 2);  // b and x live in column 1
  EXPECT_EQ(csc.col_nnz(3), 1);  // y
}

TEST(Csc, ValidateRejectsNonAscendingRows) {
  Csc csc = csc_from_csr(fig1_matrix());
  std::swap(csc.row_idx[csc.col_ptr[1]], csc.row_idx[csc.col_ptr[1] + 1]);
  EXPECT_THROW(csc.validate(), FormatError);
}

TEST(Dcsr, DropsEmptyRows) {
  const Dcsr d = dcsr_from_csr(fig1_matrix());
  d.validate();
  EXPECT_EQ(d.nnz_rows(), 2);
  EXPECT_EQ(d.row_idx, (std::vector<index_t>{0, 2}));
  EXPECT_EQ(d.nnz(), 5);
}

TEST(Dcsr, ValidateRejectsEmptyDenseRow) {
  Dcsr d = dcsr_from_csr(fig1_matrix());
  d.row_idx.push_back(1);
  d.row_ptr.push_back(d.row_ptr.back());  // empty segment — illegal in DCSR
  EXPECT_THROW(d.validate(), FormatError);
}

TEST(Dense, RandomizeAndDiff) {
  Rng rng(1);
  DenseMatrix a(4, 5);
  a.randomize(rng);
  DenseMatrix b = a;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
  b.at(2, 3) += 0.5f;
  EXPECT_NEAR(a.max_abs_diff(b), 0.5, 1e-6);
}

TEST(Dense, DiffRejectsShapeMismatch) {
  DenseMatrix a(2, 2), b(2, 3);
  EXPECT_THROW(a.max_abs_diff(b), FormatError);
}

// ---------------------------------------------------------------------
// Round-trip property tests over random matrices.
// ---------------------------------------------------------------------

class RoundTrip : public testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(RoundTrip, CooCsrCooPreservesEntries) {
  const auto [rows, cols, density] = GetParam();
  Coo coo = random_coo(rows, cols, density, 100 + rows);
  Csr csr = csr_from_coo(coo);
  csr.validate();
  Coo back = coo_from_csr(csr);
  coo.coalesce();
  back.coalesce();
  EXPECT_EQ(coo.row, back.row);
  EXPECT_EQ(coo.col, back.col);
  EXPECT_EQ(coo.val, back.val);
}

TEST_P(RoundTrip, CsrCscCsrIsIdentity) {
  const auto [rows, cols, density] = GetParam();
  const Csr csr = csr_from_coo(random_coo(rows, cols, density, 200 + rows));
  const Csc csc = csc_from_csr(csr);
  csc.validate();
  const Csr back = csr_from_csc(csc);
  EXPECT_EQ(csr.row_ptr, back.row_ptr);
  EXPECT_EQ(csr.col_idx, back.col_idx);
  EXPECT_EQ(csr.val, back.val);
}

TEST_P(RoundTrip, CsrDcsrCsrIsIdentity) {
  const auto [rows, cols, density] = GetParam();
  const Csr csr = csr_from_coo(random_coo(rows, cols, density, 300 + rows));
  const Dcsr d = dcsr_from_csr(csr);
  d.validate();
  const Csr back = csr_from_dcsr(d);
  EXPECT_EQ(csr.row_ptr, back.row_ptr);
  EXPECT_EQ(csr.col_idx, back.col_idx);
  EXPECT_EQ(csr.val, back.val);
}

TEST_P(RoundTrip, DenseRoundTrip) {
  const auto [rows, cols, density] = GetParam();
  const Csr csr = csr_from_coo(random_coo(rows, cols, density, 400 + rows));
  const Csr back = csr_from_dense(dense_from_csr(csr));
  EXPECT_EQ(csr.col_idx, back.col_idx);
  EXPECT_EQ(csr.val, back.val);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RoundTrip,
    testing::Values(std::make_tuple(1, 1, 1.0), std::make_tuple(16, 16, 0.1),
                    std::make_tuple(64, 32, 0.05), std::make_tuple(33, 67, 0.02),
                    std::make_tuple(128, 128, 0.01), std::make_tuple(5, 200, 0.1),
                    std::make_tuple(200, 5, 0.1), std::make_tuple(50, 50, 0.0)));

// ---------------------------------------------------------------------
// Tiling partition properties.
// ---------------------------------------------------------------------

class Tiling : public testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Tiling, DcsrTilesPartitionEveryNonZeroExactlyOnce) {
  const auto [rows, cols, width, height] = GetParam();
  const Csr csr = csr_from_coo(random_coo(rows, cols, 0.05, 500 + rows + cols));
  TilingSpec spec{static_cast<index_t>(width), static_cast<index_t>(height)};
  const TiledDcsr tiled = tiled_dcsr_from_csr(csr, spec);
  EXPECT_EQ(tiled.nnz(), csr.nnz());
  Coo reassembled = coo_from_tiled(tiled);
  reassembled.coalesce();
  Coo original = coo_from_csr(csr);
  original.coalesce();
  EXPECT_EQ(reassembled.row, original.row);
  EXPECT_EQ(reassembled.col, original.col);
  EXPECT_EQ(reassembled.val, original.val);
}

TEST_P(Tiling, CsrTilesPartitionEveryNonZeroExactlyOnce) {
  const auto [rows, cols, width, height] = GetParam();
  const Csr csr = csr_from_coo(random_coo(rows, cols, 0.05, 600 + rows + cols));
  TilingSpec spec{static_cast<index_t>(width), static_cast<index_t>(height)};
  const TiledCsr tiled = tiled_csr_from_csr(csr, spec);
  EXPECT_EQ(tiled.nnz(), csr.nnz());
  Coo reassembled = coo_from_tiled(tiled);
  reassembled.coalesce();
  Coo original = coo_from_csr(csr);
  original.coalesce();
  EXPECT_EQ(reassembled.row, original.row);
  EXPECT_EQ(reassembled.col, original.col);
  EXPECT_EQ(reassembled.val, original.val);
}

TEST_P(Tiling, TileBodiesAreValidAndLocal) {
  const auto [rows, cols, width, height] = GetParam();
  const Csr csr = csr_from_coo(random_coo(rows, cols, 0.05, 700 + rows + cols));
  TilingSpec spec{static_cast<index_t>(width), static_cast<index_t>(height)};
  const TiledDcsr tiled = tiled_dcsr_from_csr(csr, spec);
  for (const auto& strip : tiled.strips) {
    for (const auto& tile : strip) {
      tile.body.validate();
      EXPECT_LE(tile.body.rows, spec.tile_height);
      EXPECT_LE(tile.body.cols, spec.strip_width);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Tiling,
    testing::Values(std::make_tuple(64, 64, 64, 64), std::make_tuple(100, 100, 64, 64),
                    std::make_tuple(128, 96, 32, 16), std::make_tuple(65, 129, 64, 64),
                    std::make_tuple(7, 7, 64, 64), std::make_tuple(200, 40, 8, 128)));

TEST(Tiling, StripDensityMatchesFig1) {
  // Fig. 1 matrix, strip width 2: strip 0 covers cols {0,1} and touches
  // rows {0,2}; strip 1 covers cols {2,3} and touches rows {0,2}.
  const std::vector<double> density = strip_nonzero_row_density(fig1_matrix(), 2);
  ASSERT_EQ(density.size(), 2u);
  EXPECT_NEAR(density[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(density[1], 2.0 / 3.0, 1e-12);
}

TEST(Tiling, RejectsZeroWidth) {
  TilingSpec spec{0, 64};
  EXPECT_THROW(tiled_dcsr_from_csr(fig1_matrix(), spec), ConfigError);
}

// ---------------------------------------------------------------------
// Footprint accounting.
// ---------------------------------------------------------------------

TEST(Footprint, CsrMatchesAnalyticalFormula) {
  const Csr csr = fig1_matrix();
  const Footprint f = footprint(csr);
  // Paper Sec. 2: 8*nnz + 4*(rows+1).
  EXPECT_EQ(f.total(), csr_bytes(csr.rows, csr.nnz()));
  EXPECT_EQ(f.data_bytes, 5 * 4);
  EXPECT_EQ(f.metadata_bytes, 5 * 4 + 4 * 4);
}

TEST(Footprint, DcsrSmallerRowPtrButExtraRowIdx) {
  const Csr csr = fig1_matrix();
  const Dcsr d = dcsr_from_csr(csr);
  const Footprint fc = footprint(csr);
  const Footprint fd = footprint(d);
  // 2 non-empty rows: row_ptr 3 entries + row_idx 2 entries vs 4 entries.
  EXPECT_EQ(fd.metadata_bytes - fc.metadata_bytes, (3 + 2 - 4) * 4);
}

TEST(Footprint, TiledCsrPaysRowPtrPerTile) {
  // A highly sparse matrix tiled into 64-wide strips: tiled CSR metadata
  // should dwarf tiled DCSR metadata (the Fig. 8 effect).
  const Csr csr = csr_from_coo(random_coo(512, 512, 0.002, 42));
  TilingSpec spec{64, 64};
  const Footprint fcsr = footprint(tiled_csr_from_csr(csr, spec));
  const Footprint fdcsr = footprint(tiled_dcsr_from_csr(csr, spec));
  EXPECT_GT(fcsr.metadata_bytes, 2 * fdcsr.metadata_bytes);
  EXPECT_EQ(fcsr.data_bytes, fdcsr.data_bytes);
}

TEST(Footprint, AccumulateOperator) {
  Footprint a{10, 20}, b{1, 2};
  a += b;
  EXPECT_EQ(a.data_bytes, 11);
  EXPECT_EQ(a.metadata_bytes, 22);
  EXPECT_EQ(a.total(), 33);
}

// ---------------------------------------------------------------------
// Matrix Market I/O.
// ---------------------------------------------------------------------

TEST(MatrixMarket, RoundTrip) {
  const Csr csr = fig1_matrix();
  std::ostringstream os;
  write_matrix_market(os, coo_from_csr(csr));
  std::istringstream is(os.str());
  const Csr back = csr_from_coo(read_matrix_market(is));
  EXPECT_EQ(csr.row_ptr, back.row_ptr);
  EXPECT_EQ(csr.col_idx, back.col_idx);
  EXPECT_EQ(csr.val, back.val);
}

TEST(MatrixMarket, ParsesPattern) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% comment line\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const Coo coo = read_matrix_market(is);
  EXPECT_EQ(coo.nnz(), 2);
  EXPECT_FLOAT_EQ(coo.val[0], 1.0f);
}

TEST(MatrixMarket, ExpandsSymmetric) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  const Coo coo = read_matrix_market(is);
  EXPECT_EQ(coo.nnz(), 3);  // (2,1), (1,2), (3,3)
}

TEST(MatrixMarket, ExpandsSkewSymmetric) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 5.0\n");
  const Coo coo = read_matrix_market(is);
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_FLOAT_EQ(coo.val[0] + coo.val[1], 0.0f);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream is("3 3 0\n");
  EXPECT_THROW(read_matrix_market(is), ParseError);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  std::istringstream is("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market(is), ParseError);
}

TEST(MatrixMarket, RejectsOutOfRangeCoordinate) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(is), ParseError);
}

TEST(MatrixMarket, RejectsTruncatedFile) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(is), ParseError);
}

TEST(MatrixMarket, RejectsMissingFile) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"), ParseError);
}

TEST(MatrixMarket, RandomizeValuesIsDeterministic) {
  Coo a = coo_from_csr(fig1_matrix());
  Coo b = a;
  Rng r1(9), r2(9);
  randomize_values(a, r1);
  randomize_values(b, r2);
  EXPECT_EQ(a.val, b.val);
}

}  // namespace
}  // namespace nmdt
