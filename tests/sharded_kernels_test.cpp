// Intra-kernel sharding tests.  The load-bearing property is the
// determinism contract of kernels/detail.hpp: the shard decomposition
// is a function of the work size alone, so one SpMM run produces
// bit-identical C and bit-identical simulated metrics at every
// --jobs value, in both memory modes, for every kernel family.
//
// The small ShardedKernels.* cases run under the tsan preset (data-race
// coverage of the shard fan-out); the KernelShardingSweep.* cases are
// the exhaustive 9-kernel × mode × jobs matrix on a large-enough
// matrix that every family actually splits into multiple shards.
#include <gtest/gtest.h>

#include <initializer_list>

#include "kernels/detail.hpp"
#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "util/rng.hpp"

namespace nmdt {
namespace {

constexpr KernelKind kAllKernels[] = {
    KernelKind::kCsrCStationaryRowWarp,  KernelKind::kCsrCStationaryRowThread,
    KernelKind::kDcsrCStationary,        KernelKind::kTiledCsrBStationary,
    KernelKind::kTiledDcsrBStationary,   KernelKind::kTiledDcsrOnline,
    KernelKind::kAStationary,            KernelKind::kMergeCStationary,
    KernelKind::kHongHybrid,
};

void expect_bitwise_equal(const DenseMatrix& x, const DenseMatrix& y) {
  ASSERT_EQ(x.rows(), y.rows());
  ASSERT_EQ(x.cols(), y.cols());
  const auto xs = x.data();
  const auto ys = y.data();
  i64 mismatches = 0;
  for (usize i = 0; i < xs.size(); ++i) mismatches += xs[i] != ys[i] ? 1 : 0;
  EXPECT_EQ(mismatches, 0);
}

/// Every observable of an SpMM run, compared exactly.
void expect_identical(const SpmmResult& a, const SpmmResult& b) {
  expect_bitwise_equal(a.C, b.C);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.mem, b.mem);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.engine_busy_ns, b.engine_busy_ns);
  EXPECT_EQ(a.offline_prep_ns, b.offline_prep_ns);
  EXPECT_EQ(a.timing.total_ns, b.timing.total_ns);
}

DenseMatrix random_b(index_t rows, index_t cols, u64 seed) {
  Rng rng(seed);
  DenseMatrix B(rows, cols);
  B.randomize(rng);
  return B;
}

// ---------------------------------------------------------------------
// Decomposition units.
// ---------------------------------------------------------------------

TEST(ShardedKernels, ShardCountDependsOnWorkSizeOnly) {
  using detail::kMaxKernelShards;
  using detail::shard_count;
  EXPECT_EQ(shard_count(0, 16), 1);
  EXPECT_EQ(shard_count(1, 16), 1);
  EXPECT_EQ(shard_count(15, 16), 1);
  EXPECT_EQ(shard_count(16, 16), 1);
  EXPECT_EQ(shard_count(32, 16), 2);
  EXPECT_EQ(shard_count(33, 16), 2);
  EXPECT_EQ(shard_count(16 * kMaxKernelShards, 16), kMaxKernelShards);
  EXPECT_EQ(shard_count(1 << 20, 16), kMaxKernelShards);  // clamped
}

TEST(ShardedKernels, ShardRangesPartitionTheWork) {
  using detail::shard_count;
  using detail::shard_range;
  for (i64 items : {1, 16, 33, 100, 4097}) {
    const int n = shard_count(items, 16);
    i64 covered = 0;
    for (int s = 0; s < n; ++s) {
      const auto r = shard_range(items, n, s);
      EXPECT_EQ(r.begin, covered) << "gap before shard " << s;
      EXPECT_LE(r.end - r.begin, (items + n - 1) / n + 1);
      covered = r.end;
    }
    EXPECT_EQ(covered, items);
  }
}

// ---------------------------------------------------------------------
// Race coverage (runs under the tsan preset): a multi-shard matrix at
// jobs 4, checked against the serial run.
// ---------------------------------------------------------------------

TEST(ShardedKernels, CountingRunIsIdenticalAtAnyJobCount) {
  const Csr A = gen_uniform(2048, 2048, 0.002, 7);
  const DenseMatrix B = random_b(2048, 32, 11);
  for (KernelKind kind : {KernelKind::kCsrCStationaryRowWarp,
                          KernelKind::kTiledDcsrBStationary,
                          KernelKind::kTiledDcsrOnline}) {
    SpmmConfig cfg;
    cfg.jobs = 1;
    const SpmmResult serial = run_spmm(kind, A, B, cfg);
    cfg.jobs = 4;
    const SpmmResult parallel = run_spmm(kind, A, B, cfg);
    SCOPED_TRACE(kernel_name(kind));
    expect_identical(serial, parallel);
  }
}

// ---------------------------------------------------------------------
// The exhaustive sweep: every kernel family, both memory modes, on a
// matrix large enough that every family's work axis splits into
// multiple shards (4096 cols → 64 strips → 4 shards; 4096 rows → 128
// warp groups → 4 shards; ~4k dense rows → 4 merge shards).
// ---------------------------------------------------------------------

const Csr& sweep_matrix() {
  static const Csr A = gen_uniform(4096, 4096, 0.002, 13);
  return A;
}

const DenseMatrix& sweep_b() {
  static const DenseMatrix B = random_b(4096, 32, 17);
  return B;
}

class KernelShardingSweep : public ::testing::TestWithParam<KernelKind> {};

TEST_P(KernelShardingSweep, CountingModeIdenticalAcrossJobs) {
  SpmmConfig cfg;
  cfg.jobs = 1;
  const SpmmResult serial = run_spmm(GetParam(), sweep_matrix(), sweep_b(), cfg);
  cfg.jobs = 4;
  const SpmmResult parallel = run_spmm(GetParam(), sweep_matrix(), sweep_b(), cfg);
  expect_identical(serial, parallel);
}

TEST_P(KernelShardingSweep, CacheSimModeIdenticalAcrossJobs) {
  SpmmConfig cfg = evaluation_config(4096, 32);
  cfg.jobs = 1;
  const SpmmResult serial = run_spmm(GetParam(), sweep_matrix(), sweep_b(), cfg);
  cfg.jobs = 4;
  const SpmmResult parallel = run_spmm(GetParam(), sweep_matrix(), sweep_b(), cfg);
  expect_identical(serial, parallel);
}

TEST_P(KernelShardingSweep, TraversalOrderDoesNotChangeC) {
  // Per C element the contribution order is strips-ascending under
  // either traversal, so even the B-stationary families produce
  // bit-identical output (the traversal changes locality, not math).
  SpmmConfig cfg;
  cfg.jobs = 2;
  cfg.traversal = TraversalOrder::kColumnMajor;
  const SpmmResult col = run_spmm(GetParam(), sweep_matrix(), sweep_b(), cfg);
  cfg.traversal = TraversalOrder::kRowMajor;
  const SpmmResult row = run_spmm(GetParam(), sweep_matrix(), sweep_b(), cfg);
  expect_bitwise_equal(col.C, row.C);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelShardingSweep, ::testing::ValuesIn(kAllKernels),
                         [](const ::testing::TestParamInfo<KernelKind>& param) {
                           return std::string(kernel_name(param.param));
                         });

}  // namespace
}  // namespace nmdt
