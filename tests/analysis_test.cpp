// Analysis-module tests: normalized entropy bounds and extremes, SSF
// monotonicity properties, Table-1 traffic-model identities (including
// agreement with the simulated kernels), bytes/FLOP, and the threshold
// learner.
#include <gtest/gtest.h>

#include "analysis/heuristic.hpp"
#include "analysis/profile.hpp"
#include "analysis/traffic_model.hpp"
#include "formats/convert.hpp"
#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

const TilingSpec kSpec{64, 64};

TEST(Entropy, InUnitInterval) {
  for (u64 seed = 0; seed < 5; ++seed) {
    const Csr m = gen_uniform(256, 256, 0.01, seed);
    const double h = normalized_entropy(m, kSpec);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0 + 1e-12);
  }
}

TEST(Entropy, AllSingletonSegmentsGiveMaximumEntropy) {
  // One non-zero per row, all in one strip: every segment is a
  // singleton, H = log(nnz) exactly, H_norm = 1.
  Coo coo;
  coo.rows = 128;
  coo.cols = 64;
  for (index_t r = 0; r < 128; ++r) coo.push(r, r % 64, 1.0f);
  EXPECT_NEAR(normalized_entropy(csr_from_coo(coo), kSpec), 1.0, 1e-12);
}

TEST(Entropy, SingleHeavySegmentGivesZeroEntropy) {
  // All non-zeros in one row of one strip: one segment, H = 0.
  Coo coo;
  coo.rows = 128;
  coo.cols = 64;
  for (index_t c = 0; c < 64; ++c) coo.push(5, c, 1.0f);
  EXPECT_NEAR(normalized_entropy(csr_from_coo(coo), kSpec), 0.0, 1e-12);
}

TEST(Entropy, DegenerateMatrices) {
  Coo empty;
  empty.rows = 64;
  empty.cols = 64;
  EXPECT_DOUBLE_EQ(normalized_entropy(csr_from_coo(empty), kSpec), 0.0);
  Coo one;
  one.rows = 64;
  one.cols = 64;
  one.push(3, 3, 1.0f);
  EXPECT_DOUBLE_EQ(normalized_entropy(csr_from_coo(one), kSpec), 0.0);
}

TEST(Profile, UniformMatrixHasNearOneEntropyAndSmallSsf) {
  // Scattered non-zeros → almost every row segment is a singleton →
  // H_norm ≈ 1 and the (1 - H_norm) factor crushes the SSF relative to
  // an equally sized clustered matrix (the Fig. 4 x-axis spread).
  const Csr m = gen_uniform(1024, 1024, 0.001, 7);
  const MatrixProfile p = profile_matrix(m, kSpec);
  EXPECT_GT(p.h_norm, 0.95);
  const Csr clustered = gen_block_clustered(1024, 16, 0.03, 0.0, 7);
  const MatrixProfile pc = profile_matrix(clustered, kSpec);
  EXPECT_LT(p.ssf, pc.ssf / 10.0);
}

TEST(Profile, ClusteredMatrixHasLargerSsfThanUniform) {
  const Csr uniform = gen_uniform(1024, 1024, 0.002, 8);
  const Csr clustered = gen_block_clustered(1024, 16, 0.08, 0.0001, 9);
  const double ssf_u = profile_matrix(uniform, kSpec).ssf;
  const double ssf_c = profile_matrix(clustered, kSpec).ssf;
  EXPECT_GT(ssf_c, 10.0 * ssf_u);
}

TEST(Profile, StripRowSegmentsMatchTiling) {
  const Csr m = gen_uniform(300, 300, 0.01, 10);
  const MatrixProfile p = profile_matrix(m, kSpec);
  const TiledDcsr tiled = tiled_dcsr_from_csr(m, kSpec);
  EXPECT_EQ(p.total_tile_row_segments, tiled.total_nnz_rows());
  // A row belongs to exactly one tile per strip, so strip and tile
  // granularities agree.
  EXPECT_EQ(p.total_strip_row_segments, p.total_tile_row_segments);
}

TEST(Profile, FractionsAreConsistent) {
  const Csr m = gen_powerlaw_rows(512, 512, 0.005, 1.3, 11);
  const MatrixProfile p = profile_matrix(m, kSpec);
  EXPECT_GT(p.nnzrow_frac, 0.0);
  EXPECT_LE(p.nnzrow_frac, 1.0);
  EXPECT_LE(p.mean_strip_nnzrow_frac, p.nnzrow_frac + 1e-12)
      << "a strip can only contain a subset of the non-empty rows";
}

// ---------------------------------------------------------------------
// Table 1 traffic model.
// ---------------------------------------------------------------------

TEST(Traffic, SingleFetchArmsMatchFootprints) {
  const Csr m = gen_uniform(512, 512, 0.01, 12);
  const MatrixProfile p = profile_matrix(m, kSpec);
  const index_t K = 64;
  const auto a_stat = estimate_traffic(p, Strategy::kAStationary, K, kSpec);
  const auto b_stat = estimate_traffic(p, Strategy::kBStationary, K, kSpec);
  const auto c_stat = estimate_traffic(p, Strategy::kCStationary, K, kSpec);
  // A-stationary fetches A exactly once.
  EXPECT_DOUBLE_EQ(a_stat.a_bytes, static_cast<double>(csr_bytes(m.rows, m.nnz())));
  // C writes each non-empty C row once.
  EXPECT_DOUBLE_EQ(c_stat.c_bytes, static_cast<double>(p.stats.nonzero_rows) * K * 4);
  // B single fetch for B-stationary ≤ B multiple fetch for C-stationary.
  EXPECT_LE(b_stat.b_bytes, c_stat.b_bytes);
  // Atomic arms pay 2×.
  EXPECT_DOUBLE_EQ(b_stat.c_bytes,
                   static_cast<double>(p.total_strip_row_segments) * K * 4 * 2);
  EXPECT_DOUBLE_EQ(a_stat.c_bytes, b_stat.c_bytes);
}

TEST(Traffic, UniformClosedFormTracksMeasuredProfile) {
  const index_t n = 1024;
  const double d = 0.002;
  const Csr m = gen_uniform(n, n, d, 13);
  const MatrixProfile p = profile_matrix(m, kSpec);
  const auto measured = estimate_traffic(p, Strategy::kBStationary, 64, kSpec);
  const auto closed = estimate_traffic_uniform(n, d, Strategy::kBStationary, 64, kSpec);
  EXPECT_NEAR(measured.c_bytes / closed.c_bytes, 1.0, 0.15);
  EXPECT_NEAR(measured.b_bytes / closed.b_bytes, 1.0, 0.15);
}

TEST(Traffic, ExpectedStripRowsFormula) {
  // {1 - (1-d)^k}·n at d=0.01, k=64: 1-(0.99)^64 ≈ 0.4746.
  EXPECT_NEAR(expected_strip_rows_uniform(1000, 0.01, 64), 474.6, 1.0);
  EXPECT_DOUBLE_EQ(expected_strip_rows_uniform(1000, 0.0, 64), 0.0);
  EXPECT_DOUBLE_EQ(expected_strip_rows_uniform(1000, 1.0, 64), 1000.0);
}

TEST(Traffic, ModelMatchesSimulatedKernelWithinFactor) {
  // The Table 1 model and the instrumented kernels should agree on
  // total traffic within sector-granularity slack.
  const Csr m = gen_uniform(512, 512, 0.01, 14);
  const MatrixProfile p = profile_matrix(m, kSpec);
  Rng rng(1);
  DenseMatrix B(m.cols, 64);
  B.randomize(rng);
  SpmmConfig cfg;
  const auto model = estimate_traffic(p, Strategy::kCStationary, 64, kSpec);
  const SpmmResult sim = run_spmm(KernelKind::kCsrCStationaryRowWarp, m, B, cfg);
  const double simulated = static_cast<double>(sim.mem.total_dram_bytes());
  EXPECT_GT(simulated, 0.5 * model.total());
  EXPECT_LT(simulated, 2.0 * model.total());
}

TEST(Traffic, BytesPerFlopFormula) {
  // (8nnz + 4(N+1) + 8N²) / (2 nnz N); memory-bound vs GV100 balance.
  const double bf = bytes_per_flop(20000, 400000);
  EXPECT_NEAR(bf, 0.2, 0.01);
  EXPECT_GT(bf, machine_balance_bytes_per_flop(870.4, 15.7));
  EXPECT_THROW(bytes_per_flop(0, 1), ConfigError);
}

// ---------------------------------------------------------------------
// SSF threshold learner.
// ---------------------------------------------------------------------

TEST(Heuristic, PerfectlySeparableDataGivesFullAccuracy) {
  std::vector<SsfSample> s;
  for (int i = 0; i < 10; ++i) s.push_back({static_cast<double>(i), 0.5});       // C wins
  for (int i = 10; i < 20; ++i) s.push_back({static_cast<double>(i), 2.0});      // B wins
  const SsfThreshold t = learn_ssf_threshold(s);
  EXPECT_DOUBLE_EQ(t.accuracy, 1.0);
  EXPECT_GT(t.threshold, 9.0);
  EXPECT_LT(t.threshold, 10.0);
  EXPECT_EQ(t.misclassified, 0);
}

TEST(Heuristic, AllOneClassPicksOpenEnd) {
  std::vector<SsfSample> s;
  for (int i = 0; i < 5; ++i) s.push_back({static_cast<double>(i), 0.5});
  const SsfThreshold t = learn_ssf_threshold(s);
  EXPECT_DOUBLE_EQ(t.accuracy, 1.0);
  EXPECT_GT(t.threshold, 4.0);  // everything classified C-stationary
}

TEST(Heuristic, NoisyDataStillAboveMajority) {
  Rng rng(5);
  std::vector<SsfSample> s;
  for (int i = 0; i < 200; ++i) {
    const double ssf = rng.uniform(0.0, 100.0);
    const bool b_better = ssf > 50.0 ? rng.chance(0.9) : rng.chance(0.1);
    s.push_back({ssf, b_better ? 2.0 : 0.5});
  }
  const SsfThreshold t = learn_ssf_threshold(s);
  EXPECT_GT(t.accuracy, 0.85);
  EXPECT_EQ(t.total, 200);
}

TEST(Heuristic, EmptyInputThrows) {
  EXPECT_THROW(learn_ssf_threshold(std::span<const SsfSample>{}), FormatError);
}

TEST(Heuristic, SelectionRule) {
  EXPECT_EQ(select_strategy(10.0, 5.0), Strategy::kBStationary);
  EXPECT_EQ(select_strategy(1.0, 5.0), Strategy::kCStationary);
  EXPECT_EQ(select_strategy(5.0, 5.0), Strategy::kCStationary);  // boundary → C
}

TEST(Heuristic, StrategyNamesDistinct) {
  EXPECT_STRNE(strategy_name(Strategy::kAStationary), strategy_name(Strategy::kBStationary));
  EXPECT_STRNE(strategy_name(Strategy::kBStationary), strategy_name(Strategy::kCStationary));
}

}  // namespace
}  // namespace nmdt
