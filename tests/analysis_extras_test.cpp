// Tests for the analysis extensions: sampled SSF profiling and the
// energy model.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/sampling.hpp"
#include "gpusim/energy.hpp"
#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

const TilingSpec kSpec{64, 64};

TEST(Sampling, FullFractionMatchesFullProfileExactly) {
  const Csr A = gen_uniform(512, 512, 0.01, 1);
  const MatrixProfile full = profile_matrix(A, kSpec);
  const SampledProfile s = profile_matrix_sampled(A, kSpec, 1.0, 7);
  EXPECT_EQ(s.rows_sampled, A.rows);
  EXPECT_EQ(s.profile.stats.nnz, full.stats.nnz);
  EXPECT_NEAR(s.profile.h_norm, full.h_norm, 1e-9);
  EXPECT_NEAR(s.profile.ssf, full.ssf, std::abs(full.ssf) * 1e-6 + 1e-9);
}

TEST(Sampling, CountsScaleApproximatelyUnbiased) {
  const Csr A = gen_uniform(2048, 2048, 0.005, 2);
  const MatrixProfile full = profile_matrix(A, kSpec);
  const SampledProfile s = profile_matrix_sampled(A, kSpec, 0.25, 7);
  EXPECT_NEAR(static_cast<double>(s.profile.stats.nnz) / full.stats.nnz, 1.0, 0.1);
  EXPECT_NEAR(static_cast<double>(s.profile.total_strip_row_segments) /
                  full.total_strip_row_segments,
              1.0, 0.1);
  EXPECT_NEAR(s.profile.nnzrow_frac, full.nnzrow_frac, 0.05);
}

TEST(Sampling, SsfWithinOrderOfMagnitudeAtTenPercent) {
  for (u64 seed : {3u, 4u, 5u}) {
    const Csr A = gen_powerlaw_rows(2048, 2048, 0.005, 1.2, seed);
    const MatrixProfile full = profile_matrix(A, kSpec);
    const SampledProfile s = profile_matrix_sampled(A, kSpec, 0.1, 7);
    if (full.ssf > 0 && s.profile.ssf > 0) {
      EXPECT_LT(std::abs(std::log10(s.profile.ssf / full.ssf)), 1.0) << "seed " << seed;
    }
  }
}

TEST(Sampling, DeterministicGivenSeed) {
  const Csr A = gen_uniform(1024, 1024, 0.002, 6);
  const SampledProfile a = profile_matrix_sampled(A, kSpec, 0.2, 42);
  const SampledProfile b = profile_matrix_sampled(A, kSpec, 0.2, 42);
  EXPECT_EQ(a.profile.ssf, b.profile.ssf);
  const SampledProfile c = profile_matrix_sampled(A, kSpec, 0.2, 43);
  EXPECT_NE(a.nnz_sampled, 0);
  (void)c;  // different seed must still run
}

TEST(Sampling, EnforcesMinimumSample) {
  const Csr A = gen_uniform(256, 256, 0.05, 7);
  const SampledProfile s = profile_matrix_sampled(A, kSpec, 0.001, 7);
  EXPECT_GE(s.rows_sampled, 32);
}

TEST(Sampling, RejectsBadFraction) {
  const Csr A = gen_uniform(64, 64, 0.1, 8);
  EXPECT_THROW(profile_matrix_sampled(A, kSpec, 0.0, 1), ConfigError);
  EXPECT_THROW(profile_matrix_sampled(A, kSpec, 1.5, 1), ConfigError);
}

// ---------------------------------------------------------------------
// Energy model.
// ---------------------------------------------------------------------

TEST(Energy, ComponentsScaleWithTheirDrivers) {
  const EnergyModel model;
  const ArchConfig arch = ArchConfig::gv100();
  KernelCounters counters;
  counters.fp_instr = 1000;
  MemStats mem;
  mem.channels.assign(64, {});
  mem.channels[0].read_bytes = 1'000'000;
  mem.l2_service_bytes = 2'000'000;
  mem.xbar_bytes = 500'000;
  TimingBreakdown timing;
  timing.total_ns = 1000.0;
  const EnergyBreakdown e = estimate_energy(model, arch, counters, mem, 100, timing);
  EXPECT_NEAR(e.dram_uj, 1e6 * 31.0 * 1e-6, 1e-9);
  EXPECT_NEAR(e.l2_uj, 2e6 * 1.2 * 1e-6, 1e-9);
  EXPECT_NEAR(e.xbar_uj, 5e5 * 0.6 * 1e-9 * 1e3, 1e-9);
  EXPECT_NEAR(e.engine_uj, 100 * 6.29 * 1e-6, 1e-12);
  EXPECT_NEAR(e.static_uj, arch.idle_watts * 1.0, 1e-9);  // 1 µs at idle W
  EXPECT_GT(e.total_uj(), e.dram_uj);
}

TEST(Energy, EngineEnergyIsNegligibleInRealKernels) {
  // Sec. 5.3's amortization claim, end to end.
  const Csr A = gen_banded(2048, 64, 0.15, 9);
  Rng rng(1);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmConfig cfg = evaluation_config(A.rows, 64);
  const SpmmResult r = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg);
  const EnergyBreakdown e =
      estimate_energy(EnergyModel{}, cfg.arch, r.counters, r.mem, r.engine.steps, r.timing);
  EXPECT_LT(e.engine_uj, 0.01 * e.total_uj());
  EXPECT_GT(e.engine_uj, 0.0);
}

TEST(Energy, FasterKernelBurnsLessStaticEnergy) {
  const Csr A = gen_powerlaw_rows(2048, 2048, 0.005, 1.8, 10);
  Rng rng(2);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmConfig cfg = evaluation_config(A.rows, 64);
  const SpmmResult slow = run_spmm(KernelKind::kDcsrCStationary, A, B, cfg);
  const SpmmResult fast = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg);
  ASSERT_LT(fast.timing.total_ns, slow.timing.total_ns);
  const EnergyModel m;
  const double e_slow =
      estimate_energy(m, cfg.arch, slow.counters, slow.mem, 0, slow.timing).static_uj;
  const double e_fast =
      estimate_energy(m, cfg.arch, fast.counters, fast.mem, fast.engine.steps, fast.timing)
          .static_uj;
  EXPECT_LT(e_fast, e_slow);
}

}  // namespace
}  // namespace nmdt
