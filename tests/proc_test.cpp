// Supervised worker processes (src/proc): crash isolation, heartbeat
// liveness, retry/backoff, poison-task quarantine — and the headline
// contract, that the process-isolated suite runner produces rows
// bit-identical to in-process run_suite at any worker count, under
// injected aborts/hangs and external kill -9.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "fault/fault.hpp"
#include "matgen/suite.hpp"
#include "proc/suite.hpp"
#include "proc/supervisor.hpp"
#include "util/error.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <optional>
#include <set>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)

namespace nmdt::proc {
namespace {

/// Find a task key whose fault draw injects on attempt `hit` but not on
/// attempt `miss` under the installed plan — lets a test stage "crash
/// once, then succeed on retry" deterministically.
u64 key_injecting_only_on_attempt(fault::FaultSite site, u32 hit, u32 miss) {
  for (u64 key = 1; key < 100000; ++key) {
    if (fault::should_inject(site, fault::mix(key, hit)) &&
        !fault::should_inject(site, fault::mix(key, miss))) {
      return key;
    }
  }
  ADD_FAILURE() << "no suitable key below 100000 — rate/seed mix too extreme";
  return 0;
}

TaskHandler echo_handler() {
  return [](u8 kind, u64 key, const std::string& payload) {
    return "kind=" + std::to_string(kind) + " key=" + std::to_string(key) +
           " payload=" + payload;
  };
}

TEST(Supervisor, EchoTasksRoundTripThroughWorkerProcesses) {
  ProcOptions po;
  po.workers = 2;
  Supervisor sup(po, echo_handler());
  // Blocking call path.
  const TaskOutcome out = sup.call(3, 42, "hello");
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.payload, "kind=3 key=42 payload=hello");
  EXPECT_EQ(out.crashes, 0);
  // Async submit path: ids are unique, every completion arrives.
  std::set<u64> ids;
  for (u64 i = 0; i < 8; ++i) ids.insert(sup.submit(1, i, "p" + std::to_string(i)));
  EXPECT_EQ(ids.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    const auto c = sup.wait_completion(5000);
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(ids.count(c->id));
    ASSERT_TRUE(c->outcome.ok) << c->outcome.error;
    EXPECT_EQ(c->outcome.payload,
              "kind=1 key=" + std::to_string(c->key) + " payload=p" + std::to_string(c->key));
    ids.erase(c->id);
  }
  EXPECT_EQ(sup.pending(), 0u);
  EXPECT_EQ(sup.stats().crashes, 0);
}

TEST(Supervisor, HandlerTypedErrorsAreNotRetried) {
  // A handler that throws is an application failure, not a crash: the
  // worker survives, the error travels back typed, and no retry fires.
  ProcOptions po;
  po.workers = 1;
  Supervisor sup(po, [](u8, u64, const std::string&) -> std::string {
    throw TimeoutError("work unit exceeded its deadline");
  });
  const TaskOutcome out = sup.call(1, 7, "x");
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error.rfind("TimeoutError:", 0), 0u) << out.error;
  EXPECT_EQ(out.crashes, 0);
  const ProcStats s = sup.stats();
  EXPECT_EQ(s.crashes, 0);
  EXPECT_EQ(s.retries, 0);
  // The same worker (never crashed, never respawned) still serves the
  // next task and answers with the typed error again.
  const TaskOutcome next = sup.call(1, 8, "y");
  EXPECT_FALSE(next.ok);
  EXPECT_EQ(next.error.rfind("TimeoutError:", 0), 0u) << next.error;
  EXPECT_EQ(next.crashes, 0);
  EXPECT_EQ(sup.stats().spawns, 1);
}

TEST(Supervisor, CrashedWorkerIsRespawnedAndTaskRetriedToSuccess) {
  fault::FaultPlan plan;
  plan.site = fault::FaultSite::kWorkerAbort;
  plan.rate = 0.5;
  plan.seed = 0xabad1;
  fault::FaultScope scope(plan);
  const u64 key = key_injecting_only_on_attempt(plan.site, 0, 1);
  ASSERT_NE(key, 0u);
  ProcOptions po;
  po.workers = 1;
  po.backoff_base_ms = 1.0;
  Supervisor sup(po, echo_handler());
  const TaskOutcome out = sup.call(2, key, "retry-me");
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.payload, "kind=2 key=" + std::to_string(key) + " payload=retry-me");
  EXPECT_GE(out.crashes, 1);
  const ProcStats s = sup.stats();
  EXPECT_GE(s.crashes, 1);
  EXPECT_GE(s.retries, 1);
  EXPECT_GE(s.spawns, 2);  // initial fleet + at least one respawn
  EXPECT_EQ(s.quarantines, 0);
}

TEST(Supervisor, PoisonTaskIsQuarantinedAfterTheRetryBudget) {
  // rate 1.0: every attempt aborts — the task must converge to a typed
  // WorkerError outcome instead of crash-looping forever.
  fault::FaultPlan plan;
  plan.site = fault::FaultSite::kWorkerAbort;
  plan.rate = 1.0;
  plan.seed = 1;
  fault::FaultScope scope(plan);
  ProcOptions po;
  po.workers = 1;
  po.backoff_base_ms = 1.0;
  Supervisor sup(po, echo_handler());
  const TaskOutcome out = sup.call(2, 99, "poison");
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error.rfind("WorkerError:", 0), 0u) << out.error;
  EXPECT_NE(out.error.find("quarantined"), std::string::npos) << out.error;
  EXPECT_EQ(out.crashes, kMaxWorkerRetries);
  const ProcStats s = sup.stats();
  EXPECT_GE(s.quarantines, 1);
  EXPECT_GE(s.crashes, kMaxWorkerRetries);
}

TEST(Supervisor, HungWorkerMissesHeartbeatsAndIsKilled) {
  fault::FaultPlan plan;
  plan.site = fault::FaultSite::kWorkerHang;
  plan.rate = 0.5;
  plan.seed = 0xcafe;
  fault::FaultScope scope(plan);
  const u64 key = key_injecting_only_on_attempt(plan.site, 0, 1);
  ASSERT_NE(key, 0u);
  ProcOptions po;
  po.workers = 1;
  po.heartbeat_interval_ms = 10.0;
  po.heartbeat_timeout_ms = 250.0;  // fast detection for the test
  po.backoff_base_ms = 1.0;
  Supervisor sup(po, echo_handler());
  const TaskOutcome out = sup.call(2, key, "wedge-once");
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_GE(out.crashes, 1);
  const ProcStats s = sup.stats();
  EXPECT_GE(s.heartbeat_timeouts, 1);
  EXPECT_GE(s.crashes, 1);
}

TEST(Supervisor, ExternalKillNineIsAbsorbed) {
  // The ISSUE chaos scenario in miniature: SIGKILL a worker while work
  // is in flight; every task still completes.
  ProcOptions po;
  po.workers = 2;
  po.backoff_base_ms = 1.0;
  Supervisor sup(po, [](u8, u64 key, const std::string&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return "done " + std::to_string(key);
  });
  for (u64 i = 0; i < 4; ++i) sup.submit(1, i, "");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto pids = sup.worker_pids();
  ASSERT_FALSE(pids.empty());
  ASSERT_EQ(::kill(static_cast<pid_t>(pids[0]), SIGKILL), 0);
  for (int i = 0; i < 4; ++i) {
    const auto c = sup.wait_completion(10000);
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(c->outcome.ok) << c->outcome.error;
  }
  const ProcStats s = sup.stats();
  EXPECT_GE(s.crashes, 1);
  EXPECT_GT(s.spawns, 2);  // the killed worker was replaced
}

TEST(Supervisor, TasksAfterShutdownGetTypedOutcomesNotHangs) {
  ProcOptions po;
  po.workers = 1;
  Supervisor sup(po, echo_handler());
  sup.shutdown();
  const TaskOutcome out = sup.call(1, 1, "late");
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error.rfind("WorkerError:", 0), 0u) << out.error;
  sup.shutdown();  // idempotent
}

// ---------------------------------------------------------------------------
// Process-isolated suite runner.

std::vector<MatrixSpec> tiny_specs() {
  auto specs = smoke_suite();
  if (specs.size() > 6) specs.resize(6);
  return specs;
}

void expect_rows_identical(const std::vector<SuiteRow>& a,
                           const std::vector<SuiteRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.name, b[i].spec.name) << "row " << i;
    // Bit-identical doubles — not approximate — is the contract.
    EXPECT_EQ(a[i].profile.ssf, b[i].profile.ssf) << a[i].spec.name;
    EXPECT_EQ(a[i].t_baseline_ms, b[i].t_baseline_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].t_dcsr_c_ms, b[i].t_dcsr_c_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].t_online_b_ms, b[i].t_online_b_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].t_offline_b_ms, b[i].t_offline_b_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].offline_prep_ms, b[i].offline_prep_ms) << a[i].spec.name;
    EXPECT_EQ(a[i].error, b[i].error) << a[i].spec.name;
    EXPECT_EQ(a[i].arm_error, b[i].arm_error) << a[i].spec.name;
  }
}

TEST(ProcSuite, RowsAreBitIdenticalToInProcessAtAnyWorkerCount) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto in_process = run_suite(specs, cfg, K, {}, 1);
  SuiteOptions opts;
  std::optional<SuiteCrcs> prev_crcs;
  for (int workers : {1, 3}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    ProcOptions po;
    po.workers = workers;
    SuiteCrcs crcs;
    const auto isolated = run_suite_isolated(specs, cfg, K, {}, opts, po, &crcs);
    expect_rows_identical(in_process, isolated);
    // The C value checksums, computed inside the workers, agree across
    // worker counts and are real (non-zero) for every successful arm.
    ASSERT_EQ(crcs.size(), specs.size());
    for (usize i = 0; i < crcs.size(); ++i) {
      if (isolated[i].ok() && isolated[i].t_baseline_ms > 0.0) {
        for (int arm = 0; arm < SuiteRow::kArmCount; ++arm) {
          EXPECT_NE(crcs[i][arm], 0u) << isolated[i].spec.name << " arm " << arm;
        }
      }
    }
    if (prev_crcs.has_value()) {
      EXPECT_EQ(*prev_crcs, crcs);
    }
    prev_crcs = std::move(crcs);
  }
}

TEST(ProcSuite, InjectedWorkerAbortsAreRecoveredBitIdentically) {
  // Sub-certain abort faults crash workers mid-sweep; every retry
  // re-draws (attempt-indexed key), so the sweep converges and the
  // rows match a clean in-process run exactly.
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const auto clean = run_suite(specs, cfg, K, {}, 1);

  fault::FaultPlan plan;
  plan.site = fault::FaultSite::kWorkerAbort;
  plan.rate = 0.25;
  plan.seed = 0x5eed;
  fault::FaultScope scope(plan);
  SuiteOptions opts;
  ProcOptions po;
  po.workers = 3;
  po.backoff_base_ms = 1.0;
  const auto chaotic = run_suite_isolated(specs, cfg, K, {}, opts, po);
  expect_rows_identical(clean, chaotic);
}

TEST(ProcSuite, PoisonArmsQuarantineUnderContinueAndThrowUnderFailFast) {
  auto specs = tiny_specs();
  specs.resize(2);
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  fault::FaultPlan plan;
  plan.site = fault::FaultSite::kWorkerAbort;
  plan.rate = 1.0;  // every attempt of every task crashes: all poison
  plan.seed = 3;
  fault::FaultScope scope(plan);
  ProcOptions po;
  po.workers = 1;
  po.backoff_base_ms = 1.0;

  SuiteOptions cont;
  cont.policy = SuiteErrorPolicy::kContinue;
  const auto rows = run_suite_isolated(specs, cfg, K, {}, cont, po);
  ASSERT_EQ(rows.size(), specs.size());
  for (const auto& row : rows) {
    EXPECT_FALSE(row.ok()) << row.spec.name;
    EXPECT_EQ(row.error.rfind("WorkerError:", 0), 0u) << row.error;
  }

  SuiteOptions fatal;
  fatal.policy = SuiteErrorPolicy::kFailFast;
  try {
    run_suite_isolated(specs, cfg, K, {}, fatal, po);
    FAIL() << "fail_fast must rethrow the quarantined WorkerError";
  } catch (const WorkerError& e) {
    EXPECT_EQ(exit_code_for(e), 8);  // the documented exit-code slot
  }
}

TEST(ProcSuite, JournalsComposeAcrossInProcessAndIsolatedModes) {
  const auto specs = tiny_specs();
  const index_t K = 8;
  const SpmmConfig cfg = evaluation_config(4096, K);
  const std::string path = testing::TempDir() + "nmdt_proc_cross_mode.nmdj";
  std::remove(path.c_str());

  // Sweep in-process with a journal, then "resume" it isolated: every
  // row replays from the journal — the supervisor runs nothing — and
  // the rows come back identical.  This is the cross-mode durability
  // contract (journal entries are written only by the parent, in the
  // in-process vocabulary).
  SuiteOptions first;
  first.journal_path = path;
  const auto original = run_suite(specs, cfg, K, {}, first);

  SuiteOptions resumed;
  resumed.journal_path = path;
  resumed.resume = true;
  ProcOptions po;
  po.workers = 2;
  const auto replayed = run_suite_isolated(specs, cfg, K, {}, resumed, po);
  expect_rows_identical(original, replayed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nmdt::proc

#else  // !(__unix__ || __APPLE__)

TEST(Supervisor, RequiresPosixHost) { GTEST_SKIP() << "fork/pipe unavailable"; }

#endif
