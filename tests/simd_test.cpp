// SIMD dispatch and counting-fast-path tests.
//
// Two bit-identity contracts introduced by the serial hot-loop
// overhaul are pinned here:
//
//  * every dispatched axpy tier (AVX2 / NEON / whatever the host has)
//    reproduces the portable scalar reference BITWISE for all three
//    precisions, ragged K, and unaligned row pointers — the unfused
//    mul-then-add numerics the rest of the determinism suite is built
//    on;
//
//  * the counting-mode fast path (granule-aggregated counter updates,
//    no per-sector event walk) books exactly the KernelCounters and
//    MemStats of the event-emission path, for every kernel family and
//    across the sharded jobs axis.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpusim/memory_system.hpp"
#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "util/precision.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace nmdt {
namespace {

constexpr KernelKind kAllKernels[] = {
    KernelKind::kCsrCStationaryRowWarp,  KernelKind::kCsrCStationaryRowThread,
    KernelKind::kDcsrCStationary,        KernelKind::kTiledCsrBStationary,
    KernelKind::kTiledDcsrBStationary,   KernelKind::kTiledDcsrOnline,
    KernelKind::kAStationary,            KernelKind::kMergeCStationary,
    KernelKind::kHongHybrid,
};

// The K values the micro-kernel must handle exactly: below one vector,
// one short of a vector, one full vector, a blocked row, and a blocked
// row plus a scalar tail.
constexpr index_t kRaggedK[] = {1, 7, 8, 64, 65};

/// Restore the startup dispatch tier on scope exit.
class TierGuard {
 public:
  TierGuard() : saved_(simd::active_tier()) {}
  ~TierGuard() { simd::force_tier(saved_); }

 private:
  simd::Tier saved_;
};

/// Restore the counting fast path on scope exit.
class FastPathGuard {
 public:
  FastPathGuard() : saved_(MemorySystem::counting_fast_path_enabled()) {}
  ~FastPathGuard() { MemorySystem::set_counting_fast_path_for_test(saved_); }

 private:
  bool saved_;
};

/// Run the dispatched axpy and the scalar reference on identical inputs
/// (deliberately mis-aligned by `offset` elements) and compare bitwise.
template <class V>
void check_axpy_matches_scalar(index_t k, usize offset, u64 seed) {
  using C = typename VTraits<V>::compute_t;
  Rng rng(seed);
  // Pad so the offset pointers stay in bounds and start off any natural
  // vector alignment.
  std::vector<V> b(static_cast<usize>(k) + offset + 1);
  std::vector<C> c_ref(static_cast<usize>(k) + offset + 1);
  for (auto& v : b) v = VTraits<V>::from_compute(static_cast<C>(rng.uniform() - 0.5));
  for (auto& v : c_ref) v = static_cast<C>(rng.uniform() - 0.5);
  std::vector<C> c_simd = c_ref;
  const V a = VTraits<V>::from_compute(static_cast<C>(rng.uniform() * 3.0 - 1.5));

  if constexpr (std::is_same_v<V, float>) {
    simd::axpy_f32_scalar(a, b.data() + offset, c_ref.data() + offset, k);
  } else if constexpr (std::is_same_v<V, double>) {
    simd::axpy_f64_scalar(a, b.data() + offset, c_ref.data() + offset, k);
  } else {
    simd::axpy_bf16_scalar(a, b.data() + offset, c_ref.data() + offset, k);
  }
  simd::axpy<V>(a, b.data() + offset, c_simd.data() + offset, k);

  ASSERT_EQ(std::memcmp(c_simd.data(), c_ref.data(), c_ref.size() * sizeof(C)), 0)
      << "k=" << k << " offset=" << offset;
}

TEST(SimdDispatch, ScalarTierAlwaysSupported) {
  EXPECT_TRUE(simd::tier_supported(simd::Tier::kScalar));
  EXPECT_TRUE(simd::tier_supported(simd::active_tier()));
  EXPECT_NE(simd::tier_name(simd::active_tier()), nullptr);
}

TEST(SimdDispatch, ForceTierRejectsUnsupportedAndKeepsBinding) {
  const TierGuard guard;
  const simd::Tier before = simd::active_tier();
  for (simd::Tier t : {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kNeon}) {
    if (simd::tier_supported(t)) continue;
    EXPECT_FALSE(simd::force_tier(t));
    EXPECT_EQ(simd::active_tier(), before);
  }
  EXPECT_TRUE(simd::force_tier(simd::Tier::kScalar));
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
}

TEST(SimdAxpy, EveryTierMatchesScalarReferenceBitwise) {
  const TierGuard guard;
  u64 seed = 1;
  for (simd::Tier t : {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kNeon}) {
    if (!simd::tier_supported(t)) continue;
    ASSERT_TRUE(simd::force_tier(t));
    SCOPED_TRACE(simd::tier_name(t));
    for (index_t k : kRaggedK) {
      for (usize offset : {usize{0}, usize{1}, usize{3}}) {
        check_axpy_matches_scalar<float>(k, offset, seed++);
        check_axpy_matches_scalar<double>(k, offset, seed++);
        check_axpy_matches_scalar<bf16_t>(k, offset, seed++);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Counting-mode fast path: counters-only accounting must be
// indistinguishable from the event-emission walk it replaces.
// ---------------------------------------------------------------------

template <class T>
void expect_bitwise_dense(const DenseMatrixT<T>& x, const DenseMatrixT<T>& y) {
  const auto xs = x.data();
  const auto ys = y.data();
  ASSERT_EQ(xs.size(), ys.size());
  EXPECT_EQ(std::memcmp(xs.data(), ys.data(), xs.size() * sizeof(T)), 0);
}

void expect_same_run(const SpmmResult& fast, const SpmmResult& slow) {
  expect_bitwise_dense(fast.C, slow.C);
  expect_bitwise_dense(fast.C64, slow.C64);
  EXPECT_EQ(fast.counters, slow.counters);
  EXPECT_EQ(fast.mem, slow.mem);
  EXPECT_EQ(fast.engine, slow.engine);
  EXPECT_EQ(fast.timing.total_ns, slow.timing.total_ns);
}

TEST(CountingFastPath, CountersBitIdenticalToEventPathAllKernels) {
  const FastPathGuard guard;
  const Csr A = gen_uniform(1024, 1024, 0.004, 13);
  Rng rng(17);
  DenseMatrix B(1024, 32);
  B.randomize(rng);
  for (KernelKind kind : kAllKernels) {
    for (int jobs : {1, 4}) {
      SpmmConfig cfg;  // default mem_mode is kCounting
      cfg.jobs = jobs;
      SCOPED_TRACE(std::string(kernel_name(kind)) + " jobs=" + std::to_string(jobs));
      MemorySystem::set_counting_fast_path_for_test(true);
      const SpmmResult fast = run_spmm(kind, A, B, cfg);
      MemorySystem::set_counting_fast_path_for_test(false);
      const SpmmResult slow = run_spmm(kind, A, B, cfg);
      expect_same_run(fast, slow);
    }
  }
}

TEST(CountingFastPath, HoldsAcrossPrecisions) {
  const FastPathGuard guard;
  const Csr A = gen_uniform(512, 512, 0.01, 23);
  Rng rng(29);
  DenseMatrix B(512, 48);
  B.randomize(rng);
  for (Precision p : {Precision::kF64, Precision::kBf16}) {
    for (KernelKind kind : kAllKernels) {
      SpmmConfig cfg;
      cfg.precision = p;
      SCOPED_TRACE(std::string(kernel_name(kind)) + " " + precision_name(p));
      MemorySystem::set_counting_fast_path_for_test(true);
      const SpmmResult fast = run_spmm(kind, A, B, cfg);
      MemorySystem::set_counting_fast_path_for_test(false);
      const SpmmResult slow = run_spmm(kind, A, B, cfg);
      expect_same_run(fast, slow);
    }
  }
}

}  // namespace
}  // namespace nmdt
