// End-to-end tests of the public API: GetDCSRTile (Fig. 11 semantics),
// SpmmEngine heuristic selection + verification, and the suite runner.
#include <gtest/gtest.h>

#include "core/get_dcsr_tile.hpp"
#include "core/spmm_engine.hpp"
#include "formats/convert.hpp"
#include "matgen/generators.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

TEST(GetDcsrTile, Fig11LoopConvertsWholeStrip) {
  const Csr csr = gen_uniform(300, 64, 0.05, 1);
  const Csc csc = csc_from_csr(csr);
  const TilingSpec spec{64, 64};
  ConversionEngine engine;

  // The device-code pattern of Fig. 11: zeroed col_frontier, advance by
  // DCSR_HEIGHT per call.
  std::vector<index_t> col_frontier(64, 0);
  i64 total_nnz = 0;
  i64 total_rows = 0;
  for (index_t row_start = 0; row_start < csr.rows; row_start += spec.tile_height) {
    const DcsrTileHandle h = GetDCSRTile(csc, 0, row_start, col_frontier, spec, engine);
    total_nnz += h.nnz;
    total_rows += h.nnzrows;
    EXPECT_EQ(h.nnz, h.tile.nnz());
  }
  EXPECT_EQ(total_nnz, csr.nnz());
  const TiledDcsr offline = tiled_dcsr_from_csr(csr, spec);
  EXPECT_EQ(total_rows, offline.total_nnz_rows());
  // Frontier ends at the column lengths.
  for (index_t l = 0; l < 64; ++l) {
    EXPECT_EQ(col_frontier[l], csc.col_ptr[l + 1] - csc.col_ptr[l]);
  }
}

TEST(GetDcsrTile, TilesMatchOfflineTiling) {
  const Csr csr = gen_powerlaw_cols(200, 128, 0.03, 1.1, 2);
  const Csc csc = csc_from_csr(csr);
  const TilingSpec spec{64, 64};
  const TiledDcsr offline = tiled_dcsr_from_csr(csr, spec);
  ConversionEngine engine;
  for (index_t s = 0; s < spec.num_strips(csr.cols); ++s) {
    std::vector<index_t> frontier(64, 0);
    for (index_t t = 0; t * spec.tile_height < csr.rows; ++t) {
      const DcsrTileHandle h =
          GetDCSRTile(csc, s, t * spec.tile_height, frontier, spec, engine);
      const Dcsr& expect = offline.strips[s][t].body;
      EXPECT_EQ(h.tile.body.row_idx, expect.row_idx);
      EXPECT_EQ(h.tile.body.col_idx, expect.col_idx);
      EXPECT_EQ(h.tile.body.val, expect.val);
    }
  }
}

TEST(GetDcsrTile, RejectsShortFrontier) {
  const Csr csr = gen_uniform(64, 64, 0.1, 3);
  const Csc csc = csc_from_csr(csr);
  ConversionEngine engine;
  std::vector<index_t> frontier(10, 0);  // too short for a 64-wide strip
  EXPECT_THROW(GetDCSRTile(csc, 0, 0, frontier, TilingSpec{64, 64}, engine), FormatError);
}

TEST(GetDcsrTile, RejectsCorruptFrontier) {
  const Csr csr = gen_uniform(64, 64, 0.1, 4);
  const Csc csc = csc_from_csr(csr);
  ConversionEngine engine;
  std::vector<index_t> frontier(64, 0);
  frontier[0] = 10000;  // beyond the column length
  EXPECT_THROW(GetDCSRTile(csc, 0, 0, frontier, TilingSpec{64, 64}, engine), FormatError);
}

TEST(SpmmEngine, RunsAndVerifiesUniformMatrix) {
  const Csr A = gen_uniform(512, 512, 0.002, 5);
  // Pick a threshold above this matrix's SSF so the mechanism routes to
  // C-stationary (uniform matrices sit far below clustered ones on the
  // SSF axis; the shipped default is trained on the standard suite).
  EngineOptions opt;
  opt.ssf_threshold = profile_matrix(A, opt.spmm.tiling).ssf + 1.0;
  const SpmmEngine engine(opt);
  Rng rng(1);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmReport report = engine.run(A, B);
  EXPECT_LT(report.max_abs_error, 1e-3);
  ASSERT_TRUE(report.baseline.has_value());
  EXPECT_GT(report.speedup_vs_baseline, 0.0);
  EXPECT_EQ(report.chosen, Strategy::kCStationary);
  EXPECT_EQ(report.kernel, KernelKind::kDcsrCStationary);
}

TEST(SpmmEngine, SelectsBStationaryAboveThreshold) {
  const Csr A = gen_block_clustered(512, 8, 0.15, 0.0001, 6);
  EngineOptions opt;
  opt.ssf_threshold = profile_matrix(A, opt.spmm.tiling).ssf / 2.0;
  const SpmmEngine engine(opt);
  Rng rng(2);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmReport report = engine.run(A, B);
  EXPECT_EQ(report.chosen, Strategy::kBStationary);
  EXPECT_EQ(report.kernel, KernelKind::kTiledDcsrOnline);
  EXPECT_LT(report.max_abs_error, 1e-3);
}

TEST(SpmmEngine, SsfOrdersUniformBelowClustered) {
  // The property behind the shipped default threshold: clustered
  // matrices sit well above equally sized uniform ones on the SSF axis.
  const TilingSpec spec{64, 64};
  const double ssf_uniform = profile_matrix(gen_uniform(512, 512, 0.002, 5), spec).ssf;
  const double ssf_clustered =
      profile_matrix(gen_block_clustered(512, 8, 0.15, 0.0001, 6), spec).ssf;
  EXPECT_LT(ssf_uniform, ssf_clustered);
}

TEST(SpmmEngine, RunKernelBypassesHeuristic) {
  const SpmmEngine engine;
  const Csr A = gen_uniform(128, 128, 0.02, 7);
  Rng rng(3);
  DenseMatrix B(A.cols, 32);
  B.randomize(rng);
  const SpmmResult res = engine.run_kernel(KernelKind::kAStationary, A, B);
  EXPECT_LE(res.C.max_abs_diff(spmm_reference(A, B)), 1e-3);
}

TEST(SpmmEngine, OptionsCanDisableBaselineAndVerify) {
  EngineOptions opt;
  opt.run_baseline = false;
  opt.verify = false;
  const SpmmEngine engine(opt);
  const Csr A = gen_uniform(128, 128, 0.02, 8);
  Rng rng(4);
  DenseMatrix B(A.cols, 32);
  B.randomize(rng);
  const SpmmReport report = engine.run(A, B);
  EXPECT_FALSE(report.baseline.has_value());
  EXPECT_DOUBLE_EQ(report.max_abs_error, 0.0);
}

TEST(SuiteRunner, ProducesOneRowPerSpecWithProgress)
{
  std::vector<MatrixSpec> specs;
  specs.push_back({.name = "u1", .family = MatrixFamily::kUniform, .rows = 128,
                   .cols = 128, .density = 0.01, .seed = 1});
  specs.push_back({.name = "p1", .family = MatrixFamily::kPowerlawRows, .rows = 128,
                   .cols = 128, .density = 0.01, .skew = 1.2, .seed = 2});
  SpmmConfig cfg;
  usize calls = 0;
  const auto rows = run_suite(specs, cfg, 32, [&](usize done, usize total, const SuiteRow&) {
    ++calls;
    EXPECT_LE(done, total);
  });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(calls, 2u);
  for (const auto& r : rows) {
    EXPECT_GT(r.t_baseline_ms, 0.0);
    EXPECT_GT(r.t_dcsr_c_ms, 0.0);
    EXPECT_GT(r.t_online_b_ms, 0.0);
    EXPECT_GT(r.t_offline_b_ms, 0.0);
    EXPECT_GT(r.offline_prep_ms, 0.0);
    EXPECT_GT(r.ratio_c_over_b(), 0.0);
  }
}

TEST(SuiteRunner, TrainThresholdOnRows) {
  // Synthetic rows with a clean split at ssf = 10.
  std::vector<SuiteRow> rows(20);
  for (usize i = 0; i < rows.size(); ++i) {
    rows[i].profile.ssf = static_cast<double>(i);
    rows[i].t_dcsr_c_ms = i >= 10 ? 2.0 : 1.0;
    rows[i].t_online_b_ms = i >= 10 ? 1.0 : 2.0;
  }
  const SsfThreshold t = train_threshold(rows);
  EXPECT_DOUBLE_EQ(t.accuracy, 1.0);
  EXPECT_GT(t.threshold, 9.0);
  EXPECT_LT(t.threshold, 10.0);
}

}  // namespace
}  // namespace nmdt
