// Plan → Cache → Execute tests: matrix fingerprinting, PlanCache
// hit/miss/eviction accounting, and the SpmmEngine regression that a
// second run() against the same A is served entirely from the cache
// (zero conversion work) yet reports bit-identical results.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/spmm_engine.hpp"
#include "matgen/generators.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nmdt {
namespace {

/// Two matrices with identical dims, nnz, and values but different
/// sparsity patterns — the case a naive (dims, nnz) cache key would
/// alias.
std::pair<Csr, Csr> same_shape_different_pattern() {
  Csr a;
  a.rows = 2;
  a.cols = 4;
  a.row_ptr = {0, 2, 4};
  a.col_idx = {0, 1, 2, 3};
  a.val = {1.0f, 2.0f, 3.0f, 4.0f};
  Csr b = a;
  b.col_idx = {0, 2, 1, 3};
  return {a, b};
}

TEST(Fingerprint, EqualForIdenticalMatrices) {
  const Csr A = gen_uniform(100, 80, 0.05, 7);
  const Csr B = A;
  EXPECT_EQ(fingerprint_of(A), fingerprint_of(B));
  EXPECT_EQ(fingerprint_of(A).combined(), fingerprint_of(B).combined());
}

TEST(Fingerprint, DistinguishesPatternAtEqualDimsAndNnz) {
  const auto [a, b] = same_shape_different_pattern();
  const MatrixFingerprint fa = fingerprint_of(a);
  const MatrixFingerprint fb = fingerprint_of(b);
  ASSERT_EQ(fa.rows, fb.rows);
  ASSERT_EQ(fa.cols, fb.cols);
  ASSERT_EQ(fa.nnz, fb.nnz);
  EXPECT_NE(fa.structure_hash, fb.structure_hash);
  EXPECT_FALSE(fa == fb);
}

TEST(Fingerprint, DistinguishesValuesAtEqualStructure) {
  const Csr a = gen_uniform(64, 64, 0.1, 3);
  Csr b = a;
  b.val[0] += 1.0f;
  const MatrixFingerprint fa = fingerprint_of(a);
  const MatrixFingerprint fb = fingerprint_of(b);
  EXPECT_EQ(fa.structure_hash, fb.structure_hash);
  EXPECT_NE(fa.value_hash, fb.value_hash);
}

TEST(PlanCache, CountsHitsAndMisses) {
  PlanCache cache;
  const Csr A = gen_uniform(100, 100, 0.05, 1);
  const Csr B = gen_uniform(100, 100, 0.05, 2);
  const PlanOptions opts;

  bool hit = true;
  const auto p1 = cache.get_or_build(A, opts, &hit);
  EXPECT_FALSE(hit);
  const auto p2 = cache.get_or_build(A, opts, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p2.get());  // same resident plan, not a rebuild
  cache.get_or_build(B, opts, &hit);
  EXPECT_FALSE(hit);

  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_GT(s.bytes, 0);
}

TEST(PlanCache, DifferentOptionsAreDifferentEntries) {
  PlanCache cache;
  const Csr A = gen_uniform(100, 100, 0.05, 1);
  PlanOptions a;
  PlanOptions b;
  b.tiling = TilingSpec{32, 32};
  cache.get_or_build(A, a);
  bool hit = true;
  cache.get_or_build(A, b, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(PlanCache, SameShapeDifferentPatternAreDifferentEntries) {
  PlanCache cache;
  const auto [a, b] = same_shape_different_pattern();
  const PlanOptions opts;
  const auto pa = cache.get_or_build(a, opts);
  bool hit = true;
  const auto pb = cache.get_or_build(b, opts, &hit);
  EXPECT_FALSE(hit);  // must NOT alias despite equal dims/nnz/values
  EXPECT_NE(pa.get(), pb.get());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_NE(pa->csr().col_idx, pb->csr().col_idx);
}

TEST(PlanCache, LruEvictsOldestUnderByteBudget) {
  // Size the budget from a real plan so the test tracks format changes:
  // room for two same-shape plans but not three.
  const Csr A = gen_uniform(200, 200, 0.05, 1);
  const Csr B = gen_uniform(200, 200, 0.05, 2);
  const Csr C = gen_uniform(200, 200, 0.05, 3);
  const PlanOptions opts;
  const i64 one = build_plan(A, opts)->bytes();
  PlanCache cache(one * 5 / 2);

  cache.get_or_build(A, opts);
  cache.get_or_build(B, opts);
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.get_or_build(A, opts);  // bump A to most-recently-used
  cache.get_or_build(C, opts);  // over budget -> evict LRU = B

  PlanCacheStats s = cache.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_LE(s.bytes, s.byte_budget);

  bool hit = false;
  cache.get_or_build(A, opts, &hit);
  EXPECT_TRUE(hit);  // A was bumped, so it survived
  cache.get_or_build(B, opts, &hit);
  EXPECT_FALSE(hit);  // B was the LRU victim
}

TEST(PlanCache, OversizePlansAreBuiltButNotStored) {
  PlanCache cache(16);  // smaller than any real plan
  const Csr A = gen_uniform(64, 64, 0.1, 1);
  bool hit = true;
  const auto p = cache.get_or_build(A, {}, &hit);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(hit);
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0);
  EXPECT_EQ(s.oversize, 1u);
}

TEST(PlanCache, ConcurrentHammerRacingCancellationConservesStats) {
  // Several threads hammer get_or_build over a working set that
  // overflows a tight byte budget (every lookup can race an eviction)
  // while another thread flips a CancelToken mid-run.  Cancellation is
  // observed only *between* lookups — the cache itself must never be
  // torn by it — and the accounting must balance exactly:
  // hits + misses == lookups that completed.
  const int kThreads = 4;
  const PlanOptions opts;
  std::vector<Csr> matrices;
  for (u64 s = 1; s <= 6; ++s) matrices.push_back(gen_uniform(200, 200, 0.05, s));
  const i64 one = build_plan(matrices[0], opts)->bytes();
  PlanCache cache(one * 5 / 2);  // room for ~2 of 6: constant churn

  CancelToken token;
  std::atomic<u64> lookups{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x9a9a + static_cast<u64>(t));
      while (!token.cancelled()) {
        const Csr& A = matrices[rng.below(matrices.size())];
        cache.get_or_build(A, opts);
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let the hammer run long enough to guarantee evictions, then cancel.
  while (lookups.load(std::memory_order_relaxed) < 400) std::this_thread::yield();
  token.request(CancelReason::kUser);
  for (auto& th : threads) th.join();

  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, lookups.load());
  EXPECT_GT(s.evictions, 0u);
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.misses, 0u);
  EXPECT_LE(s.bytes, s.byte_budget);
}

TEST(PlanCache, SingleFlightBuildsOnceUnderConcurrentRequests) {
  // N threads released simultaneously against one cold key: exactly one
  // builds, the rest rendezvous on the in-flight build and share its
  // plan.  The stats conservation holds with the shares counted as
  // hits: hits + misses == lookups, misses == builds.
  constexpr int kThreads = 8;
  const Csr A = gen_uniform(200, 200, 0.05, 21);
  const PlanOptions opts;
  PlanCache cache;

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::shared_ptr<const SpmmPlan>> plans(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      plans[static_cast<usize>(t)] = cache.get_or_build(A, opts);
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  // Everyone got the same plan instance — nobody built a duplicate.
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(plans[0].get(), plans[static_cast<usize>(t)].get());
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<u64>(kThreads - 1));
  EXPECT_EQ(s.hits + s.misses, static_cast<u64>(kThreads));
  // Latecomers that arrived while the build was in flight are counted
  // as shares; ones that arrived after it landed are plain hits.  Both
  // are hits, so conservation holds either way.
  EXPECT_LE(s.single_flight_shares, s.hits);
  EXPECT_EQ(s.entries, 1u);
}

TEST(PlanCache, SingleFlightSharesABuildFailure) {
  // Latecomers joined to a failing build must observe the builder's
  // typed exception, and the key must stay buildable afterwards.
  const Csr A = gen_uniform(64, 64, 0.1, 5);
  PlanOptions opts;
  opts.profile_sample_fraction = -1.0;  // the build throws ConfigError
  PlanCache cache;
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        cache.get_or_build(A, opts);
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), kThreads);  // every caller saw a typed error
  EXPECT_EQ(cache.stats().entries, 0u);  // nothing poisoned the cache
}

TEST(PlanCache, TtlExpiresEntriesAndRebuilds) {
  const Csr A = gen_uniform(100, 100, 0.05, 9);
  const PlanOptions opts;
  PlanCache cache(PlanCache::kDefaultByteBudget, /*ttl_ms=*/5.0);
  const auto first = cache.get_or_build(A, opts);
  const auto quick = cache.get_or_build(A, opts);  // fresh: a plain hit
  EXPECT_EQ(first.get(), quick.get());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  bool was_hit = true;
  const auto rebuilt = cache.get_or_build(A, opts, &was_hit);
  EXPECT_FALSE(was_hit);
  EXPECT_NE(first.get(), rebuilt.get());  // the stale plan was evicted
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.ttl_evictions, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(PlanCache, ZeroTtlNeverExpires) {
  const Csr A = gen_uniform(64, 64, 0.1, 3);
  PlanCache cache;  // ttl_ms = 0: entries live forever
  const auto p1 = cache.get_or_build(A, {});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto p2 = cache.get_or_build(A, {});
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.stats().ttl_evictions, 0u);
}

TEST(PlanCache, RejectsNegativeTtl) {
  EXPECT_THROW(PlanCache(PlanCache::kDefaultByteBudget, -1.0), ConfigError);
}

TEST(PlanCache, SingleFlightHammerConservesStatsUnderChurn) {
  // The service-tier composition: many threads, several keys, a tight
  // budget (evictions), and single-flight rendezvous all racing.  The
  // conservation invariant must hold exactly, and builds must equal
  // misses.
  constexpr int kThreads = 6;
  const PlanOptions opts;
  std::vector<Csr> matrices;
  for (u64 s = 1; s <= 4; ++s) matrices.push_back(gen_uniform(160, 160, 0.05, s));
  const i64 one = build_plan(matrices[0], opts)->bytes();
  PlanCache cache(one * 2);  // room for ~2 of 4

  std::atomic<u64> lookups{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x51f7 + static_cast<u64>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        cache.get_or_build(matrices[rng.below(matrices.size())], opts);
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (lookups.load(std::memory_order_relaxed) < 300) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();

  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, lookups.load());
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes, s.byte_budget);
}

TEST(Plan, ConvertsEveryOperandFormat) {
  const Csr A = gen_powerlaw_rows(300, 200, 0.02, 1.2, 5);
  const auto plan = build_plan(A);
  EXPECT_EQ(plan->csr().nnz(), A.nnz());
  EXPECT_EQ(plan->dcsr().nnz(), A.nnz());
  EXPECT_EQ(plan->tiled_dcsr().nnz(), A.nnz());
  EXPECT_GT(plan->bytes(), 0);
  const SpmmOperands ops = plan->operands();
  EXPECT_EQ(ops.csr, &plan->csr());
  EXPECT_EQ(ops.csc, &plan->csc());
  EXPECT_EQ(ops.dcsr, &plan->dcsr());
  EXPECT_EQ(ops.tiled_dcsr, &plan->tiled_dcsr());
  EXPECT_EQ(ops.tiled_csr, &plan->tiled_csr());
}

TEST(Executor, PlannedRunMatchesLegacyShimBitwise) {
  const Csr A = gen_powerlaw_rows(256, 256, 0.03, 1.2, 9);
  const index_t K = 32;
  Rng rng(4);
  DenseMatrix B(A.cols, K);
  B.randomize(rng);
  const SpmmConfig cfg = evaluation_config(A.rows, K);
  const auto plan = build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0});
  const SpmmExecutor ex(cfg);
  for (KernelKind kind :
       {KernelKind::kCsrCStationaryRowWarp, KernelKind::kDcsrCStationary,
        KernelKind::kTiledDcsrOnline, KernelKind::kTiledDcsrBStationary}) {
    const SpmmResult planned = ex.execute(kind, *plan, B);
    const SpmmResult legacy = run_spmm(kind, A, B, cfg);
    EXPECT_EQ(planned.C.max_abs_diff(legacy.C), 0.0) << kernel_name(kind);
    EXPECT_EQ(planned.timing.total_ns, legacy.timing.total_ns) << kernel_name(kind);
    EXPECT_EQ(planned.counters.flops, legacy.counters.flops) << kernel_name(kind);
  }
}

TEST(Executor, RejectsPlanBuiltUnderDifferentTiling) {
  const Csr A = gen_uniform(64, 64, 0.1, 1);
  SpmmConfig cfg = evaluation_config(64, 8);
  PlanOptions opts{cfg.tiling, default_ssf_threshold(), 1.0};
  opts.tiling = TilingSpec{32, 32};
  const auto plan = build_plan(A, opts);
  DenseMatrix B(A.cols, 8);
  Rng rng(1);
  B.randomize(rng);
  EXPECT_THROW(SpmmExecutor(cfg).execute(*plan, B), ConfigError);
}

TEST(SpmmEngine, SecondRunOnSameMatrixIsACacheHitWithIdenticalReport) {
  const Csr A = gen_powerlaw_rows(256, 256, 0.03, 1.2, 11);
  const index_t K = 16;
  Rng rng(6);
  DenseMatrix B(A.cols, K);
  B.randomize(rng);
  EngineOptions options;
  options.spmm = evaluation_config(A.rows, K);
  const SpmmEngine engine(options);

  const SpmmReport first = engine.run(A, B);
  const SpmmReport second = engine.run(A, B);

  // Regression: the cache must not change what the engine computes.
  EXPECT_EQ(first.profile.ssf, second.profile.ssf);
  EXPECT_EQ(first.chosen, second.chosen);
  EXPECT_EQ(first.kernel, second.kernel);
  EXPECT_EQ(first.result.C.max_abs_diff(second.result.C), 0.0);
  EXPECT_EQ(first.result.timing.total_ns, second.result.timing.total_ns);
  EXPECT_EQ(first.speedup_vs_baseline, second.speedup_vs_baseline);
  EXPECT_EQ(first.max_abs_error, second.max_abs_error);

  // The second call performed zero profiling/conversion work.
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(second.plan_build_ms, 0.0);
  const PlanCacheStats s = engine.cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(SpmmEngine, CachingCanBeDisabled) {
  const Csr A = gen_uniform(100, 100, 0.05, 1);
  DenseMatrix B(A.cols, 8);
  Rng rng(2);
  B.randomize(rng);
  EngineOptions options;
  options.spmm = evaluation_config(100, 8);
  options.plan_cache_bytes = 0;
  const SpmmEngine engine(options);
  const SpmmReport r1 = engine.run(A, B);
  const SpmmReport r2 = engine.run(A, B);
  EXPECT_FALSE(r1.plan_cache_hit);
  EXPECT_FALSE(r2.plan_cache_hit);  // every run plans from scratch
  EXPECT_EQ(r1.result.C.max_abs_diff(r2.result.C), 0.0);
  EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(SpmmEngine, PlanForExposesTheCachedPlan) {
  const Csr A = gen_uniform(128, 128, 0.05, 3);
  const SpmmEngine engine;
  bool hit = true;
  const auto p1 = engine.plan_for(A, &hit);
  EXPECT_FALSE(hit);
  DenseMatrix B(A.cols, 8);
  Rng rng(2);
  B.randomize(rng);
  engine.run(A, B);  // must reuse p1, not rebuild
  const auto p2 = engine.plan_for(A, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(engine.cache_stats().misses, 1u);
}

}  // namespace
}  // namespace nmdt
