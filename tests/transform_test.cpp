// Conversion-engine tests: the comparator tree must match a linear
// scan exactly (including tie bitvectors), and the engine's online
// tiles must be bit-identical to offline tiled DCSR, with the paper's
// throughput/area/energy accounting reproduced.
#include <gtest/gtest.h>

#include "formats/convert.hpp"
#include "formats/footprint.hpp"
#include "matgen/generators.hpp"
#include "transform/comparator.hpp"
#include "transform/engine.hpp"
#include "transform/hw_model.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

// ---------------------------------------------------------------------
// Comparator tree (Fig. 15).
// ---------------------------------------------------------------------

TEST(Comparator, PaperExampleTie) {
  // Fig. 15(b): COOR0 == COOR2 minimum → min[3:0] = 0101b.
  const std::vector<index_t> coords{5, 9, 5, 7};
  const std::vector<u8> valid{1, 1, 1, 1};
  const MinReduceResult r = comparator_tree_min(coords, valid);
  EXPECT_TRUE(r.any_valid);
  EXPECT_EQ(r.min_coord, 5);
  EXPECT_EQ(r.lane_mask, 0b0101u);
}

TEST(Comparator, SingleMinimumAtLastLane) {
  // Fig. 15(b): COOR3 smallest → min[3:0] = 1000b.
  const std::vector<index_t> coords{5, 9, 6, 2};
  const std::vector<u8> valid{1, 1, 1, 1};
  const MinReduceResult r = comparator_tree_min(coords, valid);
  EXPECT_EQ(r.min_coord, 2);
  EXPECT_EQ(r.lane_mask, 0b1000u);
}

TEST(Comparator, InvalidLanesNeverWin) {
  const std::vector<index_t> coords{1, 2, 3, 4};
  const std::vector<u8> valid{0, 1, 0, 1};
  const MinReduceResult r = comparator_tree_min(coords, valid);
  EXPECT_EQ(r.min_coord, 2);
  EXPECT_EQ(r.lane_mask, 0b0010u);
}

TEST(Comparator, AllInvalid) {
  const std::vector<index_t> coords{1, 2};
  const std::vector<u8> valid{0, 0};
  EXPECT_FALSE(comparator_tree_min(coords, valid).any_valid);
}

TEST(Comparator, EmptyInput) {
  EXPECT_FALSE(comparator_tree_min({}, {}).any_valid);
}

TEST(Comparator, SixtyFourLanesAllTied) {
  std::vector<index_t> coords(64, 7);
  std::vector<u8> valid(64, 1);
  const MinReduceResult r = comparator_tree_min(coords, valid);
  EXPECT_EQ(r.lane_mask, ~u64{0});
  EXPECT_EQ(r.comparator_ops, 63u);
}

TEST(Comparator, RejectsTooManyLanes) {
  std::vector<index_t> coords(65, 0);
  std::vector<u8> valid(65, 1);
  EXPECT_THROW(comparator_tree_min(coords, valid), FormatError);
}

TEST(Comparator, StagesAreLog2) {
  EXPECT_EQ(comparator_stages(1), 0);
  EXPECT_EQ(comparator_stages(2), 1);
  EXPECT_EQ(comparator_stages(4), 2);
  EXPECT_EQ(comparator_stages(64), 6);
  EXPECT_EQ(comparator_stages(33), 6);
}

class ComparatorProperty : public testing::TestWithParam<int> {};

TEST_P(ComparatorProperty, TreeMatchesLinearScanOnRandomInputs) {
  const int lanes = GetParam();
  Rng rng(1234 + lanes);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<index_t> coords(static_cast<usize>(lanes));
    std::vector<u8> valid(static_cast<usize>(lanes));
    for (int i = 0; i < lanes; ++i) {
      coords[i] = static_cast<index_t>(rng.below(8));  // small range forces ties
      valid[i] = rng.chance(0.8) ? 1 : 0;
    }
    const MinReduceResult tree = comparator_tree_min(coords, valid);
    const MinReduceResult ref = linear_scan_min(coords, valid);
    EXPECT_EQ(tree.any_valid, ref.any_valid);
    if (ref.any_valid) {
      EXPECT_EQ(tree.min_coord, ref.min_coord);
      EXPECT_EQ(tree.lane_mask, ref.lane_mask);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, ComparatorProperty,
                         testing::Values(1, 2, 3, 4, 7, 8, 16, 31, 32, 33, 64));

// ---------------------------------------------------------------------
// Conversion engine vs offline tiling.
// ---------------------------------------------------------------------

class EngineEquivalence
    : public testing::TestWithParam<std::tuple<int, int, double, int, int>> {};

TEST_P(EngineEquivalence, OnlineTilesBitIdenticalToOfflineTiledDcsr) {
  const auto [rows, cols, density, width, height] = GetParam();
  const Csr csr = gen_uniform(rows, cols, density, 500 + rows + cols);
  const Csc csc = csc_from_csr(csr);
  const TilingSpec spec{static_cast<index_t>(width), static_cast<index_t>(height)};
  const TiledDcsr offline = tiled_dcsr_from_csr(csr, spec);

  ConversionEngine engine;
  for (index_t s = 0; s < offline.num_strips(); ++s) {
    const std::vector<DcsrTile> online = engine.convert_strip(csc, s, spec);
    ASSERT_EQ(online.size(), offline.strips[s].size());
    for (usize t = 0; t < online.size(); ++t) {
      const Dcsr& a = online[t].body;
      const Dcsr& b = offline.strips[s][t].body;
      EXPECT_EQ(a.row_idx, b.row_idx) << "strip " << s << " tile " << t;
      EXPECT_EQ(a.row_ptr, b.row_ptr) << "strip " << s << " tile " << t;
      EXPECT_EQ(a.col_idx, b.col_idx) << "strip " << s << " tile " << t;
      EXPECT_EQ(a.val, b.val) << "strip " << s << " tile " << t;
      EXPECT_EQ(online[t].row_begin, offline.strips[s][t].row_begin);
      EXPECT_EQ(online[t].col_begin, offline.strips[s][t].col_begin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineEquivalence,
    testing::Values(std::make_tuple(64, 64, 0.05, 64, 64),
                    std::make_tuple(200, 130, 0.03, 64, 64),
                    std::make_tuple(128, 128, 0.2, 32, 16),
                    std::make_tuple(100, 100, 0.01, 16, 100),
                    std::make_tuple(333, 77, 0.05, 64, 64),
                    std::make_tuple(64, 64, 0.0, 64, 64)));

TEST(Engine, WalkThroughExampleFig13) {
  // Fig. 13: a 5-row, 3-column strip with columns
  //   col0: a0@r0, a2@r2, a4@r4 ; col1: b0@r0, b1@r1, b4@r4 ; col2: c0@r0, c2@r2.
  Coo coo;
  coo.rows = 5;
  coo.cols = 3;
  coo.push(0, 0, 10);  // a0
  coo.push(2, 0, 12);  // a2
  coo.push(4, 0, 14);  // a4
  coo.push(0, 1, 20);  // b0
  coo.push(1, 1, 21);  // b1
  coo.push(4, 1, 24);  // b4
  coo.push(0, 2, 30);  // c0
  coo.push(2, 2, 32);  // c2
  const Csc csc = csc_from_coo(coo);

  ConversionEngine engine;
  const TilingSpec spec{3, 5};
  const std::vector<DcsrTile> tiles = engine.convert_strip(csc, 0, spec);
  ASSERT_EQ(tiles.size(), 1u);
  const Dcsr& d = tiles[0].body;
  // Paper's resulting DCSR: rows {0,1,2,4}; row 0 = a0,b0,c0; row 1 = b1;
  // row 2 = a2,c2; row 4 = a4,b4.
  EXPECT_EQ(d.row_idx, (std::vector<index_t>{0, 1, 2, 4}));
  EXPECT_EQ(d.row_ptr, (std::vector<index_t>{0, 3, 4, 6, 8}));
  EXPECT_EQ(d.col_idx, (std::vector<index_t>{0, 1, 2, 1, 0, 2, 0, 1}));
  EXPECT_EQ(d.val, (std::vector<value_t>{10, 20, 30, 21, 12, 32, 14, 24}));
  // 4 emitted DCSR rows = 4 comparator beats; 8 elements consumed.
  EXPECT_EQ(engine.stats().steps, 4u);
  EXPECT_EQ(engine.stats().elements, 8u);
}

TEST(Engine, SequentialCursorSpansTiles) {
  const Csr csr = gen_uniform(300, 64, 0.05, 42);
  const Csc csc = csc_from_csr(csr);
  const TilingSpec spec{64, 64};
  ConversionEngine engine;
  StripCursor cursor(csc, 0, spec);
  i64 total = 0;
  for (index_t r0 = 0; r0 < csr.rows; r0 += spec.tile_height) {
    total += engine.convert_tile(csc, cursor, r0, spec).nnz();
  }
  EXPECT_EQ(total, csr.nnz());
}

TEST(Engine, StatsBytesMatchElementCounts) {
  const Csr csr = gen_uniform(128, 64, 0.05, 43);
  const Csc csc = csc_from_csr(csr);
  ConversionEngine engine;
  const TilingSpec spec{64, 64};
  engine.convert_strip(csc, 0, spec);
  const EngineStats& s = engine.stats();
  EXPECT_EQ(s.elements, static_cast<u64>(csc.nnz()));
  // Input = 8 B per element + col_ptr of the strip (65 entries).
  EXPECT_EQ(s.dram_bytes_in, csc.nnz() * 8 + 65 * 4);
  EXPECT_GT(s.xbar_bytes_out, csc.nnz() * 8);  // payload + DCSR metadata
}

TEST(Engine, TrafficAccountedInMemorySystem) {
  const Csr csr = gen_uniform(128, 128, 0.05, 44);
  const Csc csc = csc_from_csr(csr);
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  const CscDeviceLayout layout = CscDeviceLayout::allocate(csc, mem);
  ConversionEngine engine;
  const TilingSpec spec{64, 64};
  for (index_t s = 0; s < spec.num_strips(csc.cols); ++s) {
    engine.convert_strip(csc, s, spec, &mem, &layout);
  }
  EXPECT_EQ(mem.stats().total_dram_bytes(), engine.stats().dram_bytes_in);
  EXPECT_EQ(mem.stats().xbar_bytes, engine.stats().xbar_bytes_out);
}

TEST(Engine, OutOfOrderCursorThrows) {
  const Csr csr = gen_uniform(256, 64, 0.1, 45);
  const Csc csc = csc_from_csr(csr);
  const TilingSpec spec{64, 64};
  ConversionEngine engine;
  StripCursor cursor(csc, 0, spec);
  engine.convert_tile(csc, cursor, 0, spec);
  engine.convert_tile(csc, cursor, 64, spec);
  // Rewinding to an earlier tile with an advanced cursor is a misuse.
  EXPECT_THROW(engine.convert_tile(csc, cursor, 0, spec), FormatError);
}

TEST(Engine, InvalidStripThrows) {
  const Csr csr = gen_uniform(64, 64, 0.1, 46);
  const Csc csc = csc_from_csr(csr);
  const TilingSpec spec{64, 64};
  EXPECT_THROW(StripCursor(csc, 5, spec), FormatError);
}

// ---------------------------------------------------------------------
// Section 5.3 hardware model.
// ---------------------------------------------------------------------

TEST(HwModel, PipelineMeetsHbm2Delivery) {
  const EngineHwModel hw;
  // 13.6 GB/s delivers 8 B every 0.588 ns; worst stage 0.339 ns fits.
  EXPECT_TRUE(hw.pipeline_meets_throughput(false));
  EXPECT_TRUE(hw.pipeline_meets_throughput(true));
  EXPECT_NEAR(8.0 / hw.cycle_ns_sp, 13.6, 0.01);   // GB/s equivalent
  EXPECT_NEAR(12.0 / hw.cycle_ns_dp, 13.6, 0.01);
}

TEST(HwModel, BufferHidesSupplyLatency) {
  const EngineHwModel hw;
  // 256 B/lane must cover the 3.3 + 15 ns supply latency (paper: hides
  // 18.8 ns) in both precisions.
  EXPECT_GE(hw.buffer_coverage_ns(false), hw.latency_to_hide_ns());
  EXPECT_GE(hw.buffer_coverage_ns(true), hw.latency_to_hide_ns());
  EXPECT_EQ(hw.buffer_bytes_total(), 16 * 1024);  // 16 KiB per engine
}

TEST(HwModel, Gv100AreaAndPowerMatchPaper) {
  const EngineSystemCosts c = engine_system_costs(EngineHwModel{}, ArchConfig::gv100());
  EXPECT_EQ(c.engines, 64);
  EXPECT_NEAR(c.total_area_mm2, 4.9, 0.05);           // 64 × 0.077
  EXPECT_NEAR(c.area_fraction_of_die, 0.006, 0.0005); // 0.6% of 815 mm²
  EXPECT_NEAR(c.peak_power_w_sp, 0.68, 0.01);
  EXPECT_NEAR(c.peak_power_w_dp, 0.51, 0.01);
  EXPECT_NEAR(c.power_fraction_of_tdp, 0.0027, 0.0002);  // 0.27% of TDP
  EXPECT_NEAR(c.power_fraction_of_idle, 0.0296, 0.003);  // 2.96% of idle
}

TEST(HwModel, Tu116ScalingMatchesPaper) {
  const EngineSystemCosts c = engine_system_costs(EngineHwModel{}, ArchConfig::tu116());
  EXPECT_EQ(c.engines, 24);
  EXPECT_NEAR(c.total_area_mm2, 1.85, 0.01);          // 24 × 0.077
  EXPECT_NEAR(c.area_fraction_of_die, 0.0065, 0.0003);  // 0.65% of 284 mm²
}

TEST(HwModel, BusyTimeScalesWithSteps) {
  EngineStats s;
  s.steps = 1000;
  EXPECT_NEAR(s.busy_ns(EngineHwModel{}), 588.0, 1e-9);
}

}  // namespace
}  // namespace nmdt
