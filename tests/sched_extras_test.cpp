// Tests for the streaming-pipeline simulator (Sec. 6.2) and its
// agreement with the analytic multi-GPU plan.
#include <gtest/gtest.h>

#include "formats/footprint.hpp"
#include "sched/stream_sim.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

TEST(StreamSim, SingleChunkIsSequential) {
  const std::vector<StreamChunk> chunks{{100.0, 50.0}};
  const StreamTimeline t = simulate_stream(chunks);
  EXPECT_DOUBLE_EQ(t.total_ns, 150.0);
  EXPECT_DOUBLE_EQ(t.compute_stall_ns, 100.0);  // pipeline fill
}

TEST(StreamSim, TransferBoundPipelineHidesCompute) {
  // transfer 100/chunk, compute 40/chunk: steady state is transfer
  // bound; total ≈ n*100 + last compute.
  std::vector<StreamChunk> chunks(10, {100.0, 40.0});
  const StreamTimeline t = simulate_stream(chunks, 2);
  EXPECT_NEAR(t.total_ns, 10 * 100.0 + 40.0, 1e-9);
  EXPECT_NEAR(t.compute_busy_ns, 400.0, 1e-9);
}

TEST(StreamSim, ComputeBoundPipelineHidesTransfer) {
  std::vector<StreamChunk> chunks(10, {40.0, 100.0});
  const StreamTimeline t = simulate_stream(chunks, 2);
  // First transfer fills the pipe, then compute back-to-back.
  EXPECT_NEAR(t.total_ns, 40.0 + 10 * 100.0, 1e-9);
  EXPECT_NEAR(t.overlap_efficiency, 1000.0 / 1040.0, 1e-9);
}

TEST(StreamSim, SingleBufferSerializesAlternately) {
  // With one buffer the next transfer cannot start until the resident
  // chunk has been computed: total = Σ(transfer+compute).
  std::vector<StreamChunk> chunks(5, {100.0, 100.0});
  const StreamTimeline one = simulate_stream(chunks, 1);
  const StreamTimeline two = simulate_stream(chunks, 2);
  EXPECT_NEAR(one.total_ns, 5 * 200.0, 1e-9);
  EXPECT_NEAR(two.total_ns, 100.0 + 5 * 100.0, 1e-9);
  EXPECT_LT(two.total_ns, one.total_ns);
}

TEST(StreamSim, MoreBuffersNeverHurt) {
  std::vector<StreamChunk> chunks;
  for (int i = 0; i < 20; ++i) {
    chunks.push_back({static_cast<double>(10 + (i * 37) % 90),
                      static_cast<double>(10 + (i * 53) % 90)});
  }
  double prev = simulate_stream(chunks, 1).total_ns;
  for (int buffers = 2; buffers <= 4; ++buffers) {
    const double cur = simulate_stream(chunks, buffers).total_ns;
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST(StreamSim, EmptyPipelineIsZero) {
  const StreamTimeline t = simulate_stream({});
  EXPECT_DOUBLE_EQ(t.total_ns, 0.0);
}

TEST(StreamSim, RejectsBadInputs) {
  std::vector<StreamChunk> chunks{{1.0, 1.0}};
  EXPECT_THROW(simulate_stream(chunks, 0), ConfigError);
  std::vector<StreamChunk> negative{{-1.0, 1.0}};
  EXPECT_THROW(simulate_stream(negative), ConfigError);
}

TEST(StreamSim, AgreesWithAnalyticPlanBound) {
  MatrixStats s;
  s.rows = 400'000;
  s.cols = 400'000;
  s.nnz = 4'000'000;
  MultiGpuConfig cfg;
  const MultiGpuPlan plan = plan_multi_gpu(s, 400'000, csr_bytes(s.rows, s.nnz), cfg);
  ASSERT_GT(plan.num_chunks, 1);
  const StreamTimeline t = simulate_stream(chunks_from_plan(plan), 2);
  // The event simulation must land within one chunk of the analytic
  // steady-state bound.
  const double chunk_slack =
      (plan.transfer_ns + plan.compute_ns) / static_cast<double>(plan.num_chunks);
  EXPECT_NEAR(t.total_ns, plan.total_ns, chunk_slack + 1.0);
}

TEST(StreamSim, ChunksFromPlanSplitEvenly) {
  MultiGpuPlan plan;
  plan.num_chunks = 4;
  plan.transfer_ns = 400.0;
  plan.compute_ns = 200.0;
  const auto chunks = chunks_from_plan(plan);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_DOUBLE_EQ(chunks[0].transfer_ns, 100.0);
  EXPECT_DOUBLE_EQ(chunks[0].compute_ns, 50.0);
}

}  // namespace
}  // namespace nmdt
