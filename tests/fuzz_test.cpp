// Robustness fuzzing: randomized single-field corruptions of valid
// structures must either remain valid (benign mutation) or throw a
// typed error — never crash, hang, or silently corrupt downstream
// consumers.  Every trial that survives validation is pushed through
// the converters and a kernel to make "benign" mean benign end to end.
#include <gtest/gtest.h>

#include "core/journal.hpp"
#include "formats/convert.hpp"
#include "proc/frame.hpp"
#include "formats/matrix_market.hpp"
#include "formats/serialize.hpp"
#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "service/protocol.hpp"
#include "transform/engine.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/line_reader.hpp"
#include "util/rng.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace nmdt {
namespace {

Csr base_matrix(u64 seed) { return gen_uniform(96, 96, 0.05, seed); }

/// Apply one random mutation to a CSR structure.
void mutate(Csr& m, Rng& rng) {
  switch (rng.below(6)) {
    case 0:
      if (!m.row_ptr.empty()) {
        m.row_ptr[rng.below(m.row_ptr.size())] =
            static_cast<index_t>(rng.range(-3, static_cast<i64>(m.val.size()) + 3));
      }
      break;
    case 1:
      if (!m.col_idx.empty()) {
        m.col_idx[rng.below(m.col_idx.size())] =
            static_cast<index_t>(rng.range(-2, m.cols + 2));
      }
      break;
    case 2:
      m.rows = static_cast<index_t>(rng.range(-1, m.rows + 1));
      break;
    case 3:
      m.cols = static_cast<index_t>(rng.range(-1, m.cols + 1));
      break;
    case 4:
      if (!m.val.empty()) m.val.pop_back();
      break;
    default:
      m.row_ptr.push_back(m.row_ptr.back());
      break;
  }
}

TEST(Fuzz, MutatedCsrEitherValidatesOrThrowsTypedError) {
  Rng rng(0xf022);
  int benign = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Csr m = base_matrix(1 + trial % 5);
    const int mutations = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < mutations; ++i) mutate(m, rng);
    bool valid = true;
    try {
      m.validate();
    } catch (const Error&) {
      valid = false;
      ++rejected;
    }
    if (!valid) continue;
    ++benign;
    // A structure that validates must survive the full pipeline.
    const Csc csc = csc_from_csr(m);
    csc.validate();
    const Dcsr d = dcsr_from_csr(m);
    d.validate();
    Rng brng(7);
    DenseMatrix B(m.cols, 8);
    B.randomize(brng);
    SpmmConfig cfg;
    const SpmmResult r = run_spmm(KernelKind::kTiledDcsrOnline, m, B, cfg);
    EXPECT_LE(r.C.max_abs_diff(spmm_reference(m, B)), 1e-3);
  }
  // The mutation mix must actually exercise both branches.
  EXPECT_GT(rejected, 50);
  EXPECT_GT(benign, 5);
}

TEST(Fuzz, CorruptedBinaryStreamsNeverCrash) {
  Rng rng(0xf023);
  const Csr m = base_matrix(9);
  std::stringstream ss;
  save_csr(ss, m);
  const std::string golden = ss.str();
  int loaded = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes = golden;
    // Flip 1-4 random bytes anywhere in the stream.
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < flips; ++i) {
      bytes[rng.below(bytes.size())] ^= static_cast<char>(1 + rng.below(255));
    }
    std::stringstream corrupted(bytes);
    try {
      const Csr back = load_csr(corrupted);
      back.validate();  // anything that loads must be structurally sound
      ++loaded;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(loaded + rejected, 300);
  EXPECT_GT(rejected, 100) << "most random corruption must be caught";
}

TEST(Fuzz, CorruptedMatrixMarketTextNeverCrashes) {
  Rng rng(0xf025);
  const Csr m = base_matrix(11);
  std::stringstream ss;
  write_matrix_market(ss, coo_from_csr(m));
  const std::string golden = ss.str();
  int loaded = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = golden;
    // 1-4 random printable-character edits: overwrite, insert, or
    // delete a span — models hand-edited or mis-transferred files.
    const int edits = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < edits && !text.empty(); ++i) {
      const usize pos = rng.below(text.size());
      switch (rng.below(3)) {
        case 0: text[pos] = static_cast<char>(32 + rng.below(95)); break;
        case 1: text.insert(pos, 1, static_cast<char>(32 + rng.below(95))); break;
        default: text.erase(pos, 1 + rng.below(8)); break;
      }
    }
    std::istringstream is(text);
    try {
      const Coo coo = read_matrix_market(is);
      coo.validate();
      ++loaded;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(loaded + rejected, 300);
  EXPECT_GT(rejected, 50) << "the edit mix must actually damage the format";
}

TEST(Fuzz, MatrixMarketRejectsDimensionsBeyondIndexRange) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real general\n"
      "4294967296 10 1\n"
      "1 1 1.0\n");
  try {
    read_matrix_market(is);
    FAIL() << "2^32 rows must not silently wrap in index_t";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("exceed the index range"), std::string::npos);
  }
}

TEST(Fuzz, MatrixMarketRejectsEntryCountBeyondIndexRange) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real general\n"
      "10 10 4294967296\n");
  EXPECT_THROW(read_matrix_market(is), ParseError);
}

TEST(Fuzz, MatrixMarketRejectsEntriesPastTheDeclaredCount) {
  std::istringstream is(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 1.0\n"
      "2 2 2.0\n");
  try {
    read_matrix_market(is);
    FAIL() << "extra entries mean the size line lied about nnz";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("beyond the declared count"), std::string::npos);
  }
}

/// A small but representative checkpoint journal: planned rows with
/// successful and failed arms, a degenerate row, a row-level error.
std::string golden_journal(u64 fingerprint) {
  const std::string path = testing::TempDir() + "nmdt_fuzz_journal.nmdj";
  std::remove(path.c_str());
  {
    JournalWriter w(path, fingerprint, 4, 8, 4, 1, /*append=*/false);
    MatrixProfile p;
    p.stats.rows = 96;
    p.stats.nnz = 123;
    p.ssf = 0.25;
    w.row_planned(0, p);
    w.arm_done(0, 0, 1.5, 0.0);
    w.arm_done(0, 1, 2.5, 0.0);
    w.arm_done(0, 2, 3.5, 0.0);
    w.arm_done(0, 3, 4.5, 0.125);
    w.row_degenerate(1);
    w.row_error(2, "FaultError: injected transient fault");
    w.row_planned(3, p);
    w.arm_error(3, 2, "TimeoutError: work unit exceeded its deadline");
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Fuzz, JournalRoundTripsTheGoldenBytes) {
  const std::string golden = golden_journal(0xfeed);
  std::istringstream is(golden);
  const JournalReplay replay = read_journal(is);
  EXPECT_TRUE(replay.has_header);
  EXPECT_EQ(replay.fingerprint, 0xfeedu);
  EXPECT_EQ(replay.entries, 9u);
  ASSERT_EQ(replay.rows.size(), 4u);
  EXPECT_TRUE(replay.rows.at(0).complete(4));
  EXPECT_EQ(replay.rows.at(0).arms[3]->prep_ms, 0.125);
  EXPECT_TRUE(replay.rows.at(1).degenerate);
  EXPECT_TRUE(replay.rows.at(2).error.has_value());
  EXPECT_FALSE(replay.rows.at(3).complete(4));
  EXPECT_TRUE(replay.rows.at(3).arms[2]->failed());
}

TEST(Fuzz, TruncatedJournalYieldsAValidPrefixOrATypedError) {
  // A crash can cut the file at ANY byte.  Every cut must give either a
  // clean prefix replay (the dropped tail re-executes on resume) or a
  // typed error — never UB and never a replay longer than the original.
  const std::string golden = golden_journal(0xfeed);
  for (usize cut = 0; cut < golden.size(); ++cut) {
    std::istringstream is(golden.substr(0, cut));
    try {
      const JournalReplay replay = read_journal(is);
      EXPECT_LE(replay.entries, 9u) << "cut at " << cut;
      EXPECT_LE(replay.rows.size(), 4u) << "cut at " << cut;
    } catch (const Error&) {
      // Typed rejection (e.g. cut inside the magic) is equally fine.
    }
  }
}

TEST(Fuzz, BitFlippedJournalNeverResumesWrong) {
  const std::string golden = golden_journal(0xfeed);
  Rng rng(0xf026);
  int accepted = 0, rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes = golden;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < flips; ++i) {
      bytes[rng.below(bytes.size())] ^= static_cast<char>(1 + rng.below(255));
    }
    std::istringstream is(bytes);
    try {
      const JournalReplay replay = read_journal(is);
      // Flips that survive the CRC can only have landed in a dropped
      // tail or cancelled out; the replay must still be structurally
      // sane.
      EXPECT_LE(replay.entries, 9u);
      for (const auto& [idx, row] : replay.rows) EXPECT_LT(idx, 64u);
      ++accepted;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted + rejected, 500);
  EXPECT_GT(rejected, 250) << "CRC framing must catch most corruption";
}

TEST(Fuzz, StaleJournalFingerprintIsRejectedBeforeResume) {
  const std::string golden = golden_journal(0xfeed);
  std::istringstream is(golden);
  const JournalReplay replay = read_journal(is);
  // Matching sweep: accepted.
  verify_journal(replay, 0xfeed, 4, 8, 4);
  // The journal belongs to a different experiment: typed rejection.
  EXPECT_THROW(verify_journal(replay, 0xbeef, 4, 8, 4), ConfigError);
  EXPECT_THROW(verify_journal(replay, 0xfeed, 5, 8, 4), ConfigError);
  EXPECT_THROW(verify_journal(replay, 0xfeed, 4, 16, 4), ConfigError);
}

TEST(Fuzz, MutatedServiceRequestsParseOrThrowTypedError) {
  // The daemon's request decoder is the service's attack surface:
  // random single-byte corruptions of a valid request line must parse
  // to a valid Request or throw a typed ParseError — never crash, never
  // throw anything untyped.
  const std::string valid =
      R"({"id":"r1","tenant":"t","matrix":"gen:uniform:64x64:0.05:1","k":16,)"
      R"("b_seed":7,"kernel":"auto","precision":"f32","deadline_ms":100,)"
      R"("return_c":false})";
  // Sanity: the uncorrupted line parses.
  ASSERT_EQ(service::parse_request(valid, 1).k, 16);

  Rng rng(0xf025);
  int benign = 0, rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string line = valid;
    const int mutations = 1 + static_cast<int>(rng.below(3));
    for (int m = 0; m < mutations; ++m) {
      const usize pos = rng.below(line.size());
      switch (rng.below(3)) {
        case 0: line[pos] = static_cast<char>(rng.below(256)); break;
        case 1: line.erase(pos, 1); break;
        default: {
          const char insert[2] = {static_cast<char>(rng.below(128)), '\0'};
          line = line.substr(0, pos) + insert + line.substr(pos);
          break;
        }
      }
      if (line.empty()) line = "x";
    }
    try {
      const service::Request req = service::parse_request(line, 1);
      EXPECT_GE(req.k, 1);  // every accepted request satisfies the caps
      EXPECT_LE(req.k, service::kMaxRequestK);
      EXPECT_FALSE(req.matrix.empty());
      ++benign;
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(benign + rejected, 500);
  EXPECT_GT(rejected, 0);  // corruptions really were exercised
}

TEST(Fuzz, RandomGarbageRequestLinesAlwaysThrowTyped) {
  Rng rng(0xf026);
  for (int trial = 0; trial < 200; ++trial) {
    std::string line;
    const usize len = rng.below(120);
    for (usize i = 0; i < len; ++i) {
      line.push_back(static_cast<char>(rng.below(256)));
    }
    try {
      (void)service::parse_request(line, static_cast<u64>(trial));
    } catch (const ParseError&) {
      // typed rejection is the expected outcome for garbage
    }
  }
}

TEST(Fuzz, BoundedLineReaderCapsNewlineFreeStreams) {
  // A newline-free stream (or one oversized line) must surface as a
  // typed ParseError at the cap, not as unbounded buffering.
  std::istringstream huge(std::string(4096, 'a'));
  std::string line;
  EXPECT_THROW(read_bounded_line(huge, line, 1024, "request"), ParseError);

  // At or under the cap, behavior matches std::getline exactly.
  std::istringstream ok("short\r\nsecond line\nlast");
  ASSERT_TRUE(read_bounded_line(ok, line, 1024, "request"));
  EXPECT_EQ(line, "short\r");  // '\r' kept, '\n' consumed and dropped
  ASSERT_TRUE(read_bounded_line(ok, line, 1024, "request"));
  EXPECT_EQ(line, "second line");
  ASSERT_TRUE(read_bounded_line(ok, line, 1024, "request"));
  EXPECT_EQ(line, "last");  // unterminated final line still returned
  EXPECT_FALSE(read_bounded_line(ok, line, 1024, "request"));  // EOF
}

TEST(Fuzz, MatrixMarketOverlongLineIsATypedParseError) {
  // The matrix_market reader shares the bounded-line reader: a header
  // comment longer than the cap is rejected, not buffered without
  // bound.
  std::string text = "%%MatrixMarket matrix coordinate real general\n%";
  text.append(kDefaultMaxLineBytes + 16, 'c');
  text += "\n2 2 1\n1 1 1.0\n";
  std::istringstream is(text);
  EXPECT_THROW(read_matrix_market(is), ParseError);
}

/// A representative supervisor↔worker pipe exchange: hello, heartbeat,
/// a task dispatch, and its result — the byte stream the FrameDecoder
/// must survive in any torn or corrupted form.
std::string golden_frame_stream() {
  std::string stream;
  {
    proc::WireWriter w;
    w.put_u64(4242);  // pid
    stream += proc::encode_frame(proc::FrameType::kHello, w.out);
  }
  stream += proc::encode_frame(proc::FrameType::kHeartbeat, "");
  {
    proc::WireWriter w;
    w.put_u64(7);            // task id
    w.put_u8(2);             // kind
    w.put_u64(0xabcdef);     // key
    w.put_u32(1);            // attempt
    w.put_str("row=3 arm=1");
    stream += proc::encode_frame(proc::FrameType::kTask, w.out);
  }
  {
    proc::WireWriter w;
    w.put_u64(7);  // task id
    w.put_u8(1);   // ok
    w.put_str("t_ms=1.25 prep_ms=0.0 crc=deadbeef");
    stream += proc::encode_frame(proc::FrameType::kResult, w.out);
  }
  return stream;
}

/// Drain a decoder over `bytes`, fed in `chunk`-sized slices.  Returns
/// the number of complete frames, or -1 if a typed ParseError fired.
/// Anything else escaping (crash, untyped throw) fails the test.
int drain_frames(const std::string& bytes, usize chunk) {
  proc::FrameDecoder dec;
  int frames = 0;
  try {
    for (usize off = 0; off < bytes.size(); off += chunk) {
      dec.feed(bytes.data() + off, std::min(chunk, bytes.size() - off));
      while (dec.next().has_value()) ++frames;
    }
  } catch (const ParseError&) {
    return -1;
  }
  return frames;
}

TEST(Fuzz, FrameDecoderRoundTripsTheGoldenStreamAtAnyChunking) {
  const std::string golden = golden_frame_stream();
  // Whole-stream, byte-at-a-time, and awkward prime-sized reads all
  // yield the same four frames — the decoder is chunking-agnostic.
  for (usize chunk : {golden.size(), usize{1}, usize{3}, usize{7}}) {
    EXPECT_EQ(drain_frames(golden, chunk), 4) << "chunk=" << chunk;
  }
  // Field-level round trip of the task frame.
  proc::FrameDecoder dec;
  dec.feed(golden.data(), golden.size());
  (void)dec.next();  // hello
  (void)dec.next();  // heartbeat
  const auto task = dec.next();
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->type, proc::FrameType::kTask);
  proc::WireReader r(task->payload);
  EXPECT_EQ(r.get_u64("id"), 7u);
  EXPECT_EQ(r.get_u8("kind"), 2);
  EXPECT_EQ(r.get_u64("key"), 0xabcdefu);
  EXPECT_EQ(r.get_u32("attempt"), 1u);
  EXPECT_EQ(r.get_str("payload"), "row=3 arm=1");
  r.expect_done("task frame");
}

TEST(Fuzz, TruncatedFrameStreamsNeverCrashOrOverRead) {
  // A worker can die at ANY byte of the stream.  Every prefix must
  // decode to a valid frame prefix (0..4 frames) and leave the decoder
  // non-idle when the cut lands mid-frame — that non-idle EOF is how
  // the supervisor types "died mid-frame" vs a clean close.
  const std::string golden = golden_frame_stream();
  for (usize cut = 0; cut < golden.size(); ++cut) {
    proc::FrameDecoder dec;
    dec.feed(golden.data(), cut);
    int frames = 0;
    while (dec.next().has_value()) ++frames;  // must terminate, never throw
    EXPECT_LE(frames, 4) << "cut at " << cut;
    // Decoded frame boundaries are monotone: a longer prefix never
    // yields fewer frames, and mid-frame cuts leave residue buffered.
    if (cut > 0 && frames == 0) {
      EXPECT_FALSE(dec.idle()) << "cut at " << cut;
    }
  }
  // The full stream drains to idle: clean EOF.
  proc::FrameDecoder dec;
  dec.feed(golden.data(), golden.size());
  while (dec.next().has_value()) {
  }
  EXPECT_TRUE(dec.idle());
}

TEST(Fuzz, BitFlippedFrameStreamsAreCaughtOrBenign) {
  const std::string golden = golden_frame_stream();
  Rng rng(0xf027);
  int accepted = 0, rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes = golden;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < flips; ++i) {
      bytes[rng.below(bytes.size())] ^= static_cast<char>(1 + rng.below(255));
    }
    const int frames = drain_frames(bytes, 1 + rng.below(16));
    if (frames < 0) {
      ++rejected;  // typed ParseError — the supervisor kills the worker
    } else {
      // Flips that evade the CRC must have landed in a frame that still
      // checksums (length-field flips usually just leave a partial
      // tail); whatever decoded is a structurally valid frame sequence.
      EXPECT_LE(frames, 4);
      ++accepted;
    }
  }
  EXPECT_EQ(accepted + rejected, 500);
  EXPECT_GT(rejected, 200) << "CRC framing must catch most corruption";
}

TEST(Fuzz, ImplausibleFrameLengthIsATypedErrorNotAnAllocation) {
  // A corrupt length prefix claiming a multi-GiB payload must throw
  // immediately — before any buffering decision — not attempt the
  // allocation or wait forever for bytes that never come.  The wire
  // length counts the tag byte, so the largest legal value is
  // kMaxFramePayloadBytes + 1.
  for (u32 len : {proc::kMaxFramePayloadBytes + 2, u32{0xffffffff}}) {
    proc::WireWriter w;
    w.put_u32(len);
    proc::FrameDecoder dec;
    dec.feed(w.out.data(), w.out.size());
    try {
      dec.next();
      FAIL() << "length " << len << " must not be accepted";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("implausible length"), std::string::npos);
    }
  }
  // At the cap exactly, the decoder just waits for the payload bytes.
  proc::WireWriter w;
  w.put_u32(proc::kMaxFramePayloadBytes + 1);
  proc::FrameDecoder dec;
  dec.feed(w.out.data(), w.out.size());
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Fuzz, EmptyPayloadAndUnknownTagFramesAreTypedErrors) {
  {
    // Zero-length payload: no room for the type tag.
    u32 fields[2] = {0, crc32("", 0)};
    proc::FrameDecoder dec;
    dec.feed(fields, sizeof(fields));
    try {
      dec.next();
      FAIL() << "empty payload must be rejected";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("empty payload"), std::string::npos);
    }
  }
  {
    // Valid CRC over a payload whose tag is not a FrameType.
    const std::string bogus = proc::encode_frame(static_cast<proc::FrameType>(99), "x");
    proc::FrameDecoder dec;
    dec.feed(bogus.data(), bogus.size());
    try {
      dec.next();
      FAIL() << "unknown tag must be rejected";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("unknown type tag"), std::string::npos);
    }
  }
}

TEST(Fuzz, RandomGarbageFrameStreamsNeverCrashOrHang) {
  Rng rng(0xf028);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bytes;
    const usize len = rng.below(256);
    for (usize i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.below(256)));
    }
    // Either some frames decode (vanishingly unlikely) or a typed
    // ParseError fires or the decoder just wants more bytes — all fine;
    // drain_frames fails the test on anything untyped.
    (void)drain_frames(bytes, 1 + rng.below(32));
  }
}

TEST(Fuzz, WireReaderTruncationIsAlwaysATypedError) {
  // Layout disagreement (e.g. version skew) surfaces as truncated-field
  // ParseErrors at every possible cut, never an over-read.
  proc::WireWriter w;
  w.put_u64(123);
  w.put_u8(7);
  w.put_str("hello");
  w.put_f64(2.5);
  for (usize cut = 0; cut + 1 < w.out.size(); ++cut) {
    proc::WireReader r(std::string_view(w.out).substr(0, cut));
    try {
      (void)r.get_u64("a");
      (void)r.get_u8("b");
      (void)r.get_str("c");
      (void)r.get_f64("d");
      FAIL() << "cut at " << cut << " must not decode every field";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
    }
  }
  // Extra trailing bytes are equally typed.
  proc::WireReader r(w.out);
  (void)r.get_u64("a");
  EXPECT_THROW(r.expect_done("short read"), ParseError);
}

TEST(Fuzz, EngineHandlesArbitraryValidInputs) {
  Rng rng(0xf024);
  for (int trial = 0; trial < 50; ++trial) {
    const index_t rows = static_cast<index_t>(1 + rng.below(200));
    const index_t cols = static_cast<index_t>(1 + rng.below(200));
    const double density = rng.uniform(0.0, 0.2);
    const Csr csr = gen_uniform(rows, cols, density, 5000 + trial);
    const Csc csc = csc_from_csr(csr);
    const TilingSpec spec{static_cast<index_t>(1 + rng.below(64)),
                          static_cast<index_t>(1 + rng.below(128))};
    ConversionEngine engine;
    i64 total = 0;
    for (index_t s = 0; s < spec.num_strips(cols); ++s) {
      for (const auto& tile : engine.convert_strip(csc, s, spec)) {
        tile.body.validate();
        total += tile.nnz();
      }
    }
    EXPECT_EQ(total, csr.nnz()) << "rows=" << rows << " cols=" << cols;
  }
}

}  // namespace
}  // namespace nmdt
