// Chaos suite: pins the fault-injection contract end to end
// (DESIGN.md "Fault model & recovery").
//
//  * Sweep: every injection site × rates {0.01, 0.1} × 3 seeds ×
//    jobs {1, 4}.  Each run either recovers — outputs, simulated
//    counters, memory stats, and engine stats bit-identical to the
//    fault-free run — or surfaces a typed error / recorded fallback.
//    Never silent corruption.
//  * Determinism: the same (site, rate, seed) fires the same faults at
//    any job count — fault counters match between jobs=1 and jobs=4.
//  * Rate 0 with the layer enabled is a bitwise no-op: results, trace
//    span tree, and fault counters identical to injection disabled.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/executor.hpp"
#include "core/plan.hpp"
#include "fault/fault.hpp"
#include "formats/convert.hpp"
#include "formats/serialize.hpp"
#include "transform/arena.hpp"
#include "transform/engine.hpp"
#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nmdt {
namespace {

struct FaultCounters {
  i64 injected = 0;
  i64 detected = 0;
  i64 recovered = 0;
  i64 unrecovered = 0;
  i64 fallbacks = 0;

  bool operator==(const FaultCounters&) const = default;
};

FaultCounters read_fault_counters() {
  auto& m = obs::MetricsRegistry::global();
  return {m.counter("fault.injected").value(), m.counter("fault.detected").value(),
          m.counter("fault.recovered").value(), m.counter("fault.unrecovered").value(),
          m.counter("fault.fallbacks").value()};
}

void reset_metrics() { obs::MetricsRegistry::global().reset(); }

/// Every injection is paired with a detection, and any detection
/// sequence must end in a recovery or a typed failure — the "never
/// silent" invariant in counter form.
void expect_accounted(const FaultCounters& c) {
  EXPECT_EQ(c.detected, c.injected);
  if (c.injected > 0) {
    EXPECT_GT(c.recovered + c.unrecovered, 0) << "injected faults vanished silently";
  } else {
    EXPECT_EQ(c.recovered, 0);
    EXPECT_EQ(c.unrecovered, 0);
  }
}

/// 256×4096 power-law matrix: 64 strips → 4 kernel shards and 256
/// engine tiles, so both the tile and shard-exec sites see enough
/// events to fire at the sweep's low rates, while staying fast under
/// sanitizers.
Csr chaos_matrix() { return gen_powerlaw_rows(256, 4096, 0.005, 1.2, 7); }

DenseMatrix chaos_b(index_t rows, u64 seed) {
  Rng rng(seed);
  DenseMatrix B(rows, 16);
  B.randomize(rng);
  return B;
}

void expect_identical(const SpmmResult& a, const SpmmResult& b) {
  ASSERT_EQ(a.C.rows(), b.C.rows());
  ASSERT_EQ(a.C.cols(), b.C.cols());
  const auto xs = a.C.data();
  const auto ys = b.C.data();
  i64 mismatches = 0;
  for (usize i = 0; i < xs.size(); ++i) mismatches += xs[i] != ys[i] ? 1 : 0;
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.mem, b.mem);
  EXPECT_EQ(a.engine, b.engine);
  EXPECT_EQ(a.engine_busy_ns, b.engine_busy_ns);
  EXPECT_EQ(a.timing.total_ns, b.timing.total_ns);
}

constexpr double kRates[] = {0.01, 0.1};
constexpr u64 kSeeds[] = {1, 2, 3};
constexpr int kJobs[] = {1, 4};

// ---------------------------------------------------------------------
// Sites with an in-pipeline recovery path, swept through the online
// kernel (the paper's faultable near-memory unit plus the host shards).

TEST(Chaos, PipelineSiteSweepRecoversBitIdenticalAtEveryJobCount) {
  const Csr A = chaos_matrix();
  const DenseMatrix B = chaos_b(A.cols, 5);
  const DenseMatrix ref = spmm_reference(A, B);

  std::map<int, SpmmResult> baseline;  // jobs -> fault-free run
  for (int jobs : kJobs) {
    SpmmConfig cfg;
    cfg.jobs = jobs;
    baseline.emplace(jobs, run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg));
  }
  expect_identical(baseline.at(1), baseline.at(4));

  using fault::FaultSite;
  for (FaultSite site : {FaultSite::kTileRowId, FaultSite::kTileColIdx,
                         FaultSite::kTileVal, FaultSite::kShardExec}) {
    i64 site_injections = 0;
    for (double rate : kRates) {
      for (u64 seed : kSeeds) {
        std::map<int, FaultCounters> by_jobs;
        for (int jobs : kJobs) {
          SCOPED_TRACE(std::string(fault::site_name(site)) + " rate " +
                       std::to_string(rate) + " seed " + std::to_string(seed) +
                       " jobs " + std::to_string(jobs));
          reset_metrics();
          SpmmConfig cfg;
          cfg.jobs = jobs;
          cfg.fault = {site, rate, seed};
          bool threw = false;
          try {
            const SpmmResult r = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg);
            if (r.used_fallback) {
              // Different kernel, different FP accumulation order: the
              // degraded answer is correct, not bit-identical.
              EXPECT_LT(r.C.max_abs_diff(ref), 1e-3);
            } else {
              expect_identical(r, baseline.at(jobs));
            }
          } catch (const FaultError&) {
            threw = true;  // persistent transient inside the fallback path
          }
          const FaultCounters c = read_fault_counters();
          expect_accounted(c);
          if (threw) {
            EXPECT_GT(c.unrecovered, 0);
          }
          EXPECT_EQ(c.fallbacks > 0 || threw, c.unrecovered > 0);
          by_jobs[jobs] = c;
        }
        // Keys derive from work coordinates, never threads: the fault
        // sequence is a function of (site, rate, seed) alone.
        EXPECT_EQ(by_jobs.at(1), by_jobs.at(4))
            << fault::site_name(site) << " fired differently at jobs 1 vs 4";
        site_injections += by_jobs.at(1).injected;
      }
    }
    EXPECT_GT(site_injections, 0)
        << fault::site_name(site) << " never fired: the sweep is vacuous";
  }
}

TEST(Chaos, PersistentTileFaultDegradesToVerifiedFallback) {
  const Csr A = chaos_matrix();
  const DenseMatrix B = chaos_b(A.cols, 6);
  reset_metrics();
  SpmmConfig cfg;
  cfg.fault = {fault::FaultSite::kTileVal, 1.0, 9};
  const SpmmResult r = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg);
  EXPECT_TRUE(r.used_fallback);
  EXPECT_LT(r.C.max_abs_diff(spmm_reference(A, B)), 1e-3);
  const FaultCounters c = read_fault_counters();
  expect_accounted(c);
  // Every shard drains (no early abort), so each hits one exhausted
  // tile before the lowest-index FaultError triggers the single
  // kernel-level fallback.
  EXPECT_GE(c.unrecovered, 1);
  EXPECT_EQ(c.fallbacks, 1);

  cfg.fault_fallback = false;
  EXPECT_THROW(run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg), FaultError);
}

// Arena-backed reconversion: bit-flip recovery in convert_tile_checked
// now takes all its tile scratch from the thread-local ConversionArena
// (one RAII scope per attempt).  The recovered tiles must stay bitwise
// equal to fault-free conversion, the engine counters must stay pinned
// to the first attempt, and — the arena contract — the retries must be
// served from reused chunks, not fresh heap allocations.
TEST(Chaos, ArenaReconversionReusesScratchAndStaysBitIdentical) {
  const Csr A = chaos_matrix();
  const Csc csc = csc_from_csr(A);
  const TilingSpec spec{64, 64};
  const index_t strips = spec.num_strips(A.cols);

  // Fault-free reference tiles, strip by strip.
  ConversionEngine ref_engine;
  std::vector<std::vector<DcsrTile>> ref_tiles;
  for (index_t s = 0; s < strips; ++s) {
    ref_tiles.push_back(ref_engine.convert_strip<value_t>(csc, s, spec));
  }

  // Same conversion under tile-value bit flips, through the reused-tile
  // entry point the online kernel uses.  The rate is low enough that
  // the deterministic draw never exhausts the retry budget, high enough
  // that retries actually happen (asserted below).
  reset_metrics();
  const fault::FaultScope inject({fault::FaultSite::kTileVal, 0.1, 3});
  ConversionEngine engine;
  ConversionArena& arena = ConversionArena::local();
  const auto convert_strip_reused = [&](index_t s) {
    ConversionArena::local().reset();
    StripCursor cursor(csc, s, spec);
    DcsrTile tile;
    std::vector<DcsrTile> out;
    for (index_t row_start = 0; row_start < csc.rows; row_start += spec.tile_height) {
      engine.convert_tile_checked_into(tile, csc, cursor, row_start, spec);
      out.push_back(tile);
    }
    return out;
  };

  // Warm the arena on the first strip, then require steady state: no
  // strip after it may grow the arena, retries included.
  u64 rewinds_before = arena.stats().rewinds;
  std::vector<std::vector<DcsrTile>> got;
  got.push_back(convert_strip_reused(0));
  const u64 warm_chunks = arena.stats().chunk_allocs;
  const u64 warm_capacity = arena.stats().capacity_bytes;
  for (index_t s = 1; s < strips; ++s) got.push_back(convert_strip_reused(s));
  EXPECT_EQ(arena.stats().chunk_allocs, warm_chunks);
  EXPECT_EQ(arena.stats().capacity_bytes, warm_capacity);

  // One scope close per conversion attempt: with recovered faults in
  // the run, rewinds must exceed the tile count.
  i64 tiles_total = 0;
  for (const auto& strip : got) tiles_total += static_cast<i64>(strip.size());
  EXPECT_GT(static_cast<i64>(arena.stats().rewinds - rewinds_before), tiles_total);

  const FaultCounters c = read_fault_counters();
  expect_accounted(c);
  EXPECT_GT(c.injected, 0) << "no bit flips fired: the test is vacuous";
  EXPECT_GT(c.recovered, 0);
  EXPECT_EQ(c.unrecovered, 0);

  // Recovered output: bitwise equal tiles, engine stats pinned to the
  // fault-free accounting.
  ASSERT_EQ(got.size(), ref_tiles.size());
  for (usize s = 0; s < got.size(); ++s) {
    ASSERT_EQ(got[s].size(), ref_tiles[s].size());
    for (usize t = 0; t < got[s].size(); ++t) {
      SCOPED_TRACE("strip " + std::to_string(s) + " tile " + std::to_string(t));
      const DcsrTile& x = got[s][t];
      const DcsrTile& y = ref_tiles[s][t];
      EXPECT_EQ(x.crc, y.crc);
      EXPECT_EQ(x.body.row_idx, y.body.row_idx);
      EXPECT_EQ(x.body.row_ptr, y.body.row_ptr);
      EXPECT_EQ(x.body.col_idx, y.body.col_idx);
      EXPECT_EQ(x.body.val, y.body.val);
    }
  }
  EXPECT_EQ(engine.stats(), ref_engine.stats());
}

TEST(Chaos, PersistentShardFaultSurfacesTypedErrorWithoutFallback) {
  const Csr A = chaos_matrix();
  const DenseMatrix B = chaos_b(A.cols, 6);
  reset_metrics();
  SpmmConfig cfg;
  cfg.fault = {fault::FaultSite::kShardExec, 1.0, 2};
  // The baseline CSR kernel has no degraded mode to hide behind.
  EXPECT_THROW(run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cfg), FaultError);
  const FaultCounters c = read_fault_counters();
  expect_accounted(c);
  EXPECT_GT(c.unrecovered, 0);
}

// ---------------------------------------------------------------------
// PlanCache: corrupted entries are evicted and rebuilt, and the caller
// always receives a plan for the matrix it asked about.

TEST(Chaos, CacheEntryCorruptionEvictsAndRebuilds) {
  std::vector<Csr> mats;
  for (u64 s = 1; s <= 6; ++s) mats.push_back(gen_uniform(96, 96, 0.05, s));

  for (double rate : {0.1, 1.0}) {
    for (u64 seed : kSeeds) {
      SCOPED_TRACE("rate " + std::to_string(rate) + " seed " + std::to_string(seed));
      reset_metrics();
      PlanCache cache;
      fault::FaultScope scope({fault::FaultSite::kCacheEntry, rate, seed});
      for (const Csr& m : mats) {
        for (int round = 0; round < 3; ++round) {
          const auto plan = cache.get_or_build(m, {});
          ASSERT_NE(plan, nullptr);
          // The returned plan is always the right one, corrupt or not.
          EXPECT_EQ(plan->csr().row_ptr, m.row_ptr);
          EXPECT_EQ(plan->csr().col_idx, m.col_idx);
          EXPECT_EQ(plan->csr().val, m.val);
        }
      }
      const FaultCounters c = read_fault_counters();
      expect_accounted(c);
      EXPECT_EQ(c.recovered, c.injected);  // rebuild always succeeds
      EXPECT_EQ(c.unrecovered, 0);
      EXPECT_EQ(cache.stats().corrupt_evictions, static_cast<u64>(c.injected));
      if (rate == 1.0) {
        // Every non-miss lookup observed corruption: 2 per matrix.
        EXPECT_EQ(c.injected, static_cast<i64>(mats.size()) * 2);
        EXPECT_EQ(cache.stats().hits, 0u);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Suite runner: transient arm faults either recover in place (rows
// bit-identical to the fault-free sweep) or mark the row FAILED while
// the rest of the suite completes under the continue policy.

std::vector<MatrixSpec> suite_specs() {
  std::vector<MatrixSpec> specs(4);
  specs[0] = {"uniform-a", MatrixFamily::kUniform, 96, 96, 0.05, 0.0, 0, 21};
  specs[1] = {"uniform-b", MatrixFamily::kUniform, 96, 96, 0.08, 0.0, 0, 22};
  specs[2] = {"powerlaw-a", MatrixFamily::kPowerlawRows, 96, 96, 0.05, 1.2, 0, 23};
  specs[3] = {"banded-a", MatrixFamily::kBanded, 96, 96, 0.5, 0.0, 6, 24};
  return specs;
}

void expect_rows_equal(const SuiteRow& a, const SuiteRow& b) {
  EXPECT_EQ(a.spec.name, b.spec.name);
  EXPECT_EQ(a.profile.ssf, b.profile.ssf);
  EXPECT_EQ(a.t_baseline_ms, b.t_baseline_ms);
  EXPECT_EQ(a.t_dcsr_c_ms, b.t_dcsr_c_ms);
  EXPECT_EQ(a.t_online_b_ms, b.t_online_b_ms);
  EXPECT_EQ(a.t_offline_b_ms, b.t_offline_b_ms);
}

TEST(Chaos, SuiteArmTransientsRecoverOrFailRowsUnderContinue) {
  const auto specs = suite_specs();
  std::map<int, std::vector<SuiteRow>> baseline;
  for (int jobs : kJobs) {
    baseline.emplace(jobs, run_suite(specs, SpmmConfig{}, 8, {}, jobs));
  }

  i64 total_injections = 0;
  for (double rate : kRates) {
    for (u64 seed : kSeeds) {
      std::map<int, FaultCounters> by_jobs;
      for (int jobs : kJobs) {
        SCOPED_TRACE("rate " + std::to_string(rate) + " seed " + std::to_string(seed) +
                     " jobs " + std::to_string(jobs));
        reset_metrics();
        SpmmConfig cfg;
        cfg.fault = {fault::FaultSite::kSuiteArm, rate, seed};
        const auto rows =
            run_suite(specs, cfg, 8, {}, jobs, SuiteErrorPolicy::kContinue);
        ASSERT_EQ(rows.size(), specs.size());  // continue never drops rows
        for (usize i = 0; i < rows.size(); ++i) {
          if (rows[i].ok()) {
            expect_rows_equal(rows[i], baseline.at(jobs)[i]);
          } else {
            EXPECT_NE(rows[i].failure_summary().find("FaultError"), std::string::npos);
          }
        }
        const FaultCounters c = read_fault_counters();
        expect_accounted(c);
        by_jobs[jobs] = c;
      }
      EXPECT_EQ(by_jobs.at(1), by_jobs.at(4));
      total_injections += by_jobs.at(1).injected;
    }
  }
  EXPECT_GT(total_injections, 0) << "no suite-arm fault ever fired: test is vacuous";
}

TEST(Chaos, PersistentSuiteFaultsFailEveryArmYetCompleteUnderContinue) {
  const auto specs = suite_specs();
  reset_metrics();
  SpmmConfig cfg;
  cfg.fault = {fault::FaultSite::kSuiteArm, 1.0, 4};
  const auto rows = run_suite(specs, cfg, 8, {}, 4, SuiteErrorPolicy::kContinue);
  ASSERT_EQ(rows.size(), specs.size());
  for (const auto& r : rows) {
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.failure_summary().find("FaultError"), std::string::npos);
    EXPECT_EQ(r.t_baseline_ms, 0.0);  // failed arms keep zero timings
  }
  const FaultCounters c = read_fault_counters();
  expect_accounted(c);
  EXPECT_EQ(c.unrecovered, static_cast<i64>(specs.size()) * SuiteRow::kArmCount);
}

TEST(Chaos, PersistentSuiteFaultsRethrowUnderFailFast) {
  SpmmConfig cfg;
  cfg.fault = {fault::FaultSite::kSuiteArm, 1.0, 4};
  EXPECT_THROW(run_suite(suite_specs(), cfg, 8, {}, 4), FaultError);
}

// ---------------------------------------------------------------------
// Serialized stream: an injected torn write is caught by the checksum
// trailer — a typed FormatError, never silently parsed garbage.

TEST(Chaos, SerializedStreamTruncationIsDetectedUnrecoverable) {
  const std::string path = testing::TempDir() + "/nmdt_chaos_stream.bin";
  const Csr m = gen_uniform(64, 64, 0.1, 8);
  save_csr_file(path, m);

  for (u64 seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    reset_metrics();
    fault::FaultScope scope({fault::FaultSite::kSerializedStream, 1.0, seed});
    EXPECT_THROW(load_csr_file(path), FormatError);
    const FaultCounters c = read_fault_counters();
    EXPECT_EQ(c.injected, 1);
    EXPECT_EQ(c.detected, 1);
    EXPECT_EQ(c.unrecovered, 1);
    EXPECT_EQ(c.recovered, 0);
  }

  // The same plan at rate 0 loads the pristine file untouched.
  reset_metrics();
  fault::FaultScope scope({fault::FaultSite::kSerializedStream, 0.0, 1});
  const Csr back = load_csr_file(path);
  EXPECT_EQ(back.val, m.val);
  EXPECT_EQ(read_fault_counters(), FaultCounters{});
}

// ---------------------------------------------------------------------
// Rate 0 ≡ disabled: installing the layer with a zero rate changes
// nothing — results, fault counters, and the trace span tree are
// identical to not installing it at all.

using SpanTree = std::vector<std::tuple<u64, std::string, std::string>>;

TEST(Chaos, RateZeroPlanIsBitwiseNoop) {
  const Csr A = chaos_matrix();
  const DenseMatrix B = chaos_b(A.cols, 11);

  struct Leg {
    SpmmResult result;
    FaultCounters counters;
    SpanTree spans;
  };
  const auto leg = [&](bool install) {
    reset_metrics();
    obs::TraceSession session;
    session.install();
    SpmmConfig cfg;
    cfg.jobs = 4;
    if (install) cfg.fault = {fault::FaultSite::kTileVal, 0.0, 42};
    Leg out{run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg), read_fault_counters(), {}};
    session.uninstall();
    for (const auto& ev : session.events()) {
      out.spans.emplace_back(ev.track, ev.name, ev.args_json);
    }
    return out;
  };

  const Leg enabled = leg(true);
  const Leg disabled = leg(false);
  expect_identical(enabled.result, disabled.result);
  EXPECT_EQ(enabled.counters, FaultCounters{});
  EXPECT_EQ(enabled.counters, disabled.counters);
  EXPECT_EQ(enabled.spans, disabled.spans);
  EXPECT_FALSE(enabled.spans.empty());
}

}  // namespace
}  // namespace nmdt
