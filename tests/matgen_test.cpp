// Generator tests: determinism, density/shape targets, distributional
// properties per family, suite construction, and statistics.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/profile.hpp"
#include "matgen/generators.hpp"
#include "formats/convert.hpp"
#include "matgen/suite.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

TEST(Generators, UniformIsDeterministic) {
  const Csr a = gen_uniform(256, 256, 0.01, 99);
  const Csr b = gen_uniform(256, 256, 0.01, 99);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.val, b.val);
  const Csr c = gen_uniform(256, 256, 0.01, 100);
  EXPECT_NE(a.col_idx, c.col_idx);
}

TEST(Generators, UniformHitsDensityTarget) {
  const Csr m = gen_uniform(1024, 1024, 0.005, 1);
  m.validate();
  EXPECT_NEAR(m.density(), 0.005, 0.0005);
}

TEST(Generators, UniformNnzExact) {
  const Csr m = gen_uniform_nnz(128, 128, 1000, 2);
  m.validate();
  EXPECT_EQ(m.nnz(), 1000);
  EXPECT_THROW(gen_uniform_nnz(4, 4, 17, 3), ConfigError);
}

TEST(Generators, UniformRowsAreBalanced) {
  const Csr m = gen_uniform(2048, 2048, 0.01, 4);
  const MatrixStats s = compute_stats(m);
  EXPECT_LT(s.nnz_row_cv, 0.4) << "uniform rows should have low variation";
}

TEST(Generators, PowerlawRowsAreSkewed) {
  const Csr m = gen_powerlaw_rows(2048, 2048, 0.005, 1.2, 5);
  m.validate();
  const MatrixStats s = compute_stats(m);
  EXPECT_GT(s.nnz_row_cv, 1.0) << "power-law rows must be heavy-tailed";
  EXPECT_LT(s.nnz_col_cv, 0.6) << "columns stay near-uniform";
}

TEST(Generators, PowerlawColsAreSkewed) {
  const Csr m = gen_powerlaw_cols(2048, 2048, 0.005, 1.2, 6);
  m.validate();
  const MatrixStats s = compute_stats(m);
  EXPECT_GT(s.nnz_col_cv, 1.0);
  EXPECT_LT(s.nnz_row_cv, 0.6);
}

TEST(Generators, RmatProducesClusteredStructure) {
  const Csr m = gen_rmat(10, 8.0, 0.57, 0.19, 0.19, 0.05, 7);
  m.validate();
  EXPECT_EQ(m.rows, 1024);
  EXPECT_GT(m.nnz(), 4000);  // 8k edges minus duplicate collapse
  // Recursive quadrant bias concentrates mass → lower entropy than an
  // equal-nnz uniform matrix.
  const TilingSpec spec{64, 64};
  const Csr u = gen_uniform_nnz(1024, 1024, m.nnz(), 8);
  EXPECT_LT(normalized_entropy(m, spec), normalized_entropy(u, spec));
}

TEST(Generators, RmatValidatesProbabilities) {
  EXPECT_THROW(gen_rmat(8, 8.0, 0.5, 0.5, 0.5, 0.5, 1), ConfigError);
  EXPECT_THROW(gen_rmat(0, 8.0, 0.25, 0.25, 0.25, 0.25, 1), ConfigError);
}

TEST(Generators, BandedStaysInBand) {
  const index_t bw = 5;
  const Csr m = gen_banded(200, bw, 0.5, 9);
  m.validate();
  for (index_t r = 0; r < m.rows; ++r) {
    for (index_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      EXPECT_LE(std::abs(m.col_idx[k] - r), bw);
    }
    EXPECT_GE(m.row_nnz(r), 1) << "diagonal is always kept";
  }
}

TEST(Generators, BlockClusteredConcentratesInBlocks) {
  const Csr m = gen_block_clustered(256, 8, 0.2, 0.0, 10);
  m.validate();
  const index_t block = 256 / 8;
  for (index_t r = 0; r < m.rows; ++r) {
    for (index_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      EXPECT_EQ(r / block, m.col_idx[k] / block) << "inter_density=0 → block diagonal";
    }
  }
}

TEST(Generators, Stencil5ptStructure) {
  const Csr m = gen_stencil_5pt(10, 10);
  m.validate();
  EXPECT_EQ(m.rows, 100);
  // Interior points have 5 entries, corners 3.
  EXPECT_EQ(m.row_nnz(5 * 10 + 5), 5);
  EXPECT_EQ(m.row_nnz(0), 3);
  EXPECT_FLOAT_EQ(m.val[m.row_ptr[0]], 4.0f);  // diagonal first in row 0
}

TEST(Suite, StandardSuiteIsNonTrivialAndNamed) {
  const auto suite = standard_suite(SuiteScale::kTiny);
  EXPECT_GE(suite.size(), 30u);
  std::set<std::string> names;
  for (const auto& s : suite) {
    EXPECT_FALSE(s.name.empty());
    names.insert(s.name);
  }
  EXPECT_EQ(names.size(), suite.size()) << "spec names must be unique";
}

TEST(Suite, ScalesGrowTheSuite) {
  EXPECT_LT(standard_suite(SuiteScale::kTiny).size(),
            standard_suite(SuiteScale::kMedium).size());
}

TEST(Suite, EverySpecGeneratesAValidMatrix) {
  for (const auto& spec : standard_suite(SuiteScale::kTiny)) {
    const Csr m = spec.generate();
    m.validate();
    EXPECT_GT(m.rows, 0) << spec.name;
  }
}

TEST(Suite, SmokeSuiteCoversAllFamilies) {
  const auto suite = smoke_suite();
  std::set<MatrixFamily> families;
  for (const auto& s : suite) {
    families.insert(s.family);
    s.generate().validate();
  }
  EXPECT_EQ(families.size(), 7u);
}

TEST(Suite, GenerationIsDeterministicAcrossCalls) {
  const auto suite = smoke_suite();
  const Csr a = suite[1].generate();
  const Csr b = suite[1].generate();
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.val, b.val);
}

TEST(Stats, CountsMatchDefinition) {
  Coo coo;
  coo.rows = 4;
  coo.cols = 4;
  coo.push(0, 0, 1.0f);
  coo.push(0, 1, 1.0f);
  coo.push(2, 1, 1.0f);
  const MatrixStats s = compute_stats(csr_from_coo(coo));
  EXPECT_EQ(s.nnz, 3);
  EXPECT_EQ(s.nonzero_rows, 2);
  EXPECT_EQ(s.nonzero_cols, 2);
  EXPECT_DOUBLE_EQ(s.nnz_row_mean, 0.75);
  EXPECT_DOUBLE_EQ(s.nnz_row_max, 2.0);
  EXPECT_DOUBLE_EQ(s.nnz_col_max, 2.0);
}

TEST(Stats, FamilyNamesDistinct) {
  std::set<std::string> names;
  for (MatrixFamily f :
       {MatrixFamily::kUniform, MatrixFamily::kPowerlawRows, MatrixFamily::kPowerlawCols,
        MatrixFamily::kRmat, MatrixFamily::kBanded, MatrixFamily::kBlockClustered,
        MatrixFamily::kStencil}) {
    names.insert(family_name(f));
  }
  EXPECT_EQ(names.size(), 7u);
}

}  // namespace
}  // namespace nmdt
