// Kernel correctness and model-behaviour tests: every SpMM variant must
// reproduce the dense reference bit-for-bit-ish (FP32 accumulation
// order differs, so a tolerance scaled to nnz/row is used), and the
// simulator counters must show the paper's qualitative effects
// (empty-row divergence, atomic traffic, metadata traffic ordering).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "matgen/suite.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

constexpr KernelKind kAllKernels[] = {
    KernelKind::kCsrCStationaryRowWarp,  KernelKind::kCsrCStationaryRowThread,
    KernelKind::kDcsrCStationary,        KernelKind::kTiledCsrBStationary,
    KernelKind::kTiledDcsrBStationary,   KernelKind::kTiledDcsrOnline,
    KernelKind::kAStationary,            KernelKind::kMergeCStationary,
    KernelKind::kHongHybrid,
};

SpmmConfig small_config() {
  SpmmConfig cfg;
  cfg.tiling = {64, 64};
  return cfg;
}

double tolerance_for(const Csr& A, index_t K) {
  (void)K;
  // FP32 accumulation error grows with the number of addends per output.
  double max_row = 1.0;
  for (index_t r = 0; r < A.rows; ++r) {
    max_row = std::max(max_row, static_cast<double>(A.row_nnz(r)));
  }
  return 1e-5 * max_row;
}

// ---------------------------------------------------------------------
// Correctness across kernels × matrix families (parameterized).
// ---------------------------------------------------------------------

struct CorrectnessCase {
  const char* name;
  Csr matrix;
  index_t K;
};

std::vector<CorrectnessCase> correctness_cases() {
  std::vector<CorrectnessCase> cases;
  cases.push_back({"uniform", gen_uniform(300, 300, 0.01, 1), 64});
  cases.push_back({"powerlaw_rows", gen_powerlaw_rows(256, 256, 0.01, 1.2, 2), 64});
  cases.push_back({"powerlaw_cols", gen_powerlaw_cols(256, 256, 0.01, 1.2, 3), 64});
  cases.push_back({"rmat", gen_rmat(8, 8.0, 0.57, 0.19, 0.19, 0.05, 4), 64});
  cases.push_back({"banded", gen_banded(200, 6, 0.5, 5), 64});
  cases.push_back({"blocks", gen_block_clustered(256, 8, 0.1, 0.001, 6), 64});
  cases.push_back({"stencil", gen_stencil_5pt(16, 16), 64});
  cases.push_back({"rect_tall", gen_uniform(400, 100, 0.02, 7), 64});
  cases.push_back({"rect_wide", gen_uniform(100, 400, 0.02, 8), 64});
  cases.push_back({"k_not_multiple_of_32", gen_uniform(128, 128, 0.02, 9), 50});
  cases.push_back({"k_less_than_warp", gen_uniform(128, 128, 0.02, 10), 8});
  cases.push_back({"k_several_btiles", gen_uniform(128, 128, 0.02, 11), 130});
  cases.push_back({"odd_dims", gen_uniform(65, 129, 0.03, 12), 64});
  return cases;
}

class KernelCorrectness
    : public testing::TestWithParam<std::tuple<usize, KernelKind>> {};

TEST_P(KernelCorrectness, MatchesDenseReference) {
  const auto [case_idx, kind] = GetParam();
  static const std::vector<CorrectnessCase> cases = correctness_cases();
  const CorrectnessCase& c = cases[case_idx];

  Rng rng(42);
  DenseMatrix B(c.matrix.cols, c.K);
  B.randomize(rng);
  const DenseMatrix ref = spmm_reference(c.matrix, B);
  const SpmmResult res = run_spmm(kind, c.matrix, B, small_config());
  EXPECT_LE(res.C.max_abs_diff(ref), tolerance_for(c.matrix, c.K))
      << "kernel " << kernel_name(kind) << " on case " << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllCases, KernelCorrectness,
    testing::Combine(testing::Range<usize>(0, 13), testing::ValuesIn(kAllKernels)),
    [](const testing::TestParamInfo<std::tuple<usize, KernelKind>>& param_info) {
      static const std::vector<CorrectnessCase> cases = correctness_cases();
      return std::string(cases[std::get<0>(param_info.param)].name) + "_" +
             kernel_name(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------
// Model-behaviour properties.
// ---------------------------------------------------------------------

TEST(KernelModel, EmptyRowsInflateInactiveSlotsForTiledCsr) {
  // Highly sparse matrix: tiled CSR suffers one-active-lane skips per
  // empty tile row; tiled DCSR does not (the Fig. 7 claim).
  const Csr A = gen_uniform(2048, 2048, 0.0005, 77);
  Rng rng(1);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmConfig cfg = small_config();
  const SpmmResult csr = run_spmm(KernelKind::kTiledCsrBStationary, A, B, cfg);
  const SpmmResult dcsr = run_spmm(KernelKind::kTiledDcsrBStationary, A, B, cfg);
  EXPECT_GT(csr.counters.inactive_fraction(), 0.3);
  EXPECT_LT(dcsr.counters.lane_slots_inactive, csr.counters.lane_slots_inactive / 4)
      << "DCSR should eliminate the bulk of inactive executions";
}

TEST(KernelModel, TiledCsrReadsMoreMetadataThanTiledDcsr) {
  const Csr A = gen_uniform(1024, 1024, 0.001, 78);
  Rng rng(2);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmConfig cfg = small_config();
  const i64 csr_bytes_read =
      run_spmm(KernelKind::kTiledCsrBStationary, A, B, cfg).mem.total_dram_bytes();
  const i64 dcsr_bytes_read =
      run_spmm(KernelKind::kTiledDcsrBStationary, A, B, cfg).mem.total_dram_bytes();
  EXPECT_GT(csr_bytes_read, dcsr_bytes_read);
}

TEST(KernelModel, OnlineConversionMovesLessDramThanOfflineTiledDcsr) {
  // The online kernel reads compact CSC through the engines instead of
  // the 1.3-1.4x tiled-DCSR image (Fig. 9 -> Sec. 4 motivation).
  const Csr A = gen_powerlaw_cols(1024, 1024, 0.005, 1.0, 79);
  Rng rng(3);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmConfig cfg = small_config();
  const SpmmResult online = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg);
  const SpmmResult offline = run_spmm(KernelKind::kTiledDcsrBStationary, A, B, cfg);
  EXPECT_LT(online.mem.total_dram_bytes(), offline.mem.total_dram_bytes());
  EXPECT_EQ(offline.engine.elements, 0u);
  EXPECT_GT(online.engine.elements, 0u);
  EXPECT_DOUBLE_EQ(offline.offline_prep_ns > 0.0, true);
  EXPECT_DOUBLE_EQ(online.offline_prep_ns, 0.0);
}

TEST(KernelModel, BStationaryPaysAtomics) {
  const Csr A = gen_uniform(512, 512, 0.01, 80);
  Rng rng(4);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmConfig cfg = small_config();
  const SpmmResult b_stat = run_spmm(KernelKind::kTiledDcsrBStationary, A, B, cfg);
  const SpmmResult c_stat = run_spmm(KernelKind::kDcsrCStationary, A, B, cfg);
  EXPECT_GT(b_stat.counters.atomic_updates, 0u);
  EXPECT_EQ(c_stat.counters.atomic_updates, 0u);
  i64 b_atomic_bytes = 0;
  for (const auto& ch : b_stat.mem.channels) b_atomic_bytes += ch.atomic_bytes;
  EXPECT_GT(b_atomic_bytes, 0);
}

TEST(KernelModel, CStationaryRereadsBPerNonZero) {
  // B traffic for C-stationary ≈ nnz*K*4 (Table 1); B-stationary loads
  // each B tile once ≈ n*K*4.  At density 1e-2 and n=512, nnz/col ≈ 5,
  // so C-stationary must move ~5x more B bytes.
  const Csr A = gen_uniform(512, 512, 0.01, 81);
  Rng rng(5);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmConfig cfg = small_config();
  const SpmmResult c_stat = run_spmm(KernelKind::kDcsrCStationary, A, B, cfg);
  const SpmmResult b_stat = run_spmm(KernelKind::kTiledDcsrBStationary, A, B, cfg);
  i64 c_reads = 0, b_reads = 0;
  for (const auto& ch : c_stat.mem.channels) c_reads += ch.read_bytes;
  for (const auto& ch : b_stat.mem.channels) b_reads += ch.read_bytes;
  EXPECT_GT(c_reads, 2 * b_reads);
}

TEST(KernelModel, RowThreadSuffersDivergenceOnSkewedRows) {
  const Csr A = gen_powerlaw_rows(512, 512, 0.01, 1.4, 82);
  Rng rng(6);
  DenseMatrix B(A.cols, 32);
  B.randomize(rng);
  const SpmmConfig cfg = small_config();
  const SpmmResult warp = run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cfg);
  const SpmmResult thread = run_spmm(KernelKind::kCsrCStationaryRowThread, A, B, cfg);
  EXPECT_GT(thread.counters.inactive_fraction(), warp.counters.inactive_fraction());
}

TEST(KernelModel, AStationaryMovesMostBBytes) {
  const Csr A = gen_uniform(512, 512, 0.01, 83);
  Rng rng(7);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmConfig cfg = small_config();
  i64 a_stat = 0, b_stat = 0;
  for (const auto& ch : run_spmm(KernelKind::kAStationary, A, B, cfg).mem.channels) {
    a_stat += ch.read_bytes;
  }
  for (const auto& ch :
       run_spmm(KernelKind::kTiledDcsrBStationary, A, B, cfg).mem.channels) {
    b_stat += ch.read_bytes;
  }
  EXPECT_GT(a_stat, b_stat);
}

TEST(KernelModel, StallBreakdownIsMemoryDominatedAndSumsToOne) {
  // Large enough that launch overhead is negligible (tiny grids are
  // launch-bound on real GPUs too, which is why the paper filters out
  // matrices under 4k rows).
  const Csr A = gen_uniform(4096, 4096, 0.005, 84);
  Rng rng(8);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmResult res =
      run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, small_config());
  const auto& t = res.timing;
  EXPECT_NEAR(t.frac_memory + t.frac_sm + t.frac_other, 1.0, 1e-9);
  EXPECT_GT(t.frac_memory, 0.5) << "SpMM should be memory-bound (Fig. 2)";
}

TEST(KernelModel, FlopsMatchTwoNnzK) {
  const Csr A = gen_uniform(256, 256, 0.01, 85);
  Rng rng(9);
  DenseMatrix B(A.cols, 48);
  B.randomize(rng);
  for (KernelKind kind : kAllKernels) {
    const SpmmResult res = run_spmm(kind, A, B, small_config());
    EXPECT_EQ(res.counters.flops, static_cast<u64>(2 * A.nnz() * 48))
        << kernel_name(kind);
  }
}

TEST(KernelModel, CacheSimModeReducesDramTraffic) {
  const Csr A = gen_uniform(512, 512, 0.01, 86);
  Rng rng(10);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  SpmmConfig counting = small_config();
  SpmmConfig cached = small_config();
  cached.mem_mode = MemMode::kCacheSim;
  const i64 uncached_bytes =
      run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, counting).mem.total_dram_bytes();
  const SpmmResult cache_res = run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cached);
  EXPECT_LT(cache_res.mem.total_dram_bytes(), uncached_bytes)
      << "L2 hits on reused B rows must cut DRAM traffic";
  EXPECT_GT(cache_res.mem.l2.hit_rate(), 0.1);
}

TEST(KernelModel, ShapeMismatchThrows) {
  const Csr A = gen_uniform(64, 64, 0.05, 87);
  DenseMatrix B(32, 16);
  EXPECT_THROW(run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, small_config()),
               FormatError);
}

TEST(KernelModel, KernelNamesAreDistinct) {
  std::set<std::string> names;
  for (KernelKind k : kAllKernels) names.insert(kernel_name(k));
  EXPECT_EQ(names.size(), std::size(kAllKernels));
}

TEST(KernelModel, MergeBasedBoundsCriticalChain) {
  const Csr A = gen_powerlaw_rows(1024, 1024, 0.01, 2.0, 90);
  Rng rng(11);
  DenseMatrix B(A.cols, 32);
  B.randomize(rng);
  SpmmConfig cfg = small_config();
  cfg.merge_chunk = 64;
  const SpmmResult row_warp = run_spmm(KernelKind::kDcsrCStationary, A, B, cfg);
  const SpmmResult merge = run_spmm(KernelKind::kMergeCStationary, A, B, cfg);
  EXPECT_LE(merge.counters.max_chain_iters, 64u);
  EXPECT_GT(row_warp.counters.max_chain_iters, 64u)
      << "skewed matrix must have a heavy row to make this test meaningful";
  // Split rows pay atomic fixups; whole rows do not.
  EXPECT_GT(merge.counters.atomic_updates, 0u);
}

TEST(KernelModel, MergeChunkMustBePositive) {
  const Csr A = gen_uniform(64, 64, 0.05, 91);
  DenseMatrix B(A.cols, 8);
  SpmmConfig cfg = small_config();
  cfg.merge_chunk = 0;
  EXPECT_THROW(run_spmm(KernelKind::kMergeCStationary, A, B, cfg), ConfigError);
}

TEST(KernelModel, TraversalOrdersAgreeNumerically) {
  const Csr A = gen_uniform(256, 256, 0.02, 92);
  Rng rng(12);
  DenseMatrix B(A.cols, 160);  // several B column blocks
  B.randomize(rng);
  SpmmConfig col = small_config();
  col.traversal = TraversalOrder::kColumnMajor;
  SpmmConfig row = small_config();
  row.traversal = TraversalOrder::kRowMajor;
  for (KernelKind kind : {KernelKind::kTiledDcsrBStationary, KernelKind::kTiledDcsrOnline,
                          KernelKind::kTiledCsrBStationary}) {
    const DenseMatrix c_col = run_spmm(kind, A, B, col).C;
    const DenseMatrix c_row = run_spmm(kind, A, B, row).C;
    EXPECT_LE(c_col.max_abs_diff(c_row), 1e-5) << kernel_name(kind);
  }
}

TEST(KernelModel, RowMajorTraversalThrashesCForUniform) {
  // Sec. 3.1.3: "touching entire C multiple times is rather expensive"
  // — visible as extra DRAM traffic under cache simulation.
  const Csr A = gen_uniform(2048, 2048, 0.005, 93);
  Rng rng(13);
  DenseMatrix B(A.cols, 256);
  B.randomize(rng);
  SpmmConfig col = evaluation_config(A.rows, 256);
  SpmmConfig row = col;
  row.traversal = TraversalOrder::kRowMajor;
  const i64 col_bytes =
      run_spmm(KernelKind::kTiledDcsrBStationary, A, B, col).mem.total_dram_bytes();
  const i64 row_bytes =
      run_spmm(KernelKind::kTiledDcsrBStationary, A, B, row).mem.total_dram_bytes();
  EXPECT_GT(row_bytes, col_bytes);
}

TEST(KernelModel, HongHybridChargesPreprocessing) {
  const Csr A = gen_block_clustered(512, 8, 0.1, 0.001, 94);
  Rng rng(14);
  DenseMatrix B(A.cols, 32);
  B.randomize(rng);
  const SpmmResult r = run_spmm(KernelKind::kHongHybrid, A, B, small_config());
  EXPECT_GT(r.offline_prep_ns, 0.0);
  EXPECT_EQ(r.engine.elements, 0u) << "offline hybrid never uses the engine";
}

TEST(KernelModel, HongHybridDegeneratesGracefully) {
  // All-light (uniform hypersparse) and all-heavy (dense band) inputs
  // exercise the single-phase paths.
  Rng rng(15);
  const Csr light = gen_uniform(256, 256, 0.001, 95);
  DenseMatrix B1(light.cols, 32);
  B1.randomize(rng);
  SpmmConfig cfg = small_config();
  cfg.hong_heavy_threshold = 64;  // nothing qualifies as heavy
  EXPECT_LE(run_spmm(KernelKind::kHongHybrid, light, B1, cfg)
                .C.max_abs_diff(spmm_reference(light, B1)),
            1e-4);
  const Csr heavy = gen_banded(256, 16, 0.9, 96);
  DenseMatrix B2(heavy.cols, 32);
  B2.randomize(rng);
  cfg.hong_heavy_threshold = 1;  // everything is heavy
  EXPECT_LE(run_spmm(KernelKind::kHongHybrid, heavy, B2, cfg)
                .C.max_abs_diff(spmm_reference(heavy, B2)),
            1e-4);
}

TEST(KernelModel, HongHybridRejectsBadThreshold) {
  const Csr A = gen_uniform(64, 64, 0.05, 97);
  DenseMatrix B(A.cols, 8);
  SpmmConfig cfg = small_config();
  cfg.hong_heavy_threshold = 0;
  EXPECT_THROW(run_spmm(KernelKind::kHongHybrid, A, B, cfg), ConfigError);
}

TEST(KernelModel, OnlineBeatsHongHybridWithPrepOnClusteredInput) {
  // The Sec. 7 comparison in one assertion.
  const Csr A = gen_block_clustered(2048, 16, 0.05, 1e-4, 98);
  Rng rng(16);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmConfig cfg = evaluation_config(A.rows, 64);
  const SpmmResult hong = run_spmm(KernelKind::kHongHybrid, A, B, cfg);
  const SpmmResult online = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg);
  EXPECT_LT(online.timing.total_ns,
            hong.timing.total_ns + hong.offline_prep_ns);
}

TEST(KernelModel, EvaluationConfigScalesL2) {
  const SpmmConfig small = evaluation_config(1024, 64);
  const SpmmConfig big = evaluation_config(16384, 64);
  EXPECT_LT(small.arch.l2_bytes, big.arch.l2_bytes);
  EXPECT_LE(big.arch.l2_bytes, 6144 * 1024);
  EXPECT_EQ(small.mem_mode, MemMode::kCacheSim);
  small.arch.validate();
  big.arch.validate();
  EXPECT_THROW(evaluation_config(0, 64), ConfigError);
}

}  // namespace
}  // namespace nmdt
