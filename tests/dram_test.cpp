// DRAM bank/row-buffer model tests and its integration into the memory
// system and timing.
#include <gtest/gtest.h>

#include "gpusim/dram.hpp"
#include "gpusim/memory_system.hpp"
#include "kernels/spmm.hpp"
#include "matgen/generators.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

TEST(Dram, SequentialAccessHitsRowBuffer) {
  DramChannelSim ch(ArchConfig::gv100());
  // Walk one 2 KiB row in 32 B sectors: 1 activate, then hits.
  for (u64 a = 0; a < 2048; a += 32) ch.access(a, 32);
  EXPECT_EQ(ch.row_misses(), 1u);
  EXPECT_EQ(ch.row_hits(), 63u);
}

TEST(Dram, RowStrideMissesEveryTime) {
  ArchConfig arch = ArchConfig::gv100();
  DramChannelSim ch(arch);
  // Jump a full bank rotation each access: same bank, new row.
  const u64 stride = static_cast<u64>(arch.dram_row_bytes) * arch.dram_banks_per_channel;
  for (int i = 0; i < 64; ++i) ch.access(static_cast<u64>(i) * stride, 32);
  EXPECT_EQ(ch.row_misses(), 64u);
  EXPECT_DOUBLE_EQ(ch.row_hit_rate(), 0.0);
}

TEST(Dram, MissPenaltyInflatesBusyTime) {
  const ArchConfig arch = ArchConfig::gv100();
  DramChannelSim seq(arch), random(arch);
  for (u64 a = 0; a < 2048; a += 32) seq.access(a, 32);
  const u64 stride = static_cast<u64>(arch.dram_row_bytes) * arch.dram_banks_per_channel;
  for (int i = 0; i < 64; ++i) random.access(static_cast<u64>(i) * stride, 32);
  EXPECT_GT(random.busy_ns(), 2.0 * seq.busy_ns())
      << "row-missing traffic must be markedly slower at equal bytes";
}

TEST(Dram, StreamIsPureTransferTime) {
  const ArchConfig arch = ArchConfig::gv100();
  DramChannelSim ch(arch);
  ch.stream(13600);  // bytes at 13.6 B/ns
  EXPECT_NEAR(ch.busy_ns(), 1000.0, 1e-6);
  EXPECT_EQ(ch.row_misses(), 0u);
}

TEST(Dram, ResetClearsState) {
  DramChannelSim ch(ArchConfig::gv100());
  ch.access(0, 32);
  ch.reset();
  EXPECT_DOUBLE_EQ(ch.busy_ns(), 0.0);
  ch.access(0, 32);
  EXPECT_EQ(ch.row_misses(), 1u) << "open rows must be closed by reset";
}

TEST(Dram, BankParallelismScalesPenalty) {
  ArchConfig arch = ArchConfig::gv100();
  arch.dram_bank_parallelism = 1.0;
  DramChannelSim serial(arch);
  arch.dram_bank_parallelism = 8.0;
  DramChannelSim parallel(arch);
  const u64 stride = static_cast<u64>(arch.dram_row_bytes) * arch.dram_banks_per_channel;
  for (int i = 0; i < 16; ++i) {
    serial.access(static_cast<u64>(i) * stride, 32);
    parallel.access(static_cast<u64>(i) * stride, 32);
  }
  EXPECT_GT(serial.busy_ns(), parallel.busy_ns());
}

TEST(Dram, MemorySystemTracksBusyInCacheMode) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCacheSim);
  const u64 base = mem.allocate(1 << 20, "x");
  // Touch far-apart lines so the L2 misses and DRAM sees the accesses.
  for (int i = 0; i < 100; ++i) {
    mem.warp_load(base + static_cast<u64>(i) * 128 * 1024, 32);
  }
  EXPECT_GT(mem.stats().max_channel_service_ns(13.6), 0.0);
  double busy = 0.0;
  for (const auto& ch : mem.stats().channels) busy += ch.busy_ns;
  EXPECT_GT(busy, 0.0);
}

TEST(Dram, CountingModeHasNoBankModel) {
  MemorySystem mem(ArchConfig::gv100(), MemMode::kCounting);
  mem.warp_load(mem.allocate(4096, "x"), 4096);
  for (const auto& ch : mem.stats().channels) {
    EXPECT_DOUBLE_EQ(ch.busy_ns, 0.0);
    EXPECT_EQ(ch.row_misses, 0u);
  }
  EXPECT_DOUBLE_EQ(mem.stats().dram_row_hit_rate(), 1.0);
}

TEST(Dram, EngineStreamsAreRowFriendlyInKernels) {
  // End to end: the online kernel's engine reads are streams (no row
  // misses from the engine side), while the SM-side scattered accesses
  // miss — overall row hit rate for the online kernel should beat the
  // baseline's on a scattered matrix.
  const Csr A = gen_powerlaw_rows(2048, 2048, 0.005, 1.4, 5);
  Rng rng(1);
  DenseMatrix B(A.cols, 64);
  B.randomize(rng);
  const SpmmConfig cfg = evaluation_config(A.rows, 64);
  const SpmmResult base = run_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cfg);
  const SpmmResult online = run_spmm(KernelKind::kTiledDcsrOnline, A, B, cfg);
  EXPECT_GT(online.mem.dram_row_hit_rate(), base.mem.dram_row_hit_rate());
}

TEST(Dram, RejectsBadGeometry) {
  ArchConfig arch = ArchConfig::gv100();
  arch.dram_banks_per_channel = 0;
  EXPECT_THROW(DramChannelSim{arch}, ConfigError);
}

}  // namespace
}  // namespace nmdt
