// Rendering tests for the terminal scatter plots used by the figure
// benches.
#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/error.hpp"

namespace nmdt {
namespace {

TEST(AsciiPlot, RendersMarkersAndRule) {
  AsciiScatter p(40, 10);
  p.add(1.0, 0.5, 'a');
  p.add(100.0, 2.0, 'b');
  p.add_hline(1.0);
  std::ostringstream os;
  p.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);  // the y=1 rule
}

TEST(AsciiPlot, DropsNonPositiveInLogMode) {
  AsciiScatter p(40, 10);
  p.add(-5.0, 1.0, 'x');
  p.add(0.0, 1.0, 'x');
  std::ostringstream os;
  p.render(os);
  EXPECT_NE(os.str().find("no plottable points"), std::string::npos);
}

TEST(AsciiPlot, LinearModeAcceptsNegatives) {
  AsciiScatter p(40, 10);
  p.set_log_x(false);
  p.set_log_y(false);
  p.add(-5.0, -1.0, 'x');
  p.add(5.0, 1.0, 'y');
  std::ostringstream os;
  p.render(os);
  EXPECT_NE(os.str().find('x'), std::string::npos);
  EXPECT_NE(os.str().find('y'), std::string::npos);
}

TEST(AsciiPlot, ExtremePointsLandOnOppositeCorners) {
  AsciiScatter p(40, 10);
  p.set_log_x(false);
  p.set_log_y(false);
  p.add(0.0, 0.0, 'L');
  p.add(10.0, 10.0, 'H');
  std::ostringstream os;
  p.render(os);
  std::istringstream lines(os.str());
  std::string line, first_data_line, last_data_line;
  bool first = true;
  while (std::getline(lines, line)) {
    if (line.find('|') == std::string::npos) continue;
    if (first) {
      first_data_line = line;
      first = false;
    }
    last_data_line = line;
  }
  EXPECT_NE(first_data_line.find('H'), std::string::npos) << "max y on top row";
  EXPECT_NE(last_data_line.find('L'), std::string::npos) << "min y on bottom row";
}

TEST(AsciiPlot, SinglePointDoesNotDivideByZero) {
  AsciiScatter p(40, 10);
  p.add(1.0, 1.0, '*');
  std::ostringstream os;
  p.render(os);
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiPlot, LabelsAppear) {
  AsciiScatter p(40, 10);
  p.set_labels("ssf", "speedup");
  p.add(1.0, 1.0, '*');
  std::ostringstream os;
  p.render(os);
  EXPECT_NE(os.str().find("ssf"), std::string::npos);
  EXPECT_NE(os.str().find("speedup"), std::string::npos);
}

TEST(AsciiPlot, RejectsTinyGrid) { EXPECT_THROW(AsciiScatter(2, 2), ConfigError); }

}  // namespace
}  // namespace nmdt
