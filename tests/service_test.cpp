// SpMM-as-a-service tests: the JSON-lines protocol (parse/serialize),
// admission control (token buckets, bounded queue, load shedding), and
// the server end to end — including the two contracts the daemon lives
// by: every submitted request gets exactly one response, and a served
// result is bit-identical to a batch-mode execution of the same
// (matrix, kernel, precision, b_seed, k).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "core/executor.hpp"
#include "fault/fault.hpp"
#include "obs/json_check.hpp"
#include "service/server.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nmdt::service {
namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

constexpr const char* kSpecA = "gen:uniform:128x128:0.05:1";
constexpr const char* kSpecB = "gen:powerlaw_rows:128x96:0.04:2";

Request make_request(std::string id, const char* spec = kSpecA, index_t k = 8) {
  Request req;
  req.id = std::move(id);
  req.matrix = spec;
  req.k = k;
  return req;
}

/// What batch mode (`nmdt_cli run` semantics) produces for this
/// request: plan the matrix, generate B from b_seed, run the requested
/// (or heuristic) kernel, CRC the stored result bits.
struct BatchReference {
  u32 crc = 0;
  std::vector<u8> bits;
  std::string kernel;
};

BatchReference batch_reference(const Request& req) {
  const Csr A = load_matrix_spec(req.matrix);
  Rng rng(req.b_seed);
  DenseMatrix B(A.cols, req.k);
  B.randomize(rng);
  SpmmConfig cfg = evaluation_config(A.rows, req.k);
  cfg.precision = req.precision;
  const auto plan =
      build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0, req.precision});
  const KernelKind kind = req.kernel.value_or(plan->kernel());
  const SpmmResult r = SpmmExecutor(cfg).execute(kind, *plan, B);
  const auto bits = result_bits(r);
  return {crc32(bits.data(), bits.size()),
          std::vector<u8>(bits.begin(), bits.end()), kernel_name(kind)};
}

/// Thread-safe response collector used as the server sink.
struct Collector {
  std::mutex mu;
  std::vector<Response> all;

  ResponseSink sink() {
    return [this](const Response& r) {
      std::lock_guard<std::mutex> lock(mu);
      all.push_back(r);
    };
  }
  usize count() {
    std::lock_guard<std::mutex> lock(mu);
    return all.size();
  }
  Response only(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu);
    const Response* found = nullptr;
    for (const auto& r : all) {
      if (r.id == id) {
        EXPECT_EQ(found, nullptr) << "duplicate response for " << id;
        found = &r;
      }
    }
    EXPECT_NE(found, nullptr) << "no response for " << id;
    return found != nullptr ? *found : Response{};
  }
};

// ---------------------------------------------------------------- protocol

TEST(Protocol, ParsesFullRequest) {
  const Request req = parse_request(
      R"({"id":"r1","tenant":"team-a","matrix":"m.mtx","k":32,"b_seed":9,)"
      R"("kernel":"dcsr_c_stationary","precision":"f64","deadline_ms":250,)"
      R"("return_c":true})",
      1);
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.tenant, "team-a");
  EXPECT_EQ(req.matrix, "m.mtx");
  EXPECT_EQ(req.k, 32);
  EXPECT_EQ(req.b_seed, 9u);
  ASSERT_TRUE(req.kernel.has_value());
  EXPECT_EQ(*req.kernel, KernelKind::kDcsrCStationary);
  EXPECT_EQ(req.precision, Precision::kF64);
  EXPECT_EQ(req.deadline_ms, 250.0);
  EXPECT_TRUE(req.return_c);
}

TEST(Protocol, DefaultsMatchBatchMode) {
  const Request req = parse_request(R"({"matrix":"m.mtx"})", 17);
  EXPECT_EQ(req.id, "line-17");  // unnamed requests get a line id
  EXPECT_EQ(req.tenant, "default");
  EXPECT_EQ(req.k, 64);
  EXPECT_EQ(req.b_seed, 2u);  // nmdt_cli run's B seed
  EXPECT_FALSE(req.kernel.has_value());
  EXPECT_EQ(req.precision, Precision::kF32);
  EXPECT_EQ(req.deadline_ms, 0.0);
  EXPECT_FALSE(req.return_c);
}

TEST(Protocol, KernelAutoMeansHeuristic) {
  const Request req = parse_request(R"({"matrix":"m.mtx","kernel":"auto"})", 1);
  EXPECT_FALSE(req.kernel.has_value());
}

TEST(Protocol, RejectsMalformedRequestsTyped) {
  const char* bad[] = {
      "",                                            // empty
      "not json",                                    // malformed JSON
      "[1,2]",                                       // not an object
      R"({"k":4})",                                  // missing matrix
      R"({"matrix":"m.mtx","bogus":1})",             // unknown field
      R"({"matrix":42})",                            // wrong type
      R"({"matrix":"m.mtx","k":0})",                 // k out of range
      R"({"matrix":"m.mtx","k":99999})",             // k over cap
      R"({"matrix":"m.mtx","k":1.5})",               // non-integer k
      R"({"matrix":"m.mtx","kernel":"warp_drive"})", // unknown kernel
      R"({"matrix":"m.mtx","precision":"f8"})",      // unknown precision
      R"({"matrix":"m.mtx","deadline_ms":-1})",      // negative deadline
      R"({"matrix":"m.mtx","b_seed":-1})",           // negative seed
      R"({"matrix":"","k":4})",                      // empty matrix
  };
  for (const char* line : bad) {
    EXPECT_THROW(parse_request(line, 1), ParseError) << line;
  }
}

TEST(Protocol, OverlongFieldsAreRejected) {
  const std::string long_id(kMaxIdBytes + 1, 'x');
  EXPECT_THROW(
      parse_request("{\"id\":\"" + long_id + "\",\"matrix\":\"m.mtx\"}", 1),
      ParseError);
  const std::string long_spec(kMaxMatrixSpecBytes + 1, 'y');
  EXPECT_THROW(parse_request("{\"matrix\":\"" + long_spec + "\"}", 1), ParseError);
}

TEST(Protocol, OkResponseRoundTripsThroughJsonParser) {
  Response r;
  r.id = "req \"quoted\"\n";
  r.tenant = "t";
  r.ok = true;
  r.kernel = "dcsr_c_stationary";
  r.precision = "f32";
  r.rows = 128;
  r.k = 8;
  r.c_crc32 = 0xdeadbeef;
  r.c_hex = "00112233";
  r.used_fallback = true;
  r.coalesced = 3;
  r.queue_ms = 1.5;
  r.exec_ms = 2.5;
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::json_parse(to_json_line(r), v, &err)) << err;
  EXPECT_EQ(v.find("id")->str, r.id);
  EXPECT_EQ(v.find("status")->str, "ok");
  EXPECT_EQ(v.find("kernel")->str, "dcsr_c_stationary");
  EXPECT_EQ(static_cast<u32>(v.find("c_crc32")->number), 0xdeadbeefu);
  EXPECT_EQ(v.find("c_hex")->str, "00112233");
  EXPECT_TRUE(v.find("used_fallback")->boolean);
  EXPECT_EQ(v.find("coalesced")->number, 3.0);
  EXPECT_EQ(v.find("retry_after_ms"), nullptr);  // ok responses carry none
}

TEST(Protocol, ErrorResponseCarriesTypeAndOverloadHint) {
  const Request req = make_request("r9");
  const Response shed = error_response(req, OverloadError("queue full", 42));
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.error_type, "OverloadError");
  EXPECT_EQ(shed.message, "queue full");
  EXPECT_EQ(shed.retry_after_ms, 42);
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::json_parse(to_json_line(shed), v, &err)) << err;
  EXPECT_EQ(v.find("status")->str, "error");
  EXPECT_EQ(v.find("error_type")->str, "OverloadError");
  EXPECT_EQ(v.find("retry_after_ms")->number, 42.0);

  const Response timed = error_response(req, TimeoutError("too slow"));
  EXPECT_EQ(timed.error_type, "TimeoutError");
  EXPECT_EQ(timed.retry_after_ms, -1);
  obs::JsonValue v2;  // fresh value: json_parse appends into the object
  ASSERT_TRUE(obs::json_parse(to_json_line(timed), v2, &err)) << err;
  EXPECT_EQ(v2.find("retry_after_ms"), nullptr);
}

TEST(Protocol, HexRoundTrips) {
  const std::vector<u8> bytes = {0x00, 0xff, 0x12, 0xab};
  const std::string hex = hex_encode(bytes.data(), bytes.size());
  EXPECT_EQ(hex, "00ff12ab");
  EXPECT_EQ(hex_decode(hex), bytes);
  EXPECT_THROW(hex_decode("abc"), ParseError);   // odd length
  EXPECT_THROW(hex_decode("zz"), ParseError);    // non-hex digit
}

TEST(Protocol, LoadMatrixSpecParsesGeneratorsAndRejectsGarbage) {
  const Csr A = load_matrix_spec("gen:uniform:64x48:0.1:3");
  EXPECT_EQ(A.rows, 64);
  EXPECT_EQ(A.cols, 48);
  EXPECT_GT(A.nnz(), 0);
  const Csr P = load_matrix_spec("gen:powerlaw_cols:32x32:0.1:1");
  EXPECT_EQ(P.rows, 32);
  for (const char* bad :
       {"gen:uniform:64x48:0.1", "gen:warp:64x48:0.1:3", "gen:uniform:64:0.1:3",
        "gen:uniform:0x48:0.1:3", "gen:uniform:64x48:1.5:3",
        "gen:uniform:axb:0.1:3", "plain-string", "m.txt"}) {
    EXPECT_THROW(load_matrix_spec(bad), ParseError) << bad;
  }
}

// --------------------------------------------------------------- admission

TEST(Admission, TokenBucketRefillsDeterministically) {
  const auto t0 = Clock::now();
  TokenBucket bucket(/*rate_per_s=*/2.0, /*burst=*/2.0, t0);
  i64 retry = 0;
  EXPECT_TRUE(bucket.try_take(t0, &retry));
  EXPECT_TRUE(bucket.try_take(t0, &retry));
  EXPECT_FALSE(bucket.try_take(t0, &retry));  // burst exhausted
  EXPECT_GE(retry, 1);
  EXPECT_LE(retry, 500);  // one token accrues in <= 1/rate = 500 ms
  // Advance half a second: exactly one token back.
  const auto t1 = t0 + milliseconds(500);
  EXPECT_TRUE(bucket.try_take(t1, &retry));
  EXPECT_FALSE(bucket.try_take(t1, &retry));
  // Idle for long: capped at burst, not unbounded.
  const auto t2 = t1 + std::chrono::seconds(60);
  EXPECT_EQ(bucket.tokens_at(t2), 2.0);
}

TEST(Admission, TenantQuotasIsolateTenantsAndDisableAtRateZero) {
  TenantQuotas off(0.0, 8.0);
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(off.try_admit("anyone", Clock::now(), nullptr));
  }
  TenantQuotas quotas(1.0, 1.0);
  const auto now = Clock::now();
  i64 retry = 0;
  EXPECT_TRUE(quotas.try_admit("a", now, &retry));
  EXPECT_FALSE(quotas.try_admit("a", now, &retry));  // a's bucket empty
  EXPECT_GE(retry, 1);
  EXPECT_TRUE(quotas.try_admit("b", now, &retry));  // b unaffected
}

TEST(Admission, QueueShedsWhenFullAndDrainsAfterClose) {
  AdmissionQueue q(2);
  i64 retry = 0;
  Ticket t1, t2, t3;
  t1.req = make_request("q1");
  t2.req = make_request("q2");
  t3.req = make_request("q3");
  EXPECT_TRUE(q.try_push(std::move(t1), &retry));
  EXPECT_TRUE(q.try_push(std::move(t2), &retry));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_FALSE(q.try_push(std::move(t3), &retry));  // full → shed
  EXPECT_GE(retry, 1);
  q.close();
  EXPECT_TRUE(q.closed());
  Ticket t4;
  t4.req = make_request("q4");
  EXPECT_FALSE(q.try_push(std::move(t4), &retry));  // closed → shed
  // Pending tickets still drain, in order, before the closed signal.
  auto a = q.pop();
  auto b = q.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->req.id, "q1");
  EXPECT_EQ(b->req.id, "q2");
  EXPECT_FALSE(q.pop().has_value());  // closed AND empty
}

TEST(Admission, ColdStartServiceHintSeedsTheEwmaAndTheShedHint) {
  // Before any batch completes, the EWMA is exactly the configured hint
  // (no magic constant, no zero cold start), and queue-full sheds quote
  // depth × hint.
  EXPECT_EQ(AdmissionQueue(4).ewma_service_ms(), 10.0);  // documented default
  AdmissionQueue q(2, /*service_hint_ms=*/200.0);
  EXPECT_EQ(q.ewma_service_ms(), 200.0);
  i64 retry = 0;
  for (const char* id : {"h1", "h2"}) {
    Ticket t;
    t.req = make_request(id);
    ASSERT_TRUE(q.try_push(std::move(t), &retry));
  }
  Ticket overflow;
  overflow.req = make_request("h3");
  EXPECT_FALSE(q.try_push(std::move(overflow), &retry));
  // Shed hint = ceil((depth + 1) × EWMA) = 3 × 200 ms, from the hint
  // alone — an operator-tuned value, not a guess.
  EXPECT_EQ(retry, 600);
  // Misconfiguration is typed, not silently clamped.
  EXPECT_THROW(AdmissionQueue(4, 0.0), ConfigError);
  EXPECT_THROW(AdmissionQueue(4, -1.0), ConfigError);
}

TEST(Admission, ServiceTimeSamplesConvergeTheEwmaAwayFromTheHint) {
  AdmissionQueue q(4, /*service_hint_ms=*/100.0);
  // EWMA update is 0.8·old + 0.2·sample.
  q.note_service_ms(50.0);
  EXPECT_DOUBLE_EQ(q.ewma_service_ms(), 0.8 * 100.0 + 0.2 * 50.0);
  for (int i = 0; i < 100; ++i) q.note_service_ms(50.0);
  EXPECT_NEAR(q.ewma_service_ms(), 50.0, 0.01);  // hint fully forgotten
  q.note_service_ms(-5.0);  // negative samples clamp to 0, never poison
  EXPECT_GE(q.ewma_service_ms(), 0.0);
}

TEST(Admission, PopMatchingClaimsInOrderAndLeavesRestQueued) {
  AdmissionQueue q(8);
  for (const char* id : {"a1", "b1", "a2", "b2", "a3"}) {
    Ticket t;
    t.req = make_request(id);
    ASSERT_TRUE(q.try_push(std::move(t), nullptr));
  }
  const auto starts_with_a = [](const Ticket& t) { return t.req.id[0] == 'a'; };
  const std::vector<Ticket> got = q.pop_matching(starts_with_a, 2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].req.id, "a1");
  EXPECT_EQ(got[1].req.id, "a2");
  EXPECT_EQ(q.depth(), 3u);  // b1, b2, a3 untouched
  auto next = q.pop();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->req.id, "b1");
}

// ----------------------------------------------------------------- service

TEST(Service, SingleRequestBitIdenticalToBatchExecution) {
  Request req = make_request("solo", kSpecA, 8);
  req.return_c = true;
  const BatchReference ref = batch_reference(req);

  Collector out;
  ServerOptions opts;
  opts.workers = 1;
  SpmmServer server(opts, out.sink());
  ASSERT_TRUE(server.submit(req));
  server.start();
  server.drain();

  const Response r = out.only("solo");
  ASSERT_TRUE(r.ok) << r.error_type << ": " << r.message;
  EXPECT_EQ(r.kernel, ref.kernel);
  EXPECT_EQ(r.rows, 128);
  EXPECT_EQ(r.k, 8);
  EXPECT_EQ(r.c_crc32, ref.crc);
  EXPECT_EQ(hex_decode(r.c_hex), ref.bits);  // the bit-identity witness
  EXPECT_FALSE(r.used_fallback);
}

TEST(Service, ExplicitKernelAndPrecisionMatchBatch) {
  Request req = make_request("pinned", kSpecB, 8);
  req.kernel = KernelKind::kTiledDcsrOnline;
  req.precision = Precision::kF64;
  req.return_c = true;
  const BatchReference ref = batch_reference(req);

  Collector out;
  SpmmServer server(ServerOptions{}, out.sink());
  ASSERT_TRUE(server.submit(req));
  server.start();
  server.drain();

  const Response r = out.only("pinned");
  ASSERT_TRUE(r.ok) << r.error_type << ": " << r.message;
  EXPECT_EQ(r.kernel, "tiled_dcsr_online");
  EXPECT_EQ(r.precision, "f64");
  EXPECT_EQ(r.c_crc32, ref.crc);
  EXPECT_EQ(hex_decode(r.c_hex), ref.bits);
}

TEST(Service, CoalescedBatchBitIdenticalToSoloRuns) {
  // Three same-key requests staged before the single worker starts: it
  // pops one and claims the other two, serving all three as ONE kernel
  // execution over the concatenated B panels.  Every member must still
  // get exactly the bits a solo run would have produced.
  std::vector<Request> reqs;
  for (int i = 0; i < 3; ++i) {
    Request req = make_request("co" + std::to_string(i), kSpecA, 8);
    req.b_seed = static_cast<u64>(10 + i);  // distinct B panels
    req.return_c = true;
    reqs.push_back(req);
  }
  std::vector<BatchReference> refs;
  for (const auto& r : reqs) refs.push_back(batch_reference(r));

  Collector out;
  ServerOptions opts;
  opts.workers = 1;
  opts.coalesce_max = 4;
  SpmmServer server(opts, out.sink());
  for (const auto& r : reqs) ASSERT_TRUE(server.submit(r));
  server.start();
  server.drain();

  for (usize i = 0; i < reqs.size(); ++i) {
    const Response r = out.only(reqs[i].id);
    ASSERT_TRUE(r.ok) << r.error_type << ": " << r.message;
    EXPECT_EQ(r.coalesced, 3) << reqs[i].id;
    EXPECT_EQ(r.c_crc32, refs[i].crc) << reqs[i].id;
    EXPECT_EQ(hex_decode(r.c_hex), refs[i].bits) << reqs[i].id;
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.coalesced_batches, 1u);
  EXPECT_EQ(s.coalesced_requests, 3u);
  const PlanCacheStats pc = server.plan_cache_stats();
  EXPECT_EQ(pc.misses, 1u);  // one plan build served the whole batch
}

TEST(Service, CoalescingRespectsKeyAndBounds) {
  // Different matrix → different key → separate batches.
  Collector out;
  ServerOptions opts;
  opts.workers = 1;
  SpmmServer server(opts, out.sink());
  ASSERT_TRUE(server.submit(make_request("ka", kSpecA, 8)));
  ASSERT_TRUE(server.submit(make_request("kb", kSpecB, 8)));
  server.start();
  server.drain();
  EXPECT_EQ(out.only("ka").coalesced, 1);
  EXPECT_EQ(out.only("kb").coalesced, 1);
  EXPECT_EQ(server.stats().coalesced_batches, 0u);
}

TEST(Service, OverQuotaRequestsShedWithRetryHint) {
  Collector out;
  ServerOptions opts;
  opts.workers = 1;
  opts.tenant_rate = 0.001;  // effectively no refill during the test
  opts.tenant_burst = 1.0;
  SpmmServer server(opts, out.sink());
  const bool first = server.submit(make_request("ok-1"));
  const bool second = server.submit(make_request("shed-1"));
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  // A different tenant still has its own bucket.
  Request other = make_request("other-tenant");
  other.tenant = "vip";
  EXPECT_TRUE(server.submit(other));
  server.start();
  server.drain();

  const Response shed = out.only("shed-1");
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.error_type, "OverloadError");
  EXPECT_GE(shed.retry_after_ms, 1);
  EXPECT_TRUE(out.only("ok-1").ok);
  EXPECT_TRUE(out.only("other-tenant").ok);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.shed_over_quota, 1u);
  EXPECT_EQ(s.accepted, 2u);
}

TEST(Service, QueueOverflowShedsWithRetryHint) {
  Collector out;
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  SpmmServer server(opts, out.sink());  // workers not started: queue fills
  EXPECT_TRUE(server.submit(make_request("f1")));
  EXPECT_TRUE(server.submit(make_request("f2")));
  EXPECT_FALSE(server.submit(make_request("f3")));
  const Response shed = out.only("f3");
  EXPECT_EQ(shed.error_type, "OverloadError");
  EXPECT_GE(shed.retry_after_ms, 1);
  EXPECT_EQ(server.stats().shed_queue_full, 1u);
  server.start();
  server.drain();
  EXPECT_TRUE(out.only("f1").ok);
  EXPECT_TRUE(out.only("f2").ok);
  EXPECT_EQ(out.count(), 3u);
}

TEST(Service, PastDeadlineRequestAnswersTimeoutError) {
  Collector out;
  ServerOptions opts;
  opts.workers = 1;
  SpmmServer server(opts, out.sink());
  Request req = make_request("late");
  req.deadline_ms = 1.0;
  ASSERT_TRUE(server.submit(req));  // deadline armed at admission
  std::this_thread::sleep_for(milliseconds(20));
  server.start();  // worker first polls the already-expired token
  server.drain();
  const Response r = out.only("late");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_type, "TimeoutError");
}

TEST(Service, BadMatrixSpecAnswersTypedParseError) {
  Collector out;
  SpmmServer server(ServerOptions{}, out.sink());
  ASSERT_TRUE(server.submit(make_request("bad-spec", "gen:bogus:8x8:0.1:1")));
  server.start();
  server.drain();
  const Response r = out.only("bad-spec");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error_type, "ParseError");
}

TEST(Service, ShutdownShedsNewAndDrainsAdmitted) {
  Collector out;
  ServerOptions opts;
  opts.workers = 2;
  SpmmServer server(opts, out.sink());
  ASSERT_TRUE(server.submit(make_request("d1")));
  ASSERT_TRUE(server.submit(make_request("d2")));
  server.begin_shutdown();
  EXPECT_FALSE(server.submit(make_request("rejected")));  // after shutdown
  const Response shed = out.only("rejected");
  EXPECT_EQ(shed.error_type, "OverloadError");
  server.start();  // workers drain the two admitted tickets, then exit
  server.drain();
  EXPECT_TRUE(out.only("d1").ok);
  EXPECT_TRUE(out.only("d2").ok);
  EXPECT_EQ(out.count(), 3u);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.completed_ok, 2u);
  EXPECT_EQ(s.shed_shutdown, 1u);
}

TEST(Service, RepeatRequestsHitThePlanCache) {
  Collector out;
  ServerOptions opts;
  opts.workers = 1;
  opts.coalesce_max = 1;  // force sequential solo executions
  SpmmServer server(opts, out.sink());
  server.start();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.submit(make_request("rep" + std::to_string(i))));
  }
  server.drain();
  const PlanCacheStats pc = server.plan_cache_stats();
  EXPECT_EQ(pc.misses, 1u);
  EXPECT_EQ(pc.hits, 3u);
}

// ------------------------------------------------------------------- chaos

TEST(ServiceChaos, BurstFaultsAndShutdownNeverLoseAResponse) {
  // The acceptance sweep: overload burst × fault injection × shutdown
  // mid-flight × jobs {1, 4}.  Invariants: the process never crashes,
  // every submitted request gets exactly one response, ok responses
  // that did not degrade are bit-identical to batch mode, and shed
  // requests carry a typed OverloadError.
  struct Case {
    fault::FaultSite site;
    int jobs;
  };
  const Case cases[] = {
      {fault::FaultSite::kTileVal, 1},
      {fault::FaultSite::kTileVal, 4},
      {fault::FaultSite::kCacheEntry, 1},
      {fault::FaultSite::kCacheEntry, 4},
  };

  // Reference CRCs computed fault-free, outside the FaultScope.
  std::map<std::string, u32> ref_crc;
  for (const char* spec : {kSpecA, kSpecB}) {
    for (index_t k : {index_t{8}, index_t{16}}) {
      Request probe = make_request("probe", spec, k);
      ref_crc[std::string(spec) + "#" + std::to_string(k)] =
          batch_reference(probe).crc;
    }
  }

  for (const Case& c : cases) {
    fault::FaultPlan plan;
    plan.site = c.site;
    plan.rate = 0.05;
    plan.seed = 1234;
    fault::FaultScope scope(plan);

    Collector out;
    ServerOptions opts;
    opts.workers = 2;
    opts.jobs = c.jobs;
    opts.queue_capacity = 8;  // small enough that the burst sheds
    SpmmServer server(opts, out.sink());
    server.start();

    usize submitted = 0;
    std::map<std::string, std::string> key_of;  // id → expected crc key
    const char* specs[] = {kSpecA, kSpecB};
    for (int i = 0; i < 24; ++i) {
      const char* spec = specs[i % 2];
      const index_t k = (i % 4 < 2) ? index_t{8} : index_t{16};
      Request req = make_request("c" + std::to_string(i), spec, k);
      if (i % 8 == 7) req.matrix = "gen:bogus:1x1:0.1:1";  // typed failure
      ++submitted;
      if (server.submit(req) && req.matrix[4] != 'b') {
        key_of[req.id] = std::string(spec) + "#" + std::to_string(k);
      }
      if (i == 11) server.begin_shutdown();  // mid-flight shutdown
    }
    server.drain();

    ASSERT_EQ(out.count(), submitted) << "lost or duplicated a response";
    std::lock_guard<std::mutex> lock(out.mu);
    std::map<std::string, int> seen;
    for (const auto& r : out.all) ++seen[r.id];
    for (const auto& [id, n] : seen) {
      EXPECT_EQ(n, 1) << "duplicate response for " << id;
    }
    for (const auto& r : out.all) {
      if (r.ok) {
        if (!r.used_fallback && key_of.count(r.id) != 0) {
          EXPECT_EQ(r.c_crc32, ref_crc[key_of[r.id]])
              << r.id << " diverged from batch mode (site "
              << fault::site_name(c.site) << ", jobs " << c.jobs << ")";
        }
      } else {
        EXPECT_TRUE(r.error_type == "OverloadError" ||
                    r.error_type == "ParseError" || r.error_type == "FaultError")
            << r.id << ": " << r.error_type << ": " << r.message;
        if (r.error_type == "OverloadError" && r.message.find("quota") == std::string::npos &&
            r.message.find("shutting down") == std::string::npos) {
          EXPECT_GE(r.retry_after_ms, 1) << r.id;
        }
      }
    }
    const ServerStats s = server.stats();
    EXPECT_EQ(s.submitted, submitted);
    EXPECT_EQ(s.accepted + s.shed_queue_full + s.shed_over_quota + s.shed_shutdown,
              submitted);
    EXPECT_EQ(s.completed_ok + s.completed_error, s.accepted);
  }
}

TEST(ServiceChaos, CancelAllAnswersEveryInFlightRequest) {
  // Escalated shutdown (second SIGTERM): cancel_all() must still leave
  // exactly one response per accepted request — CancelledError or a
  // result, never silence.
  Collector out;
  ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 64;
  SpmmServer server(opts, out.sink());
  usize submitted = 0;
  for (int i = 0; i < 12; ++i) {
    Request req = make_request("x" + std::to_string(i), kSpecA, 16);
    if (server.submit(req)) ++submitted;
  }
  server.start();
  server.cancel_all();
  server.begin_shutdown();
  server.drain();
  usize answered = 0;
  {
    std::lock_guard<std::mutex> lock(out.mu);
    for (const auto& r : out.all) {
      ++answered;
      if (!r.ok) {
        EXPECT_TRUE(r.error_type == "CancelledError" ||
                    r.error_type == "TimeoutError")
            << r.error_type << ": " << r.message;
      }
    }
  }
  EXPECT_EQ(answered, submitted);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed_ok + s.completed_error, s.accepted);
}

}  // namespace
}  // namespace nmdt::service
