// Crash-isolated worker processes: a Supervisor that forks N workers,
// dispatches tasks over the CRC-framed pipe protocol (proc/frame.hpp),
// and monitors them with heartbeat pings and waitpid reaping.
//
// Failure model.  A worker that exits abnormally (SIGSEGV / SIGKILL /
// abort), breaches its setrlimit(RLIMIT_AS) cap, misses its heartbeat
// deadline, or emits a corrupt result frame is killed and reaped; its
// in-flight task is re-dispatched to a fresh worker with capped
// exponential backoff.  A task whose worker crashed kMaxWorkerRetries
// times is *quarantined*: it completes with a typed WorkerError
// outcome (CLI exit code 8) instead of being retried forever — one
// poison arm can never wedge a sweep.  Handler exceptions are NOT
// crashes: they travel back as typed error descriptions and are never
// retried (the handler is deterministic; rerunning would just fail
// identically).
//
// Worker lifecycle (the DESIGN.md state machine): fork() → kHello
// (healthy) → heartbeats every heartbeat_interval_ms → a worker whose
// last heartbeat is older than heartbeat_timeout_ms is *suspect* and
// SIGKILLed → reaped via waitpid → respawned.  Workers are forked
// without exec: the child inherits the handler closure (and the specs
// / config it captures) as live C++ objects, so task payloads carry
// only small coordinates — nothing to serialize, nothing to drift from
// the in-process run, which is what makes cross-process bit-identity
// trivial (the worker computes the same pure function on the same
// objects).
//
// Fork safety: workers are forked from the constructor's calling
// thread (fork early, before the caller spawns its own threads);
// respawns happen on the supervisor's event-loop thread while the
// MetricsRegistry lock is held across fork() (obs fork_prepare), so a
// child never inherits a locked registry.  The child immediately
// uninstalls any inherited TraceSession (a lock-free pointer CAS),
// resets signal dispositions, and communicates only through its two
// pipe ends; it leaves via _exit(), never flushing inherited stdio.
//
// Metrics: proc.spawns, proc.crashes, proc.retries, proc.quarantines,
// proc.heartbeat_timeouts counters and the proc.heartbeat_ms histogram
// (observed inter-heartbeat gap).  Traces: a proc.supervise span for
// the supervisor lifetime and one proc.task span per dispatched task.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace nmdt::proc {

/// Crash-retry budget: a task whose worker dies this many times is
/// quarantined as WorkerError (mirrors fault::kMaxRetries in spirit —
/// bounded recovery, then a typed surfaced failure).
inline constexpr int kMaxWorkerRetries = 3;

struct ProcOptions {
  int workers = 2;
  /// RLIMIT_AS cap per worker in MiB; 0 = unlimited.  A breach surfaces
  /// as bad_alloc (typed handler error) or a crash (retry path).
  i64 worker_mem_mb = 0;
  double heartbeat_interval_ms = 20.0;
  /// A worker silent for this long is killed and its task re-dispatched.
  double heartbeat_timeout_ms = 2000.0;
  int max_retries = kMaxWorkerRetries;
  /// Re-dispatch backoff after the n-th crash: base * 2^(n-1), capped.
  double backoff_base_ms = 5.0;
  double backoff_cap_ms = 250.0;
};

/// Runs in the *worker process*: one task in, one result payload out.
/// Throwing a typed exception yields a typed error outcome (it is NOT
/// a crash and is never retried).
using TaskHandler =
    std::function<std::string(u8 kind, u64 key, const std::string& payload)>;

struct TaskOutcome {
  bool ok = false;
  std::string payload;  ///< handler result when ok
  std::string error;    ///< describe_exception() string when !ok
  int crashes = 0;      ///< worker deaths this task survived (or didn't)
};

struct Completion {
  u64 id = 0;
  u8 kind = 0;
  u64 key = 0;
  TaskOutcome outcome;
};

struct ProcStats {
  i64 spawns = 0;
  i64 crashes = 0;
  i64 retries = 0;
  i64 quarantines = 0;
  i64 heartbeat_timeouts = 0;
};

class Supervisor {
 public:
  /// Forks the initial workers on the calling thread, then starts the
  /// event loop.  Fork the supervisor before spawning other threads
  /// where possible (see fork-safety notes above).
  Supervisor(ProcOptions opts, TaskHandler handler);
  ~Supervisor();  ///< shutdown() if still running

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Enqueue a task; returns its id.  `key` feeds the worker_abort /
  /// worker_hang fault draws (mixed with the attempt index) and is
  /// echoed in the completion.  Tasks sharing an `affinity` value
  /// prefer the worker that last ran that affinity — the suite runner
  /// keys it by row so a worker reuses its cached plan.
  u64 submit(u8 kind, u64 key, std::string payload, u64 affinity = 0);

  /// Block up to timeout_ms for the next completion (any submitted
  /// task); nullopt on timeout.  Single-consumer: the orchestration
  /// loop owns this end.
  std::optional<Completion> wait_completion(double timeout_ms);

  /// Synchronous submit + wait for that one task (the service-backend
  /// path).  Thread-safe; concurrent callers each get their own task's
  /// outcome.  Never consumes wait_completion() completions.
  TaskOutcome call(u8 kind, u64 key, std::string payload);

  /// Tasks submitted but not yet completed.
  usize pending() const;

  ProcStats stats() const;

  /// Live worker pids — the chaos tests' kill -9 target.
  std::vector<i64> worker_pids() const;

  /// Stop dispatching, ask workers to exit, SIGKILL stragglers, reap
  /// everything.  In-flight tasks complete as WorkerError.  Idempotent.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nmdt::proc
