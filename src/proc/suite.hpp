// Crash-isolated suite execution: run_suite's Fig. 4 / Fig. 16 sweep
// with every matrix generation, plan, and kernel arm executed inside
// supervised worker *processes* (proc/supervisor.hpp) instead of
// in-process pool threads.
//
// Bit-identity contract: rows are identical to in-process run_suite at
// any worker count.  Workers are forked without exec, so they inherit
// the specs / config as live objects and task payloads carry only
// (row, arm) coordinates; each worker computes the same pure function
// — per-row RNG seeding (0xb0b0 + idx) and plan construction are the
// executor's exact expressions — and timings / profiles travel back as
// raw f64 / encoded-profile bits.  The checkpoint journal is written
// only by the supervising parent, in the same entry vocabulary as the
// in-process runner, so --resume composes across modes (start a sweep
// in-process, resume it isolated, or vice versa).
//
// Failure semantics: a worker crash (SIGSEGV / SIGKILL / abort /
// RLIMIT_AS breach / missed heartbeat) re-dispatches the in-flight
// task with capped backoff; a task whose worker died max_retries times
// is quarantined as a typed WorkerError row/arm failure (exit code 8
// under fail_fast) — one poison arm degrades one table cell, never the
// sweep.  Handler-level typed errors (TimeoutError, FaultError …)
// behave exactly as in-process: journaled, ranked, never retried.
#pragma once

#include <array>
#include <vector>

#include "core/executor.hpp"
#include "proc/supervisor.hpp"

namespace nmdt::proc {

/// Per-(row, arm) CRC32 of the C output, computed inside the worker
/// that ran the arm.  Lets tests pin cross-process value bit-identity
/// without shipping C panels over the pipe.  Arms replayed from a
/// journal (which stores no checksum) and failed arms stay 0.
using SuiteCrcs = std::vector<std::array<u32, SuiteRow::kArmCount>>;

/// Process-isolated run_suite.  Same contract as the in-process
/// overload — identical rows, progress semantics, journal entries,
/// cancellation / deadline behaviour and fail-fast ranking — plus the
/// supervisor's crash-recovery semantics above.  `cfg.fault` (and any
/// already-installed FaultScope) is inherited by the workers, so
/// worker_abort / worker_hang plans crash them deterministically.
std::vector<SuiteRow> run_suite_isolated(std::span<const MatrixSpec> specs,
                                         const SpmmConfig& cfg, index_t K,
                                         const SuiteProgress& progress,
                                         const SuiteOptions& opts,
                                         const ProcOptions& proc_opts,
                                         SuiteCrcs* c_crc_out = nullptr);

}  // namespace nmdt::proc
