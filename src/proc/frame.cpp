#include "proc/frame.hpp"

#include <cstring>

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace nmdt::proc {

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string tagged;
  tagged.reserve(payload.size() + 1);
  tagged.push_back(static_cast<char>(type));
  tagged.append(payload);
  std::string out;
  out.reserve(tagged.size() + 2 * sizeof(u32));
  const u32 len = static_cast<u32>(tagged.size());
  out.append(reinterpret_cast<const char*>(&len), sizeof(len));
  out.append(tagged);
  const u32 crc = crc32(tagged.data(), tagged.size());
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return out;
}

void FrameDecoder::feed(const void* data, usize n) {
  buf_.append(static_cast<const char*>(data), n);
}

std::optional<Frame> FrameDecoder::next() {
  const usize avail = buf_.size() - off_;
  if (avail < sizeof(u32)) return std::nullopt;
  u32 len = 0;
  std::memcpy(&len, buf_.data() + off_, sizeof(len));
  if (len == 0) {
    throw ParseError("worker pipe frame: empty payload (missing type tag)");
  }
  if (len > kMaxFramePayloadBytes + 1) {
    throw ParseError("worker pipe frame: implausible length " + std::to_string(len));
  }
  if (avail < sizeof(u32) + static_cast<usize>(len) + sizeof(u32)) return std::nullopt;
  const char* payload = buf_.data() + off_ + sizeof(u32);
  u32 stored = 0;
  std::memcpy(&stored, payload + len, sizeof(stored));
  if (crc32(payload, len) != stored) {
    throw ParseError("worker pipe frame: checksum mismatch (torn or bit-flipped)");
  }
  const u8 tag = static_cast<u8>(payload[0]);
  if (tag < static_cast<u8>(FrameType::kHello) ||
      tag > static_cast<u8>(FrameType::kShutdown)) {
    throw ParseError("worker pipe frame: unknown type tag " + std::to_string(int{tag}));
  }
  Frame f;
  f.type = static_cast<FrameType>(tag);
  f.payload.assign(payload + 1, static_cast<usize>(len) - 1);
  off_ += sizeof(u32) + static_cast<usize>(len) + sizeof(u32);
  // Compact once the consumed prefix dominates, keeping feed() O(1)
  // amortized without unbounded buffer growth across a long sweep.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  return f;
}

void WireReader::bytes(void* dst, usize n, const char* what) {
  if (n > left_) {
    throw ParseError(std::string("worker pipe payload: truncated ") + what);
  }
  if (n > 0) std::memcpy(dst, p_, n);
  p_ += n;
  left_ -= n;
}

u8 WireReader::get_u8(const char* what) { u8 v = 0; bytes(&v, sizeof(v), what); return v; }
u32 WireReader::get_u32(const char* what) { u32 v = 0; bytes(&v, sizeof(v), what); return v; }
u64 WireReader::get_u64(const char* what) { u64 v = 0; bytes(&v, sizeof(v), what); return v; }
i64 WireReader::get_i64(const char* what) { i64 v = 0; bytes(&v, sizeof(v), what); return v; }
double WireReader::get_f64(const char* what) {
  double v = 0;
  bytes(&v, sizeof(v), what);
  return v;
}

std::string WireReader::get_str(const char* what) {
  const u32 n = get_u32(what);
  if (n > kMaxFramePayloadBytes) {
    throw ParseError(std::string("worker pipe payload: implausible string length for ") +
                     what);
  }
  std::string s(static_cast<usize>(n), '\0');
  bytes(s.data(), s.size(), what);
  return s;
}

void WireReader::expect_done(const char* what) const {
  if (left_ != 0) {
    throw ParseError(std::string("worker pipe payload: trailing bytes after ") + what);
  }
}

}  // namespace nmdt::proc
