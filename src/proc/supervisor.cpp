#include "proc/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proc/frame.hpp"
#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define NMDT_HAVE_FORK 1
#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace nmdt::proc {

#ifdef NMDT_HAVE_FORK

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point then, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - then).count();
}

/// write(2) the whole buffer, surviving EINTR and partial writes.
/// False on any hard error (EPIPE: the peer is gone).
bool write_full(int fd, const void* data, usize n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<usize>(w);
  }
  return true;
}

std::string describe_wait_status(int status) {
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  return "died (wait status " + std::to_string(status) + ")";
}

/// The worker process body.  Never returns; leaves via _Exit so
/// inherited stdio buffers are never flushed twice.
[[noreturn]] void worker_child_main(const ProcOptions& opts, const TaskHandler& handler,
                                    int task_fd, int result_fd,
                                    const std::vector<int>& inherited_fds) {
  // Only our two pipe ends survive; every other inherited descriptor
  // (sibling pipes, the supervisor's wake pipe) is closed so a sibling's
  // EOF is visible the moment it dies.
  for (const int fd : inherited_fds) ::close(fd);
  // Inherited signal handlers (the CLI's SIGINT latch, the daemon's
  // shutdown counter) touch state that is meaningless in the child;
  // default everything, including SIGPIPE so an orphaned worker dies on
  // its next write instead of looping.
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGHUP, SIG_DFL);
  std::signal(SIGPIPE, SIG_DFL);
  // The inherited TraceSession's per-thread buffers belong to the
  // parent; uninstall (a lock-free pointer CAS) before any span opens.
  if (auto* session = obs::TraceSession::active()) session->uninstall();
  if (opts.worker_mem_mb > 0) {
    struct rlimit rl{};
    rl.rlim_cur = rl.rlim_max =
        static_cast<rlim_t>(opts.worker_mem_mb) * 1024 * 1024;
    ::setrlimit(RLIMIT_AS, &rl);
  }

  // Result and heartbeat frames share the pipe; frames larger than
  // PIPE_BUF are not atomic, so every write holds the mutex for the
  // full frame.
  std::mutex write_mu;
  std::atomic<bool> send_failed{false};
  auto send = [&](FrameType type, const std::string& payload) {
    const std::string framed = encode_frame(type, payload);
    std::lock_guard<std::mutex> lock(write_mu);
    if (!write_full(result_fd, framed.data(), framed.size())) {
      send_failed.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  };
  {
    WireWriter hello;
    hello.put_u64(static_cast<u64>(::getpid()));
    send(FrameType::kHello, hello.out);
  }

  // Heartbeat thread: proves the *process* is alive even while the main
  // thread is deep in a long kernel.  The worker_hang fault stops it
  // (wedged) to simulate a whole-process wedge the supervisor can only
  // detect by silence.
  std::atomic<bool> hb_stop{false};
  std::atomic<bool> wedged{false};
  std::thread heartbeat([&] {
    const auto interval = std::chrono::duration<double, std::milli>(
        std::max(1.0, opts.heartbeat_interval_ms));
    while (!hb_stop.load(std::memory_order_relaxed)) {
      if (!wedged.load(std::memory_order_relaxed)) {
        if (!send(FrameType::kHeartbeat, std::string())) break;
      }
      std::this_thread::sleep_for(interval);
    }
  });

  FrameDecoder decoder;
  int exit_code = 0;
  bool done = false;
  char buf[1 << 16];
  while (!done) {
    const ssize_t n = ::read(task_fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      exit_code = 1;
      break;
    }
    if (n == 0) break;  // supervisor is gone; exit quietly
    decoder.feed(buf, static_cast<usize>(n));
    try {
      while (auto frame = decoder.next()) {
        if (frame->type == FrameType::kShutdown) {
          done = true;
          break;
        }
        if (frame->type != FrameType::kTask) continue;
        WireReader r(frame->payload);
        const u64 id = r.get_u64("task id");
        const u8 kind = r.get_u8("task kind");
        const u64 key = r.get_u64("task key");
        const u32 attempt = r.get_u32("task attempt");
        const std::string body = r.get_str("task body");
        r.expect_done("task frame");
        // Deterministically injectable crashes, drawn per (key,
        // attempt): a re-dispatched task re-draws, so rates below 1.0
        // recover across retries while rate 1.0 quarantines.
        if (fault::should_inject(fault::FaultSite::kWorkerAbort,
                                 fault::mix(key, attempt))) {
          std::abort();
        }
        if (fault::should_inject(fault::FaultSite::kWorkerHang,
                                 fault::mix(key, attempt))) {
          wedged.store(true, std::memory_order_relaxed);
          for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
        }
        WireWriter out;
        out.put_u64(id);
        try {
          const std::string result = handler(kind, key, body);
          out.put_u8(1);
          out.put_str(result);
        } catch (const std::exception& e) {
          out.put_u8(0);
          out.put_str(describe_exception(e));
        } catch (...) {
          out.put_u8(0);
          out.put_str("unknown exception");
        }
        if (!send(FrameType::kResult, out.out)) {
          exit_code = 1;
          done = true;
          break;
        }
      }
    } catch (const std::exception&) {
      // Corrupt task frame: the channel is unusable; die and let the
      // supervisor respawn a clean worker.
      exit_code = 1;
      done = true;
    }
  }
  hb_stop.store(true, std::memory_order_relaxed);
  heartbeat.join();
  std::_Exit(exit_code);
}

}  // namespace

struct Supervisor::Impl {
  struct Task {
    u64 id = 0;
    u8 kind = 0;
    u64 key = 0;
    std::string payload;
    u64 affinity = 0;
    int crashes = 0;
    Clock::time_point not_before{};
    bool has_promise = false;
    std::promise<TaskOutcome> promise;
    std::unique_ptr<obs::TraceSpan> span;
  };
  using TaskPtr = std::shared_ptr<Task>;

  struct WorkerProc {
    pid_t pid = -1;
    int to_fd = -1;
    int from_fd = -1;
    FrameDecoder decoder;
    TaskPtr inflight;
    bool has_affinity = false;
    u64 last_affinity = 0;
    Clock::time_point last_hb{};
    bool alive = false;
  };

  ProcOptions opts;
  TaskHandler handler;

  // Caller-facing state.
  mutable std::mutex mu;
  std::condition_variable comp_cv;
  std::deque<TaskPtr> inbox;
  std::deque<Completion> completions;
  ProcStats stat{};
  std::vector<i64> pids;
  std::atomic<u64> next_id{1};
  std::atomic<usize> pending{0};
  std::atomic<bool> stopping{false};
  bool shut_down = false;  // guarded by mu (shutdown idempotence)

  // Event-loop-thread state.
  std::vector<WorkerProc> workers;
  std::deque<TaskPtr> queue;
  int wake_r = -1, wake_w = -1;
  std::thread loop_thread;

  // Pre-resolved instruments (created before any fork so a child never
  // needs the registry lock for them).
  obs::Counter* m_spawns = nullptr;
  obs::Counter* m_crashes = nullptr;
  obs::Counter* m_retries = nullptr;
  obs::Counter* m_quarantines = nullptr;
  obs::Counter* m_hb_timeouts = nullptr;
  obs::Histogram* m_hb_gap = nullptr;
  std::unique_ptr<obs::TraceSpan> supervise_span;

  struct sigaction old_sigpipe{};

  void wake() const {
    const char b = 1;
    // Non-blocking: a full wake pipe already guarantees a wakeup.
    (void)!::write(wake_w, &b, 1);
  }

  double backoff_ms(int crashes) const {
    double d = opts.backoff_base_ms;
    for (int i = 1; i < crashes; ++i) d *= 2.0;
    return std::min(d, opts.backoff_cap_ms);
  }

  void complete(const TaskPtr& t, TaskOutcome outcome) {
    if (t->span) {
      t->span->arg("crashes", outcome.crashes)
          .arg("ok", i64{outcome.ok ? 1 : 0});
      t->span.reset();
    }
    pending.fetch_sub(1, std::memory_order_acq_rel);
    if (t->has_promise) {
      t->promise.set_value(std::move(outcome));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      completions.push_back(Completion{t->id, t->kind, t->key, std::move(outcome)});
    }
    comp_cv.notify_all();
  }

  bool spawn_worker(WorkerProc& w) {
    int task_pipe[2] = {-1, -1};
    int result_pipe[2] = {-1, -1};
    if (::pipe(task_pipe) != 0) return false;
    if (::pipe(result_pipe) != 0) {
      ::close(task_pipe[0]);
      ::close(task_pipe[1]);
      return false;
    }
    std::vector<int> inherited = {wake_r, wake_w, task_pipe[1], result_pipe[0]};
    for (const WorkerProc& other : workers) {
      if (other.to_fd >= 0) inherited.push_back(other.to_fd);
      if (other.from_fd >= 0) inherited.push_back(other.from_fd);
    }
    // Hold the registry lock across fork() so the child never inherits
    // it locked (its handler creates instruments on first use).
    obs::MetricsRegistry::global().fork_prepare();
    const pid_t pid = ::fork();
    if (pid == 0) {
      // The child is a clone of the forking thread, which owns the
      // lock; release it before anything else allocates instruments.
      obs::MetricsRegistry::global().fork_release();
      worker_child_main(opts, handler, task_pipe[0], result_pipe[1], inherited);
    }
    obs::MetricsRegistry::global().fork_release();
    if (pid < 0) {
      ::close(task_pipe[0]);
      ::close(task_pipe[1]);
      ::close(result_pipe[0]);
      ::close(result_pipe[1]);
      return false;
    }
    ::close(task_pipe[0]);
    ::close(result_pipe[1]);
    ::fcntl(result_pipe[0], F_SETFL, O_NONBLOCK);
    w.pid = pid;
    w.to_fd = task_pipe[1];
    w.from_fd = result_pipe[0];
    w.decoder = FrameDecoder{};
    w.inflight = nullptr;
    w.has_affinity = false;
    w.last_hb = Clock::now();
    w.alive = true;
    m_spawns->add(1);
    {
      std::lock_guard<std::mutex> lock(mu);
      ++stat.spawns;
      pids.push_back(static_cast<i64>(pid));
    }
    return true;
  }

  void close_worker_fds(WorkerProc& w) {
    if (w.to_fd >= 0) ::close(w.to_fd);
    if (w.from_fd >= 0) ::close(w.from_fd);
    w.to_fd = w.from_fd = -1;
  }

  void forget_pid(pid_t pid) {
    std::lock_guard<std::mutex> lock(mu);
    pids.erase(std::remove(pids.begin(), pids.end(), static_cast<i64>(pid)),
               pids.end());
  }

  /// A worker died (already reaped): account the crash, retry or
  /// quarantine its in-flight task, respawn.
  void worker_died(WorkerProc& w, const std::string& how) {
    close_worker_fds(w);
    forget_pid(w.pid);
    w.pid = -1;
    w.alive = false;
    m_crashes->add(1);
    {
      std::lock_guard<std::mutex> lock(mu);
      ++stat.crashes;
    }
    if (TaskPtr t = std::move(w.inflight)) {
      w.inflight = nullptr;
      ++t->crashes;
      if (t->crashes >= opts.max_retries) {
        m_quarantines->add(1);
        {
          std::lock_guard<std::mutex> lock(mu);
          ++stat.quarantines;
        }
        TaskOutcome out;
        out.ok = false;
        out.crashes = t->crashes;
        out.error = "WorkerError: worker process " + how + " running this task; "
                    "quarantined after " + std::to_string(t->crashes) +
                    " crashed attempts";
        complete(t, std::move(out));
      } else {
        m_retries->add(1);
        {
          std::lock_guard<std::mutex> lock(mu);
          ++stat.retries;
        }
        t->not_before =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   backoff_ms(t->crashes)));
        queue.push_back(std::move(t));
      }
    }
    if (!stopping.load(std::memory_order_relaxed)) {
      // Respawn best-effort; a failed fork is retried on the next loop
      // iteration (dispatch() skips dead workers meanwhile).
      (void)spawn_worker(w);
    }
  }

  /// Kill + reap + account, for heartbeat timeouts and poisoned pipes.
  void kill_worker(WorkerProc& w, const std::string& why) {
    ::kill(w.pid, SIGKILL);
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {}
    worker_died(w, why + " (" + describe_wait_status(status) + ")");
  }

  void dispatch_one(WorkerProc& w, TaskPtr t) {
    if (!t->span) {
      t->span = std::make_unique<obs::TraceSpan>("proc.task");
      t->span->arg("kind", i64{t->kind}).arg("key", static_cast<i64>(t->key));
    }
    WireWriter body;
    body.put_u64(t->id);
    body.put_u8(t->kind);
    body.put_u64(t->key);
    body.put_u32(static_cast<u32>(t->crashes));
    body.put_str(t->payload);
    const std::string framed = encode_frame(FrameType::kTask, body.out);
    w.inflight = t;
    w.has_affinity = true;
    w.last_affinity = t->affinity;
    if (!write_full(w.to_fd, framed.data(), framed.size())) {
      // The worker died before we could hand it work: reap and let the
      // retry/backoff path take over (the write never reached it, but
      // a dead worker mid-handshake still counts as a crash for the
      // task's budget — a fork bomb of instant deaths must converge to
      // quarantine, not loop forever).
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {}
      worker_died(w, "rejected its task pipe (" + describe_wait_status(status) + ")");
    }
  }

  void dispatch() {
    const auto now = Clock::now();
    for (WorkerProc& w : workers) {
      if (!w.alive && !stopping.load(std::memory_order_relaxed)) {
        (void)spawn_worker(w);  // retry an earlier failed respawn
      }
      if (!w.alive || w.inflight) continue;
      if (queue.empty()) return;
      // Prefer a task whose affinity matches what this worker ran last
      // (the suite keys affinity by row, so a worker reuses its cached
      // plan); fall back to the oldest ready task.
      auto pick = queue.end();
      for (auto it = queue.begin(); it != queue.end(); ++it) {
        if ((*it)->not_before > now) continue;
        if (w.has_affinity && (*it)->affinity == w.last_affinity) {
          pick = it;
          break;
        }
        if (pick == queue.end()) pick = it;
      }
      if (pick == queue.end()) continue;
      TaskPtr t = std::move(*pick);
      queue.erase(pick);
      dispatch_one(w, std::move(t));
    }
  }

  void handle_frame(WorkerProc& w, Frame frame) {
    const auto now = Clock::now();
    switch (frame.type) {
      case FrameType::kHello:
        w.last_hb = now;
        break;
      case FrameType::kHeartbeat:
        m_hb_gap->observe(ms_since(w.last_hb, now));
        w.last_hb = now;
        break;
      case FrameType::kResult: {
        w.last_hb = now;
        WireReader r(frame.payload);
        const u64 id = r.get_u64("result task id");
        const u8 ok = r.get_u8("result status");
        std::string body = r.get_str("result body");
        r.expect_done("result frame");
        if (!w.inflight || w.inflight->id != id) {
          throw ParseError("worker result for unknown task id " + std::to_string(id));
        }
        TaskPtr t = std::move(w.inflight);
        w.inflight = nullptr;
        TaskOutcome out;
        out.ok = ok != 0;
        out.crashes = t->crashes;
        if (out.ok) out.payload = std::move(body);
        else out.error = std::move(body);
        complete(t, std::move(out));
        break;
      }
      default:
        // kTask/kShutdown never flow worker → supervisor.
        throw ParseError("unexpected frame type from worker");
    }
  }

  void read_worker(WorkerProc& w) {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(w.from_fd, buf, sizeof(buf));
      if (n > 0) {
        w.decoder.feed(buf, static_cast<usize>(n));
        try {
          while (auto frame = w.decoder.next()) handle_frame(w, std::move(*frame));
        } catch (const std::exception&) {
          // Torn / bit-flipped / nonsensical result frames: the typed
          // ParseError from the decoder, never UB — the worker is
          // poisoned, kill it and let retry/backoff handle its task.
          kill_worker(w, "emitted a corrupt result frame");
          return;
        }
        continue;
      }
      if (n == 0) {  // EOF: the worker is dead or exiting
        int status = 0;
        while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {}
        worker_died(w, describe_wait_status(status));
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      kill_worker(w, "result pipe read failed");
      return;
    }
  }

  void check_heartbeats() {
    const auto now = Clock::now();
    for (WorkerProc& w : workers) {
      if (!w.alive) continue;
      if (ms_since(w.last_hb, now) <= opts.heartbeat_timeout_ms) continue;
      m_hb_timeouts->add(1);
      {
        std::lock_guard<std::mutex> lock(mu);
        ++stat.heartbeat_timeouts;
      }
      kill_worker(w, "missed its heartbeat deadline");
    }
  }

  void reap_silent_exits() {
    // Normally death arrives as EOF; this catches a worker whose fds
    // leaked into a grandchild (EOF never fires) — rare, but waitpid is
    // cheap and a lost worker would otherwise stall its in-flight task
    // until the heartbeat deadline.
    for (WorkerProc& w : workers) {
      if (!w.alive) continue;
      int status = 0;
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid) worker_died(w, describe_wait_status(status));
    }
  }

  void drain_inbox() {
    std::lock_guard<std::mutex> lock(mu);
    while (!inbox.empty()) {
      queue.push_back(std::move(inbox.front()));
      inbox.pop_front();
    }
  }

  void loop() {
    std::vector<pollfd> fds;
    while (!stopping.load(std::memory_order_acquire)) {
      drain_inbox();
      dispatch();
      fds.clear();
      fds.push_back(pollfd{wake_r, POLLIN, 0});
      for (const WorkerProc& w : workers) {
        if (w.alive) fds.push_back(pollfd{w.from_fd, POLLIN, 0});
      }
      (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()), /*timeout_ms=*/5);
      if ((fds[0].revents & POLLIN) != 0) {
        char scratch[256];
        while (::read(wake_r, scratch, sizeof(scratch)) > 0) {}
      }
      for (WorkerProc& w : workers) {
        if (!w.alive) continue;
        // Poll results are advisory; the nonblocking read handles
        // spurious wakeups and fd reuse across respawns safely.
        read_worker(w);
      }
      check_heartbeats();
      reap_silent_exits();
    }
  }
};

Supervisor::Supervisor(ProcOptions opts, TaskHandler handler)
    : impl_(std::make_unique<Impl>()) {
  NMDT_CHECK_CONFIG(opts.workers >= 1, "supervisor needs at least one worker");
  NMDT_CHECK_CONFIG(opts.max_retries >= 1, "worker retry budget must be >= 1");
  NMDT_CHECK_CONFIG(opts.heartbeat_interval_ms > 0.0 && opts.heartbeat_timeout_ms > 0.0,
                    "heartbeat interval and timeout must be positive");
  NMDT_CHECK_CONFIG(handler != nullptr, "supervisor needs a task handler");
  impl_->opts = opts;
  impl_->handler = std::move(handler);

  // Writes to a worker that died race its reaping; EPIPE (not a fatal
  // signal) is the behaviour the retry path depends on.
  struct sigaction ign{};
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  ::sigaction(SIGPIPE, &ign, &impl_->old_sigpipe);

  auto& reg = obs::MetricsRegistry::global();
  impl_->m_spawns = &reg.counter("proc.spawns");
  impl_->m_crashes = &reg.counter("proc.crashes");
  impl_->m_retries = &reg.counter("proc.retries");
  impl_->m_quarantines = &reg.counter("proc.quarantines");
  impl_->m_hb_timeouts = &reg.counter("proc.heartbeat_timeouts");
  impl_->m_hb_gap = &reg.histogram("proc.heartbeat_ms");
  impl_->supervise_span = std::make_unique<obs::TraceSpan>("proc.supervise");
  impl_->supervise_span->arg("workers", impl_->opts.workers);

  int wake[2] = {-1, -1};
  if (::pipe(wake) != 0) throw ConfigError("supervisor cannot create its wake pipe");
  ::fcntl(wake[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake[1], F_SETFL, O_NONBLOCK);
  impl_->wake_r = wake[0];
  impl_->wake_w = wake[1];

  // Fork the initial fleet from the constructing thread, before the
  // event loop (or any caller thread) exists — the one moment the
  // process is as single-threaded as it will ever be.
  impl_->workers.resize(static_cast<usize>(impl_->opts.workers));
  for (auto& w : impl_->workers) {
    if (!impl_->spawn_worker(w)) {
      for (auto& spawned : impl_->workers) {
        if (!spawned.alive) continue;
        ::kill(spawned.pid, SIGKILL);
        while (::waitpid(spawned.pid, nullptr, 0) < 0 && errno == EINTR) {}
        impl_->close_worker_fds(spawned);
      }
      throw ConfigError("supervisor cannot fork worker processes");
    }
  }
  impl_->loop_thread = std::thread([impl = impl_.get()] { impl->loop(); });
}

Supervisor::~Supervisor() {
  try {
    shutdown();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

u64 Supervisor::submit(u8 kind, u64 key, std::string payload, u64 affinity) {
  auto t = std::make_shared<Impl::Task>();
  t->id = impl_->next_id.fetch_add(1, std::memory_order_relaxed);
  t->kind = kind;
  t->key = key;
  t->payload = std::move(payload);
  t->affinity = affinity;
  impl_->pending.fetch_add(1, std::memory_order_acq_rel);
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->shut_down) rejected = true;
    else impl_->inbox.push_back(t);
  }
  if (rejected) {
    TaskOutcome out;
    out.error = "WorkerError: supervisor is shut down";
    impl_->complete(t, std::move(out));
  } else {
    impl_->wake();
  }
  return t->id;
}

std::optional<Completion> Supervisor::wait_completion(double timeout_ms) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->comp_cv.wait_for(
      lock,
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(std::max(0.0, timeout_ms))),
      [&] { return !impl_->completions.empty(); });
  if (impl_->completions.empty()) return std::nullopt;
  Completion c = std::move(impl_->completions.front());
  impl_->completions.pop_front();
  return c;
}

TaskOutcome Supervisor::call(u8 kind, u64 key, std::string payload) {
  auto t = std::make_shared<Impl::Task>();
  t->id = impl_->next_id.fetch_add(1, std::memory_order_relaxed);
  t->kind = kind;
  t->key = key;
  t->payload = std::move(payload);
  t->has_promise = true;
  auto future = t->promise.get_future();
  impl_->pending.fetch_add(1, std::memory_order_acq_rel);
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->shut_down) rejected = true;
    else impl_->inbox.push_back(t);
  }
  if (rejected) {
    TaskOutcome out;
    out.error = "WorkerError: supervisor is shut down";
    impl_->complete(t, std::move(out));
  } else {
    impl_->wake();
  }
  return future.get();
}

usize Supervisor::pending() const { return impl_->pending.load(std::memory_order_acquire); }

ProcStats Supervisor::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stat;
}

std::vector<i64> Supervisor::worker_pids() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->pids;
}

void Supervisor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->shut_down) return;
    impl_->shut_down = true;
  }
  impl_->stopping.store(true, std::memory_order_release);
  impl_->wake();
  if (impl_->loop_thread.joinable()) impl_->loop_thread.join();

  // The loop is gone; this thread owns the worker table now.  Ask every
  // worker to exit, give the fleet a short grace window, then SIGKILL.
  const std::string bye = encode_frame(FrameType::kShutdown, std::string());
  for (auto& w : impl_->workers) {
    if (w.alive) (void)write_full(w.to_fd, bye.data(), bye.size());
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(500);
  bool all_dead = false;
  while (!all_dead && Clock::now() < deadline) {
    all_dead = true;
    for (auto& w : impl_->workers) {
      if (!w.alive) continue;
      int status = 0;
      if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
        impl_->close_worker_fds(w);
        impl_->forget_pid(w.pid);
        w.alive = false;
      } else {
        all_dead = false;
      }
    }
    if (!all_dead) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& w : impl_->workers) {
    if (!w.alive) continue;
    ::kill(w.pid, SIGKILL);
    while (::waitpid(w.pid, nullptr, 0) < 0 && errno == EINTR) {}
    impl_->close_worker_fds(w);
    impl_->forget_pid(w.pid);
    w.alive = false;
  }
  // Every task still anywhere in flight gets a terminal typed outcome —
  // a blocked call() must never dangle past shutdown.
  auto fail = [&](const Impl::TaskPtr& t) {
    TaskOutcome out;
    out.crashes = t->crashes;
    out.error = "WorkerError: supervisor shut down before this task completed";
    impl_->complete(t, std::move(out));
  };
  for (auto& w : impl_->workers) {
    if (w.inflight) {
      Impl::TaskPtr t = std::move(w.inflight);
      fail(t);
    }
  }
  for (auto& t : impl_->queue) fail(t);
  impl_->queue.clear();
  std::deque<Impl::TaskPtr> leftover;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    leftover.swap(impl_->inbox);
  }
  for (auto& t : leftover) fail(t);

  if (impl_->wake_r >= 0) ::close(impl_->wake_r);
  if (impl_->wake_w >= 0) ::close(impl_->wake_w);
  impl_->wake_r = impl_->wake_w = -1;
  impl_->supervise_span.reset();
  ::sigaction(SIGPIPE, &impl_->old_sigpipe, nullptr);
}

#else  // !NMDT_HAVE_FORK

struct Supervisor::Impl {};

Supervisor::Supervisor(ProcOptions, TaskHandler) {
  throw ConfigError("process-isolated execution requires a POSIX host (fork/pipe)");
}
Supervisor::~Supervisor() = default;
u64 Supervisor::submit(u8, u64, std::string, u64) { return 0; }
std::optional<Completion> Supervisor::wait_completion(double) { return std::nullopt; }
TaskOutcome Supervisor::call(u8, u64, std::string) { return {}; }
usize Supervisor::pending() const { return 0; }
ProcStats Supervisor::stats() const { return {}; }
std::vector<i64> Supervisor::worker_pids() const { return {}; }
void Supervisor::shutdown() {}

#endif  // NMDT_HAVE_FORK

}  // namespace nmdt::proc
