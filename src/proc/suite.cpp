#include "proc/suite.hpp"

#include <chrono>
#include <filesystem>
#include <map>
#include <optional>
#include <system_error>
#include <type_traits>

#include "core/journal.hpp"
#include "fault/fault.hpp"
#include "formats/retype.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proc/frame.hpp"
#include "util/cancel.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nmdt::proc {

namespace {

// Task kinds on the supervisor pipe.
constexpr u8 kTaskPlanRow = 1;  ///< payload {u32 row} → u8 status [+ profile]
constexpr u8 kTaskRunArm = 2;   ///< payload {u32 row, u8 arm} → {f64 t, f64 prep, u32 crc}

KernelKind arm_kernel(int arm) {
  switch (arm) {
    case SuiteRow::kArmBaseline: return KernelKind::kCsrCStationaryRowWarp;
    case SuiteRow::kArmDcsrC: return KernelKind::kDcsrCStationary;
    case SuiteRow::kArmOnlineB: return KernelKind::kTiledDcsrOnline;
    default: return KernelKind::kTiledDcsrBStationary;
  }
}

u32 c_crc_of(const SpmmResult& r) {
  if (r.precision == Precision::kF64) {
    const auto d = r.C64.data();
    return crc32(d.data(), d.size() * sizeof(double));
  }
  const auto d = r.C.data();
  return crc32(d.data(), d.size() * sizeof(float));
}

/// Worker-process state: the last row this worker planned.  Task
/// affinity keys on the row, so the common case is four arm tasks
/// reusing the plan/B their own worker just built; a miss (retry on a
/// fresh worker, affinity steal) rebuilds them — the plan is a pure
/// function of (spec, cfg) and B of the row index, so a rebuild cannot
/// change results, only cost time.
struct WorkerRowCache {
  usize idx = static_cast<usize>(-1);
  std::shared_ptr<const SpmmPlan> plan;
  std::shared_ptr<const DenseMatrix> B;
};

TaskHandler make_suite_handler(std::vector<MatrixSpec> specs, SpmmConfig cfg, index_t K,
                               double arm_timeout_ms) {
  auto cache = std::make_shared<WorkerRowCache>();
  return [specs = std::move(specs), cfg = std::move(cfg), K, arm_timeout_ms,
          cache](u8 kind, u64 /*key*/, const std::string& payload) -> std::string {
    // Exact executor expressions: generation, planning, and B seeding
    // must match run_suite token for token for cross-process
    // bit-identity.
    auto build_row = [&](usize idx) -> bool {  // false = degenerate
      const Csr A = specs[idx].generate();
      if (A.nnz() == 0) return false;
      cache->plan =
          build_plan(A, {cfg.tiling, default_ssf_threshold(), 1.0, cfg.precision});
      Rng b_rng(0xb0b0 + static_cast<u64>(idx));
      auto B = std::make_shared<DenseMatrix>(A.cols, K);
      B->randomize(b_rng);
      cache->B = std::move(B);
      cache->idx = idx;
      return true;
    };

    WireReader r(payload);
    if (kind == kTaskPlanRow) {
      const usize idx = r.get_u32("plan-task row");
      r.expect_done("plan task");
      WireWriter w;
      if (!build_row(idx)) {
        w.put_u8(0);  // degenerate draw: nothing to measure
        return w.out;
      }
      w.put_u8(1);
      w.put_str(encode_profile(cache->plan->profile()));
      return w.out;
    }

    const usize idx = r.get_u32("arm-task row");
    const int arm = static_cast<int>(r.get_u8("arm-task arm"));
    r.expect_done("arm task");
    if (cache->idx != idx && !build_row(idx)) {
      // The parent only dispatches arms for rows whose plan task
      // reported non-degenerate; a degenerate rebuild means the spec's
      // generator is not a pure function — surface loudly.
      throw ParseError("arm task for row " + std::to_string(idx) +
                       " regenerated as a degenerate matrix");
    }
    // Per-arm deadline, enforced in the worker exactly where the
    // in-process runner enforces it: a child token the kernels poll.
    const CancelToken arm_token;
    if (arm_timeout_ms > 0.0) {
      arm_token.set_deadline(
          CancelToken::Clock::now() +
              std::chrono::duration_cast<CancelToken::Clock::duration>(
                  std::chrono::duration<double, std::milli>(arm_timeout_ms)),
          CancelReason::kDeadline);
    }
    CancelScope arm_scope(arm_token);
    arm_token.poll();
    fault::transient_point(fault::FaultSite::kSuiteArm,
                           fault::mix(static_cast<u64>(idx), static_cast<u64>(arm)));
    const KernelKind kernel = arm_kernel(arm);
    const SpmmResult res = dispatch_precision(cfg.precision, [&](auto tag) -> SpmmResult {
      using V = typename decltype(tag)::type;
      const SpmmOperandsT<V> ops = cache->plan->operands_at<V>().bundle();
      if constexpr (std::is_same_v<V, value_t>) {
        return run_spmm_t<V>(kernel, ops, *cache->B, cfg);
      } else {
        const DenseMatrixT<V> b = retype<V>(*cache->B);
        return run_spmm_t<V>(kernel, ops, b, cfg);
      }
    });
    WireWriter w;
    w.put_f64(res.timing.total_ms());
    w.put_f64(arm == SuiteRow::kArmOfflineB ? res.offline_prep_ns * 1e-6 : 0.0);
    w.put_u32(c_crc_of(res));
    return w.out;
  };
}

}  // namespace

std::vector<SuiteRow> run_suite_isolated(std::span<const MatrixSpec> specs,
                                         const SpmmConfig& cfg, index_t K,
                                         const SuiteProgress& progress,
                                         const SuiteOptions& opts,
                                         const ProcOptions& proc_opts,
                                         SuiteCrcs* c_crc_out) {
  NMDT_CHECK_CONFIG(K > 0, "run_suite requires K > 0");
  NMDT_CHECK_CONFIG(!opts.resume || !opts.journal_path.empty(),
                    "resume requires a checkpoint-journal path");
  const usize total = specs.size();
  obs::MetricsRegistry::global().counter("suite.runs").add(1);
  // Install the sweep-wide fault plan BEFORE any worker forks: children
  // inherit the injector atomics, which is what makes worker_abort /
  // worker_hang (and kSuiteArm) draws identical to the in-process run.
  std::optional<fault::FaultScope> fault_scope;
  if (cfg.fault.site != fault::FaultSite::kNone) fault_scope.emplace(cfg.fault);
  obs::TraceSpan suite_span("suite.run");
  suite_span.arg("total", static_cast<i64>(total))
      .arg("k", static_cast<i64>(K))
      .arg("isolated_workers", proc_opts.workers);
  if (c_crc_out) {
    c_crc_out->assign(total, std::array<u32, SuiteRow::kArmCount>{});
  }

  // --- Durability setup: identical to the in-process runner, so a
  // journal written by either mode resumes under the other. ------------
  const u64 fingerprint = suite_fingerprint(specs, cfg, K, SuiteRow::kArmCount);
  JournalReplay replay;
  if (opts.resume) {
    replay = read_journal_file(opts.journal_path);
    verify_journal(replay, fingerprint, total, K, SuiteRow::kArmCount);
    obs::MetricsRegistry::global().counter("checkpoint.replayed").add(
        static_cast<i64>(replay.entries));
    suite_span.arg("replayed_entries", static_cast<i64>(replay.entries));
  }
  std::optional<JournalWriter> writer;
  if (!opts.journal_path.empty()) {
    const bool append = opts.resume && replay.has_header;
    if (append && replay.torn_tail) {
      std::error_code ec;
      std::filesystem::resize_file(
          opts.journal_path, static_cast<std::uintmax_t>(replay.valid_bytes), ec);
      if (ec) {
        throw ParseError("cannot truncate torn checkpoint-journal tail: " +
                         opts.journal_path + " (" + ec.message() + ")");
      }
    }
    writer.emplace(opts.journal_path, fingerprint, total, K, SuiteRow::kArmCount,
                   opts.checkpoint_interval, append);
  }
  auto checkpoint = [&] {
    if (writer && opts.on_checkpoint) opts.on_checkpoint(writer->entries());
  };

  // --- Cancellation / deadlines: parent-side suite token, worker-side
  // arm deadlines (set in the handler where the kernels poll). ---------
  const CancelToken suite_token = CancelToken::child_of(opts.cancel);
  if (opts.suite_timeout_ms > 0.0) {
    suite_token.set_deadline(
        CancelToken::Clock::now() +
            std::chrono::duration_cast<CancelToken::Clock::duration>(
                std::chrono::duration<double, std::milli>(opts.suite_timeout_ms)),
        CancelReason::kSuiteDeadline);
  }

  // Lowest-(row, arm) failure wins under kFailFast, exactly like the
  // in-process ranking; the typed exception is rebuilt from its
  // description at the end (live and replayed failures carry the same
  // descriptions either way).
  i64 err_rank = -1;
  std::string err_desc;
  auto record_failure = [&](usize idx, int arm, const std::string& desc) {
    const i64 rank = static_cast<i64>(idx) * (SuiteRow::kArmCount + 1) + arm + 1;
    if (err_rank < 0 || rank < err_rank) {
      err_rank = rank;
      err_desc = desc;
    }
    if (desc.rfind("TimeoutError", 0) == 0) {
      obs::MetricsRegistry::global().counter("fault.timeout").add(1);
    }
  };

  std::vector<std::optional<SuiteRow>> slots(total);

  // --- Replay prefill (same walk as run_suite). -----------------------
  std::vector<const JournalRow*> partial(total, nullptr);
  usize reported = 0;
  usize prefilled_finished = 0;
  auto apply_replayed_arm = [](SuiteRow& row, int arm, const JournalArmOutcome& out) {
    switch (arm) {
      case SuiteRow::kArmBaseline: row.t_baseline_ms = out.t_ms; break;
      case SuiteRow::kArmDcsrC: row.t_dcsr_c_ms = out.t_ms; break;
      case SuiteRow::kArmOnlineB: row.t_online_b_ms = out.t_ms; break;
      case SuiteRow::kArmOfflineB:
        row.t_offline_b_ms = out.t_ms;
        row.offline_prep_ms = out.prep_ms;
        break;
      default: break;
    }
  };
  for (usize idx = 0; idx < total; ++idx) {
    const auto it = replay.rows.find(idx);
    if (it == replay.rows.end()) continue;
    const JournalRow& jr = it->second;
    if (!jr.complete(SuiteRow::kArmCount)) {
      partial[idx] = &jr;
      continue;
    }
    ++prefilled_finished;
    if (jr.degenerate) continue;
    SuiteRow row;
    row.spec = specs[idx];
    if (jr.error.has_value()) {
      row.error = *jr.error;
      record_failure(idx, -1, row.error);
    } else {
      row.profile = jr.profile;
      for (int a = 0; a < SuiteRow::kArmCount; ++a) {
        const JournalArmOutcome& out = *jr.arms[static_cast<usize>(a)];
        if (out.failed()) {
          row.arm_error[static_cast<usize>(a)] = out.error;
          record_failure(idx, a, out.error);
        } else {
          apply_replayed_arm(row, a, out);
        }
      }
    }
    slots[idx] = std::move(row);
    if (progress) progress(++reported, total, *slots[idx]);
    else ++reported;
  }

  usize live_remaining = total - prefilled_finished;
  if (live_remaining > 0) {
    Supervisor sup(proc_opts,
                   make_suite_handler(std::vector<MatrixSpec>(specs.begin(), specs.end()),
                                      cfg, K, opts.arm_timeout_ms));

    struct TaskRef {
      usize idx;
      int arm;  ///< -1 for the plan task
    };
    std::map<u64, TaskRef> inflight;
    std::vector<int> arms_left(total, 0);

    auto submit_plan = [&](usize idx) {
      WireWriter w;
      w.put_u32(static_cast<u32>(idx));
      const u64 id = sup.submit(kTaskPlanRow, fault::mix(0x704c, static_cast<u64>(idx)),
                                std::move(w.out), static_cast<u64>(idx));
      inflight.emplace(id, TaskRef{idx, -1});
    };
    auto submit_arm = [&](usize idx, int arm) {
      WireWriter w;
      w.put_u32(static_cast<u32>(idx));
      w.put_u8(static_cast<u8>(arm));
      const u64 id =
          sup.submit(kTaskRunArm, fault::mix(static_cast<u64>(idx), static_cast<u64>(arm)),
                     std::move(w.out), static_cast<u64>(idx));
      inflight.emplace(id, TaskRef{idx, arm});
    };

    auto report_row = [&](usize idx) {
      --live_remaining;
      if (progress) progress(++reported, total, *slots[idx]);
      else ++reported;
    };
    auto finish_unreported = [&](usize /*idx*/) { --live_remaining; };

    // Rows enter flight through a bounded window so arm tasks land
    // while their planning worker is still warm (affinity dispatch
    // reuses its cached plan/B) instead of queueing the whole sweep's
    // plans up front.
    const usize window = static_cast<usize>(proc_opts.workers) * 2 + 2;
    usize rows_in_flight = 0;
    usize next_idx = 0;
    auto top_up = [&] {
      while (rows_in_flight < window && next_idx < total) {
        const usize idx = next_idx++;
        if (slots[idx].has_value() ||
            (replay.rows.count(idx) != 0 &&
             replay.rows.at(idx).complete(SuiteRow::kArmCount))) {
          continue;  // fully replayed above
        }
        ++rows_in_flight;
        submit_plan(idx);
      }
    };

    auto handle_plan_done = [&](usize idx, const TaskOutcome& out) {
      const JournalRow* jrow = partial[idx];
      if (!out.ok) {
        // Typed handler failure (generation / planning threw) or a
        // WorkerError quarantine: either way a row-level typed error,
        // exactly like the in-process row path.
        SuiteRow row;
        row.spec = specs[idx];
        row.error = out.error;
        if (writer) {
          writer->row_error(idx, row.error);
          checkpoint();
        }
        slots[idx] = std::move(row);
        record_failure(idx, -1, out.error);
        --rows_in_flight;
        report_row(idx);
        return;
      }
      WireReader r(out.payload);
      const u8 status = r.get_u8("plan result status");
      if (status == 0) {  // degenerate draw: journaled, never reported
        r.expect_done("plan result");
        if (writer && !(jrow && jrow->degenerate)) {
          writer->row_degenerate(idx);
          checkpoint();
        }
        --rows_in_flight;
        finish_unreported(idx);
        return;
      }
      SuiteRow row;
      row.spec = specs[idx];
      row.profile = decode_profile(r.get_str("plan result profile"));
      r.expect_done("plan result");
      if (writer && !(jrow && jrow->planned)) {
        writer->row_planned(idx, row.profile);
        checkpoint();
      }
      // Fold replayed arms in before dispatching the rest.
      int missing = 0;
      for (int a = 0; a < SuiteRow::kArmCount; ++a) {
        const auto& rep =
            jrow ? jrow->arms[static_cast<usize>(a)] : std::optional<JournalArmOutcome>{};
        if (!rep.has_value()) {
          ++missing;
          continue;
        }
        if (rep->failed()) {
          row.arm_error[static_cast<usize>(a)] = rep->error;
          record_failure(idx, a, rep->error);
        } else {
          apply_replayed_arm(row, a, *rep);
        }
      }
      arms_left[idx] = missing;
      slots[idx] = std::move(row);
      if (missing == 0) {
        // Only reachable via a CRC-valid journal the writer never
        // produces (arm outcomes without row_planned); with no live
        // arms the row is already whole.
        --rows_in_flight;
        report_row(idx);
        return;
      }
      for (int a = 0; a < SuiteRow::kArmCount; ++a) {
        if (!(jrow && jrow->arms[static_cast<usize>(a)].has_value())) submit_arm(idx, a);
      }
    };

    auto handle_arm_done = [&](usize idx, int arm, const TaskOutcome& out) {
      SuiteRow& row = *slots[idx];
      if (!out.ok) {
        row.arm_error[static_cast<usize>(arm)] = out.error;
        if (writer) {
          writer->arm_error(idx, arm, out.error);
          checkpoint();
        }
        record_failure(idx, arm, out.error);
      } else {
        WireReader r(out.payload);
        const double t_ms = r.get_f64("arm result time");
        const double prep_ms = r.get_f64("arm result prep");
        const u32 crc = r.get_u32("arm result crc");
        r.expect_done("arm result");
        switch (arm) {
          case SuiteRow::kArmBaseline: row.t_baseline_ms = t_ms; break;
          case SuiteRow::kArmDcsrC: row.t_dcsr_c_ms = t_ms; break;
          case SuiteRow::kArmOnlineB: row.t_online_b_ms = t_ms; break;
          default:
            row.t_offline_b_ms = t_ms;
            row.offline_prep_ms = prep_ms;
            break;
        }
        if (c_crc_out) (*c_crc_out)[idx][static_cast<usize>(arm)] = crc;
        if (writer) {
          writer->arm_done(idx, arm, t_ms, prep_ms);
          checkpoint();
        }
      }
      if (--arms_left[idx] == 0) {
        --rows_in_flight;
        report_row(idx);
      }
    };

    bool cancelled = false;
    while (live_remaining > 0) {
      if (suite_token.cancelled()) {
        cancelled = true;
        break;
      }
      top_up();
      auto c = sup.wait_completion(/*timeout_ms=*/25.0);
      if (!c) continue;
      const auto it = inflight.find(c->id);
      if (it == inflight.end()) continue;
      const TaskRef ref = it->second;
      inflight.erase(it);
      if (ref.arm < 0) handle_plan_done(ref.idx, c->outcome);
      else handle_arm_done(ref.idx, ref.arm, c->outcome);
    }
    // Leaving scope shuts the supervisor down; on cancellation the
    // in-flight tasks are abandoned — not journaled, not reported — so
    // a resumed sweep re-executes them from scratch, bit-identically.
    if (cancelled) {
      if (writer) writer->flush();
      obs::MetricsRegistry::global().counter("suite.cancelled").add(1);
      const std::string where =
          opts.journal_path.empty()
              ? std::string(" (no journal was configured; completed work is lost)")
              : " (completed work is checkpointed in " + opts.journal_path + ")";
      if (suite_token.reason() == CancelReason::kSuiteDeadline) {
        throw TimeoutError("suite sweep exceeded its deadline" + where);
      }
      throw CancelledError("suite sweep cancelled" + where);
    }
  }

  if (writer) writer->flush();

  if (opts.policy == SuiteErrorPolicy::kFailFast && err_rank >= 0) {
    std::rethrow_exception(exception_from_description(err_desc));
  }

  std::vector<SuiteRow> rows;
  rows.reserve(total);
  for (auto& slot : slots) {
    if (slot.has_value()) rows.push_back(std::move(*slot));
  }
  return rows;
}

}  // namespace nmdt::proc
