// CRC-framed pipe protocol between the Supervisor and its worker
// processes (src/proc/supervisor.hpp).
//
// Framing follows the checkpoint journal's convention (core/journal):
//   frame := u32 payload_len | payload | u32 crc32(payload)
// with payload[0] a FrameType tag and the rest type-specific fields.
// The decoder is incremental — a pipe read() delivers arbitrary byte
// slices — and strict: an implausible length, a CRC mismatch, an
// unknown type tag, or an empty payload is a typed ParseError, never
// UB and never a hang.  A *partial* trailing frame is simply "not yet"
// (next() returns nullopt); on a pipe it only becomes an error when
// the writer dies mid-frame, which the supervisor detects as EOF with
// a non-idle decoder.
//
// Field-level encoding inside payloads uses WireWriter/WireReader:
// little-endian fixed-width integers and u32-length-prefixed strings,
// bounds-checked on the way out (ParseError, not FormatError — a torn
// or flipped frame is a *protocol* failure of an untrusted byte
// stream, like a malformed request line).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/types.hpp"

namespace nmdt::proc {

enum class FrameType : u8 {
  kHello = 1,      ///< worker → supervisor: ready (after rlimit/signal setup)
  kTask = 2,       ///< supervisor → worker: one task dispatch
  kResult = 3,     ///< worker → supervisor: one task outcome
  kHeartbeat = 4,  ///< worker → supervisor: liveness ping
  kShutdown = 5,   ///< supervisor → worker: exit cleanly
};

/// Payload cap (excluding the type tag).  Generous — result frames may
/// carry dense C panels for the service backend — but finite, so a
/// corrupt length prefix can never drive an allocation by itself.
inline constexpr u32 kMaxFramePayloadBytes = u32{1} << 28;

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;  ///< type-specific fields (tag stripped)
};

/// One on-the-wire frame: length prefix, type tag, payload, CRC32.
std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame parser over an untrusted byte stream.
class FrameDecoder {
 public:
  /// Buffer `n` raw bytes from the pipe.
  void feed(const void* data, usize n);

  /// Next complete frame, or nullopt when more bytes are needed.
  /// Throws ParseError on a corrupt frame (bad length, bad CRC,
  /// unknown type, empty payload); the decoder is poisoned afterwards
  /// and must be discarded.
  std::optional<Frame> next();

  /// True when no partial frame is buffered — EOF here is a clean
  /// close, EOF with buffered bytes is a writer that died mid-frame.
  bool idle() const { return off_ == buf_.size(); }

 private:
  std::string buf_;
  usize off_ = 0;  ///< consumed prefix of buf_
};

/// Payload field writer (journal ByteWriter conventions).
struct WireWriter {
  std::string out;

  void bytes(const void* p, usize n) { out.append(static_cast<const char*>(p), n); }
  void put_u8(u8 v) { bytes(&v, sizeof(v)); }
  void put_u32(u32 v) { bytes(&v, sizeof(v)); }
  void put_u64(u64 v) { bytes(&v, sizeof(v)); }
  void put_i64(i64 v) { bytes(&v, sizeof(v)); }
  void put_f64(double v) { bytes(&v, sizeof(v)); }
  void put_str(std::string_view s) {
    put_u32(static_cast<u32>(s.size()));
    bytes(s.data(), s.size());
  }
};

/// Bounds-checked payload reader; running out of bytes (layout
/// disagreement, corruption that passed CRC) throws ParseError.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : p_(bytes.data()), left_(bytes.size()) {}

  void bytes(void* dst, usize n, const char* what);
  u8 get_u8(const char* what);
  u32 get_u32(const char* what);
  u64 get_u64(const char* what);
  i64 get_i64(const char* what);
  double get_f64(const char* what);
  std::string get_str(const char* what);
  usize left() const { return left_; }
  /// Throws ParseError unless every byte was consumed.
  void expect_done(const char* what) const;

 private:
  const char* p_;
  usize left_;
};

}  // namespace nmdt::proc
