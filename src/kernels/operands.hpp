// Pre-converted operand bundle consumed by the SpMM kernels.
//
// Historically every kernel converted its own input (CSC for the online
// engine, DCSR for the densified C-stationary arm, tiled forms for the
// offline arms) on every call.  The Plan → Execute split moves those
// conversions to plan time: a kernel receives this bundle and uses
// whichever pre-converted artifact it needs, falling back to a local
// one-shot conversion only when the field is absent (the legacy
// `run_spmm(kind, A, B, cfg)` compatibility path) or when a tiled form
// was built under a different TilingSpec than the run's config.
//
// All pointers are non-owning views; the caller (an SpmmPlan, or the
// legacy shim's stack frame) guarantees they outlive the kernel call.
// `csr` is always required — it is the canonical operand every kernel
// can derive from.
//
// The bundle is typed on the stored value precision V: every format in
// one bundle carries the same scalar type, so a kernel can never mix
// operands rounded at different precisions.
#pragma once

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"
#include "formats/tiling.hpp"

namespace nmdt {

template <class V>
struct SpmmOperandsT {
  const CsrT<V>* csr = nullptr;                ///< required
  const CscT<V>* csc = nullptr;                ///< online tiled-DCSR kernel
  const DcsrT<V>* dcsr = nullptr;              ///< untiled DCSR kernels
  const TiledDcsrT<V>* tiled_dcsr = nullptr;   ///< offline B-stationary arm
  const TiledCsrT<V>* tiled_csr = nullptr;     ///< tiled-CSR strawman, A-stationary
  const StripNnz* strip_nnz = nullptr;         ///< B-stationary strip-skip table

  /// CSR-only bundle (every other format converts on demand).
  static SpmmOperandsT from_csr(const CsrT<V>& a) {
    SpmmOperandsT ops;
    ops.csr = &a;
    return ops;
  }
};

/// Default-precision alias; existing f32 call sites use this name.
using SpmmOperands = SpmmOperandsT<value_t>;

}  // namespace nmdt
