// Pre-converted operand bundle consumed by the SpMM kernels.
//
// Historically every kernel converted its own input (CSC for the online
// engine, DCSR for the densified C-stationary arm, tiled forms for the
// offline arms) on every call.  The Plan → Execute split moves those
// conversions to plan time: a kernel receives this bundle and uses
// whichever pre-converted artifact it needs, falling back to a local
// one-shot conversion only when the field is absent (the legacy
// `run_spmm(kind, A, B, cfg)` compatibility path) or when a tiled form
// was built under a different TilingSpec than the run's config.
//
// All pointers are non-owning views; the caller (an SpmmPlan, or the
// legacy shim's stack frame) guarantees they outlive the kernel call.
// `csr` is always required — it is the canonical operand every kernel
// can derive from.
#pragma once

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"
#include "formats/tiling.hpp"

namespace nmdt {

struct SpmmOperands {
  const Csr* csr = nullptr;               ///< required
  const Csc* csc = nullptr;               ///< online tiled-DCSR kernel
  const Dcsr* dcsr = nullptr;             ///< untiled DCSR kernels
  const TiledDcsr* tiled_dcsr = nullptr;  ///< offline B-stationary arm
  const TiledCsr* tiled_csr = nullptr;    ///< tiled-CSR strawman, A-stationary
  const StripNnz* strip_nnz = nullptr;    ///< B-stationary strip-skip table

  /// CSR-only bundle (every other format converts on demand).
  static SpmmOperands from_csr(const Csr& a) {
    SpmmOperands ops;
    ops.csr = &a;
    return ops;
  }
};

}  // namespace nmdt
