// C-stationary SpMM kernels (paper Sec. 3.1.1): each row of C is
// produced in full by one warp (or one thread), accumulating in
// registers — no atomics, B fetched per non-zero.
//
// Sharding: the 32-row warp groups split across shards (kRowGroupGrain
// groups each).  Groups own disjoint C rows, so shards write the shared
// output matrix directly; counters and memory events merge in
// shard-index order.
#include <algorithm>
#include <optional>

#include "kernels/detail.hpp"

namespace nmdt::detail {

namespace {

/// Shared inner body of the row-per-warp kernels: process one non-empty
/// row whose entries are already resident (CSR or DCSR row view).
template <class V>
void row_per_warp_body(Ctx& ctx, std::span<const index_t> cols, std::span<const V> vals,
                       const DenseMatrixT<V>& B, const DenseLayout& b_layout,
                       std::span<typename VTraits<V>::compute_t> c_row, index_t K,
                       std::vector<u64>& addr_scratch) {
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  const i64 cnt = static_cast<i64>(cols.size());
  // Per non-zero: broadcast load of (col_idx, val) + loop control; the
  // warp walks its row serially (dependent iterations).
  ctx.issue(InstrClass::kMemory, ctx.cfg.arch.warp_size, static_cast<u64>(cnt));
  ctx.issue(InstrClass::kControl, ctx.cfg.arch.warp_size, static_cast<u64>(cnt));
  ctx.counters.serial_iterations += static_cast<u64>(cnt);
  // Untiled row-per-warp: the heaviest row serializes one warp end to
  // end — nothing bounds the chain (unlike tiling, which cuts rows at
  // strip width).
  ctx.counters.observe_chain(static_cast<u64>(cnt));
  // Per non-zero, lanes sweep the K columns of B row c in 32-wide
  // waves: one load and one FMA per wave (the K%32 tail runs partially
  // active — the paper's row-per-warp remainder imbalance).  The issue
  // helpers are linear in their repeat count, so one call carrying
  // ×cnt books totals bit-identical to cnt per-non-zero calls.
  ctx.waves(InstrClass::kMemory, K, static_cast<u64>(cnt));
  ctx.waves(InstrClass::kFp, K, static_cast<u64>(cnt));
  addr_scratch.clear();
  for (i64 j = 0; j < cnt; ++j) addr_scratch.push_back(b_layout.addr(cols[j]));
  // The row's B-row fetches form one request run.
  ctx.mem.warp_load_run(addr_scratch, static_cast<i64>(K) * kVB);
  // Host FP sweep, cache-blocked over the B column dimension: every
  // non-zero of the row revisits its B row one L1-sized panel at a time
  // (see b_block_cols).  Per C element the contributions still land in
  // ascending-j order, so C is bit-identical to the unblocked sweep.
  const index_t bc = b_block_cols(kVB, K);
  for (index_t k0 = 0; k0 < K; k0 += bc) {
    const index_t kb = std::min<index_t>(bc, K - k0);
    for (i64 j = 0; j < cnt; ++j)
      axpy_row(vals[j], B.row(cols[j]).data() + k0, c_row.data() + k0, kb);
  }
  ctx.counters.flops += static_cast<u64>(2 * cnt * K);
}

}  // namespace

template <class V>
SpmmResult spmm_csr_row_warp(const SpmmOperandsT<V>& ops, const DenseMatrixT<V>& B,
                             const SpmmConfig& cfg) {
  using CT = typename VTraits<V>::compute_t;
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  const CsrT<V>& A = *ops.csr;
  const index_t K = B.cols();
  const i64 groups = (static_cast<i64>(A.rows) + 31) / 32;
  DenseMatrixT<CT> C(A.rows, K, CT{});

  ShardSet shards(cfg, groups, kRowGroupGrain);
  shards.run([&](int, ShardRange range, Ctx& ctx) {
    // Every shard replays the identical allocation sequence, so device
    // addresses (and channel/operand attribution) match the serial run.
    const CsrLayout a = CsrLayout::allocate(A, ctx.mem);
    const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
    const DenseLayout c = DenseLayout::allocate(A.rows, K, kVB, ctx.mem, "C");
    std::vector<u64> addr_scratch;
    for (i64 g = range.begin; g < range.end; ++g) {
      const index_t r0 = static_cast<index_t>(g) * 32;
      const index_t rows_here = std::min<index_t>(32, A.rows - r0);
      // The 32 warps of this block pull a contiguous row_ptr window; the
      // hardware coalesces it into one stream.
      ctx.waves(InstrClass::kMemory, rows_here + 1);
      ctx.mem.warp_load(a.row_ptr + static_cast<u64>(r0) * kIndexBytes,
                        static_cast<i64>(rows_here + 1) * kIndexBytes);
      for (index_t r = r0; r < r0 + rows_here; ++r) {
        // One warp visits every row — empty or not — and pays the
        // row_ptr dependent-load chain before it can decide anything.
        ++ctx.counters.warp_visits;
        if (A.row_empty(r)) {
          // One active thread discovers the empty row and exits — the
          // divergence cost CSR pays per empty row (Fig. 6 ②).
          ctx.issue(InstrClass::kControl, 1);
          continue;
        }
        const i64 cnt = A.row_nnz(r);
        // Row entries stream in coalesced (values and column indices).
        ctx.mem.warp_load(a.col_idx + static_cast<u64>(A.row_ptr[r]) * kIndexBytes,
                          cnt * kIndexBytes);
        ctx.mem.warp_load(a.val + static_cast<u64>(A.row_ptr[r]) * kVB, cnt * kVB);
        row_per_warp_body<V>(ctx, A.row_cols(r), A.row_vals(r), B, b, C.row(r), K,
                             addr_scratch);
        // Write the finished C row once (C-stationary: single update).
        ctx.waves(InstrClass::kMemory, K);
        ctx.mem.warp_store(c.addr(r), static_cast<i64>(K) * kVB);
      }
    }
  });
  Ctx& merged = shards.merge();
  merged.counters.kernel_launches = 1;
  return finish<V>(merged, std::move(C));
}

template <class V>
SpmmResult spmm_csr_row_thread(const SpmmOperandsT<V>& ops, const DenseMatrixT<V>& B,
                               const SpmmConfig& cfg) {
  using CT = typename VTraits<V>::compute_t;
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  const CsrT<V>& A = *ops.csr;
  const index_t K = B.cols();
  const i64 groups = (static_cast<i64>(A.rows) + 31) / 32;
  DenseMatrixT<CT> C(A.rows, K, CT{});

  ShardSet shards(cfg, groups, kRowGroupGrain);
  shards.run([&](int, ShardRange range, Ctx& ctx) {
    const CsrLayout a = CsrLayout::allocate(A, ctx.mem);
    const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
    const DenseLayout c = DenseLayout::allocate(A.rows, K, kVB, ctx.mem, "C");
    std::vector<u64> idx_addrs, val_addrs, b_addrs;
    for (i64 g = range.begin; g < range.end; ++g) {
      const index_t r0 = static_cast<index_t>(g) * 32;
      const index_t rows_here = std::min<index_t>(32, A.rows - r0);
      ctx.waves(InstrClass::kMemory, rows_here + 1);
      ctx.mem.warp_load(a.row_ptr + static_cast<u64>(r0) * kIndexBytes,
                        static_cast<i64>(rows_here + 1) * kIndexBytes);

      // Warp latency is set by the longest row in the 32-row group — the
      // nnz-variation imbalance that makes row-per-thread the weaker
      // choice (Sec. 3.1.1).
      i64 max_cnt = 0;
      for (index_t r = r0; r < r0 + rows_here; ++r)
        max_cnt = std::max(max_cnt, A.row_nnz(r));
      ++ctx.counters.warp_visits;
      ctx.counters.serial_iterations += static_cast<u64>(max_cnt);
      // Row-per-thread serializes the whole K sweep per non-zero inside
      // one thread (modest ILP assumed), so skewed rows hurt even more.
      ctx.counters.observe_chain(static_cast<u64>(max_cnt) *
                                 static_cast<u64>((K + 7) / 8));
      for (i64 it = 0; it < max_cnt; ++it) {
        int active = 0;
        idx_addrs.clear();
        val_addrs.clear();
        b_addrs.clear();
        for (index_t r = r0; r < r0 + rows_here; ++r) {
          if (A.row_nnz(r) <= it) continue;
          ++active;
          const index_t j = A.row_ptr[r] + static_cast<index_t>(it);
          const index_t col = A.col_idx[j];
          const V v = A.val[j];
          // Uncoalesced per-lane loads: each lane pulls its own sector
          // for 4 useful bytes of col_idx/val, and walks its own B row.
          // The lanes of one iteration issue together — three runs.
          idx_addrs.push_back(a.col_idx + static_cast<u64>(j) * kIndexBytes);
          val_addrs.push_back(a.val + static_cast<u64>(j) * kVB);
          b_addrs.push_back(b.addr(col));
          axpy_row(v, B.row(col).data(), C.row(r).data(), K);
        }
        ctx.counters.flops += static_cast<u64>(2 * K) * static_cast<u64>(active);
        ctx.mem.warp_load_run(idx_addrs, kIndexBytes);
        ctx.mem.warp_load_run(val_addrs, kVB);
        ctx.mem.warp_load_run(b_addrs, static_cast<i64>(K) * kVB);
        ctx.issue(InstrClass::kMemory, active, 3);
        ctx.issue(InstrClass::kControl, active);
        ctx.issue(InstrClass::kMemory, active, static_cast<u64>(K));  // B element loads
        ctx.issue(InstrClass::kFp, active, static_cast<u64>(K));
      }
      // Each thread writes its (non-empty) C row; rows are uncoalesced
      // across lanes.
      int writers = 0;
      for (index_t r = r0; r < r0 + rows_here; ++r) {
        if (A.row_empty(r)) continue;
        ++writers;
        ctx.mem.warp_store(c.addr(r), static_cast<i64>(K) * kVB);
      }
      ctx.issue(InstrClass::kMemory, writers, static_cast<u64>(K));
    }
  });
  Ctx& merged = shards.merge();
  merged.counters.kernel_launches = 1;
  return finish<V>(merged, std::move(C));
}

template <class V>
SpmmResult spmm_dcsr_c_stationary(const SpmmOperandsT<V>& ops, const DenseMatrixT<V>& B,
                                  const SpmmConfig& cfg) {
  using CT = typename VTraits<V>::compute_t;
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  const CsrT<V>& A = *ops.csr;
  // Offline densification is cheap and sequential (paper Sec. 5.2
  // includes untiled DCSR in the realistic baseline set): one streaming
  // pass over CSR, one write of the DCSR arrays.  Planned callers carry
  // the densified form; the legacy path converts one-shot.
  std::optional<DcsrT<V>> local;
  const DcsrT<V>& D = ops.dcsr ? *ops.dcsr : local.emplace(dcsr_from_csr(A));

  const index_t K = B.cols();
  const i64 nrows = D.nnz_rows();
  const i64 groups = (nrows + 31) / 32;
  DenseMatrixT<CT> C(A.rows, K, CT{});

  ShardSet shards(cfg, groups, kRowGroupGrain);
  shards.run([&](int, ShardRange range, Ctx& ctx) {
    const DcsrLayout a = DcsrLayout::allocate(D, ctx.mem);
    const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
    const DenseLayout c = DenseLayout::allocate(A.rows, K, kVB, ctx.mem, "C");
    std::vector<u64> addr_scratch;
    for (i64 gr = range.begin; gr < range.end; ++gr) {
      const i64 g0 = gr * 32;
      const i64 rows_here = std::min<i64>(32, nrows - g0);
      // Dense-row window: row_idx + row_ptr, both nnz_rows-sized — the
      // DCSR metadata saving vs a full rows+1 row_ptr.
      ctx.waves(InstrClass::kMemory, rows_here);
      ctx.mem.warp_load(a.row_idx + static_cast<u64>(g0) * kIndexBytes,
                        rows_here * kIndexBytes);
      ctx.waves(InstrClass::kMemory, rows_here + 1);
      ctx.mem.warp_load(a.row_ptr + static_cast<u64>(g0) * kIndexBytes,
                        (rows_here + 1) * kIndexBytes);
      for (i64 g = g0; g < g0 + rows_here; ++g) {
        // Warps visit only the densified (non-empty) rows.
        ++ctx.counters.warp_visits;
        const index_t r = D.dense_row(g);
        const i64 cnt = D.dense_row_nnz(g);
        ctx.mem.warp_load(a.col_idx + static_cast<u64>(D.row_ptr[g]) * kIndexBytes,
                          cnt * kIndexBytes);
        ctx.mem.warp_load(a.val + static_cast<u64>(D.row_ptr[g]) * kVB, cnt * kVB);
        row_per_warp_body<V>(ctx, D.dense_row_cols(g), D.dense_row_vals(g), B, b,
                             C.row(r), K, addr_scratch);
        ctx.waves(InstrClass::kMemory, K);
        ctx.mem.warp_store(c.addr(r), static_cast<i64>(K) * kVB);
      }
    }
  });
  Ctx& merged = shards.merge();
  merged.counters.kernel_launches = 1;

  // Densification prep: stream CSR in, DCSR out, at full DRAM rate.
  const Footprint fc = footprint(A);
  const Footprint fd = footprint(D);
  const double prep_ns = static_cast<double>(fc.total() + fd.total()) /
                         cfg.arch.total_bandwidth_gbps();
  return finish<V>(merged, std::move(C), 1.0, {}, 0.0, prep_ns);
}

#define NMDT_INSTANTIATE_C_STATIONARY(V)                                              \
  template SpmmResult spmm_csr_row_warp(const SpmmOperandsT<V>&,                      \
                                        const DenseMatrixT<V>&, const SpmmConfig&);   \
  template SpmmResult spmm_csr_row_thread(const SpmmOperandsT<V>&,                    \
                                          const DenseMatrixT<V>&, const SpmmConfig&); \
  template SpmmResult spmm_dcsr_c_stationary(const SpmmOperandsT<V>&,                 \
                                             const DenseMatrixT<V>&, const SpmmConfig&)

NMDT_INSTANTIATE_C_STATIONARY(float);
NMDT_INSTANTIATE_C_STATIONARY(double);
NMDT_INSTANTIATE_C_STATIONARY(bf16_t);

#undef NMDT_INSTANTIATE_C_STATIONARY

}  // namespace nmdt::detail
