// B-stationary SpMM kernels (paper Sec. 3.1.1): a 64×64 tile of B lives
// in shared memory; vertical strips of A stream through it; partial C
// contributions are accumulated with atomics (charged 2× at the memory
// system, Table 1).  B-tile traversal order is configurable
// (Sec. 3.1.3): column-major (default, C partials stay LLC-hot) or
// row-major (A strip stays LLC-hot, C thrashes).
//
// Three variants share the loop structure and differ in where the A
// tiles come from:
//   * tiled CSR      — offline tiles, full per-tile row_ptr scans (the
//                      Fig. 6 strawman: redundant row pointers + one
//                      active lane skipping each empty row),
//   * tiled DCSR     — offline tiles, dense row segments only, but the
//                      larger tiled-DCSR footprint is re-read from DRAM
//                      once per B tile column (Fig. 9's bandwidth tax),
//   * online DCSR    — tiles produced on demand by the near-memory
//                      CSC→DCSR engines and delivered over the crossbar;
//                      DRAM sees only the compact CSC stream.
#include <algorithm>
#include <optional>

#include "kernels/detail.hpp"

namespace nmdt::detail {

namespace {

/// Per-strip nnz (to skip strips with no work — knowable from col_ptr /
/// tile metadata in every variant).
std::vector<i64> strip_nnz_counts(const Csr& A, const TilingSpec& spec) {
  std::vector<i64> nnz(static_cast<usize>(spec.num_strips(A.cols)), 0);
  for (index_t c : A.col_idx) ++nnz[c / spec.strip_width];
  return nnz;
}

/// The (b_col_begin, strip) visit sequence for the configured traversal
/// order (Sec. 3.1.3).
std::vector<std::pair<index_t, index_t>> visit_order(index_t K, index_t bt,
                                                     index_t num_strips,
                                                     TraversalOrder order) {
  std::vector<std::pair<index_t, index_t>> out;
  if (order == TraversalOrder::kColumnMajor) {
    for (index_t bc = 0; bc < K; bc += bt) {
      for (index_t s = 0; s < num_strips; ++s) out.emplace_back(bc, s);
    }
  } else {
    for (index_t s = 0; s < num_strips; ++s) {
      for (index_t bc = 0; bc < K; bc += bt) out.emplace_back(bc, s);
    }
  }
  return out;
}

/// SM-side processing of one DCSR tile whose data is already on chip
/// (shared memory): per dense row, stream the entries against the B
/// tile and atomically add the partial C row.
void process_dcsr_tile(Ctx& ctx, const DcsrTile& tile, const DenseMatrix& B,
                       DenseMatrix& C, const DenseLayout& c_layout, index_t b_col_begin,
                       index_t tile_cols) {
  for (i64 g = 0; g < tile.body.nnz_rows(); ++g) {
    const index_t grow = tile.row_begin + tile.body.dense_row(g);
    const auto cols = tile.body.dense_row_cols(g);
    const auto vals = tile.body.dense_row_vals(g);
    ctx.issue(InstrClass::kControl, ctx.cfg.arch.warp_size);
    ++ctx.counters.warp_visits;
    ctx.counters.serial_iterations += cols.size();
    ctx.counters.observe_chain(cols.size());  // bounded by strip width
    for (usize j = 0; j < cols.size(); ++j) {
      const index_t gcol = tile.col_begin + cols[j];
      const value_t a = vals[j];
      // Broadcast entry read + shared-memory B row sweep + FMA waves.
      ctx.issue(InstrClass::kMemory, ctx.cfg.arch.warp_size);
      ctx.waves(InstrClass::kMemory, tile_cols);
      ctx.waves(InstrClass::kFp, tile_cols);
      auto c_row = C.row(grow);
      const auto b_row = B.row(gcol);
      for (index_t k = 0; k < tile_cols; ++k) {
        c_row[b_col_begin + k] += a * b_row[b_col_begin + k];
      }
      ctx.counters.flops += static_cast<u64>(2 * tile_cols);
    }
    // Partial-sum accumulation: atomicAdd of the tile_cols-wide C row
    // segment (other SMs may be contributing to the same C tile).
    ctx.waves(InstrClass::kMemory, tile_cols);
    ctx.mem.warp_atomic(c_layout.addr(grow, b_col_begin),
                        static_cast<i64>(tile_cols) * kValueBytes);
    ++ctx.counters.atomic_updates;
  }
}

/// Offline preprocessing cost of building a tiled format: stream the
/// CSR source in and scatter the tiled output.  Scatter writes land at
/// sector granularity, modelled as a 4× write penalty — this is the
/// "non-trivial transformation cost" of Sec. 3.3 that online conversion
/// eliminates.
double offline_tiling_cost_ns(const Footprint& src, const Footprint& dst,
                              const ArchConfig& arch) {
  constexpr double kScatterPenalty = 4.0;
  return (static_cast<double>(src.total()) +
          static_cast<double>(dst.total()) * kScatterPenalty) /
         arch.total_bandwidth_gbps();
}

/// Per-tile device offsets of an offline tiled format stored as two
/// concatenated blobs (metadata words, entry pairs).
struct TileOffsets {
  std::vector<std::vector<i64>> meta;     ///< [strip][tile] word offset
  std::vector<std::vector<i64>> entries;  ///< [strip][tile] entry offset
  i64 total_meta_words = 0;
  i64 total_entries = 0;
};

template <typename Tiled, typename MetaWordsFn>
TileOffsets compute_offsets(const Tiled& tiled, MetaWordsFn&& meta_words_of) {
  TileOffsets off;
  off.meta.resize(tiled.strips.size());
  off.entries.resize(tiled.strips.size());
  for (usize s = 0; s < tiled.strips.size(); ++s) {
    off.meta[s].reserve(tiled.strips[s].size());
    off.entries[s].reserve(tiled.strips[s].size());
    for (const auto& tile : tiled.strips[s]) {
      off.meta[s].push_back(off.total_meta_words);
      off.entries[s].push_back(off.total_entries);
      off.total_meta_words += meta_words_of(tile);
      off.total_entries += tile.nnz();
    }
  }
  return off;
}

}  // namespace

SpmmResult spmm_tiled_csr_b_stationary(const SpmmOperands& ops, const DenseMatrix& B,
                                       const SpmmConfig& cfg) {
  const Csr& A = *ops.csr;
  const TilingSpec& spec = cfg.tiling;
  std::optional<TiledCsr> local;
  const TiledCsr& tiled = (ops.tiled_csr && ops.tiled_csr->spec == spec)
                              ? *ops.tiled_csr
                              : local.emplace(tiled_csr_from_csr(A, spec));
  const std::vector<i64> strip_nnz = strip_nnz_counts(A, spec);
  const TileOffsets off = compute_offsets(
      tiled, [](const CsrTile& t) { return static_cast<i64>(t.body.row_ptr.size()); });

  Ctx ctx(cfg);
  const index_t K = B.cols();
  const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
  const DenseLayout c = DenseLayout::allocate(DenseMatrix(A.rows, K), ctx.mem, "C");
  const u64 rowptr_base =
      ctx.mem.allocate(off.total_meta_words * kIndexBytes, "A.tiles.row_ptr");
  const u64 entry_base =
      ctx.mem.allocate(off.total_entries * (kIndexBytes + kValueBytes), "A.tiles.entries");

  DenseMatrix C(A.rows, K, 0.0f);
  const index_t bt = spec.strip_width;  // B tile is bt×bt
  ctx.counters.kernel_launches = static_cast<u64>((K + bt - 1) / bt);

  for (const auto& [bc, s] : visit_order(K, bt, tiled.num_strips(), cfg.traversal)) {
    if (strip_nnz[s] == 0) continue;
    const index_t tile_cols = std::min<index_t>(bt, K - bc);
    const index_t width = std::min<index_t>(spec.strip_width, A.cols - s * spec.strip_width);
    load_b_tile(ctx, b, s * spec.strip_width, width, bc, tile_cols);

    for (usize t = 0; t < tiled.strips[s].size(); ++t) {
      const CsrTile& tile = tiled.strips[s][t];
      // Full row_ptr scan: (tile_rows+1) pointers regardless of how
      // many rows are empty — the redundant-metadata pathology.  The
      // scan itself costs warp visits proportional to tile height.
      ctx.counters.warp_visits += 1 + static_cast<u64>((tile.body.rows + 31) / 32);
      ctx.waves(InstrClass::kMemory, tile.body.rows + 1);
      ctx.mem.warp_load(rowptr_base + static_cast<u64>(off.meta[s][t]) * kIndexBytes,
                        static_cast<i64>(tile.body.row_ptr.size()) * kIndexBytes);
      if (tile.nnz() > 0) {
        ctx.mem.warp_load(
            entry_base + static_cast<u64>(off.entries[s][t]) * (kIndexBytes + kValueBytes),
            tile.nnz() * (kIndexBytes + kValueBytes));
      }

      for (index_t lr = 0; lr < tile.body.rows; ++lr) {
        const i64 cnt = tile.body.row_nnz(lr);
        if (cnt == 0) {
          // One active lane discovers the empty row (Fig. 6 ②).
          ctx.issue(InstrClass::kControl, 1);
          continue;
        }
        const index_t grow = tile.row_begin + lr;
        ctx.issue(InstrClass::kControl, ctx.cfg.arch.warp_size);
        ++ctx.counters.warp_visits;
        ctx.counters.serial_iterations += static_cast<u64>(cnt);
        ctx.counters.observe_chain(static_cast<u64>(cnt));  // ≤ strip width
        for (index_t j = tile.body.row_ptr[lr]; j < tile.body.row_ptr[lr + 1]; ++j) {
          const index_t gcol = tile.col_begin + tile.body.col_idx[j];
          const value_t a = tile.body.val[j];
          ctx.issue(InstrClass::kMemory, ctx.cfg.arch.warp_size);
          ctx.waves(InstrClass::kMemory, tile_cols);
          ctx.waves(InstrClass::kFp, tile_cols);
          auto c_row = C.row(grow);
          const auto b_row = B.row(gcol);
          for (index_t k = 0; k < tile_cols; ++k) c_row[bc + k] += a * b_row[bc + k];
          ctx.counters.flops += static_cast<u64>(2 * tile_cols);
        }
        ctx.waves(InstrClass::kMemory, tile_cols);
        ctx.mem.warp_atomic(c.addr(grow, bc), static_cast<i64>(tile_cols) * kValueBytes);
        ++ctx.counters.atomic_updates;
      }
    }
  }

  const double prep = offline_tiling_cost_ns(footprint(A), footprint(tiled), cfg.arch);
  return finish(ctx, std::move(C), 1.0, {}, 0.0, prep);
}

SpmmResult spmm_tiled_dcsr_b_stationary(const SpmmOperands& ops, const DenseMatrix& B,
                                        const SpmmConfig& cfg) {
  const Csr& A = *ops.csr;
  const TilingSpec& spec = cfg.tiling;
  std::optional<TiledDcsr> local;
  const TiledDcsr& tiled = (ops.tiled_dcsr && ops.tiled_dcsr->spec == spec)
                               ? *ops.tiled_dcsr
                               : local.emplace(tiled_dcsr_from_csr(A, spec));
  const std::vector<i64> strip_nnz = strip_nnz_counts(A, spec);
  const TileOffsets off = compute_offsets(tiled, [](const DcsrTile& t) {
    return static_cast<i64>(t.body.row_idx.size() + t.body.row_ptr.size());
  });

  Ctx ctx(cfg);
  const index_t K = B.cols();
  const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
  const DenseLayout c = DenseLayout::allocate(DenseMatrix(A.rows, K), ctx.mem, "C");
  const u64 meta_base = ctx.mem.allocate(off.total_meta_words * kIndexBytes, "A.tiles.meta");
  const u64 entry_base =
      ctx.mem.allocate(off.total_entries * (kIndexBytes + kValueBytes), "A.tiles.entries");

  DenseMatrix C(A.rows, K, 0.0f);
  const index_t bt = spec.strip_width;
  ctx.counters.kernel_launches = static_cast<u64>((K + bt - 1) / bt);

  for (const auto& [bc, s] : visit_order(K, bt, tiled.num_strips(), cfg.traversal)) {
    if (strip_nnz[s] == 0) continue;
    const index_t tile_cols = std::min<index_t>(bt, K - bc);
    const index_t width = std::min<index_t>(spec.strip_width, A.cols - s * spec.strip_width);
    load_b_tile(ctx, b, s * spec.strip_width, width, bc, tile_cols);

    for (usize t = 0; t < tiled.strips[s].size(); ++t) {
      const DcsrTile& tile = tiled.strips[s][t];
      const i64 meta_words =
          static_cast<i64>(tile.body.row_idx.size() + tile.body.row_ptr.size());
      // DCSR metadata: proportional to non-empty rows, not tile height.
      ++ctx.counters.warp_visits;
      ctx.waves(InstrClass::kMemory, meta_words);
      ctx.mem.warp_load(meta_base + static_cast<u64>(off.meta[s][t]) * kIndexBytes,
                        meta_words * kIndexBytes);
      if (tile.nnz() > 0) {
        ctx.mem.warp_load(
            entry_base + static_cast<u64>(off.entries[s][t]) * (kIndexBytes + kValueBytes),
            tile.nnz() * (kIndexBytes + kValueBytes));
      }
      process_dcsr_tile(ctx, tile, B, C, c, bc, tile_cols);
    }
  }

  const double prep = offline_tiling_cost_ns(footprint(A), footprint(tiled), cfg.arch);
  return finish(ctx, std::move(C), 1.0, {}, 0.0, prep);
}

SpmmResult spmm_tiled_dcsr_online(const SpmmOperands& ops, const DenseMatrix& B,
                                  const SpmmConfig& cfg) {
  const Csr& A = *ops.csr;
  const TilingSpec& spec = cfg.tiling;
  std::optional<Csc> local;
  const Csc& csc = ops.csc ? *ops.csc : local.emplace(csc_from_csr(A));

  Ctx ctx(cfg);
  const index_t K = B.cols();
  const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
  const DenseLayout c = DenseLayout::allocate(DenseMatrix(A.rows, K), ctx.mem, "C");
  const CscDeviceLayout a = CscDeviceLayout::allocate(csc, ctx.mem);

  // One conversion engine per pseudo channel; tiles route to the
  // channel that owns their data under the configured placement.
  const StripPlacement placement(cfg.placement, cfg.arch.pseudo_channels);
  std::vector<ConversionEngine> engines;
  engines.reserve(static_cast<usize>(cfg.arch.pseudo_channels));
  for (int ch = 0; ch < cfg.arch.pseudo_channels; ++ch) engines.emplace_back(cfg.engine_hw);

  DenseMatrix C(A.rows, K, 0.0f);
  const index_t bt = spec.strip_width;
  ctx.counters.kernel_launches = static_cast<u64>((K + bt - 1) / bt);
  const index_t num_strips = spec.num_strips(A.cols);

  // Engine occupancy is phase-structured: the SMs sweep one strip's
  // tiles concurrently (that is what creates the Fig. 17 camping
  // problem), so per strip phase the busiest engine bounds conversion
  // time; phases accumulate.
  double engine_busy_ns = 0.0;
  auto engine_beats = [&](int ch) {
    const EngineStats& st = engines[static_cast<usize>(ch)].stats();
    return st.steps + st.requests;
  };
  std::vector<u64> beats_before(static_cast<usize>(cfg.arch.pseudo_channels));

  for (const auto& [bc, s] : visit_order(K, bt, num_strips, cfg.traversal)) {
    const index_t tile_cols = std::min<index_t>(bt, K - bc);
    const index_t col_begin = s * spec.strip_width;
    const index_t col_end = std::min<index_t>(col_begin + spec.strip_width, A.cols);
    // Strip emptiness is one col_ptr subtraction away in CSC.
    if (csc.col_ptr[col_end] == csc.col_ptr[col_begin]) continue;
    for (int ch = 0; ch < cfg.arch.pseudo_channels; ++ch) {
      beats_before[static_cast<usize>(ch)] = engine_beats(ch);
    }
    // CSC knows which strip columns are empty (one col_ptr
    // subtraction), so the online kernel loads only the B rows that
    // can be touched — the n_nnzcol·K "single fetch" of Table 1 that
    // row-major offline tiles cannot achieve (Sec. 3.1.4).
    for (index_t col = col_begin; col < col_end; ++col) {
      if (csc.col_ptr[col + 1] == csc.col_ptr[col]) continue;
      ctx.waves(InstrClass::kMemory, tile_cols);
      ctx.mem.warp_load(b.addr(col, bc), static_cast<i64>(tile_cols) * kValueBytes);
    }

    StripCursor cursor(csc, s, spec);
    for (index_t row_start = 0, t = 0; row_start < A.rows;
         row_start += spec.tile_height, ++t) {
      const int ch = placement.channel_for(s, t);
      // GetDCSRTile intrinsic: the request message to the conversion
      // unit (Fig. 11); requests stream ahead of consumption, so they
      // pipeline rather than serializing the warp.
      ctx.issue(InstrClass::kMemory, ctx.cfg.arch.warp_size);
      const DcsrTile tile = engines[static_cast<usize>(ch)].convert_tile(
          csc, cursor, row_start, spec, &ctx.mem, &a, ch);
      if (tile.nnz() == 0) continue;
      process_dcsr_tile(ctx, tile, B, C, c, bc, tile_cols);
    }
    u64 phase_max = 0;
    for (int ch = 0; ch < cfg.arch.pseudo_channels; ++ch) {
      phase_max =
          std::max(phase_max, engine_beats(ch) - beats_before[static_cast<usize>(ch)]);
    }
    engine_busy_ns += static_cast<double>(phase_max) * cfg.engine_hw.cycle_ns_sp;
  }

  EngineStats total_engine;
  for (const auto& e : engines) total_engine += e.stats();
  return finish(ctx, std::move(C), 1.0, total_engine, engine_busy_ns, 0.0);
}

}  // namespace nmdt::detail
