// B-stationary SpMM kernels (paper Sec. 3.1.1): a 64×64 tile of B lives
// in shared memory; vertical strips of A stream through it; partial C
// contributions are accumulated with atomics (charged 2× at the memory
// system, Table 1).  B-tile traversal order is configurable
// (Sec. 3.1.3): column-major (default, C partials stay LLC-hot) or
// row-major (A strip stays LLC-hot, C thrashes).
//
// Three variants share the loop structure and differ in where the A
// tiles come from:
//   * tiled CSR      — offline tiles, full per-tile row_ptr scans (the
//                      Fig. 6 strawman: redundant row pointers + one
//                      active lane skipping each empty row),
//   * tiled DCSR     — offline tiles, dense row segments only, but the
//                      larger tiled-DCSR footprint is re-read from DRAM
//                      once per B tile column (Fig. 9's bandwidth tax),
//   * online DCSR    — tiles produced on demand by the near-memory
//                      CSC→DCSR engines and delivered over the crossbar;
//                      DRAM sees only the compact CSC stream.
//
// Sharding: the strip axis splits across shards (kStripGrain strips
// each); every strip contributes to every C row, so each shard
// accumulates into a private PartialC buffer, reduced in shard-index
// order.  Per C element the contribution order is strips-ascending
// under either traversal, so the reduced output is bit-identical to the
// serial sweep.
#include <algorithm>
#include <optional>

#include "kernels/detail.hpp"
#include "transform/arena.hpp"

namespace nmdt::detail {

namespace {

/// SM-side processing of one DCSR tile whose data is already on chip
/// (shared memory): per dense row, stream the entries against the B
/// tile and atomically add the partial C row.  The per-row atomics form
/// one request run issued at tile end.
template <class V>
void process_dcsr_tile(Ctx& ctx, const DcsrTileT<V>& tile, const DenseMatrixT<V>& B,
                       DenseMatrixT<typename VTraits<V>::compute_t>& C,
                       const DenseLayout& c_layout, index_t b_col_begin,
                       index_t tile_cols, std::vector<u64>& atomic_addrs) {
  using CT = typename VTraits<V>::compute_t;
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  atomic_addrs.clear();
  for (i64 g = 0; g < tile.body.nnz_rows(); ++g) {
    const index_t grow = tile.row_begin + tile.body.dense_row(g);
    const auto cols = tile.body.dense_row_cols(g);
    const auto vals = tile.body.dense_row_vals(g);
    ctx.issue(InstrClass::kControl, ctx.cfg.arch.warp_size);
    ++ctx.counters.warp_visits;
    ctx.counters.serial_iterations += cols.size();
    ctx.counters.observe_chain(cols.size());  // bounded by strip width
    CT* NMDT_RESTRICT c_row = C.row(grow).data() + b_col_begin;
    // Broadcast entry read + shared-memory B row sweep + FMA waves, one
    // ×cnt issue call per class (linear identity with the per-non-zero
    // calls).  The B sweep is bounded by the tile width, so the tiled
    // kernels are already cache-blocked by construction.
    const u64 cnt = static_cast<u64>(cols.size());
    ctx.issue(InstrClass::kMemory, ctx.cfg.arch.warp_size, cnt);
    ctx.waves(InstrClass::kMemory, tile_cols, cnt);
    ctx.waves(InstrClass::kFp, tile_cols, cnt);
    ctx.counters.flops += static_cast<u64>(2 * tile_cols) * cnt;
    for (usize j = 0; j < cols.size(); ++j) {
      const index_t gcol = tile.col_begin + cols[j];
      axpy_row(vals[j], B.row(gcol).data() + b_col_begin, c_row, tile_cols);
    }
    // Partial-sum accumulation: atomicAdd of the tile_cols-wide C row
    // segment (other SMs may be contributing to the same C tile).
    ctx.waves(InstrClass::kMemory, tile_cols);
    atomic_addrs.push_back(c_layout.addr(grow, b_col_begin));
    ++ctx.counters.atomic_updates;
  }
  ctx.mem.warp_atomic_run(atomic_addrs, static_cast<i64>(tile_cols) * kVB);
}

/// Offline preprocessing cost of building a tiled format: stream the
/// CSR source in and scatter the tiled output.  Scatter writes land at
/// sector granularity, modelled as a 4× write penalty — this is the
/// "non-trivial transformation cost" of Sec. 3.3 that online conversion
/// eliminates.
double offline_tiling_cost_ns(const Footprint& src, const Footprint& dst,
                              const ArchConfig& arch) {
  constexpr double kScatterPenalty = 4.0;
  return (static_cast<double>(src.total()) +
          static_cast<double>(dst.total()) * kScatterPenalty) /
         arch.total_bandwidth_gbps();
}

/// Per-tile device offsets of an offline tiled format stored as two
/// concatenated blobs (metadata words, entry pairs).
struct TileOffsets {
  std::vector<std::vector<i64>> meta;     ///< [strip][tile] word offset
  std::vector<std::vector<i64>> entries;  ///< [strip][tile] entry offset
  i64 total_meta_words = 0;
  i64 total_entries = 0;
};

template <typename Tiled, typename MetaWordsFn>
TileOffsets compute_offsets(const Tiled& tiled, MetaWordsFn&& meta_words_of) {
  TileOffsets off;
  off.meta.resize(tiled.strips.size());
  off.entries.resize(tiled.strips.size());
  for (usize s = 0; s < tiled.strips.size(); ++s) {
    off.meta[s].reserve(tiled.strips[s].size());
    off.entries[s].reserve(tiled.strips[s].size());
    for (const auto& tile : tiled.strips[s]) {
      off.meta[s].push_back(off.total_meta_words);
      off.entries[s].push_back(off.total_entries);
      off.total_meta_words += meta_words_of(tile);
      off.total_entries += tile.nnz();
    }
  }
  return off;
}

/// Strip-skip table: take the plan's if it was built under this tiling,
/// else compute locally (legacy path).
template <class V>
const StripNnz& resolve_strip_nnz(const SpmmOperandsT<V>& ops, const CsrT<V>& A,
                                  const TilingSpec& spec, std::optional<StripNnz>& local) {
  if (ops.strip_nnz && ops.strip_nnz->spec == spec) return *ops.strip_nnz;
  return local.emplace(strip_nnz_of(A, spec));
}

}  // namespace

template <class V>
SpmmResult spmm_tiled_csr_b_stationary(const SpmmOperandsT<V>& ops,
                                       const DenseMatrixT<V>& B, const SpmmConfig& cfg) {
  using CT = typename VTraits<V>::compute_t;
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  const CsrT<V>& A = *ops.csr;
  const TilingSpec& spec = cfg.tiling;
  std::optional<TiledCsrT<V>> local;
  const TiledCsrT<V>& tiled = (ops.tiled_csr && ops.tiled_csr->spec == spec)
                                  ? *ops.tiled_csr
                                  : local.emplace(tiled_csr_from_csr(A, spec));
  std::optional<StripNnz> local_nnz;
  const StripNnz& strip_nnz = resolve_strip_nnz(ops, A, spec, local_nnz);
  const TileOffsets off = compute_offsets(tiled, [](const CsrTileT<V>& t) {
    return static_cast<i64>(t.body.row_ptr.size());
  });

  const index_t K = B.cols();
  const index_t bt = spec.strip_width;  // B tile is bt×bt

  ShardSet shards(cfg, tiled.num_strips(), kStripGrain);
  PartialCT<CT> partial(A.rows, K, shards.size());
  shards.run([&](int sh, ShardRange range, Ctx& ctx) {
    const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
    const DenseLayout c = DenseLayout::allocate(A.rows, K, kVB, ctx.mem, "C");
    const u64 rowptr_base =
        ctx.mem.allocate(off.total_meta_words * kIndexBytes, "A.tiles.row_ptr");
    const u64 entry_base =
        ctx.mem.allocate(off.total_entries * (kIndexBytes + kVB), "A.tiles.entries");
    DenseMatrixT<CT>& C = partial.shard(sh);
    std::vector<u64> b_addrs, atomic_addrs;

    const VisitOrder visits(K, bt, static_cast<index_t>(range.begin),
                            static_cast<index_t>(range.end), cfg.traversal);
    for (i64 v = 0; v < visits.size(); ++v) {
      const auto [bc, s] = visits[v];
      if (strip_nnz.counts[static_cast<usize>(s)] == 0) continue;
      const index_t tile_cols = std::min<index_t>(bt, K - bc);
      const index_t width =
          std::min<index_t>(spec.strip_width, A.cols - s * spec.strip_width);
      load_b_tile(ctx, b, s * spec.strip_width, width, bc, tile_cols, b_addrs);

      for (usize t = 0; t < tiled.strips[s].size(); ++t) {
        const CsrTileT<V>& tile = tiled.strips[s][t];
        // Full row_ptr scan: (tile_rows+1) pointers regardless of how
        // many rows are empty — the redundant-metadata pathology.  The
        // scan itself costs warp visits proportional to tile height.
        ctx.counters.warp_visits += 1 + static_cast<u64>((tile.body.rows + 31) / 32);
        ctx.waves(InstrClass::kMemory, tile.body.rows + 1);
        ctx.mem.warp_load(rowptr_base + static_cast<u64>(off.meta[s][t]) * kIndexBytes,
                          static_cast<i64>(tile.body.row_ptr.size()) * kIndexBytes);
        if (tile.nnz() > 0) {
          ctx.mem.warp_load(
              entry_base + static_cast<u64>(off.entries[s][t]) * (kIndexBytes + kVB),
              tile.nnz() * (kIndexBytes + kVB));
        }

        atomic_addrs.clear();
        for (index_t lr = 0; lr < tile.body.rows; ++lr) {
          const i64 cnt = tile.body.row_nnz(lr);
          if (cnt == 0) {
            // One active lane discovers the empty row (Fig. 6 ②).
            ctx.issue(InstrClass::kControl, 1);
            continue;
          }
          const index_t grow = tile.row_begin + lr;
          ctx.issue(InstrClass::kControl, ctx.cfg.arch.warp_size);
          ++ctx.counters.warp_visits;
          ctx.counters.serial_iterations += static_cast<u64>(cnt);
          ctx.counters.observe_chain(static_cast<u64>(cnt));  // ≤ strip width
          CT* NMDT_RESTRICT c_row = C.row(grow).data() + bc;
          ctx.issue(InstrClass::kMemory, ctx.cfg.arch.warp_size, static_cast<u64>(cnt));
          ctx.waves(InstrClass::kMemory, tile_cols, static_cast<u64>(cnt));
          ctx.waves(InstrClass::kFp, tile_cols, static_cast<u64>(cnt));
          ctx.counters.flops += static_cast<u64>(2 * cnt * tile_cols);
          for (index_t j = tile.body.row_ptr[lr]; j < tile.body.row_ptr[lr + 1]; ++j) {
            const index_t gcol = tile.col_begin + tile.body.col_idx[j];
            axpy_row(tile.body.val[j], B.row(gcol).data() + bc, c_row, tile_cols);
          }
          ctx.waves(InstrClass::kMemory, tile_cols);
          atomic_addrs.push_back(c.addr(grow, bc));
          ++ctx.counters.atomic_updates;
        }
        ctx.mem.warp_atomic_run(atomic_addrs, static_cast<i64>(tile_cols) * kVB);
      }
    }
  });
  Ctx& merged = shards.merge();
  merged.counters.kernel_launches = static_cast<u64>((K + bt - 1) / bt);

  const double prep = offline_tiling_cost_ns(footprint(A), footprint(tiled), cfg.arch);
  return finish<V>(merged, partial.take(), 1.0, {}, 0.0, prep);
}

template <class V>
SpmmResult spmm_tiled_dcsr_b_stationary(const SpmmOperandsT<V>& ops,
                                        const DenseMatrixT<V>& B, const SpmmConfig& cfg) {
  using CT = typename VTraits<V>::compute_t;
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  const CsrT<V>& A = *ops.csr;
  const TilingSpec& spec = cfg.tiling;
  std::optional<TiledDcsrT<V>> local;
  const TiledDcsrT<V>& tiled = (ops.tiled_dcsr && ops.tiled_dcsr->spec == spec)
                                   ? *ops.tiled_dcsr
                                   : local.emplace(tiled_dcsr_from_csr(A, spec));
  std::optional<StripNnz> local_nnz;
  const StripNnz& strip_nnz = resolve_strip_nnz(ops, A, spec, local_nnz);
  const TileOffsets off = compute_offsets(tiled, [](const DcsrTileT<V>& t) {
    return static_cast<i64>(t.body.row_idx.size() + t.body.row_ptr.size());
  });

  const index_t K = B.cols();
  const index_t bt = spec.strip_width;

  ShardSet shards(cfg, tiled.num_strips(), kStripGrain);
  PartialCT<CT> partial(A.rows, K, shards.size());
  shards.run([&](int sh, ShardRange range, Ctx& ctx) {
    const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
    const DenseLayout c = DenseLayout::allocate(A.rows, K, kVB, ctx.mem, "C");
    const u64 meta_base =
        ctx.mem.allocate(off.total_meta_words * kIndexBytes, "A.tiles.meta");
    const u64 entry_base =
        ctx.mem.allocate(off.total_entries * (kIndexBytes + kVB), "A.tiles.entries");
    DenseMatrixT<CT>& C = partial.shard(sh);
    std::vector<u64> b_addrs, atomic_addrs;

    const VisitOrder visits(K, bt, static_cast<index_t>(range.begin),
                            static_cast<index_t>(range.end), cfg.traversal);
    for (i64 v = 0; v < visits.size(); ++v) {
      const auto [bc, s] = visits[v];
      if (strip_nnz.counts[static_cast<usize>(s)] == 0) continue;
      const index_t tile_cols = std::min<index_t>(bt, K - bc);
      const index_t width =
          std::min<index_t>(spec.strip_width, A.cols - s * spec.strip_width);
      load_b_tile(ctx, b, s * spec.strip_width, width, bc, tile_cols, b_addrs);

      for (usize t = 0; t < tiled.strips[s].size(); ++t) {
        const DcsrTileT<V>& tile = tiled.strips[s][t];
        const i64 meta_words =
            static_cast<i64>(tile.body.row_idx.size() + tile.body.row_ptr.size());
        // DCSR metadata: proportional to non-empty rows, not tile height.
        ++ctx.counters.warp_visits;
        ctx.waves(InstrClass::kMemory, meta_words);
        ctx.mem.warp_load(meta_base + static_cast<u64>(off.meta[s][t]) * kIndexBytes,
                          meta_words * kIndexBytes);
        if (tile.nnz() > 0) {
          ctx.mem.warp_load(
              entry_base + static_cast<u64>(off.entries[s][t]) * (kIndexBytes + kVB),
              tile.nnz() * (kIndexBytes + kVB));
        }
        process_dcsr_tile<V>(ctx, tile, B, C, c, bc, tile_cols, atomic_addrs);
      }
    }
  });
  Ctx& merged = shards.merge();
  merged.counters.kernel_launches = static_cast<u64>((K + bt - 1) / bt);

  const double prep = offline_tiling_cost_ns(footprint(A), footprint(tiled), cfg.arch);
  return finish<V>(merged, partial.take(), 1.0, {}, 0.0, prep);
}

template <class V>
SpmmResult spmm_tiled_dcsr_online(const SpmmOperandsT<V>& ops, const DenseMatrixT<V>& B,
                                  const SpmmConfig& cfg) {
  using CT = typename VTraits<V>::compute_t;
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  const CsrT<V>& A = *ops.csr;
  const TilingSpec& spec = cfg.tiling;
  std::optional<CscT<V>> local;
  const CscT<V>& csc = ops.csc ? *ops.csc : local.emplace(csc_from_csr(A));

  const index_t K = B.cols();
  const index_t bt = spec.strip_width;
  const index_t num_strips = spec.num_strips(A.cols);

  // Tiles route to the channel that owns their data under the
  // configured placement (shared across shards — pure function of the
  // strip/tile coordinates).
  const StripPlacement placement(cfg.placement, cfg.arch.pseudo_channels);

  ShardSet shards(cfg, num_strips, kStripGrain);
  PartialCT<CT> partial(A.rows, K, shards.size());
  // Per-shard engine occupancy and stats, folded in shard-index order
  // after the run.  Each strip phase is self-contained (busiest-engine
  // beat delta over the phase), so the per-shard sums add up to exactly
  // the serial total.
  std::vector<double> shard_busy_ns(static_cast<usize>(shards.size()), 0.0);
  std::vector<EngineStats> shard_engine(static_cast<usize>(shards.size()));

  shards.run([&](int sh, ShardRange range, Ctx& ctx) {
    const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
    const DenseLayout c = DenseLayout::allocate(A.rows, K, kVB, ctx.mem, "C");
    const CscDeviceLayout a = CscDeviceLayout::allocate(csc, ctx.mem);

    // One conversion engine per pseudo channel, private to the shard
    // (its strips' tiles only ever route through its own engines).
    std::vector<ConversionEngine> engines;
    engines.reserve(static_cast<usize>(cfg.arch.pseudo_channels));
    for (int ch = 0; ch < cfg.arch.pseudo_channels; ++ch) engines.emplace_back(cfg.engine_hw);

    DenseMatrixT<CT>& C = partial.shard(sh);
    std::vector<u64> b_addrs, atomic_addrs;

    // Engine occupancy is phase-structured: the SMs sweep one strip's
    // tiles concurrently (that is what creates the Fig. 17 camping
    // problem), so per strip phase the busiest engine bounds conversion
    // time; phases accumulate.
    double engine_busy_ns = 0.0;
    auto engine_beats = [&](int ch) {
      const EngineStats& st = engines[static_cast<usize>(ch)].stats();
      return st.steps + st.requests;
    };
    std::vector<u64> beats_before(static_cast<usize>(cfg.arch.pseudo_channels));

    const VisitOrder visits(K, bt, static_cast<index_t>(range.begin),
                            static_cast<index_t>(range.end), cfg.traversal);
    for (i64 v = 0; v < visits.size(); ++v) {
      const auto [bc, s] = visits[v];
      const index_t tile_cols = std::min<index_t>(bt, K - bc);
      const index_t col_begin = s * spec.strip_width;
      const index_t col_end = std::min<index_t>(col_begin + spec.strip_width, A.cols);
      // Strip emptiness is one col_ptr subtraction away in CSC.
      if (csc.col_ptr[col_end] == csc.col_ptr[col_begin]) continue;
      for (int ch = 0; ch < cfg.arch.pseudo_channels; ++ch) {
        beats_before[static_cast<usize>(ch)] = engine_beats(ch);
      }
      // CSC knows which strip columns are empty (one col_ptr
      // subtraction), so the online kernel loads only the B rows that
      // can be touched — the n_nnzcol·K "single fetch" of Table 1 that
      // row-major offline tiles cannot achieve (Sec. 3.1.4).  The
      // non-empty rows form one request run.
      b_addrs.clear();
      for (index_t col = col_begin; col < col_end; ++col) {
        if (csc.col_ptr[col + 1] == csc.col_ptr[col]) continue;
        b_addrs.push_back(b.addr(col, bc));
      }
      ctx.waves(InstrClass::kMemory, tile_cols, static_cast<u64>(b_addrs.size()));
      ctx.mem.warp_load_run(b_addrs, static_cast<i64>(tile_cols) * kVB);

      StripCursor cursor(csc, s, spec);
      // One tile buffer per strip sweep, refilled in place, and a fresh
      // arena epoch: steady state converts every tile of the strip with
      // zero heap allocations.
      ConversionArena::local().reset();
      DcsrTileT<V> tile;
      for (index_t row_start = 0, t = 0; row_start < A.rows;
           row_start += spec.tile_height, ++t) {
        const int ch = placement.channel_for(s, t);
        // GetDCSRTile intrinsic: the request message to the conversion
        // unit (Fig. 11); requests stream ahead of consumption, so they
        // pipeline rather than serializing the warp.
        ctx.issue(InstrClass::kMemory, ctx.cfg.arch.warp_size);
        engines[static_cast<usize>(ch)].convert_tile_checked_into(
            tile, csc, cursor, row_start, spec, &ctx.mem, &a, ch);
        if (tile.nnz() == 0) continue;
        process_dcsr_tile<V>(ctx, tile, B, C, c, bc, tile_cols, atomic_addrs);
      }
      u64 phase_max = 0;
      for (int ch = 0; ch < cfg.arch.pseudo_channels; ++ch) {
        phase_max =
            std::max(phase_max, engine_beats(ch) - beats_before[static_cast<usize>(ch)]);
      }
      engine_busy_ns += static_cast<double>(phase_max) * cfg.engine_hw.cycle_ns_sp;
    }

    shard_busy_ns[static_cast<usize>(sh)] = engine_busy_ns;
    EngineStats total;
    for (const auto& e : engines) total += e.stats();
    shard_engine[static_cast<usize>(sh)] = total;
  });
  Ctx& merged = shards.merge();
  merged.counters.kernel_launches = static_cast<u64>((K + bt - 1) / bt);

  double engine_busy_ns = 0.0;
  EngineStats total_engine;
  for (usize sh = 0; sh < shard_engine.size(); ++sh) {
    engine_busy_ns += shard_busy_ns[sh];
    total_engine += shard_engine[sh];
  }
  return finish<V>(merged, partial.take(), 1.0, total_engine, engine_busy_ns, 0.0);
}

#define NMDT_INSTANTIATE_B_STATIONARY(V)                                        \
  template SpmmResult spmm_tiled_csr_b_stationary(                              \
      const SpmmOperandsT<V>&, const DenseMatrixT<V>&, const SpmmConfig&);      \
  template SpmmResult spmm_tiled_dcsr_b_stationary(                             \
      const SpmmOperandsT<V>&, const DenseMatrixT<V>&, const SpmmConfig&);      \
  template SpmmResult spmm_tiled_dcsr_online(const SpmmOperandsT<V>&,           \
                                             const DenseMatrixT<V>&, const SpmmConfig&)

NMDT_INSTANTIATE_B_STATIONARY(float);
NMDT_INSTANTIATE_B_STATIONARY(double);
NMDT_INSTANTIATE_B_STATIONARY(bf16_t);

#undef NMDT_INSTANTIATE_B_STATIONARY

}  // namespace nmdt::detail
