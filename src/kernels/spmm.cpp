#include "kernels/spmm.hpp"

#include <algorithm>
#include <optional>

#include "kernels/detail.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nmdt {

const char* kernel_name(KernelKind k) {
  switch (k) {
    case KernelKind::kCsrCStationaryRowWarp: return "csr_c_stationary_row_warp";
    case KernelKind::kCsrCStationaryRowThread: return "csr_c_stationary_row_thread";
    case KernelKind::kDcsrCStationary: return "dcsr_c_stationary";
    case KernelKind::kTiledCsrBStationary: return "tiled_csr_b_stationary";
    case KernelKind::kTiledDcsrBStationary: return "tiled_dcsr_b_stationary";
    case KernelKind::kTiledDcsrOnline: return "tiled_dcsr_online";
    case KernelKind::kAStationary: return "a_stationary";
    case KernelKind::kMergeCStationary: return "merge_c_stationary";
    case KernelKind::kHongHybrid: return "hong_hybrid";
  }
  return "unknown";
}

const char* traversal_name(TraversalOrder t) {
  switch (t) {
    case TraversalOrder::kColumnMajor: return "column-major";
    case TraversalOrder::kRowMajor: return "row-major";
  }
  return "unknown";
}

SpmmConfig evaluation_config(index_t n, index_t K) {
  NMDT_CHECK_CONFIG(n > 0 && K > 0, "evaluation_config requires positive dimensions");
  SpmmConfig cfg;
  cfg.mem_mode = MemMode::kCacheSim;
  const i64 b_bytes = static_cast<i64>(n) * K * kValueBytes;
  const i64 set_bytes = static_cast<i64>(cfg.arch.l2_ways) * cfg.arch.l2_line_bytes;
  i64 l2 = static_cast<i64>(static_cast<double>(b_bytes) / 1.8);
  l2 = std::max<i64>(l2 / set_bytes, 64) * set_bytes;       // ≥ 64 sets
  cfg.arch.l2_bytes = std::min<i64>(l2, 6144 * 1024);       // never above GV100
  cfg.arch.launch_overhead_ns = 500.0;
  cfg.arch.validate();
  return cfg;
}

namespace {

SpmmResult dispatch_spmm(KernelKind kind, const SpmmOperands& A, const DenseMatrix& B,
                         const SpmmConfig& cfg) {
  switch (kind) {
    case KernelKind::kCsrCStationaryRowWarp: return detail::spmm_csr_row_warp(A, B, cfg);
    case KernelKind::kCsrCStationaryRowThread:
      return detail::spmm_csr_row_thread(A, B, cfg);
    case KernelKind::kDcsrCStationary: return detail::spmm_dcsr_c_stationary(A, B, cfg);
    case KernelKind::kTiledCsrBStationary:
      return detail::spmm_tiled_csr_b_stationary(A, B, cfg);
    case KernelKind::kTiledDcsrBStationary:
      return detail::spmm_tiled_dcsr_b_stationary(A, B, cfg);
    case KernelKind::kTiledDcsrOnline: return detail::spmm_tiled_dcsr_online(A, B, cfg);
    case KernelKind::kAStationary: return detail::spmm_a_stationary(A, B, cfg);
    case KernelKind::kMergeCStationary: return detail::spmm_merge_c_stationary(A, B, cfg);
    case KernelKind::kHongHybrid: return detail::spmm_hong_hybrid(A, B, cfg);
  }
  throw ConfigError("unknown kernel kind");
}

}  // namespace

SpmmResult run_spmm(KernelKind kind, const SpmmOperands& A, const DenseMatrix& B,
                    const SpmmConfig& cfg) {
  NMDT_REQUIRE(A.csr != nullptr, "SpmmOperands must carry the CSR operand");
  NMDT_REQUIRE(A.csr->cols == B.rows(), "SpMM shape mismatch: A.cols != B.rows");
  cfg.tiling.validate();
  static obs::Counter& runs = obs::MetricsRegistry::global().counter("kernel.runs");
  runs.add(1);
  obs::ScopedTimer timer("kernel.host_ms");
  obs::TraceSpan span(kernel_name(kind));
  // Only a non-default plan is installed; the default leaves whatever
  // plan an outer scope (suite runner, CLI) already put in place.
  std::optional<fault::FaultScope> fault_scope;
  if (cfg.fault.site != fault::FaultSite::kNone) fault_scope.emplace(cfg.fault);
  SpmmResult res;
  try {
    res = dispatch_spmm(kind, A, B, cfg);
  } catch (const FaultError&) {
    if (kind != KernelKind::kTiledDcsrOnline || !cfg.fault_fallback) throw;
    // The online conversion path is the only kernel with a faultable
    // hardware unit in the loop; degrade to the reference CSR baseline
    // rather than failing the multiplication.
    static obs::Counter& fallbacks =
        obs::MetricsRegistry::global().counter("fault.fallbacks");
    fallbacks.add(1);
    obs::TraceSpan fb_span("fault.fallback");
    fb_span.arg("from", kernel_name(kind))
        .arg("to", kernel_name(KernelKind::kCsrCStationaryRowWarp));
    res = dispatch_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cfg);
    res.used_fallback = true;
  }
  // Simulated metrics ride on the host span so modelled and measured
  // time land in one artifact (args stay deterministic: they derive
  // from the matrix alone, never from the clock).
  span.arg("rows", static_cast<i64>(A.csr->rows))
      .arg("nnz", static_cast<i64>(A.csr->nnz()))
      .arg("k", static_cast<i64>(B.cols()))
      .arg("jobs", cfg.jobs)
      .arg("modelled_ns", res.timing.total_ns)
      .arg("flops", res.counters.flops)
      .arg("instr", res.counters.total_instr())
      .arg("inactive_frac", res.counters.inactive_fraction())
      .arg("dram_bytes", res.mem.total_dram_bytes())
      .arg("engine_busy_ns", res.engine_busy_ns);
  return res;
}

SpmmResult run_spmm(KernelKind kind, const Csr& A, const DenseMatrix& B,
                    const SpmmConfig& cfg) {
  return run_spmm(kind, SpmmOperands::from_csr(A), B, cfg);
}

DenseMatrix spmm_reference(const Csr& A, const DenseMatrix& B) {
  NMDT_REQUIRE(A.cols == B.rows(), "SpMM shape mismatch: A.cols != B.rows");
  DenseMatrix C(A.rows, B.cols(), 0.0f);
  for (index_t r = 0; r < A.rows; ++r) {
    auto c_row = C.row(r);
    for (index_t j = A.row_ptr[r]; j < A.row_ptr[r + 1]; ++j) {
      const value_t a = A.val[j];
      const auto b_row = B.row(A.col_idx[j]);
      for (index_t k = 0; k < B.cols(); ++k) c_row[k] += a * b_row[k];
    }
  }
  return C;
}

namespace detail {

SpmmResult finish(Ctx& ctx, DenseMatrix C, double compute_inflation, EngineStats engine,
                  double engine_busy_ns, double offline_prep_ns) {
  SpmmResult res;
  res.C = std::move(C);
  res.counters = ctx.counters;
  res.mem = ctx.mem.stats();
  res.engine = engine;
  res.engine_busy_ns = engine_busy_ns;
  res.offline_prep_ns = offline_prep_ns;
  res.timing =
      compute_timing(ctx.cfg.arch, ctx.counters, res.mem, compute_inflation, engine_busy_ns);
  return res;
}

void load_b_tile(Ctx& ctx, const DenseLayout& b, index_t row_begin, index_t width,
                 index_t col_begin, index_t tile_cols, std::vector<u64>& addr_scratch) {
  // One coalesced load per B-tile row into shared memory, issued as a
  // single per-tile request run.
  addr_scratch.clear();
  for (index_t i = 0; i < width; ++i) {
    ctx.waves(InstrClass::kMemory, tile_cols);
    addr_scratch.push_back(b.addr(row_begin + i, col_begin));
  }
  ctx.mem.warp_load_run(addr_scratch, static_cast<i64>(tile_cols) * kValueBytes);
}

}  // namespace detail

}  // namespace nmdt
