#include "kernels/spmm.hpp"

#include <algorithm>
#include <optional>
#include <type_traits>

#include "formats/retype.hpp"
#include "kernels/detail.hpp"
#include "obs/profiler.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nmdt {

const char* kernel_name(KernelKind k) {
  switch (k) {
    case KernelKind::kCsrCStationaryRowWarp: return "csr_c_stationary_row_warp";
    case KernelKind::kCsrCStationaryRowThread: return "csr_c_stationary_row_thread";
    case KernelKind::kDcsrCStationary: return "dcsr_c_stationary";
    case KernelKind::kTiledCsrBStationary: return "tiled_csr_b_stationary";
    case KernelKind::kTiledDcsrBStationary: return "tiled_dcsr_b_stationary";
    case KernelKind::kTiledDcsrOnline: return "tiled_dcsr_online";
    case KernelKind::kAStationary: return "a_stationary";
    case KernelKind::kMergeCStationary: return "merge_c_stationary";
    case KernelKind::kHongHybrid: return "hong_hybrid";
  }
  return "unknown";
}

const char* traversal_name(TraversalOrder t) {
  switch (t) {
    case TraversalOrder::kColumnMajor: return "column-major";
    case TraversalOrder::kRowMajor: return "row-major";
  }
  return "unknown";
}

SpmmConfig evaluation_config(index_t n, index_t K) {
  NMDT_CHECK_CONFIG(n > 0 && K > 0, "evaluation_config requires positive dimensions");
  SpmmConfig cfg;
  cfg.mem_mode = MemMode::kCacheSim;
  // The L2 ratio is anchored at the canonical f32 width for every
  // precision: cross-precision comparisons then share one architecture
  // and isolate the value-byte effect instead of also moving the cache.
  const i64 b_bytes = static_cast<i64>(n) * K * kValueBytes;
  const i64 set_bytes = static_cast<i64>(cfg.arch.l2_ways) * cfg.arch.l2_line_bytes;
  i64 l2 = static_cast<i64>(static_cast<double>(b_bytes) / 1.8);
  l2 = std::max<i64>(l2 / set_bytes, 64) * set_bytes;       // ≥ 64 sets
  cfg.arch.l2_bytes = std::min<i64>(l2, 6144 * 1024);       // never above GV100
  cfg.arch.launch_overhead_ns = 500.0;
  cfg.arch.validate();
  return cfg;
}

namespace {

template <class V>
SpmmResult dispatch_spmm(KernelKind kind, const SpmmOperandsT<V>& A,
                         const DenseMatrixT<V>& B, const SpmmConfig& cfg) {
  switch (kind) {
    case KernelKind::kCsrCStationaryRowWarp: return detail::spmm_csr_row_warp(A, B, cfg);
    case KernelKind::kCsrCStationaryRowThread:
      return detail::spmm_csr_row_thread(A, B, cfg);
    case KernelKind::kDcsrCStationary: return detail::spmm_dcsr_c_stationary(A, B, cfg);
    case KernelKind::kTiledCsrBStationary:
      return detail::spmm_tiled_csr_b_stationary(A, B, cfg);
    case KernelKind::kTiledDcsrBStationary:
      return detail::spmm_tiled_dcsr_b_stationary(A, B, cfg);
    case KernelKind::kTiledDcsrOnline: return detail::spmm_tiled_dcsr_online(A, B, cfg);
    case KernelKind::kAStationary: return detail::spmm_a_stationary(A, B, cfg);
    case KernelKind::kMergeCStationary: return detail::spmm_merge_c_stationary(A, B, cfg);
    case KernelKind::kHongHybrid: return detail::spmm_hong_hybrid(A, B, cfg);
  }
  throw ConfigError("unknown kernel kind");
}

}  // namespace

template <class V>
SpmmResult run_spmm_t(KernelKind kind, const SpmmOperandsT<V>& A,
                      const DenseMatrixT<V>& B, const SpmmConfig& cfg) {
  NMDT_REQUIRE(A.csr != nullptr, "SpmmOperands must carry the CSR operand");
  NMDT_REQUIRE(A.csr->cols == B.rows(), "SpMM shape mismatch: A.cols != B.rows");
  cfg.tiling.validate();
  static obs::Counter& runs = obs::MetricsRegistry::global().counter("kernel.runs");
  runs.add(1);
  obs::ScopedTimer timer("kernel.host_ms");
  obs::TraceSpan span(kernel_name(kind));
  // Destroyed before `span`, so the hw.* counter args land on the
  // kernel span (profiling enabled only — spans stay deterministic
  // otherwise).
  obs::ProfScope prof(span);
  // Only a non-default plan is installed; the default leaves whatever
  // plan an outer scope (suite runner, CLI) already put in place.
  std::optional<fault::FaultScope> fault_scope;
  if (cfg.fault.site != fault::FaultSite::kNone) fault_scope.emplace(cfg.fault);
  SpmmResult res;
  try {
    res = dispatch_spmm(kind, A, B, cfg);
  } catch (const FaultError&) {
    if (kind != KernelKind::kTiledDcsrOnline || !cfg.fault_fallback) throw;
    // The online conversion path is the only kernel with a faultable
    // hardware unit in the loop; degrade to the reference CSR baseline
    // rather than failing the multiplication.
    static obs::Counter& fallbacks =
        obs::MetricsRegistry::global().counter("fault.fallbacks");
    fallbacks.add(1);
    obs::TraceSpan fb_span("fault.fallback");
    fb_span.arg("from", kernel_name(kind))
        .arg("to", kernel_name(KernelKind::kCsrCStationaryRowWarp));
    res = dispatch_spmm(KernelKind::kCsrCStationaryRowWarp, A, B, cfg);
    res.used_fallback = true;
  }
  // Simulated metrics ride on the host span so modelled and measured
  // time land in one artifact (args stay deterministic: they derive
  // from the matrix alone, never from the clock).
  span.arg("rows", static_cast<i64>(A.csr->rows))
      .arg("nnz", static_cast<i64>(A.csr->nnz()))
      .arg("k", static_cast<i64>(B.cols()))
      .arg("jobs", cfg.jobs)
      .arg("precision", precision_name(VTraits<V>::kPrecision))
      .arg("modelled_ns", res.timing.total_ns)
      .arg("flops", res.counters.flops)
      .arg("instr", res.counters.total_instr())
      .arg("inactive_frac", res.counters.inactive_fraction())
      .arg("dram_bytes", res.mem.total_dram_bytes())
      .arg("engine_busy_ns", res.engine_busy_ns);
  return res;
}

template SpmmResult run_spmm_t(KernelKind, const SpmmOperandsT<float>&,
                               const DenseMatrixT<float>&, const SpmmConfig&);
template SpmmResult run_spmm_t(KernelKind, const SpmmOperandsT<double>&,
                               const DenseMatrixT<double>&, const SpmmConfig&);
template SpmmResult run_spmm_t(KernelKind, const SpmmOperandsT<bf16_t>&,
                               const DenseMatrixT<bf16_t>&, const SpmmConfig&);

SpmmResult run_spmm(KernelKind kind, const SpmmOperands& A, const DenseMatrix& B,
                    const SpmmConfig& cfg) {
  if (cfg.precision == Precision::kF32) return run_spmm_t<float>(kind, A, B, cfg);
  // Legacy untyped entry asked for a non-default precision: retype the
  // canonical f32 operands once (derived formats rebuild on demand at
  // the kernel's precision — structural conversions commute with
  // retyping, so results match a fully pre-converted plan).
  NMDT_REQUIRE(A.csr != nullptr, "SpmmOperands must carry the CSR operand");
  return dispatch_precision(cfg.precision, [&](auto tag) -> SpmmResult {
    using V = typename decltype(tag)::type;
    const CsrT<V> a = retype<V>(*A.csr);
    const DenseMatrixT<V> b = retype<V>(B);
    return run_spmm_t<V>(kind, SpmmOperandsT<V>::from_csr(a), b, cfg);
  });
}

SpmmResult run_spmm(KernelKind kind, const Csr& A, const DenseMatrix& B,
                    const SpmmConfig& cfg) {
  return run_spmm(kind, SpmmOperands::from_csr(A), B, cfg);
}

DenseMatrix spmm_reference(const Csr& A, const DenseMatrix& B) {
  NMDT_REQUIRE(A.cols == B.rows(), "SpMM shape mismatch: A.cols != B.rows");
  DenseMatrix C(A.rows, B.cols(), 0.0f);
  for (index_t r = 0; r < A.rows; ++r) {
    auto c_row = C.row(r);
    for (index_t j = A.row_ptr[r]; j < A.row_ptr[r + 1]; ++j) {
      const value_t a = A.val[j];
      const auto b_row = B.row(A.col_idx[j]);
      for (index_t k = 0; k < B.cols(); ++k) c_row[k] += a * b_row[k];
    }
  }
  return C;
}

template <class V>
DenseMatrixT<double> spmm_reference_f64(const CsrT<V>& A, const DenseMatrixT<V>& B) {
  NMDT_REQUIRE(A.cols == B.rows(), "SpMM shape mismatch: A.cols != B.rows");
  DenseMatrixT<double> C(A.rows, B.cols(), 0.0);
  for (index_t r = 0; r < A.rows; ++r) {
    auto c_row = C.row(r);
    for (index_t j = A.row_ptr[r]; j < A.row_ptr[r + 1]; ++j) {
      const double a = VTraits<V>::to_f64(A.val[j]);
      const auto b_row = B.row(A.col_idx[j]);
      for (index_t k = 0; k < B.cols(); ++k) {
        c_row[k] += a * VTraits<V>::to_f64(b_row[k]);
      }
    }
  }
  return C;
}

template DenseMatrixT<double> spmm_reference_f64(const CsrT<float>&,
                                                 const DenseMatrixT<float>&);
template DenseMatrixT<double> spmm_reference_f64(const CsrT<double>&,
                                                 const DenseMatrixT<double>&);
template DenseMatrixT<double> spmm_reference_f64(const CsrT<bf16_t>&,
                                                 const DenseMatrixT<bf16_t>&);

namespace detail {

template <class V>
void store_result_c(SpmmResult& res, DenseMatrixT<typename VTraits<V>::compute_t>&& C) {
  res.precision = VTraits<V>::kPrecision;
  if constexpr (std::is_same_v<V, double>) {
    res.C = DenseMatrix(C.rows(), C.cols());
    auto dst = res.C.data();
    const auto src = C.data();
    for (usize i = 0; i < dst.size(); ++i) dst[i] = static_cast<float>(src[i]);
    res.C64 = std::move(C);
  } else if constexpr (std::is_same_v<V, bf16_t>) {
    // Store rounding: the accumulator ran in f32; C is *stored* at bf16,
    // so round each element once (RNE) and keep the widened bits.
    auto d = C.data();
    for (usize i = 0; i < d.size(); ++i) d[i] = bf16_t(d[i]).to_float();
    res.C = std::move(C);
  } else {
    res.C = std::move(C);
  }
}

template void store_result_c<float>(SpmmResult&, DenseMatrixT<float>&&);
template void store_result_c<double>(SpmmResult&, DenseMatrixT<double>&&);
template void store_result_c<bf16_t>(SpmmResult&, DenseMatrixT<float>&&);

template <class V>
SpmmResult finish(Ctx& ctx, DenseMatrixT<typename VTraits<V>::compute_t> C,
                  double compute_inflation, EngineStats engine, double engine_busy_ns,
                  double offline_prep_ns) {
  SpmmResult res;
  store_result_c<V>(res, std::move(C));
  res.counters = ctx.counters;
  res.mem = ctx.mem.stats();
  res.engine = engine;
  res.engine_busy_ns = engine_busy_ns;
  res.offline_prep_ns = offline_prep_ns;
  res.timing =
      compute_timing(ctx.cfg.arch, ctx.counters, res.mem, compute_inflation, engine_busy_ns);
  return res;
}

template SpmmResult finish<float>(Ctx&, DenseMatrixT<float>, double, EngineStats, double,
                                  double);
template SpmmResult finish<double>(Ctx&, DenseMatrixT<double>, double, EngineStats, double,
                                   double);
template SpmmResult finish<bf16_t>(Ctx&, DenseMatrixT<float>, double, EngineStats, double,
                                   double);

void load_b_tile(Ctx& ctx, const DenseLayout& b, index_t row_begin, index_t width,
                 index_t col_begin, index_t tile_cols, std::vector<u64>& addr_scratch) {
  // One coalesced load per B-tile row into shared memory, issued as a
  // single per-tile request run.
  addr_scratch.clear();
  for (index_t i = 0; i < width; ++i) {
    ctx.waves(InstrClass::kMemory, tile_cols);
    addr_scratch.push_back(b.addr(row_begin + i, col_begin));
  }
  ctx.mem.warp_load_run(addr_scratch, static_cast<i64>(tile_cols) * b.vbytes);
}

}  // namespace detail

}  // namespace nmdt
