// The Hong et al. [12] hybrid scheme (paper Sec. 7 related work):
// heavily clustered row segments are extracted offline into tiled DCSR
// and multiplied B-stationary against shared-memory B tiles; the light
// remainder stays in CSR and runs output-stationary.
//
// The paper's critique, which this implementation makes measurable:
//  * B rows touched by BOTH the heavy and the light part are fetched in
//    both phases (the overlap re-read),
//  * the split + tiling preprocessing is a real offline cost,
// both of which the online near-memory conversion avoids.  The kernel
// composes the existing tiled-DCSR B-stationary and CSR C-stationary
// phases on separate memory-system instances and merges their
// statistics; correctness holds because SpMM is additive over any
// partition of A's non-zeros.
#include <algorithm>
#include <type_traits>

#include "kernels/detail.hpp"
#include "util/error.hpp"

namespace nmdt::detail {

namespace {

template <class V>
struct HongSplit {
  CsrT<V> heavy;  ///< segments with >= threshold nnz in their strip
  CsrT<V> light;  ///< everything else
};

template <class V>
HongSplit<V> split_by_segment_weight(const CsrT<V>& A, const TilingSpec& spec,
                                     index_t threshold) {
  CooT<V> heavy, light;
  heavy.rows = light.rows = A.rows;
  heavy.cols = light.cols = A.cols;
  std::vector<i64> seg_count(static_cast<usize>(spec.num_strips(A.cols)));
  for (index_t r = 0; r < A.rows; ++r) {
    std::fill(seg_count.begin(), seg_count.end(), 0);
    for (index_t k = A.row_ptr[r]; k < A.row_ptr[r + 1]; ++k) {
      ++seg_count[A.col_idx[k] / spec.strip_width];
    }
    for (index_t k = A.row_ptr[r]; k < A.row_ptr[r + 1]; ++k) {
      const index_t c = A.col_idx[k];
      CooT<V>& dst = seg_count[c / spec.strip_width] >= threshold ? heavy : light;
      dst.push(r, c, A.val[k]);
    }
  }
  return {csr_from_coo(heavy), csr_from_coo(light)};
}

}  // namespace

template <class V>
SpmmResult spmm_hong_hybrid(const SpmmOperandsT<V>& ops, const DenseMatrixT<V>& B,
                            const SpmmConfig& cfg) {
  NMDT_CHECK_CONFIG(cfg.hong_heavy_threshold > 0, "hong_heavy_threshold must be positive");
  using CT = typename VTraits<V>::compute_t;
  const CsrT<V>& A = *ops.csr;
  // The heavy/light split depends on cfg.hong_heavy_threshold, not on A
  // alone, so it is not a plan-cacheable artifact: always derived here.
  const HongSplit<V> split =
      split_by_segment_weight(A, cfg.tiling, cfg.hong_heavy_threshold);

  const index_t K = B.cols();
  SpmmResult heavy_res;
  SpmmResult light_res;
  bool ran_heavy = false, ran_light = false;
  if (split.heavy.nnz() > 0) {
    heavy_res =
        spmm_tiled_dcsr_b_stationary(SpmmOperandsT<V>::from_csr(split.heavy), B, cfg);
    ran_heavy = true;
  }
  if (split.light.nnz() > 0) {
    light_res = spmm_csr_row_warp(SpmmOperandsT<V>::from_csr(split.light), B, cfg);
    ran_light = true;
  }

  SpmmResult out;
  // Phase outputs merge at compute precision in a fixed order (heavy
  // then light), then store once at precision V — the same store
  // rounding discipline as a single-kernel run.
  DenseMatrixT<CT> acc(A.rows, K, CT{});
  auto merge_phase = [&](const SpmmResult& phase) {
    if constexpr (std::is_same_v<V, double>) {
      accumulate_dense(acc, phase.C64);
    } else {
      accumulate_dense(acc, phase.C);
    }
    out.counters += phase.counters;
    out.mem += phase.mem;
    // Phase preprocessing (heavy-part tiling) carries over; the split
    // pass itself is charged below.
    out.offline_prep_ns += phase.offline_prep_ns;
  };
  if (ran_heavy) merge_phase(heavy_res);
  if (ran_light) merge_phase(light_res);
  store_result_c<V>(out, std::move(acc));

  // The segment-weight split streams the whole CSR matrix once and
  // writes both parts — preprocessing on top of the heavy-part tiling.
  out.offline_prep_ns +=
      static_cast<double>(footprint(A).total() + footprint(split.heavy).total() +
                          footprint(split.light).total()) /
      cfg.arch.total_bandwidth_gbps();

  out.timing = compute_timing(cfg.arch, out.counters, out.mem, 1.0, 0.0);
  return out;
}

template SpmmResult spmm_hong_hybrid(const SpmmOperandsT<float>&,
                                     const DenseMatrixT<float>&, const SpmmConfig&);
template SpmmResult spmm_hong_hybrid(const SpmmOperandsT<double>&,
                                     const DenseMatrixT<double>&, const SpmmConfig&);
template SpmmResult spmm_hong_hybrid(const SpmmOperandsT<bf16_t>&,
                                     const DenseMatrixT<bf16_t>&, const SpmmConfig&);

}  // namespace nmdt::detail
