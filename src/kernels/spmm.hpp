// SpMM kernels executed on the GPU performance model.
//
// Each kernel computes C = A·B for real (host-side correctness is
// verified against the dense reference, the way the paper verifies
// against cuSPARSE) while narrating its warp instruction stream and
// memory requests into the simulator.  The seven variants cover the
// paper's design space:
//
//   kCsrCStationaryRowWarp    untiled CSR, row-per-warp — the baseline
//                             (cuSPARSE-csrmm-style kernel, speedups in
//                             Fig. 16 normalize to this)
//   kCsrCStationaryRowThread  row-per-thread ablation (Sec. 3.1.1's
//                             load-imbalance argument)
//   kDcsrCStationary          untiled DCSR, row-per-warp — the paper's
//                             "offline CSR/DCSR" C-stationary arm
//   kTiledCsrBStationary      tiled CSR strawman (Fig. 6 inefficiency)
//   kTiledDcsrBStationary     offline-converted tiled DCSR (2.03x arm)
//   kTiledDcsrOnline          tiled DCSR produced on the fly by the
//                             near-memory CSC→DCSR engines (the paper's
//                             proposal; 2.26x arm with the heuristic)
//   kAStationary              A-stationary reference (Table 1 row)
//   kMergeCStationary         merge-based row decomposition (Merrill &
//                             Garland [21], the orthogonal fix the paper
//                             suggests for row-skew critical paths,
//                             Sec. 5.2): rows split into bounded chunks
//                             so no single warp serializes a heavy row
//   kHongHybrid               the Hong et al. [12] offline hybrid the
//                             paper discusses in Sec. 7: heavily
//                             clustered row segments extracted into
//                             offline tiled DCSR (B-stationary), the
//                             light remainder kept in CSR
//                             (C-stationary) — suffers the B-overlap
//                             re-reads and preprocessing cost the
//                             online engine avoids
#pragma once

#include <string>

#include "analysis/traffic_model.hpp"
#include "fault/fault.hpp"
#include "formats/convert.hpp"
#include "formats/dense.hpp"
#include "formats/tiling.hpp"
#include "gpusim/timing.hpp"
#include "kernels/operands.hpp"
#include "sched/layout.hpp"
#include "transform/engine.hpp"
#include "util/precision.hpp"

namespace nmdt {

enum class KernelKind {
  kCsrCStationaryRowWarp,
  kCsrCStationaryRowThread,
  kDcsrCStationary,
  kTiledCsrBStationary,
  kTiledDcsrBStationary,
  kTiledDcsrOnline,
  kAStationary,
  kMergeCStationary,
  kHongHybrid,
};

const char* kernel_name(KernelKind k);

/// B-tile traversal order (Sec. 3.1.3).  Column-major walks all strips
/// for one 64-wide block of B columns before advancing (C partials stay
/// hot in the LLC); row-major sweeps the B column blocks of one strip
/// first (A strip stays hot, entire C touched per strip).  The paper
/// finds column-major usually wins because A's footprint is much
/// smaller than C's; bench/sec313_traversal reproduces the comparison.
enum class TraversalOrder { kColumnMajor, kRowMajor };

const char* traversal_name(TraversalOrder t);

struct SpmmConfig {
  ArchConfig arch = ArchConfig::gv100();
  MemMode mem_mode = MemMode::kCounting;
  TilingSpec tiling{64, 64};  ///< B tile 64×64, DCSR_HEIGHT 64 (Sec. 5.1)
  PlacementPolicy placement = PlacementPolicy::kTileRotation;
  TraversalOrder traversal = TraversalOrder::kColumnMajor;
  EngineHwModel engine_hw{};
  /// Maximum non-zeros one warp processes before the row is split
  /// (merge-based kernel only).
  index_t merge_chunk = 256;
  /// Minimum non-zeros a (strip, row) segment needs to be extracted
  /// into the heavy DCSR part (Hong-hybrid kernel only).
  index_t hong_heavy_threshold = 4;
  /// Host threads executing one kernel's shard set (<= 0 selects
  /// hardware concurrency).  The shard decomposition depends only on
  /// the matrix, never on this value, so C and every simulated metric
  /// are bit-identical at any job count; the default of 1 keeps kernel
  /// calls single-threaded under the parallel suite runner.
  int jobs = 1;
  /// Fault-injection plan installed for the duration of the run (the
  /// default — site none — leaves whatever plan is already installed
  /// untouched, so the field is a bitwise no-op unless set).
  fault::FaultPlan fault{};
  /// When DCSR conversion exhausts its retry budget inside the online
  /// kernel, degrade to the reference CSR baseline kernel instead of
  /// surfacing the FaultError (SpmmResult::used_fallback records it).
  bool fault_fallback = true;
  /// Stored value precision of the A/B operands and the C output.
  /// Arithmetic runs at the type's compute precision (bf16 widens to
  /// f32 for every FMA); storage width is what the memory system sees,
  /// so bf16 halves value traffic relative to f32.  The typed
  /// `run_spmm_t<V>` entry points require V to match this field's
  /// meaning only through the legacy untyped shim, which retypes its
  /// f32 operands when the field requests another precision.
  Precision precision = Precision::kF32;
};

/// The realistic evaluation configuration used by the benches and the
/// SpmmEngine default: cache simulation on a GV100 whose L2 capacity is
/// scaled so that the dense operand B (n×K) exceeds the LLC by the same
/// ~1.8× ratio the paper's evaluation had (44k-row matrices, 11 MB B vs
/// 6 MB L2) — without this, suite-scale matrices fit entirely in a
/// full-size L2 and every locality effect the paper studies vanishes.
/// Launch overhead scales with the grid the same way.
SpmmConfig evaluation_config(index_t n = 4096, index_t K = 64);

struct SpmmResult {
  /// C stored at the run's precision, held in f32 bits: an f32 run's
  /// exact output; a bf16 run's output after the round-to-nearest-even
  /// store (every element is bf16-representable, so bitwise comparison
  /// across job counts remains exact).  For f64 runs this is a narrowed
  /// convenience view — `C64` is the authoritative result.
  DenseMatrix C;
  /// Full-precision result of an f64 run (empty at other precisions).
  DenseMatrixT<double> C64;
  /// Stored value precision this result was computed at.
  Precision precision = Precision::kF32;
  KernelCounters counters;
  MemStats mem;
  TimingBreakdown timing;
  EngineStats engine;        ///< zeros for kernels without the engine
  double engine_busy_ns = 0.0;  ///< max per-channel engine time
  /// Offline format-conversion cost (tiling / densification done by a
  /// preprocessing kernel), NOT included in timing — reported separately
  /// the way the paper treats it (Sec. 5.2: offline results are
  /// "optimistic" because they exclude this).
  double offline_prep_ns = 0.0;
  /// True when an unrecoverable conversion fault degraded this run to
  /// the reference CSR kernel (see SpmmConfig::fault_fallback).
  bool used_fallback = false;
};

/// Run one kernel against a pre-converted operand bundle (the planned
/// path): each kernel consumes the artifact it needs from `A` and only
/// converts locally when it is missing.  The modelled offline-prep cost
/// (`SpmmResult::offline_prep_ns`) is unchanged either way — it is part
/// of the report semantics, not of host work.
SpmmResult run_spmm(KernelKind kind, const SpmmOperands& A, const DenseMatrix& B,
                    const SpmmConfig& cfg);

/// Typed entry point: operands and B stored at precision V, arithmetic
/// at VTraits<V>::compute_t.  The f32 instantiation is the exact legacy
/// code path (bit-identical results and simulated metrics).  Explicitly
/// instantiated for float, double, and bf16_t.
template <class V>
SpmmResult run_spmm_t(KernelKind kind, const SpmmOperandsT<V>& A,
                      const DenseMatrixT<V>& B, const SpmmConfig& cfg);

/// Compatibility shim: A given as CSR only; kernels that consume other
/// formats (CSC for online conversion, tiled forms for offline) convert
/// internally, one-shot.  Prefer building an SpmmPlan (core/plan.hpp)
/// when the same A is multiplied repeatedly.  When `cfg.precision` is
/// not f32 the f32 operands are retyped (one RNE rounding into bf16,
/// exact widening into f64) before the typed kernel runs.
SpmmResult run_spmm(KernelKind kind, const Csr& A, const DenseMatrix& B,
                    const SpmmConfig& cfg);

/// Reference result: dense row-major triple loop (no simulation).
DenseMatrix spmm_reference(const Csr& A, const DenseMatrix& B);

/// Binary64 reference from operands *as stored at precision V*: every
/// stored value is widened exactly to double and the triple loop
/// accumulates in double.  This is the "expected" side of the
/// tolerance-based verification — it isolates the kernels' reduced
/// compute precision from the one-time storage rounding.
template <class V>
DenseMatrixT<double> spmm_reference_f64(const CsrT<V>& A, const DenseMatrixT<V>& B);

}  // namespace nmdt
