// A-stationary SpMM (paper Sec. 3.1.1, Table 1): each tile of the
// sparse matrix is loaded into shared memory exactly once (single fetch
// of A), but every non-zero then pulls a full K-wide row of B from
// DRAM and partial C contributions go out through atomics — the most
// bandwidth-hungry of the three strategies, implemented as the Table 1
// reference point.
//
// Sharding: strips split across shards; strips overlap in C rows, so
// each shard accumulates into a PartialC buffer reduced in shard-index
// order (per C row the contribution order is strips-ascending, same as
// the serial sweep).
#include <algorithm>
#include <optional>

#include "kernels/detail.hpp"

namespace nmdt::detail {

template <class V>
SpmmResult spmm_a_stationary(const SpmmOperandsT<V>& ops, const DenseMatrixT<V>& B,
                             const SpmmConfig& cfg) {
  using CT = typename VTraits<V>::compute_t;
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  const CsrT<V>& A = *ops.csr;
  const TilingSpec& spec = cfg.tiling;
  std::optional<TiledCsrT<V>> local;
  const TiledCsrT<V>& tiled = (ops.tiled_csr && ops.tiled_csr->spec == spec)
                                  ? *ops.tiled_csr
                                  : local.emplace(tiled_csr_from_csr(A, spec));

  const index_t K = B.cols();

  // Per-strip starting offsets into the concatenated device blobs, so a
  // shard can address its strips' tiles without walking its
  // predecessors.
  const usize num_strips = tiled.strips.size();
  std::vector<i64> strip_rowptr_start(num_strips + 1, 0);
  std::vector<i64> strip_entry_start(num_strips + 1, 0);
  for (usize s = 0; s < num_strips; ++s) {
    i64 rowptr_words = 0, entries = 0;
    for (const auto& tile : tiled.strips[s]) {
      rowptr_words += static_cast<i64>(tile.body.row_ptr.size());
      entries += tile.nnz();
    }
    strip_rowptr_start[s + 1] = strip_rowptr_start[s] + rowptr_words;
    strip_entry_start[s + 1] = strip_entry_start[s] + entries;
  }
  const i64 total_rowptr = strip_rowptr_start[num_strips];
  const i64 total_entries = strip_entry_start[num_strips];

  ShardSet shards(cfg, static_cast<i64>(num_strips), kStripGrain);
  PartialCT<CT> partial(A.rows, K, shards.size());
  shards.run([&](int sh, ShardRange range, Ctx& ctx) {
    const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
    const DenseLayout c = DenseLayout::allocate(A.rows, K, kVB, ctx.mem, "C");
    const u64 rowptr_base = ctx.mem.allocate(total_rowptr * kIndexBytes, "A.tiles.row_ptr");
    const u64 entry_base =
        ctx.mem.allocate(total_entries * (kIndexBytes + kVB), "A.tiles.entries");
    DenseMatrixT<CT>& C = partial.shard(sh);
    std::vector<u64> b_addrs;

    for (i64 s = range.begin; s < range.end; ++s) {
      i64 rowptr_off = strip_rowptr_start[static_cast<usize>(s)];
      i64 entry_off = strip_entry_start[static_cast<usize>(s)];
      for (const auto& tile : tiled.strips[static_cast<usize>(s)]) {
        // Single fetch of the A tile into shared memory (plus the tile
        // scan visits, as in tiled CSR).
        ctx.counters.warp_visits += 1 + static_cast<u64>((tile.body.rows + 31) / 32);
        ctx.waves(InstrClass::kMemory, tile.body.rows + 1);
        ctx.mem.warp_load(rowptr_base + static_cast<u64>(rowptr_off) * kIndexBytes,
                          static_cast<i64>(tile.body.row_ptr.size()) * kIndexBytes);
        rowptr_off += static_cast<i64>(tile.body.row_ptr.size());
        if (tile.nnz() > 0) {
          ctx.mem.warp_load(
              entry_base + static_cast<u64>(entry_off) * (kIndexBytes + kVB),
              tile.nnz() * (kIndexBytes + kVB));
        }
        entry_off += tile.nnz();
        if (tile.nnz() == 0) continue;

        for (index_t lr = 0; lr < tile.body.rows; ++lr) {
          const i64 cnt = tile.body.row_nnz(lr);
          if (cnt == 0) {
            ctx.issue(InstrClass::kControl, 1);
            continue;
          }
          const index_t grow = tile.row_begin + lr;
          ++ctx.counters.warp_visits;
          ctx.counters.serial_iterations += static_cast<u64>(cnt);
          ctx.counters.observe_chain(static_cast<u64>(cnt));  // ≤ strip width
          CT* NMDT_RESTRICT c_row = C.row(grow).data();
          const index_t jb = tile.body.row_ptr[lr];
          const index_t je = tile.body.row_ptr[lr + 1];
          // Every non-zero streams a K-wide B row from DRAM: B has no
          // residency anywhere in this strategy.  The row's fetches
          // form one request run; the per-non-zero issue calls collapse
          // into one ×cnt call (linear identity).
          ctx.waves(InstrClass::kMemory, K, static_cast<u64>(cnt));
          ctx.waves(InstrClass::kFp, K, static_cast<u64>(cnt));
          ctx.counters.flops += static_cast<u64>(2 * cnt * K);
          b_addrs.clear();
          for (index_t j = jb; j < je; ++j)
            b_addrs.push_back(b.addr(tile.col_begin + tile.body.col_idx[j]));
          ctx.mem.warp_load_run(b_addrs, static_cast<i64>(K) * kVB);
          // Host FP sweep, cache-blocked over B columns (bit-identical:
          // ascending-j contribution order per C element is preserved).
          const index_t bc = b_block_cols(kVB, K);
          for (index_t k0 = 0; k0 < K; k0 += bc) {
            const index_t kb = std::min<index_t>(bc, K - k0);
            for (index_t j = jb; j < je; ++j) {
              const index_t gcol = tile.col_begin + tile.body.col_idx[j];
              axpy_row(tile.body.val[j], B.row(gcol).data() + k0, c_row + k0, kb);
            }
          }
          // Partial C row for this tile, atomically merged.
          ctx.waves(InstrClass::kMemory, K);
          ctx.mem.warp_atomic(c.addr(grow), static_cast<i64>(K) * kVB);
          ++ctx.counters.atomic_updates;
        }
      }
    }
  });
  Ctx& merged = shards.merge();
  merged.counters.kernel_launches = 1;
  return finish<V>(merged, partial.take());
}

template SpmmResult spmm_a_stationary(const SpmmOperandsT<float>&,
                                      const DenseMatrixT<float>&, const SpmmConfig&);
template SpmmResult spmm_a_stationary(const SpmmOperandsT<double>&,
                                      const DenseMatrixT<double>&, const SpmmConfig&);
template SpmmResult spmm_a_stationary(const SpmmOperandsT<bf16_t>&,
                                      const DenseMatrixT<bf16_t>&, const SpmmConfig&);

}  // namespace nmdt::detail
