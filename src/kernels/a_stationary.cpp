// A-stationary SpMM (paper Sec. 3.1.1, Table 1): each tile of the
// sparse matrix is loaded into shared memory exactly once (single fetch
// of A), but every non-zero then pulls a full K-wide row of B from
// DRAM and partial C contributions go out through atomics — the most
// bandwidth-hungry of the three strategies, implemented as the Table 1
// reference point.
#include <algorithm>
#include <optional>

#include "kernels/detail.hpp"

namespace nmdt::detail {

SpmmResult spmm_a_stationary(const SpmmOperands& ops, const DenseMatrix& B,
                             const SpmmConfig& cfg) {
  const Csr& A = *ops.csr;
  const TilingSpec& spec = cfg.tiling;
  std::optional<TiledCsr> local;
  const TiledCsr& tiled = (ops.tiled_csr && ops.tiled_csr->spec == spec)
                              ? *ops.tiled_csr
                              : local.emplace(tiled_csr_from_csr(A, spec));

  Ctx ctx(cfg);
  const index_t K = B.cols();
  const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
  const DenseLayout c = DenseLayout::allocate(DenseMatrix(A.rows, K), ctx.mem, "C");
  i64 total_rowptr = 0, total_entries = 0;
  for (const auto& strip : tiled.strips) {
    for (const auto& tile : strip) {
      total_rowptr += static_cast<i64>(tile.body.row_ptr.size());
      total_entries += tile.nnz();
    }
  }
  const u64 rowptr_base = ctx.mem.allocate(total_rowptr * kIndexBytes, "A.tiles.row_ptr");
  const u64 entry_base =
      ctx.mem.allocate(total_entries * (kIndexBytes + kValueBytes), "A.tiles.entries");

  DenseMatrix C(A.rows, K, 0.0f);
  ctx.counters.kernel_launches = 1;

  i64 rowptr_off = 0, entry_off = 0;
  for (const auto& strip : tiled.strips) {
    for (const auto& tile : strip) {
      // Single fetch of the A tile into shared memory (plus the tile
      // scan visits, as in tiled CSR).
      ctx.counters.warp_visits += 1 + static_cast<u64>((tile.body.rows + 31) / 32);
      ctx.waves(InstrClass::kMemory, tile.body.rows + 1);
      ctx.mem.warp_load(rowptr_base + static_cast<u64>(rowptr_off) * kIndexBytes,
                        static_cast<i64>(tile.body.row_ptr.size()) * kIndexBytes);
      rowptr_off += static_cast<i64>(tile.body.row_ptr.size());
      if (tile.nnz() > 0) {
        ctx.mem.warp_load(
            entry_base + static_cast<u64>(entry_off) * (kIndexBytes + kValueBytes),
            tile.nnz() * (kIndexBytes + kValueBytes));
      }
      entry_off += tile.nnz();
      if (tile.nnz() == 0) continue;

      for (index_t lr = 0; lr < tile.body.rows; ++lr) {
        const i64 cnt = tile.body.row_nnz(lr);
        if (cnt == 0) {
          ctx.issue(InstrClass::kControl, 1);
          continue;
        }
        const index_t grow = tile.row_begin + lr;
        ++ctx.counters.warp_visits;
        ctx.counters.serial_iterations += static_cast<u64>(cnt);
        ctx.counters.observe_chain(static_cast<u64>(cnt));  // ≤ strip width
        auto c_row = C.row(grow);
        for (index_t j = tile.body.row_ptr[lr]; j < tile.body.row_ptr[lr + 1]; ++j) {
          const index_t gcol = tile.col_begin + tile.body.col_idx[j];
          const value_t a_val = tile.body.val[j];
          // Every non-zero streams a K-wide B row from DRAM: B has no
          // residency anywhere in this strategy.
          ctx.waves(InstrClass::kMemory, K);
          ctx.waves(InstrClass::kFp, K);
          ctx.mem.warp_load(b.addr(gcol), static_cast<i64>(K) * kValueBytes);
          const auto b_row = B.row(gcol);
          for (index_t k = 0; k < K; ++k) c_row[k] += a_val * b_row[k];
          ctx.counters.flops += static_cast<u64>(2 * K);
        }
        // Partial C row for this tile, atomically merged.
        ctx.waves(InstrClass::kMemory, K);
        ctx.mem.warp_atomic(c.addr(grow), static_cast<i64>(K) * kValueBytes);
        ++ctx.counters.atomic_updates;
      }
    }
  }
  return finish(ctx, std::move(C));
}

}  // namespace nmdt::detail
