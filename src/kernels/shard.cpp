// Intra-kernel sharding support: shard-set choreography and the
// deterministic merge (see detail.hpp for the decomposition contract).
#include <algorithm>

#include "fault/fault.hpp"
#include "kernels/detail.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace nmdt::detail {

int shard_count(i64 items, i64 grain) {
  if (items <= 0) return 1;
  return static_cast<int>(std::clamp<i64>(items / grain, 1, kMaxKernelShards));
}

ShardRange shard_range(i64 items, int shards, int shard) {
  const i64 n = static_cast<i64>(shards);
  const i64 s = static_cast<i64>(shard);
  return {items * s / n, items * (s + 1) / n};
}

ShardSet::ShardSet(const SpmmConfig& cfg, i64 items, i64 grain) : items_(items) {
  const int n = shard_count(items, grain);
  ctxs_.reserve(static_cast<usize>(n));
  for (int s = 0; s < n; ++s) ctxs_.emplace_back(cfg);
}

void ShardSet::run(const std::function<void(int, ShardRange, Ctx&)>& body) {
  // jobs caps threads only; the shard set itself is already fixed.
  const int jobs = size() == 1 ? 1 : ctxs_.front().cfg.jobs;
  obs::TraceSpan span("shard_set");
  span.arg("shards", size()).arg("jobs", jobs).arg("items", items_);
  // Shard spans live on logical tracks derived from the *caller's*
  // track and the shard index — never from the executing OS thread —
  // so the merged trace is identical run-to-run at any job count.
  // run_indexed re-installs the caller's CancelToken on its workers and
  // polls before every shard claim, so a cancelled kernel unwinds at
  // shard granularity; per-tile polling inside the conversion engine
  // tightens that further for the online kernel.
  const u64 parent_track = obs::TraceTrack::current();
  run_indexed(jobs, size(), [&](i64 s) {
    const int shard = static_cast<int>(s);
    // Transient-failure injection point, before the shard touches its
    // Ctx: a recovered retry re-enters a completely clean shard.
    fault::transient_point(fault::FaultSite::kShardExec,
                           fault::mix(static_cast<u64>(s), static_cast<u64>(items_)));
    const ShardRange r = range(shard);
    obs::TraceTrack track(parent_track, "shard", static_cast<u64>(s));
    obs::TraceSpan sp("shard");
    Ctx& ctx = ctxs_[static_cast<usize>(s)];
    body(shard, r, ctx);
    // Arg values are computed at the call site even when no trace
    // session is installed, and total_dram_bytes() walks every channel
    // — skip the whole emission when nobody is listening (the
    // counting-mode fast path runs with tracing off).
    if (sp.enabled()) {
      sp.arg("shard", shard)
          .arg("begin", r.begin)
          .arg("end", r.end)
          .arg("instr", ctx.counters.total_instr())
          .arg("dram_bytes", ctx.mem.stats().total_dram_bytes());
    }
  });
}

Ctx& ShardSet::merge() {
  NMDT_TRACE_SCOPE("shard_merge");
  for (usize s = 1; s < ctxs_.size(); ++s) {
    ctxs_[0].counters += ctxs_[s].counters;
    ctxs_[0].mem.merge(ctxs_[s].mem);
  }
  return ctxs_[0];
}

template <class T>
void accumulate_dense(DenseMatrixT<T>& dst, const DenseMatrixT<T>& src) {
  const auto s = src.data();
  auto d = dst.data();
  for (usize i = 0; i < d.size(); ++i) d[i] += s[i];
}

template <class T>
PartialCT<T>::PartialCT(index_t rows, index_t cols, int shards) {
  buffers_.reserve(static_cast<usize>(shards));
  for (int s = 0; s < shards; ++s) buffers_.emplace_back(rows, cols, T{});
}

template <class T>
DenseMatrixT<T> PartialCT<T>::take() {
  DenseMatrixT<T> out = std::move(buffers_[0]);
  for (usize s = 1; s < buffers_.size(); ++s) accumulate_dense(out, buffers_[s]);
  return out;
}

// Compute precisions only: bf16 accumulates in f32, so the partial-C
// machinery never holds bf16 elements.
template void accumulate_dense(DenseMatrixT<float>&, const DenseMatrixT<float>&);
template void accumulate_dense(DenseMatrixT<double>&, const DenseMatrixT<double>&);
template class PartialCT<float>;
template class PartialCT<double>;

}  // namespace nmdt::detail
