// Merge-based C-stationary SpMM (Merrill & Garland [21], the orthogonal
// load-balancing fix the paper points at in Sec. 5.2).
//
// Row-per-warp kernels serialize each row in one warp, so a single
// heavy row sets the kernel's critical path on skewed matrices.  The
// merge-based decomposition splits the (row boundary, non-zero) merge
// path into equal spans: every warp gets at most `merge_chunk`
// non-zeros regardless of row structure.  Spans that end mid-row
// contribute their partial C row with an atomicAdd fixup; spans that
// own whole rows write C directly (the common case).  DCSR supplies
// the row stream so empty rows cost nothing — this composes the
// paper's densification with merge-based balancing, and the
// sec52_merge_ablation bench shows the critical path collapsing while
// traffic stays put.
//
// Sharding: dense rows split across shards (kMergeRowGrain rows each);
// shards own disjoint C rows, so they write the shared output directly.
// The one-time metadata stream is charged to shard 0 so merged totals
// match the serial kernel exactly.
#include <algorithm>
#include <optional>

#include "kernels/detail.hpp"
#include "util/error.hpp"

namespace nmdt::detail {

template <class V>
SpmmResult spmm_merge_c_stationary(const SpmmOperandsT<V>& ops, const DenseMatrixT<V>& B,
                                   const SpmmConfig& cfg) {
  NMDT_CHECK_CONFIG(cfg.merge_chunk > 0, "merge_chunk must be positive");
  using CT = typename VTraits<V>::compute_t;
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  const CsrT<V>& A = *ops.csr;
  std::optional<DcsrT<V>> local;
  const DcsrT<V>& D = ops.dcsr ? *ops.dcsr : local.emplace(dcsr_from_csr(A));

  const index_t K = B.cols();
  const index_t chunk = cfg.merge_chunk;
  DenseMatrixT<CT> C(A.rows, K, CT{});

  ShardSet shards(cfg, D.nnz_rows(), kMergeRowGrain);
  shards.run([&](int sh, ShardRange range, Ctx& ctx) {
    const DcsrLayout a = DcsrLayout::allocate(D, ctx.mem);
    const DenseLayout b = DenseLayout::allocate(B, ctx.mem, "B");
    const DenseLayout c = DenseLayout::allocate(A.rows, K, kVB, ctx.mem, "C");
    std::vector<u64> b_addrs;

    if (sh == 0) {
      // Metadata stream: each warp binary-searches its span start on the
      // merge path; amortized, the row_idx/row_ptr arrays stream once.
      const i64 meta_words = D.nnz_rows() * 2 + 1;
      ctx.waves(InstrClass::kMemory, meta_words);
      ctx.mem.warp_load(a.row_idx, D.nnz_rows() * kIndexBytes);
      ctx.mem.warp_load(a.row_ptr, (D.nnz_rows() + 1) * kIndexBytes);
    }

    for (i64 g = range.begin; g < range.end; ++g) {
      const index_t r = D.dense_row(g);
      const index_t row_begin = D.row_ptr[g];
      const index_t row_end = D.row_ptr[g + 1];
      CT* NMDT_RESTRICT c_row = C.row(r).data();

      for (index_t span = row_begin; span < row_end; span += chunk) {
        const index_t span_end = std::min<index_t>(span + chunk, row_end);
        const i64 cnt = span_end - span;
        const bool whole_row = span == row_begin && span_end == row_end;

        // One warp per span: bounded serial chain by construction.
        ++ctx.counters.warp_visits;
        ctx.counters.serial_iterations += static_cast<u64>(cnt);
        ctx.counters.observe_chain(static_cast<u64>(cnt));
        ctx.issue(InstrClass::kControl, ctx.cfg.arch.warp_size);
        // Span's entries stream in coalesced.
        ctx.mem.warp_load(a.col_idx + static_cast<u64>(span) * kIndexBytes,
                          cnt * kIndexBytes);
        ctx.mem.warp_load(a.val + static_cast<u64>(span) * kVB, cnt * kVB);
        ctx.issue(InstrClass::kMemory, ctx.cfg.arch.warp_size, static_cast<u64>(cnt));

        // Accumulate the span into registers (math on the host directly
        // into C — partials sum associatively up to FP rounding).  The
        // span's B-row fetches form one request run; the per-non-zero
        // issue calls collapse into one ×cnt call (linear identity).
        ctx.waves(InstrClass::kMemory, K, static_cast<u64>(cnt));
        ctx.waves(InstrClass::kFp, K, static_cast<u64>(cnt));
        ctx.counters.flops += static_cast<u64>(2 * cnt * K);
        b_addrs.clear();
        for (index_t j = span; j < span_end; ++j) b_addrs.push_back(b.addr(D.col_idx[j]));
        ctx.mem.warp_load_run(b_addrs, static_cast<i64>(K) * kVB);
        // Host FP sweep, cache-blocked over B columns (bit-identical:
        // per C element the span's contributions keep ascending-j
        // order; D shares A's entry ordering — densification drops
        // only rows).
        const index_t bc = b_block_cols(kVB, K);
        for (index_t k0 = 0; k0 < K; k0 += bc) {
          const index_t kb = std::min<index_t>(bc, K - k0);
          for (index_t j = span; j < span_end; ++j)
            axpy_row(D.val[j], B.row(D.col_idx[j]).data() + k0, c_row + k0, kb);
        }

        ctx.waves(InstrClass::kMemory, K);
        if (whole_row) {
          // Exclusive owner: plain store.
          ctx.mem.warp_store(c.addr(r), static_cast<i64>(K) * kVB);
        } else {
          // Split row: partial contribution merges atomically.
          ctx.mem.warp_atomic(c.addr(r), static_cast<i64>(K) * kVB);
          ++ctx.counters.atomic_updates;
        }
      }
    }
  });
  Ctx& merged = shards.merge();
  merged.counters.kernel_launches = 1;
  return finish<V>(merged, std::move(C));
}

template SpmmResult spmm_merge_c_stationary(const SpmmOperandsT<float>&,
                                            const DenseMatrixT<float>&, const SpmmConfig&);
template SpmmResult spmm_merge_c_stationary(const SpmmOperandsT<double>&,
                                            const DenseMatrixT<double>&,
                                            const SpmmConfig&);
template SpmmResult spmm_merge_c_stationary(const SpmmOperandsT<bf16_t>&,
                                            const DenseMatrixT<bf16_t>&,
                                            const SpmmConfig&);

}  // namespace nmdt::detail
