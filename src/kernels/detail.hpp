// Internal helpers shared by the SpMM kernel implementations.  Not part
// of the public API.
#pragma once

#include "gpusim/warp.hpp"
#include "kernels/spmm.hpp"

namespace nmdt::detail {

/// Device placement of a row-major dense matrix.
struct DenseLayout {
  u64 base = 0;
  index_t cols = 0;

  u64 addr(index_t r, index_t col_off = 0) const {
    return base + (static_cast<u64>(r) * static_cast<u64>(cols) + static_cast<u64>(col_off)) *
                      kValueBytes;
  }

  static DenseLayout allocate(const DenseMatrix& m, MemorySystem& mem,
                              const std::string& name) {
    return {mem.allocate(m.size_bytes(), name), m.cols()};
  }
};

/// Device placement of a CSR matrix.
struct CsrLayout {
  u64 row_ptr = 0;
  u64 col_idx = 0;
  u64 val = 0;

  static CsrLayout allocate(const Csr& a, MemorySystem& mem) {
    CsrLayout l;
    l.row_ptr = mem.allocate(static_cast<i64>(a.row_ptr.size()) * kIndexBytes, "A.row_ptr");
    l.col_idx = mem.allocate(static_cast<i64>(a.col_idx.size()) * kIndexBytes, "A.col_idx");
    l.val = mem.allocate(static_cast<i64>(a.val.size()) * kValueBytes, "A.val");
    return l;
  }
};

/// Device placement of an (untiled) DCSR matrix.
struct DcsrLayout {
  u64 row_idx = 0;
  u64 row_ptr = 0;
  u64 col_idx = 0;
  u64 val = 0;

  static DcsrLayout allocate(const Dcsr& a, MemorySystem& mem) {
    DcsrLayout l;
    l.row_idx = mem.allocate(static_cast<i64>(a.row_idx.size()) * kIndexBytes, "A.row_idx");
    l.row_ptr = mem.allocate(static_cast<i64>(a.row_ptr.size()) * kIndexBytes, "A.row_ptr");
    l.col_idx = mem.allocate(static_cast<i64>(a.col_idx.size()) * kIndexBytes, "A.col_idx");
    l.val = mem.allocate(static_cast<i64>(a.val.size()) * kValueBytes, "A.val");
    return l;
  }
};

/// Shared kernel-execution state.
struct Ctx {
  const SpmmConfig& cfg;
  MemorySystem mem;
  KernelCounters counters;

  explicit Ctx(const SpmmConfig& c) : cfg(c), mem(c.arch, c.mem_mode) { c.arch.validate(); }

  void issue(InstrClass cls, int lanes, u64 times = 1) {
    nmdt::issue(counters, cfg.arch, cls, lanes, times);
  }
  /// `elements` parallel lanes of work processed 32 at a time.
  void waves(InstrClass cls, i64 elements, u64 per_wave = 1) {
    issue_waves(counters, cfg.arch, cls, elements, per_wave);
  }
};

/// Assemble the result: snapshot counters/memory, compute timing.
SpmmResult finish(Ctx& ctx, DenseMatrix C, double compute_inflation = 1.0,
                  EngineStats engine = {}, double engine_busy_ns = 0.0,
                  double offline_prep_ns = 0.0);

/// Cooperative load of a B tile into shared memory: `width` B rows
/// (one per A strip column) by `tile_cols` columns starting at
/// (row_begin, col_begin).  Returns bytes loaded.
void load_b_tile(Ctx& ctx, const DenseLayout& b, index_t row_begin, index_t width,
                 index_t col_begin, index_t tile_cols);

// Kernel implementations (one translation unit per family).  Each takes
// the operand bundle and consumes the pre-converted artifact it needs,
// converting locally only when the field is absent (legacy path) or
// built under a different tiling than cfg.tiling.
SpmmResult spmm_csr_row_warp(const SpmmOperands& A, const DenseMatrix& B,
                             const SpmmConfig& cfg);
SpmmResult spmm_csr_row_thread(const SpmmOperands& A, const DenseMatrix& B,
                               const SpmmConfig& cfg);
SpmmResult spmm_dcsr_c_stationary(const SpmmOperands& A, const DenseMatrix& B,
                                  const SpmmConfig& cfg);
SpmmResult spmm_tiled_csr_b_stationary(const SpmmOperands& A, const DenseMatrix& B,
                                       const SpmmConfig& cfg);
SpmmResult spmm_tiled_dcsr_b_stationary(const SpmmOperands& A, const DenseMatrix& B,
                                        const SpmmConfig& cfg);
SpmmResult spmm_tiled_dcsr_online(const SpmmOperands& A, const DenseMatrix& B,
                                  const SpmmConfig& cfg);
SpmmResult spmm_a_stationary(const SpmmOperands& A, const DenseMatrix& B,
                             const SpmmConfig& cfg);
SpmmResult spmm_merge_c_stationary(const SpmmOperands& A, const DenseMatrix& B,
                                   const SpmmConfig& cfg);
SpmmResult spmm_hong_hybrid(const SpmmOperands& A, const DenseMatrix& B,
                            const SpmmConfig& cfg);

}  // namespace nmdt::detail
