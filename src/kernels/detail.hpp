// Internal helpers shared by the SpMM kernel implementations.  Not part
// of the public API.
//
// Precision: helpers are templated on the stored value type V.  Device
// layouts size value arrays at sizeof(V) (the width the memory system
// sees), while host-side accumulation runs at VTraits<V>::compute_t —
// bf16 operands are widened to f32 for every FMA and narrowed once when
// the result is stored (finish()).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "gpusim/warp.hpp"
#include "kernels/spmm.hpp"
#include "util/precision.hpp"
#include "util/simd.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define NMDT_RESTRICT __restrict__
#else
#define NMDT_RESTRICT
#endif

namespace nmdt::detail {

/// Device placement of a row-major dense matrix.  `vbytes` is the
/// stored element width — it scales every address and every request
/// size derived from this layout.
struct DenseLayout {
  u64 base = 0;
  index_t cols = 0;
  i64 vbytes = kValueBytes;

  u64 addr(index_t r, index_t col_off = 0) const {
    return base + (static_cast<u64>(r) * static_cast<u64>(cols) + static_cast<u64>(col_off)) *
                      static_cast<u64>(vbytes);
  }

  template <class V>
  static DenseLayout allocate(const DenseMatrixT<V>& m, MemorySystem& mem,
                              const std::string& name) {
    return {mem.allocate(m.size_bytes(), name), m.cols(), static_cast<i64>(sizeof(V))};
  }

  /// Placement by shape only — shard bodies replay the allocation
  /// sequence without materializing a host-side matrix.
  static DenseLayout allocate(index_t rows, index_t cols, i64 value_bytes,
                              MemorySystem& mem, const std::string& name) {
    return {mem.allocate(static_cast<i64>(rows) * cols * value_bytes, name), cols,
            value_bytes};
  }
};

/// Device placement of a CSR matrix.
struct CsrLayout {
  u64 row_ptr = 0;
  u64 col_idx = 0;
  u64 val = 0;

  template <class V>
  static CsrLayout allocate(const CsrT<V>& a, MemorySystem& mem) {
    CsrLayout l;
    l.row_ptr = mem.allocate(static_cast<i64>(a.row_ptr.size()) * kIndexBytes, "A.row_ptr");
    l.col_idx = mem.allocate(static_cast<i64>(a.col_idx.size()) * kIndexBytes, "A.col_idx");
    l.val = mem.allocate(static_cast<i64>(a.val.size() * sizeof(V)), "A.val");
    return l;
  }
};

/// Device placement of an (untiled) DCSR matrix.
struct DcsrLayout {
  u64 row_idx = 0;
  u64 row_ptr = 0;
  u64 col_idx = 0;
  u64 val = 0;

  template <class V>
  static DcsrLayout allocate(const DcsrT<V>& a, MemorySystem& mem) {
    DcsrLayout l;
    l.row_idx = mem.allocate(static_cast<i64>(a.row_idx.size()) * kIndexBytes, "A.row_idx");
    l.row_ptr = mem.allocate(static_cast<i64>(a.row_ptr.size()) * kIndexBytes, "A.row_ptr");
    l.col_idx = mem.allocate(static_cast<i64>(a.col_idx.size()) * kIndexBytes, "A.col_idx");
    l.val = mem.allocate(static_cast<i64>(a.val.size() * sizeof(V)), "A.val");
    return l;
  }
};

/// Shared kernel-execution state.
struct Ctx {
  const SpmmConfig& cfg;
  MemorySystem mem;
  KernelCounters counters;

  explicit Ctx(const SpmmConfig& c) : cfg(c), mem(c.arch, c.mem_mode) { c.arch.validate(); }

  void issue(InstrClass cls, int lanes, u64 times = 1) {
    nmdt::issue(counters, cfg.arch, cls, lanes, times);
  }
  /// `elements` parallel lanes of work processed 32 at a time.
  void waves(InstrClass cls, i64 elements, u64 per_wave = 1) {
    issue_waves(counters, cfg.arch, cls, elements, per_wave);
  }
};

/// Store a compute-precision accumulator into the result at storage
/// precision V: f32 moves it, f64 keeps the double matrix as `C64` and
/// narrows a convenience view, bf16 rounds each element to the nearest
/// bf16 (round-to-nearest-even, still held as f32 bits).
template <class V>
void store_result_c(SpmmResult& res, DenseMatrixT<typename VTraits<V>::compute_t>&& C);

/// Assemble the result: snapshot counters/memory, compute timing, store
/// C at precision V.
template <class V>
SpmmResult finish(Ctx& ctx, DenseMatrixT<typename VTraits<V>::compute_t> C,
                  double compute_inflation = 1.0, EngineStats engine = {},
                  double engine_busy_ns = 0.0, double offline_prep_ns = 0.0);

/// Cooperative load of a B tile into shared memory: `width` B rows
/// (one per A strip column) by `tile_cols` columns starting at
/// (row_begin, col_begin).  `addr_scratch` is a reusable buffer for the
/// batched request run.  Request sizes scale with the layout's element
/// width.
void load_b_tile(Ctx& ctx, const DenseLayout& b, index_t row_begin, index_t width,
                 index_t col_begin, index_t tile_cols, std::vector<u64>& addr_scratch);

/// c[0..k) += a·b[0..k): the accumulate micro-kernel every kernel's FMA
/// sweep routes through, dispatched to the SIMD tier resolved at
/// startup (util/simd.hpp: AVX2 / NEON / portable scalar).  Operands
/// are stored values (V); the accumulator row is compute precision —
/// bf16 widens to f32 per element, f32/f64 are identity widenings.
/// Every tier performs, per element, exactly one IEEE multiply followed
/// by one IEEE add (never a fused multiply-add), so each element still
/// receives the same single update as the scalar loop this replaces and
/// the FP result is unchanged bitwise at every tier.
template <class V>
inline void axpy_row(V a, const V* NMDT_RESTRICT b,
                     typename VTraits<V>::compute_t* NMDT_RESTRICT c, index_t k) {
  simd::axpy<V>(a, b, c, k);
}

/// Dense-B panel width (columns) for the host-side cache blocking of
/// the c-stationary / merge / a-stationary compute loops.  When a row's
/// (or span's) nnz all accumulate into one shared C row, sweeping the
/// full K columns per non-zero walks value_bytes·K of B per touch; once
/// the working set of touched B rows outgrows L1 every pass streams
/// from L2/DRAM.  Blocking the column dimension revisits the same B
/// rows one panel at a time instead.  Per C element the contributing
/// products are still added in ascending-nnz order — blocking permutes
/// work only ACROSS columns, never within one accumulator — so C is
/// bit-identical to the unblocked sweep.  Returns K (no blocking) when
/// one panel already covers the row.
inline index_t b_block_cols(i64 vbytes, index_t K) {
  // Target: ~64 resident B rows per panel in half of a 32 KiB L1.
  constexpr i64 kPanelBudgetBytes = 16 * 1024;
  i64 block = kPanelBudgetBytes / (64 * vbytes);
  block = (block / 32) * 32;  // keep panels warp-aligned
  if (block < 32) block = 32;
  if (block >= static_cast<i64>(K)) return K;
  return static_cast<index_t>(block);
}

/// dst += src elementwise (the partial-C reduction step; always applied
/// in ascending shard order so the FP accumulation order is fixed).
/// Instantiated at the compute precisions (float, double).
template <class T>
void accumulate_dense(DenseMatrixT<T>& dst, const DenseMatrixT<T>& src);

// ---- Intra-kernel sharding ------------------------------------------
//
// One SpMM call splits its visit sequence into shards executed on up to
// cfg.jobs host threads.  The decomposition is a function of the work
// size ALONE (shard_count never reads cfg.jobs), so the shard set — and
// after the deterministic shard-index-order merge, every byte of the
// result — is identical at any job count.  Each shard owns a private
// Ctx whose MemorySystem replayed the identical allocation sequence;
// counting-mode totals are order-independent sums, so the merged stats
// also equal the pre-sharding serial implementation's.  In cache-sim
// mode each shard carries its own L2/DRAM-bank state (a shard models a
// group of SMs with a slice of the memory system); totals are summed.

inline constexpr int kMaxKernelShards = 16;
/// Work units per shard before a kernel splits: vertical strips for the
/// B-/A-stationary families, 32-row warp groups for the C-stationary
/// family, dense rows for the merge kernel.  Sized so the small
/// matrices used by unit tests stay single-shard.
inline constexpr i64 kStripGrain = 16;
inline constexpr i64 kRowGroupGrain = 32;
inline constexpr i64 kMergeRowGrain = 1024;

/// clamp(items / grain, 1, kMaxKernelShards).
int shard_count(i64 items, i64 grain);

struct ShardRange {
  i64 begin = 0;
  i64 end = 0;
};

/// Contiguous, balanced slice of [0, items) for shard `shard` of
/// `shards`.
ShardRange shard_range(i64 items, int shards, int shard);

/// The shard set of one kernel invocation: shard_count() private Ctxs
/// plus the run/merge choreography.
class ShardSet {
 public:
  ShardSet(const SpmmConfig& cfg, i64 items, i64 grain);

  int size() const { return static_cast<int>(ctxs_.size()); }
  ShardRange range(int shard) const { return shard_range(items_, size(), shard); }

  /// Execute body(shard, range, ctx) for every shard on up to cfg.jobs
  /// threads (inline when there is one shard or one job).
  void run(const std::function<void(int, ShardRange, Ctx&)>& body);

  /// Fold counters and memory stats of shards 1..n-1 into shard 0, in
  /// shard-index order, and return shard 0's Ctx.
  Ctx& merge();

 private:
  i64 items_;
  std::vector<Ctx> ctxs_;
};

/// Per-shard partial C buffers for kernels whose shards contribute to
/// overlapping C rows (B-/A-stationary).  Buffers hold the compute
/// precision T.  Shard 0's buffer doubles as the final C: take() folds
/// shards 1..n-1 into it in index order.
template <class T>
class PartialCT {
 public:
  PartialCT(index_t rows, index_t cols, int shards);

  DenseMatrixT<T>& shard(int s) { return buffers_[static_cast<usize>(s)]; }
  DenseMatrixT<T> take();

 private:
  std::vector<DenseMatrixT<T>> buffers_;
};

using PartialC = PartialCT<value_t>;

/// Index-based generator of the (b_col_begin, strip) visit sequence of
/// Sec. 3.1.3 for strips [strip_begin, strip_end): replaces the
/// materialized pair vector (an O(strips·K/bt) allocation per call) and
/// doubles as the shard slicer — a shard iterates its own strip range.
class VisitOrder {
 public:
  VisitOrder(index_t K, index_t bt, index_t strip_begin, index_t strip_end,
             TraversalOrder order)
      : bt_(bt),
        strip_begin_(strip_begin),
        strips_(strip_end - strip_begin),
        blocks_((K + bt - 1) / bt),
        order_(order) {}

  i64 size() const { return static_cast<i64>(strips_) * blocks_; }

  /// i-th visit as (b_col_begin, strip).
  std::pair<index_t, index_t> operator[](i64 i) const {
    if (order_ == TraversalOrder::kColumnMajor) {
      return {static_cast<index_t>(i / strips_) * bt_,
              strip_begin_ + static_cast<index_t>(i % strips_)};
    }
    return {static_cast<index_t>(i % blocks_) * bt_,
            strip_begin_ + static_cast<index_t>(i / blocks_)};
  }

 private:
  index_t bt_;
  index_t strip_begin_;
  index_t strips_;
  index_t blocks_;
  TraversalOrder order_;
};

// Kernel implementations (one translation unit per family), templated
// on the stored value type and explicitly instantiated for float,
// double, and bf16_t in their defining translation units.  Each takes
// the operand bundle and consumes the pre-converted artifact it needs,
// converting locally only when the field is absent (legacy path) or
// built under a different tiling than cfg.tiling.
template <class V>
SpmmResult spmm_csr_row_warp(const SpmmOperandsT<V>& A, const DenseMatrixT<V>& B,
                             const SpmmConfig& cfg);
template <class V>
SpmmResult spmm_csr_row_thread(const SpmmOperandsT<V>& A, const DenseMatrixT<V>& B,
                               const SpmmConfig& cfg);
template <class V>
SpmmResult spmm_dcsr_c_stationary(const SpmmOperandsT<V>& A, const DenseMatrixT<V>& B,
                                  const SpmmConfig& cfg);
template <class V>
SpmmResult spmm_tiled_csr_b_stationary(const SpmmOperandsT<V>& A, const DenseMatrixT<V>& B,
                                       const SpmmConfig& cfg);
template <class V>
SpmmResult spmm_tiled_dcsr_b_stationary(const SpmmOperandsT<V>& A,
                                        const DenseMatrixT<V>& B, const SpmmConfig& cfg);
template <class V>
SpmmResult spmm_tiled_dcsr_online(const SpmmOperandsT<V>& A, const DenseMatrixT<V>& B,
                                  const SpmmConfig& cfg);
template <class V>
SpmmResult spmm_a_stationary(const SpmmOperandsT<V>& A, const DenseMatrixT<V>& B,
                             const SpmmConfig& cfg);
template <class V>
SpmmResult spmm_merge_c_stationary(const SpmmOperandsT<V>& A, const DenseMatrixT<V>& B,
                                   const SpmmConfig& cfg);
template <class V>
SpmmResult spmm_hong_hybrid(const SpmmOperandsT<V>& A, const DenseMatrixT<V>& B,
                            const SpmmConfig& cfg);

}  // namespace nmdt::detail
