// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the integrity checksum
// used by the fault-tolerance layer: serialized matrices carry a CRC
// trailer, and every engine-converted DCSR tile carries a CRC computed
// at conversion time and re-checked at kernel consumption.  Chainable
// via the `seed` parameter so multi-buffer digests need no scratch
// concatenation.
#pragma once

#include "util/types.hpp"

namespace nmdt {

/// CRC-32 of `len` bytes at `data`.  Chain buffers by passing the
/// previous call's result as `seed` (seed 0 starts a fresh digest).
u32 crc32(const void* data, usize len, u32 seed = 0);

}  // namespace nmdt
