// Runtime-dispatched SIMD micro-kernels for the host-side FP hot loops.
//
// The kernels' axpy_row (c[0..k) += a·b[0..k)) accounts for most of the
// serial wall-clock at bench scale; this shim replaces the
// compiler-vectorized scalar loop with explicit AVX2 (x86-64) / NEON
// (aarch64) implementations selected ONCE at startup from CPUID plus an
// NMDT_SIMD environment override, behind a portable scalar fallback.
//
// Bit-identity contract: every tier performs, per element, exactly one
// IEEE multiply followed by one IEEE add at the compute precision —
// never a fused multiply-add.  The baseline build (no -mfma) cannot
// contract the scalar loop, so the established numerics are
// separate-rounded mul-then-add; the vector paths use unfused
// mul/add intrinsics and simd.cpp compiles with -ffp-contract=off so
// the scalar reference in that TU matches on every architecture
// (aarch64 GCC would otherwise fuse).  tests/simd_test.cpp pins the
// dispatched result bitwise against the scalar reference for all three
// precisions, ragged K, and unaligned pointers.
//
// Environment override (resolved once, before the first dispatch):
//   NMDT_SIMD=off|scalar   force the portable fallback
//   NMDT_SIMD=avx2|neon    request a tier (falls back to scalar when
//                          the host does not support it)
//   NMDT_SIMD=auto         default: best supported tier
#pragma once

#include "util/precision.hpp"
#include "util/types.hpp"

namespace nmdt::simd {

enum class Tier : u8 {
  kScalar = 0,  ///< portable fallback (compiler-vectorized at best)
  kAvx2 = 1,    ///< x86-64 AVX2 (unfused mul+add; FMA deliberately unused)
  kNeon = 2,    ///< aarch64 Advanced SIMD (unfused mul+add)
};

const char* tier_name(Tier t);

/// Tier the dispatched entry points are currently bound to.  Resolved
/// from NMDT_SIMD + CPU detection by a static initializer in simd.cpp,
/// so it is stable before main() and any kernel call.
Tier active_tier();

/// True when the host CPU can execute tier `t`.
bool tier_supported(Tier t);

/// Test hook: rebind the dispatched entry points to tier `t`.  Returns
/// false (and leaves the binding untouched) when the host does not
/// support the tier.  Not thread-safe against concurrently running
/// kernels — call between runs only.
bool force_tier(Tier t);

using AxpyF32Fn = void (*)(float a, const float* b, float* c, index_t k);
using AxpyF64Fn = void (*)(double a, const double* b, double* c, index_t k);
using AxpyBf16Fn = void (*)(bf16_t a, const bf16_t* b, float* c, index_t k);

/// Dispatched entry points (bound once at startup; see force_tier).
extern AxpyF32Fn axpy_f32;
extern AxpyF64Fn axpy_f64;
extern AxpyBf16Fn axpy_bf16;

/// Portable scalar references — the numerics every tier must reproduce
/// bitwise (compiled with -ffp-contract=off).  Exposed for tests.
void axpy_f32_scalar(float a, const float* b, float* c, index_t k);
void axpy_f64_scalar(double a, const double* b, double* c, index_t k);
void axpy_bf16_scalar(bf16_t a, const bf16_t* b, float* c, index_t k);

/// Typed front door: routes V ∈ {float, double, bf16_t} to the matching
/// dispatched entry point.
template <class V>
inline void axpy(V a, const V* b, typename VTraits<V>::compute_t* c, index_t k);

template <>
inline void axpy<float>(float a, const float* b, float* c, index_t k) {
  axpy_f32(a, b, c, k);
}
template <>
inline void axpy<double>(double a, const double* b, double* c, index_t k) {
  axpy_f64(a, b, c, k);
}
template <>
inline void axpy<bf16_t>(bf16_t a, const bf16_t* b, float* c, index_t k) {
  axpy_bf16(a, b, c, k);
}

}  // namespace nmdt::simd
