#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nmdt {

namespace {
u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(u64 seed) {
  u64 s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // All-zero state is a fixed point of xoshiro; splitmix64 cannot produce
  // four zero words from any seed, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

u64 Rng::below(u64 n) {
  NMDT_REQUIRE(n > 0, "Rng::below requires n > 0");
  // Lemire's nearly-divisionless bounded sampling with rejection to kill
  // modulo bias.
  const u64 threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const u64 r = (*this)();
    if (r >= threshold) return r % n;
  }
}

i64 Rng::range(i64 lo, i64 hi) {
  NMDT_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
  const u64 span = static_cast<u64>(hi - lo) + 1;
  return lo + static_cast<i64>(below(span));
}

double Rng::normal() {
  // Box–Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

ZipfSampler::ZipfSampler(i64 n, double exponent) {
  NMDT_REQUIRE(n > 0, "ZipfSampler requires n > 0");
  NMDT_REQUIRE(exponent >= 0.0, "ZipfSampler requires a non-negative exponent");
  cdf_.resize(static_cast<usize>(n));
  double acc = 0.0;
  for (i64 k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[static_cast<usize>(k)] = acc;
  }
  const double total = acc;
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail short
}

i64 ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<i64>(it - cdf_.begin());
}

}  // namespace nmdt
