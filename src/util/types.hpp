// Fundamental scalar types shared across the library.
//
// The paper (Sec. 2) assumes 4-byte indices and 4-byte single-precision
// values for all sparse-format vectors; `index_t`/`value_t` encode that
// assumption once so footprint accounting (Figs. 8/9) stays consistent.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nmdt {

using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using usize = std::size_t;

/// Index type of sparse-format vectors (col_idx, row_ptr, ...): 4 bytes.
using index_t = i32;
/// Value type of matrix elements: IEEE binary32, matching the paper's
/// FP32 evaluation datatype.
using value_t = float;

/// Size in bytes of one index entry in any sparse-format vector.
inline constexpr i64 kIndexBytes = sizeof(index_t);
/// Size in bytes of one value entry.
inline constexpr i64 kValueBytes = sizeof(value_t);

}  // namespace nmdt
