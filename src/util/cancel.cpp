#include "util/cancel.hpp"

#include "util/error.hpp"

namespace nmdt {

namespace {

thread_local const CancelToken* t_current_token = nullptr;

i64 to_ns(CancelToken::Clock::time_point at) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(at.time_since_epoch())
      .count();
}

}  // namespace

CancelToken CancelToken::child_of(const CancelToken& parent) {
  CancelToken child;
  child.state_->parent = parent.state_;
  return child;
}

void CancelToken::request(CancelReason reason) const {
  int expected = 0;
  state_->reason.compare_exchange_strong(expected, static_cast<int>(reason),
                                         std::memory_order_relaxed);
}

void CancelToken::set_deadline(Clock::time_point at, CancelReason reason) const {
  state_->deadline_reason.store(static_cast<int>(reason), std::memory_order_relaxed);
  state_->deadline_ns.store(to_ns(at), std::memory_order_relaxed);
}

CancelReason CancelToken::own_reason(const State& s) {
  const int requested = s.reason.load(std::memory_order_relaxed);
  if (requested != 0) return static_cast<CancelReason>(requested);
  const i64 deadline = s.deadline_ns.load(std::memory_order_relaxed);
  if (deadline != 0 && to_ns(Clock::now()) >= deadline) {
    return static_cast<CancelReason>(s.deadline_reason.load(std::memory_order_relaxed));
  }
  return CancelReason::kNone;
}

CancelReason CancelToken::reason() const {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    const CancelReason r = own_reason(*s);
    if (r != CancelReason::kNone) return r;
  }
  return CancelReason::kNone;
}

bool CancelToken::cancelled() const { return reason() != CancelReason::kNone; }

void CancelToken::poll() const {
  switch (reason()) {
    case CancelReason::kNone:
      return;
    case CancelReason::kDeadline:
      throw TimeoutError("work unit exceeded its deadline");
    case CancelReason::kSuiteDeadline:
      throw CancelledError("cancelled: suite deadline exceeded");
    case CancelReason::kUser:
      throw CancelledError("cancelled by request");
  }
}

CancelScope::CancelScope(const CancelToken& token) : prev_(t_current_token) {
  t_current_token = &token;
}

CancelScope::~CancelScope() { t_current_token = prev_; }

const CancelToken* current_cancel_token() { return t_current_token; }

void poll_cancellation() {
  if (t_current_token != nullptr) t_current_token->poll();
}

}  // namespace nmdt
