#include "util/crc32.hpp"

#include <array>

namespace nmdt {

namespace {

constexpr u32 kPoly = 0xEDB88320u;

std::array<u32, 256> make_table() {
  std::array<u32, 256> t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

}  // namespace

u32 crc32(const void* data, usize len, u32 seed) {
  static const std::array<u32, 256> table = make_table();
  const u8* p = static_cast<const u8*>(data);
  u32 c = seed ^ 0xFFFFFFFFu;
  for (usize i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace nmdt
