// Deterministic, seedable pseudo-random number generation.
//
// Every matrix in the evaluation suite is generated from an explicit
// 64-bit seed through this generator, so all figures are reproducible
// bit-for-bit across runs and machines (DESIGN.md Sec. 5).  The core is
// xoshiro256** (Blackman & Vigna), chosen for speed and quality; the
// seeding path runs the seed through SplitMix64 so small consecutive
// seeds yield decorrelated streams.
#pragma once

#include <array>
#include <vector>

#include "util/types.hpp"

namespace nmdt {

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via SplitMix64.
  void reseed(u64 seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~u64{0}; }

  result_type operator()() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  u64 below(u64 n);

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi);

  /// Standard normal via Box–Muller (no cached second value; simplicity
  /// over the ~2x throughput — generation is not on the critical path).
  double normal();

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<u64, 4> state_{};
};

/// Zipf-distributed integer sampler over {0, .., n-1} with exponent s.
///
/// Used by the power-law matrix generators: row/column popularity in
/// real graph adjacency matrices follows a heavy-tailed distribution,
/// which is what makes the paper's SSF skewness term informative.
/// Implemented by inverse-transform over the precomputed CDF; O(log n)
/// per sample.
class ZipfSampler {
 public:
  ZipfSampler(i64 n, double exponent);

  i64 operator()(Rng& rng) const;

  i64 size() const { return static_cast<i64>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace nmdt
