#include "util/precision.hpp"

#include "util/error.hpp"

namespace nmdt {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kF64: return "f64";
    case Precision::kBf16: return "bf16";
    case Precision::kF32: default: return "f32";
  }
}

Precision parse_precision(const std::string& s) {
  if (s == "f32" || s == "fp32" || s == "float") return Precision::kF32;
  if (s == "f64" || s == "fp64" || s == "double") return Precision::kF64;
  if (s == "bf16" || s == "bfloat16") return Precision::kBf16;
  throw ConfigError("unknown precision '" + s + "' (expected f32, f64, or bf16)");
}

double default_tolerance(Precision p) {
  switch (p) {
    // ~10x the binary64 unit roundoff: accumulation-order slack only.
    case Precision::kF64: return 1e-12;
    // 8-bit mantissa storage rounding on A, B, and the final store:
    // 2^-8 ≈ 3.9e-3 per rounding, with headroom for K-wide dot products.
    case Precision::kBf16: return 3e-2;
    // ~100x the binary32 unit roundoff.
    case Precision::kF32: default: return 1e-5;
  }
}

}  // namespace nmdt
