// Small descriptive-statistics helpers used by the analysis module and
// the benchmark harness (geomean speedups, percentiles, histograms).
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace nmdt {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  ///< requires all xs > 0
double stddev(std::span<const double> xs);   ///< sample standard deviation
double median(std::span<const double> xs);

/// p in [0, 100]; linear interpolation between order statistics.
double percentile(std::span<const double> xs, double p);

/// Fraction of entries strictly greater than `threshold`.
double fraction_above(std::span<const double> xs, double threshold);

/// Fixed-width histogram over [lo, hi); values outside are clamped into
/// the first/last bin so totals always equal the input size.
class Histogram {
 public:
  Histogram(double lo, double hi, usize bins);

  void add(double x);
  void add(std::span<const double> xs);

  usize bins() const { return counts_.size(); }
  u64 count(usize bin) const { return counts_[bin]; }
  u64 total() const { return total_; }
  double bin_lo(usize bin) const;
  double bin_hi(usize bin) const;

 private:
  double lo_, hi_;
  std::vector<u64> counts_;
  u64 total_ = 0;
};

}  // namespace nmdt
