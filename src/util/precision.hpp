// The value-precision axis of the SpMM pipeline.
//
// The paper evaluates everything at FP32; this header opens that choice
// into a scenario axis.  Three precisions are supported end to end:
//
//   * kF32  — IEEE binary32, the paper's datatype and the default.  The
//     float instantiation of every templated component is byte-for-byte
//     the pre-refactor code path, so default-precision results stay
//     bitwise identical.
//   * kF64  — IEEE binary64.  Storage and accumulation both widen.
//   * kBf16 — bfloat16, software-emulated: values are *stored* as the
//     top 16 bits of a binary32 (u16, 2 bytes — which is what the
//     footprint/traffic model sees) and *computed* in binary32, with a
//     round-to-nearest-even narrowing on every store.  This is the
//     widen-multiply-accumulate discipline of real bf16 FMA units, and
//     because rounding is a pure function of the accumulated float, the
//     PR 2 shard-merge bit-identity guarantee carries over unchanged:
//     results are invariant to --jobs within bf16.
//
// VTraits<V> separates the storage scalar (what sits in format vectors
// and drives simulated DRAM bytes via sizeof) from the compute scalar
// (what the FMA datapath accumulates in).  dispatch_precision() turns
// the runtime Precision enum into the storage-type template parameter.
#pragma once

#include <bit>
#include <cmath>
#include <string>

#include "util/types.hpp"

namespace nmdt {

enum class Precision : u8 {
  kF32 = 0,  ///< binary32 storage + binary32 accumulate (paper default)
  kF64 = 1,  ///< binary64 storage + binary64 accumulate
  kBf16 = 2, ///< bfloat16 storage (u16) + binary32 accumulate
};

inline constexpr Precision kAllPrecisions[] = {Precision::kF32, Precision::kF64,
                                               Precision::kBf16};

/// Software bfloat16: the top half of a binary32.  Trivially copyable
/// (lives in format vectors and serialized payloads as a raw u16);
/// arithmetic never happens on the narrow type — widen to float first.
struct bf16_t {
  u16 bits = 0;

  constexpr bf16_t() = default;

  /// Round-to-nearest-even narrowing from binary32 (the hardware bf16
  /// store rule).  NaN is quieted so the narrowing can never fabricate
  /// an infinity out of a NaN payload whose low bits carried.
  static constexpr u16 round_to_nearest_even(float f) {
    const u32 u = std::bit_cast<u32>(f);
    if ((u & 0x7fffffffu) > 0x7f800000u) {  // NaN: keep sign, force quiet
      return static_cast<u16>((u >> 16) | 0x0040u);
    }
    const u32 lsb = (u >> 16) & 1u;
    return static_cast<u16>((u + 0x7fffu + lsb) >> 16);
  }

  constexpr explicit bf16_t(float f) : bits(round_to_nearest_even(f)) {}

  static constexpr bf16_t from_bits(u16 b) {
    bf16_t v;
    v.bits = b;
    return v;
  }

  /// Exact widening: every bf16 is representable in binary32.
  constexpr float to_float() const {
    return std::bit_cast<float>(static_cast<u32>(bits) << 16);
  }
  constexpr explicit operator float() const { return to_float(); }

  constexpr bool operator==(const bf16_t&) const = default;
};

static_assert(sizeof(bf16_t) == 2, "bf16 storage must be 2 bytes");

/// Storage-scalar traits: the compute type paired with a storage type,
/// plus the widen/narrow conversions between them.  All lossy rounding
/// in the pipeline funnels through from_compute()/from_f32().
template <class V>
struct VTraits;

template <>
struct VTraits<float> {
  using compute_t = float;
  static constexpr Precision kPrecision = Precision::kF32;
  static constexpr float to_compute(float v) { return v; }
  static constexpr float from_compute(float v) { return v; }
  static constexpr double to_f64(float v) { return static_cast<double>(v); }
  static constexpr float from_f32(float v) { return v; }
  static constexpr float to_f32(float v) { return v; }
};

template <>
struct VTraits<double> {
  using compute_t = double;
  static constexpr Precision kPrecision = Precision::kF64;
  static constexpr double to_compute(double v) { return v; }
  static constexpr double from_compute(double v) { return v; }
  static constexpr double to_f64(double v) { return v; }
  static constexpr double from_f32(float v) { return static_cast<double>(v); }
  static constexpr float to_f32(double v) { return static_cast<float>(v); }
};

template <>
struct VTraits<bf16_t> {
  using compute_t = float;
  static constexpr Precision kPrecision = Precision::kBf16;
  static constexpr float to_compute(bf16_t v) { return v.to_float(); }
  static constexpr bf16_t from_compute(float v) { return bf16_t(v); }
  static constexpr double to_f64(bf16_t v) { return static_cast<double>(v.to_float()); }
  static constexpr bf16_t from_f32(float v) { return bf16_t(v); }
  static constexpr float to_f32(bf16_t v) { return v.to_float(); }
};

/// Bytes of one stored value at precision `p` (what footprint accounting
/// and the simulated memory system charge per element).
constexpr i64 value_bytes(Precision p) {
  switch (p) {
    case Precision::kF64: return static_cast<i64>(sizeof(double));
    case Precision::kBf16: return static_cast<i64>(sizeof(bf16_t));
    case Precision::kF32: default: return static_cast<i64>(sizeof(float));
  }
}

const char* precision_name(Precision p);

/// Parse "f32" / "f64" / "bf16" (throws ConfigError on anything else).
Precision parse_precision(const std::string& s);

/// Default eps for the fSPMV tolerance bound at this precision: roughly
/// one decimal order above the unit roundoff of the *compute* type for
/// f32/f64, and of the storage mantissa (8 bits) for bf16.
double default_tolerance(Precision p);

template <class V>
struct VTag {
  using type = V;
};

/// Runtime-enum → storage-type dispatch: f receives VTag<float>,
/// VTag<double>, or VTag<bf16_t>.
template <class F>
decltype(auto) dispatch_precision(Precision p, F&& f) {
  switch (p) {
    case Precision::kF64: return f(VTag<double>{});
    case Precision::kBf16: return f(VTag<bf16_t>{});
    case Precision::kF32: default: return f(VTag<float>{});
  }
}

}  // namespace nmdt
