// Cooperative cancellation with wall-clock deadlines.
//
// A CancelToken is a shared handle onto one cancellation state: anything
// holding a copy can request cancellation (a SIGINT handler, the suite
// watchdog, a test hook) and anything polling it observes the request at
// its next poll point.  Cancellation is *cooperative* — nothing is ever
// killed mid-operation; work units poll at natural safe points (kernel
// shard boundaries, conversion-engine tile requests, suite row/arm
// starts) and unwind by throwing a typed error, so cancellation latency
// is bounded by the coarsest poll granularity while every invariant the
// deterministic pipeline relies on (shard merges, journal framing) stays
// intact.
//
// Two ways out of poll():
//   * CancelledError — an external request (user signal, suite-level
//     deadline): the work unit is abandoned, not failed; the suite
//     runner leaves such arms unrecorded so a resumed sweep re-runs
//     them from scratch, bit-identically.
//   * TimeoutError — this token's own deadline expired (a per-arm
//     --arm-timeout): a real typed failure, recorded like any other
//     arm error.
//
// Tokens chain: a child token (one suite arm) polls its own state first,
// then its parent (the whole sweep), so one suite-wide request fans out
// to every arm without the watchdog touching each token.  All state is
// in relaxed atomics — request() is async-signal-safe, and polling is a
// couple of loads on the hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "util/types.hpp"

namespace nmdt {

/// Why a token was cancelled (kNone = not cancelled).
enum class CancelReason : int {
  kNone = 0,
  kUser,           ///< external request (SIGINT/SIGTERM, test hook)
  kDeadline,       ///< this token's own deadline expired (per-arm timeout)
  kSuiteDeadline,  ///< the suite-level deadline expired
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A fresh, independent cancellation state.
  CancelToken() : state_(std::make_shared<State>()) {}

  /// A child token: polls its own state, then every ancestor's.
  static CancelToken child_of(const CancelToken& parent);

  /// Request cancellation.  Async-signal-safe (two relaxed atomic
  /// stores); the first request wins and later ones are ignored.
  void request(CancelReason reason) const;

  /// Arm this token's deadline: poll() throws TimeoutError (reason
  /// kDeadline) or CancelledError (reason kSuiteDeadline) once Clock
  /// passes `at`.  The deadline also makes expiry *observable* between
  /// polls so a watchdog thread can convert it into a request.
  void set_deadline(Clock::time_point at, CancelReason reason) const;

  /// True once this token or any ancestor is cancelled or past its
  /// deadline.  Does not throw.
  bool cancelled() const;

  /// The effective reason (own request/deadline first, then ancestors);
  /// kNone when not cancelled.
  CancelReason reason() const;

  /// Throw the typed error for the current cancellation state, if any:
  /// TimeoutError for kDeadline, CancelledError for kUser and
  /// kSuiteDeadline.  The designated safe point of cooperative
  /// cancellation — cheap enough for per-tile granularity.
  void poll() const;

 private:
  struct State {
    std::atomic<int> reason{0};
    /// Deadline as nanoseconds since Clock epoch; 0 = unarmed.
    std::atomic<i64> deadline_ns{0};
    std::atomic<int> deadline_reason{0};
    std::shared_ptr<const State> parent;
  };

  /// Reason for `s` alone (request or expired deadline), ignoring
  /// ancestors.
  static CancelReason own_reason(const State& s);

  std::shared_ptr<State> state_;
};

/// RAII thread-local installation of the token work on this thread
/// should poll.  Scopes nest (the previous token is restored on
/// destruction), and `run_indexed` re-installs the caller's current
/// token on its pool workers, so deep callees — the conversion engine's
/// tile loop, kernel shard bodies — can poll without any parameter
/// threading.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken& token);
  ~CancelScope();

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* prev_;
};

/// The token installed on this thread, or nullptr outside any scope.
const CancelToken* current_cancel_token();

/// Poll the thread's installed token; a no-op when none is installed
/// (library code stays cancellation-agnostic unless a caller opted in).
void poll_cancellation();

}  // namespace nmdt
