#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace nmdt {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  NMDT_REQUIRE(!header_.empty(), "Table requires at least one column");
}

Table& Table::begin_row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::cell(const std::string& s) {
  NMDT_REQUIRE(!rows_.empty(), "Table::cell before begin_row");
  rows_.back().push_back(s);
  return *this;
}

Table& Table::cell(double v, int precision) { return cell(format_double(v, precision)); }
Table& Table::cell(i64 v) { return cell(std::to_string(v)); }
Table& Table::cell(u64 v) { return cell(std::to_string(v)); }

void Table::print(std::ostream& os) const {
  std::vector<usize> widths(header_.size());
  for (usize c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (usize c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < header_.size(); ++c) {
      const std::string& s = c < row.size() ? row[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << s;
    }
    os << '\n';
  };
  emit_row(header_);
  usize rule = 0;
  for (usize w : widths) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream os(path);
  NMDT_REQUIRE(os.good(), "cannot open CSV output file: " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_sci(double v) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(2) << v;
  return os.str();
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  double v = bytes;
  while (std::abs(v) >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(unit == 0 ? 0 : 1) << v << ' ' << kUnits[unit];
  return os.str();
}

}  // namespace nmdt
