// SIMD tier detection, binding, and the per-tier axpy implementations.
//
// This TU is compiled with -ffp-contract=off (see src/CMakeLists.txt):
// the scalar references here define the mul-then-add numerics the
// vector tiers must reproduce bitwise, so the compiler must not fuse
// them into FMAs on architectures where it legally could (aarch64).
// The vector tiers use unfused mul/add intrinsics for the same reason.

#include "util/simd.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define NMDT_SIMD_X86 1
#elif defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>
#define NMDT_SIMD_NEON 1
#endif

#if defined(__GNUC__) || defined(__clang__)
#define NMDT_SIMD_RESTRICT __restrict__
#else
#define NMDT_SIMD_RESTRICT
#endif

namespace nmdt::simd {

// ---- Portable scalar tier (the numerics reference) -------------------

void axpy_f32_scalar(float a, const float* NMDT_SIMD_RESTRICT b,
                     float* NMDT_SIMD_RESTRICT c, index_t k) {
  index_t i = 0;
  for (; i + 8 <= k; i += 8) {
    c[i + 0] += a * b[i + 0];
    c[i + 1] += a * b[i + 1];
    c[i + 2] += a * b[i + 2];
    c[i + 3] += a * b[i + 3];
    c[i + 4] += a * b[i + 4];
    c[i + 5] += a * b[i + 5];
    c[i + 6] += a * b[i + 6];
    c[i + 7] += a * b[i + 7];
  }
  for (; i < k; ++i) c[i] += a * b[i];
}

void axpy_f64_scalar(double a, const double* NMDT_SIMD_RESTRICT b,
                     double* NMDT_SIMD_RESTRICT c, index_t k) {
  index_t i = 0;
  for (; i + 8 <= k; i += 8) {
    c[i + 0] += a * b[i + 0];
    c[i + 1] += a * b[i + 1];
    c[i + 2] += a * b[i + 2];
    c[i + 3] += a * b[i + 3];
    c[i + 4] += a * b[i + 4];
    c[i + 5] += a * b[i + 5];
    c[i + 6] += a * b[i + 6];
    c[i + 7] += a * b[i + 7];
  }
  for (; i < k; ++i) c[i] += a * b[i];
}

void axpy_bf16_scalar(bf16_t a, const bf16_t* NMDT_SIMD_RESTRICT b,
                      float* NMDT_SIMD_RESTRICT c, index_t k) {
  const float av = a.to_float();
  index_t i = 0;
  for (; i + 8 <= k; i += 8) {
    c[i + 0] += av * b[i + 0].to_float();
    c[i + 1] += av * b[i + 1].to_float();
    c[i + 2] += av * b[i + 2].to_float();
    c[i + 3] += av * b[i + 3].to_float();
    c[i + 4] += av * b[i + 4].to_float();
    c[i + 5] += av * b[i + 5].to_float();
    c[i + 6] += av * b[i + 6].to_float();
    c[i + 7] += av * b[i + 7].to_float();
  }
  for (; i < k; ++i) c[i] += av * b[i].to_float();
}

// ---- AVX2 tier (x86-64) ----------------------------------------------
//
// target("avx2") lets a baseline-ISA TU emit AVX2 encodings for these
// functions only; the dispatcher never binds them unless CPUID reports
// AVX2.  mul+add stay separate instructions — _mm256_fmadd_* would
// round once instead of twice and break bit-identity with the scalar
// reference.

#if defined(NMDT_SIMD_X86)

__attribute__((target("avx2"))) static void axpy_f32_avx2(float a, const float* b,
                                                          float* c, index_t k) {
  const __m256 av = _mm256_set1_ps(a);
  index_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m256 p0 = _mm256_mul_ps(av, _mm256_loadu_ps(b + i));
    const __m256 p1 = _mm256_mul_ps(av, _mm256_loadu_ps(b + i + 8));
    _mm256_storeu_ps(c + i, _mm256_add_ps(_mm256_loadu_ps(c + i), p0));
    _mm256_storeu_ps(c + i + 8, _mm256_add_ps(_mm256_loadu_ps(c + i + 8), p1));
  }
  for (; i + 8 <= k; i += 8) {
    const __m256 p = _mm256_mul_ps(av, _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(c + i, _mm256_add_ps(_mm256_loadu_ps(c + i), p));
  }
  for (; i < k; ++i) c[i] += a * b[i];
}

__attribute__((target("avx2"))) static void axpy_f64_avx2(double a, const double* b,
                                                          double* c, index_t k) {
  const __m256d av = _mm256_set1_pd(a);
  index_t i = 0;
  for (; i + 8 <= k; i += 8) {
    const __m256d p0 = _mm256_mul_pd(av, _mm256_loadu_pd(b + i));
    const __m256d p1 = _mm256_mul_pd(av, _mm256_loadu_pd(b + i + 4));
    _mm256_storeu_pd(c + i, _mm256_add_pd(_mm256_loadu_pd(c + i), p0));
    _mm256_storeu_pd(c + i + 4, _mm256_add_pd(_mm256_loadu_pd(c + i + 4), p1));
  }
  for (; i + 4 <= k; i += 4) {
    const __m256d p = _mm256_mul_pd(av, _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(c + i, _mm256_add_pd(_mm256_loadu_pd(c + i), p));
  }
  for (; i < k; ++i) c[i] += a * b[i];
}

__attribute__((target("avx2"))) static void axpy_bf16_avx2(bf16_t a, const bf16_t* b,
                                                           float* c, index_t k) {
  const float af = a.to_float();
  const __m256 av = _mm256_set1_ps(af);
  index_t i = 0;
  for (; i + 8 <= k; i += 8) {
    // Widen 8 bf16 (top halves of binary32) to 8 exact floats: zero-
    // extend u16→u32, shift into the high half, reinterpret as float.
    const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m256i wide = _mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16);
    const __m256 bv = _mm256_castsi256_ps(wide);
    const __m256 p = _mm256_mul_ps(av, bv);
    _mm256_storeu_ps(c + i, _mm256_add_ps(_mm256_loadu_ps(c + i), p));
  }
  for (; i < k; ++i) c[i] += af * b[i].to_float();
}

#endif  // NMDT_SIMD_X86

// ---- NEON tier (aarch64) ---------------------------------------------
//
// vmulq/vaddq, never vfmaq: Advanced SIMD FMLA fuses, which would break
// bit-identity with the scalar reference.

#if defined(NMDT_SIMD_NEON)

static void axpy_f32_neon(float a, const float* b, float* c, index_t k) {
  const float32x4_t av = vdupq_n_f32(a);
  index_t i = 0;
  for (; i + 8 <= k; i += 8) {
    const float32x4_t p0 = vmulq_f32(av, vld1q_f32(b + i));
    const float32x4_t p1 = vmulq_f32(av, vld1q_f32(b + i + 4));
    vst1q_f32(c + i, vaddq_f32(vld1q_f32(c + i), p0));
    vst1q_f32(c + i + 4, vaddq_f32(vld1q_f32(c + i + 4), p1));
  }
  for (; i + 4 <= k; i += 4) {
    const float32x4_t p = vmulq_f32(av, vld1q_f32(b + i));
    vst1q_f32(c + i, vaddq_f32(vld1q_f32(c + i), p));
  }
  for (; i < k; ++i) c[i] += a * b[i];
}

static void axpy_f64_neon(double a, const double* b, double* c, index_t k) {
  const float64x2_t av = vdupq_n_f64(a);
  index_t i = 0;
  for (; i + 4 <= k; i += 4) {
    const float64x2_t p0 = vmulq_f64(av, vld1q_f64(b + i));
    const float64x2_t p1 = vmulq_f64(av, vld1q_f64(b + i + 2));
    vst1q_f64(c + i, vaddq_f64(vld1q_f64(c + i), p0));
    vst1q_f64(c + i + 2, vaddq_f64(vld1q_f64(c + i + 2), p1));
  }
  for (; i + 2 <= k; i += 2) {
    const float64x2_t p = vmulq_f64(av, vld1q_f64(b + i));
    vst1q_f64(c + i, vaddq_f64(vld1q_f64(c + i), p));
  }
  for (; i < k; ++i) c[i] += a * b[i];
}

static void axpy_bf16_neon(bf16_t a, const bf16_t* b, float* c, index_t k) {
  const float af = a.to_float();
  const float32x4_t av = vdupq_n_f32(af);
  index_t i = 0;
  for (; i + 4 <= k; i += 4) {
    const uint16x4_t raw = vld1_u16(reinterpret_cast<const u16*>(b + i));
    const float32x4_t bv = vreinterpretq_f32_u32(vshll_n_u16(raw, 16));
    const float32x4_t p = vmulq_f32(av, bv);
    vst1q_f32(c + i, vaddq_f32(vld1q_f32(c + i), p));
  }
  for (; i < k; ++i) c[i] += af * b[i].to_float();
}

#endif  // NMDT_SIMD_NEON

// ---- Detection, binding, dispatch state ------------------------------

AxpyF32Fn axpy_f32 = &axpy_f32_scalar;
AxpyF64Fn axpy_f64 = &axpy_f64_scalar;
AxpyBf16Fn axpy_bf16 = &axpy_bf16_scalar;

namespace {

Tier g_tier = Tier::kScalar;

void bind(Tier t) {
  g_tier = t;
  switch (t) {
#if defined(NMDT_SIMD_X86)
    case Tier::kAvx2:
      axpy_f32 = &axpy_f32_avx2;
      axpy_f64 = &axpy_f64_avx2;
      axpy_bf16 = &axpy_bf16_avx2;
      return;
#endif
#if defined(NMDT_SIMD_NEON)
    case Tier::kNeon:
      axpy_f32 = &axpy_f32_neon;
      axpy_f64 = &axpy_f64_neon;
      axpy_bf16 = &axpy_bf16_neon;
      return;
#endif
    default:
      axpy_f32 = &axpy_f32_scalar;
      axpy_f64 = &axpy_f64_scalar;
      axpy_bf16 = &axpy_bf16_scalar;
      return;
  }
}

Tier best_supported() {
  if (tier_supported(Tier::kAvx2)) return Tier::kAvx2;
  if (tier_supported(Tier::kNeon)) return Tier::kNeon;
  return Tier::kScalar;
}

/// NMDT_SIMD override: off|scalar force the fallback, avx2|neon request
/// a tier (granted only when supported), anything else selects auto.
Tier resolve_tier() {
  const char* env = std::getenv("NMDT_SIMD");
  std::string v;
  for (const char* p = env; p && *p; ++p)
    v.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  if (v == "off" || v == "scalar") return Tier::kScalar;
  if (v == "avx2") return tier_supported(Tier::kAvx2) ? Tier::kAvx2 : Tier::kScalar;
  if (v == "neon") return tier_supported(Tier::kNeon) ? Tier::kNeon : Tier::kScalar;
  return best_supported();
}

/// Bind before main() so every kernel call (and active_tier()) sees the
/// resolved tier without a per-call check.
struct BindAtStartup {
  BindAtStartup() { bind(resolve_tier()); }
} g_bind_at_startup;

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kAvx2: return "avx2";
    case Tier::kNeon: return "neon";
    case Tier::kScalar: default: return "scalar";
  }
}

Tier active_tier() { return g_tier; }

bool tier_supported(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
#if defined(NMDT_SIMD_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Tier::kNeon:
#if defined(NMDT_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool force_tier(Tier t) {
  if (!tier_supported(t)) return false;
  bind(t);
  return true;
}

}  // namespace nmdt::simd
