#include "util/line_reader.hpp"

#include <istream>

#include "util/error.hpp"

namespace nmdt {

bool read_bounded_line(std::istream& is, std::string& line, usize max_bytes,
                       const char* what) {
  line.clear();
  if (!is.good()) return false;
  std::streambuf* sb = is.rdbuf();
  for (;;) {
    const int c = sb->sbumpc();
    if (c == std::streambuf::traits_type::eof()) {
      is.setstate(line.empty() ? (std::ios::eofbit | std::ios::failbit)
                               : std::ios::eofbit);
      return !line.empty();
    }
    if (c == '\n') return true;
    if (line.size() >= max_bytes) {
      throw ParseError(std::string(what) + " line exceeds the " +
                       std::to_string(max_bytes) + "-byte limit");
    }
    line.push_back(static_cast<char>(c));
  }
}

}  // namespace nmdt
