// Bounded text-line ingestion.
//
// Every place that reads attacker-controllable text line-by-line — the
// Matrix Market parser, the service's JSON-lines request decoder —
// must not let one newline-free stream grow a std::string without
// bound.  read_bounded_line is std::getline with a byte cap: a line
// longer than `max_bytes` throws a typed ParseError naming the source
// (`what`) instead of exhausting memory, and everything shorter behaves
// exactly like std::getline ('\n' consumed and dropped, '\r' kept for
// the caller's whitespace handling, false on immediate EOF).
#pragma once

#include <iosfwd>
#include <string>

#include "util/types.hpp"

namespace nmdt {

/// Default cap, generous for every legitimate producer: a Matrix Market
/// entry line is tens of bytes, a service request line well under 4 KiB.
inline constexpr usize kDefaultMaxLineBytes = usize{1} << 20;  // 1 MiB

/// Read one '\n'-terminated line (the terminator is consumed but not
/// stored) into `line`.  Returns false when the stream is already at
/// EOF; throws ParseError("<what> line exceeds ...") once the line
/// passes `max_bytes` — the stream is left mid-line and should be
/// abandoned.
bool read_bounded_line(std::istream& is, std::string& line,
                       usize max_bytes = kDefaultMaxLineBytes,
                       const char* what = "input");

}  // namespace nmdt
