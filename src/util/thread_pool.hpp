// Fixed-size worker pool for host-side parallelism (the suite runner's
// per-matrix rows and per-kernel arms).  Simulated GPU work stays
// single-threaded per task; the pool only overlaps independent
// simulations across host cores.
//
// Tasks may submit further tasks (the suite runner's prep tasks fan out
// per-kernel arm tasks), so workers never block on each other: a task
// either runs to completion or enqueues follow-up work.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace nmdt {

class ThreadPool {
 public:
  /// `threads <= 0` selects default_jobs().
  explicit ThreadPool(int threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task.  Safe from any thread, including pool workers.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.  Only
  /// meaningful when no other thread is concurrently submitting.
  void wait_idle();

  /// Hardware concurrency clamped to at least 1 (the value used when a
  /// caller passes jobs <= 0).
  static int default_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< queue became non-empty / stopping
  std::condition_variable idle_cv_;   ///< a worker went idle
  usize active_ = 0;                  ///< tasks currently executing
  bool stop_ = false;
};

/// Parallel index loop: run fn(i) for every i in [0, n) on up to `jobs`
/// threads (<= 0 selects ThreadPool::default_jobs()).  Runs inline —
/// no pool, no synchronization — when one thread suffices.  Indices are
/// claimed from a shared counter, so callers must not depend on
/// assignment of indices to threads; blocks until every index ran.
/// Every index runs even when some throw; afterwards the exception from
/// the LOWEST throwing index is rethrown on the caller — a deterministic
/// choice at any job count (which throw happens "first" in wall-clock
/// depends on scheduling; the lowest index does not).
///
/// Cancellation: the caller's installed CancelToken (util/cancel.hpp)
/// is captured at entry and re-installed on every pool worker, so fn
/// can poll it no matter which thread runs the index; the loop itself
/// polls before each claim.  Once the token fires, remaining indices
/// are SKIPPED (the one documented exception to "every index runs" —
/// the caller is abandoning the whole unit of work, so partial
/// coverage can no longer be observed) and the cancellation error is
/// rethrown unless a lower-index real failure beat it.
void run_indexed(int jobs, i64 n, const std::function<void(i64)>& fn);

}  // namespace nmdt
