#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nmdt {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    NMDT_REQUIRE(x > 0.0, "geomean requires strictly positive inputs");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  NMDT_REQUIRE(p >= 0.0 && p <= 100.0, "percentile requires p in [0, 100]");
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const usize lo = static_cast<usize>(rank);
  const usize hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double fraction_above(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0.0;
  usize n = 0;
  for (double x : xs) {
    if (x > threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

Histogram::Histogram(double lo, double hi, usize bins) : lo_(lo), hi_(hi) {
  NMDT_REQUIRE(hi > lo, "Histogram requires hi > lo");
  NMDT_REQUIRE(bins > 0, "Histogram requires at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  i64 bin = static_cast<i64>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<i64>(bin, 0, static_cast<i64>(counts_.size()) - 1);
  ++counts_[static_cast<usize>(bin)];
  ++total_;
}

void Histogram::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(usize bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(usize bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) / static_cast<double>(counts_.size());
}

}  // namespace nmdt
