// Typed error hierarchy and checked-precondition macros.
//
// Library code throws (never aborts) on malformed inputs so that callers
// such as the Matrix Market reader can surface actionable diagnostics;
// internal invariants use NMDT_ASSERT which compiles out in release-only
// hot paths is deliberately avoided — invariant checks here are cheap
// relative to the simulation work they guard.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>

#include "util/types.hpp"

namespace nmdt {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed sparse-matrix data (non-monotone row_ptr, index out of
/// range, inconsistent vector lengths, ...).
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// Unparsable or unsupported external input (Matrix Market files, CLI).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Invalid configuration (zero-width tiles, bandwidth <= 0, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// An injected or detected fault that exhausted its recovery budget
/// (tile reconversion retries, transient-failure retries) and had to be
/// surfaced to the caller instead of silently corrupting results.
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what) : Error(what) {}
};

/// A work unit exceeded its wall-clock deadline (per-arm --arm-timeout)
/// and was cooperatively cancelled by the suite watchdog.  Recorded as a
/// typed FAILED row like any other arm error; CLI exit code 6.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Cooperative cancellation (SIGINT/SIGTERM, suite-level deadline):
/// the work was *abandoned*, not failed — a resumed sweep re-runs it.
/// CLI exit code 130, mirroring the shell's SIGINT convention.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Load shedding: the service refused to take on more work (admission
/// queue full, tenant over quota, server draining for shutdown).  The
/// request was *never started* — retrying after `retry_after_ms` is
/// always safe.  A hint < 0 means "do not retry" (shutdown).
class OverloadError : public Error {
 public:
  explicit OverloadError(const std::string& what, i64 retry_after_ms = 0)
      : Error(what), retry_after_ms_(retry_after_ms) {}
  i64 retry_after_ms() const { return retry_after_ms_; }

 private:
  i64 retry_after_ms_ = 0;
};

/// A supervised worker *process* died (SIGSEGV/SIGKILL/abort, RLIMIT_AS
/// breach, missed heartbeat) often enough to exhaust its retry budget —
/// the arm it was running is quarantined rather than re-dispatched
/// forever (src/proc/supervisor.hpp).  Distinct from FaultError: the
/// failure was a process crash, not a detected in-process fault, so the
/// result bits were never produced at all.  CLI exit code 8.
class WorkerError : public Error {
 public:
  explicit WorkerError(const std::string& what) : Error(what) {}
};

/// The one exit-code table every binary shares (pinned by a test and
/// documented in README "Exit codes"): 2 ParseError, 3 FormatError,
/// 4 ConfigError, 5 FaultError, 6 TimeoutError, 7 OverloadError,
/// 8 WorkerError, 130 CancelledError, 1 anything else.
int exit_code_for(const std::exception& e);

/// "TypeName: what()" for a caught exception — the uniform FAILED(...)
/// label the suite runner and CLI attach to typed errors.
std::string describe_exception(const std::exception& e);
std::string describe_current_exception();

/// Rebuild a throwable typed exception from a describe_exception()
/// string ("TypeName: message").  Used when replaying journaled arm
/// failures: fail_fast must rethrow the same *type* (and thus map to
/// the same CLI exit code) whether the failure happened live or was
/// restored from a checkpoint.  Unknown type names fall back to Error.
std::exception_ptr exception_from_description(const std::string& description);

namespace detail {
[[noreturn]] void throw_format_error(const char* cond, const char* file, int line,
                                     const std::string& msg);
[[noreturn]] void throw_config_error(const char* cond, const char* file, int line,
                                     const std::string& msg);
}  // namespace detail

}  // namespace nmdt

/// Validate user-provided matrix data; throws FormatError on failure.
#define NMDT_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::nmdt::detail::throw_format_error(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                        \
  } while (0)

/// Validate configuration values; throws ConfigError on failure.
#define NMDT_CHECK_CONFIG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::nmdt::detail::throw_config_error(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                        \
  } while (0)
