#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <optional>

#include "util/cancel.hpp"

namespace nmdt {

int ThreadPool::default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : default_jobs();
  workers_.reserve(static_cast<usize>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained: exit
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

void run_indexed(int jobs, i64 n, const std::function<void(i64)>& fn) {
  if (n <= 0) return;
  if (jobs <= 0) jobs = ThreadPool::default_jobs();
  jobs = static_cast<int>(std::min<i64>(jobs, n));
  // Capture the caller's cancellation token so pool workers inherit it
  // (thread-locals do not cross the submit boundary on their own).
  std::optional<CancelToken> cancel;
  if (const CancelToken* tok = current_cancel_token()) cancel = *tok;
  const auto is_cancelled = [&] { return cancel && cancel->cancelled(); };
  std::exception_ptr err;
  i64 err_index = -1;
  if (jobs == 1) {
    // Sequential order: the first caught failure is the lowest index.
    for (i64 i = 0; i < n; ++i) {
      if (is_cancelled()) break;  // abandon remaining indices
      try {
        fn(i);
      } catch (...) {
        if (err_index < 0) {
          err = std::current_exception();
          err_index = i;
        }
      }
    }
  } else {
    std::atomic<i64> next{0};
    std::mutex err_mu;
    {
      ThreadPool pool(jobs);
      for (int w = 0; w < jobs; ++w) {
        pool.submit([&] {
          std::optional<CancelScope> scope;
          if (cancel) scope.emplace(*cancel);
          for (;;) {
            if (is_cancelled()) return;  // stop claiming indices
            const i64 i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) return;
            try {
              fn(i);
            } catch (...) {
              std::lock_guard<std::mutex> lock(err_mu);
              if (err_index < 0 || i < err_index) {
                err = std::current_exception();
                err_index = i;
              }
            }
          }
        });
      }
      pool.wait_idle();
    }
  }
  // A real failure from an index that ran wins over the cancellation
  // (it is the lower, more informative event); otherwise surface the
  // cancellation as its typed error.
  if (err) std::rethrow_exception(err);
  if (is_cancelled()) cancel->poll();
}

}  // namespace nmdt
