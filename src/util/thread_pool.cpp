#include "util/thread_pool.hpp"

#include <algorithm>

namespace nmdt {

int ThreadPool::default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : default_jobs();
  workers_.reserve(static_cast<usize>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained: exit
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace nmdt
