// Console table / CSV emission used by every bench binary.
//
// Each bench prints the paper's rows as an aligned table on stdout and
// mirrors them into `<bench>.csv` so EXPERIMENTS.md can be regenerated
// mechanically.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace nmdt {

/// Column-aligned table builder. Cells are strings; numeric helpers
/// format with sensible fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& begin_row();
  Table& cell(const std::string& s);
  Table& cell(const char* s) { return cell(std::string(s)); }
  Table& cell(double v, int precision = 3);
  Table& cell(i64 v);
  Table& cell(u64 v);
  Table& cell(int v) { return cell(static_cast<i64>(v)); }

  usize rows() const { return rows_.size(); }

  /// Render with padded columns and a rule under the header.
  void print(std::ostream& os) const;

  /// Write RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` digits after the point.
std::string format_double(double v, int precision = 3);

/// Format as scientific notation with 2 significant decimals (1.23e-05).
std::string format_sci(double v);

/// Human-readable byte count ("1.5 MiB").
std::string format_bytes(double bytes);

}  // namespace nmdt
