#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace nmdt {

std::string sparkline(const std::vector<double>& ys, usize width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  std::vector<double> vals;
  vals.reserve(ys.size());
  for (double y : ys) {
    if (std::isfinite(y)) vals.push_back(y);
  }
  if (vals.empty() || width == 0) return "";
  // Bucket long series down to `width` cells, keeping the max per bucket
  // so a single spike stays visible after downsampling.
  std::vector<double> cells;
  if (vals.size() <= width) {
    cells = vals;
  } else {
    cells.resize(width);
    for (usize c = 0; c < width; ++c) {
      const usize lo = c * vals.size() / width;
      const usize hi = std::max(lo + 1, (c + 1) * vals.size() / width);
      double m = vals[lo];
      for (usize i = lo + 1; i < hi && i < vals.size(); ++i) m = std::max(m, vals[i]);
      cells[c] = m;
    }
  }
  const auto [mn_it, mx_it] = std::minmax_element(cells.begin(), cells.end());
  const double mn = *mn_it, mx = *mx_it;
  std::string out;
  for (double v : cells) {
    int level = 3;  // flat series render mid-height
    if (mx > mn) {
      level = static_cast<int>((v - mn) / (mx - mn) * 7.0 + 0.5);
      level = std::clamp(level, 0, 7);
    }
    out += kLevels[level];
  }
  return out;
}

AsciiScatter::AsciiScatter(int width, int height) : width_(width), height_(height) {
  NMDT_CHECK_CONFIG(width >= 10 && height >= 4, "scatter grid too small");
}

void AsciiScatter::add(double x, double y, char marker) {
  points_.push_back({x, y, marker});
}

void AsciiScatter::set_labels(std::string x_label, std::string y_label) {
  x_label_ = std::move(x_label);
  y_label_ = std::move(y_label);
}

void AsciiScatter::render(std::ostream& os) const {
  auto tx = [&](double v) { return log_x_ ? std::log10(v) : v; };
  auto ty = [&](double v) { return log_y_ ? std::log10(v) : v; };
  auto usable = [&](const Point& p) {
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) return false;
    if (log_x_ && p.x <= 0.0) return false;
    if (log_y_ && p.y <= 0.0) return false;
    return true;
  };

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  usize plotted = 0;
  for (const auto& p : points_) {
    if (!usable(p)) continue;
    ++plotted;
    xmin = std::min(xmin, tx(p.x));
    xmax = std::max(xmax, tx(p.x));
    ymin = std::min(ymin, ty(p.y));
    ymax = std::max(ymax, ty(p.y));
  }
  for (double h : hlines_) {
    if (!log_y_ || h > 0.0) {
      ymin = std::min(ymin, ty(h));
      ymax = std::max(ymax, ty(h));
    }
  }
  if (plotted == 0) {
    os << "(no plottable points)\n";
    return;
  }
  if (xmax - xmin < 1e-12) xmax = xmin + 1.0;
  if (ymax - ymin < 1e-12) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<usize>(height_),
                                std::string(static_cast<usize>(width_), ' '));
  auto row_of = [&](double v) {
    const double t = (ty(v) - ymin) / (ymax - ymin);
    return std::clamp(height_ - 1 - static_cast<int>(t * (height_ - 1) + 0.5), 0,
                      height_ - 1);
  };
  for (double h : hlines_) {
    if (log_y_ && h <= 0.0) continue;
    std::fill(grid[static_cast<usize>(row_of(h))].begin(),
              grid[static_cast<usize>(row_of(h))].end(), '-');
  }
  for (const auto& p : points_) {
    if (!usable(p)) continue;
    const double u = (tx(p.x) - xmin) / (xmax - xmin);
    const int col = std::clamp(static_cast<int>(u * (width_ - 1) + 0.5), 0, width_ - 1);
    grid[static_cast<usize>(row_of(p.y))][static_cast<usize>(col)] = p.marker;
  }

  auto fmt_edge = [&](double v, bool log_axis) {
    return log_axis ? format_sci(std::pow(10.0, v)) : format_double(v, 2);
  };
  os << y_label_ << "\n";
  for (int r = 0; r < height_; ++r) {
    const double v = ymax - (ymax - ymin) * r / (height_ - 1);
    os << std::setw(9) << fmt_edge(v, log_y_) << " |" << grid[static_cast<usize>(r)]
       << "\n";
  }
  os << std::string(11, ' ') << std::string(static_cast<usize>(width_), '-') << "\n"
     << std::string(11, ' ') << fmt_edge(xmin, log_x_)
     << std::string(static_cast<usize>(std::max(1, width_ - 18)), ' ')
     << fmt_edge(xmax, log_x_) << "   (" << x_label_ << ")\n";
}

}  // namespace nmdt
