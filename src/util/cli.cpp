#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace nmdt {

CliParser::CliParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw ParseError("positional arguments are not supported: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--flag value` unless the next token is another flag or absent, in
    // which case treat as boolean presence.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";
    }
  }
}

void CliParser::declare(const std::string& name, const std::string& help_text) {
  declared_.emplace_back(name, help_text);
}

bool CliParser::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliParser::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

i64 CliParser::get_int(const std::string& name, i64 fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const i64 v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw ParseError("flag --" + name + " expects an integer, got '" + it->second + "'");
  }
  return v;
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw ParseError("flag --" + name + " expects a number, got '" + it->second + "'");
  }
  return v;
}

void CliParser::validate() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    bool known = name == "help";
    for (const auto& [decl, help_text] : declared_) {
      (void)help_text;
      if (decl == name) {
        known = true;
        break;
      }
    }
    if (!known) throw ParseError("unknown flag --" + name + " (try --help)");
  }
}

std::string CliParser::help(const std::string& program_summary) const {
  std::ostringstream os;
  os << program_summary << "\n\nFlags:\n";
  for (const auto& [name, help_text] : declared_) {
    os << "  --" << name << "\n      " << help_text << "\n";
  }
  return os.str();
}

}  // namespace nmdt
