#include "util/error.hpp"

#include <sstream>

namespace nmdt::detail {

namespace {
std::string compose(const char* cond, const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " [" << cond << " failed at " << file << ":" << line << "]";
  return os.str();
}
}  // namespace

void throw_format_error(const char* cond, const char* file, int line, const std::string& msg) {
  throw FormatError(compose(cond, file, line, msg));
}

void throw_config_error(const char* cond, const char* file, int line, const std::string& msg) {
  throw ConfigError(compose(cond, file, line, msg));
}

}  // namespace nmdt::detail
