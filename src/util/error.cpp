#include "util/error.hpp"

#include <sstream>

namespace nmdt {

namespace {
const char* type_name_of(const std::exception& e) {
  if (dynamic_cast<const WorkerError*>(&e)) return "WorkerError";
  if (dynamic_cast<const TimeoutError*>(&e)) return "TimeoutError";
  if (dynamic_cast<const CancelledError*>(&e)) return "CancelledError";
  if (dynamic_cast<const OverloadError*>(&e)) return "OverloadError";
  if (dynamic_cast<const FaultError*>(&e)) return "FaultError";
  if (dynamic_cast<const ParseError*>(&e)) return "ParseError";
  if (dynamic_cast<const FormatError*>(&e)) return "FormatError";
  if (dynamic_cast<const ConfigError*>(&e)) return "ConfigError";
  if (dynamic_cast<const Error*>(&e)) return "Error";
  return "std::exception";
}
}  // namespace

int exit_code_for(const std::exception& e) {
  if (dynamic_cast<const CancelledError*>(&e)) return 130;
  if (dynamic_cast<const WorkerError*>(&e)) return 8;
  if (dynamic_cast<const OverloadError*>(&e)) return 7;
  if (dynamic_cast<const TimeoutError*>(&e)) return 6;
  if (dynamic_cast<const FaultError*>(&e)) return 5;
  if (dynamic_cast<const ConfigError*>(&e)) return 4;
  if (dynamic_cast<const FormatError*>(&e)) return 3;
  if (dynamic_cast<const ParseError*>(&e)) return 2;
  return 1;
}

std::string describe_exception(const std::exception& e) {
  return std::string(type_name_of(e)) + ": " + e.what();
}

std::exception_ptr exception_from_description(const std::string& description) {
  std::string type = description;
  std::string msg;
  if (const auto sep = description.find(": "); sep != std::string::npos) {
    type = description.substr(0, sep);
    msg = description.substr(sep + 2);
  }
  try {
    if (type == "WorkerError") throw WorkerError(msg);
    if (type == "TimeoutError") throw TimeoutError(msg);
    if (type == "CancelledError") throw CancelledError(msg);
    if (type == "OverloadError") throw OverloadError(msg);
    if (type == "FaultError") throw FaultError(msg);
    if (type == "ParseError") throw ParseError(msg);
    if (type == "FormatError") throw FormatError(msg);
    if (type == "ConfigError") throw ConfigError(msg);
    throw Error(msg.empty() ? description : msg);
  } catch (...) {
    return std::current_exception();
  }
}

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return describe_exception(e);
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace nmdt

namespace nmdt::detail {

namespace {
std::string compose(const char* cond, const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " [" << cond << " failed at " << file << ":" << line << "]";
  return os.str();
}
}  // namespace

void throw_format_error(const char* cond, const char* file, int line, const std::string& msg) {
  throw FormatError(compose(cond, file, line, msg));
}

void throw_config_error(const char* cond, const char* file, int line, const std::string& msg) {
  throw ConfigError(compose(cond, file, line, msg));
}

}  // namespace nmdt::detail
