// Minimal command-line flag parser for the example / bench binaries.
//
// Supports `--name value` and `--name=value`; unknown flags raise
// ParseError so typos fail loudly instead of silently running the
// default experiment.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace nmdt {

class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  /// Declare a flag (for --help and unknown-flag detection).
  void declare(const std::string& name, const std::string& help);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  i64 get_int(const std::string& name, i64 fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Throws ParseError listing any flag that was passed but not declared.
  void validate() const;

  /// Render declared flags as a help string.
  std::string help(const std::string& program_summary) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> declared_;
};

}  // namespace nmdt
