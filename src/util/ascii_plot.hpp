// Terminal scatter plots for the figure benches: a log-log character
// grid that makes the Fig. 4 / Fig. 16 dot clouds legible straight from
// the bench output (the CSVs remain the precise record).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace nmdt {

/// One-line Unicode block sparkline ("▁▂▅█") of a series, min-max
/// normalized; series longer than `width` are bucketed (max per bucket,
/// so spikes survive downsampling).  Non-finite samples are dropped;
/// an empty or all-equal series renders flat.  Used by the trace-report
/// hotspot tables and the bench-trajectory renderer.
std::string sparkline(const std::vector<double>& ys, usize width = 24);

class AsciiScatter {
 public:
  /// `width`×`height` character cells.
  AsciiScatter(int width = 72, int height = 24);

  /// Add a point of series `marker` (later series overdraw earlier ones
  /// in shared cells).  Non-finite or non-positive values are dropped
  /// in log mode.
  void add(double x, double y, char marker);

  void set_log_x(bool on) { log_x_ = on; }
  void set_log_y(bool on) { log_y_ = on; }
  void set_labels(std::string x_label, std::string y_label);
  /// Draw a horizontal reference line (e.g. y = 1 for speedup plots).
  void add_hline(double y) { hlines_.push_back(y); }

  void render(std::ostream& os) const;

 private:
  struct Point {
    double x, y;
    char marker;
  };
  int width_, height_;
  bool log_x_ = true;
  bool log_y_ = true;
  std::string x_label_ = "x";
  std::string y_label_ = "y";
  std::vector<Point> points_;
  std::vector<double> hlines_;
};

}  // namespace nmdt
