// Coordinate-list (COO) sparse format.
//
// COO is the interchange format: Matrix Market files deserialize into it
// (paper Sec. 4.1 notes MM uses COO) and all generators emit it before
// compression into CSR/CSC.
//
// Templated on the stored value scalar V (util/precision.hpp); `Coo`
// aliases the default-precision instantiation.
#pragma once

#include <vector>

#include "util/precision.hpp"
#include "util/types.hpp"

namespace nmdt {

template <class V>
struct CooT {
  using value_type = V;

  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row;  ///< row coordinate per non-zero
  std::vector<index_t> col;  ///< column coordinate per non-zero
  std::vector<V> val;        ///< value per non-zero

  i64 nnz() const { return static_cast<i64>(val.size()); }

  /// Density nnz / (rows*cols); 0 for degenerate dimensions.
  double density() const;

  /// Append one entry (no duplicate detection; see coalesce()).
  void push(index_t r, index_t c, V v);

  /// Sort entries into row-major order and sum duplicates in place.
  /// Summation happens in the compute type of V (widen-add-narrow for
  /// bf16), matching the kernel accumulation discipline.
  void coalesce();

  /// Throw FormatError unless coordinates are in range and vector
  /// lengths agree.
  void validate() const;
};

using Coo = CooT<value_t>;

extern template struct CooT<float>;
extern template struct CooT<double>;
extern template struct CooT<bf16_t>;

}  // namespace nmdt
