#include "formats/footprint.hpp"

namespace nmdt {

template <class V>
Footprint footprint(const CsrT<V>& m) {
  Footprint f;
  f.data_bytes = m.nnz() * static_cast<i64>(sizeof(V));
  f.metadata_bytes = m.nnz() * kIndexBytes +
                     static_cast<i64>(m.row_ptr.size()) * kIndexBytes;
  return f;
}

template <class V>
Footprint footprint(const CscT<V>& m) {
  Footprint f;
  f.data_bytes = m.nnz() * static_cast<i64>(sizeof(V));
  f.metadata_bytes = m.nnz() * kIndexBytes +
                     static_cast<i64>(m.col_ptr.size()) * kIndexBytes;
  return f;
}

template <class V>
Footprint footprint(const DcsrT<V>& m) {
  Footprint f;
  f.data_bytes = m.nnz() * static_cast<i64>(sizeof(V));
  f.metadata_bytes = m.nnz() * kIndexBytes +
                     static_cast<i64>(m.row_ptr.size()) * kIndexBytes +
                     static_cast<i64>(m.row_idx.size()) * kIndexBytes;
  return f;
}

template <class V>
Footprint footprint(const TiledCsrT<V>& m) {
  Footprint f;
  for (const auto& strip : m.strips) {
    for (const auto& tile : strip) f += footprint(tile.body);
  }
  return f;
}

template <class V>
Footprint footprint(const TiledDcsrT<V>& m) {
  Footprint f;
  for (const auto& strip : m.strips) {
    for (const auto& tile : strip) f += footprint(tile.body);
  }
  return f;
}

i64 csr_bytes(i64 rows, i64 nnz, i64 value_bytes) {
  return (value_bytes + kIndexBytes) * nnz + kIndexBytes * (rows + 1);
}

#define NMDT_INSTANTIATE_FOOTPRINT(V)                 \
  template Footprint footprint(const CsrT<V>&);       \
  template Footprint footprint(const CscT<V>&);       \
  template Footprint footprint(const DcsrT<V>&);      \
  template Footprint footprint(const TiledCsrT<V>&);  \
  template Footprint footprint(const TiledDcsrT<V>&)

NMDT_INSTANTIATE_FOOTPRINT(float);
NMDT_INSTANTIATE_FOOTPRINT(double);
NMDT_INSTANTIATE_FOOTPRINT(bf16_t);

#undef NMDT_INSTANTIATE_FOOTPRINT

}  // namespace nmdt
