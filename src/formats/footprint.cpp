#include "formats/footprint.hpp"

namespace nmdt {

Footprint footprint(const Csr& m) {
  Footprint f;
  f.data_bytes = m.nnz() * kValueBytes;
  f.metadata_bytes = m.nnz() * kIndexBytes +
                     static_cast<i64>(m.row_ptr.size()) * kIndexBytes;
  return f;
}

Footprint footprint(const Csc& m) {
  Footprint f;
  f.data_bytes = m.nnz() * kValueBytes;
  f.metadata_bytes = m.nnz() * kIndexBytes +
                     static_cast<i64>(m.col_ptr.size()) * kIndexBytes;
  return f;
}

Footprint footprint(const Dcsr& m) {
  Footprint f;
  f.data_bytes = m.nnz() * kValueBytes;
  f.metadata_bytes = m.nnz() * kIndexBytes +
                     static_cast<i64>(m.row_ptr.size()) * kIndexBytes +
                     static_cast<i64>(m.row_idx.size()) * kIndexBytes;
  return f;
}

Footprint footprint(const TiledCsr& m) {
  Footprint f;
  for (const auto& strip : m.strips) {
    for (const auto& tile : strip) f += footprint(tile.body);
  }
  return f;
}

Footprint footprint(const TiledDcsr& m) {
  Footprint f;
  for (const auto& strip : m.strips) {
    for (const auto& tile : strip) f += footprint(tile.body);
  }
  return f;
}

i64 csr_bytes(i64 rows, i64 nnz) {
  return (kValueBytes + kIndexBytes) * nnz + kIndexBytes * (rows + 1);
}

}  // namespace nmdt
