#include "formats/coo.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace nmdt {

template <class V>
double CooT<V>::density() const {
  if (rows <= 0 || cols <= 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows) * static_cast<double>(cols));
}

template <class V>
void CooT<V>::push(index_t r, index_t c, V v) {
  row.push_back(r);
  col.push_back(c);
  val.push_back(v);
}

template <class V>
void CooT<V>::coalesce() {
  const usize n = val.size();
  std::vector<usize> order(n);
  std::iota(order.begin(), order.end(), usize{0});
  std::sort(order.begin(), order.end(), [&](usize a, usize b) {
    if (row[a] != row[b]) return row[a] < row[b];
    return col[a] < col[b];
  });

  std::vector<index_t> nr, nc;
  std::vector<V> nv;
  nr.reserve(n);
  nc.reserve(n);
  nv.reserve(n);
  for (usize k : order) {
    if (!nr.empty() && nr.back() == row[k] && nc.back() == col[k]) {
      nv.back() = VTraits<V>::from_compute(VTraits<V>::to_compute(nv.back()) +
                                           VTraits<V>::to_compute(val[k]));
    } else {
      nr.push_back(row[k]);
      nc.push_back(col[k]);
      nv.push_back(val[k]);
    }
  }
  row = std::move(nr);
  col = std::move(nc);
  val = std::move(nv);
}

template <class V>
void CooT<V>::validate() const {
  NMDT_REQUIRE(rows >= 0 && cols >= 0, "COO dimensions must be non-negative");
  NMDT_REQUIRE(row.size() == val.size() && col.size() == val.size(),
               "COO vectors must have equal length");
  for (usize k = 0; k < val.size(); ++k) {
    NMDT_REQUIRE(row[k] >= 0 && row[k] < rows,
                 "COO row coordinate out of range at entry " + std::to_string(k));
    NMDT_REQUIRE(col[k] >= 0 && col[k] < cols,
                 "COO column coordinate out of range at entry " + std::to_string(k));
  }
}

template struct CooT<float>;
template struct CooT<double>;
template struct CooT<bf16_t>;

}  // namespace nmdt
