// Cheap matrix fingerprints for plan-cache keying.
//
// A fingerprint is a constant-size summary of a CSR matrix: dimensions,
// nnz, an FNV-1a hash of the structure vectors (row_ptr, col_idx), and a
// second FNV-1a hash of the value vector.  Two matrices with the same
// fingerprint are, for caching purposes, the same operand; the structure
// hash keeps same-shape/same-nnz matrices with different sparsity
// patterns apart, and the value hash keeps same-pattern matrices with
// different numerics apart (a cached plan carries converted `val`
// arrays, so values are part of plan identity, not just structure).
//
// One streaming pass over the index/value vectors — O(nnz), orders of
// magnitude cheaper than profiling or format conversion, which is what
// makes it a viable cache key for the amortization the plan cache
// provides.
#pragma once

#include "formats/csr.hpp"

namespace nmdt {

struct MatrixFingerprint {
  index_t rows = 0;
  index_t cols = 0;
  i64 nnz = 0;
  u64 structure_hash = 0;  ///< FNV-1a over row_ptr then col_idx bytes
  u64 value_hash = 0;      ///< FNV-1a over val bytes

  bool operator==(const MatrixFingerprint&) const = default;

  /// Mix all fields into one 64-bit word (for hash-table keying).
  u64 combined() const;
};

/// FNV-1a 64-bit over a byte range, chainable via `seed`.
u64 fnv1a64(const void* data, usize len, u64 seed = 0xcbf29ce484222325ULL);

/// Works at any value precision; the value hash covers the raw stored
/// bytes (sizeof(V) per element), so the same matrix retyped to another
/// precision fingerprints differently — as it must, since the stored
/// numerics differ.
template <class V>
MatrixFingerprint fingerprint_of(const CsrT<V>& csr);

}  // namespace nmdt
