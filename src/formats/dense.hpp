// Row-major dense matrix used for the multi-vector operand B and the
// output C of SpMM.  Row-major keeps a warp's K-wide access to one row
// of B contiguous, which is the layout the paper's row-per-warp mapping
// assumes.
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace nmdt {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols, value_t fill = 0.0f);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  i64 size_bytes() const { return static_cast<i64>(data_.size()) * kValueBytes; }

  value_t& at(index_t r, index_t c) { return data_[static_cast<usize>(r) * cols_ + c]; }
  value_t at(index_t r, index_t c) const { return data_[static_cast<usize>(r) * cols_ + c]; }

  std::span<value_t> row(index_t r) {
    return {data_.data() + static_cast<usize>(r) * cols_, static_cast<usize>(cols_)};
  }
  std::span<const value_t> row(index_t r) const {
    return {data_.data() + static_cast<usize>(r) * cols_, static_cast<usize>(cols_)};
  }

  std::span<const value_t> data() const { return data_; }
  std::span<value_t> data() { return data_; }

  void fill(value_t v);

  /// Fill with uniform values in [-1, 1); deterministic given the rng.
  void randomize(Rng& rng);

  /// Max absolute elementwise difference to another matrix of the same
  /// shape (throws FormatError on shape mismatch).
  double max_abs_diff(const DenseMatrix& other) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<value_t> data_;
};

}  // namespace nmdt
