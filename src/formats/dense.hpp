// Row-major dense matrix used for the multi-vector operand B and the
// output C of SpMM.  Row-major keeps a warp's K-wide access to one row
// of B contiguous, which is the layout the paper's row-per-warp mapping
// assumes.
//
// Templated on the stored value scalar V (util/precision.hpp);
// `DenseMatrix` aliases the default-precision instantiation.
#pragma once

#include <span>
#include <vector>

#include "util/precision.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace nmdt {

template <class V>
class DenseMatrixT {
 public:
  using value_type = V;

  DenseMatrixT() = default;
  DenseMatrixT(index_t rows, index_t cols, V fill = V{});

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  i64 size_bytes() const {
    return static_cast<i64>(data_.size()) * static_cast<i64>(sizeof(V));
  }

  V& at(index_t r, index_t c) { return data_[static_cast<usize>(r) * cols_ + c]; }
  V at(index_t r, index_t c) const { return data_[static_cast<usize>(r) * cols_ + c]; }

  std::span<V> row(index_t r) {
    return {data_.data() + static_cast<usize>(r) * cols_, static_cast<usize>(cols_)};
  }
  std::span<const V> row(index_t r) const {
    return {data_.data() + static_cast<usize>(r) * cols_, static_cast<usize>(cols_)};
  }

  std::span<const V> data() const { return data_; }
  std::span<V> data() { return data_; }

  void fill(V v);

  /// Fill with uniform values in [-1, 1); deterministic given the rng.
  /// Values are drawn as binary32 and narrowed/widened into V, so the
  /// same seed yields the same *canonical* value at every precision
  /// (modulo the precision's own storage rounding).
  void randomize(Rng& rng);

  /// Max absolute elementwise difference to another matrix of the same
  /// shape (throws FormatError on shape mismatch).
  double max_abs_diff(const DenseMatrixT& other) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<V> data_;
};

using DenseMatrix = DenseMatrixT<value_t>;

extern template class DenseMatrixT<float>;
extern template class DenseMatrixT<double>;
extern template class DenseMatrixT<bf16_t>;

}  // namespace nmdt
