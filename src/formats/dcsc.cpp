#include "formats/dcsc.hpp"

#include <string>

#include "util/error.hpp"

namespace nmdt {

template <class V>
void DcscT<V>::validate() const {
  NMDT_REQUIRE(rows >= 0 && cols >= 0, "DCSC dimensions must be non-negative");
  NMDT_REQUIRE(col_ptr.size() == col_idx.size() + 1,
               "DCSC col_ptr must have nnz_cols+1 entries");
  NMDT_REQUIRE(row_idx.size() == val.size(), "DCSC row_idx/val length mismatch");
  NMDT_REQUIRE(col_ptr.front() == 0, "DCSC col_ptr must start at 0");
  NMDT_REQUIRE(col_ptr.back() == static_cast<index_t>(val.size()),
               "DCSC col_ptr must end at nnz");
  for (usize k = 0; k < col_idx.size(); ++k) {
    NMDT_REQUIRE(col_idx[k] >= 0 && col_idx[k] < cols,
                 "DCSC column index out of range at dense column " + std::to_string(k));
    if (k > 0) {
      NMDT_REQUIRE(col_idx[k - 1] < col_idx[k],
                   "DCSC column indices must be strictly ascending");
    }
    NMDT_REQUIRE(col_ptr[k] < col_ptr[k + 1],
                 "DCSC must not contain empty columns (dense column " + std::to_string(k) +
                     ")");
  }
  for (usize k = 0; k < row_idx.size(); ++k) {
    NMDT_REQUIRE(row_idx[k] >= 0 && row_idx[k] < rows,
                 "DCSC row index out of range at entry " + std::to_string(k));
  }
}

template <class V>
DcscT<V> dcsc_from_csc(const CscT<V>& csc) {
  DcscT<V> d;
  d.rows = csc.rows;
  d.cols = csc.cols;
  d.row_idx = csc.row_idx;
  d.val = csc.val;
  d.col_ptr.push_back(0);
  for (index_t c = 0; c < csc.cols; ++c) {
    if (csc.col_nnz(c) == 0) continue;
    d.col_idx.push_back(c);
    d.col_ptr.push_back(csc.col_ptr[c + 1]);
  }
  return d;
}

template <class V>
CscT<V> csc_from_dcsc(const DcscT<V>& d) {
  CscT<V> csc;
  csc.rows = d.rows;
  csc.cols = d.cols;
  csc.row_idx = d.row_idx;
  csc.val = d.val;
  csc.col_ptr.assign(static_cast<usize>(d.cols) + 1, 0);
  for (i64 k = 0; k < d.nnz_cols(); ++k) {
    csc.col_ptr[d.col_idx[k] + 1] = static_cast<index_t>(d.dense_col_nnz(k));
  }
  for (index_t c = 0; c < d.cols; ++c) csc.col_ptr[c + 1] += csc.col_ptr[c];
  return csc;
}

template <class V>
CscT<V> transpose_view(const CsrT<V>& csr) {
  CscT<V> out;
  out.rows = csr.cols;  // transpose: A^T is cols x rows
  out.cols = csr.rows;
  out.col_ptr = csr.row_ptr;
  out.row_idx = csr.col_idx;
  out.val = csr.val;
  return out;
}

template <class V>
CsrT<V> transpose_view(const CscT<V>& csc) {
  CsrT<V> out;
  out.rows = csc.cols;
  out.cols = csc.rows;
  out.row_ptr = csc.col_ptr;
  out.col_idx = csc.row_idx;
  out.val = csc.val;
  return out;
}

template struct DcscT<float>;
template struct DcscT<double>;
template struct DcscT<bf16_t>;

template DcscT<float> dcsc_from_csc(const CscT<float>&);
template DcscT<double> dcsc_from_csc(const CscT<double>&);
template DcscT<bf16_t> dcsc_from_csc(const CscT<bf16_t>&);
template CscT<float> csc_from_dcsc(const DcscT<float>&);
template CscT<double> csc_from_dcsc(const DcscT<double>&);
template CscT<bf16_t> csc_from_dcsc(const DcscT<bf16_t>&);
template CscT<float> transpose_view(const CsrT<float>&);
template CscT<double> transpose_view(const CsrT<double>&);
template CscT<bf16_t> transpose_view(const CsrT<bf16_t>&);
template CsrT<float> transpose_view(const CscT<float>&);
template CsrT<double> transpose_view(const CscT<double>&);
template CsrT<bf16_t> transpose_view(const CscT<bf16_t>&);

}  // namespace nmdt
