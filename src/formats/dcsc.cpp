#include "formats/dcsc.hpp"

#include <string>

#include "util/error.hpp"

namespace nmdt {

void Dcsc::validate() const {
  NMDT_REQUIRE(rows >= 0 && cols >= 0, "DCSC dimensions must be non-negative");
  NMDT_REQUIRE(col_ptr.size() == col_idx.size() + 1,
               "DCSC col_ptr must have nnz_cols+1 entries");
  NMDT_REQUIRE(row_idx.size() == val.size(), "DCSC row_idx/val length mismatch");
  NMDT_REQUIRE(col_ptr.front() == 0, "DCSC col_ptr must start at 0");
  NMDT_REQUIRE(col_ptr.back() == static_cast<index_t>(val.size()),
               "DCSC col_ptr must end at nnz");
  for (usize k = 0; k < col_idx.size(); ++k) {
    NMDT_REQUIRE(col_idx[k] >= 0 && col_idx[k] < cols,
                 "DCSC column index out of range at dense column " + std::to_string(k));
    if (k > 0) {
      NMDT_REQUIRE(col_idx[k - 1] < col_idx[k],
                   "DCSC column indices must be strictly ascending");
    }
    NMDT_REQUIRE(col_ptr[k] < col_ptr[k + 1],
                 "DCSC must not contain empty columns (dense column " + std::to_string(k) +
                     ")");
  }
  for (usize k = 0; k < row_idx.size(); ++k) {
    NMDT_REQUIRE(row_idx[k] >= 0 && row_idx[k] < rows,
                 "DCSC row index out of range at entry " + std::to_string(k));
  }
}

Dcsc dcsc_from_csc(const Csc& csc) {
  Dcsc d;
  d.rows = csc.rows;
  d.cols = csc.cols;
  d.row_idx = csc.row_idx;
  d.val = csc.val;
  d.col_ptr.push_back(0);
  for (index_t c = 0; c < csc.cols; ++c) {
    if (csc.col_nnz(c) == 0) continue;
    d.col_idx.push_back(c);
    d.col_ptr.push_back(csc.col_ptr[c + 1]);
  }
  return d;
}

Csc csc_from_dcsc(const Dcsc& d) {
  Csc csc;
  csc.rows = d.rows;
  csc.cols = d.cols;
  csc.row_idx = d.row_idx;
  csc.val = d.val;
  csc.col_ptr.assign(static_cast<usize>(d.cols) + 1, 0);
  for (i64 k = 0; k < d.nnz_cols(); ++k) {
    csc.col_ptr[d.col_idx[k] + 1] = static_cast<index_t>(d.dense_col_nnz(k));
  }
  for (index_t c = 0; c < d.cols; ++c) csc.col_ptr[c + 1] += csc.col_ptr[c];
  return csc;
}

Csc transpose_view(const Csr& csr) {
  Csc out;
  out.rows = csr.cols;  // transpose: A^T is cols x rows
  out.cols = csr.rows;
  out.col_ptr = csr.row_ptr;
  out.row_idx = csr.col_idx;
  out.val = csr.val;
  return out;
}

Csr transpose_view(const Csc& csc) {
  Csr out;
  out.rows = csc.cols;
  out.cols = csc.rows;
  out.row_ptr = csc.col_ptr;
  out.col_idx = csc.row_idx;
  out.val = csc.val;
  return out;
}

}  // namespace nmdt
