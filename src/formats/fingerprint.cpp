#include "formats/fingerprint.hpp"

namespace nmdt {

u64 fnv1a64(const void* data, usize len, u64 seed) {
  constexpr u64 kPrime = 0x100000001b3ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  u64 h = seed;
  for (usize i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

u64 MatrixFingerprint::combined() const {
  u64 h = fnv1a64(&rows, sizeof(rows));
  h = fnv1a64(&cols, sizeof(cols), h);
  h = fnv1a64(&nnz, sizeof(nnz), h);
  h = fnv1a64(&structure_hash, sizeof(structure_hash), h);
  h = fnv1a64(&value_hash, sizeof(value_hash), h);
  return h;
}

template <class V>
MatrixFingerprint fingerprint_of(const CsrT<V>& csr) {
  MatrixFingerprint fp;
  fp.rows = csr.rows;
  fp.cols = csr.cols;
  fp.nnz = csr.nnz();
  fp.structure_hash =
      fnv1a64(csr.row_ptr.data(), csr.row_ptr.size() * sizeof(index_t));
  fp.structure_hash = fnv1a64(csr.col_idx.data(),
                              csr.col_idx.size() * sizeof(index_t), fp.structure_hash);
  fp.value_hash = fnv1a64(csr.val.data(), csr.val.size() * sizeof(V));
  return fp;
}

template MatrixFingerprint fingerprint_of(const CsrT<float>&);
template MatrixFingerprint fingerprint_of(const CsrT<double>&);
template MatrixFingerprint fingerprint_of(const CsrT<bf16_t>&);

}  // namespace nmdt
