#include "formats/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <type_traits>

#include "fault/fault.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace nmdt {

namespace {

constexpr char kMagic[4] = {'N', 'M', 'D', 'T'};
// Version 2 appends a CRC32 trailer over the kind + payload bytes and
// implies 4-byte (FP32) values; version 3 additionally records the
// value byte-width inside the payload.  Float matrices keep writing
// version 2 so default-precision artifacts are byte-identical across
// the precision refactor; version 1 (no checksum) is rejected with a
// re-save hint.
constexpr u32 kVersionF32 = 2;
constexpr u32 kVersionTyped = 3;
constexpr u32 kKindCsr = 1;
constexpr u32 kKindDense = 2;

template <class V>
constexpr u32 stream_version() {
  return std::is_same_v<V, float> ? kVersionF32 : kVersionTyped;
}

void write_u32(std::ostream& os, u32 v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i64(std::ostream& os, i64 v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  write_i64(os, static_cast<i64>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// magic + version + payload + CRC32(payload) trailer.
void write_stream(std::ostream& os, u32 version, const std::string& payload) {
  os.write(kMagic, sizeof(kMagic));
  write_u32(os, version);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  write_u32(os, crc32(payload.data(), payload.size()));
}

/// Sequential reader over the checksum-verified payload.  Running out of
/// bytes here means the writer and reader disagree about the layout —
/// the payload itself is already known intact.
struct PayloadReader {
  const char* p = nullptr;
  usize left = 0;

  void read(void* dst, usize n, const char* what) {
    if (n > left) {
      throw FormatError(std::string("truncated NMDT payload reading ") + what);
    }
    if (n > 0) std::memcpy(dst, p, n);  // empty vectors have no storage
    p += n;
    left -= n;
  }
  u32 read_u32(const char* what) {
    u32 v = 0;
    read(&v, sizeof(v), what);
    return v;
  }
  i64 read_i64(const char* what) {
    i64 v = 0;
    read(&v, sizeof(v), what);
    return v;
  }
  template <typename T>
  std::vector<T> read_vector(const char* what, i64 sanity_max) {
    const i64 n = read_i64(what);
    if (n < 0 || n > sanity_max) {
      throw ParseError(std::string("implausible vector length for ") + what + ": " +
                       std::to_string(n));
    }
    std::vector<T> v(static_cast<usize>(n));
    read(v.data(), v.size() * sizeof(T), what);
    return v;
  }
};

/// Read magic + version, slurp the rest, verify the CRC32 trailer, and
/// return the verified payload bytes (and the stream version via
/// *version_out).  Integrity failures (missing trailer, checksum
/// mismatch) are detected-but-unrecoverable: the on-disk source of
/// truth is damaged, so they surface as FormatError.
std::string read_verified_payload(std::istream& is, u32* version_out) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  if (!is.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw ParseError("not an NMDT binary matrix (bad magic)");
  }
  u32 version = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!is.good()) throw ParseError("truncated input reading version");
  if (version == 1) {
    throw ParseError(
        "NMDT binary version 1 predates the checksum trailer; re-save the "
        "matrix with this version of the tools");
  }
  if (version != kVersionF32 && version != kVersionTyped) {
    throw ParseError("unsupported NMDT binary version " + std::to_string(version));
  }
  *version_out = version;
  std::string rest((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  if (rest.size() < sizeof(u32)) {
    fault::note_detected();
    fault::note_unrecovered();
    throw FormatError("truncated NMDT binary: checksum trailer missing");
  }
  u32 stored = 0;
  std::memcpy(&stored, rest.data() + rest.size() - sizeof(u32), sizeof(u32));
  rest.resize(rest.size() - sizeof(u32));
  if (crc32(rest.data(), rest.size()) != stored) {
    fault::note_detected();
    fault::note_unrecovered();
    throw FormatError("NMDT binary checksum mismatch (file truncated or corrupted)");
  }
  return rest;
}

void check_kind(u32 kind, u32 expected_kind) {
  if (kind != expected_kind) {
    throw ParseError("NMDT binary holds a different matrix kind (" +
                     std::to_string(kind) + ")");
  }
}

/// Version-2 streams imply 4-byte FP32 values; version-3 streams carry
/// the width after the kind word.  Either way the stored width must
/// match the requested value type — no silent reinterpretation.
template <class V>
void check_value_width(u32 version, PayloadReader& r) {
  const u32 stored = version == kVersionF32 ? static_cast<u32>(sizeof(float))
                                            : r.read_u32("value width");
  if (stored != sizeof(V)) {
    throw ParseError("NMDT binary holds " + std::to_string(stored) +
                     "-byte values; requested value type " +
                     precision_name(VTraits<V>::kPrecision) + " is " +
                     std::to_string(sizeof(V)) +
                     "-byte — load at the stored precision and retype");
  }
}

// 2^31 entries of 4 bytes = 8 GiB per vector: anything above is either
// corruption or far outside this library's scale.
constexpr i64 kSanityMax = i64{1} << 31;

}  // namespace

template <class V>
void save_csr(std::ostream& os, const CsrT<V>& m) {
  m.validate();
  std::ostringstream buf(std::ios::binary);
  write_u32(buf, kKindCsr);
  if (stream_version<V>() == kVersionTyped) write_u32(buf, sizeof(V));
  write_i64(buf, m.rows);
  write_i64(buf, m.cols);
  write_vector(buf, m.row_ptr);
  write_vector(buf, m.col_idx);
  write_vector(buf, m.val);
  write_stream(os, stream_version<V>(), buf.str());
  NMDT_REQUIRE(os.good(), "write failed while saving CSR");
}

template <class V>
CsrT<V> load_csr(std::istream& is) {
  u32 version = 0;
  const std::string payload = read_verified_payload(is, &version);
  PayloadReader r{payload.data(), payload.size()};
  check_kind(r.read_u32("kind"), kKindCsr);
  check_value_width<V>(version, r);
  CsrT<V> m;
  m.rows = static_cast<index_t>(r.read_i64("rows"));
  m.cols = static_cast<index_t>(r.read_i64("cols"));
  m.row_ptr = r.read_vector<index_t>("row_ptr", kSanityMax);
  m.col_idx = r.read_vector<index_t>("col_idx", kSanityMax);
  m.val = r.read_vector<V>("val", kSanityMax);
  m.validate();  // corruption that survives the checksum dies here
  return m;
}

template <class V>
void save_dense(std::ostream& os, const DenseMatrixT<V>& m) {
  std::ostringstream buf(std::ios::binary);
  write_u32(buf, kKindDense);
  if (stream_version<V>() == kVersionTyped) write_u32(buf, sizeof(V));
  write_i64(buf, m.rows());
  write_i64(buf, m.cols());
  buf.write(reinterpret_cast<const char*>(m.data().data()),
            static_cast<std::streamsize>(m.data().size() * sizeof(V)));
  write_stream(os, stream_version<V>(), buf.str());
  NMDT_REQUIRE(os.good(), "write failed while saving dense matrix");
}

template <class V>
DenseMatrixT<V> load_dense(std::istream& is) {
  u32 version = 0;
  const std::string payload = read_verified_payload(is, &version);
  PayloadReader r{payload.data(), payload.size()};
  check_kind(r.read_u32("kind"), kKindDense);
  check_value_width<V>(version, r);
  const i64 rows = r.read_i64("rows");
  const i64 cols = r.read_i64("cols");
  if (rows < 0 || cols < 0 || (rows > 0 && cols > kSanityMax / rows)) {
    throw ParseError("implausible dense dimensions");
  }
  DenseMatrixT<V> m(static_cast<index_t>(rows), static_cast<index_t>(cols));
  r.read(m.data().data(), m.data().size() * sizeof(V), "dense payload");
  return m;
}

namespace {

template <typename SaveFn, typename T>
void save_to_file(const std::string& path, const T& m, SaveFn&& fn) {
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) throw ParseError("cannot open for writing: " + path);
  fn(os, m);
}

/// Load the whole file image, giving the kSerializedStream injection
/// site its shot: a deterministic tail truncation (torn write / short
/// read).  The checksum trailer turns any such damage into a typed
/// FormatError instead of silently parsed garbage.
std::string read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw ParseError("cannot open NMDT binary: " + path);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  const u64 key = static_cast<u64>(bytes.size());
  if (!bytes.empty() &&
      fault::should_inject(fault::FaultSite::kSerializedStream, key)) {
    const u64 max_cut = std::max<u64>(1, static_cast<u64>(bytes.size()) / 4);
    const usize cut = static_cast<usize>(1 + fault::mix(key, 0xF11E) % max_cut);
    bytes.resize(bytes.size() - std::min(bytes.size(), cut));
    fault::note_injected();
  }
  return bytes;
}

}  // namespace

template <class V>
void save_csr_file(const std::string& path, const CsrT<V>& m) {
  save_to_file(path, m,
               [](std::ostream& os, const CsrT<V>& x) { save_csr(os, x); });
}

template <class V>
CsrT<V> load_csr_file(const std::string& path) {
  std::istringstream is(read_file_bytes(path), std::ios::binary);
  return load_csr<V>(is);
}

template <class V>
void save_dense_file(const std::string& path, const DenseMatrixT<V>& m) {
  save_to_file(path, m, [](std::ostream& os, const DenseMatrixT<V>& x) {
    save_dense(os, x);
  });
}

template <class V>
DenseMatrixT<V> load_dense_file(const std::string& path) {
  std::istringstream is(read_file_bytes(path), std::ios::binary);
  return load_dense<V>(is);
}

#define NMDT_INSTANTIATE_SERIALIZE(V)                                        \
  template void save_csr(std::ostream&, const CsrT<V>&);                     \
  template void save_csr_file(const std::string&, const CsrT<V>&);           \
  template CsrT<V> load_csr(std::istream&);                                  \
  template CsrT<V> load_csr_file(const std::string&);                        \
  template void save_dense(std::ostream&, const DenseMatrixT<V>&);           \
  template void save_dense_file(const std::string&, const DenseMatrixT<V>&); \
  template DenseMatrixT<V> load_dense(std::istream&);                        \
  template DenseMatrixT<V> load_dense_file(const std::string&)

NMDT_INSTANTIATE_SERIALIZE(float);
NMDT_INSTANTIATE_SERIALIZE(double);
NMDT_INSTANTIATE_SERIALIZE(bf16_t);

#undef NMDT_INSTANTIATE_SERIALIZE

}  // namespace nmdt
