#include "formats/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace nmdt {

namespace {

constexpr char kMagic[4] = {'N', 'M', 'D', 'T'};
constexpr u32 kVersion = 1;
constexpr u32 kKindCsr = 1;
constexpr u32 kKindDense = 2;

void write_u32(std::ostream& os, u32 v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i64(std::ostream& os, i64 v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

u32 read_u32(std::istream& is, const char* what) {
  u32 v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is.good()) throw ParseError(std::string("truncated input reading ") + what);
  return v;
}
i64 read_i64(std::istream& is, const char* what) {
  i64 v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is.good()) throw ParseError(std::string("truncated input reading ") + what);
  return v;
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  write_i64(os, static_cast<i64>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& is, const char* what, i64 sanity_max) {
  const i64 n = read_i64(is, what);
  if (n < 0 || n > sanity_max) {
    throw ParseError(std::string("implausible vector length for ") + what + ": " +
                     std::to_string(n));
  }
  std::vector<T> v(static_cast<usize>(n));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!is.good()) throw ParseError(std::string("truncated input reading ") + what);
  return v;
}

void write_header(std::ostream& os, u32 kind) {
  os.write(kMagic, sizeof(kMagic));
  write_u32(os, kVersion);
  write_u32(os, kind);
}

void check_header(std::istream& is, u32 expected_kind) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  if (!is.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw ParseError("not an NMDT binary matrix (bad magic)");
  }
  const u32 version = read_u32(is, "version");
  if (version != kVersion) {
    throw ParseError("unsupported NMDT binary version " + std::to_string(version));
  }
  const u32 kind = read_u32(is, "kind");
  if (kind != expected_kind) {
    throw ParseError("NMDT binary holds a different matrix kind (" +
                     std::to_string(kind) + ")");
  }
}

// 2^31 entries of 4 bytes = 8 GiB per vector: anything above is either
// corruption or far outside this library's scale.
constexpr i64 kSanityMax = i64{1} << 31;

}  // namespace

void save_csr(std::ostream& os, const Csr& m) {
  m.validate();
  write_header(os, kKindCsr);
  write_i64(os, m.rows);
  write_i64(os, m.cols);
  write_vector(os, m.row_ptr);
  write_vector(os, m.col_idx);
  write_vector(os, m.val);
  NMDT_REQUIRE(os.good(), "write failed while saving CSR");
}

Csr load_csr(std::istream& is) {
  check_header(is, kKindCsr);
  Csr m;
  m.rows = static_cast<index_t>(read_i64(is, "rows"));
  m.cols = static_cast<index_t>(read_i64(is, "cols"));
  m.row_ptr = read_vector<index_t>(is, "row_ptr", kSanityMax);
  m.col_idx = read_vector<index_t>(is, "col_idx", kSanityMax);
  m.val = read_vector<value_t>(is, "val", kSanityMax);
  m.validate();  // corruption that survives the header dies here
  return m;
}

void save_dense(std::ostream& os, const DenseMatrix& m) {
  write_header(os, kKindDense);
  write_i64(os, m.rows());
  write_i64(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data().data()),
           static_cast<std::streamsize>(m.data().size() * sizeof(value_t)));
  NMDT_REQUIRE(os.good(), "write failed while saving dense matrix");
}

DenseMatrix load_dense(std::istream& is) {
  check_header(is, kKindDense);
  const i64 rows = read_i64(is, "rows");
  const i64 cols = read_i64(is, "cols");
  if (rows < 0 || cols < 0 || rows * cols > kSanityMax) {
    throw ParseError("implausible dense dimensions");
  }
  DenseMatrix m(static_cast<index_t>(rows), static_cast<index_t>(cols));
  is.read(reinterpret_cast<char*>(m.data().data()),
          static_cast<std::streamsize>(m.data().size() * sizeof(value_t)));
  if (!is.good()) throw ParseError("truncated input reading dense payload");
  return m;
}

namespace {
template <typename SaveFn, typename T>
void save_to_file(const std::string& path, const T& m, SaveFn&& fn) {
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) throw ParseError("cannot open for writing: " + path);
  fn(os, m);
}
}  // namespace

void save_csr_file(const std::string& path, const Csr& m) {
  save_to_file(path, m, [](std::ostream& os, const Csr& x) { save_csr(os, x); });
}

Csr load_csr_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw ParseError("cannot open NMDT binary: " + path);
  return load_csr(is);
}

void save_dense_file(const std::string& path, const DenseMatrix& m) {
  save_to_file(path, m,
               [](std::ostream& os, const DenseMatrix& x) { save_dense(os, x); });
}

DenseMatrix load_dense_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw ParseError("cannot open NMDT binary: " + path);
  return load_dense(is);
}

}  // namespace nmdt
