#include "formats/csr.hpp"

#include <string>

#include "util/error.hpp"

namespace nmdt {

template <class V>
double CsrT<V>::density() const {
  if (rows <= 0 || cols <= 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows) * static_cast<double>(cols));
}

template <class V>
i64 CsrT<V>::nonzero_rows() const {
  i64 n = 0;
  for (index_t r = 0; r < rows; ++r) {
    if (!row_empty(r)) ++n;
  }
  return n;
}

template <class V>
void CsrT<V>::validate() const {
  NMDT_REQUIRE(rows >= 0 && cols >= 0, "CSR dimensions must be non-negative");
  NMDT_REQUIRE(row_ptr.size() == static_cast<usize>(rows) + 1,
               "CSR row_ptr must have rows+1 entries");
  NMDT_REQUIRE(col_idx.size() == val.size(), "CSR col_idx/val length mismatch");
  NMDT_REQUIRE(row_ptr.front() == 0, "CSR row_ptr must start at 0");
  NMDT_REQUIRE(row_ptr.back() == static_cast<index_t>(val.size()),
               "CSR row_ptr must end at nnz");
  for (index_t r = 0; r < rows; ++r) {
    NMDT_REQUIRE(row_ptr[r] <= row_ptr[r + 1],
                 "CSR row_ptr non-monotone at row " + std::to_string(r));
    for (index_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      NMDT_REQUIRE(col_idx[k] >= 0 && col_idx[k] < cols,
                   "CSR column index out of range at entry " + std::to_string(k));
      if (k > row_ptr[r]) {
        NMDT_REQUIRE(col_idx[k - 1] < col_idx[k],
                     "CSR column indices must be strictly ascending within row " +
                         std::to_string(r));
      }
    }
  }
}

template struct CsrT<float>;
template struct CsrT<double>;
template struct CsrT<bf16_t>;

}  // namespace nmdt
