#include "formats/csc.hpp"

#include <string>

#include "util/error.hpp"

namespace nmdt {

template <class V>
double CscT<V>::density() const {
  if (rows <= 0 || cols <= 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows) * static_cast<double>(cols));
}

template <class V>
void CscT<V>::validate() const {
  NMDT_REQUIRE(rows >= 0 && cols >= 0, "CSC dimensions must be non-negative");
  NMDT_REQUIRE(col_ptr.size() == static_cast<usize>(cols) + 1,
               "CSC col_ptr must have cols+1 entries");
  NMDT_REQUIRE(row_idx.size() == val.size(), "CSC row_idx/val length mismatch");
  NMDT_REQUIRE(col_ptr.front() == 0, "CSC col_ptr must start at 0");
  NMDT_REQUIRE(col_ptr.back() == static_cast<index_t>(val.size()),
               "CSC col_ptr must end at nnz");
  for (index_t c = 0; c < cols; ++c) {
    NMDT_REQUIRE(col_ptr[c] <= col_ptr[c + 1],
                 "CSC col_ptr non-monotone at column " + std::to_string(c));
    for (index_t k = col_ptr[c]; k < col_ptr[c + 1]; ++k) {
      NMDT_REQUIRE(row_idx[k] >= 0 && row_idx[k] < rows,
                   "CSC row index out of range at entry " + std::to_string(k));
      if (k > col_ptr[c]) {
        NMDT_REQUIRE(row_idx[k - 1] < row_idx[k],
                     "CSC row indices must be strictly ascending within column " +
                         std::to_string(c));
      }
    }
  }
}

template struct CscT<float>;
template struct CscT<double>;
template struct CscT<bf16_t>;

}  // namespace nmdt
