// Vertical-strip tiling of the sparse input matrix A (paper Sec. 3).
//
// A is cut into vertical strips of `strip_width` columns (64 in the
// paper, matching the 64x64 B tile held in shared memory), and each
// strip into tiles of `tile_height` rows (DCSR_HEIGHT = 64 in the
// Fig. 11 API).  A tile stores *local* coordinates:
//   * row indices in [0, tile_height)  relative to the tile's row_begin,
//   * column indices in [0, strip_width) relative to the strip's
//     col_begin,
// because that is what the hardware engine emits and what the kernel
// needs to index the shared-memory-resident B tile.  Globals are
// recovered via row_begin/col_begin.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"

namespace nmdt {

struct TilingSpec {
  index_t strip_width = 64;
  index_t tile_height = 64;

  bool operator==(const TilingSpec&) const = default;

  void validate() const;

  index_t num_strips(index_t cols) const {
    return (cols + strip_width - 1) / strip_width;
  }
  index_t tiles_per_strip(index_t rows) const {
    return (rows + tile_height - 1) / tile_height;
  }
};

/// One tile of A in DCSR form (the unit returned by GetDCSRTile).
struct DcsrTile {
  index_t strip_id = 0;
  index_t row_begin = 0;  ///< global row of the tile's first row
  index_t col_begin = 0;  ///< global column of the strip's first column
  Dcsr body;              ///< body.rows = tile height, body.cols = strip width (clamped)
  u32 crc = 0;            ///< CRC32 over body arrays, stamped at conversion
  bool crc_valid = false; ///< offline-built tiles skip the checksum

  i64 nnz() const { return body.nnz(); }
  i64 nnz_rows() const { return body.nnz_rows(); }
};

/// One tile of A kept in CSR form (the inefficient strawman of Fig. 6).
struct CsrTile {
  index_t strip_id = 0;
  index_t row_begin = 0;
  index_t col_begin = 0;
  Csr body;

  i64 nnz() const { return body.nnz(); }
};

struct TiledDcsr {
  index_t rows = 0;
  index_t cols = 0;
  TilingSpec spec;
  /// strips[s][t] is the tile at strip s, rows [t*H, (t+1)*H). All tiles
  /// are materialized (empty tiles carry only the 4-byte row_ptr stub).
  std::vector<std::vector<DcsrTile>> strips;

  index_t num_strips() const { return static_cast<index_t>(strips.size()); }
  i64 nnz() const;
  i64 total_nnz_rows() const;  ///< sum of per-tile non-empty row segments
};

struct TiledCsr {
  index_t rows = 0;
  index_t cols = 0;
  TilingSpec spec;
  std::vector<std::vector<CsrTile>> strips;

  index_t num_strips() const { return static_cast<index_t>(strips.size()); }
  i64 nnz() const;
};

/// CRC32 over a tile's body arrays (row_idx, row_ptr, col_idx, val) and
/// its coordinate header — the integrity fingerprint the conversion
/// engine stamps on each freshly fabricated tile.
u32 dcsr_tile_crc(const DcsrTile& tile);

/// Integrity check at the consumption point: structural validate() of
/// the body plus (when crc_valid) a CRC recheck against `tile.crc`.
/// Returns false instead of throwing so recovery paths can retry.
bool verify_dcsr_tile(const DcsrTile& tile);

/// Offline tiling (the preprocessing step whose cost and storage the
/// near-memory engine avoids).
TiledDcsr tiled_dcsr_from_csr(const Csr& csr, const TilingSpec& spec);
TiledCsr tiled_csr_from_csr(const Csr& csr, const TilingSpec& spec);

/// Per-strip non-zero counts under `spec` — the strip-skip table the
/// B-stationary kernels consult before touching a strip.  Derivable
/// from A alone (one col_idx scan), so plans compute it once and pass
/// it through SpmmOperands instead of every kernel call rescanning.
struct StripNnz {
  TilingSpec spec;
  std::vector<i64> counts;  ///< counts[s] = non-zeros in vertical strip s
};

StripNnz strip_nnz_of(const Csr& csr, const TilingSpec& spec);

/// Reassemble into global-coordinate COO — used by the partition-property
/// tests (every non-zero appears in exactly one tile).
Coo coo_from_tiled(const TiledDcsr& tiled);
Coo coo_from_tiled(const TiledCsr& tiled);

/// Per-strip DCSR over all rows (no tile_height cut). This is the
/// "strip" granularity used in the Fig. 5 density analysis.
std::vector<Dcsr> strip_dcsr_from_csr(const Csr& csr, index_t strip_width);

/// Fraction of rows with at least one non-zero, per vertical strip
/// (the quantity histogrammed in Fig. 5).
std::vector<double> strip_nonzero_row_density(const Csr& csr, index_t strip_width);

}  // namespace nmdt
