// Vertical-strip tiling of the sparse input matrix A (paper Sec. 3).
//
// A is cut into vertical strips of `strip_width` columns (64 in the
// paper, matching the 64x64 B tile held in shared memory), and each
// strip into tiles of `tile_height` rows (DCSR_HEIGHT = 64 in the
// Fig. 11 API).  A tile stores *local* coordinates:
//   * row indices in [0, tile_height)  relative to the tile's row_begin,
//   * column indices in [0, strip_width) relative to the strip's
//     col_begin,
// because that is what the hardware engine emits and what the kernel
// needs to index the shared-memory-resident B tile.  Globals are
// recovered via row_begin/col_begin.
//
// Tiled containers are templated on the stored value scalar V
// (util/precision.hpp); the unsuffixed names alias the default-precision
// instantiations.
#pragma once

#include <vector>

#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"
#include "util/precision.hpp"

namespace nmdt {

struct TilingSpec {
  index_t strip_width = 64;
  index_t tile_height = 64;

  bool operator==(const TilingSpec&) const = default;

  void validate() const;

  index_t num_strips(index_t cols) const {
    return (cols + strip_width - 1) / strip_width;
  }
  index_t tiles_per_strip(index_t rows) const {
    return (rows + tile_height - 1) / tile_height;
  }
};

/// One tile of A in DCSR form (the unit returned by GetDCSRTile).
template <class V>
struct DcsrTileT {
  index_t strip_id = 0;
  index_t row_begin = 0;  ///< global row of the tile's first row
  index_t col_begin = 0;  ///< global column of the strip's first column
  DcsrT<V> body;          ///< body.rows = tile height, body.cols = strip width (clamped)
  u32 crc = 0;            ///< CRC32 over body arrays, stamped at conversion
  bool crc_valid = false; ///< offline-built tiles skip the checksum

  i64 nnz() const { return body.nnz(); }
  i64 nnz_rows() const { return body.nnz_rows(); }
};

using DcsrTile = DcsrTileT<value_t>;

/// One tile of A kept in CSR form (the inefficient strawman of Fig. 6).
template <class V>
struct CsrTileT {
  index_t strip_id = 0;
  index_t row_begin = 0;
  index_t col_begin = 0;
  CsrT<V> body;

  i64 nnz() const { return body.nnz(); }
};

using CsrTile = CsrTileT<value_t>;

template <class V>
struct TiledDcsrT {
  index_t rows = 0;
  index_t cols = 0;
  TilingSpec spec;
  /// strips[s][t] is the tile at strip s, rows [t*H, (t+1)*H). All tiles
  /// are materialized (empty tiles carry only the 4-byte row_ptr stub).
  std::vector<std::vector<DcsrTileT<V>>> strips;

  index_t num_strips() const { return static_cast<index_t>(strips.size()); }
  i64 nnz() const;
  i64 total_nnz_rows() const;  ///< sum of per-tile non-empty row segments
};

using TiledDcsr = TiledDcsrT<value_t>;

template <class V>
struct TiledCsrT {
  index_t rows = 0;
  index_t cols = 0;
  TilingSpec spec;
  std::vector<std::vector<CsrTileT<V>>> strips;

  index_t num_strips() const { return static_cast<index_t>(strips.size()); }
  i64 nnz() const;
};

using TiledCsr = TiledCsrT<value_t>;

extern template struct TiledDcsrT<float>;
extern template struct TiledDcsrT<double>;
extern template struct TiledDcsrT<bf16_t>;
extern template struct TiledCsrT<float>;
extern template struct TiledCsrT<double>;
extern template struct TiledCsrT<bf16_t>;

/// CRC32 over a tile's body arrays (row_idx, row_ptr, col_idx, val) and
/// its coordinate header — the integrity fingerprint the conversion
/// engine stamps on each freshly fabricated tile.
template <class V>
u32 dcsr_tile_crc(const DcsrTileT<V>& tile);

/// Integrity check at the consumption point: structural validate() of
/// the body plus (when crc_valid) a CRC recheck against `tile.crc`.
/// Returns false instead of throwing so recovery paths can retry.
template <class V>
bool verify_dcsr_tile(const DcsrTileT<V>& tile);

/// Offline tiling (the preprocessing step whose cost and storage the
/// near-memory engine avoids).
template <class V>
TiledDcsrT<V> tiled_dcsr_from_csr(const CsrT<V>& csr, const TilingSpec& spec);
template <class V>
TiledCsrT<V> tiled_csr_from_csr(const CsrT<V>& csr, const TilingSpec& spec);

/// Per-strip non-zero counts under `spec` — the strip-skip table the
/// B-stationary kernels consult before touching a strip.  Derivable
/// from A alone (one col_idx scan), so plans compute it once and pass
/// it through SpmmOperands instead of every kernel call rescanning.
struct StripNnz {
  TilingSpec spec;
  std::vector<i64> counts;  ///< counts[s] = non-zeros in vertical strip s
};

template <class V>
StripNnz strip_nnz_of(const CsrT<V>& csr, const TilingSpec& spec);

/// Reassemble into global-coordinate COO — used by the partition-property
/// tests (every non-zero appears in exactly one tile).
template <class V>
CooT<V> coo_from_tiled(const TiledDcsrT<V>& tiled);
template <class V>
CooT<V> coo_from_tiled(const TiledCsrT<V>& tiled);

/// Per-strip DCSR over all rows (no tile_height cut). This is the
/// "strip" granularity used in the Fig. 5 density analysis.
template <class V>
std::vector<DcsrT<V>> strip_dcsr_from_csr(const CsrT<V>& csr, index_t strip_width);

/// Fraction of rows with at least one non-zero, per vertical strip
/// (the quantity histogrammed in Fig. 5).
template <class V>
std::vector<double> strip_nonzero_row_density(const CsrT<V>& csr, index_t strip_width);

}  // namespace nmdt
