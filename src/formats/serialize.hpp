// Binary serialization of sparse/dense matrices.
//
// Matrix Market is the interchange format (human-readable, slow); this
// is the fast path for caching generated suites or shipping matrices
// between tools: a small header (magic, version) followed by the kind,
// dims, and raw little-endian vectors, closed by a CRC32 trailer over
// everything after the version word (format version 2).  Loads verify
// the checksum before parsing a single payload byte and validate the
// reconstructed structure afterwards: truncation or bit corruption
// surfaces as FormatError, unparsable headers (bad magic, the
// pre-checksum version 1, wrong kind) as ParseError — never silently
// parsed garbage.
#pragma once

#include <iosfwd>
#include <string>

#include "formats/csr.hpp"
#include "formats/dense.hpp"

namespace nmdt {

void save_csr(std::ostream& os, const Csr& m);
void save_csr_file(const std::string& path, const Csr& m);
Csr load_csr(std::istream& is);
Csr load_csr_file(const std::string& path);

void save_dense(std::ostream& os, const DenseMatrix& m);
void save_dense_file(const std::string& path, const DenseMatrix& m);
DenseMatrix load_dense(std::istream& is);
DenseMatrix load_dense_file(const std::string& path);

}  // namespace nmdt
