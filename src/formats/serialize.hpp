// Binary serialization of sparse/dense matrices.
//
// Matrix Market is the interchange format (human-readable, slow); this
// is the fast path for caching generated suites or shipping matrices
// between tools: a small header (magic, version) followed by the kind,
// dims, and raw little-endian vectors, closed by a CRC32 trailer over
// everything after the version word.  Loads verify the checksum before
// parsing a single payload byte and validate the reconstructed
// structure afterwards: truncation or bit corruption surfaces as
// FormatError, unparsable headers (bad magic, the pre-checksum
// version 1, wrong kind) as ParseError — never silently parsed garbage.
//
// Precision: format version 2 is the historical FP32 layout and is
// still what float matrices write, byte for byte.  Non-default value
// types (f64, bf16) write format version 3, which carries an explicit
// value byte-width word inside the checksummed payload; loading a
// stream whose stored width disagrees with the requested value type is
// a ParseError, never a silent reinterpretation of the value bytes.
#pragma once

#include <iosfwd>
#include <string>

#include "formats/csr.hpp"
#include "formats/dense.hpp"

namespace nmdt {

template <class V>
void save_csr(std::ostream& os, const CsrT<V>& m);
template <class V>
void save_csr_file(const std::string& path, const CsrT<V>& m);
template <class V = value_t>
CsrT<V> load_csr(std::istream& is);
template <class V = value_t>
CsrT<V> load_csr_file(const std::string& path);

template <class V>
void save_dense(std::ostream& os, const DenseMatrixT<V>& m);
template <class V>
void save_dense_file(const std::string& path, const DenseMatrixT<V>& m);
template <class V = value_t>
DenseMatrixT<V> load_dense(std::istream& is);
template <class V = value_t>
DenseMatrixT<V> load_dense_file(const std::string& path);

}  // namespace nmdt
