// Densified CSR (DCSR), the compute-efficient format (paper Sec. 3.2,
// Fig. 6, after Hong et al. [12]): a `row_idx` vector lists only the
// rows that contain at least one non-zero, and `row_ptr` shrinks to
// nnz_rows+1 entries.  For the 64-wide vertical strips the paper tiles A
// into, ~99% of rows are empty (Fig. 5), so DCSR removes both the
// redundant row_ptr traffic and the wasted warp slots spent skipping
// empty rows.
//
// Templated on the stored value scalar V (util/precision.hpp); `Dcsr`
// aliases the default-precision instantiation.
#pragma once

#include <span>
#include <vector>

#include "util/precision.hpp"
#include "util/types.hpp"

namespace nmdt {

template <class V>
struct DcsrT {
  using value_type = V;

  index_t rows = 0;  ///< logical row count (including empty rows)
  index_t cols = 0;  ///< logical column count
  std::vector<index_t> row_idx;  ///< non-empty rows, strictly ascending
  std::vector<index_t> row_ptr;  ///< nnz_rows+1 entries
  std::vector<index_t> col_idx;  ///< nnz entries
  std::vector<V> val;            ///< nnz entries

  i64 nnz() const { return static_cast<i64>(val.size()); }
  i64 nnz_rows() const { return static_cast<i64>(row_idx.size()); }

  /// k-th non-empty row: its global row number.
  index_t dense_row(i64 k) const { return row_idx[k]; }

  i64 dense_row_nnz(i64 k) const { return row_ptr[k + 1] - row_ptr[k]; }

  std::span<const index_t> dense_row_cols(i64 k) const {
    return {col_idx.data() + row_ptr[k], static_cast<usize>(dense_row_nnz(k))};
  }
  std::span<const V> dense_row_vals(i64 k) const {
    return {val.data() + row_ptr[k], static_cast<usize>(dense_row_nnz(k))};
  }

  void validate() const;
};

using Dcsr = DcsrT<value_t>;

extern template struct DcsrT<float>;
extern template struct DcsrT<double>;
extern template struct DcsrT<bf16_t>;

}  // namespace nmdt
