// Matrix Market (coordinate) I/O.
//
// The paper's dataset is the SuiteSparse collection distributed as
// Matrix Market files; when real files are available they can be fed to
// every bench via --matrix.  Supports `matrix coordinate
// {real,integer,pattern} {general,symmetric,skew-symmetric}`.
// Pattern matrices get value 1.0 per entry; the paper assigns random
// values to connectivity-only matrices, which callers do explicitly via
// randomize_values() so the seed stays under their control.
#pragma once

#include <iosfwd>
#include <string>

#include "formats/coo.hpp"
#include "util/rng.hpp"

namespace nmdt {

/// Parse a Matrix Market stream; throws ParseError with a line number on
/// malformed input.
Coo read_matrix_market(std::istream& is);

/// Convenience file overload; throws ParseError if the file cannot be
/// opened.
Coo read_matrix_market_file(const std::string& path);

/// Write `coo` as `matrix coordinate real general` (1-based indices).
void write_matrix_market(std::ostream& os, const Coo& coo);
void write_matrix_market_file(const std::string& path, const Coo& coo);

/// Replace all values with uniform samples in [-1, 1); used for
/// pattern-only (connectivity) matrices, mirroring the paper's
/// methodology (Sec. 5.1).
void randomize_values(Coo& coo, Rng& rng);

}  // namespace nmdt
