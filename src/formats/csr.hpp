// Compressed Sparse Row (CSR), the community-standard storage format
// (paper Sec. 2, Fig. 1): `val`/`col_idx` hold the nnz entries in
// row-major order, `row_ptr[i]..row_ptr[i+1]` delimits row i.
//
// The container is templated on the stored value scalar V (float /
// double / bf16_t — see util/precision.hpp); `Csr` aliases the
// default-precision instantiation so existing call sites are unchanged.
#pragma once

#include <span>
#include <vector>

#include "util/precision.hpp"
#include "util/types.hpp"

namespace nmdt {

template <class V>
struct CsrT {
  using value_type = V;

  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_ptr;  ///< rows+1 entries, non-decreasing
  std::vector<index_t> col_idx;  ///< nnz entries, ascending within a row
  std::vector<V> val;            ///< nnz entries

  i64 nnz() const { return static_cast<i64>(val.size()); }
  double density() const;

  i64 row_nnz(index_t r) const { return row_ptr[r + 1] - row_ptr[r]; }
  bool row_empty(index_t r) const { return row_nnz(r) == 0; }

  /// Number of rows with at least one non-zero.
  i64 nonzero_rows() const;

  std::span<const index_t> row_cols(index_t r) const {
    return {col_idx.data() + row_ptr[r], static_cast<usize>(row_nnz(r))};
  }
  std::span<const V> row_vals(index_t r) const {
    return {val.data() + row_ptr[r], static_cast<usize>(row_nnz(r))};
  }

  /// Throw FormatError on non-monotone row_ptr, mismatched lengths, or
  /// out-of-range / non-ascending column indices.
  void validate() const;
};

using Csr = CsrT<value_t>;

extern template struct CsrT<float>;
extern template struct CsrT<double>;
extern template struct CsrT<bf16_t>;

}  // namespace nmdt
