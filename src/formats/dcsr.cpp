#include "formats/dcsr.hpp"

#include <string>

#include "util/error.hpp"

namespace nmdt {

template <class V>
void DcsrT<V>::validate() const {
  NMDT_REQUIRE(rows >= 0 && cols >= 0, "DCSR dimensions must be non-negative");
  NMDT_REQUIRE(row_ptr.size() == row_idx.size() + 1,
               "DCSR row_ptr must have nnz_rows+1 entries");
  NMDT_REQUIRE(col_idx.size() == val.size(), "DCSR col_idx/val length mismatch");
  NMDT_REQUIRE(row_ptr.front() == 0, "DCSR row_ptr must start at 0");
  NMDT_REQUIRE(row_ptr.back() == static_cast<index_t>(val.size()),
               "DCSR row_ptr must end at nnz");
  for (usize k = 0; k < row_idx.size(); ++k) {
    NMDT_REQUIRE(row_idx[k] >= 0 && row_idx[k] < rows,
                 "DCSR row index out of range at dense row " + std::to_string(k));
    if (k > 0) {
      NMDT_REQUIRE(row_idx[k - 1] < row_idx[k],
                   "DCSR row indices must be strictly ascending");
    }
    NMDT_REQUIRE(row_ptr[k] < row_ptr[k + 1],
                 "DCSR must not contain empty rows (dense row " + std::to_string(k) + ")");
  }
  for (usize k = 0; k < col_idx.size(); ++k) {
    NMDT_REQUIRE(col_idx[k] >= 0 && col_idx[k] < cols,
                 "DCSR column index out of range at entry " + std::to_string(k));
  }
}

template struct DcsrT<float>;
template struct DcsrT<double>;
template struct DcsrT<bf16_t>;

}  // namespace nmdt
