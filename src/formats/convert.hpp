// Offline format conversions.
//
// These are the software (preprocessing) conversions the paper contrasts
// with its near-memory online engine: they are correct and reusable, but
// csr→tiled-DCSR in particular is the "non-trivial transformation cost"
// (Sec. 3.3) that the online engine eliminates.  transform/ implements
// the hardware engine; tests assert its output is bit-identical to
// tiled_dcsr_from_* here.
//
// Every conversion is templated on the stored value scalar V
// (util/precision.hpp): structural conversions permute values without
// rounding, so converting-then-retyping equals retyping-then-converting.
#pragma once

#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"
#include "formats/dense.hpp"

namespace nmdt {

template <class V>
CsrT<V> csr_from_coo(const CooT<V>& coo);  ///< duplicates are summed
template <class V>
CooT<V> coo_from_csr(const CsrT<V>& csr);

template <class V>
CscT<V> csc_from_csr(const CsrT<V>& csr);
template <class V>
CsrT<V> csr_from_csc(const CscT<V>& csc);
template <class V>
CscT<V> csc_from_coo(const CooT<V>& coo);

/// Densify: drop empty rows into the row_idx indirection (Fig. 6 right).
template <class V>
DcsrT<V> dcsr_from_csr(const CsrT<V>& csr);
template <class V>
CsrT<V> csr_from_dcsr(const DcsrT<V>& dcsr);

/// Expand to a dense matrix (testing / small examples only).
template <class V>
DenseMatrixT<V> dense_from_csr(const CsrT<V>& csr);
template <class V>
CsrT<V> csr_from_dense(const DenseMatrixT<V>& m, V zero_tolerance = V{});

}  // namespace nmdt
