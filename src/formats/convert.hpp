// Offline format conversions.
//
// These are the software (preprocessing) conversions the paper contrasts
// with its near-memory online engine: they are correct and reusable, but
// csr→tiled-DCSR in particular is the "non-trivial transformation cost"
// (Sec. 3.3) that the online engine eliminates.  transform/ implements
// the hardware engine; tests assert its output is bit-identical to
// tiled_dcsr_from_* here.
#pragma once

#include "formats/coo.hpp"
#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"
#include "formats/dense.hpp"

namespace nmdt {

Csr csr_from_coo(const Coo& coo);   ///< duplicates are summed
Coo coo_from_csr(const Csr& csr);

Csc csc_from_csr(const Csr& csr);
Csr csr_from_csc(const Csc& csc);
Csc csc_from_coo(const Coo& coo);

/// Densify: drop empty rows into the row_idx indirection (Fig. 6 right).
Dcsr dcsr_from_csr(const Csr& csr);
Csr csr_from_dcsr(const Dcsr& dcsr);

/// Expand to a dense matrix (testing / small examples only).
DenseMatrix dense_from_csr(const Csr& csr);
Csr csr_from_dense(const DenseMatrix& m, value_t zero_tolerance = 0.0f);

}  // namespace nmdt
