#include "formats/dense.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nmdt {

DenseMatrix::DenseMatrix(index_t rows, index_t cols, value_t fill_value)
    : rows_(rows), cols_(cols) {
  NMDT_REQUIRE(rows >= 0 && cols >= 0, "DenseMatrix dimensions must be non-negative");
  data_.assign(static_cast<usize>(rows) * static_cast<usize>(cols), fill_value);
}

void DenseMatrix::fill(value_t v) { std::fill(data_.begin(), data_.end(), v); }

void DenseMatrix::randomize(Rng& rng) {
  for (auto& x : data_) x = static_cast<value_t>(rng.uniform(-1.0, 1.0));
}

double DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  NMDT_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "max_abs_diff requires matrices of equal shape");
  double worst = 0.0;
  for (usize i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(data_[i]) - other.data_[i]));
  }
  return worst;
}

}  // namespace nmdt
