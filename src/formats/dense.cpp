#include "formats/dense.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nmdt {

template <class V>
DenseMatrixT<V>::DenseMatrixT(index_t rows, index_t cols, V fill_value)
    : rows_(rows), cols_(cols) {
  NMDT_REQUIRE(rows >= 0 && cols >= 0, "DenseMatrix dimensions must be non-negative");
  data_.assign(static_cast<usize>(rows) * static_cast<usize>(cols), fill_value);
}

template <class V>
void DenseMatrixT<V>::fill(V v) {
  std::fill(data_.begin(), data_.end(), v);
}

template <class V>
void DenseMatrixT<V>::randomize(Rng& rng) {
  for (auto& x : data_) {
    x = VTraits<V>::from_f32(static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
}

template <class V>
double DenseMatrixT<V>::max_abs_diff(const DenseMatrixT<V>& other) const {
  NMDT_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "max_abs_diff requires matrices of equal shape");
  double worst = 0.0;
  for (usize i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(VTraits<V>::to_f64(data_[i]) -
                                     VTraits<V>::to_f64(other.data_[i])));
  }
  return worst;
}

template class DenseMatrixT<float>;
template class DenseMatrixT<double>;
template class DenseMatrixT<bf16_t>;

}  // namespace nmdt
