#include "formats/convert.hpp"

#include <cmath>

#include "util/error.hpp"

namespace nmdt {

template <class V>
CsrT<V> csr_from_coo(const CooT<V>& coo_in) {
  coo_in.validate();
  CooT<V> coo = coo_in;
  coo.coalesce();

  CsrT<V> csr;
  csr.rows = coo.rows;
  csr.cols = coo.cols;
  csr.row_ptr.assign(static_cast<usize>(coo.rows) + 1, 0);
  csr.col_idx.resize(coo.val.size());
  csr.val.resize(coo.val.size());

  for (index_t r : coo.row) ++csr.row_ptr[r + 1];
  for (index_t r = 0; r < coo.rows; ++r) csr.row_ptr[r + 1] += csr.row_ptr[r];

  // coalesce() left entries in row-major order, so a single pass fills
  // both arrays without a scatter cursor.
  for (usize k = 0; k < coo.val.size(); ++k) {
    csr.col_idx[k] = coo.col[k];
    csr.val[k] = coo.val[k];
  }
  csr.validate();
  return csr;
}

template <class V>
CooT<V> coo_from_csr(const CsrT<V>& csr) {
  CooT<V> coo;
  coo.rows = csr.rows;
  coo.cols = csr.cols;
  coo.row.reserve(csr.val.size());
  coo.col = csr.col_idx;
  coo.val = csr.val;
  for (index_t r = 0; r < csr.rows; ++r) {
    for (index_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) coo.row.push_back(r);
  }
  return coo;
}

template <class V>
CscT<V> csc_from_csr(const CsrT<V>& csr) {
  CscT<V> csc;
  csc.rows = csr.rows;
  csc.cols = csr.cols;
  csc.col_ptr.assign(static_cast<usize>(csr.cols) + 1, 0);
  csc.row_idx.resize(csr.val.size());
  csc.val.resize(csr.val.size());

  for (index_t c : csr.col_idx) ++csc.col_ptr[c + 1];
  for (index_t c = 0; c < csr.cols; ++c) csc.col_ptr[c + 1] += csc.col_ptr[c];

  std::vector<index_t> cursor(csc.col_ptr.begin(), csc.col_ptr.end() - 1);
  for (index_t r = 0; r < csr.rows; ++r) {
    for (index_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
      const index_t c = csr.col_idx[k];
      const index_t dst = cursor[c]++;
      csc.row_idx[dst] = r;
      csc.val[dst] = csr.val[k];
    }
  }
  // Row-major iteration guarantees ascending row indices per column.
  return csc;
}

template <class V>
CsrT<V> csr_from_csc(const CscT<V>& csc) {
  CsrT<V> csr;
  csr.rows = csc.rows;
  csr.cols = csc.cols;
  csr.row_ptr.assign(static_cast<usize>(csc.rows) + 1, 0);
  csr.col_idx.resize(csc.val.size());
  csr.val.resize(csc.val.size());

  for (index_t r : csc.row_idx) ++csr.row_ptr[r + 1];
  for (index_t r = 0; r < csc.rows; ++r) csr.row_ptr[r + 1] += csr.row_ptr[r];

  std::vector<index_t> cursor(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  for (index_t c = 0; c < csc.cols; ++c) {
    for (index_t k = csc.col_ptr[c]; k < csc.col_ptr[c + 1]; ++k) {
      const index_t r = csc.row_idx[k];
      const index_t dst = cursor[r]++;
      csr.col_idx[dst] = c;
      csr.val[dst] = csc.val[k];
    }
  }
  return csr;
}

template <class V>
CscT<V> csc_from_coo(const CooT<V>& coo) {
  return csc_from_csr(csr_from_coo(coo));
}

template <class V>
DcsrT<V> dcsr_from_csr(const CsrT<V>& csr) {
  DcsrT<V> d;
  d.rows = csr.rows;
  d.cols = csr.cols;
  d.col_idx = csr.col_idx;
  d.val = csr.val;
  d.row_ptr.push_back(0);
  for (index_t r = 0; r < csr.rows; ++r) {
    if (csr.row_empty(r)) continue;
    d.row_idx.push_back(r);
    d.row_ptr.push_back(csr.row_ptr[r + 1]);
  }
  return d;
}

template <class V>
CsrT<V> csr_from_dcsr(const DcsrT<V>& d) {
  CsrT<V> csr;
  csr.rows = d.rows;
  csr.cols = d.cols;
  csr.col_idx = d.col_idx;
  csr.val = d.val;
  csr.row_ptr.assign(static_cast<usize>(d.rows) + 1, 0);
  for (i64 k = 0; k < d.nnz_rows(); ++k) {
    csr.row_ptr[d.row_idx[k] + 1] = static_cast<index_t>(d.dense_row_nnz(k));
  }
  for (index_t r = 0; r < d.rows; ++r) csr.row_ptr[r + 1] += csr.row_ptr[r];
  return csr;
}

template <class V>
DenseMatrixT<V> dense_from_csr(const CsrT<V>& csr) {
  DenseMatrixT<V> m(csr.rows, csr.cols, V{});
  for (index_t r = 0; r < csr.rows; ++r) {
    for (index_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
      m.at(r, csr.col_idx[k]) = csr.val[k];
    }
  }
  return m;
}

template <class V>
CsrT<V> csr_from_dense(const DenseMatrixT<V>& m, V zero_tolerance) {
  CooT<V> coo;
  coo.rows = m.rows();
  coo.cols = m.cols();
  const double tol = std::abs(VTraits<V>::to_f64(zero_tolerance));
  for (index_t r = 0; r < m.rows(); ++r) {
    for (index_t c = 0; c < m.cols(); ++c) {
      if (std::abs(VTraits<V>::to_f64(m.at(r, c))) > tol) coo.push(r, c, m.at(r, c));
    }
  }
  return csr_from_coo(coo);
}

#define NMDT_INSTANTIATE_CONVERT(V)                                      \
  template CsrT<V> csr_from_coo(const CooT<V>&);                         \
  template CooT<V> coo_from_csr(const CsrT<V>&);                         \
  template CscT<V> csc_from_csr(const CsrT<V>&);                         \
  template CsrT<V> csr_from_csc(const CscT<V>&);                         \
  template CscT<V> csc_from_coo(const CooT<V>&);                         \
  template DcsrT<V> dcsr_from_csr(const CsrT<V>&);                       \
  template CsrT<V> csr_from_dcsr(const DcsrT<V>&);                       \
  template DenseMatrixT<V> dense_from_csr(const CsrT<V>&);               \
  template CsrT<V> csr_from_dense(const DenseMatrixT<V>&, V)

NMDT_INSTANTIATE_CONVERT(float);
NMDT_INSTANTIATE_CONVERT(double);
NMDT_INSTANTIATE_CONVERT(bf16_t);

#undef NMDT_INSTANTIATE_CONVERT

}  // namespace nmdt
