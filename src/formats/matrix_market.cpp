#include "formats/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/line_reader.hpp"

namespace nmdt {

namespace {

/// One Matrix Market line is a banner, a size triple, or one entry —
/// tens of bytes from any legitimate producer.  The cap turns an
/// adversarial newline-free stream into a typed ParseError instead of
/// unbounded std::string growth.
bool get_line(std::istream& is, std::string& line) {
  return read_bounded_line(is, line, kDefaultMaxLineBytes, "matrix market");
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(i64 line, const std::string& msg) {
  throw ParseError("matrix market line " + std::to_string(line) + ": " + msg);
}

}  // namespace

Coo read_matrix_market(std::istream& is) {
  std::string line;
  i64 lineno = 0;

  // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
  if (!get_line(is, line)) fail(1, "empty input");
  ++lineno;
  std::istringstream banner(to_lower(line));
  std::string magic, object, fmt, field, symmetry;
  banner >> magic >> object >> fmt >> field >> symmetry;
  if (magic != "%%matrixmarket") fail(lineno, "missing %%MatrixMarket banner");
  if (object != "matrix") fail(lineno, "unsupported object '" + object + "'");
  if (fmt != "coordinate") fail(lineno, "only coordinate format is supported");
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern) {
    fail(lineno, "unsupported field '" + field + "'");
  }
  const bool symmetric = symmetry == "symmetric";
  const bool skew = symmetry == "skew-symmetric";
  if (!symmetric && !skew && symmetry != "general") {
    fail(lineno, "unsupported symmetry '" + symmetry + "'");
  }

  // Size line (skipping comments).
  i64 rows = 0, cols = 0, entries = 0;
  for (;;) {
    if (!get_line(is, line)) fail(lineno, "missing size line");
    ++lineno;
    if (!line.empty() && line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream sz(line);
    if (!(sz >> rows >> cols >> entries)) fail(lineno, "malformed size line");
    break;
  }
  if (rows < 0 || cols < 0 || entries < 0) fail(lineno, "negative size");
  // Dimensions and entry counts are stored in index_t; anything larger
  // would silently wrap in the casts below.
  const i64 index_max = static_cast<i64>(std::numeric_limits<index_t>::max());
  if (rows > index_max || cols > index_max) {
    fail(lineno, "matrix dimensions exceed the index range (" +
                     std::to_string(index_max) + ")");
  }
  if (entries > index_max) {
    fail(lineno, "declared entry count exceeds the index range (" +
                     std::to_string(index_max) + ")");
  }

  Coo coo;
  coo.rows = static_cast<index_t>(rows);
  coo.cols = static_cast<index_t>(cols);
  coo.row.reserve(static_cast<usize>(entries));
  coo.col.reserve(static_cast<usize>(entries));
  coo.val.reserve(static_cast<usize>(entries));

  i64 seen = 0;
  while (seen < entries) {
    if (!get_line(is, line)) fail(lineno, "unexpected end of file");
    ++lineno;
    if (!line.empty() && line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream entry(line);
    i64 r = 0, c = 0;
    double v = 1.0;
    if (!(entry >> r >> c)) fail(lineno, "malformed entry");
    if (!pattern && !(entry >> v)) fail(lineno, "missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) fail(lineno, "coordinate out of range");
    coo.push(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1),
             static_cast<value_t>(v));
    if ((symmetric || skew) && r != c) {
      coo.push(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1),
               static_cast<value_t>(skew ? -v : v));
    }
    ++seen;
  }
  // Anything after the declared entries (other than comments and blank
  // lines) means the size line lied about nnz — reject it rather than
  // silently dropping data.
  while (get_line(is, line)) {
    ++lineno;
    if (!line.empty() && line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    fail(lineno, "entry beyond the declared count of " + std::to_string(entries));
  }
  coo.validate();
  return coo;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) throw ParseError("cannot open matrix market file: " + path);
  return read_matrix_market(is);
}

void write_matrix_market(std::ostream& os, const Coo& coo) {
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << coo.rows << ' ' << coo.cols << ' ' << coo.nnz() << '\n';
  for (i64 k = 0; k < coo.nnz(); ++k) {
    os << coo.row[k] + 1 << ' ' << coo.col[k] + 1 << ' ' << coo.val[k] << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const Coo& coo) {
  std::ofstream os(path);
  if (!os.good()) throw ParseError("cannot open matrix market file for writing: " + path);
  write_matrix_market(os, coo);
}

void randomize_values(Coo& coo, Rng& rng) {
  for (auto& v : coo.val) v = static_cast<value_t>(rng.uniform(-1.0, 1.0));
}

}  // namespace nmdt
