// Densified CSC (DCSC) — the transpose twin of DCSR.
//
// Sec. 4.1: for wide matrices, CSC's col_ptr outgrows CSR's row_ptr, so
// the storage format flips to CSR and "a DCSC kernel can potentially be
// a host kernel at SMs, performing CSR-to-DCSC conversion using the
// same engine".  DCSC lists only the non-empty columns (`col_idx`) with
// a compressed `col_ptr`; entries within a column carry their row
// index.  Structurally it is a Dcsr of the transpose, and the
// conversion engine produces it by walking CSR rows exactly as it walks
// CSC columns (transform/engine.hpp::convert_strip_dcsc).
//
// Templated on the stored value scalar V (util/precision.hpp); `Dcsc`
// aliases the default-precision instantiation.
#pragma once

#include <span>
#include <vector>

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "util/precision.hpp"
#include "util/types.hpp"

namespace nmdt {

template <class V>
struct DcscT {
  using value_type = V;

  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> col_idx;  ///< non-empty columns, strictly ascending
  std::vector<index_t> col_ptr;  ///< nnz_cols+1 entries
  std::vector<index_t> row_idx;  ///< nnz entries
  std::vector<V> val;            ///< nnz entries

  i64 nnz() const { return static_cast<i64>(val.size()); }
  i64 nnz_cols() const { return static_cast<i64>(col_idx.size()); }

  index_t dense_col(i64 k) const { return col_idx[k]; }
  i64 dense_col_nnz(i64 k) const { return col_ptr[k + 1] - col_ptr[k]; }

  std::span<const index_t> dense_col_rows(i64 k) const {
    return {row_idx.data() + col_ptr[k], static_cast<usize>(dense_col_nnz(k))};
  }
  std::span<const V> dense_col_vals(i64 k) const {
    return {val.data() + col_ptr[k], static_cast<usize>(dense_col_nnz(k))};
  }

  void validate() const;
};

using Dcsc = DcscT<value_t>;

extern template struct DcscT<float>;
extern template struct DcscT<double>;
extern template struct DcscT<bf16_t>;

/// Densify: drop empty columns of a CSC matrix.
template <class V>
DcscT<V> dcsc_from_csc(const CscT<V>& csc);
template <class V>
CscT<V> csc_from_dcsc(const DcscT<V>& dcsc);

/// Reinterpret a CSR matrix as the CSC of its transpose (pure copy of
/// the three vectors with dimensions swapped) — the relabeling that
/// lets one engine datapath serve both conversion directions.
template <class V>
CscT<V> transpose_view(const CsrT<V>& csr);
template <class V>
CsrT<V> transpose_view(const CscT<V>& csc);

/// One tile of A in DCSC form, produced from a *horizontal* strip of
/// `strip_width` rows advancing `tile_height` columns per request.
/// Local coordinates, mirroring DcsrTile.
template <class V>
struct DcscTileT {
  index_t strip_id = 0;   ///< horizontal strip index (rows)
  index_t row_begin = 0;  ///< global row of the strip's first row
  index_t col_begin = 0;  ///< global column of the tile's first column
  DcscT<V> body;

  i64 nnz() const { return body.nnz(); }
  i64 nnz_cols() const { return body.nnz_cols(); }
};

using DcscTile = DcscTileT<value_t>;

}  // namespace nmdt
