// Densified CSC (DCSC) — the transpose twin of DCSR.
//
// Sec. 4.1: for wide matrices, CSC's col_ptr outgrows CSR's row_ptr, so
// the storage format flips to CSR and "a DCSC kernel can potentially be
// a host kernel at SMs, performing CSR-to-DCSC conversion using the
// same engine".  DCSC lists only the non-empty columns (`col_idx`) with
// a compressed `col_ptr`; entries within a column carry their row
// index.  Structurally it is a Dcsr of the transpose, and the
// conversion engine produces it by walking CSR rows exactly as it walks
// CSC columns (transform/engine.hpp::convert_strip_dcsc).
#pragma once

#include <span>
#include <vector>

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "util/types.hpp"

namespace nmdt {

struct Dcsc {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> col_idx;  ///< non-empty columns, strictly ascending
  std::vector<index_t> col_ptr;  ///< nnz_cols+1 entries
  std::vector<index_t> row_idx;  ///< nnz entries
  std::vector<value_t> val;      ///< nnz entries

  i64 nnz() const { return static_cast<i64>(val.size()); }
  i64 nnz_cols() const { return static_cast<i64>(col_idx.size()); }

  index_t dense_col(i64 k) const { return col_idx[k]; }
  i64 dense_col_nnz(i64 k) const { return col_ptr[k + 1] - col_ptr[k]; }

  std::span<const index_t> dense_col_rows(i64 k) const {
    return {row_idx.data() + col_ptr[k], static_cast<usize>(dense_col_nnz(k))};
  }
  std::span<const value_t> dense_col_vals(i64 k) const {
    return {val.data() + col_ptr[k], static_cast<usize>(dense_col_nnz(k))};
  }

  void validate() const;
};

/// Densify: drop empty columns of a CSC matrix.
Dcsc dcsc_from_csc(const Csc& csc);
Csc csc_from_dcsc(const Dcsc& dcsc);

/// Reinterpret a CSR matrix as the CSC of its transpose (pure copy of
/// the three vectors with dimensions swapped) — the relabeling that
/// lets one engine datapath serve both conversion directions.
Csc transpose_view(const Csr& csr);
Csr transpose_view(const Csc& csc);

/// One tile of A in DCSC form, produced from a *horizontal* strip of
/// `strip_width` rows advancing `tile_height` columns per request.
/// Local coordinates, mirroring DcsrTile.
struct DcscTile {
  index_t strip_id = 0;   ///< horizontal strip index (rows)
  index_t row_begin = 0;  ///< global row of the strip's first row
  index_t col_begin = 0;  ///< global column of the tile's first column
  Dcsc body;

  i64 nnz() const { return body.nnz(); }
  i64 nnz_cols() const { return body.nnz_cols(); }
};

}  // namespace nmdt
