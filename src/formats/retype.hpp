// Precision re-typing of value arrays.
//
// The provenance rule for the precision axis (DESIGN.md "Precision
// model"): matrices are generated/ingested at the canonical f32
// precision, then *retyped* to the run's precision — widening to f64 is
// exact, narrowing to bf16 applies the round-to-nearest-even store rule
// once per element.  Structural conversions (CSR→CSC, tiling, ...) only
// permute values, so retype-then-convert equals convert-then-retype and
// every derived operand of a plan sees the same rounded value.
#pragma once

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "util/precision.hpp"

namespace nmdt {

/// One element VS → VD through binary64 (exact for every supported pair
/// except the deliberate narrowing into bf16/f32 storage).
template <class VD, class VS>
VD convert_value(VS v) {
  using CD = typename VTraits<VD>::compute_t;
  return VTraits<VD>::from_compute(static_cast<CD>(VTraits<VS>::to_f64(v)));
}

template <class VD, class VS>
std::vector<VD> retype_values(const std::vector<VS>& src) {
  std::vector<VD> out;
  out.reserve(src.size());
  for (const VS& v : src) out.push_back(convert_value<VD>(v));
  return out;
}

template <class VD, class VS>
CsrT<VD> retype(const CsrT<VS>& m) {
  CsrT<VD> out;
  out.rows = m.rows;
  out.cols = m.cols;
  out.row_ptr = m.row_ptr;
  out.col_idx = m.col_idx;
  out.val = retype_values<VD>(m.val);
  return out;
}

template <class VD, class VS>
CscT<VD> retype(const CscT<VS>& m) {
  CscT<VD> out;
  out.rows = m.rows;
  out.cols = m.cols;
  out.col_ptr = m.col_ptr;
  out.row_idx = m.row_idx;
  out.val = retype_values<VD>(m.val);
  return out;
}

template <class VD, class VS>
DenseMatrixT<VD> retype(const DenseMatrixT<VS>& m) {
  DenseMatrixT<VD> out(m.rows(), m.cols());
  auto dst = out.data();
  auto src = m.data();
  for (usize i = 0; i < src.size(); ++i) dst[i] = convert_value<VD>(src[i]);
  return out;
}

}  // namespace nmdt
