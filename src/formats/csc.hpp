// Compressed Sparse Column (CSC), the paper's baseline *storage* format
// for the near-memory engine (Sec. 4.1): columns are contiguous, so
// extracting a vertical strip is a contiguous walk from `col_ptr`, which
// is exactly what makes online strip/tile extraction cheap compared to
// CSR's jagged row frontier.
//
// Templated on the stored value scalar V (util/precision.hpp); `Csc`
// aliases the default-precision instantiation.
#pragma once

#include <span>
#include <vector>

#include "util/precision.hpp"
#include "util/types.hpp"

namespace nmdt {

template <class V>
struct CscT {
  using value_type = V;

  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> col_ptr;  ///< cols+1 entries, non-decreasing
  std::vector<index_t> row_idx;  ///< nnz entries, ascending within a column
  std::vector<V> val;            ///< nnz entries

  i64 nnz() const { return static_cast<i64>(val.size()); }
  double density() const;

  i64 col_nnz(index_t c) const { return col_ptr[c + 1] - col_ptr[c]; }

  std::span<const index_t> col_rows(index_t c) const {
    return {row_idx.data() + col_ptr[c], static_cast<usize>(col_nnz(c))};
  }
  std::span<const V> col_vals(index_t c) const {
    return {val.data() + col_ptr[c], static_cast<usize>(col_nnz(c))};
  }

  void validate() const;
};

using Csc = CscT<value_t>;

extern template struct CscT<float>;
extern template struct CscT<double>;
extern template struct CscT<bf16_t>;

}  // namespace nmdt
