#include "formats/tiling.hpp"

#include <algorithm>

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace nmdt {

template <class V>
u32 dcsr_tile_crc(const DcsrTileT<V>& tile) {
  const index_t header[5] = {tile.strip_id, tile.row_begin, tile.col_begin,
                             tile.body.rows, tile.body.cols};
  u32 c = crc32(header, sizeof(header));
  c = crc32(tile.body.row_idx.data(), tile.body.row_idx.size() * sizeof(index_t), c);
  c = crc32(tile.body.row_ptr.data(), tile.body.row_ptr.size() * sizeof(index_t), c);
  c = crc32(tile.body.col_idx.data(), tile.body.col_idx.size() * sizeof(index_t), c);
  c = crc32(tile.body.val.data(), tile.body.val.size() * sizeof(V), c);
  return c;
}

template <class V>
bool verify_dcsr_tile(const DcsrTileT<V>& tile) {
  if (tile.crc_valid && dcsr_tile_crc(tile) != tile.crc) return false;
  try {
    tile.body.validate();
  } catch (const FormatError&) {
    return false;
  }
  return true;
}

void TilingSpec::validate() const {
  NMDT_CHECK_CONFIG(strip_width > 0, "TilingSpec.strip_width must be positive");
  NMDT_CHECK_CONFIG(tile_height > 0, "TilingSpec.tile_height must be positive");
}

template <class V>
i64 TiledDcsrT<V>::nnz() const {
  i64 n = 0;
  for (const auto& strip : strips) {
    for (const auto& tile : strip) n += tile.nnz();
  }
  return n;
}

template <class V>
i64 TiledDcsrT<V>::total_nnz_rows() const {
  i64 n = 0;
  for (const auto& strip : strips) {
    for (const auto& tile : strip) n += tile.nnz_rows();
  }
  return n;
}

template <class V>
i64 TiledCsrT<V>::nnz() const {
  i64 n = 0;
  for (const auto& strip : strips) {
    for (const auto& tile : strip) n += tile.nnz();
  }
  return n;
}

namespace {

/// Gather per-tile COO buckets in one pass over the CSR matrix.
template <class V>
struct TileBuckets {
  index_t num_strips = 0;
  index_t num_tile_rows = 0;
  // bucket[s * num_tile_rows + t] holds (local_row, local_col, val).
  struct Entry {
    index_t r, c;
    V v;
  };
  std::vector<std::vector<Entry>> buckets;
};

template <class V>
TileBuckets<V> bucketize(const CsrT<V>& csr, const TilingSpec& spec) {
  TileBuckets<V> out;
  out.num_strips = spec.num_strips(csr.cols);
  out.num_tile_rows = spec.tiles_per_strip(csr.rows);
  out.buckets.resize(static_cast<usize>(out.num_strips) * out.num_tile_rows);
  for (index_t r = 0; r < csr.rows; ++r) {
    const index_t t = r / spec.tile_height;
    const index_t lr = r - t * spec.tile_height;
    for (index_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
      const index_t c = csr.col_idx[k];
      const index_t s = c / spec.strip_width;
      const index_t lc = c - s * spec.strip_width;
      out.buckets[static_cast<usize>(s) * out.num_tile_rows + t].push_back(
          {lr, lc, csr.val[k]});
    }
  }
  return out;
}

}  // namespace

template <class V>
TiledDcsrT<V> tiled_dcsr_from_csr(const CsrT<V>& csr, const TilingSpec& spec) {
  csr.validate();
  spec.validate();
  TiledDcsrT<V> out;
  out.rows = csr.rows;
  out.cols = csr.cols;
  out.spec = spec;

  TileBuckets<V> b = bucketize(csr, spec);
  out.strips.resize(b.num_strips);
  for (index_t s = 0; s < b.num_strips; ++s) {
    out.strips[s].resize(b.num_tile_rows);
    for (index_t t = 0; t < b.num_tile_rows; ++t) {
      DcsrTileT<V>& tile = out.strips[s][t];
      tile.strip_id = s;
      tile.row_begin = t * spec.tile_height;
      tile.col_begin = s * spec.strip_width;
      tile.body.rows = std::min<index_t>(spec.tile_height, csr.rows - tile.row_begin);
      tile.body.cols = std::min<index_t>(spec.strip_width, csr.cols - tile.col_begin);
      tile.body.row_ptr.push_back(0);
      const auto& entries = b.buckets[static_cast<usize>(s) * b.num_tile_rows + t];
      // Entries arrive row-major (csr iteration order), so consecutive
      // equal local rows form one dense-row segment.
      index_t current_row = -1;
      for (const auto& e : entries) {
        if (e.r != current_row) {
          tile.body.row_idx.push_back(e.r);
          tile.body.row_ptr.push_back(tile.body.row_ptr.back());
          current_row = e.r;
        }
        tile.body.col_idx.push_back(e.c);
        tile.body.val.push_back(e.v);
        ++tile.body.row_ptr.back();
      }
    }
  }
  return out;
}

template <class V>
TiledCsrT<V> tiled_csr_from_csr(const CsrT<V>& csr, const TilingSpec& spec) {
  csr.validate();
  spec.validate();
  TiledCsrT<V> out;
  out.rows = csr.rows;
  out.cols = csr.cols;
  out.spec = spec;

  TileBuckets<V> b = bucketize(csr, spec);
  out.strips.resize(b.num_strips);
  for (index_t s = 0; s < b.num_strips; ++s) {
    out.strips[s].resize(b.num_tile_rows);
    for (index_t t = 0; t < b.num_tile_rows; ++t) {
      CsrTileT<V>& tile = out.strips[s][t];
      tile.strip_id = s;
      tile.row_begin = t * spec.tile_height;
      tile.col_begin = s * spec.strip_width;
      tile.body.rows = std::min<index_t>(spec.tile_height, csr.rows - tile.row_begin);
      tile.body.cols = std::min<index_t>(spec.strip_width, csr.cols - tile.col_begin);
      tile.body.row_ptr.assign(static_cast<usize>(tile.body.rows) + 1, 0);
      const auto& entries = b.buckets[static_cast<usize>(s) * b.num_tile_rows + t];
      for (const auto& e : entries) ++tile.body.row_ptr[e.r + 1];
      for (index_t r = 0; r < tile.body.rows; ++r) {
        tile.body.row_ptr[r + 1] += tile.body.row_ptr[r];
      }
      tile.body.col_idx.resize(entries.size());
      tile.body.val.resize(entries.size());
      std::vector<index_t> cursor(tile.body.row_ptr.begin(), tile.body.row_ptr.end() - 1);
      for (const auto& e : entries) {
        const index_t dst = cursor[e.r]++;
        tile.body.col_idx[dst] = e.c;
        tile.body.val[dst] = e.v;
      }
    }
  }
  return out;
}

template <class V>
CooT<V> coo_from_tiled(const TiledDcsrT<V>& tiled) {
  CooT<V> coo;
  coo.rows = tiled.rows;
  coo.cols = tiled.cols;
  for (const auto& strip : tiled.strips) {
    for (const auto& tile : strip) {
      for (i64 k = 0; k < tile.body.nnz_rows(); ++k) {
        const index_t gr = tile.row_begin + tile.body.dense_row(k);
        const auto cols = tile.body.dense_row_cols(k);
        const auto vals = tile.body.dense_row_vals(k);
        for (usize j = 0; j < cols.size(); ++j) {
          coo.push(gr, tile.col_begin + cols[j], vals[j]);
        }
      }
    }
  }
  return coo;
}

template <class V>
CooT<V> coo_from_tiled(const TiledCsrT<V>& tiled) {
  CooT<V> coo;
  coo.rows = tiled.rows;
  coo.cols = tiled.cols;
  for (const auto& strip : tiled.strips) {
    for (const auto& tile : strip) {
      for (index_t r = 0; r < tile.body.rows; ++r) {
        for (index_t k = tile.body.row_ptr[r]; k < tile.body.row_ptr[r + 1]; ++k) {
          coo.push(tile.row_begin + r, tile.col_begin + tile.body.col_idx[k],
                   tile.body.val[k]);
        }
      }
    }
  }
  return coo;
}

template <class V>
StripNnz strip_nnz_of(const CsrT<V>& csr, const TilingSpec& spec) {
  StripNnz out;
  out.spec = spec;
  out.counts.assign(static_cast<usize>(spec.num_strips(csr.cols)), 0);
  for (index_t c : csr.col_idx) ++out.counts[static_cast<usize>(c / spec.strip_width)];
  return out;
}

template <class V>
std::vector<DcsrT<V>> strip_dcsr_from_csr(const CsrT<V>& csr, index_t strip_width) {
  TilingSpec spec;
  spec.strip_width = strip_width;
  spec.tile_height = std::max<index_t>(csr.rows, 1);  // one tile = whole strip
  TiledDcsrT<V> tiled = tiled_dcsr_from_csr(csr, spec);
  std::vector<DcsrT<V>> out;
  out.reserve(tiled.strips.size());
  for (auto& strip : tiled.strips) out.push_back(std::move(strip.front().body));
  return out;
}

template <class V>
std::vector<double> strip_nonzero_row_density(const CsrT<V>& csr, index_t strip_width) {
  const std::vector<DcsrT<V>> strips = strip_dcsr_from_csr(csr, strip_width);
  std::vector<double> density;
  density.reserve(strips.size());
  for (const auto& s : strips) {
    density.push_back(csr.rows == 0
                          ? 0.0
                          : static_cast<double>(s.nnz_rows()) / static_cast<double>(csr.rows));
  }
  return density;
}

template struct TiledDcsrT<float>;
template struct TiledDcsrT<double>;
template struct TiledDcsrT<bf16_t>;
template struct TiledCsrT<float>;
template struct TiledCsrT<double>;
template struct TiledCsrT<bf16_t>;

template u32 dcsr_tile_crc(const DcsrTileT<float>&);
template u32 dcsr_tile_crc(const DcsrTileT<double>&);
template u32 dcsr_tile_crc(const DcsrTileT<bf16_t>&);
template bool verify_dcsr_tile(const DcsrTileT<float>&);
template bool verify_dcsr_tile(const DcsrTileT<double>&);
template bool verify_dcsr_tile(const DcsrTileT<bf16_t>&);
template TiledDcsrT<float> tiled_dcsr_from_csr(const CsrT<float>&, const TilingSpec&);
template TiledDcsrT<double> tiled_dcsr_from_csr(const CsrT<double>&, const TilingSpec&);
template TiledDcsrT<bf16_t> tiled_dcsr_from_csr(const CsrT<bf16_t>&, const TilingSpec&);
template TiledCsrT<float> tiled_csr_from_csr(const CsrT<float>&, const TilingSpec&);
template TiledCsrT<double> tiled_csr_from_csr(const CsrT<double>&, const TilingSpec&);
template TiledCsrT<bf16_t> tiled_csr_from_csr(const CsrT<bf16_t>&, const TilingSpec&);
template StripNnz strip_nnz_of(const CsrT<float>&, const TilingSpec&);
template StripNnz strip_nnz_of(const CsrT<double>&, const TilingSpec&);
template StripNnz strip_nnz_of(const CsrT<bf16_t>&, const TilingSpec&);
template CooT<float> coo_from_tiled(const TiledDcsrT<float>&);
template CooT<double> coo_from_tiled(const TiledDcsrT<double>&);
template CooT<bf16_t> coo_from_tiled(const TiledDcsrT<bf16_t>&);
template CooT<float> coo_from_tiled(const TiledCsrT<float>&);
template CooT<double> coo_from_tiled(const TiledCsrT<double>&);
template CooT<bf16_t> coo_from_tiled(const TiledCsrT<bf16_t>&);
template std::vector<DcsrT<float>> strip_dcsr_from_csr(const CsrT<float>&, index_t);
template std::vector<DcsrT<double>> strip_dcsr_from_csr(const CsrT<double>&, index_t);
template std::vector<DcsrT<bf16_t>> strip_dcsr_from_csr(const CsrT<bf16_t>&, index_t);
template std::vector<double> strip_nonzero_row_density(const CsrT<float>&, index_t);
template std::vector<double> strip_nonzero_row_density(const CsrT<double>&, index_t);
template std::vector<double> strip_nonzero_row_density(const CsrT<bf16_t>&, index_t);

}  // namespace nmdt
