#include "formats/tiling.hpp"

#include <algorithm>

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace nmdt {

u32 dcsr_tile_crc(const DcsrTile& tile) {
  const index_t header[5] = {tile.strip_id, tile.row_begin, tile.col_begin,
                             tile.body.rows, tile.body.cols};
  u32 c = crc32(header, sizeof(header));
  c = crc32(tile.body.row_idx.data(), tile.body.row_idx.size() * sizeof(index_t), c);
  c = crc32(tile.body.row_ptr.data(), tile.body.row_ptr.size() * sizeof(index_t), c);
  c = crc32(tile.body.col_idx.data(), tile.body.col_idx.size() * sizeof(index_t), c);
  c = crc32(tile.body.val.data(), tile.body.val.size() * sizeof(value_t), c);
  return c;
}

bool verify_dcsr_tile(const DcsrTile& tile) {
  if (tile.crc_valid && dcsr_tile_crc(tile) != tile.crc) return false;
  try {
    tile.body.validate();
  } catch (const FormatError&) {
    return false;
  }
  return true;
}

void TilingSpec::validate() const {
  NMDT_CHECK_CONFIG(strip_width > 0, "TilingSpec.strip_width must be positive");
  NMDT_CHECK_CONFIG(tile_height > 0, "TilingSpec.tile_height must be positive");
}

i64 TiledDcsr::nnz() const {
  i64 n = 0;
  for (const auto& strip : strips) {
    for (const auto& tile : strip) n += tile.nnz();
  }
  return n;
}

i64 TiledDcsr::total_nnz_rows() const {
  i64 n = 0;
  for (const auto& strip : strips) {
    for (const auto& tile : strip) n += tile.nnz_rows();
  }
  return n;
}

i64 TiledCsr::nnz() const {
  i64 n = 0;
  for (const auto& strip : strips) {
    for (const auto& tile : strip) n += tile.nnz();
  }
  return n;
}

namespace {

/// Gather per-tile COO buckets in one pass over the CSR matrix.
struct TileBuckets {
  index_t num_strips = 0;
  index_t num_tile_rows = 0;
  // bucket[s * num_tile_rows + t] holds (local_row, local_col, val).
  struct Entry {
    index_t r, c;
    value_t v;
  };
  std::vector<std::vector<Entry>> buckets;
};

TileBuckets bucketize(const Csr& csr, const TilingSpec& spec) {
  TileBuckets out;
  out.num_strips = spec.num_strips(csr.cols);
  out.num_tile_rows = spec.tiles_per_strip(csr.rows);
  out.buckets.resize(static_cast<usize>(out.num_strips) * out.num_tile_rows);
  for (index_t r = 0; r < csr.rows; ++r) {
    const index_t t = r / spec.tile_height;
    const index_t lr = r - t * spec.tile_height;
    for (index_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
      const index_t c = csr.col_idx[k];
      const index_t s = c / spec.strip_width;
      const index_t lc = c - s * spec.strip_width;
      out.buckets[static_cast<usize>(s) * out.num_tile_rows + t].push_back(
          {lr, lc, csr.val[k]});
    }
  }
  return out;
}

}  // namespace

TiledDcsr tiled_dcsr_from_csr(const Csr& csr, const TilingSpec& spec) {
  csr.validate();
  spec.validate();
  TiledDcsr out;
  out.rows = csr.rows;
  out.cols = csr.cols;
  out.spec = spec;

  TileBuckets b = bucketize(csr, spec);
  out.strips.resize(b.num_strips);
  for (index_t s = 0; s < b.num_strips; ++s) {
    out.strips[s].resize(b.num_tile_rows);
    for (index_t t = 0; t < b.num_tile_rows; ++t) {
      DcsrTile& tile = out.strips[s][t];
      tile.strip_id = s;
      tile.row_begin = t * spec.tile_height;
      tile.col_begin = s * spec.strip_width;
      tile.body.rows = std::min<index_t>(spec.tile_height, csr.rows - tile.row_begin);
      tile.body.cols = std::min<index_t>(spec.strip_width, csr.cols - tile.col_begin);
      tile.body.row_ptr.push_back(0);
      const auto& entries = b.buckets[static_cast<usize>(s) * b.num_tile_rows + t];
      // Entries arrive row-major (csr iteration order), so consecutive
      // equal local rows form one dense-row segment.
      index_t current_row = -1;
      for (const auto& e : entries) {
        if (e.r != current_row) {
          tile.body.row_idx.push_back(e.r);
          tile.body.row_ptr.push_back(tile.body.row_ptr.back());
          current_row = e.r;
        }
        tile.body.col_idx.push_back(e.c);
        tile.body.val.push_back(e.v);
        ++tile.body.row_ptr.back();
      }
    }
  }
  return out;
}

TiledCsr tiled_csr_from_csr(const Csr& csr, const TilingSpec& spec) {
  csr.validate();
  spec.validate();
  TiledCsr out;
  out.rows = csr.rows;
  out.cols = csr.cols;
  out.spec = spec;

  TileBuckets b = bucketize(csr, spec);
  out.strips.resize(b.num_strips);
  for (index_t s = 0; s < b.num_strips; ++s) {
    out.strips[s].resize(b.num_tile_rows);
    for (index_t t = 0; t < b.num_tile_rows; ++t) {
      CsrTile& tile = out.strips[s][t];
      tile.strip_id = s;
      tile.row_begin = t * spec.tile_height;
      tile.col_begin = s * spec.strip_width;
      tile.body.rows = std::min<index_t>(spec.tile_height, csr.rows - tile.row_begin);
      tile.body.cols = std::min<index_t>(spec.strip_width, csr.cols - tile.col_begin);
      tile.body.row_ptr.assign(static_cast<usize>(tile.body.rows) + 1, 0);
      const auto& entries = b.buckets[static_cast<usize>(s) * b.num_tile_rows + t];
      for (const auto& e : entries) ++tile.body.row_ptr[e.r + 1];
      for (index_t r = 0; r < tile.body.rows; ++r) {
        tile.body.row_ptr[r + 1] += tile.body.row_ptr[r];
      }
      tile.body.col_idx.resize(entries.size());
      tile.body.val.resize(entries.size());
      std::vector<index_t> cursor(tile.body.row_ptr.begin(), tile.body.row_ptr.end() - 1);
      for (const auto& e : entries) {
        const index_t dst = cursor[e.r]++;
        tile.body.col_idx[dst] = e.c;
        tile.body.val[dst] = e.v;
      }
    }
  }
  return out;
}

Coo coo_from_tiled(const TiledDcsr& tiled) {
  Coo coo;
  coo.rows = tiled.rows;
  coo.cols = tiled.cols;
  for (const auto& strip : tiled.strips) {
    for (const auto& tile : strip) {
      for (i64 k = 0; k < tile.body.nnz_rows(); ++k) {
        const index_t gr = tile.row_begin + tile.body.dense_row(k);
        const auto cols = tile.body.dense_row_cols(k);
        const auto vals = tile.body.dense_row_vals(k);
        for (usize j = 0; j < cols.size(); ++j) {
          coo.push(gr, tile.col_begin + cols[j], vals[j]);
        }
      }
    }
  }
  return coo;
}

Coo coo_from_tiled(const TiledCsr& tiled) {
  Coo coo;
  coo.rows = tiled.rows;
  coo.cols = tiled.cols;
  for (const auto& strip : tiled.strips) {
    for (const auto& tile : strip) {
      for (index_t r = 0; r < tile.body.rows; ++r) {
        for (index_t k = tile.body.row_ptr[r]; k < tile.body.row_ptr[r + 1]; ++k) {
          coo.push(tile.row_begin + r, tile.col_begin + tile.body.col_idx[k],
                   tile.body.val[k]);
        }
      }
    }
  }
  return coo;
}

StripNnz strip_nnz_of(const Csr& csr, const TilingSpec& spec) {
  StripNnz out;
  out.spec = spec;
  out.counts.assign(static_cast<usize>(spec.num_strips(csr.cols)), 0);
  for (index_t c : csr.col_idx) ++out.counts[static_cast<usize>(c / spec.strip_width)];
  return out;
}

std::vector<Dcsr> strip_dcsr_from_csr(const Csr& csr, index_t strip_width) {
  TilingSpec spec;
  spec.strip_width = strip_width;
  spec.tile_height = std::max<index_t>(csr.rows, 1);  // one tile = whole strip
  TiledDcsr tiled = tiled_dcsr_from_csr(csr, spec);
  std::vector<Dcsr> out;
  out.reserve(tiled.strips.size());
  for (auto& strip : tiled.strips) out.push_back(std::move(strip.front().body));
  return out;
}

std::vector<double> strip_nonzero_row_density(const Csr& csr, index_t strip_width) {
  const std::vector<Dcsr> strips = strip_dcsr_from_csr(csr, strip_width);
  std::vector<double> density;
  density.reserve(strips.size());
  for (const auto& s : strips) {
    density.push_back(csr.rows == 0
                          ? 0.0
                          : static_cast<double>(s.nnz_rows()) / static_cast<double>(csr.rows));
  }
  return density;
}

}  // namespace nmdt
