// Storage-footprint accounting under the paper's byte conventions
// (Sec. 2): 4 bytes per index, 4 bytes per value.
//
//   CSR        : data 4·nnz,  metadata 4·nnz (col_idx) + 4·(rows+1)
//   CSC        : data 4·nnz,  metadata 4·nnz (row_idx) + 4·(cols+1)
//   DCSR       : data 4·nnz,  metadata 4·nnz + 4·(nnz_rows+1) + 4·nnz_rows
//   tiled CSR  : Σ tile CSR footprints — each tile pays a full
//                (tile_rows+1) row_ptr even when nearly all rows are
//                empty, which is the Fig. 8 pathology
//   tiled DCSR : Σ tile DCSR footprints — the 1.3–1.4x-vs-untiled-CSR
//                overhead of Fig. 9
#pragma once

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"
#include "formats/tiling.hpp"

namespace nmdt {

struct Footprint {
  i64 data_bytes = 0;      ///< value vector(s)
  i64 metadata_bytes = 0;  ///< index/pointer vectors

  i64 total() const { return data_bytes + metadata_bytes; }

  Footprint& operator+=(const Footprint& o) {
    data_bytes += o.data_bytes;
    metadata_bytes += o.metadata_bytes;
    return *this;
  }
};

Footprint footprint(const Csr& m);
Footprint footprint(const Csc& m);
Footprint footprint(const Dcsr& m);
Footprint footprint(const TiledCsr& m);
Footprint footprint(const TiledDcsr& m);

/// Analytical CSR size in bytes: 8·nnz + 4·(rows+1) (paper Sec. 2).
i64 csr_bytes(i64 rows, i64 nnz);

}  // namespace nmdt
