// Storage-footprint accounting under the paper's byte conventions
// (Sec. 2): 4 bytes per index, sizeof(V) bytes per value.
//
//   CSR        : data v·nnz,  metadata 4·nnz (col_idx) + 4·(rows+1)
//   CSC        : data v·nnz,  metadata 4·nnz (row_idx) + 4·(cols+1)
//   DCSR       : data v·nnz,  metadata 4·nnz + 4·(nnz_rows+1) + 4·nnz_rows
//   tiled CSR  : Σ tile CSR footprints — each tile pays a full
//                (tile_rows+1) row_ptr even when nearly all rows are
//                empty, which is the Fig. 8 pathology
//   tiled DCSR : Σ tile DCSR footprints — the 1.3–1.4x-vs-untiled-CSR
//                overhead of Fig. 9
//
// The value byte-width `v` follows the container's scalar type (4 at the
// paper's FP32 default, 8 at f64, 2 at bf16); the analytical helpers
// take it as an explicit parameter instead of assuming kValueBytes.
#pragma once

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"
#include "formats/tiling.hpp"
#include "util/precision.hpp"

namespace nmdt {

struct Footprint {
  i64 data_bytes = 0;      ///< value vector(s)
  i64 metadata_bytes = 0;  ///< index/pointer vectors

  i64 total() const { return data_bytes + metadata_bytes; }

  Footprint& operator+=(const Footprint& o) {
    data_bytes += o.data_bytes;
    metadata_bytes += o.metadata_bytes;
    return *this;
  }
};

template <class V>
Footprint footprint(const CsrT<V>& m);
template <class V>
Footprint footprint(const CscT<V>& m);
template <class V>
Footprint footprint(const DcsrT<V>& m);
template <class V>
Footprint footprint(const TiledCsrT<V>& m);
template <class V>
Footprint footprint(const TiledDcsrT<V>& m);

/// Analytical CSR size in bytes: (value_bytes+4)·nnz + 4·(rows+1)
/// (paper Sec. 2 at value_bytes = 4).
i64 csr_bytes(i64 rows, i64 nnz, i64 value_bytes = kValueBytes);

}  // namespace nmdt
