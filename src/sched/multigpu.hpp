// Large-scale / multi-GPU SpMM planning (paper Sec. 6.2, Fig. 18).
//
// For matrices whose dense B and C exceed GPU memory, the paper
// partitions C into vertical strips (one per GPU), replicates the
// space-efficient sparse A on every GPU, and streams B strips from
// system memory, overlapping transfer with compute (CUDA streams /
// UVM).  This model computes the chunking, transfer and compute times,
// and the overlap efficiency — including the capacity benefit of
// storing A as CSC instead of pre-tiled DCSR (more room for B/C
// chunks, fewer stream round trips).
#pragma once

#include "gpusim/arch.hpp"
#include "matgen/suite.hpp"

namespace nmdt {

struct MultiGpuConfig {
  int gpus = 4;
  double gpu_memory_gb = 16.0;       ///< per-GPU HBM capacity
  double host_link_gbps = 32.0;      ///< PCIe/NVLink per GPU
  double spmm_effective_gbps = 500.0;  ///< achieved DRAM bw of the SpMM kernel
  i64 value_bytes = kValueBytes;       ///< stored element width of B/C
};

struct MultiGpuPlan {
  int gpus = 0;
  i64 a_bytes = 0;            ///< replicated sparse input per GPU
  i64 b_bytes_per_gpu = 0;    ///< B columns this GPU must stream in
  i64 c_bytes_per_gpu = 0;
  index_t chunk_cols = 0;     ///< B/C columns per streamed chunk
  i64 num_chunks = 0;
  double transfer_ns = 0.0;   ///< total host→device streaming time
  double compute_ns = 0.0;    ///< total SpMM kernel time
  double total_ns = 0.0;      ///< with transfer/compute overlap
  double overlap_efficiency = 0.0;  ///< compute_ns / total_ns
  bool fits_unchunked = false;
};

/// Plan SpMM of an n×n sparse matrix (given stats) by K dense columns
/// across `cfg.gpus` GPUs.  `a_format_bytes` is the storage footprint of
/// the replicated A (CSC vs pre-tiled DCSR changes the chunk capacity —
/// the Sec. 6.2 argument for keeping A untiled and converting online).
MultiGpuPlan plan_multi_gpu(const MatrixStats& stats, index_t K, i64 a_format_bytes,
                            const MultiGpuConfig& cfg);

}  // namespace nmdt
