#include "sched/layout.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nmdt {

const char* placement_name(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kStripCamping: return "strip-camping";
    case PlacementPolicy::kTileRotation: return "tile-rotation";
  }
  return "unknown";
}

StripPlacement::StripPlacement(PlacementPolicy policy, int channels)
    : policy_(policy), channels_(channels) {
  NMDT_CHECK_CONFIG(channels > 0, "StripPlacement requires at least one channel");
}

int StripPlacement::channel_for(index_t strip_id, index_t tile_row) const {
  switch (policy_) {
    case PlacementPolicy::kStripCamping:
      return static_cast<int>(strip_id % channels_);
    case PlacementPolicy::kTileRotation:
      return static_cast<int>((strip_id + tile_row) % channels_);
  }
  return 0;
}

i64 StripPlacement::switches_per_strip(index_t num_tiles) const {
  if (policy_ == PlacementPolicy::kStripCamping || num_tiles <= 1) return 0;
  return num_tiles - 1;
}

double partition_imbalance(const MemStats& stats, int fb_partitions) {
  NMDT_CHECK_CONFIG(fb_partitions > 0, "partition_imbalance requires partitions > 0");
  const i64 total = stats.total_dram_bytes();
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / fb_partitions;
  return static_cast<double>(stats.max_partition_bytes(fb_partitions)) / mean;
}

}  // namespace nmdt
