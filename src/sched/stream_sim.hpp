// Discrete simulation of the Sec. 6.2 streaming pipeline: B/C chunks
// transferred over the host link while previous chunks compute, with a
// bounded number of staging buffers (double buffering by default).
//
// The analytic MultiGpuPlan gives the steady-state bound; this
// event-level model validates it and exposes the transients (pipeline
// fill/drain, buffer stalls) so the sec62 bench can show where overlap
// breaks down — e.g. a single staging buffer serializing transfer and
// compute.
#pragma once

#include <span>
#include <vector>

#include "sched/multigpu.hpp"

namespace nmdt {

struct StreamChunk {
  double transfer_ns = 0.0;  ///< host→device time for this chunk
  double compute_ns = 0.0;   ///< SpMM time for this chunk
};

struct StreamTimeline {
  double total_ns = 0.0;
  double transfer_busy_ns = 0.0;
  double compute_busy_ns = 0.0;
  double compute_stall_ns = 0.0;      ///< compute idle waiting for data
  double overlap_efficiency = 0.0;    ///< compute_busy / total
  std::vector<double> chunk_finish_ns;
};

/// Simulate the chunk pipeline: one DMA engine transfers chunks in
/// order; one compute engine processes a chunk once it has landed and a
/// staging buffer is free (`buffers` chunks may be resident at once —
/// the one computing plus those prefetched).
StreamTimeline simulate_stream(std::span<const StreamChunk> chunks, int buffers = 2);

/// Expand a MultiGpuPlan into its uniform chunk sequence.
std::vector<StreamChunk> chunks_from_plan(const MultiGpuPlan& plan);

}  // namespace nmdt
