// Data layout of the sparse input across FB partitions / pseudo
// channels (paper Sec. 6.1, Fig. 17).
//
// The conversion engines live beside the memory controllers and FB
// partitions do not communicate, so all CSC data needed for one tile
// must reside in one partition.  Placing a whole vertical strip in one
// partition makes every SM working on that strip pound the same
// partition (the "camping" problem, Fig. 17 left).  The paper's fix
// splits each strip horizontally into tiles rotated across partitions
// (Fig. 17 right) at the cost of a small per-switch handoff
// (next_fb_ptr + col_idx_frontier).
#pragma once

#include <span>

#include "gpusim/memory_system.hpp"
#include "util/types.hpp"

namespace nmdt {

enum class PlacementPolicy {
  kStripCamping,   ///< whole strip in one channel (naive, Fig. 17 left)
  kTileRotation,   ///< tiles of a strip rotate across channels (Fig. 17 right)
};

const char* placement_name(PlacementPolicy p);

class StripPlacement {
 public:
  StripPlacement(PlacementPolicy policy, int channels);

  /// Pseudo channel holding tile `tile_row` of strip `strip_id`.
  int channel_for(index_t strip_id, index_t tile_row) const;

  /// Number of channel switches an SM crossing `num_tiles` consecutive
  /// tiles of one strip performs (0 under camping placement).
  i64 switches_per_strip(index_t num_tiles) const;

  /// Per-switch handoff metadata in bytes: the col_idx_frontier of the
  /// strip's lanes plus the next_fb_ptr (Sec. 6.1).
  static i64 switch_handoff_bytes(index_t strip_width) {
    return static_cast<i64>(strip_width) * kIndexBytes + 8;
  }

  PlacementPolicy policy() const { return policy_; }
  int channels() const { return channels_; }

 private:
  PlacementPolicy policy_;
  int channels_;
};

/// Camping metric: most-loaded-partition traffic over mean partition
/// traffic; 1.0 is perfectly balanced.
double partition_imbalance(const MemStats& stats, int fb_partitions);

}  // namespace nmdt
