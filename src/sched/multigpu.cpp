#include "sched/multigpu.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nmdt {

MultiGpuPlan plan_multi_gpu(const MatrixStats& stats, index_t K, i64 a_format_bytes,
                            const MultiGpuConfig& cfg) {
  NMDT_CHECK_CONFIG(cfg.gpus > 0, "plan_multi_gpu requires at least one GPU");
  NMDT_CHECK_CONFIG(K > 0, "plan_multi_gpu requires K > 0");
  NMDT_CHECK_CONFIG(cfg.gpu_memory_gb > 0 && cfg.host_link_gbps > 0 &&
                        cfg.spmm_effective_gbps > 0,
                    "multi-GPU config rates must be positive");
  NMDT_CHECK_CONFIG(cfg.value_bytes > 0, "multi-GPU config requires positive value_bytes");

  MultiGpuPlan plan;
  plan.gpus = cfg.gpus;
  plan.a_bytes = a_format_bytes;

  // Each GPU owns a vertical strip of C: ceil(K / gpus) columns.
  const index_t cols_per_gpu = (K + cfg.gpus - 1) / cfg.gpus;
  const i64 n = stats.rows;
  plan.b_bytes_per_gpu = n * static_cast<i64>(cols_per_gpu) * cfg.value_bytes;
  plan.c_bytes_per_gpu = plan.b_bytes_per_gpu;

  const double capacity = cfg.gpu_memory_gb * 1024.0 * 1024.0 * 1024.0;
  // Double-buffered streaming: two B chunks + one C chunk resident
  // besides the replicated A.
  const double free_bytes = capacity - static_cast<double>(plan.a_bytes);
  NMDT_CHECK_CONFIG(free_bytes > 0, "sparse matrix alone exceeds GPU memory");
  const double bytes_per_col = static_cast<double>(n) * cfg.value_bytes;
  const i64 max_chunk_cols = static_cast<i64>(free_bytes / (3.0 * bytes_per_col));
  NMDT_CHECK_CONFIG(max_chunk_cols > 0, "GPU memory too small for a single B column");

  plan.fits_unchunked = max_chunk_cols >= cols_per_gpu;
  plan.chunk_cols = static_cast<index_t>(std::min<i64>(max_chunk_cols, cols_per_gpu));
  plan.num_chunks = (cols_per_gpu + plan.chunk_cols - 1) / plan.chunk_cols;

  // Transfer: stream B in, stream C out (1 GB/s == 1 byte/ns).
  plan.transfer_ns = static_cast<double>(plan.b_bytes_per_gpu + plan.c_bytes_per_gpu) /
                     cfg.host_link_gbps;
  // Compute: the SpMM kernel moves A once per chunk plus B and C once,
  // at the kernel's achieved bandwidth.
  const double kernel_bytes = static_cast<double>(plan.a_bytes) * plan.num_chunks +
                              static_cast<double>(plan.b_bytes_per_gpu) +
                              static_cast<double>(plan.c_bytes_per_gpu);
  plan.compute_ns = kernel_bytes / cfg.spmm_effective_gbps;

  // Chunks pipeline: total = max(transfer, compute) + the smaller
  // stage's first-chunk fill.
  const double fill = std::min(plan.transfer_ns, plan.compute_ns) /
                      static_cast<double>(plan.num_chunks);
  plan.total_ns = std::max(plan.transfer_ns, plan.compute_ns) + fill;
  plan.overlap_efficiency = plan.compute_ns / plan.total_ns;
  return plan;
}

}  // namespace nmdt
