#include "sched/stream_sim.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nmdt {

StreamTimeline simulate_stream(std::span<const StreamChunk> chunks, int buffers) {
  NMDT_CHECK_CONFIG(buffers >= 1, "stream pipeline needs at least one buffer");
  StreamTimeline t;
  t.chunk_finish_ns.reserve(chunks.size());

  // finish_compute[i] = when chunk i's compute retired; a transfer for
  // chunk i may only start once chunk i-buffers has retired (its buffer
  // is then free).
  std::vector<double> finish_compute;
  finish_compute.reserve(chunks.size());
  double transfer_free = 0.0;  // DMA engine availability
  double compute_free = 0.0;   // compute engine availability

  for (usize i = 0; i < chunks.size(); ++i) {
    NMDT_CHECK_CONFIG(chunks[i].transfer_ns >= 0.0 && chunks[i].compute_ns >= 0.0,
                      "chunk times must be non-negative");
    double start_transfer = transfer_free;
    if (i >= static_cast<usize>(buffers)) {
      start_transfer = std::max(start_transfer, finish_compute[i - buffers]);
    }
    const double landed = start_transfer + chunks[i].transfer_ns;
    transfer_free = landed;
    t.transfer_busy_ns += chunks[i].transfer_ns;

    const double start_compute = std::max(landed, compute_free);
    t.compute_stall_ns += std::max(0.0, landed - compute_free);
    const double done = start_compute + chunks[i].compute_ns;
    compute_free = done;
    t.compute_busy_ns += chunks[i].compute_ns;
    finish_compute.push_back(done);
    t.chunk_finish_ns.push_back(done);
  }
  t.total_ns = chunks.empty() ? 0.0 : finish_compute.back();
  t.overlap_efficiency = t.total_ns > 0.0 ? t.compute_busy_ns / t.total_ns : 0.0;
  return t;
}

std::vector<StreamChunk> chunks_from_plan(const MultiGpuPlan& plan) {
  NMDT_CHECK_CONFIG(plan.num_chunks > 0, "plan has no chunks");
  std::vector<StreamChunk> chunks(static_cast<usize>(plan.num_chunks));
  const double per_transfer = plan.transfer_ns / static_cast<double>(plan.num_chunks);
  const double per_compute = plan.compute_ns / static_cast<double>(plan.num_chunks);
  for (auto& c : chunks) {
    c.transfer_ns = per_transfer;
    c.compute_ns = per_compute;
  }
  return chunks;
}

}  // namespace nmdt
