// JSON-lines request/response protocol of the SpMM service daemon
// (examples/nmdt_serve, src/service/server.hpp).
//
// One request per line on the way in, one response per line on the way
// out — the scheduler/worker split of a long-lived server without any
// framing beyond '\n' (and the bounded-line reader, util/line_reader,
// caps how much a newline-free attacker can make us buffer).
//
// Request line (unknown keys rejected so client typos fail loudly):
//   {"id": "r1", "matrix": "gen:uniform:256x256:0.02:1", "k": 16,
//    "kernel": "auto", "precision": "f32", "deadline_ms": 500,
//    "tenant": "team-a", "b_seed": 2, "return_c": true}
//
// `matrix` is a file path (.mtx / .bin) or a generator spec
// (`gen:<kind>:<rows>x<cols>:<density>:<seed>`); B is generated from
// `b_seed` exactly the way `nmdt_cli run` generates it, so a service
// response is bit-comparable to a batch run of the same request.
//
// Response line: status "ok" carries the result provenance (kernel,
// precision, rows, k) plus `c_crc32` — CRC32 over the result's stored
// bits — and, when `return_c` was set, `c_hex`, the little-endian hex
// dump of those bits (the bit-identity witness the chaos suite
// compares against batch mode).  Status "error" carries the typed
// error class and message; OverloadError responses add the
// `retry_after_ms` admission hint.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "kernels/spmm.hpp"
#include "util/precision.hpp"
#include "util/types.hpp"

namespace nmdt::service {

/// Caps mirroring what any legitimate client sends; anything beyond is
/// an adversarial or broken request and parses to a typed ParseError.
inline constexpr index_t kMaxRequestK = 4096;
inline constexpr usize kMaxIdBytes = 256;
inline constexpr usize kMaxTenantBytes = 128;
inline constexpr usize kMaxMatrixSpecBytes = 4096;

struct Request {
  std::string id;                       ///< echoed verbatim in the response
  std::string tenant = "default";       ///< token-bucket quota key
  std::string matrix;                   ///< path or gen:<...> spec
  index_t k = 64;                       ///< dense B columns
  u64 b_seed = 2;                       ///< B RNG seed (2 = nmdt_cli run's)
  std::optional<KernelKind> kernel;     ///< nullopt = plan's heuristic pick
  Precision precision = Precision::kF32;
  double deadline_ms = 0.0;             ///< <= 0 = server default
  bool return_c = false;                ///< include c_hex in the response
};

/// Parse one request line; `line_no` names the request when `id` is
/// absent ("line-<n>").  Throws ParseError on malformed JSON, unknown
/// keys, wrong value types, or out-of-range fields.
Request parse_request(std::string_view line, u64 line_no);

struct Response {
  std::string id;
  std::string tenant;
  bool ok = false;
  // --- error half (ok == false) ---
  std::string error_type;   ///< "OverloadError", "TimeoutError", ...
  std::string message;
  i64 retry_after_ms = -1;  ///< >= 0 only on OverloadError shedding
  // --- result half (ok == true) ---
  std::string kernel;       ///< kernel actually run
  std::string precision;
  index_t rows = 0;         ///< C rows (matrix rows)
  index_t k = 0;            ///< C columns
  u32 c_crc32 = 0;          ///< CRC32 over the stored result bits
  std::string c_hex;        ///< little-endian hex of those bits (opt-in)
  bool used_fallback = false;  ///< degraded to the reference CSR kernel
  int coalesced = 1;        ///< batch size this request was served in
  double queue_ms = 0.0;
  double exec_ms = 0.0;
};

/// Serialize a response as one JSON line (no trailing newline).  The
/// output parses back through obs::json_parse — the daemon's own
/// schema check in tests.
std::string to_json_line(const Response& r);

/// Convenience constructors keeping error responses uniform.
Response error_response(const Request& req, const std::exception& e);
Response error_response(std::string id, std::string tenant, const std::exception& e);

/// JSON string escaping for the writer ('"', '\\', control chars).
std::string json_escape(std::string_view s);

/// Little-endian hex of a byte span (2 chars per byte) and its inverse.
/// decode throws ParseError on odd length or non-hex digits.
std::string hex_encode(const void* data, usize bytes);
std::vector<u8> hex_decode(std::string_view hex);

/// The stored-precision result bits of an SpmmResult: C64's bytes for
/// f64 runs, C's f32 bytes otherwise (bf16 values are held rounded in
/// f32 bits — see SpmmResult::C).  This is the byte string c_crc32 and
/// c_hex are computed over, on both the service and batch sides.
std::span<const u8> result_bits(const SpmmResult& r);

}  // namespace nmdt::service
