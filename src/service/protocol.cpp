#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json_check.hpp"
#include "util/error.hpp"

namespace nmdt::service {

namespace {

[[noreturn]] void fail(const std::string& id, const std::string& msg) {
  throw ParseError("request " + id + ": " + msg);
}

const obs::JsonValue* find_typed(const obs::JsonValue& obj, const std::string& key,
                                 obs::JsonValue::Kind kind, const char* kind_name,
                                 const std::string& id) {
  const obs::JsonValue* v = obj.find(key);
  if (v == nullptr) return nullptr;
  if (v->kind != kind) fail(id, "field '" + key + "' must be a " + kind_name);
  return v;
}

std::optional<KernelKind> parse_kernel_field(const std::string& name,
                                             const std::string& id) {
  if (name.empty() || name == "auto") return std::nullopt;
  static constexpr KernelKind kAll[] = {
      KernelKind::kCsrCStationaryRowWarp,  KernelKind::kCsrCStationaryRowThread,
      KernelKind::kDcsrCStationary,        KernelKind::kTiledCsrBStationary,
      KernelKind::kTiledDcsrBStationary,   KernelKind::kTiledDcsrOnline,
      KernelKind::kAStationary,            KernelKind::kMergeCStationary,
      KernelKind::kHongHybrid,
  };
  for (KernelKind k : kAll) {
    if (name == kernel_name(k)) return k;
  }
  fail(id, "unknown kernel '" + name + "' (expected 'auto' or a kernel name)");
}

i64 get_integer(const obs::JsonValue& v, const std::string& key, const std::string& id) {
  if (v.number != std::floor(v.number) || std::abs(v.number) > 1e15) {
    fail(id, "field '" + key + "' must be an integer");
  }
  return static_cast<i64>(v.number);
}

}  // namespace

Request parse_request(std::string_view line, u64 line_no) {
  const std::string fallback_id = "line-" + std::to_string(line_no);
  obs::JsonValue root;
  std::string err;
  if (!obs::json_parse(line, root, &err)) {
    fail(fallback_id, "malformed JSON (" + err + ")");
  }
  if (root.kind != obs::JsonValue::Kind::kObject) {
    fail(fallback_id, "request must be a JSON object");
  }

  Request req;
  req.id = fallback_id;
  if (const auto* v = find_typed(root, "id", obs::JsonValue::Kind::kString, "string",
                                 fallback_id)) {
    if (v->str.empty() || v->str.size() > kMaxIdBytes) {
      fail(fallback_id, "field 'id' must be 1.." + std::to_string(kMaxIdBytes) +
                            " bytes");
    }
    req.id = v->str;
  }
  // Everything after this point names the request by its real id.
  static const char* kKnown[] = {"id",        "tenant",    "matrix", "k",
                                 "b_seed",    "kernel",    "precision",
                                 "deadline_ms", "return_c"};
  for (const auto& [key, _] : root.object) {
    bool known = false;
    for (const char* k : kKnown) known = known || key == k;
    if (!known) fail(req.id, "unknown field '" + key + "'");
  }
  if (const auto* v = find_typed(root, "tenant", obs::JsonValue::Kind::kString,
                                 "string", req.id)) {
    if (v->str.empty() || v->str.size() > kMaxTenantBytes) {
      fail(req.id, "field 'tenant' must be 1.." + std::to_string(kMaxTenantBytes) +
                       " bytes");
    }
    req.tenant = v->str;
  }
  const auto* matrix = find_typed(root, "matrix", obs::JsonValue::Kind::kString,
                                  "string", req.id);
  if (matrix == nullptr) fail(req.id, "missing required field 'matrix'");
  if (matrix->str.empty() || matrix->str.size() > kMaxMatrixSpecBytes) {
    fail(req.id, "field 'matrix' must be 1.." + std::to_string(kMaxMatrixSpecBytes) +
                     " bytes");
  }
  req.matrix = matrix->str;
  if (const auto* v =
          find_typed(root, "k", obs::JsonValue::Kind::kNumber, "number", req.id)) {
    const i64 k = get_integer(*v, "k", req.id);
    if (k < 1 || k > kMaxRequestK) {
      fail(req.id, "field 'k' must be in [1, " + std::to_string(kMaxRequestK) + "]");
    }
    req.k = static_cast<index_t>(k);
  }
  if (const auto* v = find_typed(root, "b_seed", obs::JsonValue::Kind::kNumber,
                                 "number", req.id)) {
    const i64 seed = get_integer(*v, "b_seed", req.id);
    if (seed < 0) fail(req.id, "field 'b_seed' must be >= 0");
    req.b_seed = static_cast<u64>(seed);
  }
  if (const auto* v = find_typed(root, "kernel", obs::JsonValue::Kind::kString,
                                 "string", req.id)) {
    req.kernel = parse_kernel_field(v->str, req.id);
  }
  if (const auto* v = find_typed(root, "precision", obs::JsonValue::Kind::kString,
                                 "string", req.id)) {
    try {
      req.precision = parse_precision(v->str);
    } catch (const Error& e) {
      fail(req.id, e.what());
    }
  }
  if (const auto* v = find_typed(root, "deadline_ms", obs::JsonValue::Kind::kNumber,
                                 "number", req.id)) {
    if (!(v->number >= 0.0) || v->number > 1e12) {
      fail(req.id, "field 'deadline_ms' must be a finite value >= 0");
    }
    req.deadline_ms = v->number;
  }
  if (const auto* v = find_typed(root, "return_c", obs::JsonValue::Kind::kBool,
                                 "boolean", req.id)) {
    req.return_c = v->boolean;
  }
  return req;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json_line(const Response& r) {
  std::ostringstream os;
  os << "{\"id\":\"" << json_escape(r.id) << "\",\"tenant\":\""
     << json_escape(r.tenant) << "\",\"status\":\"" << (r.ok ? "ok" : "error")
     << "\"";
  if (r.ok) {
    os << ",\"kernel\":\"" << json_escape(r.kernel) << "\",\"precision\":\""
       << json_escape(r.precision) << "\",\"rows\":" << r.rows << ",\"k\":" << r.k
       << ",\"c_crc32\":" << r.c_crc32
       << ",\"used_fallback\":" << (r.used_fallback ? "true" : "false")
       << ",\"coalesced\":" << r.coalesced << ",\"queue_ms\":" << r.queue_ms
       << ",\"exec_ms\":" << r.exec_ms;
    if (!r.c_hex.empty()) os << ",\"c_hex\":\"" << r.c_hex << "\"";
  } else {
    os << ",\"error_type\":\"" << json_escape(r.error_type) << "\",\"message\":\""
       << json_escape(r.message) << "\"";
    if (r.retry_after_ms >= 0) os << ",\"retry_after_ms\":" << r.retry_after_ms;
  }
  os << "}";
  return os.str();
}

Response error_response(std::string id, std::string tenant, const std::exception& e) {
  Response resp;
  resp.id = std::move(id);
  resp.tenant = std::move(tenant);
  resp.ok = false;
  const std::string described = describe_exception(e);
  const auto sep = described.find(": ");
  resp.error_type = described.substr(0, sep);
  resp.message = sep == std::string::npos ? described : described.substr(sep + 2);
  if (const auto* overload = dynamic_cast<const OverloadError*>(&e)) {
    resp.retry_after_ms = overload->retry_after_ms();
  }
  return resp;
}

Response error_response(const Request& req, const std::exception& e) {
  return error_response(req.id, req.tenant, e);
}

std::string hex_encode(const void* data, usize bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  const auto* p = static_cast<const u8*>(data);
  std::string out;
  out.reserve(bytes * 2);
  for (usize i = 0; i < bytes; ++i) {
    out.push_back(kDigits[p[i] >> 4]);
    out.push_back(kDigits[p[i] & 0xf]);
  }
  return out;
}

std::vector<u8> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) throw ParseError("hex string has odd length");
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw ParseError(std::string("invalid hex digit '") + c + "'");
  };
  std::vector<u8> out(hex.size() / 2);
  for (usize i = 0; i < out.size(); ++i) {
    out[i] = static_cast<u8>((nibble(hex[2 * i]) << 4) | nibble(hex[2 * i + 1]));
  }
  return out;
}

std::span<const u8> result_bits(const SpmmResult& r) {
  if (r.precision == Precision::kF64) {
    const auto d = r.C64.data();
    return {reinterpret_cast<const u8*>(d.data()), d.size() * sizeof(double)};
  }
  const auto d = r.C.data();
  return {reinterpret_cast<const u8*>(d.data()), d.size() * sizeof(float)};
}

}  // namespace nmdt::service
