// SpMM-as-a-service: the long-lived request server behind
// examples/nmdt_serve.
//
// Architecture (the scheduler/worker split of the async-SGD exemplar,
// PAPERS.md): a submit edge that either admits a request into a
// bounded queue or sheds it with a typed OverloadError (admission.hpp:
// queue bound + per-tenant token buckets), a pool of worker threads
// that pop tickets, and a shared concurrency-hardened PlanCache so a
// stream of requests against the same matrix pays the expensive
// plan/convert step once — the paper's amortization argument turned
// into a resident service tier.
//
// Request coalescing: a worker that pops a ticket also claims every
// queued ticket with the same (matrix, kernel, precision) coalescing
// key (up to coalesce_max / coalesce_max_k), concatenates their B
// panels column-wise, and runs ONE kernel execution against the one
// resident plan, then splits C back per request.  Each column of
// C = A·B depends only on its own column of B, accumulated in A's
// non-zero order, so every coalesced request's result stays
// bit-identical to a solo run (pinned by the service tests).  If the
// batched execution fails (one member's deadline expired mid-run, a
// fault surfaced), the group degrades gracefully: each member re-runs
// individually under its own CancelToken so one victim cannot take its
// neighbours down.
//
// Per-request deadlines: every admitted ticket carries a CancelToken
// child of the server token with its deadline armed at admission; the
// kernels poll it cooperatively, so an expired request unwinds as a
// typed TimeoutError *response* — never a stuck worker, never a dead
// process.
//
// Shutdown state machine: kRunning → (begin_shutdown) → kDraining —
// submit() sheds new requests with OverloadError("shutting down",
// retry_after_ms = -1) while workers drain every already-admitted
// ticket — → (drain joins the workers) → kStopped.  The invariant the
// chaos suite pins: every admitted request gets exactly one response,
// shed requests get exactly one OverloadError response, and the
// process exits only after the queue is empty.
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <thread>

#include "core/executor.hpp"
#include "core/plan.hpp"
#include "proc/supervisor.hpp"
#include "service/admission.hpp"
#include "service/protocol.hpp"

namespace nmdt::service {

struct ServerOptions {
  int workers = 2;
  usize queue_capacity = 64;
  /// Per-tenant token-bucket refill rate (requests/second); <= 0
  /// disables quotas.
  double tenant_rate = 0.0;
  double tenant_burst = 8.0;
  /// Deadline applied to requests that do not carry their own; <= 0
  /// means no default deadline.
  double default_deadline_ms = 0.0;
  i64 plan_cache_bytes = PlanCache::kDefaultByteBudget;
  /// PlanCache TTL (0 disables) — bounds how long a daemon serves a
  /// plan whose backing matrix file may have changed on disk.
  double plan_ttl_ms = 0.0;
  /// Coalescing bounds: max requests per batch and max combined B
  /// columns.  coalesce_max <= 1 disables coalescing.
  int coalesce_max = 4;
  index_t coalesce_max_k = 256;
  /// Intra-kernel shard threads per execution (SpmmConfig::jobs).
  int jobs = 1;
  /// Loaded/generated matrices kept resident, keyed by spec string.
  usize matrix_cache_entries = 16;
  /// Degrade unrecovered conversion faults to the reference CSR kernel
  /// (typed FaultError response when false).
  bool fault_fallback = true;
  /// Seed for the admission queue's service-time EWMA in ms (> 0): the
  /// retry_after_ms hint on queue-full sheds before any real batch has
  /// completed.  Tune to the expected request cost so cold-start hints
  /// are honest.
  double queue_hint_ms = 10.0;
  /// Execute kernels in N supervised worker *processes* instead of the
  /// worker threads (opt-in crash isolation, src/proc): a SIGSEGV /
  /// OOM-kill / wedge takes down one request's worker, which is
  /// respawned and the work retried; a poison request is quarantined as
  /// a typed WorkerError response instead of killing the daemon.
  /// 0 = classic in-process execution.  Forces coalesce_max = 1 (each
  /// ticket is one supervised task).
  int isolate_workers = 0;
  /// RLIMIT_AS per isolated worker in MiB (0 = unlimited).
  i64 worker_mem_mb = 0;
};

struct ServerStats {
  u64 submitted = 0;
  u64 accepted = 0;
  u64 shed_queue_full = 0;
  u64 shed_over_quota = 0;
  u64 shed_shutdown = 0;
  u64 completed_ok = 0;
  u64 completed_error = 0;
  u64 coalesced_batches = 0;   ///< batches serving more than one request
  u64 coalesced_requests = 0;  ///< requests served inside such batches
};

/// Responses are delivered through this sink, possibly from several
/// worker threads concurrently — the sink serializes (nmdt_serve wraps
/// stdout in a mutex).
using ResponseSink = std::function<void(const Response&)>;

/// Resolve a request's matrix spec: "gen:<kind>:<rows>x<cols>:<density>
/// :<seed>" (kinds: uniform, powerlaw_rows, powerlaw_cols), a .mtx
/// path, or a .bin path.  Throws ParseError on malformed specs — the
/// same function the tests use to build the batch-mode reference side.
Csr load_matrix_spec(const std::string& spec);

class SpmmServer {
 public:
  SpmmServer(ServerOptions opts, ResponseSink sink);
  ~SpmmServer();  ///< begin_shutdown() + drain() if still running

  SpmmServer(const SpmmServer&) = delete;
  SpmmServer& operator=(const SpmmServer&) = delete;

  /// Launch the worker pool.  Tickets submitted before start() queue up
  /// and are served once workers exist (tests use this to stage
  /// deterministic coalescing batches).
  void start();

  /// Admission edge.  Every call produces exactly one response through
  /// the sink, now (shed: OverloadError with retry_after_ms; parse-time
  /// deadline of 0 is still admitted and times out in the worker) or
  /// later (worker).  Returns true when the request was admitted.
  bool submit(Request req);

  /// Reject new submissions from now on; already-admitted tickets keep
  /// draining.  Idempotent.  Safe to call from any thread (but not from
  /// a signal handler — signal handlers should request() a copy of
  /// cancel_token() or set a flag the main loop acts on).
  void begin_shutdown();

  /// Block until every admitted ticket has been served and the workers
  /// have exited.  Implies begin_shutdown().
  void drain();

  /// Cancel in-flight work (kUser): pending and running tickets unwind
  /// cooperatively and respond CancelledError.  For the "second SIGTERM
  /// means now" escalation path.
  void cancel_all();

  /// Copyable server-wide token; every per-request token chains to it.
  CancelToken cancel_token() const { return cancel_; }

  ServerStats stats() const;
  PlanCacheStats plan_cache_stats() const { return plan_cache_.stats(); }
  usize queue_depth() const { return queue_.depth(); }

 private:
  enum class State : int { kRunning = 0, kDraining, kStopped };

  void worker_loop();
  void process_group(std::vector<Ticket> group);
  /// Serve one ticket alone under its own token (the non-coalesced and
  /// the degraded-group path).  Always emits exactly one response.
  void process_single(Ticket& t, const std::shared_ptr<const SpmmPlan>& plan,
                      const Csr& A, int coalesced_with);
  /// Serve one ticket in a supervised worker process (isolate_workers
  /// mode).  Always emits exactly one response; worker crashes surface
  /// as typed WorkerError responses after the retry budget.
  void process_isolated(Ticket& t);
  std::shared_ptr<const Csr> matrix_for(const std::string& spec);
  void finish_ok(const Response& resp);
  void finish_error(const Ticket& t, const std::exception& e, int coalesced_with);
  void respond(const Response& r);
  SpmmConfig exec_config(index_t rows, index_t k, Precision precision) const;

  ServerOptions opts_;
  ResponseSink sink_;
  std::mutex sink_mu_;
  CancelToken cancel_;
  AdmissionQueue queue_;
  TenantQuotas quotas_;
  PlanCache plan_cache_;
  std::atomic<int> state_{static_cast<int>(State::kRunning)};
  std::vector<std::thread> workers_;
  /// Non-null in isolate_workers mode; created in start() before the
  /// worker threads exist (fork-before-threads, proc/supervisor.hpp).
  std::unique_ptr<proc::Supervisor> supervisor_;

  // Small LRU of resolved matrices keyed by spec string.
  std::mutex matrix_mu_;
  std::list<std::pair<std::string, std::shared_ptr<const Csr>>> matrix_lru_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace nmdt::service
