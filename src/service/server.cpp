#include "service/server.hpp"

#include <algorithm>
#include <charconv>

#include "formats/matrix_market.hpp"
#include "formats/serialize.hpp"
#include "matgen/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proc/frame.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nmdt::service {

namespace {

using Clock = std::chrono::steady_clock;

constexpr index_t kMaxGenDim = index_t{1} << 20;

/// Split "a:b:c" on ':'; no empty-segment collapsing.
std::vector<std::string> split_colon(const std::string& s) {
  std::vector<std::string> out;
  usize start = 0;
  for (usize i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ':') {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

i64 parse_i64_field(const std::string& s, const char* what) {
  i64 v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) {
    throw ParseError(std::string("matrix spec: malformed ") + what + " '" + s + "'");
  }
  return v;
}

double parse_double_field(const std::string& s, const char* what) {
  try {
    usize consumed = 0;
    const double v = std::stod(s, &consumed);
    if (consumed != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw ParseError(std::string("matrix spec: malformed ") + what + " '" + s + "'");
  }
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The B operand of one request, generated exactly the way
/// `nmdt_cli run` generates it: Rng(b_seed) filling an (A.cols × k)
/// matrix — the bit-identity contract between service and batch mode.
DenseMatrix request_b(const Csr& A, const Request& req) {
  Rng rng(req.b_seed);
  DenseMatrix B(A.cols, req.k);
  B.randomize(rng);
  return B;
}

/// Effective per-request deadline in ms (0 = none).
double effective_deadline_ms(const Request& req, const ServerOptions& opts) {
  return req.deadline_ms > 0.0 ? req.deadline_ms : opts.default_deadline_ms;
}

/// The one task kind on the service supervisor pipe: execute a request.
constexpr u8 kTaskExec = 1;

/// Worker-process handler for isolate_workers mode.  Runs in the child:
/// resolves the matrix and plan through *child-local* caches (the
/// parent's PlanCache / matrix LRU are never touched across the fork —
/// their mutexes and shared_ptr control blocks stay parent-owned), then
/// executes exactly the expressions process_single uses, so responses
/// are bit-identical to in-process serving.
proc::TaskHandler make_exec_handler(ServerOptions opts) {
  struct ChildState {
    PlanCache plans;
    std::list<std::pair<std::string, std::shared_ptr<const Csr>>> matrices;
    ChildState(i64 bytes, double ttl) : plans(bytes, ttl) {}
  };
  auto state = std::make_shared<ChildState>(opts.plan_cache_bytes, opts.plan_ttl_ms);
  return [opts = std::move(opts), state](u8 kind, u64 /*key*/,
                                         const std::string& payload) -> std::string {
    if (kind != kTaskExec) {
      throw ParseError("service worker: unknown task kind " + std::to_string(int{kind}));
    }
    proc::WireReader r(payload);
    const std::string matrix = r.get_str("exec matrix spec");
    const auto k = static_cast<index_t>(r.get_u64("exec k"));
    const u64 b_seed = r.get_u64("exec b_seed");
    const i64 kernel_id = r.get_i64("exec kernel");
    const auto precision = static_cast<Precision>(r.get_u8("exec precision"));
    const bool return_c = r.get_u8("exec return_c") != 0;
    const double deadline_ms = r.get_f64("exec deadline");
    r.expect_done("exec task");

    // Child-local matrix LRU, same policy as SpmmServer::matrix_for.
    std::shared_ptr<const Csr> A;
    for (auto it = state->matrices.begin(); it != state->matrices.end(); ++it) {
      if (it->first == matrix) {
        state->matrices.splice(state->matrices.begin(), state->matrices, it);
        A = state->matrices.front().second;
        break;
      }
    }
    if (!A) {
      A = std::make_shared<const Csr>(load_matrix_spec(matrix));
      state->matrices.emplace_front(matrix, A);
      while (state->matrices.size() > opts.matrix_cache_entries) {
        state->matrices.pop_back();
      }
    }
    const auto plan = state->plans.get_or_build(
        *A, PlanOptions{TilingSpec{64, 64}, default_ssf_threshold(), 1.0, precision});

    // The remaining deadline travels with the task; the kernels poll it
    // in the child exactly where they poll in-process.
    const CancelToken token;
    if (deadline_ms > 0.0) {
      token.set_deadline(CancelToken::Clock::now() +
                             std::chrono::duration_cast<CancelToken::Clock::duration>(
                                 std::chrono::duration<double, std::milli>(deadline_ms)),
                         CancelReason::kDeadline);
    }
    CancelScope scope(token);
    token.poll();
    const KernelKind kind_run =
        kernel_id >= 0 ? static_cast<KernelKind>(kernel_id) : plan->kernel();
    Rng rng(b_seed);
    DenseMatrix B(A->cols, k);
    B.randomize(rng);
    SpmmConfig cfg = evaluation_config(A->rows, k);
    cfg.jobs = opts.jobs;
    cfg.precision = precision;
    cfg.fault_fallback = opts.fault_fallback;
    const auto exec_start = Clock::now();
    const SpmmResult result = SpmmExecutor(cfg).execute(kind_run, *plan, B);
    const double exec_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - exec_start).count();

    const auto bits = result_bits(result);
    proc::WireWriter w;
    w.put_u8(result.used_fallback ? 1 : 0);
    w.put_str(kernel_name(kind_run));
    w.put_i64(static_cast<i64>(A->rows));
    w.put_u32(crc32(bits.data(), bits.size()));
    w.put_f64(exec_ms);
    w.put_str(return_c
                  ? std::string(reinterpret_cast<const char*>(bits.data()), bits.size())
                  : std::string());
    return w.out;
  };
}

}  // namespace

Csr load_matrix_spec(const std::string& spec) {
  if (spec.rfind("gen:", 0) == 0) {
    const auto parts = split_colon(spec);
    if (parts.size() != 5) {
      throw ParseError("matrix spec '" + spec +
                       "': expected gen:<kind>:<rows>x<cols>:<density>:<seed>");
    }
    const std::string& kind = parts[1];
    const auto x = parts[2].find('x');
    if (x == std::string::npos) {
      throw ParseError("matrix spec: malformed dimensions '" + parts[2] + "'");
    }
    const i64 rows = parse_i64_field(parts[2].substr(0, x), "rows");
    const i64 cols = parse_i64_field(parts[2].substr(x + 1), "cols");
    if (rows < 1 || cols < 1 || rows > kMaxGenDim || cols > kMaxGenDim) {
      throw ParseError("matrix spec: dimensions must be in [1, " +
                       std::to_string(kMaxGenDim) + "]");
    }
    const double density = parse_double_field(parts[3], "density");
    if (!(density >= 0.0 && density <= 1.0)) {
      throw ParseError("matrix spec: density must be in [0, 1]");
    }
    const u64 seed = static_cast<u64>(parse_i64_field(parts[4], "seed"));
    const auto r = static_cast<index_t>(rows);
    const auto c = static_cast<index_t>(cols);
    if (kind == "uniform") return gen_uniform(r, c, density, seed);
    if (kind == "powerlaw_rows") return gen_powerlaw_rows(r, c, density, 1.2, seed);
    if (kind == "powerlaw_cols") return gen_powerlaw_cols(r, c, density, 1.2, seed);
    throw ParseError("matrix spec: unknown generator '" + kind +
                     "' (expected uniform | powerlaw_rows | powerlaw_cols)");
  }
  if (ends_with(spec, ".bin")) return load_csr_file(spec);
  if (ends_with(spec, ".mtx")) return csr_from_coo(read_matrix_market_file(spec));
  throw ParseError("matrix spec '" + spec +
                   "' is neither gen:<...> nor a .mtx/.bin path");
}

SpmmServer::SpmmServer(ServerOptions opts, ResponseSink sink)
    : opts_(opts),
      sink_(std::move(sink)),
      queue_(opts.queue_capacity, opts.queue_hint_ms),
      quotas_(opts.tenant_rate, opts.tenant_burst),
      plan_cache_(opts.plan_cache_bytes, opts.plan_ttl_ms) {
  NMDT_CHECK_CONFIG(opts_.workers >= 1, "server needs at least one worker");
  NMDT_CHECK_CONFIG(opts_.jobs >= 0, "server jobs must be >= 0");
  NMDT_CHECK_CONFIG(opts_.matrix_cache_entries >= 1,
                    "matrix cache needs at least one entry");
  NMDT_CHECK_CONFIG(sink_ != nullptr, "server needs a response sink");
  // One supervised task per ticket: coalescing would batch tickets into
  // a shared child execution, coupling their failure domains — exactly
  // what isolation exists to prevent.
  if (opts_.isolate_workers > 0) opts_.coalesce_max = 1;
}

SpmmServer::~SpmmServer() { drain(); }

void SpmmServer::start() {
  // Fork the supervised fleet BEFORE spawning worker threads: fork()
  // from a single-threaded process is the only fork whose child memory
  // image is guaranteed lock-free (proc/supervisor.hpp fork-safety
  // notes).
  if (opts_.isolate_workers > 0 && !supervisor_) {
    proc::ProcOptions popts;
    popts.workers = opts_.isolate_workers;
    popts.worker_mem_mb = opts_.worker_mem_mb;
    supervisor_ = std::make_unique<proc::Supervisor>(popts, make_exec_handler(opts_));
  }
  workers_.reserve(static_cast<usize>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void SpmmServer::respond(const Response& r) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_(r);
}

bool SpmmServer::submit(Request req) {
  static obs::Counter& submitted = obs::MetricsRegistry::global().counter("service.submitted");
  static obs::Counter& accepted = obs::MetricsRegistry::global().counter("service.accepted");
  static obs::Counter& shed = obs::MetricsRegistry::global().counter("service.shed");
  submitted.add(1);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }
  const auto now = Clock::now();
  Ticket t;
  t.req = std::move(req);
  const auto shed_with = [&](const OverloadError& e, u64 ServerStats::*slot) {
    shed.add(1);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++(stats_.*slot);
    }
    respond(error_response(t.req, e));
  };
  if (static_cast<State>(state_.load(std::memory_order_acquire)) != State::kRunning) {
    shed_with(OverloadError("server is shutting down; request rejected",
                            /*retry_after_ms=*/-1),
              &ServerStats::shed_shutdown);
    return false;
  }
  i64 retry_ms = 0;
  if (!quotas_.try_admit(t.req.tenant, now, &retry_ms)) {
    shed_with(OverloadError("tenant '" + t.req.tenant + "' is over its request quota",
                            retry_ms),
              &ServerStats::shed_over_quota);
    return false;
  }
  t.admitted_at = now;
  t.cancel = CancelToken::child_of(cancel_);
  const double deadline_ms = effective_deadline_ms(t.req, opts_);
  if (deadline_ms > 0.0) {
    const auto at = now + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double, std::milli>(deadline_ms));
    t.cancel.set_deadline(at, CancelReason::kDeadline);
    t.deadline = at;
  }
  if (!queue_.try_push(std::move(t), &retry_ms)) {
    // try_push only moves the ticket on success, so t.req is intact on
    // the shed path.
    shed_with(OverloadError("admission queue is full", retry_ms),
              &ServerStats::shed_queue_full);
    return false;
  }
  accepted.add(1);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
  }
  obs::MetricsRegistry::global().gauge("service.queue_depth").set(
      static_cast<double>(queue_.depth()));
  return true;
}

void SpmmServer::begin_shutdown() {
  int expected = static_cast<int>(State::kRunning);
  state_.compare_exchange_strong(expected, static_cast<int>(State::kDraining),
                                 std::memory_order_acq_rel);
  queue_.close();
}

void SpmmServer::drain() {
  begin_shutdown();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Workers are gone, so no call() is in flight; the supervised fleet
  // can exit.  (Order matters: shutting the supervisor down first would
  // strand draining tickets as WorkerError.)
  if (supervisor_) supervisor_->shutdown();
  state_.store(static_cast<int>(State::kStopped), std::memory_order_release);
}

void SpmmServer::cancel_all() { cancel_.request(CancelReason::kUser); }

ServerStats SpmmServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::shared_ptr<const Csr> SpmmServer::matrix_for(const std::string& spec) {
  {
    std::lock_guard<std::mutex> lock(matrix_mu_);
    for (auto it = matrix_lru_.begin(); it != matrix_lru_.end(); ++it) {
      if (it->first == spec) {
        matrix_lru_.splice(matrix_lru_.begin(), matrix_lru_, it);
        return matrix_lru_.front().second;
      }
    }
  }
  // Load outside the lock; a racing duplicate load is wasted work, not
  // a correctness problem (the LRU adopts whichever lands last).
  auto loaded = std::make_shared<const Csr>(load_matrix_spec(spec));
  std::lock_guard<std::mutex> lock(matrix_mu_);
  matrix_lru_.emplace_front(spec, loaded);
  while (matrix_lru_.size() > opts_.matrix_cache_entries) matrix_lru_.pop_back();
  return loaded;
}

SpmmConfig SpmmServer::exec_config(index_t rows, index_t k, Precision precision) const {
  SpmmConfig cfg = evaluation_config(rows, k);
  cfg.jobs = opts_.jobs;
  cfg.precision = precision;
  cfg.fault_fallback = opts_.fault_fallback;
  return cfg;
}

void SpmmServer::worker_loop() {
  while (auto first = queue_.pop()) {
    std::vector<Ticket> group;
    group.push_back(std::move(*first));
    if (opts_.coalesce_max > 1) {
      const Request& head = group.front().req;
      index_t k_budget = opts_.coalesce_max_k > head.k
                             ? opts_.coalesce_max_k - head.k
                             : 0;
      auto more = queue_.pop_matching(
          [&](const Ticket& t) {
            if (t.req.matrix != head.matrix || t.req.precision != head.precision ||
                t.req.kernel != head.kernel || t.req.k > k_budget) {
              return false;
            }
            k_budget -= t.req.k;
            return true;
          },
          static_cast<usize>(opts_.coalesce_max - 1));
      for (auto& t : more) group.push_back(std::move(t));
    }
    obs::MetricsRegistry::global().gauge("service.queue_depth").set(
        static_cast<double>(queue_.depth()));
    const auto batch_start = Clock::now();
    try {
      process_group(std::move(group));
    } catch (...) {
      // process_group answers every ticket itself; anything escaping is
      // a server bug, but a worker must never die silently mid-drain —
      // swallow and keep serving (the response-per-ticket invariant is
      // preserved by the per-ticket handlers below).
    }
    queue_.note_service_ms(
        std::chrono::duration<double, std::milli>(Clock::now() - batch_start).count());
  }
}

void SpmmServer::process_group(std::vector<Ticket> group) {
  static obs::Counter& coalesced_batches =
      obs::MetricsRegistry::global().counter("service.coalesced_batches");
  obs::TraceSpan span("service.batch");
  span.arg("size", static_cast<i64>(group.size()));

  if (supervisor_) {
    // Isolated mode (coalesce_max forced to 1, so groups are singleton;
    // the loop is belt-and-braces): each ticket is one supervised task.
    for (auto& t : group) process_isolated(t);
    return;
  }

  const Request& head = group.front().req;
  std::shared_ptr<const Csr> A;
  std::shared_ptr<const SpmmPlan> plan;
  try {
    A = matrix_for(head.matrix);
    plan = plan_cache_.get_or_build(
        *A, PlanOptions{TilingSpec{64, 64}, default_ssf_threshold(), 1.0,
                        head.precision});
  } catch (const std::exception& e) {
    // Matrix resolution / planning failed: same typed failure for every
    // member (they share the coalescing key, hence the matrix).
    for (auto& t : group) finish_error(t, e, static_cast<int>(group.size()));
    return;
  }

  if (group.size() > 1) {
    coalesced_batches.add(1);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.coalesced_batches;
    stats_.coalesced_requests += group.size();
  }

  if (group.size() == 1) {
    process_single(group.front(), plan, *A, 1);
    return;
  }

  // Batched path: drop members already past their deadline (each gets
  // its TimeoutError response), then run the survivors as one kernel
  // call on the column-concatenated B.
  std::vector<Ticket*> live;
  for (auto& t : group) {
    try {
      t.cancel.poll();
      live.push_back(&t);
    } catch (const std::exception& e) {
      finish_error(t, e, static_cast<int>(group.size()));
    }
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    process_single(*live.front(), plan, *A, static_cast<int>(group.size()));
    return;
  }

  index_t total_k = 0;
  for (const Ticket* t : live) total_k += t->req.k;
  DenseMatrix B(A->cols, total_k);
  {
    index_t off = 0;
    for (const Ticket* t : live) {
      const DenseMatrix member_b = request_b(*A, t->req);
      for (index_t r = 0; r < member_b.rows(); ++r) {
        const auto src = member_b.row(r);
        std::copy(src.begin(), src.end(), B.row(r).begin() + off);
      }
      off += t->req.k;
    }
  }

  // One token guards the whole batch: child of the server token, armed
  // with the earliest member deadline.  If it fires (or anything else
  // throws), the batch degrades to per-member solo runs below — one
  // expiring member must not consume its neighbours' results.
  CancelToken batch_token = CancelToken::child_of(cancel_);
  {
    std::optional<Clock::time_point> earliest;
    for (const Ticket* t : live) {
      if (t->deadline && (!earliest || *t->deadline < *earliest)) {
        earliest = t->deadline;
      }
    }
    if (earliest) batch_token.set_deadline(*earliest, CancelReason::kDeadline);
  }
  const KernelKind kind = head.kernel.value_or(plan->kernel());
  const auto exec_start = Clock::now();
  std::optional<SpmmResult> batched;
  try {
    CancelScope scope(batch_token);
    batch_token.poll();
    batched = SpmmExecutor(exec_config(A->rows, total_k, head.precision))
                  .execute(kind, *plan, B);
  } catch (const std::exception&) {
    batched.reset();
  }
  if (!batched) {
    // Graceful degradation: the batch failed as a unit (deadline, fault,
    // cancellation); each member re-runs alone under its own token so
    // per-member outcomes are typed individually.
    for (Ticket* t : live) process_single(*t, plan, *A, static_cast<int>(group.size()));
    return;
  }
  const double exec_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - exec_start).count();

  // Split C back per member.  Each member's bits are exactly what a
  // solo run of its request would have produced (per-column accumulation
  // order depends only on A).
  index_t off = 0;
  for (Ticket* t : live) {
    Response resp;
    resp.id = t->req.id;
    resp.tenant = t->req.tenant;
    resp.ok = true;
    resp.kernel = kernel_name(kind);
    resp.precision = precision_name(t->req.precision);
    resp.rows = A->rows;
    resp.k = t->req.k;
    resp.coalesced = static_cast<int>(group.size());
    resp.used_fallback = batched->used_fallback;
    resp.queue_ms = std::chrono::duration<double, std::milli>(exec_start -
                                                              t->admitted_at)
                        .count();
    resp.exec_ms = exec_ms;
    if (t->req.precision == Precision::kF64) {
      DenseMatrixT<double> slice(A->rows, t->req.k);
      for (index_t r = 0; r < A->rows; ++r) {
        const auto src = batched->C64.row(r);
        std::copy(src.begin() + off, src.begin() + off + t->req.k,
                  slice.row(r).begin());
      }
      const auto d = slice.data();
      resp.c_crc32 = crc32(d.data(), d.size() * sizeof(double));
      if (t->req.return_c) resp.c_hex = hex_encode(d.data(), d.size() * sizeof(double));
    } else {
      DenseMatrix slice(A->rows, t->req.k);
      for (index_t r = 0; r < A->rows; ++r) {
        const auto src = batched->C.row(r);
        std::copy(src.begin() + off, src.begin() + off + t->req.k,
                  slice.row(r).begin());
      }
      const auto d = slice.data();
      resp.c_crc32 = crc32(d.data(), d.size() * sizeof(float));
      if (t->req.return_c) resp.c_hex = hex_encode(d.data(), d.size() * sizeof(float));
    }
    off += t->req.k;
    finish_ok(resp);
  }
}

void SpmmServer::process_single(Ticket& t, const std::shared_ptr<const SpmmPlan>& plan,
                                const Csr& A, int coalesced_with) {
  const auto exec_start = Clock::now();
  try {
    CancelScope scope(t.cancel);
    t.cancel.poll();
    const KernelKind kind = t.req.kernel.value_or(plan->kernel());
    const DenseMatrix B = request_b(A, t.req);
    const SpmmResult result =
        SpmmExecutor(exec_config(A.rows, t.req.k, t.req.precision))
            .execute(kind, *plan, B);
    Response resp;
    resp.id = t.req.id;
    resp.tenant = t.req.tenant;
    resp.ok = true;
    resp.kernel = kernel_name(kind);
    resp.precision = precision_name(t.req.precision);
    resp.rows = A.rows;
    resp.k = t.req.k;
    resp.coalesced = coalesced_with;
    resp.used_fallback = result.used_fallback;
    resp.queue_ms =
        std::chrono::duration<double, std::milli>(exec_start - t.admitted_at).count();
    resp.exec_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - exec_start).count();
    const auto bits = result_bits(result);
    resp.c_crc32 = crc32(bits.data(), bits.size());
    if (t.req.return_c) resp.c_hex = hex_encode(bits.data(), bits.size());
    finish_ok(resp);
  } catch (const std::exception& e) {
    finish_error(t, e, coalesced_with);
  }
}

void SpmmServer::process_isolated(Ticket& t) {
  const auto exec_start = Clock::now();
  try {
    // Admission-time failures (expired deadline, cancel_all) are typed
    // here in the parent; the child only ever sees live work.
    t.cancel.poll();
    double remaining_ms = 0.0;
    if (t.deadline) {
      remaining_ms =
          std::chrono::duration<double, std::milli>(*t.deadline - exec_start).count();
      if (remaining_ms <= 0.0) remaining_ms = 0.001;  // let the child's poll type it
    }
    proc::WireWriter w;
    w.put_str(t.req.matrix);
    w.put_u64(static_cast<u64>(t.req.k));
    w.put_u64(t.req.b_seed);
    w.put_i64(t.req.kernel ? static_cast<i64>(*t.req.kernel) : i64{-1});
    w.put_u8(static_cast<u8>(t.req.precision));
    w.put_u8(t.req.return_c ? 1 : 0);
    w.put_f64(remaining_ms);
    // The task key feeds worker_abort / worker_hang fault draws; derive
    // it from the request id so chaos plans target requests stably.
    const u64 key = crc32(t.req.id.data(), t.req.id.size());
    proc::TaskOutcome out = supervisor_->call(kTaskExec, key, std::move(w.out));
    if (!out.ok) {
      // Typed child failure (TimeoutError, FaultError, ParseError …) or
      // a WorkerError quarantine: rebuild the typed exception so the
      // response carries the same error_type / exit semantics as
      // in-process serving.
      std::rethrow_exception(exception_from_description(out.error));
    }
    proc::WireReader r(out.payload);
    Response resp;
    resp.id = t.req.id;
    resp.tenant = t.req.tenant;
    resp.ok = true;
    resp.used_fallback = r.get_u8("exec result fallback") != 0;
    resp.kernel = r.get_str("exec result kernel");
    resp.rows = static_cast<index_t>(r.get_i64("exec result rows"));
    resp.c_crc32 = r.get_u32("exec result crc");
    resp.exec_ms = r.get_f64("exec result time");
    const std::string c_bits = r.get_str("exec result bits");
    r.expect_done("exec result");
    resp.precision = precision_name(t.req.precision);
    resp.k = t.req.k;
    resp.coalesced = 1;
    resp.queue_ms =
        std::chrono::duration<double, std::milli>(exec_start - t.admitted_at).count();
    if (t.req.return_c) resp.c_hex = hex_encode(c_bits.data(), c_bits.size());
    finish_ok(resp);
  } catch (const std::exception& e) {
    finish_error(t, e, 1);
  }
}

void SpmmServer::finish_ok(const Response& resp) {
  static obs::Counter& completed =
      obs::MetricsRegistry::global().counter("service.completed");
  completed.add(1);
  obs::MetricsRegistry::global().histogram("service.queue_ms").observe(resp.queue_ms);
  obs::MetricsRegistry::global().histogram("service.exec_ms").observe(resp.exec_ms);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed_ok;
  }
  respond(resp);
}

void SpmmServer::finish_error(const Ticket& t, const std::exception& e,
                              int coalesced_with) {
  static obs::Counter& failed = obs::MetricsRegistry::global().counter("service.failed");
  failed.add(1);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed_error;
  }
  Response resp = error_response(t.req, e);
  resp.coalesced = coalesced_with;
  respond(resp);
}

}  // namespace nmdt::service
