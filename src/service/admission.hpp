// Admission control for the SpMM service: a bounded request queue with
// load shedding and per-tenant token-bucket quotas.
//
// The server never queues unboundedly — when the queue is full, or a
// tenant is over its rate, the request is *shed* at submit time with a
// typed OverloadError carrying a retry_after_ms hint, leaving the
// in-flight work untouched (fail fast at the edge, never fall over in
// the middle).  The hint is honest: for quota sheds it is the time
// until the bucket refills one token; for queue sheds it is the queue
// depth times an EWMA of recent batch service time.
//
// The queue drains even after close(): shutdown rejects *new* work but
// every accepted ticket is still served exactly once (the graceful
// drain half of the shutdown state machine, service/server.hpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "service/protocol.hpp"
#include "util/cancel.hpp"

namespace nmdt::service {

/// One admitted request plus its admission timestamp and the per-request
/// cancellation token (a child of the server token, deadline armed at
/// admission).
struct Ticket {
  Request req;
  std::chrono::steady_clock::time_point admitted_at{};
  CancelToken cancel;
  /// Absolute deadline armed on `cancel` (nullopt = none); a coalescing
  /// worker takes the min across a batch.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Classic token bucket: capacity `burst`, refilled at `rate_per_s`.
/// Time is a parameter (not an internal clock read) so tests drive it
/// deterministically.
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  TokenBucket(double rate_per_s, double burst, Clock::time_point now);

  /// Take one token if available; otherwise false with *retry_after_ms
  /// set to the time until the next token accrues.
  bool try_take(Clock::time_point now, i64* retry_after_ms);

  double tokens_at(Clock::time_point now) const;

 private:
  double rate_;
  double burst_;
  mutable double tokens_;
  mutable Clock::time_point last_;
};

/// Per-tenant quota map.  rate_per_s <= 0 disables quotas entirely
/// (every request admitted).  Buckets are created on first sight of a
/// tenant, all with the same rate/burst.
class TenantQuotas {
 public:
  TenantQuotas(double rate_per_s, double burst);

  /// Admit one request for `tenant` at `now`; false (+hint) when the
  /// tenant's bucket is empty.
  bool try_admit(const std::string& tenant, TokenBucket::Clock::time_point now,
                 i64* retry_after_ms);

  bool enabled() const { return rate_ > 0.0; }

 private:
  double rate_;
  double burst_;
  std::mutex mu_;
  std::map<std::string, TokenBucket> buckets_;
};

/// Bounded MPMC ticket queue.  try_push never blocks (full = shed);
/// pop blocks until a ticket, or returns nullopt once closed AND empty
/// (pending tickets are always drained first).
class AdmissionQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// `service_hint_ms` seeds the EWMA behind the queue-full retry hint:
  /// until real batches complete, retry_after_ms is depth × this value,
  /// so an operator who knows the workload (e.g. ~2 ms small-K requests
  /// vs ~200 ms planning-heavy ones) can make even the *first* shed
  /// hints honest instead of inheriting a one-size guess.
  explicit AdmissionQueue(usize capacity, double service_hint_ms = 10.0);

  /// Enqueue, or return false with *retry_after_ms = depth × EWMA
  /// service time (the honest "come back when the backlog has drained"
  /// hint; at least 1 ms so clients never busy-spin).
  bool try_push(Ticket&& t, i64* retry_after_ms);

  /// Blocking pop; nullopt once close() was called and the queue is
  /// empty.
  std::optional<Ticket> pop();

  /// Non-blocking: pop up to `max` more tickets satisfying `match`
  /// (scanning from the front, preserving order among matches) — the
  /// coalescing hook.  Non-matching tickets keep their positions.
  std::vector<Ticket> pop_matching(const std::function<bool(const Ticket&)>& match,
                                   usize max);

  /// Stop accepting (try_push sheds) and wake blocked poppers; already
  /// queued tickets still drain through pop().
  void close();
  bool closed() const;

  usize depth() const;

  /// Feed the EWMA behind the queue-full retry hint (call with each
  /// completed batch's service time).
  void note_service_ms(double ms);

  /// Current EWMA service-time estimate (the configured hint until the
  /// first note_service_ms sample arrives) — exposed for tests.
  double ewma_service_ms() const;

 private:
  const usize capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ticket> q_;
  bool closed_ = false;
  double ewma_service_ms_;  ///< seeded by the ctor hint, then EWMA-tracked
};

}  // namespace nmdt::service
