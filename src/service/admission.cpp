#include "service/admission.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nmdt::service {

TokenBucket::TokenBucket(double rate_per_s, double burst, Clock::time_point now)
    : rate_(rate_per_s), burst_(burst), tokens_(burst), last_(now) {
  NMDT_CHECK_CONFIG(rate_per_s > 0.0, "token bucket rate must be > 0");
  NMDT_CHECK_CONFIG(burst >= 1.0, "token bucket burst must be >= 1");
}

double TokenBucket::tokens_at(Clock::time_point now) const {
  const double elapsed_s =
      std::chrono::duration<double>(now - last_).count();
  if (elapsed_s > 0.0) {
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
    last_ = now;
  }
  return tokens_;
}

bool TokenBucket::try_take(Clock::time_point now, i64* retry_after_ms) {
  if (tokens_at(now) >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  if (retry_after_ms != nullptr) {
    const double deficit = 1.0 - tokens_;
    *retry_after_ms =
        std::max<i64>(1, static_cast<i64>(std::ceil(deficit / rate_ * 1000.0)));
  }
  return false;
}

TenantQuotas::TenantQuotas(double rate_per_s, double burst)
    : rate_(rate_per_s), burst_(burst) {}

bool TenantQuotas::try_admit(const std::string& tenant,
                             TokenBucket::Clock::time_point now,
                             i64* retry_after_ms) {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    it = buckets_.emplace(tenant, TokenBucket(rate_, burst_, now)).first;
  }
  return it->second.try_take(now, retry_after_ms);
}

AdmissionQueue::AdmissionQueue(usize capacity, double service_hint_ms)
    : capacity_(capacity), ewma_service_ms_(service_hint_ms) {
  NMDT_CHECK_CONFIG(capacity > 0, "admission queue capacity must be > 0");
  NMDT_CHECK_CONFIG(service_hint_ms > 0.0,
                    "admission queue service hint must be > 0 ms");
}

bool AdmissionQueue::try_push(Ticket&& t, i64* retry_after_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!closed_ && q_.size() < capacity_) {
      q_.push_back(std::move(t));
      cv_.notify_one();
      return true;
    }
    if (retry_after_ms != nullptr) {
      *retry_after_ms = std::max<i64>(
          1, static_cast<i64>(std::ceil(static_cast<double>(q_.size() + 1) *
                                        ewma_service_ms_)));
    }
  }
  return false;
}

std::optional<Ticket> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return std::nullopt;  // closed and drained
  Ticket t = std::move(q_.front());
  q_.pop_front();
  return t;
}

std::vector<Ticket> AdmissionQueue::pop_matching(
    const std::function<bool(const Ticket&)>& match, usize max) {
  std::vector<Ticket> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = q_.begin(); it != q_.end() && out.size() < max;) {
    if (match(*it)) {
      out.push_back(std::move(*it));
      it = q_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

usize AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

void AdmissionQueue::note_service_ms(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ewma_service_ms_ = 0.8 * ewma_service_ms_ + 0.2 * std::max(0.0, ms);
}

double AdmissionQueue::ewma_service_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_service_ms_;
}

}  // namespace nmdt::service
