#include "obs/profiler.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "obs/trace.hpp"
#include "util/simd.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#elif defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace nmdt::obs {

namespace {

// ---- host provenance -------------------------------------------------

std::string detect_cpu_model() {
#if defined(__linux__)
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    // x86 exposes "model name"; many arm kernels expose "Processor" or
    // only "CPU part" — take the first humane field that appears.
    for (const char* key : {"model name", "Processor", "Hardware"}) {
      const usize n = std::strlen(key);
      if (line.compare(0, n, key) == 0) {
        const usize colon = line.find(':');
        if (colon != std::string::npos) {
          usize start = colon + 1;
          while (start < line.size() && line[start] == ' ') ++start;
          if (start < line.size()) return line.substr(start);
        }
      }
    }
  }
#endif
  return "unknown";
}

std::string detect_compiler() {
  char buf[128];
#if defined(__clang__)
  std::snprintf(buf, sizeof(buf), "clang %d.%d.%d", __clang_major__, __clang_minor__,
                __clang_patchlevel__);
#elif defined(__GNUC__)
  std::snprintf(buf, sizeof(buf), "gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                __GNUC_PATCHLEVEL__);
#else
  std::snprintf(buf, sizeof(buf), "unknown");
#endif
  return buf;
}

std::string detect_build_type() {
#if defined(NMDT_BUILD_TYPE)
  return NMDT_BUILD_TYPE;
#elif defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

std::string detect_os() {
#if defined(__linux__)
  return "linux";
#elif defined(__APPLE__)
  return "darwin";
#elif defined(_WIN32)
  return "windows";
#else
  return "unknown";
#endif
}

// ---- backend resolution ----------------------------------------------

enum class EnvPolicy { kOff, kFallback, kAuto };

EnvPolicy env_policy() {
  const char* env = std::getenv("NMDT_PERF_EVENTS");
  if (env == nullptr) return EnvPolicy::kAuto;
  const std::string v(env);
  if (v == "off" || v == "0" || v == "none") return EnvPolicy::kOff;
  if (v == "fallback" || v == "rusage") return EnvPolicy::kFallback;
  return EnvPolicy::kAuto;  // "auto", "on", anything else: probe
}

#if defined(__linux__)

long perf_open(u32 type, u64 config) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // count user-space work; no privilege needed
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, any CPU.
  return syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0);
}

/// Multiplexing-scaled total of one counter fd; -1 on any failure.
i64 perf_read_scaled(long fd) {
  if (fd < 0) return -1;
  struct {
    u64 value;
    u64 time_enabled;
    u64 time_running;
  } data{};
  if (read(static_cast<int>(fd), &data, sizeof(data)) != sizeof(data)) return -1;
  if (data.time_running == 0) return static_cast<i64>(data.value);
  const double scale =
      static_cast<double>(data.time_enabled) / static_cast<double>(data.time_running);
  return static_cast<i64>(static_cast<double>(data.value) * scale);
}

/// Per-thread counter fds, opened on first use and kept for the thread
/// lifetime (the counters run continuously; scopes read deltas).
struct ThreadCounters {
  long cycles = -1;
  long instructions = -1;
  long llc_misses = -1;
  long branch_misses = -1;
  bool opened = false;

  void open_once() {
    if (opened) return;
    opened = true;
    cycles = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    instructions = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
    llc_misses = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
    branch_misses = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
  }
  bool usable() const { return cycles >= 0 || instructions >= 0; }

  ~ThreadCounters() {
    for (long fd : {cycles, instructions, llc_misses, branch_misses}) {
      if (fd >= 0) close(static_cast<int>(fd));
    }
  }
};

ThreadCounters& thread_counters() {
  thread_local ThreadCounters tc;
  tc.open_once();
  return tc;
}

bool probe_perf_event() {
  ThreadCounters probe;
  probe.open_once();
  return probe.usable();
}

#else

bool probe_perf_event() { return false; }

#endif  // __linux__

void read_cpu_times(double* user_s, double* sys_s) {
  *user_s = 0.0;
  *sys_s = 0.0;
#if defined(__linux__)
  rusage ru{};
  if (getrusage(RUSAGE_THREAD, &ru) == 0) {
    *user_s = static_cast<double>(ru.ru_utime.tv_sec) + 1e-6 * ru.ru_utime.tv_usec;
    *sys_s = static_cast<double>(ru.ru_stime.tv_sec) + 1e-6 * ru.ru_stime.tv_usec;
  }
#elif defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    *user_s = static_cast<double>(ru.ru_utime.tv_sec) + 1e-6 * ru.ru_utime.tv_usec;
    *sys_s = static_cast<double>(ru.ru_stime.tv_sec) + 1e-6 * ru.ru_stime.tv_usec;
  }
#endif
}

/// Absolute totals for the calling thread under the resolved backend.
HwCounters read_totals(ProfBackend backend) {
  HwCounters c;
  c.source = backend;
#if defined(__linux__)
  if (backend == ProfBackend::kPerfEvent) {
    ThreadCounters& tc = thread_counters();
    if (tc.usable()) {
      c.cycles = perf_read_scaled(tc.cycles);
      c.instructions = perf_read_scaled(tc.instructions);
      c.llc_misses = perf_read_scaled(tc.llc_misses);
      c.branch_misses = perf_read_scaled(tc.branch_misses);
    } else {
      c.source = ProfBackend::kFallback;  // this thread could not open
    }
  }
#endif
  read_cpu_times(&c.cpu_user_s, &c.cpu_sys_s);
  return c;
}

bool g_profiling_requested = false;

void append_json_counter(std::string& out, const char* key, i64 v) {
  out += "\"";
  out += key;
  out += "\": ";
  out += v < 0 ? "null" : std::to_string(v);
}

}  // namespace

// ---- HostInfo --------------------------------------------------------

const HostInfo& host_info() {
  static const HostInfo info = [] {
    HostInfo h;
    h.cpu_model = detect_cpu_model();
    h.cores = static_cast<int>(std::thread::hardware_concurrency());
    h.simd_tier = simd::tier_name(simd::active_tier());
    h.compiler = detect_compiler();
    h.build_type = detect_build_type();
    h.os = detect_os();
    return h;
  }();
  return info;
}

std::string HostInfo::fingerprint() const {
  return cpu_model + "|" + std::to_string(cores) + "|" + simd_tier + "|" + compiler +
         "|" + build_type + "|" + os;
}

std::string HostInfo::json() const {
  std::string out = "{\"cpu_model\": \"" + json_escape(cpu_model) + "\"";
  out += ", \"host_cores\": " + std::to_string(cores);
  out += ", \"simd_tier\": \"" + json_escape(simd_tier) + "\"";
  out += ", \"compiler\": \"" + json_escape(compiler) + "\"";
  out += ", \"build_type\": \"" + json_escape(build_type) + "\"";
  out += ", \"os\": \"" + json_escape(os) + "\"}";
  return out;
}

// ---- backend ---------------------------------------------------------

const char* backend_name(ProfBackend b) {
  switch (b) {
    case ProfBackend::kDisabled: return "disabled";
    case ProfBackend::kPerfEvent: return "perf_event";
    case ProfBackend::kFallback: return "rusage";
  }
  return "unknown";
}

ProfBackend profiler_backend() {
  static const ProfBackend backend = [] {
    switch (env_policy()) {
      case EnvPolicy::kOff: return ProfBackend::kDisabled;
      case EnvPolicy::kFallback: return ProfBackend::kFallback;
      case EnvPolicy::kAuto: break;
    }
    return probe_perf_event() ? ProfBackend::kPerfEvent : ProfBackend::kFallback;
  }();
  return backend;
}

bool profiling_enabled() {
  return g_profiling_requested && profiler_backend() != ProfBackend::kDisabled;
}

void set_profiling_enabled(bool on) { g_profiling_requested = on; }

// ---- HwCounters ------------------------------------------------------

double HwCounters::ipc() const {
  if (cycles <= 0 || instructions < 0) return 0.0;
  return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double HwCounters::llc_miss_per_kinstr() const {
  if (instructions <= 0 || llc_misses < 0) return 0.0;
  return 1e3 * static_cast<double>(llc_misses) / static_cast<double>(instructions);
}

double HwCounters::branch_miss_per_kinstr() const {
  if (instructions <= 0 || branch_misses < 0) return 0.0;
  return 1e3 * static_cast<double>(branch_misses) / static_cast<double>(instructions);
}

std::string HwCounters::json() const {
  std::string out = "{\"source\": \"";
  out += backend_name(source);
  out += "\", ";
  append_json_counter(out, "cycles", cycles);
  out += ", ";
  append_json_counter(out, "instructions", instructions);
  out += ", ";
  append_json_counter(out, "llc_misses", llc_misses);
  out += ", ";
  append_json_counter(out, "branch_misses", branch_misses);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                ", \"ipc\": %.4g, \"llc_miss_per_kinstr\": %.4g, "
                "\"cpu_user_s\": %.6g, \"cpu_sys_s\": %.6g, \"wall_s\": %.6g}",
                ipc(), llc_miss_per_kinstr(), cpu_user_s, cpu_sys_s, wall_s);
  out += buf;
  return out;
}

// ---- ProfScope -------------------------------------------------------

ProfScope::ProfScope() {
  if (!profiling_enabled()) return;
  active_ = true;
  begin_ = read_totals(profiler_backend());
  t0_ = std::chrono::steady_clock::now();
}

ProfScope::ProfScope(TraceSpan& span) : ProfScope() { span_ = &span; }

HwCounters ProfScope::sample() const {
  HwCounters d;
  if (!active_) return d;
  const HwCounters now = read_totals(begin_.source);
  d.source = begin_.source;
  auto delta = [](i64 a, i64 b) { return a < 0 || b < 0 ? i64{-1} : b - a; };
  d.cycles = delta(begin_.cycles, now.cycles);
  d.instructions = delta(begin_.instructions, now.instructions);
  d.llc_misses = delta(begin_.llc_misses, now.llc_misses);
  d.branch_misses = delta(begin_.branch_misses, now.branch_misses);
  d.cpu_user_s = now.cpu_user_s - begin_.cpu_user_s;
  d.cpu_sys_s = now.cpu_sys_s - begin_.cpu_sys_s;
  d.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
                 .count();
  return d;
}

ProfScope::~ProfScope() {
  if (!active_ || span_ == nullptr || !span_->enabled()) return;
  const HwCounters d = sample();
  span_->arg("hw.src", backend_name(d.source));
  if (d.cycles >= 0) span_->arg("hw.cycles", d.cycles);
  if (d.instructions >= 0) span_->arg("hw.instr", d.instructions);
  if (d.llc_misses >= 0) span_->arg("hw.llc_miss", d.llc_misses);
  if (d.branch_misses >= 0) span_->arg("hw.branch_miss", d.branch_misses);
  if (d.has_counters()) {
    span_->arg("hw.ipc", d.ipc());
    if (d.llc_misses >= 0) span_->arg("hw.llc_miss_per_kinstr", d.llc_miss_per_kinstr());
  }
  span_->arg("hw.cpu_ms", 1e3 * (d.cpu_user_s + d.cpu_sys_s));
}

}  // namespace nmdt::obs
