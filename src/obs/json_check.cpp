#include "obs/json_check.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace nmdt::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      if (error) *error = error_ + " (at byte " + std::to_string(pos_) + ")";
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) *error = "trailing data after JSON value (at byte " + std::to_string(pos_) + ")";
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') return parse_keyword(out);
    if (c == 'n') return parse_keyword(out);
    return parse_number(out);
  }

  bool parse_keyword(JsonValue& out) {
    auto match = [&](std::string_view kw) {
      if (text_.substr(pos_, kw.size()) != kw) return false;
      pos_ += kw.size();
      return true;
    };
    if (match("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return fail("invalid keyword");
  }

  bool parse_number(JsonValue& out) {
    const usize start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return fail("malformed number '" + num + "'");
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<usize>(i)]))) {
              return fail("malformed \\u escape");
            }
          }
          pos_ += 4;
          out += '?';  // code point identity is irrelevant for validation
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue v;
      skip_ws();
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object[std::move(key)] = std::move(v);
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  usize pos_ = 0;
  std::string error_;
};

bool has_string(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString;
}

bool has_number(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber;
}

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  return Parser(text).parse(out, error);
}

bool json_is_valid(std::string_view text, std::string* error) {
  JsonValue root;
  return Parser(text).parse(root, error);
}

bool validate_chrome_trace(std::string_view text, std::string* error,
                           TraceCheckReport* report) {
  JsonValue root;
  if (!Parser(text).parse(root, error)) return false;
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (root.kind != JsonValue::Kind::kObject) return fail("trace root is not an object");
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return fail("missing traceEvents array");
  }
  TraceCheckReport rep;
  std::set<double> tids;
  for (usize i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    const std::string at = "event " + std::to_string(i);
    if (ev.kind != JsonValue::Kind::kObject) return fail(at + " is not an object");
    if (!has_string(ev, "name")) return fail(at + " lacks a string 'name'");
    if (!has_string(ev, "ph")) return fail(at + " lacks a string 'ph'");
    if (!has_number(ev, "tid")) return fail(at + " lacks a numeric 'tid'");
    const std::string& ph = ev.find("ph")->str;
    ++rep.events;
    if (ph == "M") {
      ++rep.metadata;
      continue;
    }
    if (!has_number(ev, "ts")) return fail(at + " lacks a numeric 'ts'");
    if (ph == "X") {
      if (!has_number(ev, "dur")) return fail(at + " (ph X) lacks a numeric 'dur'");
      ++rep.complete_spans;
      tids.insert(ev.find("tid")->number);
    }
  }
  rep.tracks = tids.size();
  if (report) *report = rep;
  return true;
}

bool validate_metrics_json(std::string_view text, std::string* error,
                           MetricsCheckReport* report) {
  JsonValue root;
  if (!Parser(text).parse(root, error)) return false;
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (root.kind != JsonValue::Kind::kObject) return fail("metrics root is not an object");
  MetricsCheckReport rep;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* sec = root.find(section);
    if (sec == nullptr || sec->kind != JsonValue::Kind::kObject) {
      return fail(std::string("missing '") + section + "' object");
    }
  }
  for (const auto& [name, v] : root.find("counters")->object) {
    if (v.kind != JsonValue::Kind::kNumber) {
      return fail("counter '" + name + "' is not numeric");
    }
    ++rep.counters;
  }
  for (const auto& [name, v] : root.find("gauges")->object) {
    if (v.kind != JsonValue::Kind::kNumber) {
      return fail("gauge '" + name + "' is not numeric");
    }
    ++rep.gauges;
  }
  for (const auto& [name, h] : root.find("histograms")->object) {
    const std::string at = "histogram '" + name + "'";
    if (h.kind != JsonValue::Kind::kObject) return fail(at + " is not an object");
    for (const char* key : {"count", "sum", "min", "max", "mean"}) {
      if (!has_number(h, key)) return fail(at + " lacks numeric '" + key + "'");
    }
    const JsonValue* buckets = h.find("buckets");
    if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray) {
      return fail(at + " lacks a 'buckets' array");
    }
    double bucket_total = 0.0;
    double prev_le = -std::numeric_limits<double>::infinity();
    for (usize i = 0; i < buckets->array.size(); ++i) {
      const JsonValue& b = buckets->array[i];
      const std::string bat = at + " bucket " + std::to_string(i);
      if (b.kind != JsonValue::Kind::kObject) return fail(bat + " is not an object");
      if (!has_number(b, "le") || !has_number(b, "count")) {
        return fail(bat + " lacks numeric 'le'/'count'");
      }
      const double le = b.find("le")->number;
      if (le <= prev_le) return fail(bat + " breaks ascending 'le' order");
      prev_le = le;
      bucket_total += b.find("count")->number;
    }
    // Every observation lands in exactly one bucket, so the bucket
    // counts must reconstruct the histogram count.
    if (bucket_total != h.find("count")->number) {
      return fail(at + " bucket counts do not sum to 'count'");
    }
    ++rep.histograms;
  }
  if (report) *report = rep;
  return true;
}

}  // namespace nmdt::obs
