// Minimal JSON parser + schema validators for the observability
// artifacts, shared by the trace-schema tests, the offline trace
// analytics (obs/trace_analysis.hpp), and the `example_trace_lint` CI
// checker.  Not a general-purpose JSON library: it parses into a small
// value tree only to answer "is this well-formed?", "does every event
// carry the required keys?", and to let the analytics walk a trace it
// wrote itself.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace nmdt::obs {

/// A deliberately small JSON value tree: enough structure to validate
/// schemas and re-load exported traces, nothing more.  \u escapes decode
/// to '?' — code point identity is irrelevant for validation and for
/// the ASCII label strings the tracer emits.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parse `text` into `out`; false (with *error set) on malformed input.
bool json_parse(std::string_view text, JsonValue& out, std::string* error);

/// Parse `text` as JSON; false (with *error set) on malformed input.
bool json_is_valid(std::string_view text, std::string* error);

struct TraceCheckReport {
  usize events = 0;         ///< entries in traceEvents
  usize complete_spans = 0; ///< ph == "X" events
  usize metadata = 0;       ///< ph == "M" events
  usize tracks = 0;         ///< distinct tids among complete spans
};

/// Validate a Chrome trace-event file: well-formed JSON, an object with
/// a "traceEvents" array, and every event an object carrying string
/// "name"/"ph" and numeric "ts"/"tid" (complete "X" events must also
/// carry numeric "dur"; metadata "M" events are exempt from ts).
bool validate_chrome_trace(std::string_view text, std::string* error,
                           TraceCheckReport* report = nullptr);

struct MetricsCheckReport {
  usize counters = 0;
  usize gauges = 0;
  usize histograms = 0;
};

/// Validate a MetricsRegistry JSON snapshot (as written by
/// `nmdt_cli --metrics`): an object with "counters"/"gauges"/
/// "histograms" objects; counter and gauge values numeric; every
/// histogram an object with numeric count/sum/min/max/mean and a
/// "buckets" array of {"le": number, "count": number} entries whose
/// counts sum to the histogram count (each observation lands in exactly
/// one bucket).
bool validate_metrics_json(std::string_view text, std::string* error,
                           MetricsCheckReport* report = nullptr);

}  // namespace nmdt::obs
