// Minimal JSON parser + Chrome trace-event schema validator, shared by
// the trace-schema tests and the `example_trace_lint` CI checker.  Not
// a general-purpose JSON library: it parses into an internal value tree
// only to answer "is this well-formed?" and "does every event carry the
// required keys?".
#pragma once

#include <string>
#include <string_view>

#include "util/types.hpp"

namespace nmdt::obs {

/// Parse `text` as JSON; false (with *error set) on malformed input.
bool json_is_valid(std::string_view text, std::string* error);

struct TraceCheckReport {
  usize events = 0;         ///< entries in traceEvents
  usize complete_spans = 0; ///< ph == "X" events
  usize metadata = 0;       ///< ph == "M" events
  usize tracks = 0;         ///< distinct tids among complete spans
};

/// Validate a Chrome trace-event file: well-formed JSON, an object with
/// a "traceEvents" array, and every event an object carrying string
/// "name"/"ph" and numeric "ts"/"tid" (complete "X" events must also
/// carry numeric "dur"; metadata "M" events are exempt from ts).
bool validate_chrome_trace(std::string_view text, std::string* error,
                           TraceCheckReport* report = nullptr);

}  // namespace nmdt::obs
