// RAII wall-clock timer reporting into a MetricsRegistry histogram —
// the single host-side clock source feeding traces, metrics, and the
// bench harnesses (simulated GPU time comes from gpusim::TimingModel,
// never from this clock).  Observes elapsed host milliseconds exactly
// once, either at stop() (which also returns the value) or at
// destruction.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace nmdt::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) : hist_(&hist) {}
  explicit ScopedTimer(const std::string& name)
      : hist_(&MetricsRegistry::global().histogram(name)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Elapsed host milliseconds since construction.
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
  }

  /// Record the elapsed milliseconds into the histogram (first call
  /// only) and return them.
  double stop() {
    const double ms = elapsed_ms();
    if (!stopped_) {
      stopped_ = true;
      hist_->observe(ms);
    }
    return ms;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_ = clock::now();
  Histogram* hist_;
  bool stopped_ = false;
};

}  // namespace nmdt::obs
