// RAII wall-clock timer reporting into a MetricsRegistry histogram —
// the structured replacement for ad-hoc Stopwatch + manual bookkeeping
// in the suite runner, plan builder, and bench harnesses.  Observes
// elapsed host milliseconds exactly once, either at stop() (which also
// returns the value) or at destruction.
#pragma once

#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace nmdt::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) : hist_(&hist) {}
  explicit ScopedTimer(const std::string& name)
      : hist_(&MetricsRegistry::global().histogram(name)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Record the elapsed milliseconds into the histogram (first call
  /// only) and return them.
  double stop() {
    const double ms = sw_.elapsed_ms();
    if (!stopped_) {
      stopped_ = true;
      hist_->observe(ms);
    }
    return ms;
  }

 private:
  Stopwatch sw_;
  Histogram* hist_;
  bool stopped_ = false;
};

}  // namespace nmdt::obs
