// Span-based host-side tracer for the Plan → Cache → Execute pipeline.
//
// A TraceSession collects closed spans into lock-free per-thread
// buffers (one vector per registered thread; emission never takes a
// lock) and merges them at export time into Chrome trace-event JSON —
// loadable in Perfetto / chrome://tracing.  The paper's methodology is
// counter-driven profiling (Fig. 2 stall breakdowns, Fig. 7
// active/inactive executions); this layer gives the host pipeline the
// same discipline: where wall-clock goes, which plan stage dominates,
// whether the PlanCache hits, how shards balance.
//
// Contracts:
//  * Null path is a no-op.  With no session installed, NMDT_TRACE_SCOPE
//    costs one relaxed atomic load; no allocation, no clock read, no
//    output — pipeline results are bit-identical with tracing on or off
//    because spans only observe.
//  * Deterministic merge.  Every span carries a logical *track* (not an
//    OS thread id) derived deterministically from its position in the
//    work decomposition — e.g. a kernel shard's track is
//    mix(parent_track, "shard", shard_index) — plus a session-global
//    open sequence.  Export sorts by (track, seq); within a track,
//    execution is serial, so the sorted order — and therefore the trace
//    file modulo timestamps — is reproducible run-to-run at any --jobs.
//  * Span args hold only deterministic values (simulated counters,
//    sizes, decisions).  Host wall-clock lives exclusively in ts/dur.
//  * A session must outlive every span opened under it; spans closing
//    after uninstall() are dropped, not recorded.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace nmdt::obs {

/// One closed span, ready for export.
struct TraceEvent {
  std::string name;
  u64 track = 0;          ///< logical lane (exported as tid)
  u64 seq = 0;            ///< session-global open order; sort key within track
  double ts_us = 0.0;     ///< open time relative to session start
  double dur_us = 0.0;
  std::string args_json;  ///< rendered `"k":v` fragments, comma-joined ("" = none)
};

class TraceSession {
 public:
  TraceSession();
  ~TraceSession();  // uninstalls if still active

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// The process-wide active session (nullptr = tracing off).
  static TraceSession* active();

  /// Make this session the active one / stop recording into it.
  void install();
  void uninstall();

  /// Merge every thread buffer and return the spans sorted by
  /// (track, seq) — the deterministic export order.  Callable once all
  /// recording threads have finished (e.g. after uninstall()).
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON ("traceEvents" array of ph:"X" complete
  /// events plus thread-name metadata), events in (track, seq) order.
  void write_chrome_json(std::ostream& os) const;
  void write_chrome_json_file(const std::string& path) const;

  // -- internal API used by TraceSpan / TraceTrack ---------------------
  u64 next_seq() { return seq_.fetch_add(1, std::memory_order_relaxed); }
  double since_start_us(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - start_).count();
  }
  void record(TraceEvent&& ev);
  void register_track(u64 track, const std::string& label);
  u64 id() const { return id_; }

 private:
  struct ThreadBuffer {
    std::vector<TraceEvent> events;
  };
  ThreadBuffer* buffer_for_this_thread();

  u64 id_;  ///< process-unique, so thread-local caches never cross sessions
  std::chrono::steady_clock::time_point start_;
  std::atomic<u64> seq_{0};
  mutable std::mutex mu_;  ///< guards buffers_ registration and track_labels_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::map<u64, std::string> track_labels_;
};

/// RAII logical-track guard.  Tracks name serial lanes of the work
/// decomposition (suite row, kernel arm, shard); ids derive
/// deterministically from (parent_track, label, index) so traces merge
/// identically run-to-run regardless of which OS thread ran the lane.
class TraceTrack {
 public:
  /// Child lane of the current thread's track.
  TraceTrack(const char* label, u64 index);
  /// Child lane of an explicit parent — for work handed to a thread
  /// pool, where the executing thread's own track is meaningless.
  TraceTrack(u64 parent, const char* label, u64 index);
  ~TraceTrack();

  TraceTrack(const TraceTrack&) = delete;
  TraceTrack& operator=(const TraceTrack&) = delete;

  u64 track() const { return track_; }

  /// The calling thread's current track (0 = unguarded / main lane).
  static u64 current();
  /// Deterministic child-track id (pure function; exposed for tests).
  static u64 derive(u64 parent, const char* label, u64 index);

 private:
  void enter(u64 parent, const char* label, u64 index);
  u64 track_ = 0;
  u64 saved_ = 0;
};

/// RAII span.  Open on construction (when a session is active), closed
/// and recorded on destruction.  Args are rendered only while enabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool enabled() const { return session_ != nullptr; }

  TraceSpan& arg(const char* key, i64 v);
  TraceSpan& arg(const char* key, u64 v);
  TraceSpan& arg(const char* key, int v) { return arg(key, static_cast<i64>(v)); }
  TraceSpan& arg(const char* key, double v);
  TraceSpan& arg(const char* key, const char* v);

 private:
  TraceSession* session_ = nullptr;
  u64 session_id_ = 0;
  u64 seq_ = 0;
  u64 track_ = 0;
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point begin_;
  std::string args_;
};

/// JSON string escaping (shared with the metrics exporter).
std::string json_escape(std::string_view s);

#define NMDT_TRACE_CONCAT_INNER(a, b) a##b
#define NMDT_TRACE_CONCAT(a, b) NMDT_TRACE_CONCAT_INNER(a, b)
/// Anonymous scope span: `NMDT_TRACE_SCOPE("plan.profile");`
#define NMDT_TRACE_SCOPE(name) \
  ::nmdt::obs::TraceSpan NMDT_TRACE_CONCAT(_nmdt_trace_span_, __LINE__)(name)

}  // namespace nmdt::obs
