// Hardware-counter profiler for the host pipeline: a perf_event-backed
// counter set (cycles, instructions, LLC misses, branch misses) behind
// a portable getrusage/steady_clock fallback, plus captured host
// provenance (CPU model, core count, resolved SIMD tier, compiler).
//
// The paper's methodology is counter-driven (Fig. 2 stall breakdowns);
// Yang et al. and Salehi Dezfuli both show that per-kernel cycle and
// cache-miss attribution — not wall-clock alone — is what locates
// locality bugs.  ProfScope gives every instrumented section that
// signal: wrap a region, and on close the counter deltas land as
// `hw.*` args on an existing trace span and/or are readable via
// sample().
//
// Contracts:
//  * Off by default.  Profiling must be requested explicitly
//    (set_profiling_enabled / `nmdt_cli --perf` / micro_kernels); a
//    disabled ProfScope performs no syscalls, reads no clock, and
//    attaches nothing, so traces, metrics, C, and simulated counters
//    are bitwise no-ops — the determinism contracts of obs/trace.hpp
//    are untouched unless the user opts in.
//  * Graceful degradation.  perf_event_open is probed once per process;
//    unavailability (containers without CAP_PERFMON, non-Linux hosts,
//    NMDT_PERF_EVENTS=fallback) degrades to a getrusage + steady_clock
//    backend that fills CPU/wall time and leaves the counters at -1.
//    Per-thread open failures degrade the same way.  Nothing ever
//    throws for a missing counter.
//  * Counters are per-thread (the perf fds attach to the calling
//    thread), so a ProfScope around a jobs>1 region attributes only the
//    calling thread's work; serial hot-loop attribution — the ROADMAP
//    use case — is exact.
//
// Environment (resolved once, before the first scope):
//   NMDT_PERF_EVENTS=off       disable profiling entirely (scopes no-op
//                              even when requested)
//   NMDT_PERF_EVENTS=fallback  never call perf_event_open; rusage only
//   NMDT_PERF_EVENTS=auto      default: probe perf_event, else fallback
#pragma once

#include <chrono>
#include <string>

#include "util/types.hpp"

namespace nmdt::obs {

class TraceSpan;

/// Host provenance stamped into BENCH_kernels.json, bench history lines,
/// and markdown reports so timings are only ever compared like-for-like.
struct HostInfo {
  std::string cpu_model;   ///< /proc/cpuinfo model name ("unknown" elsewhere)
  int cores = 0;           ///< std::thread::hardware_concurrency
  std::string simd_tier;   ///< resolved simd dispatch tier (scalar/avx2/neon)
  std::string compiler;    ///< compiler id + version macros
  std::string build_type;  ///< CMAKE_BUILD_TYPE baked in at compile time
  std::string os;          ///< compile-time platform tag

  /// Stable identity string: two reports are timing-comparable iff
  /// their fingerprints match (check_serial_perf.py refuses otherwise).
  std::string fingerprint() const;
  /// JSON object literal with every field.
  std::string json() const;
};

/// The process host description (computed once, then cached).
const HostInfo& host_info();

enum class ProfBackend : u8 {
  kDisabled = 0,   ///< NMDT_PERF_EVENTS=off: scopes are strict no-ops
  kPerfEvent = 1,  ///< perf_event_open counter group
  kFallback = 2,   ///< getrusage + steady_clock (no hw counters)
};

const char* backend_name(ProfBackend b);

/// Backend resolved once per process from NMDT_PERF_EVENTS + a probe
/// open.  kPerfEvent means the probing thread could open a cycles or
/// instructions counter; individual threads may still fall back.
ProfBackend profiler_backend();

/// Counter deltas for one profiled region.  Counters are -1 when the
/// backend (or the specific event) is unavailable; the CPU/wall times
/// are always filled when the scope was active.
struct HwCounters {
  ProfBackend source = ProfBackend::kDisabled;
  i64 cycles = -1;
  i64 instructions = -1;
  i64 llc_misses = -1;
  i64 branch_misses = -1;
  double cpu_user_s = 0.0;
  double cpu_sys_s = 0.0;
  double wall_s = 0.0;

  bool valid() const { return source != ProfBackend::kDisabled; }
  bool has_counters() const { return cycles >= 0 && instructions >= 0; }
  /// Instructions per cycle; 0 when either counter is unavailable.
  double ipc() const;
  /// LLC misses per thousand instructions; 0 when unavailable.
  double llc_miss_per_kinstr() const;
  /// Branch misses per thousand instructions; 0 when unavailable.
  double branch_miss_per_kinstr() const;
  /// JSON object literal ({"source": ..., "cycles": N | null, ...}).
  std::string json() const;
};

/// Whether ProfScope currently records.  True only when explicitly
/// requested AND the backend is not kDisabled.
bool profiling_enabled();
/// Request (or drop) profiling for the process.  A request is a no-op
/// under NMDT_PERF_EVENTS=off.  Not thread-safe against concurrently
/// opening scopes — flip it between runs, as the CLI and bench do.
void set_profiling_enabled(bool on);

/// RAII profiled region.  When profiling is enabled, captures the
/// calling thread's counters at open and close; the delta is readable
/// via sample() and, when a span was given, attached to it as `hw.*`
/// args (hw.src, hw.cycles, hw.instr, hw.ipc, hw.llc_miss,
/// hw.branch_miss, hw.cpu_ms).  Disabled scopes do nothing.
class ProfScope {
 public:
  ProfScope();
  explicit ProfScope(TraceSpan& span);
  ~ProfScope();

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

  bool active() const { return active_; }
  /// Counter deltas accumulated since construction (invalid when the
  /// scope is inactive).
  HwCounters sample() const;

 private:
  TraceSpan* span_ = nullptr;
  bool active_ = false;
  HwCounters begin_{};
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace nmdt::obs
