// Offline analytics over exported Chrome trace-event JSON: load a
// `--trace` artifact back in, reconstruct span nesting, and answer the
// questions every optimization PR re-derives by hand — where exclusive
// time goes (hotspots), which chain of spans bounds the run (critical
// path), what a flamegraph of it looks like (folded stacks), and what
// changed between two runs (diff).
//
// The input is the tracer's own export (obs/trace.hpp): spans within a
// logical track are serial and properly nested, so nesting
// reconstruction is a single stack sweep per track over spans sorted by
// (ts asc, dur desc).  Tracks are independent lanes; stacks never cross
// them.  Parsing reuses the json_check value tree — one JSON dialect
// for writing, validating, and reading.
//
// All derived quantities are pure functions of the span tree (names,
// tracks, ts, dur), so analyzing the deterministic trace of a jobs=N
// run yields the same label set and stack shapes run-to-run; only the
// time values move.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace nmdt::obs {

/// One complete span with its reconstructed position in the tree.
struct AnalyzedSpan {
  std::string name;
  u64 track = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;   ///< inclusive
  double self_us = 0.0;  ///< exclusive: dur minus direct children
  int depth = 0;         ///< 0 = root of its track
  i64 parent = -1;       ///< index into TraceProfile::spans; -1 = root
};

/// Per-label aggregate across every span with that name.
struct LabelStat {
  std::string label;
  usize count = 0;
  double incl_us = 0.0;
  double excl_us = 0.0;
  double max_incl_us = 0.0;
  std::vector<double> series_us;  ///< chronological inclusive durations
  double mean_incl_us() const {
    return count == 0 ? 0.0 : incl_us / static_cast<double>(count);
  }
};

struct CriticalPathNode {
  std::string name;
  double incl_us = 0.0;
  double self_us = 0.0;
  int depth = 0;
};

struct TraceProfile {
  std::vector<AnalyzedSpan> spans;
  std::vector<LabelStat> labels;  ///< sorted by exclusive time, descending
  /// Longest root span, descending into the longest child at each level.
  std::vector<CriticalPathNode> critical_path;
  /// Flamegraph folded stacks: "root;child;leaf" -> exclusive time.
  /// Values are microseconds; folded_stacks() renders integer ns.
  std::map<std::string, double> folded;
  double wall_us = 0.0;        ///< max(ts + dur) − min(ts) over all spans
  double total_excl_us = 0.0;  ///< Σ self over all spans (= Σ root dur)
  usize tracks = 0;
};

/// Analyze an exported Chrome trace.  Throws ParseError on malformed
/// JSON or a missing traceEvents array; events that are not complete
/// ("X") spans are ignored.
TraceProfile analyze_trace(std::string_view chrome_json);
TraceProfile analyze_trace_file(const std::string& path);

/// Folded-stacks flamegraph lines ("a;b;c <integer ns>\n", sorted by
/// stack), ready for flamegraph.pl / speedscope / inferno.
std::string folded_stacks(const TraceProfile& p);

/// Per-label comparison of two profiles (matched by label name; a label
/// absent from one side contributes zeros there).
struct LabelDelta {
  std::string label;
  usize count_base = 0, count_cur = 0;
  double excl_base_us = 0.0, excl_cur_us = 0.0;
  double delta_us() const { return excl_cur_us - excl_base_us; }
  /// cur/base exclusive ratio; 0 when the base side is empty.
  double ratio() const { return excl_base_us > 0.0 ? excl_cur_us / excl_base_us : 0.0; }
};

/// Diff `cur` against `base`, sorted by |delta| descending.
std::vector<LabelDelta> diff_profiles(const TraceProfile& base, const TraceProfile& cur);

struct ReportOptions {
  usize top_n = 15;
  std::string trace_label;  ///< shown in the report header (e.g. the path)
  std::string diff_label;   ///< label of the diff baseline, when diffing
};

/// Self-contained markdown report: provenance header, top-N exclusive
/// hotspot table with per-label duration sparklines, critical path,
/// folded-stacks section, and (when `diff_base` is given) a per-label
/// delta table.
void write_markdown_report(std::ostream& os, const TraceProfile& p,
                           const ReportOptions& opts,
                           const TraceProfile* diff_base = nullptr);

}  // namespace nmdt::obs
