#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace nmdt::obs {

namespace {

std::atomic<TraceSession*> g_active{nullptr};
std::atomic<u64> g_next_session_id{1};

// Thread-local state: the current logical track, plus a cache of the
// per-(session, thread) buffer so emission is lock-free after the first
// span a thread records into a session.
struct Tls {
  u64 track = 0;
  u64 session_id = 0;
  void* buffer = nullptr;
};
thread_local Tls t_tls;

constexpr u64 kFnvOffset = 1469598103934665603ull;
constexpr u64 kFnvPrime = 1099511628211ull;

u64 fnv_bytes(const void* data, usize n, u64 h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (usize i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- TraceSession ----------------------------------------------------

TraceSession::TraceSession()
    : id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)),
      start_(std::chrono::steady_clock::now()) {}

TraceSession::~TraceSession() {
  if (active() == this) uninstall();
}

TraceSession* TraceSession::active() { return g_active.load(std::memory_order_acquire); }

void TraceSession::install() { g_active.store(this, std::memory_order_release); }

void TraceSession::uninstall() {
  TraceSession* expected = this;
  g_active.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

TraceSession::ThreadBuffer* TraceSession::buffer_for_this_thread() {
  if (t_tls.session_id == id_ && t_tls.buffer != nullptr) {
    return static_cast<ThreadBuffer*>(t_tls.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buf = buffers_.back().get();
  t_tls.session_id = id_;
  t_tls.buffer = buf;
  return buf;
}

void TraceSession::record(TraceEvent&& ev) {
  buffer_for_this_thread()->events.push_back(std::move(ev));
}

void TraceSession::register_track(u64 track, const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  track_labels_.try_emplace(track, label);
}

std::vector<TraceEvent> TraceSession::events() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    usize total = 0;
    for (const auto& b : buffers_) total += b->events.size();
    all.reserve(total);
    for (const auto& b : buffers_) {
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.track != b.track ? a.track < b.track : a.seq < b.seq;
  });
  return all;
}

namespace {

/// Chrome trace tids are displayed as 32-bit ints; fold the 64-bit
/// track deterministically (collisions only blend display lanes).
u64 export_tid(u64 track) { return (track ^ (track >> 31)) & 0x7fffffff; }

}  // namespace

void TraceSession::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> evs = events();
  std::map<u64, std::string> labels;
  {
    std::lock_guard<std::mutex> lock(mu_);
    labels = track_labels_;
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"nmdt\"}}";
  for (const auto& [track, label] : labels) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << export_tid(track)
       << ",\"args\":{\"name\":\"" << json_escape(label) << "\"}}";
  }
  char buf[64];
  for (const auto& ev : evs) {
    sep();
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\"nmdt\",\"ph\":\"X\"";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", ev.ts_us, ev.dur_us);
    os << buf << ",\"pid\":1,\"tid\":" << export_tid(ev.track);
    if (!ev.args_json.empty()) os << ",\"args\":{" << ev.args_json << "}";
    os << "}";
  }
  os << "\n]}\n";
}

void TraceSession::write_chrome_json_file(const std::string& path) const {
  std::ofstream os(path);
  NMDT_REQUIRE(os.good(), "cannot open trace output path: " + path);
  write_chrome_json(os);
}

// ---- TraceTrack ------------------------------------------------------

u64 TraceTrack::current() { return t_tls.track; }

u64 TraceTrack::derive(u64 parent, const char* label, u64 index) {
  u64 h = fnv_bytes(&parent, sizeof(parent), kFnvOffset);
  h = fnv_bytes(label, std::char_traits<char>::length(label), h);
  h = fnv_bytes(&index, sizeof(index), h);
  return h == 0 ? 1 : h;  // 0 is reserved for the main lane
}

TraceTrack::TraceTrack(const char* label, u64 index) { enter(current(), label, index); }

TraceTrack::TraceTrack(u64 parent, const char* label, u64 index) {
  enter(parent, label, index);
}

void TraceTrack::enter(u64 parent, const char* label, u64 index) {
  track_ = derive(parent, label, index);
  saved_ = t_tls.track;
  t_tls.track = track_;
  if (TraceSession* s = TraceSession::active()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s[%" PRIu64 "]", label, index);
    s->register_track(track_, buf);
  }
}

TraceTrack::~TraceTrack() { t_tls.track = saved_; }

// ---- TraceSpan -------------------------------------------------------

TraceSpan::TraceSpan(const char* name) {
  TraceSession* s = TraceSession::active();
  if (s == nullptr) return;
  session_ = s;
  session_id_ = s->id();
  name_ = name;
  track_ = t_tls.track;
  seq_ = s->next_seq();
  begin_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (session_ == nullptr) return;
  TraceSession* s = TraceSession::active();
  if (s != session_ || s->id() != session_id_) return;  // session ended mid-span
  const auto end = std::chrono::steady_clock::now();
  TraceEvent ev;
  ev.name = name_;
  ev.track = track_;
  ev.seq = seq_;
  ev.ts_us = s->since_start_us(begin_);
  ev.dur_us = std::chrono::duration<double, std::micro>(end - begin_).count();
  ev.args_json = std::move(args_);
  s->record(std::move(ev));
}

TraceSpan& TraceSpan::arg(const char* key, i64 v) {
  if (!enabled()) return *this;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":";
  args_ += std::to_string(v);
  return *this;
}

TraceSpan& TraceSpan::arg(const char* key, u64 v) {
  if (!enabled()) return *this;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":";
  args_ += std::to_string(v);
  return *this;
}

TraceSpan& TraceSpan::arg(const char* key, double v) {
  if (!enabled()) return *this;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":";
  append_number(args_, v);
  return *this;
}

TraceSpan& TraceSpan::arg(const char* key, const char* v) {
  if (!enabled()) return *this;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":\"";
  args_ += json_escape(v);
  args_ += '"';
  return *this;
}

}  // namespace nmdt::obs
