// Process-wide metrics registry: named counters, gauges, and
// log2-bucketed histograms, snapshotted to JSON.
//
// Instruments are created on first lookup (mutex-protected) and updated
// lock-free afterwards; hot paths cache the returned reference
// (instrument storage is node-stable, and reset() zeroes values in
// place, so cached references stay valid for the process lifetime).
// Collection is always on — updates are single relaxed atomics and
// never perturb pipeline results; JSON is written only when a caller
// asks (e.g. `nmdt_cli run --metrics out.json`).
#pragma once

#include <array>
#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "util/types.hpp"

namespace nmdt::obs {

class Counter {
 public:
  void add(i64 delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  i64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<i64> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two-bucketed histogram for non-negative samples (host
/// milliseconds, byte counts).  Bucket i holds samples ≤ 2^(i - kZero);
/// the span 2^-20 … 2^23 covers ns-scale spans to multi-second suites.
class Histogram {
 public:
  static constexpr int kBuckets = 44;
  static constexpr int kZero = 20;  ///< bucket index whose upper bound is 2^0

  void observe(double v);

  struct Snapshot {
    u64 count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::array<u64, kBuckets> buckets{};
    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  };
  Snapshot snapshot() const;
  void reset();

  /// Upper bound of bucket i (2^(i - kZero)).
  static double bucket_bound(int i);

 private:
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<u64>, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented module reports into.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every instrument in place (names and references survive).
  void reset();

  /// JSON snapshot, names sorted, histograms with non-empty buckets
  /// rendered as {"le": bound, "count": n} pairs.
  void write_json(std::ostream& os) const;
  void write_json_file(const std::string& path) const;

  /// Fork-safety hooks for proc::Supervisor, which fork()s worker
  /// processes from a process that may have threads doing instrument
  /// lookups: holding the registry lock across fork() guarantees the
  /// child never inherits it in a locked state (its first counter()
  /// call would deadlock otherwise).  Not for general use.
  void fork_prepare() { mu_.lock(); }
  void fork_release() { mu_.unlock(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace nmdt::obs
