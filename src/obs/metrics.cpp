#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "obs/trace.hpp"  // json_escape
#include "util/error.hpp"

namespace nmdt::obs {

namespace {

void atomic_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void write_number(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

double Histogram::bucket_bound(int i) { return std::ldexp(1.0, i - kZero); }

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
  int b = kBuckets - 1;
  if (v <= 0.0) {
    b = 0;
  } else {
    const int exp = static_cast<int>(std::ceil(std::log2(v)));
    b = std::clamp(exp + kZero, 0, kBuckets - 1);
  }
  buckets_[static_cast<usize>(b)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[static_cast<usize>(i)] = buckets_[static_cast<usize>(i)].load(
        std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": ";
    write_number(os, g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"count\": " << s.count << ", \"sum\": ";
    write_number(os, s.sum);
    os << ", \"min\": ";
    write_number(os, s.min);
    os << ", \"max\": ";
    write_number(os, s.max);
    os << ", \"mean\": ";
    write_number(os, s.mean());
    os << ", \"buckets\": [";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[static_cast<usize>(i)] == 0) continue;
      os << (bfirst ? "" : ", ") << "{\"le\": ";
      write_number(os, Histogram::bucket_bound(i));
      os << ", \"count\": " << s.buckets[static_cast<usize>(i)] << "}";
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  NMDT_REQUIRE(os.good(), "cannot open metrics output path: " + path);
  write_json(os);
}

}  // namespace nmdt::obs
