#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json_check.hpp"
#include "util/ascii_plot.hpp"
#include "util/error.hpp"

namespace nmdt::obs {

namespace {

/// Span end-time comparisons tolerate the exporter's %.3f µs rounding.
constexpr double kEps = 5e-4;

struct RawSpan {
  std::string name;
  u64 track = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

std::vector<RawSpan> load_spans(std::string_view chrome_json) {
  JsonValue root;
  std::string error;
  if (!json_parse(chrome_json, root, &error)) {
    throw ParseError("trace is not valid JSON: " + error);
  }
  if (root.kind != JsonValue::Kind::kObject) {
    throw ParseError("trace root is not an object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    throw ParseError("trace lacks a traceEvents array");
  }
  std::vector<RawSpan> spans;
  spans.reserve(events->array.size());
  for (const JsonValue& ev : events->array) {
    if (ev.kind != JsonValue::Kind::kObject) continue;
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->str != "X") continue;
    const JsonValue* name = ev.find("name");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* dur = ev.find("dur");
    const JsonValue* tid = ev.find("tid");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) continue;
    if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber) continue;
    if (dur == nullptr || dur->kind != JsonValue::Kind::kNumber) continue;
    RawSpan s;
    s.name = name->str;
    s.ts_us = ts->number;
    s.dur_us = dur->number;
    s.track = tid != nullptr && tid->kind == JsonValue::Kind::kNumber
                  ? static_cast<u64>(tid->number)
                  : 0;
    spans.push_back(std::move(s));
  }
  return spans;
}

std::string stack_path(const std::vector<AnalyzedSpan>& spans, i64 idx) {
  std::vector<const std::string*> names;
  for (i64 i = idx; i >= 0; i = spans[static_cast<usize>(i)].parent) {
    names.push_back(&spans[static_cast<usize>(i)].name);
  }
  std::string out;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    if (!out.empty()) out += ';';
    out += **it;
  }
  return out;
}

void append_ms(std::string& out, double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us * 1e-3);
  out += buf;
}

std::string ms(double us) {
  std::string out;
  append_ms(out, us);
  return out;
}

}  // namespace

TraceProfile analyze_trace(std::string_view chrome_json) {
  std::vector<RawSpan> raw = load_spans(chrome_json);
  TraceProfile p;

  // Within a track spans are serial and properly nested (RAII), so
  // sorting by (ts asc, dur desc) puts every parent immediately before
  // its first child and a stack sweep reconstructs the tree.
  std::stable_sort(raw.begin(), raw.end(), [](const RawSpan& a, const RawSpan& b) {
    if (a.track != b.track) return a.track < b.track;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.dur_us > b.dur_us;
  });

  p.spans.reserve(raw.size());
  std::vector<i64> stack;  // indices into p.spans, innermost last
  u64 cur_track = 0;
  std::map<u64, bool> seen_tracks;
  for (RawSpan& r : raw) {
    if (p.spans.empty() || r.track != cur_track) {
      stack.clear();
      cur_track = r.track;
    }
    seen_tracks[r.track] = true;
    while (!stack.empty()) {
      const AnalyzedSpan& top = p.spans[static_cast<usize>(stack.back())];
      if (r.ts_us + r.dur_us <= top.ts_us + top.dur_us + kEps &&
          r.ts_us >= top.ts_us - kEps) {
        break;  // nested inside the current top
      }
      stack.pop_back();
    }
    AnalyzedSpan s;
    s.name = std::move(r.name);
    s.track = r.track;
    s.ts_us = r.ts_us;
    s.dur_us = r.dur_us;
    s.self_us = r.dur_us;
    s.depth = static_cast<int>(stack.size());
    s.parent = stack.empty() ? -1 : stack.back();
    if (s.parent >= 0) {
      AnalyzedSpan& par = p.spans[static_cast<usize>(s.parent)];
      par.self_us = std::max(0.0, par.self_us - s.dur_us);
    }
    p.spans.push_back(std::move(s));
    stack.push_back(static_cast<i64>(p.spans.size()) - 1);
  }
  p.tracks = seen_tracks.size();

  // Aggregates.
  std::map<std::string, LabelStat> by_label;
  std::map<std::string, std::vector<std::pair<double, double>>> samples;  // (ts, dur)
  double min_ts = 0.0, max_end = 0.0;
  bool any = false;
  for (const AnalyzedSpan& s : p.spans) {
    LabelStat& l = by_label[s.name];
    l.label = s.name;
    ++l.count;
    l.incl_us += s.dur_us;
    l.excl_us += s.self_us;
    l.max_incl_us = std::max(l.max_incl_us, s.dur_us);
    samples[s.name].emplace_back(s.ts_us, s.dur_us);
    p.total_excl_us += s.self_us;
    if (!any || s.ts_us < min_ts) min_ts = s.ts_us;
    max_end = std::max(max_end, s.ts_us + s.dur_us);
    any = true;
  }
  p.wall_us = any ? max_end - min_ts : 0.0;
  for (auto& [label, ts_durs] : samples) {
    std::sort(ts_durs.begin(), ts_durs.end());
    LabelStat& l = by_label[label];
    l.series_us.reserve(ts_durs.size());
    for (const auto& [ts, dur] : ts_durs) l.series_us.push_back(dur);
  }
  p.labels.reserve(by_label.size());
  for (auto& [label, stat] : by_label) p.labels.push_back(std::move(stat));
  std::sort(p.labels.begin(), p.labels.end(), [](const LabelStat& a, const LabelStat& b) {
    if (a.excl_us != b.excl_us) return a.excl_us > b.excl_us;
    return a.label < b.label;
  });

  // Folded stacks: every span books its exclusive time against its
  // root-to-self name path.
  for (usize i = 0; i < p.spans.size(); ++i) {
    p.folded[stack_path(p.spans, static_cast<i64>(i))] += p.spans[i].self_us;
  }

  // Critical path: the longest root span, descending into the longest
  // child at each level.  Ties break toward the earlier span so the
  // path is deterministic for a deterministic span tree.
  std::vector<std::vector<i64>> children(p.spans.size());
  std::vector<i64> roots;
  for (usize i = 0; i < p.spans.size(); ++i) {
    if (p.spans[i].parent >= 0) {
      children[static_cast<usize>(p.spans[i].parent)].push_back(static_cast<i64>(i));
    } else {
      roots.push_back(static_cast<i64>(i));
    }
  }
  auto longest = [&](const std::vector<i64>& cands) {
    i64 best = -1;
    for (i64 c : cands) {
      if (best < 0 || p.spans[static_cast<usize>(c)].dur_us >
                          p.spans[static_cast<usize>(best)].dur_us) {
        best = c;
      }
    }
    return best;
  };
  for (i64 at = longest(roots); at >= 0;
       at = longest(children[static_cast<usize>(at)])) {
    const AnalyzedSpan& s = p.spans[static_cast<usize>(at)];
    p.critical_path.push_back({s.name, s.dur_us, s.self_us, s.depth});
  }
  return p;
}

TraceProfile analyze_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open trace file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return analyze_trace(buf.str());
}

std::string folded_stacks(const TraceProfile& p) {
  std::string out;
  for (const auto& [stack, us] : p.folded) {
    const long long ns = std::llround(us * 1e3);
    if (ns <= 0) continue;  // below export resolution
    out += stack;
    out += ' ';
    out += std::to_string(ns);
    out += '\n';
  }
  return out;
}

std::vector<LabelDelta> diff_profiles(const TraceProfile& base, const TraceProfile& cur) {
  std::map<std::string, LabelDelta> by_label;
  for (const LabelStat& l : base.labels) {
    LabelDelta& d = by_label[l.label];
    d.label = l.label;
    d.count_base = l.count;
    d.excl_base_us = l.excl_us;
  }
  for (const LabelStat& l : cur.labels) {
    LabelDelta& d = by_label[l.label];
    d.label = l.label;
    d.count_cur = l.count;
    d.excl_cur_us = l.excl_us;
  }
  std::vector<LabelDelta> out;
  out.reserve(by_label.size());
  for (auto& [label, d] : by_label) out.push_back(std::move(d));
  std::sort(out.begin(), out.end(), [](const LabelDelta& a, const LabelDelta& b) {
    const double da = std::abs(a.delta_us()), db = std::abs(b.delta_us());
    if (da != db) return da > db;
    return a.label < b.label;
  });
  return out;
}

void write_markdown_report(std::ostream& os, const TraceProfile& p,
                           const ReportOptions& opts, const TraceProfile* diff_base) {
  os << "# nmdt trace report\n\n";
  if (!opts.trace_label.empty()) os << "- **trace:** `" << opts.trace_label << "`\n";
  os << "- **spans:** " << p.spans.size() << " across " << p.tracks << " tracks\n"
     << "- **wall:** " << ms(p.wall_us) << " ms · **busy (Σ exclusive):** "
     << ms(p.total_excl_us) << " ms\n\n";

  os << "## Hotspots — top " << opts.top_n << " by exclusive time\n\n"
     << "| # | label | count | excl ms | % busy | incl ms | mean ms | trend |\n"
     << "|--:|---|--:|--:|--:|--:|--:|---|\n";
  usize rank = 0;
  for (const LabelStat& l : p.labels) {
    if (++rank > opts.top_n) break;
    const double pct = p.total_excl_us > 0.0 ? 100.0 * l.excl_us / p.total_excl_us : 0.0;
    char pct_buf[16];
    std::snprintf(pct_buf, sizeof(pct_buf), "%.1f%%", pct);
    os << "| " << rank << " | `" << l.label << "` | " << l.count << " | "
       << ms(l.excl_us) << " | " << pct_buf << " | " << ms(l.incl_us) << " | "
       << ms(l.mean_incl_us()) << " | " << sparkline(l.series_us, 16) << " |\n";
  }
  if (rank == 0) os << "| — | (no spans) | | | | | | |\n";
  os << "\n";

  os << "## Critical path\n\n"
     << "Longest root span, descending into the longest child at each level:\n\n";
  if (p.critical_path.empty()) {
    os << "(no spans)\n";
  } else {
    int step = 0;
    for (const CriticalPathNode& n : p.critical_path) {
      os << ++step << ". `" << n.name << "` — " << ms(n.incl_us) << " ms inclusive ("
         << ms(n.self_us) << " ms self)\n";
    }
  }
  os << "\n";

  os << "## Folded stacks (flamegraph)\n\n"
     << "`stack <integer ns>` lines — feed to flamegraph.pl / speedscope / "
        "inferno:\n\n```\n"
     << folded_stacks(p) << "```\n\n";

  if (diff_base != nullptr) {
    os << "## Diff vs `" << (opts.diff_label.empty() ? "baseline" : opts.diff_label)
       << "`\n\n"
       << "Positive Δ means this trace spends more exclusive time there than "
          "the baseline.\n\n"
       << "| label | base excl ms | this excl ms | Δ ms | ratio |\n"
       << "|---|--:|--:|--:|--:|\n";
    const std::vector<LabelDelta> deltas = diff_profiles(*diff_base, p);
    usize shown = 0;
    for (const LabelDelta& d : deltas) {
      if (++shown > opts.top_n) break;
      char ratio_buf[24];
      if (d.ratio() > 0.0) std::snprintf(ratio_buf, sizeof(ratio_buf), "%.2fx", d.ratio());
      else std::snprintf(ratio_buf, sizeof(ratio_buf), "new");
      os << "| `" << d.label << "` | " << ms(d.excl_base_us) << " | "
         << ms(d.excl_cur_us) << " | " << ms(d.delta_us()) << " | " << ratio_buf
         << " |\n";
    }
    os << "\n";
  }
}

}  // namespace nmdt::obs
