// placeholder; replaced as the module is implemented
