#include "analysis/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "formats/convert.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nmdt {

SampledProfile profile_matrix_sampled(const Csr& csr, const TilingSpec& spec,
                                      double row_fraction, u64 seed) {
  NMDT_CHECK_CONFIG(row_fraction > 0.0 && row_fraction <= 1.0,
                    "row_fraction must be in (0, 1]");
  spec.validate();

  // Choose the sampled row set (uniform without replacement).
  Rng rng(seed);
  const i64 target =
      std::max<i64>(32, static_cast<i64>(std::llround(row_fraction * csr.rows)));
  const i64 take = std::min<i64>(target, csr.rows);
  std::vector<index_t> rows(static_cast<usize>(csr.rows));
  std::iota(rows.begin(), rows.end(), index_t{0});
  for (i64 i = 0; i < take; ++i) {
    const i64 j = i + static_cast<i64>(rng.below(static_cast<u64>(csr.rows - i)));
    std::swap(rows[i], rows[j]);
  }
  rows.resize(static_cast<usize>(take));
  std::sort(rows.begin(), rows.end());

  // Build the row-subsampled matrix (same column space).
  Coo sub;
  sub.rows = static_cast<index_t>(take);
  sub.cols = csr.cols;
  for (index_t i = 0; i < static_cast<index_t>(take); ++i) {
    const index_t r = rows[static_cast<usize>(i)];
    for (index_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
      sub.push(i, csr.col_idx[k], csr.val[k]);
    }
  }
  const Csr sub_csr = csr_from_coo(sub);

  SampledProfile out;
  out.rows_sampled = take;
  out.nnz_sampled = sub_csr.nnz();
  out.sample_fraction = static_cast<double>(take) / static_cast<double>(csr.rows);

  const MatrixProfile sampled = profile_matrix(sub_csr, spec);
  const double scale = 1.0 / out.sample_fraction;

  // Scale back: counts by 1/p, row-fraction quantities unchanged,
  // H_norm re-normalized against the estimated full Hartley entropy
  // (sampling scales the segment count but preserves the segment-size
  // distribution, so Shannon entropy gains ~log(1/p)).
  out.profile = sampled;
  out.profile.stats.rows = csr.rows;
  out.profile.stats.cols = csr.cols;
  out.profile.stats.nnz = static_cast<i64>(std::llround(sampled.stats.nnz * scale));
  out.profile.stats.nonzero_rows =
      static_cast<i64>(std::llround(sampled.stats.nonzero_rows * scale));
  out.profile.total_strip_row_segments =
      static_cast<i64>(std::llround(sampled.total_strip_row_segments * scale));
  out.profile.total_tile_row_segments =
      static_cast<i64>(std::llround(sampled.total_tile_row_segments * scale));

  if (out.profile.stats.nnz > 1 && sampled.stats.nnz > 1) {
    const double h_sampled = sampled.h_norm * std::log(static_cast<double>(sampled.stats.nnz));
    const double h_full_est = h_sampled + std::log(scale);
    out.profile.h_norm = std::clamp(
        h_full_est / std::log(static_cast<double>(out.profile.stats.nnz)), 0.0, 1.0);
  }
  if (out.profile.mean_strip_nnzrow_frac > 0.0) {
    out.profile.ssf = (out.profile.nnzrow_frac / out.profile.mean_strip_nnzrow_frac) *
                      static_cast<double>(out.profile.stats.nnz) *
                      (1.0 - out.profile.h_norm);
  }
  return out;
}

}  // namespace nmdt
