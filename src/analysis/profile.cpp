#include "analysis/profile.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace nmdt {

namespace {

/// Per-(strip, tile-row) row-segment nnz counts, without materializing
/// tiles: one pass over CSR entries accumulating into a dense map of
/// (strip, local row) for the current tile row of rows.
struct SegmentScan {
  std::vector<i64> tile_segments;    ///< nnz per (tile, row) segment
  std::vector<i64> strip_rows;       ///< #non-empty rows per strip
  i64 num_strips = 0;
};

SegmentScan scan_segments(const Csr& csr, const TilingSpec& spec) {
  SegmentScan out;
  out.num_strips = spec.num_strips(csr.cols);
  out.strip_rows.assign(static_cast<usize>(out.num_strips), 0);

  // seen_in_row[s] != current row marker → first touch of (strip s, row r).
  std::vector<index_t> strip_seen(static_cast<usize>(out.num_strips), -1);
  // per-strip running segment nnz for the current row
  std::vector<i64> seg_pos(static_cast<usize>(out.num_strips), -1);

  for (index_t r = 0; r < csr.rows; ++r) {
    for (index_t k = csr.row_ptr[r]; k < csr.row_ptr[r + 1]; ++k) {
      const index_t s = csr.col_idx[k] / spec.strip_width;
      if (strip_seen[s] != r) {
        strip_seen[s] = r;
        ++out.strip_rows[s];
        out.tile_segments.push_back(0);
        seg_pos[s] = static_cast<i64>(out.tile_segments.size()) - 1;
      }
      ++out.tile_segments[seg_pos[s]];
    }
  }
  return out;
}

}  // namespace

double normalized_entropy(const Csr& csr, const TilingSpec& spec) {
  spec.validate();
  const i64 nnz = csr.nnz();
  if (nnz <= 1) return 0.0;
  // Row segments at tile granularity: within a strip, a row belongs to
  // exactly one tile, so tile row segments equal strip row segments —
  // segment membership is (strip, row), independent of tile_height.
  const SegmentScan scan = scan_segments(csr, spec);
  double h = 0.0;
  const double total = static_cast<double>(nnz);
  for (i64 seg : scan.tile_segments) {
    const double p = static_cast<double>(seg) / total;
    h -= p * std::log(p);
  }
  return h / std::log(total);
}

MatrixProfile profile_matrix(const Csr& csr, const TilingSpec& spec) {
  spec.validate();
  MatrixProfile p;
  p.stats = compute_stats(csr);

  const SegmentScan scan = scan_segments(csr, spec);
  p.total_strip_row_segments = 0;
  for (i64 rows_in_strip : scan.strip_rows) p.total_strip_row_segments += rows_in_strip;
  p.total_tile_row_segments = static_cast<i64>(scan.tile_segments.size());

  if (csr.rows > 0) {
    p.nnzrow_frac = static_cast<double>(p.stats.nonzero_rows) / csr.rows;
    double strip_frac_sum = 0.0;
    for (i64 rows_in_strip : scan.strip_rows) {
      strip_frac_sum += static_cast<double>(rows_in_strip) / csr.rows;
    }
    p.mean_strip_nnzrow_frac =
        scan.num_strips > 0 ? strip_frac_sum / static_cast<double>(scan.num_strips) : 0.0;
  }
  if (csr.cols > 0) {
    p.nnzcol_frac = static_cast<double>(p.stats.nonzero_cols) / csr.cols;
  }

  const i64 nnz = csr.nnz();
  if (nnz <= 1) {
    p.h_norm = 0.0;
    p.ssf = 0.0;
    return p;
  }
  double h = 0.0;
  const double total = static_cast<double>(nnz);
  for (i64 seg : scan.tile_segments) {
    const double prob = static_cast<double>(seg) / total;
    h -= prob * std::log(prob);
  }
  p.h_norm = h / std::log(total);

  // Eq. 2. Guard the denominator: a matrix with zero strip occupancy has
  // no work at all.
  if (p.mean_strip_nnzrow_frac > 0.0) {
    p.ssf = (p.nnzrow_frac / p.mean_strip_nnzrow_frac) * static_cast<double>(nnz) *
            (1.0 - p.h_norm);
  }
  return p;
}

}  // namespace nmdt
