#include "analysis/traffic_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace nmdt {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kAStationary: return "A-stationary";
    case Strategy::kBStationary: return "B-stationary";
    case Strategy::kCStationary: return "C-stationary";
  }
  return "unknown";
}

TrafficEstimate estimate_traffic(const MatrixProfile& p, Strategy strategy, index_t K,
                                 const TilingSpec& spec, i64 value_bytes) {
  NMDT_CHECK_CONFIG(K > 0, "traffic model requires K > 0");
  NMDT_CHECK_CONFIG(value_bytes > 0, "traffic model requires positive value_bytes");
  spec.validate();
  const double size_a =
      static_cast<double>(csr_bytes(p.stats.rows, p.stats.nnz, value_bytes));
  const double nnz = static_cast<double>(p.stats.nnz);
  const double elem = static_cast<double>(value_bytes);
  const double b_tiles_across = std::ceil(static_cast<double>(K) / spec.strip_width);
  const double strip_rows = static_cast<double>(p.total_strip_row_segments);
  const double nnzrow = static_cast<double>(p.stats.nonzero_rows);
  const double nnzcol = static_cast<double>(p.stats.nonzero_cols);

  TrafficEstimate t;
  switch (strategy) {
    case Strategy::kAStationary:
      t.a_bytes = size_a;
      t.b_bytes = nnz * K * elem;
      t.c_bytes = strip_rows * K * elem * 2.0;  // atomic partials: 2x
      break;
    case Strategy::kBStationary:
      t.a_bytes = size_a * b_tiles_across;
      t.b_bytes = nnzcol * K * elem;
      t.c_bytes = strip_rows * K * elem * 2.0;
      break;
    case Strategy::kCStationary:
      t.a_bytes = size_a * b_tiles_across;
      t.b_bytes = nnz * K * elem;
      t.c_bytes = nnzrow * K * elem;
      break;
  }
  return t;
}

double expected_strip_rows_uniform(index_t n, double density, index_t strip_width) {
  return (1.0 - std::pow(1.0 - density, static_cast<double>(strip_width))) *
         static_cast<double>(n);
}

TrafficEstimate estimate_traffic_uniform(index_t n, double density, Strategy strategy,
                                         index_t K, const TilingSpec& spec,
                                         i64 value_bytes) {
  NMDT_CHECK_CONFIG(n > 0 && density >= 0.0 && density <= 1.0,
                    "uniform traffic model requires n > 0 and density in [0, 1]");
  MatrixProfile p;
  p.stats.rows = n;
  p.stats.cols = n;
  p.stats.nnz = static_cast<i64>(density * static_cast<double>(n) * n);
  // Under the uniform model nearly every row/column is non-empty once
  // d·n > 1 (the paper's n_nnzrow = n_nnzcol ≈ n assumption); use the
  // exact expectation so sparse corners stay correct.
  const double occ = 1.0 - std::pow(1.0 - density, static_cast<double>(n));
  p.stats.nonzero_rows = static_cast<i64>(occ * n);
  p.stats.nonzero_cols = p.stats.nonzero_rows;
  const double per_strip = expected_strip_rows_uniform(n, density, spec.strip_width);
  const double num_strips = std::ceil(static_cast<double>(n) / spec.strip_width);
  p.total_strip_row_segments = static_cast<i64>(per_strip * num_strips);
  return estimate_traffic(p, strategy, K, spec, value_bytes);
}

double bytes_per_flop(index_t n, i64 nnz, i64 value_bytes) {
  NMDT_CHECK_CONFIG(n > 0 && nnz > 0, "bytes_per_flop requires positive n and nnz");
  NMDT_CHECK_CONFIG(value_bytes > 0, "bytes_per_flop requires positive value_bytes");
  // Per non-zero: 4 B col index + one value; row_ptr stays 4 B; B read +
  // C write are one value each per output element.
  const double v = static_cast<double>(value_bytes);
  const double traffic = (v + 4.0) * static_cast<double>(nnz) +
                         4.0 * (static_cast<double>(n) + 1) +
                         2.0 * v * static_cast<double>(n) * static_cast<double>(n);
  const double flops = 2.0 * static_cast<double>(nnz) * static_cast<double>(n);
  return traffic / flops;
}

double machine_balance_bytes_per_flop(double bandwidth_gbps, double peak_tflops) {
  NMDT_CHECK_CONFIG(bandwidth_gbps > 0 && peak_tflops > 0,
                    "machine balance requires positive bandwidth and FLOP rate");
  return bandwidth_gbps * 1e9 / (peak_tflops * 1e12);
}

}  // namespace nmdt
