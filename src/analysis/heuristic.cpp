#include "analysis/heuristic.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nmdt {

SsfThreshold learn_ssf_threshold(std::span<const SsfSample> samples) {
  NMDT_REQUIRE(!samples.empty(), "learn_ssf_threshold requires at least one sample");
  std::vector<SsfSample> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const SsfSample& a, const SsfSample& b) { return a.ssf < b.ssf; });

  const i64 n = static_cast<i64>(sorted.size());
  // b_wins_suffix[i] = #samples in [i, n) where B-stationary is faster;
  // classifying threshold between i-1 and i predicts B for the suffix.
  std::vector<i64> b_wins_suffix(static_cast<usize>(n) + 1, 0);
  for (i64 i = n - 1; i >= 0; --i) {
    b_wins_suffix[i] = b_wins_suffix[i + 1] +
                       (sorted[static_cast<usize>(i)].runtime_ratio_c_over_b > 1.0 ? 1 : 0);
  }

  SsfThreshold best;
  best.total = n;
  best.accuracy = -1.0;
  i64 c_wins_prefix = 0;  // samples in [0, i) where C-stationary is faster
  for (i64 split = 0; split <= n; ++split) {
    const i64 correct = c_wins_prefix + b_wins_suffix[split];
    const double acc = static_cast<double>(correct) / static_cast<double>(n);
    if (acc > best.accuracy) {
      best.accuracy = acc;
      best.misclassified = n - correct;
      if (split == 0) {
        best.threshold = sorted.front().ssf - 1.0;  // everything → B
      } else if (split == n) {
        best.threshold = sorted.back().ssf + 1.0;  // everything → C
      } else {
        best.threshold = 0.5 * (sorted[static_cast<usize>(split) - 1].ssf +
                                sorted[static_cast<usize>(split)].ssf);
      }
    }
    if (split < n) {
      c_wins_prefix +=
          sorted[static_cast<usize>(split)].runtime_ratio_c_over_b <= 1.0 ? 1 : 0;
    }
  }
  return best;
}

}  // namespace nmdt
