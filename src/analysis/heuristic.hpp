// SSF-threshold learning and algorithm selection (paper Sec. 3.1.4,
// Fig. 4): profile a training sweep of matrices, record the measured
// C-stationary/B-stationary runtime ratio for each, and pick the SSF
// threshold that maximizes classification accuracy.  At inference time,
// SSF > threshold ⇒ B-stationary (with online tiled DCSR), otherwise
// C-stationary (with untiled DCSR).
#pragma once

#include <span>
#include <vector>

#include "analysis/traffic_model.hpp"

namespace nmdt {

/// One training observation: a matrix's SSF value and the ratio
/// t_C-stationary / t_B-stationary (> 1 means B-stationary is faster,
/// i.e. "above the line" in Fig. 4).
struct SsfSample {
  double ssf = 0.0;
  double runtime_ratio_c_over_b = 1.0;
};

struct SsfThreshold {
  double threshold = 0.0;
  double accuracy = 0.0;       ///< fraction classified optimally
  i64 misclassified = 0;
  i64 total = 0;
};

/// Sweep all candidate thresholds (midpoints between consecutive sorted
/// SSF values plus the two open ends) and return the accuracy-maximizing
/// one.  Ties break towards the smaller threshold.
SsfThreshold learn_ssf_threshold(std::span<const SsfSample> samples);

/// The selection rule used by SpmmEngine.
inline Strategy select_strategy(double ssf, double threshold) {
  return ssf > threshold ? Strategy::kBStationary : Strategy::kCStationary;
}

}  // namespace nmdt
