// The paper's compulsory-memory-traffic analytical model (Table 1) and
// the bytes/FLOP balance model (Sec. 2).
//
// Table 1 reconstruction for an m×n sparse A, K dense columns, tile
// dimension k (strip width = B-tile height = k), counting bytes with
// 4 B elements, atomics charged 2×:
//
//                A                    B                 C
//  A-stationary  size(A.csr)          nnz·K             Σ_s R_s · K · 2
//  B-stationary  size(A.csr)·(K/k)    n_nnzcol·K        Σ_s R_s · K · 2
//  C-stationary  size(A.csr)·(K/k)    nnz·K             n_nnzrow·K
//
// where R_s is the number of non-empty rows of A in vertical strip s
// (measured, or {1-(1-d)^k}·m under the uniform model), n_nnzrow /
// n_nnzcol the counts of non-empty rows/columns.  A-stationary keeps A
// resident (single fetch) but pays per-non-zero B rows and atomic C
// partials; B-stationary re-reads A once per B tile across K; and
// C-stationary re-reads A once per vertical B strip but writes C once.
#pragma once

#include "analysis/profile.hpp"
#include "formats/footprint.hpp"

namespace nmdt {

enum class Strategy { kAStationary, kBStationary, kCStationary };

const char* strategy_name(Strategy s);

struct TrafficEstimate {
  double a_bytes = 0.0;
  double b_bytes = 0.0;
  double c_bytes = 0.0;

  double total() const { return a_bytes + b_bytes + c_bytes; }
};

/// Table-1 estimate from a measured profile.  `value_bytes` is the
/// stored element width (4 f32 / 8 f64 / 2 bf16 — util/precision.hpp);
/// index traffic inside size(A.csr) stays 4 B at every precision.
TrafficEstimate estimate_traffic(const MatrixProfile& p, Strategy strategy, index_t K,
                                 const TilingSpec& spec, i64 value_bytes = kValueBytes);

/// Closed-form uniform-distribution variant (the "analytical model"
/// column of Table 1): square n×n A with density d.
TrafficEstimate estimate_traffic_uniform(index_t n, double density, Strategy strategy,
                                         index_t K, const TilingSpec& spec,
                                         i64 value_bytes = kValueBytes);

/// Expected non-empty rows per k-wide strip under uniform density:
/// {1 - (1-d)^k} · n.
double expected_strip_rows_uniform(index_t n, double density, index_t strip_width);

/// Sec. 2 bytes/FLOP model for square N×N SpMM with K = N dense
/// columns, with v = value_bytes (default 4 B f32):
/// ((v+4)·nnz + 4·(N+1) + 2v·N²) / (2·nnz·N).
double bytes_per_flop(index_t n, i64 nnz, i64 value_bytes = kValueBytes);

/// Machine balance of the modelled GPU (bytes of DRAM bandwidth per
/// peak FP32 FLOP); SpMM is memory-bound whenever bytes_per_flop()
/// exceeds this.
double machine_balance_bytes_per_flop(double bandwidth_gbps, double peak_tflops);

}  // namespace nmdt
