// Sampling-based SSF estimation — the paper's stated future work
// ("we believe these parameters can be obtained through sampling to
// minimize profiling time", Sec. 3.1.4), implemented.
//
// Row sampling is the natural unit because an SSF row segment is a
// (strip, row) pair: sampling whole rows keeps every sampled segment
// intact, so the segment-size distribution (and hence H_norm) is
// estimated without bias from partial segments.  Counts (nnz, strip
// row segments) scale by 1/p; row-fraction quantities are invariant.
#pragma once

#include "analysis/profile.hpp"

namespace nmdt {

struct SampledProfile {
  MatrixProfile profile;      ///< estimated full-matrix profile
  i64 rows_sampled = 0;
  i64 nnz_sampled = 0;
  double sample_fraction = 0; ///< requested row fraction p
};

/// Profile A from a uniform row sample of fraction `row_fraction`
/// (clamped to at least 32 rows), scaling the estimates back to the
/// full matrix.  Deterministic given `seed`.
SampledProfile profile_matrix_sampled(const Csr& csr, const TilingSpec& spec,
                                      double row_fraction, u64 seed);

}  // namespace nmdt
