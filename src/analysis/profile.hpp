// Matrix profiling: the quantities the paper's heuristic machinery
// consumes (Sec. 3.1.4).
//
//  * normalized entropy H_norm (Eq. 1): Shannon entropy of the non-zero
//    mass across per-tile row segments, divided by Hartley entropy
//    log(A.nnz).  H_norm → 1 for scattered (uniform) non-zeros, lower
//    for clustered/skewed matrices.
//  * Sparsity Skewness Function SSF (Eq. 2):
//        SSF = (n_nnzrow / n) / mean(n_nnzrowstrip / n)
//              * A.nnz * (1 - H_norm)
//    Larger SSF ⇒ B-stationary predicted to win.  For uniform random
//    matrices almost every row segment is a singleton, so H_norm ≈ 1 and
//    SSF collapses towards 0 — which is exactly the huge dynamic range
//    (1e-17 … 1e3) visible on the Fig. 4 x-axis.
#pragma once

#include "formats/csr.hpp"
#include "formats/tiling.hpp"
#include "matgen/suite.hpp"

namespace nmdt {

struct MatrixProfile {
  MatrixStats stats;

  /// Fraction of globally non-empty rows, n_nnzrow / n.
  double nnzrow_frac = 0.0;
  /// Fraction of globally non-empty columns.
  double nnzcol_frac = 0.0;
  /// mean over vertical strips of (#non-empty rows in strip / n).
  double mean_strip_nnzrow_frac = 0.0;
  /// Σ over strips of #non-empty rows in the strip (the row-segment
  /// count that drives B-stationary's atomic C traffic).
  i64 total_strip_row_segments = 0;
  /// Σ over (strip × tile_height) tiles of #non-empty row segments.
  i64 total_tile_row_segments = 0;

  double h_norm = 0.0;  ///< Eq. 1, in [0, 1]
  double ssf = 0.0;     ///< Eq. 2
};

/// Compute the full profile in one pass over the tiling.
MatrixProfile profile_matrix(const Csr& csr, const TilingSpec& spec);

/// Eq. 1 alone, over the given tiling granularity.
double normalized_entropy(const Csr& csr, const TilingSpec& spec);

}  // namespace nmdt
