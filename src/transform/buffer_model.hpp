// Dynamic model of the engine's per-column prefetch buffer (Sec. 5.3,
// "Internal buffer demand").
//
// The conversion pipeline consumes one element per beat from the lane
// the comparator selects; the buffer feeding each lane refills from
// DRAM with a round-trip of frontier-update + column-access latency
// (~18.3 ns).  The paper's case study is the worst-case drain — every
// beat consumes from the *same* column — and sizes the buffer at 256 B
// per column to ride through it.  This model replays a consumption
// trace beat by beat, tracking per-lane occupancy and in-flight
// refills, and reports the stall beats — so the sizing claim becomes a
// measurable sweep (bench/sec53_area_energy) instead of an assertion.
#pragma once

#include <span>
#include <vector>

#include "formats/csc.hpp"
#include "formats/tiling.hpp"
#include "transform/hw_model.hpp"

namespace nmdt {

struct BufferSimResult {
  u64 productive_beats = 0;
  u64 stall_beats = 0;

  u64 total_beats() const { return productive_beats + stall_beats; }
  double stall_fraction() const {
    return total_beats() == 0
               ? 0.0
               : static_cast<double>(stall_beats) / static_cast<double>(total_beats());
  }
};

/// Replay a lane-consumption trace (one entry per consumed element,
/// value = lane id) against per-lane buffers of `hw.buffer_bytes_per_lane`.
/// Refills are fully pipelined (one element arrives latency_to_hide_ns
/// after its slot frees); buffers start full, as after the strip-open
/// prefetch.
BufferSimResult simulate_prefetch_buffer(const EngineHwModel& hw,
                                         std::span<const int> lane_trace,
                                         bool double_precision = false);

/// The paper's worst case: `n` consecutive beats draining one column.
std::vector<int> single_lane_trace(i64 n);

/// The lane-consumption order of a real conversion: elements of the
/// strip sorted by (row, column) — exactly the order the comparator
/// emits them.
std::vector<int> conversion_lane_trace(const Csc& csc, index_t strip_id,
                                       const TilingSpec& spec);

}  // namespace nmdt
