#include "transform/comparator.hpp"

#include <limits>
#include <vector>

#include "util/error.hpp"

namespace nmdt {

namespace {

struct Node {
  index_t coord = std::numeric_limits<index_t>::max();
  u64 mask = 0;
  bool valid = false;
};

/// One 2-input comparator unit (Fig. 15a): minimum coordinate plus the
/// merged position bitvector on ties.
Node combine(const Node& a, const Node& b, u64& ops) {
  ++ops;
  if (!a.valid) return b;
  if (!b.valid) return a;
  Node out;
  out.valid = true;
  if (a.coord < b.coord) {
    out.coord = a.coord;
    out.mask = a.mask;
  } else if (b.coord < a.coord) {
    out.coord = b.coord;
    out.mask = b.mask;
  } else {
    out.coord = a.coord;
    out.mask = a.mask | b.mask;  // tie: report all minimum positions
  }
  return out;
}

}  // namespace

MinReduceResult comparator_tree_min(std::span<const index_t> coords,
                                    std::span<const u8> valid) {
  NMDT_REQUIRE(coords.size() == valid.size(), "coords/valid length mismatch");
  NMDT_REQUIRE(coords.size() <= 64, "comparator tree limited to 64 lanes");
  MinReduceResult res;
  if (coords.empty()) return res;

  std::vector<Node> level(coords.size());
  for (usize i = 0; i < coords.size(); ++i) {
    level[i].coord = coords[i];
    level[i].mask = u64{1} << i;
    level[i].valid = valid[i] != 0;
  }
  // Pairwise tree reduction, exactly the Fig. 15b topology.
  while (level.size() > 1) {
    std::vector<Node> next;
    next.reserve((level.size() + 1) / 2);
    for (usize i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(combine(level[i], level[i + 1], res.comparator_ops));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());  // odd lane bypasses
    level = std::move(next);
  }
  res.any_valid = level[0].valid;
  if (res.any_valid) {
    res.min_coord = level[0].coord;
    res.lane_mask = level[0].mask;
  }
  return res;
}

MinReduceResult linear_scan_min(std::span<const index_t> coords,
                                std::span<const u8> valid) {
  NMDT_REQUIRE(coords.size() == valid.size(), "coords/valid length mismatch");
  NMDT_REQUIRE(coords.size() <= 64, "linear scan limited to 64 lanes");
  MinReduceResult res;
  index_t best = std::numeric_limits<index_t>::max();
  for (usize i = 0; i < coords.size(); ++i) {
    if (!valid[i]) continue;
    ++res.comparator_ops;
    if (!res.any_valid || coords[i] < best) {
      best = coords[i];
      res.lane_mask = u64{1} << i;
      res.any_valid = true;
    } else if (coords[i] == best) {
      res.lane_mask |= u64{1} << i;
    }
  }
  if (res.any_valid) res.min_coord = best;
  return res;
}

int comparator_stages(int lanes) {
  int stages = 0;
  int width = 1;
  while (width < lanes) {
    width *= 2;
    ++stages;
  }
  return stages;
}

}  // namespace nmdt
