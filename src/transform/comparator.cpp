#include "transform/comparator.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace nmdt {

namespace {

struct Node {
  index_t coord = std::numeric_limits<index_t>::max();
  u64 mask = 0;
  bool valid = false;
};

/// One 2-input comparator unit (Fig. 15a): minimum coordinate plus the
/// merged position bitvector on ties.
Node combine(const Node& a, const Node& b, u64& ops) {
  ++ops;
  if (!a.valid) return b;
  if (!b.valid) return a;
  Node out;
  out.valid = true;
  if (a.coord < b.coord) {
    out.coord = a.coord;
    out.mask = a.mask;
  } else if (b.coord < a.coord) {
    out.coord = b.coord;
    out.mask = b.mask;
  } else {
    out.coord = a.coord;
    out.mask = a.mask | b.mask;  // tie: report all minimum positions
  }
  return out;
}

}  // namespace

MinReduceResult comparator_tree_min(std::span<const index_t> coords,
                                    std::span<const u8> valid) {
  NMDT_REQUIRE(coords.size() == valid.size(), "coords/valid length mismatch");
  NMDT_REQUIRE(coords.size() <= 64, "comparator tree limited to 64 lanes");
  MinReduceResult res;
  if (coords.empty()) return res;

  std::vector<Node> level(coords.size());
  for (usize i = 0; i < coords.size(); ++i) {
    level[i].coord = coords[i];
    level[i].mask = u64{1} << i;
    level[i].valid = valid[i] != 0;
  }
  // Pairwise tree reduction, exactly the Fig. 15b topology.
  while (level.size() > 1) {
    std::vector<Node> next;
    next.reserve((level.size() + 1) / 2);
    for (usize i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(combine(level[i], level[i + 1], res.comparator_ops));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());  // odd lane bypasses
    level = std::move(next);
  }
  res.any_valid = level[0].valid;
  if (res.any_valid) {
    res.min_coord = level[0].coord;
    res.lane_mask = level[0].mask;
  }
  return res;
}

MinReduceResult linear_scan_min(std::span<const index_t> coords,
                                std::span<const u8> valid) {
  NMDT_REQUIRE(coords.size() == valid.size(), "coords/valid length mismatch");
  NMDT_REQUIRE(coords.size() <= 64, "linear scan limited to 64 lanes");
  MinReduceResult res;
  index_t best = std::numeric_limits<index_t>::max();
  for (usize i = 0; i < coords.size(); ++i) {
    if (!valid[i]) continue;
    ++res.comparator_ops;
    if (!res.any_valid || coords[i] < best) {
      best = coords[i];
      res.lane_mask = u64{1} << i;
      res.any_valid = true;
    } else if (coords[i] == best) {
      res.lane_mask |= u64{1} << i;
    }
  }
  if (res.any_valid) res.min_coord = best;
  return res;
}

int comparator_stages(int lanes) {
  int stages = 0;
  int width = 1;
  while (width < lanes) {
    width *= 2;
    ++stages;
  }
  return stages;
}

namespace {

/// One element under the verdict semantics of ToleranceComparator::compare.
bool element_passes(double e, double a, double bound) {
  if (std::isnan(e)) return std::isnan(a);
  if (std::isinf(e)) return std::isinf(a) && std::signbit(a) == std::signbit(e);
  if (!std::isfinite(a)) return false;
  if (bound <= 0.0) {
    // No accumulation headroom: exact match (±0 conflate via ==, but a
    // bit-compare keeps -0 vs +0 from slipping through differently
    // signed non-zero patterns; == is the agreed semantics here).
    return e == a;
  }
  return std::abs(e - a) <= bound;
}

}  // namespace

template <class V>
std::vector<double> ToleranceComparator::row_scales(const CsrT<V>& A,
                                                    const DenseMatrixT<V>& B) {
  double max_b = 0.0;
  for (const V& v : B.data()) {
    const double b = std::abs(VTraits<V>::to_f64(v));
    if (b > max_b) max_b = b;
  }
  std::vector<double> scales(static_cast<usize>(A.rows), 0.0);
  for (index_t r = 0; r < A.rows; ++r) {
    const i64 nnz = A.row_ptr[r + 1] - A.row_ptr[r];
    double max_a = 0.0;
    for (index_t k = A.row_ptr[r]; k < A.row_ptr[r + 1]; ++k) {
      const double a = std::abs(VTraits<V>::to_f64(A.val[k]));
      if (a > max_a) max_a = a;
    }
    scales[static_cast<usize>(r)] = static_cast<double>(nnz) * max_a * max_b;
  }
  return scales;
}

ToleranceVerdict ToleranceComparator::compare(const DenseMatrixT<double>& expected,
                                              const DenseMatrixT<double>& actual,
                                              std::span<const double> row_scale) const {
  NMDT_REQUIRE(expected.rows() == actual.rows() && expected.cols() == actual.cols(),
               "tolerance compare: shape mismatch");
  NMDT_REQUIRE(static_cast<usize>(expected.rows()) == row_scale.size(),
               "tolerance compare: row_scale length mismatch");
  ToleranceVerdict v;
  const index_t K = expected.cols();
  for (index_t r = 0; r < expected.rows(); ++r) {
    const double max_val = row_scale[static_cast<usize>(r)];
    const double bound = eps_ > 0.0 ? eps_ * max_val : 0.0;
    const std::span<const double> e_row = expected.row(r);
    const std::span<const double> a_row = actual.row(r);
    for (index_t c = 0; c < K; ++c) {
      const double e = e_row[static_cast<usize>(c)];
      const double a = a_row[static_cast<usize>(c)];
      ++v.compared;
      if (max_val > 0.0 && std::isfinite(e) && std::isfinite(a)) {
        const double rel = std::abs(e - a) / max_val;
        if (rel > v.max_rel_error) v.max_rel_error = rel;
      }
      if (!element_passes(e, a, bound)) {
        if (v.mismatched == 0) {
          v.first_row = r;
          v.first_col = c;
          v.first_expected = e;
          v.first_actual = a;
        }
        ++v.mismatched;
      }
    }
  }
  v.pass = v.mismatched == 0;
  return v;
}

template std::vector<double> ToleranceComparator::row_scales(const CsrT<float>&,
                                                             const DenseMatrixT<float>&);
template std::vector<double> ToleranceComparator::row_scales(const CsrT<double>&,
                                                             const DenseMatrixT<double>&);
template std::vector<double> ToleranceComparator::row_scales(const CsrT<bf16_t>&,
                                                             const DenseMatrixT<bf16_t>&);

}  // namespace nmdt
