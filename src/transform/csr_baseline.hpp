// The CSR-baseline conversion strawmen of Sec. 4.1 — why the engine's
// storage format is CSC.
//
// To cut vertical strips out of a *row-major* CSR matrix the conversion
// logic has two options, both implemented here with full cost
// accounting so bench/sec41_baseline_format can reproduce the paper's
// argument quantitatively:
//
//  * stateless — for every tile request, binary-search every row's
//    segment for the strip's column range: O(rows · log nnz_row) scan
//    work per strip pass and row_ptr traffic for all rows, repeated for
//    every request stream;
//  * stateful — keep a per-row frontier (the "jagged frontier" of
//    Fig. 12a): sequential strip walks are cheap, but the frontier is
//    4·rows bytes of metadata per consumer, and random strip access
//    degenerates to the stateless scan.
//
// The CSC engine (transform/engine.hpp) needs only strip_width+1
// col_ptr entries per strip and supports random strip access — the
// comparison table is the Sec. 4.1 design argument.
//
// Both strawmen move indices and opaque value words, so they are
// templated on the stored value type just like the engine proper: the
// cost model is precision-independent except for emitted value bytes.
#pragma once

#include "formats/csr.hpp"
#include "formats/tiling.hpp"

namespace nmdt {

struct CsrConversionCosts {
  u64 rows_scanned = 0;        ///< row segments examined
  u64 binary_search_steps = 0; ///< log-time probe steps
  u64 elements_emitted = 0;
  i64 metadata_bytes_read = 0; ///< row_ptr/frontier traffic
  i64 state_bytes = 0;         ///< persistent converter state
};

/// Stateless CSR→tiled-DCSR conversion of one strip (all its tiles).
/// Output is identical to tiled_dcsr_from_csr's strip; costs accumulate
/// into `costs`.
template <class V>
std::vector<DcsrTileT<V>> csr_stateless_convert_strip(const CsrT<V>& csr,
                                                      index_t strip_id,
                                                      const TilingSpec& spec,
                                                      CsrConversionCosts& costs);

/// Stateful CSR→tiled-DCSR converter: owns the per-row jagged frontier.
/// Strips must be visited left-to-right (sequential contract); random
/// access would require re-deriving the frontier, i.e. the stateless
/// scan.
template <class V>
class CsrStatefulConverterT {
 public:
  explicit CsrStatefulConverterT(const CsrT<V>& csr);

  /// Convert the next strip (strips must be requested in ascending
  /// order; throws FormatError otherwise).
  std::vector<DcsrTileT<V>> convert_strip(index_t strip_id, const TilingSpec& spec);

  const CsrConversionCosts& costs() const { return costs_; }

 private:
  const CsrT<V>& csr_;
  std::vector<index_t> frontier_;  ///< per-row cursor into col_idx
  index_t next_strip_ = 0;
  CsrConversionCosts costs_;
};

using CsrStatefulConverter = CsrStatefulConverterT<value_t>;

}  // namespace nmdt
