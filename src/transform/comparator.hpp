// The minimum-coordinate comparator tree of the conversion engine
// (paper Fig. 15).
//
// N lane coordinates (the row indices at each column's frontier) reduce
// through a binary tree of 2-input comparator units.  Each unit forwards
// the smaller coordinate and a bitvector marking *every* position that
// holds the minimum — ties must merge (min[3:0] = 0101 in the paper's
// example) because one engine step consumes all columns whose frontier
// sits on the same row.  The functional model mirrors that structure
// stage by stage so the unit tests can check tie handling exactly as
// the hardware would produce it, and so stage/op counts feed the
// Sec. 5.3 pipeline model.
#pragma once

#include <span>
#include <vector>

#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "util/precision.hpp"

namespace nmdt {

struct MinReduceResult {
  index_t min_coord = 0;  ///< smallest valid coordinate
  u64 lane_mask = 0;      ///< bit i set ⇔ lane i holds min_coord
  bool any_valid = false;
  u64 comparator_ops = 0; ///< 2-input comparisons performed (N-1 for N lanes)
};

/// Hierarchical reduction over up to 64 lanes. `valid[i]` false means
/// lane i has exhausted its column (boundary reached) and must not win.
MinReduceResult comparator_tree_min(std::span<const index_t> coords,
                                    std::span<const u8> valid);

/// Reference linear scan with identical semantics; the property tests
/// assert tree == reference on random inputs.
MinReduceResult linear_scan_min(std::span<const index_t> coords,
                                std::span<const u8> valid);

/// Number of tree stages for an N-input unit (log2 rounded up) — the
/// pipeline depth contribution of the comparator in Sec. 5.3.
int comparator_stages(int lanes);

// ---------------------------------------------------------------------------
// Result-tolerance comparison (the fSPMV-style verification bound).
//
// Exact bitwise comparison is the right verdict only when the kernel
// and the reference accumulate in the same precision; across precisions
// (bf16/f32 kernel vs the binary64 reference) the honest check is the
// normalized bound used by sparse BLAS test suites:
//
//     |expected - actual| / max_val < eps        (per element)
//
// where max_val bounds the magnitude the accumulation could legitimately
// reach for that C row: row_nnz(A, r) * max|A_row| * max|B|.  The bound
// scales with the number of FMAs feeding the element, so a long row is
// allowed proportionally more rounding drift than a short one.
// ---------------------------------------------------------------------------

/// Outcome of a tolerance comparison over a whole C matrix.
struct ToleranceVerdict {
  bool pass = true;
  u64 mismatched = 0;          ///< elements over the bound (or non-finite kind mismatch)
  u64 compared = 0;            ///< elements examined
  double max_rel_error = 0.0;  ///< max |e-a|/max_val over rows with max_val > 0
  index_t first_row = -1;      ///< first failing element (row-major order)
  index_t first_col = -1;
  double first_expected = 0.0;
  double first_actual = 0.0;
};

/// Element-tolerance comparator for kernel output vs the binary64
/// reference.  Stateless apart from eps; one instance can verify many
/// results.
class ToleranceComparator {
 public:
  /// eps <= 0 degenerates to exact comparison everywhere.
  explicit ToleranceComparator(double eps) : eps_(eps) {}

  double eps() const { return eps_; }

  /// Per-row magnitude bounds max_val[r] = row_nnz(r)·max|A_row|·max|B|.
  /// An empty row (or all-zero row/B) yields 0, which demands an exact
  /// match for that row — there is no accumulation to excuse drift.
  template <class V>
  static std::vector<double> row_scales(const CsrT<V>& A, const DenseMatrixT<V>& B);

  /// Compare `actual` against `expected` using per-row bounds
  /// `row_scale` (one entry per C row).  Verdict semantics:
  ///  * finite elements: fail iff |e-a| > eps·max_val (the boundary
  ///    |e-a| == eps·max_val passes);
  ///  * max_val == 0: fail unless bit-equal as doubles (±0 conflate);
  ///  * NaN expected: pass iff actual is NaN (payload ignored);
  ///  * ±Inf expected: pass iff actual is the same-signed infinity.
  ToleranceVerdict compare(const DenseMatrixT<double>& expected,
                           const DenseMatrixT<double>& actual,
                           std::span<const double> row_scale) const;

  /// Convenience: derive the bounds from (A, B) and compare.
  template <class V>
  ToleranceVerdict compare(const DenseMatrixT<double>& expected,
                           const DenseMatrixT<double>& actual, const CsrT<V>& A,
                           const DenseMatrixT<V>& B) const {
    return compare(expected, actual, row_scales(A, B));
  }

 private:
  double eps_;
};

}  // namespace nmdt
