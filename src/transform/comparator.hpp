// The minimum-coordinate comparator tree of the conversion engine
// (paper Fig. 15).
//
// N lane coordinates (the row indices at each column's frontier) reduce
// through a binary tree of 2-input comparator units.  Each unit forwards
// the smaller coordinate and a bitvector marking *every* position that
// holds the minimum — ties must merge (min[3:0] = 0101 in the paper's
// example) because one engine step consumes all columns whose frontier
// sits on the same row.  The functional model mirrors that structure
// stage by stage so the unit tests can check tie handling exactly as
// the hardware would produce it, and so stage/op counts feed the
// Sec. 5.3 pipeline model.
#pragma once

#include <span>

#include "util/types.hpp"

namespace nmdt {

struct MinReduceResult {
  index_t min_coord = 0;  ///< smallest valid coordinate
  u64 lane_mask = 0;      ///< bit i set ⇔ lane i holds min_coord
  bool any_valid = false;
  u64 comparator_ops = 0; ///< 2-input comparisons performed (N-1 for N lanes)
};

/// Hierarchical reduction over up to 64 lanes. `valid[i]` false means
/// lane i has exhausted its column (boundary reached) and must not win.
MinReduceResult comparator_tree_min(std::span<const index_t> coords,
                                    std::span<const u8> valid);

/// Reference linear scan with identical semantics; the property tests
/// assert tree == reference on random inputs.
MinReduceResult linear_scan_min(std::span<const index_t> coords,
                                std::span<const u8> valid);

/// Number of tree stages for an N-input unit (log2 rounded up) — the
/// pipeline depth contribution of the comparator in Sec. 5.3.
int comparator_stages(int lanes);

}  // namespace nmdt
