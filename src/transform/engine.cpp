#include "transform/engine.hpp"

#include <algorithm>
#include <bit>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transform/arena.hpp"
#include "transform/comparator.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace nmdt {

namespace {

/// Post-conversion corruption injection: simulates the tile being
/// damaged in transit between the engine and the consuming SM.  The CRC
/// is stamped on the pristine tile first, so any flipped bit is caught
/// by verify_dcsr_tile at the consumption point.  At most one site is
/// installed at a time; the event key derives from the tile's stable
/// coordinates plus the retry attempt, never from thread identity.
template <class V>
void maybe_corrupt_tile(DcsrTileT<V>& tile, int attempt) {
  using fault::FaultSite;
  const u64 key = fault::mix(fault::mix(static_cast<u64>(tile.strip_id),
                                        static_cast<u64>(tile.row_begin)),
                             static_cast<u64>(attempt));
  const auto flip = [&](FaultSite site, void* data, usize bytes) {
    if (!fault::should_inject(site, key)) return;
    if (fault::flip_bit(data, bytes, key)) fault::note_injected();
  };
  flip(FaultSite::kTileRowId, tile.body.row_idx.data(),
       tile.body.row_idx.size() * sizeof(index_t));
  flip(FaultSite::kTileColIdx, tile.body.col_idx.data(),
       tile.body.col_idx.size() * sizeof(index_t));
  flip(FaultSite::kTileVal, tile.body.val.data(),
       tile.body.val.size() * sizeof(V));
}

}  // namespace

template <class V>
CscDeviceLayout CscDeviceLayout::allocate(const CscT<V>& csc, MemorySystem& mem) {
  CscDeviceLayout l;
  l.col_ptr_base = mem.allocate(static_cast<i64>(csc.col_ptr.size()) * kIndexBytes,
                                "A.csc.col_ptr");
  l.row_idx_base = mem.allocate(static_cast<i64>(csc.row_idx.size()) * kIndexBytes,
                                "A.csc.row_idx");
  l.val_base = mem.allocate(static_cast<i64>(csc.val.size() * sizeof(V)), "A.csc.val");
  return l;
}

EngineStats& EngineStats::operator+=(const EngineStats& o) {
  requests += o.requests;
  steps += o.steps;
  elements += o.elements;
  comparator_ops += o.comparator_ops;
  dram_bytes_in += o.dram_bytes_in;
  xbar_bytes_out += o.xbar_bytes_out;
  return *this;
}

double EngineStats::busy_ns(const EngineHwModel& hw) const {
  // One pipeline beat per emitted DCSR row plus one beat of head/tail
  // per request (the paper argues head/tail effects are negligible —
  // one beat keeps empty-tile requests from being entirely free).
  return static_cast<double>(steps + requests) * hw.cycle_ns_sp;
}

template <class V>
StripCursor::StripCursor(const CscT<V>& csc, index_t strip_id, const TilingSpec& spec)
    : strip_id_(strip_id), col_begin_(strip_id * spec.strip_width) {
  spec.validate();
  NMDT_REQUIRE(strip_id >= 0 && col_begin_ < csc.cols,
               "strip_id out of range: " + std::to_string(strip_id));
  const index_t col_end = std::min<index_t>(col_begin_ + spec.strip_width, csc.cols);
  frontier_.reserve(static_cast<usize>(col_end - col_begin_));
  boundary_.reserve(frontier_.capacity());
  for (index_t c = col_begin_; c < col_end; ++c) {
    frontier_.push_back(csc.col_ptr[c]);
    boundary_.push_back(csc.col_ptr[c + 1]);
  }
}

ConversionEngine::ConversionEngine(EngineHwModel hw) : hw_(hw) {
  NMDT_CHECK_CONFIG(hw_.lanes > 0 && hw_.lanes <= 64,
                    "conversion engine supports 1..64 lanes");
}

template <class V>
DcsrTileT<V> ConversionEngine::convert_tile(const CscT<V>& csc, StripCursor& cursor,
                                            index_t row_start, const TilingSpec& spec,
                                            MemorySystem* mem,
                                            const CscDeviceLayout* layout,
                                            int pinned_channel, int fault_attempt) {
  DcsrTileT<V> tile;
  convert_tile_into(tile, csc, cursor, row_start, spec, mem, layout, pinned_channel,
                    fault_attempt);
  return tile;
}

template <class V>
void ConversionEngine::convert_tile_into(DcsrTileT<V>& out, const CscT<V>& csc,
                                         StripCursor& cursor, index_t row_start,
                                         const TilingSpec& spec, MemorySystem* mem,
                                         const CscDeviceLayout* layout,
                                         int pinned_channel, int fault_attempt) {
  constexpr i64 kVB = static_cast<i64>(sizeof(V));
  spec.validate();
  // Tile-granularity cancellation point: a strip conversion loop (online
  // kernel, offline tiling, planning) unwinds within one tile of a
  // cancellation request instead of finishing the whole strip.  The
  // arena scope below makes the unwind leak-free: tile scratch rewinds
  // with the stack.
  poll_cancellation();
  NMDT_REQUIRE(row_start >= 0 && row_start < csc.rows, "row_start out of range");
  NMDT_REQUIRE(row_start >= cursor.watermark(),
               "strip cursor used out of order (tile requests must be monotone)");
  NMDT_REQUIRE(cursor.lanes() <= hw_.lanes,
               "strip wider than the engine's lane count");
  static obs::Counter& tile_requests =
      obs::MetricsRegistry::global().counter("engine.tile_requests");
  tile_requests.add(1);
  obs::TraceSpan span("engine.convert_tile");
  const index_t row_end = std::min<index_t>(row_start + spec.tile_height, csc.rows);
  cursor.advance_watermark(row_end);
  const int lanes = cursor.lanes();

  out.strip_id = cursor.strip_id();
  out.row_begin = row_start;
  out.col_begin = cursor.col_begin();
  out.body.rows = row_end - row_start;
  out.body.cols = lanes;
  out.crc = 0;
  out.crc_valid = false;

  EngineStats local;
  ++local.requests;

  auto frontier = cursor.frontier();
  const auto boundary = cursor.boundary();

  // Request metadata: the SM's GetDCSRTile message plus the engine's
  // col_frontier/boundary registers are on-chip; only element fetches
  // touch DRAM.  The col_ptr arrays were read when the strip was
  // opened (frontier_ptr/boundary_ptr initialization, Fig. 14 step 1);
  // charge that on the first tile of the strip.
  const bool first_tile_of_strip = row_start == 0;
  if (first_tile_of_strip) {
    const i64 col_ptr_bytes = static_cast<i64>(lanes + 1) * kIndexBytes;
    local.dram_bytes_in += col_ptr_bytes;
    if (mem != nullptr && pinned_channel >= 0) {
      mem->engine_read_channel(pinned_channel, col_ptr_bytes);
    } else if (mem != nullptr && layout != nullptr) {
      mem->engine_read(layout->col_ptr_base +
                           static_cast<u64>(cursor.col_begin()) * kIndexBytes,
                       col_ptr_bytes);
    }
  }

  // Tile scratch from the thread-local arena (rewound on scope exit):
  // lane registers plus staging arrays sized by cheap upper bounds —
  // emitted rows are distinct coordinates in [row_start, row_end), and
  // emitted elements cannot exceed what is left of the strip.
  ConversionArena& arena = ConversionArena::local();
  const ConversionArena::Scope tile_scope(arena);
  const auto coords = arena.alloc<index_t>(static_cast<usize>(lanes));
  const auto valid = arena.alloc<u8>(static_cast<usize>(lanes));
  const usize max_rows = static_cast<usize>(row_end - row_start);
  usize max_elems = 0;
  for (int l = 0; l < lanes; ++l)
    max_elems += static_cast<usize>(boundary[l] - frontier[l]);
  const auto row_idx_s = arena.alloc<index_t>(max_rows);
  const auto row_ptr_s = arena.alloc<index_t>(max_rows + 1);
  const auto col_idx_s = arena.alloc<index_t>(max_elems);
  const auto val_s = arena.alloc<V>(max_elems);
  usize nrows = 0;
  usize nelems = 0;
  row_ptr_s[0] = 0;

  for (;;) {
    // (1)+(2): load each lane's frontier coordinate; a lane is live if
    // its column still has elements and the next one falls in this tile.
    for (int l = 0; l < lanes; ++l) {
      const bool has_element = frontier[l] < boundary[l];
      const index_t row = has_element ? csc.row_idx[frontier[l]] : 0;
      if (has_element) {
        NMDT_REQUIRE(row >= row_start,
                     "strip cursor used out of order (element above tile)");
      }
      valid[l] = has_element && row < row_end ? 1 : 0;
      coords[l] = valid[l] ? row : 0;
    }
    const MinReduceResult min = comparator_tree_min(coords, valid);
    local.comparator_ops += min.comparator_ops;
    if (!min.any_valid) break;

    // (3): emit one DCSR row from every lane holding the minimum.
    ++local.steps;
    row_idx_s[nrows] = min.min_coord - row_start;
    index_t row_elems = row_ptr_s[nrows];
    ++nrows;
    for (int l = 0; l < lanes; ++l) {
      if ((min.lane_mask >> l & 1) == 0) continue;
      const index_t src = frontier[l];
      col_idx_s[nelems] = l;
      val_s[nelems] = csc.val[src];
      ++nelems;
      ++row_elems;
      ++frontier[l];
      ++local.elements;
      local.dram_bytes_in += kIndexBytes + kVB;
      if (mem != nullptr && pinned_channel >= 0) {
        mem->engine_read_channel(pinned_channel, kIndexBytes + kVB);
      } else if (mem != nullptr && layout != nullptr) {
        mem->engine_read(layout->row_idx_base + static_cast<u64>(src) * kIndexBytes,
                         kIndexBytes);
        mem->engine_read(layout->val_base + static_cast<u64>(src) * static_cast<u64>(kVB),
                         kVB);
      }
    }
    row_ptr_s[nrows] = row_elems;
  }

  // Publish the staged rows into the caller's tile: clear-and-assign
  // keeps the vectors' capacity, so a reused tile allocates nothing
  // once warm (a fresh tile pays one exact-size allocation per array
  // instead of a push_back growth sequence).
  out.body.row_idx.assign(row_idx_s.data(), row_idx_s.data() + nrows);
  out.body.row_ptr.assign(row_ptr_s.data(), row_ptr_s.data() + nrows + 1);
  out.body.col_idx.assign(col_idx_s.data(), col_idx_s.data() + nelems);
  out.body.val.assign(val_s.data(), val_s.data() + nelems);

  // (4): stream the tile to the requesting SM over the crossbar.
  const i64 out_bytes =
      static_cast<i64>(nelems) * (kVB + kIndexBytes) +
      static_cast<i64>(nrows + 1 + nrows) * kIndexBytes;
  local.xbar_bytes_out += out_bytes;
  if (mem != nullptr) mem->xbar_transfer(out_bytes);

  stats_ += local;
  if (span.enabled()) {
    span.arg("strip", static_cast<i64>(cursor.strip_id()))
        .arg("row_begin", static_cast<i64>(row_start))
        .arg("rows_emitted", local.steps)
        .arg("elements", local.elements)
        .arg("dram_bytes_in", local.dram_bytes_in)
        .arg("xbar_bytes_out", local.xbar_bytes_out);
  }

  // Stamp the integrity fingerprint on the pristine tile, then give the
  // injection layer its shot at the in-transit copy.
  out.crc = dcsr_tile_crc(out);
  out.crc_valid = true;
  maybe_corrupt_tile(out, fault_attempt);
}

template <class V>
DcsrTileT<V> ConversionEngine::convert_tile_checked(const CscT<V>& csc,
                                                    StripCursor& cursor,
                                                    index_t row_start,
                                                    const TilingSpec& spec,
                                                    MemorySystem* mem,
                                                    const CscDeviceLayout* layout,
                                                    int pinned_channel) {
  DcsrTileT<V> tile;
  convert_tile_checked_into(tile, csc, cursor, row_start, spec, mem, layout,
                            pinned_channel);
  return tile;
}

template <class V>
void ConversionEngine::convert_tile_checked_into(DcsrTileT<V>& out, const CscT<V>& csc,
                                                 StripCursor& cursor, index_t row_start,
                                                 const TilingSpec& spec,
                                                 MemorySystem* mem,
                                                 const CscDeviceLayout* layout,
                                                 int pinned_channel) {
  const StripCursor::Snapshot snap = cursor.save();
  convert_tile_into(out, csc, cursor, row_start, spec, mem, layout, pinned_channel, 0);
  if (verify_dcsr_tile(out)) return;

  // Integrity failure at the consumption point.  The first attempt's
  // conversion itself was fault-free (corruption is applied to the
  // output copy), so its simulated DRAM/crossbar traffic and engine
  // counters already match the fault-free run exactly; retries therefore
  // run with no MemorySystem and the engine stats pinned back to the
  // post-attempt-0 value, keeping a recovered run bit-identical.  Each
  // retry refills `out` through a fresh arena scope — the rewound arena
  // hands back the same scratch bytes attempt after attempt.
  const EngineStats pinned = stats_;
  for (int attempt = 1; attempt <= fault::kMaxRetries; ++attempt) {
    fault::note_detected();
    obs::TraceSpan span("fault.retry");
    span.arg("site", "dcsr_tile")
        .arg("strip", static_cast<i64>(cursor.strip_id()))
        .arg("row_begin", static_cast<i64>(row_start))
        .arg("attempt", attempt);
    cursor.restore(snap);
    convert_tile_into(out, csc, cursor, row_start, spec, nullptr, nullptr, -1, attempt);
    stats_ = pinned;
    if (verify_dcsr_tile(out)) {
      fault::note_recovered();
      return;
    }
  }
  fault::note_detected();
  fault::note_unrecovered();
  throw FaultError("DCSR tile integrity check failed after " +
                   std::to_string(fault::kMaxRetries) + " reconversions (strip " +
                   std::to_string(cursor.strip_id()) + ", rows from " +
                   std::to_string(row_start) + ")");
}

template <class V>
std::vector<DcsrTileT<V>> ConversionEngine::convert_strip(const CscT<V>& csc,
                                                          index_t strip_id,
                                                          const TilingSpec& spec,
                                                          MemorySystem* mem,
                                                          const CscDeviceLayout* layout) {
  StripCursor cursor(csc, strip_id, spec);
  std::vector<DcsrTileT<V>> tiles;
  ConversionArena::local().reset();
  for (index_t row_start = 0; row_start < csc.rows; row_start += spec.tile_height) {
    tiles.push_back(convert_tile_checked(csc, cursor, row_start, spec, mem, layout));
  }
  return tiles;
}

template <class V>
std::vector<DcscTileT<V>> ConversionEngine::convert_strip_dcsc(const CsrT<V>& csr,
                                                               index_t strip_id,
                                                               const TilingSpec& spec) {
  // The CSR matrix is the CSC of its transpose: run the strip through
  // the normal datapath and relabel the output axes.
  const CscT<V> transposed = transpose_view(csr);
  const std::vector<DcsrTileT<V>> raw = convert_strip(transposed, strip_id, spec);
  std::vector<DcscTileT<V>> tiles;
  tiles.reserve(raw.size());
  for (const DcsrTileT<V>& t : raw) {
    DcscTileT<V> out;
    out.strip_id = t.strip_id;
    out.row_begin = t.col_begin;   // transpose: strip columns are A rows
    out.col_begin = t.row_begin;   // tile advance direction is A columns
    out.body.rows = t.body.cols;
    out.body.cols = t.body.rows;
    out.body.col_idx = t.body.row_idx;
    out.body.col_ptr = t.body.row_ptr;
    out.body.row_idx = t.body.col_idx;
    out.body.val = t.body.val;
    tiles.push_back(std::move(out));
  }
  return tiles;
}

#define NMDT_INSTANTIATE_ENGINE(V)                                                     \
  template CscDeviceLayout CscDeviceLayout::allocate(const CscT<V>&, MemorySystem&);   \
  template StripCursor::StripCursor(const CscT<V>&, index_t, const TilingSpec&);       \
  template DcsrTileT<V> ConversionEngine::convert_tile(                                \
      const CscT<V>&, StripCursor&, index_t, const TilingSpec&, MemorySystem*,         \
      const CscDeviceLayout*, int, int);                                               \
  template void ConversionEngine::convert_tile_into(                                   \
      DcsrTileT<V>&, const CscT<V>&, StripCursor&, index_t, const TilingSpec&,         \
      MemorySystem*, const CscDeviceLayout*, int, int);                                \
  template DcsrTileT<V> ConversionEngine::convert_tile_checked(                        \
      const CscT<V>&, StripCursor&, index_t, const TilingSpec&, MemorySystem*,         \
      const CscDeviceLayout*, int);                                                    \
  template void ConversionEngine::convert_tile_checked_into(                           \
      DcsrTileT<V>&, const CscT<V>&, StripCursor&, index_t, const TilingSpec&,         \
      MemorySystem*, const CscDeviceLayout*, int);                                     \
  template std::vector<DcsrTileT<V>> ConversionEngine::convert_strip(                  \
      const CscT<V>&, index_t, const TilingSpec&, MemorySystem*,                       \
      const CscDeviceLayout*);                                                         \
  template std::vector<DcscTileT<V>> ConversionEngine::convert_strip_dcsc(             \
      const CsrT<V>&, index_t, const TilingSpec&)

NMDT_INSTANTIATE_ENGINE(float);
NMDT_INSTANTIATE_ENGINE(double);
NMDT_INSTANTIATE_ENGINE(bf16_t);

#undef NMDT_INSTANTIATE_ENGINE

}  // namespace nmdt
