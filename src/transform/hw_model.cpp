#include "transform/hw_model.hpp"

#include "util/error.hpp"

namespace nmdt {

double EngineHwModel::buffer_coverage_ns(bool double_precision) const {
  const double element_bytes = double_precision ? 12.0 : 8.0;
  const double entries = static_cast<double>(buffer_bytes_per_lane) / element_bytes;
  return entries * (double_precision ? cycle_ns_dp : cycle_ns_sp);
}

bool EngineHwModel::pipeline_meets_throughput(bool double_precision) const {
  return worst_stage_ns <= (double_precision ? cycle_ns_dp : cycle_ns_sp);
}

double EngineHwModel::engine_peak_watts(bool double_precision) const {
  const double pj = double_precision ? energy_pj_per_row_dp : energy_pj_per_row_sp;
  const double cycle = double_precision ? cycle_ns_dp : cycle_ns_sp;
  return pj * 1e-12 / (cycle * 1e-9);
}

EngineSystemCosts engine_system_costs(const EngineHwModel& hw, const ArchConfig& arch) {
  arch.validate();
  NMDT_CHECK_CONFIG(hw.lanes > 0, "engine must have at least one lane");
  EngineSystemCosts c;
  c.engines = arch.pseudo_channels;
  c.total_area_mm2 = hw.area_mm2 * c.engines;
  c.area_fraction_of_die = c.total_area_mm2 / arch.die_area_mm2;
  c.peak_power_w_sp = hw.engine_peak_watts(false) * c.engines;
  c.peak_power_w_dp = hw.engine_peak_watts(true) * c.engines;
  c.power_fraction_of_tdp = c.peak_power_w_sp / arch.tdp_watts;
  c.power_fraction_of_idle = c.peak_power_w_sp / arch.idle_watts;
  c.total_buffer_bytes = hw.buffer_bytes_total() * c.engines;
  return c;
}

}  // namespace nmdt
