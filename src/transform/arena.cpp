#include "transform/arena.hpp"

#include <algorithm>

namespace nmdt {

namespace {
constexpr usize kMinChunkBytes = usize{64} * 1024;
}

ConversionArena& ConversionArena::local() {
  thread_local ConversionArena arena;
  return arena;
}

void* ConversionArena::alloc_bytes(usize bytes, usize align) {
  ++stats_.allocs;
  for (;;) {
    if (current_ < chunks_.size()) {
      Chunk& c = chunks_[current_];
      const usize aligned = (used_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        used_ = aligned + bytes;
        return c.data.get() + aligned;
      }
      // Doesn't fit: move to the next chunk (its tail is wasted until
      // the enclosing scope rewinds — bounded by one allocation).
      if (current_ + 1 < chunks_.size()) {
        ++current_;
        used_ = 0;
        continue;
      }
    }
    // Grow: double the last chunk, at least kMinChunkBytes, at least
    // the request (plus alignment slack).
    const usize last = chunks_.empty() ? 0 : chunks_.back().size;
    const usize size = std::max({kMinChunkBytes, last * 2, bytes + align});
    chunks_.push_back({std::make_unique<std::byte[]>(size), size});
    ++stats_.chunk_allocs;
    stats_.capacity_bytes += size;
    current_ = chunks_.size() - 1;
    used_ = 0;
  }
}

void ConversionArena::rewind(usize chunk, usize used) {
  ++stats_.rewinds;
  current_ = chunk;
  used_ = used;
}

void ConversionArena::reset() {
  ++stats_.resets;
  current_ = 0;
  used_ = 0;
}

}  // namespace nmdt
