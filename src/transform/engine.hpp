// The near-memory CSC→DCSR conversion engine (paper Sec. 4.2).
//
// Functional model of the walk-through in Fig. 13 / datapath in Fig. 14:
//  (1) per-lane frontier_ptr initialized from CSC col_ptr (boundary_ptr
//      holds col_ptr of the next column),
//  (2) the comparator tree finds the minimum row coordinate across lane
//      frontiers and the bitvector of lanes holding it,
//  (3) those lanes' elements are emitted as one DCSR row (row_idx = min
//      coordinate, row_ptr incremented by popcount, col_idx = lane ids),
//      and their frontiers advance,
//  (4) repeat until every lane passes the tile's row range.
//
// One engine step ⇔ one emitted DCSR row ⇔ one pipeline beat of
// cycle_ns (0.588 ns single precision, Sec. 5.3), which is the paper's
// worst-case throughput anchor (one 8-byte element per beat = the
// 13.6 GB/s a pseudo channel can deliver).
//
// The engine reads DRAM directly (it sits beside the memory controller)
// and streams its output to the requesting SM across the crossbar; both
// are accounted in the supplied MemorySystem.
#pragma once

#include <algorithm>
#include <span>

#include "formats/csc.hpp"
#include "formats/dcsc.hpp"
#include "formats/tiling.hpp"
#include "gpusim/memory_system.hpp"
#include "transform/hw_model.hpp"

namespace nmdt {

/// Device placement of the CSC arrays (for DRAM traffic attribution).
struct CscDeviceLayout {
  u64 col_ptr_base = 0;
  u64 row_idx_base = 0;
  u64 val_base = 0;

  /// Allocate the three arrays in `mem` for matrix `csc` (value array
  /// sized at the stored element width sizeof(V)).
  template <class V>
  static CscDeviceLayout allocate(const CscT<V>& csc, MemorySystem& mem);
};

struct EngineStats {
  u64 requests = 0;         ///< GetDCSRTile invocations
  u64 steps = 0;            ///< comparator beats = DCSR rows emitted
  u64 elements = 0;         ///< non-zeros converted
  u64 comparator_ops = 0;
  i64 dram_bytes_in = 0;    ///< CSC data pulled from DRAM
  i64 xbar_bytes_out = 0;   ///< DCSR tiles delivered to SMs

  bool operator==(const EngineStats&) const = default;

  EngineStats& operator+=(const EngineStats& o);

  /// Engine busy time under the Sec. 5.3 pipeline model.
  double busy_ns(const EngineHwModel& hw) const;
};

/// Per-strip conversion cursor: the col_frontier of Fig. 11/13, absolute
/// indices into the CSC row_idx/val arrays, one per lane.  Sequential
/// tile requests down a strip resume from where the previous request
/// stopped — the stateful-but-cheap design the CSC baseline enables.
class StripCursor {
 public:
  /// Open strip `strip_id` of `csc`: frontier[l] = col_ptr[c0 + l].
  /// The cursor holds indices only, so one cursor type serves every
  /// value precision.
  template <class V>
  StripCursor(const CscT<V>& csc, index_t strip_id, const TilingSpec& spec);

  index_t strip_id() const { return strip_id_; }
  index_t col_begin() const { return col_begin_; }
  int lanes() const { return static_cast<int>(frontier_.size()); }

  std::span<index_t> frontier() { return frontier_; }
  std::span<const index_t> boundary() const { return boundary_; }

  /// First row the next tile request may start at (tile requests must
  /// walk down the strip monotonically — the stateful-conversion
  /// contract of Sec. 4.1).
  index_t watermark() const { return watermark_; }
  void advance_watermark(index_t row_end) { watermark_ = std::max(watermark_, row_end); }

  /// Resumable cursor state (boundary_ is immutable, so frontier and
  /// watermark are the whole story).  Recovery paths snapshot before a
  /// tile conversion and restore to re-run it after an integrity
  /// failure.
  struct Snapshot {
    index_t watermark = 0;
    std::vector<index_t> frontier;
  };
  Snapshot save() const { return {watermark_, frontier_}; }
  void restore(const Snapshot& s) {
    watermark_ = s.watermark;
    frontier_ = s.frontier;
  }

 private:
  index_t strip_id_;
  index_t col_begin_;
  index_t watermark_ = 0;
  std::vector<index_t> frontier_;  ///< next unconsumed element per lane
  std::vector<index_t> boundary_;  ///< col_ptr of the following column
};

/// One conversion engine instance (there is one per pseudo channel in
/// the full system; EngineStats aggregates whatever work the caller
/// routes to this instance).
class ConversionEngine {
 public:
  explicit ConversionEngine(EngineHwModel hw = EngineHwModel{});

  const EngineHwModel& hw() const { return hw_; }
  const EngineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = EngineStats{}; }

  /// Convert rows [row_start, row_start + spec.tile_height) of the
  /// cursor's strip into a DCSR tile with tile-local coordinates
  /// (GetDCSRTile of Fig. 11).  Advances the cursor.  `mem` (optional)
  /// receives DRAM/crossbar traffic using `layout` addresses; when
  /// `pinned_channel >= 0` the engine's DRAM reads are charged to that
  /// pseudo channel instead (strip data placed by a sched layout
  /// policy rather than globally interleaved — Sec. 6.1).
  /// `fault_attempt` keys the deterministic corruption injection (see
  /// fault/fault.hpp): retries of the same tile redraw the fault with a
  /// fresh attempt index.  Templated on the stored value type: the
  /// datapath moves indices and opaque value words, so the identical
  /// comparator walk serves every precision — only the element width
  /// (and hence DRAM/crossbar byte counts) changes.
  template <class V>
  DcsrTileT<V> convert_tile(const CscT<V>& csc, StripCursor& cursor, index_t row_start,
                            const TilingSpec& spec, MemorySystem* mem = nullptr,
                            const CscDeviceLayout* layout = nullptr,
                            int pinned_channel = -1, int fault_attempt = 0);

  /// convert_tile into a caller-owned tile: `out` is cleared and
  /// refilled, retaining its vectors' capacity, and all transient
  /// scratch comes from the thread-local ConversionArena — so a caller
  /// that reuses one tile across a strip (the online kernel) performs
  /// zero steady-state heap allocations per tile.  Identical output and
  /// simulated accounting to convert_tile (which is now a thin wrapper
  /// over this).
  template <class V>
  void convert_tile_into(DcsrTileT<V>& out, const CscT<V>& csc, StripCursor& cursor,
                         index_t row_start, const TilingSpec& spec,
                         MemorySystem* mem = nullptr,
                         const CscDeviceLayout* layout = nullptr,
                         int pinned_channel = -1, int fault_attempt = 0);

  /// convert_tile plus the consumption-point integrity check (CRC32 +
  /// structural validate) and bounded recovery: on a mismatch the strip
  /// cursor is rewound and the tile reconverted, up to
  /// fault::kMaxRetries times, with the engine's simulated counters and
  /// DRAM/crossbar traffic pinned to the first attempt so a recovered
  /// run is bit-identical to a fault-free one.  Throws FaultError when
  /// the retry budget is exhausted.
  template <class V>
  DcsrTileT<V> convert_tile_checked(const CscT<V>& csc, StripCursor& cursor,
                                    index_t row_start, const TilingSpec& spec,
                                    MemorySystem* mem = nullptr,
                                    const CscDeviceLayout* layout = nullptr,
                                    int pinned_channel = -1);

  /// convert_tile_checked into a caller-owned tile (see
  /// convert_tile_into).  The cursor-snapshot recovery path is
  /// preserved: each retry rewinds the cursor AND refills `out` from a
  /// fresh arena scope, with engine stats pinned to attempt 0, so a
  /// recovered tile is bit-identical to a fault-free conversion.
  template <class V>
  void convert_tile_checked_into(DcsrTileT<V>& out, const CscT<V>& csc,
                                 StripCursor& cursor, index_t row_start,
                                 const TilingSpec& spec, MemorySystem* mem = nullptr,
                                 const CscDeviceLayout* layout = nullptr,
                                 int pinned_channel = -1);

  /// Convert an entire strip tile-by-tile (convenience for offline
  /// comparisons and tests).
  template <class V>
  std::vector<DcsrTileT<V>> convert_strip(const CscT<V>& csc, index_t strip_id,
                                          const TilingSpec& spec,
                                          MemorySystem* mem = nullptr,
                                          const CscDeviceLayout* layout = nullptr);

  /// Sec. 4.1 wide-matrix path: convert one *horizontal* strip of a CSR
  /// matrix into DCSC tiles.  The CSR matrix is the CSC of its
  /// transpose, so the identical datapath serves both directions; only
  /// the output labelling differs.
  template <class V>
  std::vector<DcscTileT<V>> convert_strip_dcsc(const CsrT<V>& csr, index_t strip_id,
                                               const TilingSpec& spec);

 private:
  EngineHwModel hw_;
  EngineStats stats_;
};

}  // namespace nmdt
