// Circuit-level cost model of the conversion engine (paper Sec. 5.3).
//
// The constants are the paper's published synthesis results (TSMC 16 nm
// standard cells + CACTI for the buffer): per-engine area 0.077 mm²,
// worst pipeline stage 0.339 ns, per-row energy 6.29 pJ (FP32 payload) /
// 7.09 pJ (FP64), 256 B prefetch buffer per column lane.  Everything
// else (engine count, totals, utilization power, throughput checks) is
// derived from these and an ArchConfig, which is how the paper scales
// the same design from GV100 (64 engines) to TU116 (24 engines).
#pragma once

#include "gpusim/arch.hpp"

namespace nmdt {

struct EngineHwModel {
  int lanes = 64;                      ///< DCSR output width (columns)

  // Pipeline (Sec. 5.3 "Throughput demand").
  double cycle_ns_sp = 0.588;          ///< 8 B (idx+fp32) per pseudo-channel beat
  double cycle_ns_dp = 0.882;          ///< 12 B (idx+fp64) beat
  double worst_stage_ns = 0.339;       ///< longest synthesized stage (comparator)

  // Prefetch buffer ("Internal buffer demand").
  i64 buffer_bytes_per_lane = 256;
  double frontier_update_ns = 3.3;     ///< figure out which columns to refill
  double dram_cl_ns = 15.0;            ///< column-access latency to DRAM

  // Physical costs ("Area and energy consumption").
  double area_mm2 = 0.077;             ///< one engine
  double energy_pj_per_row_sp = 6.29;  ///< worst case: 1-element DCSR row
  double energy_pj_per_row_dp = 7.09;

  i64 buffer_bytes_total() const { return buffer_bytes_per_lane * lanes; }

  /// Latency the buffer must hide: frontier bookkeeping + DRAM CL.
  double latency_to_hide_ns() const { return frontier_update_ns + dram_cl_ns; }

  /// How long the buffer can feed the worst-case drain (one lane
  /// consuming one element per beat): entries_per_lane × cycle.
  double buffer_coverage_ns(bool double_precision) const;

  /// True iff the pipeline meets the pseudo-channel delivery rate
  /// (worst stage fits in the beat) — the paper's design criterion.
  bool pipeline_meets_throughput(bool double_precision) const;

  /// Beat required to match a pseudo-channel of `bw_gbps` with an
  /// 8-byte FP32 payload, and whether the synthesized pipeline fits it
  /// — how the same engine ports to faster memories (e.g. HBM2e).
  static double required_beat_ns(double bw_gbps) { return 8.0 / bw_gbps; }
  bool pipeline_meets_bandwidth(double bw_gbps) const {
    return worst_stage_ns <= required_beat_ns(bw_gbps);
  }

  /// Peak power of one engine at full tilt (one row per beat).
  double engine_peak_watts(bool double_precision) const;
};

/// System-level accounting for `arch` with one engine per pseudo channel.
struct EngineSystemCosts {
  int engines = 0;
  double total_area_mm2 = 0.0;
  double area_fraction_of_die = 0.0;
  double peak_power_w_sp = 0.0;
  double peak_power_w_dp = 0.0;
  double power_fraction_of_tdp = 0.0;   ///< SP worst case
  double power_fraction_of_idle = 0.0;  ///< SP worst case vs idle power
  i64 total_buffer_bytes = 0;
};

EngineSystemCosts engine_system_costs(const EngineHwModel& hw, const ArchConfig& arch);

}  // namespace nmdt
