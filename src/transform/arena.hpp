// Thread-local conversion arena: a chunked bump allocator backing the
// per-tile scratch of the CSC→DCSR engine datapath.
//
// convert_tile historically allocated fresh vectors per tile (lane
// scratch + four growing tile arrays): at bench scale that is tens of
// thousands of malloc/free round trips per kernel invocation, most of
// the online kernel's non-compute time.  The arena replaces them with
// bump allocation from reusable chunks:
//
//   * per tile  — ConversionArena::Scope marks the arena on entry and
//     rewinds on exit (RAII, so a cancellation or fault unwind can
//     never leak tile scratch),
//   * per strip — the strip loop calls reset(), which drops every
//     outstanding byte but KEEPS the chunks, so steady state allocates
//     nothing from the heap,
//   * reconversion retries (convert_tile_checked) simply open a fresh
//     Scope per attempt: the rewound arena hands back the same bytes,
//     which is what makes recovered runs cheap as well as
//     bit-identical.
//
// The arena is thread_local: each kernel shard (and each suite worker)
// owns one instance, so no synchronization is needed and chunk reuse
// is perfect within a thread.  Spans handed out are raw trivially-
// destructible storage — callers never run destructors through the
// arena.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

namespace nmdt {

class ConversionArena {
 public:
  /// Observability for tests: lifetime totals of this thread's arena.
  struct Stats {
    u64 allocs = 0;        ///< alloc() calls served
    u64 chunk_allocs = 0;  ///< chunks obtained from the heap
    u64 rewinds = 0;       ///< tile scopes closed
    u64 resets = 0;        ///< strip resets
    usize capacity_bytes = 0;
  };

  /// This thread's arena (created on first use).
  static ConversionArena& local();

  /// Bump-allocate `n` elements of trivially-destructible T, aligned.
  /// Valid until the enclosing Scope closes (or reset()).
  template <class T>
  std::span<T> alloc(usize n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage never runs destructors");
    void* p = alloc_bytes(n * sizeof(T), alignof(T));
    return {static_cast<T*>(p), n};
  }

  /// Drop everything and keep the chunks: the per-strip reset.
  void reset();

  const Stats& stats() const { return stats_; }

  /// Per-tile mark/rewind (RAII).  Scopes nest (retry attempts inside a
  /// checked conversion, DCSC relabelling over DCSR conversion).
  class Scope {
   public:
    explicit Scope(ConversionArena& a)
        : arena_(a), chunk_(a.current_), used_(a.used_) {}
    ~Scope() { arena_.rewind(chunk_, used_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ConversionArena& arena_;
    usize chunk_;
    usize used_;
  };

 private:
  void* alloc_bytes(usize bytes, usize align);
  void rewind(usize chunk, usize used);

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    usize size = 0;
  };

  std::vector<Chunk> chunks_;
  usize current_ = 0;  ///< chunk being bumped
  usize used_ = 0;     ///< bytes used in chunks_[current_]
  Stats stats_;
};

}  // namespace nmdt
