#include "transform/csr_baseline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nmdt {

namespace {

/// Build the DCSR tiles of one strip given, for each row, the range of
/// its entries falling inside the strip.  `row_begin_idx[r]` /
/// `row_end_idx[r]` index into csr.col_idx.
template <class V>
std::vector<DcsrTileT<V>> assemble_tiles(const CsrT<V>& csr, index_t strip_id,
                                         const TilingSpec& spec,
                                         std::span<const index_t> row_begin_idx,
                                         std::span<const index_t> row_end_idx) {
  const index_t col_begin = strip_id * spec.strip_width;
  const index_t num_tiles = spec.tiles_per_strip(csr.rows);
  std::vector<DcsrTileT<V>> tiles(static_cast<usize>(num_tiles));
  for (index_t t = 0; t < num_tiles; ++t) {
    DcsrTileT<V>& tile = tiles[static_cast<usize>(t)];
    tile.strip_id = strip_id;
    tile.row_begin = t * spec.tile_height;
    tile.col_begin = col_begin;
    tile.body.rows = std::min<index_t>(spec.tile_height, csr.rows - tile.row_begin);
    tile.body.cols = std::min<index_t>(spec.strip_width, csr.cols - col_begin);
    tile.body.row_ptr.push_back(0);
    const index_t row_end = tile.row_begin + tile.body.rows;
    for (index_t r = tile.row_begin; r < row_end; ++r) {
      if (row_begin_idx[r] == row_end_idx[r]) continue;
      tile.body.row_idx.push_back(r - tile.row_begin);
      tile.body.row_ptr.push_back(tile.body.row_ptr.back());
      for (index_t k = row_begin_idx[r]; k < row_end_idx[r]; ++k) {
        tile.body.col_idx.push_back(csr.col_idx[k] - col_begin);
        tile.body.val.push_back(csr.val[k]);
        ++tile.body.row_ptr.back();
      }
    }
  }
  return tiles;
}

/// Binary search for the first entry of row r with col >= bound,
/// counting probe steps.
template <class V>
index_t lower_bound_col(const CsrT<V>& csr, index_t r, index_t bound, u64& steps) {
  index_t lo = csr.row_ptr[r];
  index_t hi = csr.row_ptr[r + 1];
  while (lo < hi) {
    ++steps;
    const index_t mid = lo + (hi - lo) / 2;
    if (csr.col_idx[mid] < bound) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

template <class V>
std::vector<DcsrTileT<V>> csr_stateless_convert_strip(const CsrT<V>& csr,
                                                      index_t strip_id,
                                                      const TilingSpec& spec,
                                                      CsrConversionCosts& costs) {
  spec.validate();
  NMDT_REQUIRE(strip_id >= 0 && strip_id < spec.num_strips(csr.cols),
               "strip_id out of range");
  const index_t col_begin = strip_id * spec.strip_width;
  const index_t col_end = std::min<index_t>(col_begin + spec.strip_width, csr.cols);

  std::vector<index_t> begin_idx(static_cast<usize>(csr.rows));
  std::vector<index_t> end_idx(static_cast<usize>(csr.rows));
  for (index_t r = 0; r < csr.rows; ++r) {
    // Every row of the matrix is probed per strip — the "scan each row
    // and find non-zero entries such that colidx in [c, c+N)" cost the
    // paper calls prohibitive.
    ++costs.rows_scanned;
    costs.metadata_bytes_read += 2 * kIndexBytes;  // row_ptr pair
    begin_idx[r] = lower_bound_col(csr, r, col_begin, costs.binary_search_steps);
    end_idx[r] = lower_bound_col(csr, r, col_end, costs.binary_search_steps);
    costs.elements_emitted += static_cast<u64>(end_idx[r] - begin_idx[r]);
  }
  // Stateless: no persistent state at all.
  return assemble_tiles(csr, strip_id, spec, begin_idx, end_idx);
}

template <class V>
CsrStatefulConverterT<V>::CsrStatefulConverterT(const CsrT<V>& csr) : csr_(csr) {
  frontier_.assign(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  // The jagged frontier: one cursor per matrix row, resident for the
  // whole conversion — this is the "large metadata storage" of Sec. 4.1.
  costs_.state_bytes = static_cast<i64>(frontier_.size()) * kIndexBytes;
}

template <class V>
std::vector<DcsrTileT<V>> CsrStatefulConverterT<V>::convert_strip(index_t strip_id,
                                                                  const TilingSpec& spec) {
  spec.validate();
  NMDT_REQUIRE(strip_id == next_strip_,
               "stateful CSR converter requires sequential strip access (expected strip " +
                   std::to_string(next_strip_) + ")");
  ++next_strip_;
  const index_t col_end = std::min<index_t>((strip_id + 1) * spec.strip_width, csr_.cols);

  std::vector<index_t> begin_idx(static_cast<usize>(csr_.rows));
  std::vector<index_t> end_idx(static_cast<usize>(csr_.rows));
  for (index_t r = 0; r < csr_.rows; ++r) {
    ++costs_.rows_scanned;
    // Read and advance this row's frontier — linear within the strip,
    // but still touches every row's cursor every strip.
    costs_.metadata_bytes_read += 2 * kIndexBytes;  // frontier load + store
    begin_idx[r] = frontier_[r];
    index_t k = frontier_[r];
    while (k < csr_.row_ptr[r + 1] && csr_.col_idx[k] < col_end) ++k;
    end_idx[r] = k;
    frontier_[r] = k;
    costs_.elements_emitted += static_cast<u64>(end_idx[r] - begin_idx[r]);
  }
  return assemble_tiles(csr_, strip_id, spec, begin_idx, end_idx);
}

#define NMDT_INSTANTIATE_CSR_BASELINE(V)                                        \
  template std::vector<DcsrTileT<V>> csr_stateless_convert_strip<V>(            \
      const CsrT<V>&, index_t, const TilingSpec&, CsrConversionCosts&);         \
  template class CsrStatefulConverterT<V>;

NMDT_INSTANTIATE_CSR_BASELINE(float)
NMDT_INSTANTIATE_CSR_BASELINE(double)
NMDT_INSTANTIATE_CSR_BASELINE(bf16_t)

#undef NMDT_INSTANTIATE_CSR_BASELINE

}  // namespace nmdt
