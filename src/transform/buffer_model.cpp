#include "transform/buffer_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nmdt {

BufferSimResult simulate_prefetch_buffer(const EngineHwModel& hw,
                                         std::span<const int> lane_trace,
                                         bool double_precision) {
  const double element_bytes = double_precision ? 12.0 : 8.0;
  const i64 capacity =
      std::max<i64>(1, static_cast<i64>(static_cast<double>(hw.buffer_bytes_per_lane) /
                                        element_bytes));
  const double beat_ns = double_precision ? hw.cycle_ns_dp : hw.cycle_ns_sp;
  const double refill_beats_f = hw.latency_to_hide_ns() / beat_ns;
  const i64 refill_beats = static_cast<i64>(std::ceil(refill_beats_f));

  int max_lane = -1;
  for (int l : lane_trace) {
    NMDT_REQUIRE(l >= 0 && l < hw.lanes, "lane id out of range in trace");
    max_lane = std::max(max_lane, l);
  }
  const usize lanes = static_cast<usize>(max_lane + 1);

  // Per lane: current occupancy and the arrival beats of in-flight
  // refills (a FIFO; refills issue the moment a slot frees).
  std::vector<i64> occupancy(lanes, capacity);
  std::vector<std::vector<i64>> inflight(lanes);

  BufferSimResult res;
  i64 now = 0;
  for (int lane : lane_trace) {
    auto& fifo = inflight[static_cast<usize>(lane)];
    i64& occ = occupancy[static_cast<usize>(lane)];
    // Retire arrivals up to now.
    usize arrived = 0;
    while (arrived < fifo.size() && fifo[arrived] <= now) ++arrived;
    occ += static_cast<i64>(arrived);
    fifo.erase(fifo.begin(), fifo.begin() + static_cast<i64>(arrived));

    if (occ == 0) {
      // Stall until the next in-flight element lands.
      NMDT_REQUIRE(!fifo.empty(), "buffer empty with no refill in flight");
      const i64 wake = fifo.front();
      res.stall_beats += static_cast<u64>(wake - now);
      now = wake;
      fifo.erase(fifo.begin());
      occ += 1;
    }
    // Consume one element; its slot immediately refills from DRAM.
    --occ;
    fifo.push_back(now + refill_beats);
    ++res.productive_beats;
    ++now;
  }
  return res;
}

std::vector<int> single_lane_trace(i64 n) {
  NMDT_REQUIRE(n >= 0, "trace length must be non-negative");
  return std::vector<int>(static_cast<usize>(n), 0);
}

std::vector<int> conversion_lane_trace(const Csc& csc, index_t strip_id,
                                       const TilingSpec& spec) {
  spec.validate();
  const index_t col_begin = strip_id * spec.strip_width;
  NMDT_REQUIRE(col_begin >= 0 && col_begin < csc.cols, "strip_id out of range");
  const index_t col_end = std::min<index_t>(col_begin + spec.strip_width, csc.cols);

  // (row, lane) pairs of every element in the strip, in emission order.
  std::vector<std::pair<index_t, int>> elems;
  for (index_t c = col_begin; c < col_end; ++c) {
    for (index_t k = csc.col_ptr[c]; k < csc.col_ptr[c + 1]; ++k) {
      elems.emplace_back(csc.row_idx[k], static_cast<int>(c - col_begin));
    }
  }
  std::sort(elems.begin(), elems.end());
  std::vector<int> trace;
  trace.reserve(elems.size());
  for (const auto& [row, lane] : elems) {
    (void)row;
    trace.push_back(lane);
  }
  return trace;
}

}  // namespace nmdt
