#include "fault/fault.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nmdt::fault {

const char* site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kNone: return "none";
    case FaultSite::kTileRowId: return "tile_row_id";
    case FaultSite::kTileColIdx: return "tile_col_idx";
    case FaultSite::kTileVal: return "tile_val";
    case FaultSite::kCacheEntry: return "cache_entry";
    case FaultSite::kSuiteArm: return "suite_arm";
    case FaultSite::kShardExec: return "shard_exec";
    case FaultSite::kSerializedStream: return "serialized_stream";
    case FaultSite::kWorkerAbort: return "worker_abort";
    case FaultSite::kWorkerHang: return "worker_hang";
  }
  return "unknown";
}

FaultSite parse_site(const std::string& name) {
  for (FaultSite s : {FaultSite::kNone, FaultSite::kTileRowId, FaultSite::kTileColIdx,
                      FaultSite::kTileVal, FaultSite::kCacheEntry, FaultSite::kSuiteArm,
                      FaultSite::kShardExec, FaultSite::kSerializedStream,
                      FaultSite::kWorkerAbort, FaultSite::kWorkerHang}) {
    if (name == site_name(s)) return s;
  }
  throw ConfigError("unknown fault site '" + name +
                    "' (expected one of: none, tile_row_id, tile_col_idx, tile_val, "
                    "cache_entry, suite_arm, shard_exec, serialized_stream, "
                    "worker_abort, worker_hang)");
}

namespace {

/// splitmix64: the standard 64-bit finalizer — enough avalanche that
/// threshold comparison approximates an independent Bernoulli draw per
/// (seed, site, key) triple.
u64 splitmix64(u64 x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

u64 rate_to_threshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~u64{0};
  // 2^64 * rate, computed in long double to keep the top bits honest.
  return static_cast<u64>(std::ldexp(static_cast<long double>(rate), 64));
}

double threshold_to_rate(u64 threshold) {
  if (threshold == ~u64{0}) return 1.0;
  return static_cast<double>(std::ldexp(static_cast<long double>(threshold), -64));
}

}  // namespace

FaultInjector& FaultInjector::global() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::install(const FaultPlan& plan) {
  site_.store(static_cast<int>(plan.site), std::memory_order_relaxed);
  threshold_.store(rate_to_threshold(plan.rate), std::memory_order_relaxed);
  seed_.store(plan.seed, std::memory_order_relaxed);
}

FaultPlan FaultInjector::plan() const {
  FaultPlan p;
  p.site = static_cast<FaultSite>(site_.load(std::memory_order_relaxed));
  p.rate = threshold_to_rate(threshold_.load(std::memory_order_relaxed));
  p.seed = seed_.load(std::memory_order_relaxed);
  return p;
}

bool FaultInjector::should_inject(FaultSite site, u64 key) const {
  if (site == FaultSite::kNone) return false;
  if (static_cast<FaultSite>(site_.load(std::memory_order_relaxed)) != site) return false;
  const u64 threshold = threshold_.load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  const u64 seed = seed_.load(std::memory_order_relaxed);
  const u64 draw =
      splitmix64(seed ^ splitmix64(static_cast<u64>(site) ^ splitmix64(key)));
  if (threshold == ~u64{0}) return true;  // rate 1.0: every event fires
  return draw < threshold;
}

FaultScope::FaultScope(const FaultPlan& plan) : prev_(FaultInjector::global().plan()) {
  FaultInjector::global().install(plan);
}

FaultScope::~FaultScope() { FaultInjector::global().install(prev_); }

u64 mix(u64 a, u64 b) { return splitmix64(a ^ splitmix64(b)); }

bool should_inject(FaultSite site, u64 key) {
  return FaultInjector::global().should_inject(site, key);
}

namespace {
obs::Counter& fault_counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}
}  // namespace

void note_injected() {
  static obs::Counter& c = fault_counter("fault.injected");
  c.add(1);
}
void note_detected() {
  static obs::Counter& c = fault_counter("fault.detected");
  c.add(1);
}
void note_recovered() {
  static obs::Counter& c = fault_counter("fault.recovered");
  c.add(1);
}
void note_unrecovered() {
  static obs::Counter& c = fault_counter("fault.unrecovered");
  c.add(1);
}

bool flip_bit(void* data, usize bytes, u64 key) {
  if (bytes == 0) return false;
  const u64 bit = mix(key, 0x51BB1EDB17ULL) % (static_cast<u64>(bytes) * 8);
  static_cast<u8*>(data)[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
  return true;
}

void transient_point(FaultSite site, u64 key) {
  // Fast path: no plan targeting this site (the rate-0 bitwise no-op).
  if (!should_inject(site, mix(key, 0))) return;
  int injected = 0;
  for (int attempt = 0;; ++attempt) {
    if (!should_inject(site, mix(key, static_cast<u64>(attempt)))) {
      // The transient cleared on this re-run: every prior injection in
      // the sequence is accounted as recovered.
      for (int i = 0; i < injected; ++i) note_recovered();
      return;
    }
    note_injected();
    note_detected();
    ++injected;
    if (attempt >= kMaxRetries) {
      note_unrecovered();
      throw FaultError(std::string("injected transient failure at ") + site_name(site) +
                       " persisted through " + std::to_string(kMaxRetries) + " retries");
    }
    obs::TraceSpan span("fault.retry");
    span.arg("site", site_name(site)).arg("attempt", attempt + 1);
  }
}

}  // namespace nmdt::fault
