// Deterministic fault injection, detection accounting, and bounded
// retry for the transform → plan → cache → execute pipeline.
//
// The paper's central artifact — a near-memory unit fabricating tiled
// DCSR from CSC on demand (Sec. 4) — would, in real hardware, fail most
// dangerously by *silently* corrupting tile metadata or values.  This
// subsystem lets the functional model rehearse exactly that: a seeded
// FaultPlan names one injection site and a per-event probability, and
// every site's consumer pairs the injection with an integrity check
// (CRC32, structural validate(), fingerprint re-verification) plus a
// bounded deterministic recovery path.  The contract is strict: every
// injected fault ends as detected + recovered (outputs bit-identical to
// the fault-free run) or as a typed FaultError surfaced to the caller —
// never silent corruption.  With the site unset or the rate at zero the
// layer is a bitwise no-op.
//
// Determinism: an injection decision is a pure hash of (seed, site,
// event key), where the key derives from stable work coordinates
// (strip/tile ids, suite row × arm, shard index, fingerprints) — never
// from thread identity or shared counters — so the same faults fire at
// any --jobs and results stay comparable across job counts.
#pragma once

#include <atomic>
#include <string>

#include "util/types.hpp"

namespace nmdt::fault {

/// Named injection sites.  One plan targets one site; sweeps iterate.
enum class FaultSite : int {
  kNone = 0,
  kTileRowId,         ///< bit flip in a converted DCSR tile's row_idx
  kTileColIdx,        ///< bit flip in a converted DCSR tile's col_idx
  kTileVal,           ///< bit flip in a converted DCSR tile's val
  kCacheEntry,        ///< corrupted PlanCache entry observed on lookup
  kSuiteArm,          ///< transient (throwing) failure in a suite arm
  kShardExec,         ///< transient (throwing) failure in a kernel shard
  kSerializedStream,  ///< truncation of a serialized matrix on load
  kWorkerAbort,       ///< supervised worker process abort()s on task receipt
  kWorkerHang,        ///< supervised worker process wedges (heartbeats stop)
};

const char* site_name(FaultSite site);

/// Parse a site from its CLI spelling ("tile_val", "cache_entry", ...);
/// throws ConfigError on unknown names.
FaultSite parse_site(const std::string& name);

/// What to inject: one site, a per-event probability, and the seed that
/// makes the event sequence reproducible.
struct FaultPlan {
  FaultSite site = FaultSite::kNone;
  double rate = 0.0;  ///< per-event injection probability in [0, 1]
  u64 seed = 0;

  bool enabled() const { return site != FaultSite::kNone && rate > 0.0; }
  bool operator==(const FaultPlan&) const = default;
};

/// Retry budget shared by every recovery path (tile reconversion,
/// transient suite-arm / shard restarts): the initial attempt plus
/// kMaxRetries re-tries, after which a FaultError surfaces.
inline constexpr int kMaxRetries = 3;

/// Process-wide injector.  The plan is stored in relaxed atomics so hot
/// paths read it lock-free; concurrent installs of *different* plans
/// are unsupported (install from single-threaded points: CLI startup,
/// test bodies, run_suite entry).
class FaultInjector {
 public:
  static FaultInjector& global();

  void install(const FaultPlan& plan);
  FaultPlan plan() const;

  /// Pure decision: does the event identified by `key` inject at
  /// `site`?  False whenever the installed plan targets another site or
  /// the rate is zero — the rate-0 / site-none bitwise-no-op guarantee.
  bool should_inject(FaultSite site, u64 key) const;

 private:
  std::atomic<int> site_{0};
  std::atomic<u64> threshold_{0};  ///< rate mapped onto [0, 2^64)
  std::atomic<u64> seed_{0};
};

/// RAII plan installation (restores the previous plan on destruction).
class FaultScope {
 public:
  explicit FaultScope(const FaultPlan& plan);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultPlan prev_;
};

/// Deterministic 64-bit key combiner (splitmix64 finalization).
u64 mix(u64 a, u64 b);

/// Convenience: FaultInjector::global().should_inject(site, key).
bool should_inject(FaultSite site, u64 key);

// Fault lifecycle accounting into MetricsRegistry.  Invariant the chaos
// suite pins: fault.detected == fault.injected for detectable sites,
// and every detection sequence ends in exactly one recovered or
// unrecovered event.
void note_injected();
void note_detected();
void note_recovered();
void note_unrecovered();

/// Flip one deterministic bit of `bytes` bytes at `data` (bit position
/// is a pure function of `key`).  Returns false on an empty buffer —
/// nothing to corrupt, so the caller must not count an injection.
bool flip_bit(void* data, usize bytes, u64 key);

/// Transient-failure injection point for restartable work units (suite
/// arms, kernel shards): called *before* the unit does any work, so a
/// retry is a clean re-run.  Each attempt re-draws the injection with
/// the attempt index mixed into the key; recovered retries are counted
/// and traced ("fault.retry" spans), and kMaxRetries consecutive
/// injections surface a FaultError.
void transient_point(FaultSite site, u64 key);

}  // namespace nmdt::fault
