// Per-pseudo-channel DRAM bank/row-buffer timing.
//
// A flat bytes/bandwidth model treats all access patterns alike; real
// HBM2 serves row-buffer hits at the pin rate but pays
// precharge+activate on row misses, partially hidden by bank-level
// parallelism.  This is exactly the axis the paper's formats sit on:
// the engine's CSC column walks are sequential (row-buffer friendly)
// while an SM chasing scattered B rows misses often.  The model keeps
// one open row per bank and accumulates channel busy time:
//
//   busy += bytes / pin_bandwidth  (+ row_miss_penalty / bank_parallelism on miss)
#pragma once

#include <vector>

#include "gpusim/arch.hpp"

namespace nmdt {

class DramChannelSim {
 public:
  explicit DramChannelSim(const ArchConfig& arch);

  /// Addressed access (row tracking at `dram_row_bytes` granularity).
  void access(u64 addr, i64 bytes);

  /// Sequential stream with guaranteed row locality (the engine's
  /// prefetch-buffered column bursts): pure transfer time.
  void stream(i64 bytes);

  double busy_ns() const { return busy_ns_; }
  u64 row_hits() const { return row_hits_; }
  u64 row_misses() const { return row_misses_; }
  double row_hit_rate() const {
    const u64 total = row_hits_ + row_misses_;
    return total == 0 ? 1.0 : static_cast<double>(row_hits_) / static_cast<double>(total);
  }

  void reset();

 private:
  int banks_;
  i64 row_bytes_;
  double ns_per_byte_;
  double miss_penalty_ns_;  ///< already divided by bank parallelism
  double busy_ns_ = 0.0;
  u64 row_hits_ = 0;
  u64 row_misses_ = 0;
  std::vector<u64> open_row_;  ///< per bank; sentinel ~0 = closed
};

}  // namespace nmdt
