#include "gpusim/dram.hpp"

#include "util/error.hpp"

namespace nmdt {

DramChannelSim::DramChannelSim(const ArchConfig& arch)
    : banks_(arch.dram_banks_per_channel),
      row_bytes_(arch.dram_row_bytes),
      ns_per_byte_(1.0 / arch.bw_per_channel_gbps),
      miss_penalty_ns_(arch.dram_row_miss_penalty_ns / arch.dram_bank_parallelism) {
  NMDT_CHECK_CONFIG(banks_ > 0 && row_bytes_ > 0, "DRAM geometry must be positive");
  open_row_.assign(static_cast<usize>(banks_), ~u64{0});
}

void DramChannelSim::access(u64 addr, i64 bytes) {
  if (bytes <= 0) return;
  busy_ns_ += static_cast<double>(bytes) * ns_per_byte_;
  const u64 global_row = addr / static_cast<u64>(row_bytes_);
  const usize bank = static_cast<usize>(global_row % static_cast<u64>(banks_));
  const u64 row = global_row / static_cast<u64>(banks_);
  if (open_row_[bank] == row) {
    ++row_hits_;
  } else {
    ++row_misses_;
    open_row_[bank] = row;
    busy_ns_ += miss_penalty_ns_;
  }
}

void DramChannelSim::stream(i64 bytes) {
  if (bytes <= 0) return;
  busy_ns_ += static_cast<double>(bytes) * ns_per_byte_;
  ++row_hits_;
}

void DramChannelSim::reset() {
  busy_ns_ = 0.0;
  row_hits_ = 0;
  row_misses_ = 0;
  open_row_.assign(open_row_.size(), ~u64{0});
}

}  // namespace nmdt
