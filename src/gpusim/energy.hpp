// Whole-kernel energy accounting — the quantitative backing for the
// paper's Sec. 5.3 claim that "our average speedup (2.26×) more than
// amortizes the added power and energy": engine energy per converted
// row is orders of magnitude below the DRAM traffic it saves.
//
// Per-event energies are first-order public numbers: HBM2 access
// ≈ 3.9 pJ/bit, on-die SRAM a few pJ per 32 B sector, the engine's
// 6.29 pJ/row from the paper's synthesis, and a per-warp-instruction
// core cost.  Static energy charges idle power over the kernel's
// modelled runtime.
#pragma once

#include "gpusim/arch.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/memory_system.hpp"
#include "gpusim/timing.hpp"

namespace nmdt {

struct EnergyModel {
  double dram_pj_per_byte = 31.0;  ///< HBM2 ≈ 3.9 pJ/bit
  double l2_pj_per_byte = 1.2;     ///< on-die SRAM slice access
  double xbar_pj_per_byte = 0.6;   ///< on-die interconnect transfer
  double instr_pj = 45.0;          ///< per warp instruction, issue+execute
  double engine_pj_per_row = 6.29; ///< Sec. 5.3, FP32 payload
};

struct EnergyBreakdown {
  double dram_uj = 0.0;
  double l2_uj = 0.0;
  double xbar_uj = 0.0;
  double core_uj = 0.0;
  double engine_uj = 0.0;
  double static_uj = 0.0;  ///< idle power × runtime

  double total_uj() const {
    return dram_uj + l2_uj + xbar_uj + core_uj + engine_uj + static_uj;
  }
};

/// Energy of one kernel execution from its counters, memory statistics,
/// engine beats, and modelled runtime.
EnergyBreakdown estimate_energy(const EnergyModel& model, const ArchConfig& arch,
                                const KernelCounters& counters, const MemStats& mem,
                                u64 engine_rows, const TimingBreakdown& timing);

}  // namespace nmdt
