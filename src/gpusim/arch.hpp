// GPU architecture configuration (the paper's HW baseline, Sec. 5.1).
//
// Presets model the evaluation GPU (GV100: 80 SMs @1.53 GHz, 96 KB
// shared memory/SM, 6 MiB L2, 16 GB HBM2 on 64 pseudo channels of
// 13.6 GB/s = 870 GB/s aggregate, 815 mm², 250 W) and the TU116 scaling
// point of Sec. 5.3 (284 mm², 24 GDDR6 channels × 12 GB/s = 288 GB/s).
// Every model in gpusim/, transform/ and kernels/ is parameterized by
// this struct, so alternative machines are one preset away.
#pragma once

#include <string>

#include "util/types.hpp"

namespace nmdt {

struct ArchConfig {
  std::string name = "GV100";

  // Compute.
  int num_sms = 80;
  int warp_size = 32;
  int issue_slots_per_sm = 4;      ///< warp instructions issued /cycle/SM
  /// Fraction of issue slots filled in steady state (dependency and
  /// pipeline stalls — NVPROF's "SM" stall bucket in Fig. 2 — keep real
  /// kernels well below peak issue).
  double issue_efficiency = 0.3;
  double core_clock_ghz = 1.53;
  double peak_fp32_tflops = 15.7;
  i64 shared_mem_per_sm = 96 * 1024;

  // L2 (sectored, NVIDIA-style: 128 B lines of 4 × 32 B sectors; misses
  // fill only the touched sector).
  i64 l2_bytes = 6144 * 1024;
  int l2_ways = 16;
  int l2_line_bytes = 128;
  int l2_sector_bytes = 32;
  /// Aggregate L2 service bandwidth.  Atomics resolve at the LLC
  /// (partial C tiles cache there, Sec. 3.1.1) but consume
  /// atomic_cost_multiplier× of this bandwidth — the "atomic bandwidth"
  /// that limits B-stationary on scattered matrices.
  double l2_bandwidth_gbps = 2000.0;

  // Memory system.
  int fb_partitions = 8;           ///< frame-buffer partitions (MC units)
  int pseudo_channels = 64;        ///< HBM2 pseudo channels (engine sites)
  double bw_per_channel_gbps = 13.6;
  double dram_cl_ns = 15.0;        ///< column-access latency (Sec. 5.3)
  i64 interleave_bytes = 256;      ///< address interleave granule
  double atomic_cost_multiplier = 2.0;  ///< Table 1: atomic ≈ 2× access
  // Bank/row-buffer timing (gpusim/dram.hpp; cache-sim mode only).
  int dram_banks_per_channel = 16;
  i64 dram_row_bytes = 2048;
  double dram_row_miss_penalty_ns = 26.0;  ///< tRP + tRCD
  double dram_bank_parallelism = 4.0;      ///< activate overlap factor

  // Crossbar between L2/MC partitions and SMs.  Large on-die bandwidth
  // the online engine exploits for tile delivery (Sec. 7).
  double xbar_bandwidth_gbps = 2500.0;

  // Physical envelope (Sec. 5.3 accounting).
  double die_area_mm2 = 815.0;
  double tdp_watts = 250.0;
  double idle_watts = 23.0;

  // Kernel launch overhead charged once per kernel grid.
  double launch_overhead_ns = 2000.0;

  // Latency-bound regime parameters: a warp visiting a work item (a
  // row, a tile) pays a dependent-load chain of ~DRAM latency before it
  // can retire, and each serial inner-loop iteration adds a pipelined
  // step.  With mostly-empty rows (Fig. 5/6) a CSR kernel's runtime is
  // set by these visits rather than by bandwidth — the regime DCSR's
  // densification removes.
  double visit_latency_ns = 400.0;   ///< dependent-load chain per warp visit
  double iter_latency_ns = 8.0;      ///< pipelined serial loop iteration
  int max_warps_per_sm = 64;         ///< resident warps hiding that latency

  double total_bandwidth_gbps() const { return pseudo_channels * bw_per_channel_gbps; }

  /// Throw ConfigError on inconsistent settings.
  void validate() const;

  static ArchConfig gv100();
  static ArchConfig tu116();
  /// Post-paper scaling point: an A100-class machine (HBM2e, 1555 GB/s
  /// over 80 pseudo channels).  The engine cost model scales with the
  /// channel count exactly as the paper argues ("the cost of the
  /// transform engine is proportional to the memory bandwidth").
  static ArchConfig a100();
};

}  // namespace nmdt
