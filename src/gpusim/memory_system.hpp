// The GPU memory system model: device allocations, warp request
// coalescing, optional L2 simulation, and per-pseudo-channel DRAM
// traffic accounting.
//
// Two fidelity modes (DESIGN.md Sec. 5):
//  * kCounting — requests bypass the L2 and count straight into DRAM
//    channel totals.  Kernels already encode shared-memory reuse
//    explicitly, so this mode measures *compulsory* traffic, matching
//    the Table 1 analytical model.  Cheap enough for thousand-matrix
//    suite sweeps.
//  * kCacheSim — requests run through the sectored L2; only misses
//    reach DRAM.  Used for traversal-order and locality experiments.
//
// Atomic read-modify-writes are charged atomic_cost_multiplier× at the
// channel, the paper's "atomic bandwidth = 2× memory access" model.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/dram.hpp"
#include "gpusim/interleave.hpp"

namespace nmdt {

enum class MemMode { kCounting, kCacheSim };

struct ChannelStats {
  i64 read_bytes = 0;
  i64 write_bytes = 0;
  i64 atomic_bytes = 0;  ///< already includes the 2× multiplier
  i64 requests = 0;
  // Bank/row-buffer timing (cache-sim mode; zero in counting mode).
  double busy_ns = 0.0;
  u64 row_hits = 0;
  u64 row_misses = 0;

  bool operator==(const ChannelStats&) const = default;

  i64 total_bytes() const { return read_bytes + write_bytes + atomic_bytes; }
};

struct MemStats {
  std::vector<ChannelStats> channels;
  CacheStats l2;
  i64 xbar_bytes = 0;  ///< engine→SM tile delivery over the crossbar
  i64 l2_service_bytes = 0;   ///< all SM traffic serviced by the LLC
  i64 atomic_rmw_bytes = 0;   ///< atomic portion (pays the 2× LLC cost)
  /// DRAM bytes attributed to the allocation each access fell into
  /// (keyed by the allocation's name) — lets the Table 1 bench compare
  /// per-operand traffic against the analytical model.
  std::map<std::string, i64> operand_bytes;

  bool operator==(const MemStats&) const = default;

  i64 total_dram_bytes() const;
  i64 max_channel_bytes() const;
  /// Worst channel service time: bytes/bandwidth or, when the bank
  /// model ran, its busy time including row-miss penalties.
  double max_channel_service_ns(double bw_per_channel_gbps) const;
  /// Aggregate row-buffer hit rate (1.0 when the bank model did not run).
  double dram_row_hit_rate() const;

  /// Merge another run's statistics (used by composite kernels that
  /// execute phases on separate memory-system instances).
  MemStats& operator+=(const MemStats& o);
  /// Max-over-partitions of partition traffic (the camping metric's
  /// numerator), given channels grouped consecutively.
  i64 max_partition_bytes(int fb_partitions) const;
};

class MemorySystem {
 public:
  MemorySystem(const ArchConfig& arch, MemMode mode);

  const ArchConfig& arch() const { return arch_; }
  MemMode mode() const { return mode_; }

  /// Reserve a device array; returns its base address.  Bases are
  /// granule-aligned and separated so arrays never share a granule.
  u64 allocate(i64 bytes, const std::string& name);

  /// A warp-coalesced read of [addr, addr+bytes): split into 32 B
  /// sectors, each counted once (perfect intra-warp coalescing).
  void warp_load(u64 addr, i64 bytes);
  void warp_store(u64 addr, i64 bytes);
  /// Atomic RMW on [addr, addr+bytes): charged 2× at the owning channel.
  void warp_atomic(u64 addr, i64 bytes);

  /// Test hook: when disabled, counting-mode warp requests take the
  /// generic per-sector event path instead of the granule-aggregated
  /// counting fast path, so tests can pin the two bit-identical.
  /// Process-global; call between runs only.  Default: enabled.
  static void set_counting_fast_path_for_test(bool enabled);
  static bool counting_fast_path_enabled();

  /// Batched equivalents: one call per *run* of same-sized warp requests
  /// (a row's B-row fetches, a tile's per-row C atomics).  Addresses are
  /// processed in order, so byte / hit / row-buffer accounting is
  /// identical to issuing the per-entry calls one by one (asserted by
  /// tests); the win is bookkeeping — in counting mode the per-sector
  /// event plumbing collapses to plain arithmetic, and the allocation
  /// lookup for operand attribution is cached across the run.
  void warp_load_run(std::span<const u64> addrs, i64 bytes_each);
  void warp_atomic_run(std::span<const u64> addrs, i64 bytes_each);

  /// Direct DRAM read issued by a near-memory engine (bypasses L2 — the
  /// engine sits beside the memory controller).
  void engine_read(u64 addr, i64 bytes);
  /// Engine read pinned to an explicit channel — used when a placement
  /// policy (sched/layout.hpp) locates a strip's data in one partition
  /// instead of globally interleaving it.  Attributed to operand
  /// `tag` (the engine always reads the sparse input).
  void engine_read_channel(int channel, i64 bytes, const char* tag = "A");
  /// Engine output streamed to an SM across the crossbar (never touches
  /// DRAM).
  void xbar_transfer(i64 bytes);

  const MemStats& stats() const { return stats_; }
  const Interleaver& interleaver() const { return interleave_; }

  /// Fold another shard's statistics into this instance (intra-kernel
  /// sharding: each shard records events into a private MemorySystem
  /// that replayed the identical allocation sequence; the merged totals
  /// equal the serial run's in counting mode because every per-sector
  /// contribution is order-independent there).  Requires matching mode
  /// and channel geometry.
  void merge(const MemorySystem& other);

  void reset_stats();

 private:
  void dram_access(u64 addr, i64 bytes, int kind);  // 0=read,1=write,2=atomic

  /// Counting-mode fast path for one warp request: per-granule
  /// aggregated sector accounting (channel hash and operand lookup once
  /// per interleave granule instead of once per 32 B sector).  Totals
  /// are bit-identical to the per-sector event path because the channel
  /// map is constant within a granule and allocations never share one.
  void counting_access(u64 addr, i64 bytes, int kind);

  /// Operand tag of the allocation containing `addr` ("?" when outside
  /// any allocation — e.g. a writeback of an evicted line is attributed
  /// to its own address).
  const std::string& operand_of(u64 addr) const;

  /// Cached accumulator for the operand-attribution map entry of the
  /// allocation containing `addr`.  Consecutive accesses within one
  /// allocation (the common case, and every run-API entry) skip both
  /// the region binary search and the string-keyed map lookup.
  i64& operand_slot(u64 addr);

  struct Region {
    u64 begin, end;
    std::string tag;
  };

  ArchConfig arch_;
  MemMode mode_;
  Interleaver interleave_;
  std::unique_ptr<L2Cache> l2_;
  std::vector<DramChannelSim> dram_;  ///< cache-sim mode only
  std::vector<Region> regions_;       ///< sorted by begin (allocation order)
  MemStats stats_;
  u64 next_base_ = 0;
  // operand_slot cache (empty range = invalid; map nodes are stable, so
  // the pointer survives later insertions until reset_stats()).
  u64 cached_begin_ = 1;
  u64 cached_end_ = 0;
  i64* cached_slot_ = nullptr;
};

}  // namespace nmdt
