#include "gpusim/interleave.hpp"

#include "util/error.hpp"

namespace nmdt {

Interleaver::Interleaver(const ArchConfig& arch)
    : channels_(arch.pseudo_channels),
      partitions_(arch.fb_partitions),
      channels_per_partition_(arch.pseudo_channels / arch.fb_partitions) {
  arch.validate();
  granule_shift_ = 0;
  while ((i64{1} << granule_shift_) < arch.interleave_bytes) ++granule_shift_;
  NMDT_CHECK_CONFIG((i64{1} << granule_shift_) == arch.interleave_bytes,
                    "interleave_bytes must be a power of two");
}

}  // namespace nmdt
