// Physical-address interleaving across HBM2 pseudo channels.
//
// `interleave_bytes` granules map to channels through a hash of the
// granule index — the scheme real GPUs use (post-Fermi "partition
// camping" fixes) so that strided or structured access patterns spread
// evenly instead of resonating with the channel count.  A given address
// always maps to the same channel (it is physical), which is what makes
// hot single lines a per-channel load.  Channels group into FB
// partitions (channels_per_partition consecutive channel ids per
// partition), the granularity at which the Sec. 6.1 camping problem
// shows up.
#pragma once

#include "gpusim/arch.hpp"

namespace nmdt {

class Interleaver {
 public:
  explicit Interleaver(const ArchConfig& arch);

  int channel_of(u64 addr) const {
    u64 g = addr >> granule_shift_;
    g *= 0x9e3779b97f4a7c15ULL;  // Fibonacci hash: decorrelate strides
    return static_cast<int>((g >> 40) % static_cast<u64>(channels_));
  }

  int partition_of(u64 addr) const { return channel_of(addr) / channels_per_partition_; }

  int partition_of_channel(int channel) const { return channel / channels_per_partition_; }

  i64 granule_bytes() const { return i64{1} << granule_shift_; }
  int channels() const { return channels_; }
  int partitions() const { return partitions_; }

 private:
  int channels_;
  int partitions_;
  int channels_per_partition_;
  int granule_shift_;
};

}  // namespace nmdt
