#include "gpusim/arch.hpp"

#include "util/error.hpp"

namespace nmdt {

void ArchConfig::validate() const {
  NMDT_CHECK_CONFIG(num_sms > 0, "num_sms must be positive");
  NMDT_CHECK_CONFIG(warp_size > 0, "warp_size must be positive");
  NMDT_CHECK_CONFIG(issue_slots_per_sm > 0, "issue_slots_per_sm must be positive");
  NMDT_CHECK_CONFIG(issue_efficiency > 0.0 && issue_efficiency <= 1.0,
                    "issue_efficiency must be in (0, 1]");
  NMDT_CHECK_CONFIG(core_clock_ghz > 0, "core_clock_ghz must be positive");
  NMDT_CHECK_CONFIG(l2_bytes > 0, "l2_bytes must be positive");
  NMDT_CHECK_CONFIG(l2_line_bytes > 0 && l2_sector_bytes > 0, "L2 geometry must be positive");
  NMDT_CHECK_CONFIG(l2_line_bytes % l2_sector_bytes == 0,
                    "l2_line_bytes must be a multiple of l2_sector_bytes");
  NMDT_CHECK_CONFIG(l2_bytes % (static_cast<i64>(l2_ways) * l2_line_bytes) == 0,
                    "l2_bytes must divide into ways*line sets");
  NMDT_CHECK_CONFIG(pseudo_channels > 0, "pseudo_channels must be positive");
  NMDT_CHECK_CONFIG(fb_partitions > 0 && pseudo_channels % fb_partitions == 0,
                    "pseudo_channels must be a multiple of fb_partitions");
  NMDT_CHECK_CONFIG(bw_per_channel_gbps > 0, "bw_per_channel_gbps must be positive");
  NMDT_CHECK_CONFIG(interleave_bytes > 0 && (interleave_bytes & (interleave_bytes - 1)) == 0,
                    "interleave_bytes must be a power of two");
  NMDT_CHECK_CONFIG(atomic_cost_multiplier >= 1.0, "atomic_cost_multiplier must be >= 1");
}

ArchConfig ArchConfig::gv100() {
  ArchConfig c;  // defaults are the GV100 numbers
  c.validate();
  return c;
}

ArchConfig ArchConfig::a100() {
  ArchConfig c;
  c.name = "A100";
  c.num_sms = 108;
  c.core_clock_ghz = 1.41;
  c.peak_fp32_tflops = 19.5;
  c.shared_mem_per_sm = 164 * 1024;
  c.l2_bytes = 40 * 1024 * 1024;
  c.l2_ways = 16;
  c.fb_partitions = 10;
  c.pseudo_channels = 80;          // 5 HBM2e stacks × 16 pseudo channels
  c.bw_per_channel_gbps = 19.44;   // 1555 GB/s aggregate
  c.die_area_mm2 = 826.0;
  c.tdp_watts = 400.0;
  c.idle_watts = 40.0;
  c.xbar_bandwidth_gbps = 5000.0;
  c.validate();
  return c;
}

ArchConfig ArchConfig::tu116() {
  ArchConfig c;
  c.name = "TU116";
  c.num_sms = 24;
  c.core_clock_ghz = 1.53;
  c.peak_fp32_tflops = 4.6;
  c.shared_mem_per_sm = 64 * 1024;
  c.l2_bytes = 1536 * 1024;
  c.fb_partitions = 6;
  c.pseudo_channels = 24;     // 24 × 16-bit GDDR6 channels (Sec. 5.3)
  c.bw_per_channel_gbps = 12.0;
  c.die_area_mm2 = 284.0;
  c.tdp_watts = 125.0;
  c.idle_watts = 12.0;
  c.xbar_bandwidth_gbps = 1000.0;
  c.validate();
  return c;
}

}  // namespace nmdt
