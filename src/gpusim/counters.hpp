// Performance counters collected while a kernel executes on the
// simulator.  These are the NVPROF-style counters behind Fig. 2 (stall
// reasons) and Fig. 7 (active vs inactive thread executions).
#pragma once

#include <algorithm>

#include "util/types.hpp"

namespace nmdt {

enum class InstrClass {
  kFp,       ///< FMA / floating-point arithmetic
  kInt,      ///< integer / address arithmetic
  kControl,  ///< branches, loop overhead, predicate handling
  kMemory,   ///< load/store/atomic instructions
};

struct KernelCounters {
  // Warp-granularity issue counts per class.
  u64 fp_instr = 0;
  u64 int_instr = 0;
  u64 control_instr = 0;
  u64 memory_instr = 0;

  // Thread-execution (lane-slot) granularity: every issued warp
  // instruction contributes warp_size slots, split into lanes that did
  // work and lanes that were predicated off / divergent (Fig. 7's
  // "Inactive").
  u64 lane_slots_active = 0;
  u64 lane_slots_inactive = 0;

  u64 flops = 0;             ///< useful floating-point operations
  u64 atomic_updates = 0;    ///< atomicAdd invocations (warp granularity)
  u64 kernel_launches = 0;

  // Latency-regime inputs: warp work-item visits (each pays a
  // dependent-load chain) and serial inner-loop iterations per warp.
  u64 warp_visits = 0;
  u64 serial_iterations = 0;
  /// Longest serial chain any single warp executes — the critical path
  /// a skewed row imposes on row-per-warp kernels (Sec. 5.2).  Tiled
  /// kernels bound this by the strip width.
  u64 max_chain_iters = 0;

  bool operator==(const KernelCounters&) const = default;

  void observe_chain(u64 iters) { max_chain_iters = std::max(max_chain_iters, iters); }

  u64 total_instr() const { return fp_instr + int_instr + control_instr + memory_instr; }
  u64 total_lane_slots() const { return lane_slots_active + lane_slots_inactive; }

  double inactive_fraction() const {
    const u64 total = total_lane_slots();
    return total == 0 ? 0.0 : static_cast<double>(lane_slots_inactive) / total;
  }

  KernelCounters& operator+=(const KernelCounters& o) {
    fp_instr += o.fp_instr;
    int_instr += o.int_instr;
    control_instr += o.control_instr;
    memory_instr += o.memory_instr;
    lane_slots_active += o.lane_slots_active;
    lane_slots_inactive += o.lane_slots_inactive;
    flops += o.flops;
    atomic_updates += o.atomic_updates;
    kernel_launches += o.kernel_launches;
    warp_visits += o.warp_visits;
    serial_iterations += o.serial_iterations;
    max_chain_iters = std::max(max_chain_iters, o.max_chain_iters);
    return *this;
  }
};

}  // namespace nmdt
