#include "gpusim/memory_system.hpp"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nmdt {

i64 MemStats::total_dram_bytes() const {
  i64 total = 0;
  for (const auto& c : channels) total += c.total_bytes();
  return total;
}

i64 MemStats::max_channel_bytes() const {
  i64 worst = 0;
  for (const auto& c : channels) worst = std::max(worst, c.total_bytes());
  return worst;
}

double MemStats::max_channel_service_ns(double bw_per_channel_gbps) const {
  double worst = 0.0;
  for (const auto& c : channels) {
    const double transfer = static_cast<double>(c.total_bytes()) / bw_per_channel_gbps;
    worst = std::max(worst, std::max(transfer, c.busy_ns));
  }
  return worst;
}

double MemStats::dram_row_hit_rate() const {
  u64 hits = 0, misses = 0;
  for (const auto& c : channels) {
    hits += c.row_hits;
    misses += c.row_misses;
  }
  return hits + misses == 0 ? 1.0
                            : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

i64 MemStats::max_partition_bytes(int fb_partitions) const {
  if (fb_partitions <= 0 || channels.empty()) return 0;
  const int per = static_cast<int>(channels.size()) / fb_partitions;
  i64 worst = 0;
  for (int p = 0; p < fb_partitions; ++p) {
    i64 sum = 0;
    for (int c = 0; c < per; ++c) sum += channels[static_cast<usize>(p) * per + c].total_bytes();
    worst = std::max(worst, sum);
  }
  return worst;
}

MemStats& MemStats::operator+=(const MemStats& o) {
  if (channels.size() < o.channels.size()) channels.resize(o.channels.size());
  for (usize i = 0; i < o.channels.size(); ++i) {
    channels[i].read_bytes += o.channels[i].read_bytes;
    channels[i].write_bytes += o.channels[i].write_bytes;
    channels[i].atomic_bytes += o.channels[i].atomic_bytes;
    channels[i].requests += o.channels[i].requests;
    channels[i].busy_ns += o.channels[i].busy_ns;
    channels[i].row_hits += o.channels[i].row_hits;
    channels[i].row_misses += o.channels[i].row_misses;
  }
  l2.accesses += o.l2.accesses;
  l2.sector_hits += o.l2.sector_hits;
  l2.sector_misses += o.l2.sector_misses;
  l2.evictions += o.l2.evictions;
  l2.writebacks += o.l2.writebacks;
  xbar_bytes += o.xbar_bytes;
  l2_service_bytes += o.l2_service_bytes;
  atomic_rmw_bytes += o.atomic_rmw_bytes;
  for (const auto& [tag, bytes] : o.operand_bytes) operand_bytes[tag] += bytes;
  return *this;
}

MemorySystem::MemorySystem(const ArchConfig& arch, MemMode mode)
    : arch_(arch), mode_(mode), interleave_(arch) {
  arch_.validate();
  stats_.channels.assign(static_cast<usize>(arch.pseudo_channels), ChannelStats{});
  if (mode_ == MemMode::kCacheSim) {
    l2_ = std::make_unique<L2Cache>(arch_);
    dram_.assign(static_cast<usize>(arch.pseudo_channels), DramChannelSim(arch_));
  }
}

u64 MemorySystem::allocate(i64 bytes, const std::string& name) {
  NMDT_REQUIRE(bytes >= 0, "allocation size must be non-negative: " + name);
  const u64 granule = static_cast<u64>(interleave_.granule_bytes());
  const u64 base = next_base_;
  const u64 padded = (static_cast<u64>(bytes) + granule - 1) / granule * granule;
  next_base_ += padded + granule;  // guard granule between arrays
  // Operand tag = the name's first dotted component ("A.row_ptr" → "A").
  const auto dot = name.find('.');
  regions_.push_back({base, base + padded, name.substr(0, dot)});
  return base;
}

const std::string& MemorySystem::operand_of(u64 addr) const {
  static const std::string kUnknown = "?";
  // Regions are appended in ascending base order: binary search.
  auto it = std::upper_bound(regions_.begin(), regions_.end(), addr,
                             [](u64 a, const Region& r) { return a < r.begin; });
  if (it == regions_.begin()) return kUnknown;
  --it;
  return addr < it->end ? it->tag : kUnknown;
}

i64& MemorySystem::operand_slot(u64 addr) {
  if (addr < cached_begin_ || addr >= cached_end_) {
    auto it = std::upper_bound(regions_.begin(), regions_.end(), addr,
                               [](u64 a, const Region& r) { return a < r.begin; });
    const Region* region = nullptr;
    if (it != regions_.begin()) {
      --it;
      if (addr < it->end) region = &*it;
    }
    if (region != nullptr) {
      cached_begin_ = region->begin;
      cached_end_ = region->end;
      cached_slot_ = &stats_.operand_bytes[region->tag];
    } else {
      static const std::string kUnknown = "?";
      cached_begin_ = addr;
      cached_end_ = addr + 1;
      cached_slot_ = &stats_.operand_bytes[kUnknown];
    }
  }
  return *cached_slot_;
}

void MemorySystem::merge(const MemorySystem& other) {
  NMDT_REQUIRE(other.mode_ == mode_ &&
                   other.stats_.channels.size() == stats_.channels.size(),
               "MemorySystem::merge requires matching mode and channel geometry");
  // Shard flush point: a shard-local memory system drains its simulated
  // traffic into the canonical one.
  static obs::Counter& merges = obs::MetricsRegistry::global().counter("mem.merges");
  merges.add(1);
  obs::TraceSpan span("mem.merge");
  stats_ += other.stats_;
  if (span.enabled()) {
    span.arg("channels", static_cast<i64>(stats_.channels.size()))
        .arg("merged_dram_bytes", other.stats_.total_dram_bytes())
        .arg("total_dram_bytes", stats_.total_dram_bytes());
  }
}

void MemorySystem::dram_access(u64 addr, i64 bytes, int kind) {
  const usize channel = static_cast<usize>(interleave_.channel_of(addr));
  ChannelStats& ch = stats_.channels[channel];
  ++ch.requests;
  i64 effective = bytes;
  switch (kind) {
    case 0: ch.read_bytes += bytes; break;
    case 1: ch.write_bytes += bytes; break;
    default:
      effective =
          static_cast<i64>(static_cast<double>(bytes) * arch_.atomic_cost_multiplier);
      ch.atomic_bytes += effective;
      break;
  }
  operand_slot(addr) += effective;
  if (!dram_.empty()) {
    DramChannelSim& bank_model = dram_[channel];
    bank_model.access(addr, effective);
    ch.busy_ns = bank_model.busy_ns();
    ch.row_hits = bank_model.row_hits();
    ch.row_misses = bank_model.row_misses();
  }
}

namespace {
/// Invoke fn(sector_addr) for each touched sector of [addr, addr+bytes).
template <typename Fn>
void for_each_sector(u64 addr, i64 bytes, i64 sector, Fn&& fn) {
  if (bytes <= 0) return;
  const u64 first = addr / static_cast<u64>(sector);
  const u64 last = (addr + static_cast<u64>(bytes) - 1) / static_cast<u64>(sector);
  for (u64 s = first; s <= last; ++s) fn(s * static_cast<u64>(sector));
}

/// Counting-mode fast-path switch (test hook; see the header).  Relaxed
/// atomic: flipped only between runs, read concurrently by shard
/// threads.
std::atomic<bool> g_counting_fast_path{true};
}  // namespace

void MemorySystem::set_counting_fast_path_for_test(bool enabled) {
  g_counting_fast_path.store(enabled, std::memory_order_relaxed);
}

bool MemorySystem::counting_fast_path_enabled() {
  return g_counting_fast_path.load(std::memory_order_relaxed);
}

void MemorySystem::counting_access(u64 addr, i64 bytes, int kind) {
  // One warp request, granule-aggregated: every sector of a granule
  // hashes to the same channel (Interleaver::channel_of depends only on
  // addr >> granule_shift) and lies in the same allocation (regions are
  // granule-aligned with a guard granule between them), so a run of n
  // sectors inside one granule books the same totals as n per-sector
  // events — with one channel hash and one operand lookup.
  if (bytes <= 0) return;
  const i64 sector = arch_.l2_sector_bytes;
  const u64 granule_mask = ~(static_cast<u64>(interleave_.granule_bytes()) - 1);
  const u64 first = addr / static_cast<u64>(sector);
  const u64 last = (addr + static_cast<u64>(bytes) - 1) / static_cast<u64>(sector);
  const i64 sectors = static_cast<i64>(last - first + 1);
  stats_.l2_service_bytes += sector * sectors;
  const i64 per_sector =
      kind == 2 ? static_cast<i64>(static_cast<double>(sector) * arch_.atomic_cost_multiplier)
                : sector;
  if (kind == 2) stats_.atomic_rmw_bytes += sector * sectors;
  u64 s = first;
  while (s <= last) {
    const u64 sector_addr = s * static_cast<u64>(sector);
    // First sector index beyond this granule.
    const u64 granule_end =
        ((sector_addr & granule_mask) + static_cast<u64>(interleave_.granule_bytes())) /
        static_cast<u64>(sector);
    const u64 run_end = granule_end <= last ? granule_end : last + 1;
    const i64 n = static_cast<i64>(run_end - s);
    ChannelStats& ch =
        stats_.channels[static_cast<usize>(interleave_.channel_of(sector_addr))];
    ch.requests += n;
    switch (kind) {
      case 0: ch.read_bytes += per_sector * n; break;
      case 1: ch.write_bytes += per_sector * n; break;
      default: ch.atomic_bytes += per_sector * n; break;
    }
    operand_slot(sector_addr) += per_sector * n;
    s = run_end;
  }
}

void MemorySystem::warp_load(u64 addr, i64 bytes) {
  if (mode_ == MemMode::kCounting && counting_fast_path_enabled()) {
    counting_access(addr, bytes, 0);
    return;
  }
  for_each_sector(addr, bytes, arch_.l2_sector_bytes, [&](u64 sector_addr) {
    stats_.l2_service_bytes += arch_.l2_sector_bytes;
    if (mode_ == MemMode::kCacheSim) {
      const auto r = l2_->access(sector_addr, /*is_write=*/false);
      if (r.dram_read_bytes > 0) dram_access(sector_addr, r.dram_read_bytes, 0);
      if (r.dram_write_bytes > 0) dram_access(sector_addr, r.dram_write_bytes, 1);
    } else {
      dram_access(sector_addr, arch_.l2_sector_bytes, 0);
    }
  });
  if (mode_ == MemMode::kCacheSim) stats_.l2 = l2_->stats();
}

void MemorySystem::warp_store(u64 addr, i64 bytes) {
  if (mode_ == MemMode::kCounting && counting_fast_path_enabled()) {
    counting_access(addr, bytes, 1);
    return;
  }
  for_each_sector(addr, bytes, arch_.l2_sector_bytes, [&](u64 sector_addr) {
    stats_.l2_service_bytes += arch_.l2_sector_bytes;
    if (mode_ == MemMode::kCacheSim) {
      const auto r = l2_->access(sector_addr, /*is_write=*/true);
      if (r.dram_read_bytes > 0) dram_access(sector_addr, r.dram_read_bytes, 0);
      if (r.dram_write_bytes > 0) dram_access(sector_addr, r.dram_write_bytes, 1);
    } else {
      dram_access(sector_addr, arch_.l2_sector_bytes, 1);
    }
  });
  if (mode_ == MemMode::kCacheSim) stats_.l2 = l2_->stats();
}

void MemorySystem::warp_atomic(u64 addr, i64 bytes) {
  // Atomics resolve at the LLC: partial C tiles live in L2 (Sec. 3.1.1)
  // so repeated accumulation hits there, but every RMW consumes
  // atomic_cost_multiplier× LLC bandwidth (tracked in atomic_rmw_bytes
  // and charged by the timing model).  Only misses/writebacks reach
  // DRAM — charged at the atomic (2×) rate there too.
  if (mode_ == MemMode::kCounting && counting_fast_path_enabled()) {
    counting_access(addr, bytes, 2);
    return;
  }
  for_each_sector(addr, bytes, arch_.l2_sector_bytes, [&](u64 sector_addr) {
    stats_.l2_service_bytes += arch_.l2_sector_bytes;
    stats_.atomic_rmw_bytes += arch_.l2_sector_bytes;
    if (mode_ == MemMode::kCacheSim) {
      const auto r = l2_->access(sector_addr, /*is_write=*/true);
      if (r.dram_read_bytes > 0) dram_access(sector_addr, r.dram_read_bytes, 2);
      if (r.dram_write_bytes > 0) dram_access(sector_addr, r.dram_write_bytes, 1);
    } else {
      dram_access(sector_addr, arch_.l2_sector_bytes, 2);
    }
  });
  if (mode_ == MemMode::kCacheSim) stats_.l2 = l2_->stats();
}

void MemorySystem::warp_load_run(std::span<const u64> addrs, i64 bytes_each) {
  if (mode_ == MemMode::kCacheSim || !counting_fast_path_enabled()) {
    // The L2 / DRAM bank models are stateful: preserve the exact
    // per-entry event order so stats match the unbatched path bit for
    // bit.  (With the fast path disabled this is also the counting-mode
    // event path the equality tests compare against.)
    for (u64 addr : addrs) warp_load(addr, bytes_each);
    return;
  }
  for (u64 addr : addrs) counting_access(addr, bytes_each, 0);
}

void MemorySystem::warp_atomic_run(std::span<const u64> addrs, i64 bytes_each) {
  if (mode_ == MemMode::kCacheSim || !counting_fast_path_enabled()) {
    for (u64 addr : addrs) warp_atomic(addr, bytes_each);
    return;
  }
  for (u64 addr : addrs) counting_access(addr, bytes_each, 2);
}

void MemorySystem::engine_read(u64 addr, i64 bytes) {
  // The engine's per-column prefetch buffer turns its element stream
  // into full-sector sequential bursts: exact byte count, row-buffer
  // friendly.
  const usize channel = static_cast<usize>(interleave_.channel_of(addr));
  ChannelStats& ch = stats_.channels[channel];
  ++ch.requests;
  ch.read_bytes += bytes;
  operand_slot(addr) += bytes;
  if (!dram_.empty()) {
    dram_[channel].stream(bytes);
    ch.busy_ns = dram_[channel].busy_ns();
    ch.row_hits = dram_[channel].row_hits();
    ch.row_misses = dram_[channel].row_misses();
  }
}

void MemorySystem::engine_read_channel(int channel, i64 bytes, const char* tag) {
  NMDT_REQUIRE(channel >= 0 && channel < static_cast<int>(stats_.channels.size()),
               "engine_read_channel: channel out of range");
  ChannelStats& ch = stats_.channels[static_cast<usize>(channel)];
  ++ch.requests;
  ch.read_bytes += bytes;
  stats_.operand_bytes[tag] += bytes;
  if (!dram_.empty()) {
    dram_[static_cast<usize>(channel)].stream(bytes);
    ch.busy_ns = dram_[static_cast<usize>(channel)].busy_ns();
    ch.row_hits = dram_[static_cast<usize>(channel)].row_hits();
    ch.row_misses = dram_[static_cast<usize>(channel)].row_misses();
  }
}

void MemorySystem::xbar_transfer(i64 bytes) { stats_.xbar_bytes += bytes; }

void MemorySystem::reset_stats() {
  for (auto& c : stats_.channels) c = ChannelStats{};
  stats_.xbar_bytes = 0;
  stats_.l2_service_bytes = 0;
  stats_.atomic_rmw_bytes = 0;
  stats_.operand_bytes.clear();  // invalidates cached operand slots
  cached_begin_ = 1;
  cached_end_ = 0;
  cached_slot_ = nullptr;
  stats_.l2 = CacheStats{};
  if (l2_) l2_->reset();
  for (auto& d : dram_) d.reset();
}

}  // namespace nmdt
