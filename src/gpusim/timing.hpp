// First-order kernel timing, matching the analytical style the paper
// itself uses (Sec. 2, Sec. 5.3): a kernel's execution time is the
// maximum of its compute-issue time and the service time of its most
// loaded memory channel (perfect compute/memory overlap), plus launch
// overheads.  Stall attribution reproduces the NVPROF breakdown of
// Fig. 2: time waiting on the memory system vs time the SMs were
// actually issuing vs fixed overhead.
#pragma once

#include "gpusim/counters.hpp"
#include "gpusim/memory_system.hpp"

namespace nmdt {

struct TimingBreakdown {
  double compute_ns = 0.0;   ///< warp-issue time across all SMs
  double latency_ns = 0.0;   ///< warp-visit dependent-latency time
  double memory_ns = 0.0;    ///< most-loaded pseudo channel service time
  double llc_ns = 0.0;       ///< L2 service time incl. 2× atomic RMWs
  double xbar_ns = 0.0;      ///< crossbar transfer time (engine delivery)
  double engine_ns = 0.0;    ///< near-memory conversion engine busy time
  double overhead_ns = 0.0;  ///< kernel launch overheads
  double total_ns = 0.0;

  // Stall-reason attribution (sums to 1 when total_ns > 0), Fig. 2 style.
  double frac_memory = 0.0;
  double frac_sm = 0.0;
  double frac_other = 0.0;

  double total_ms() const { return total_ns * 1e-6; }
};

/// Combine counters and memory statistics into a kernel time.
///
/// `compute_inflation` models intra-warp critical-path imbalance (e.g.
/// row-length skew lengthening a warp's slowest lane, Sec. 5.2); 1.0
/// means perfectly balanced.  `engine_ns` is the busy time of the
/// near-memory transform engines for online-conversion kernels (0 for
/// pure-software kernels).
TimingBreakdown compute_timing(const ArchConfig& arch, const KernelCounters& counters,
                               const MemStats& mem, double compute_inflation = 1.0,
                               double engine_ns = 0.0);

}  // namespace nmdt
