// Warp-issue recording helpers used by the kernels.
//
// Kernels in kernels/ execute the real arithmetic on the host while
// narrating their warp-level instruction stream into KernelCounters via
// these helpers; lane activity is recorded per issue so the Fig. 7
// inactive-thread analysis falls out of the same trace.
#pragma once

#include <algorithm>

#include "gpusim/arch.hpp"
#include "gpusim/counters.hpp"

namespace nmdt {

/// Record `times` warp instructions of class `cls` with `active_lanes`
/// lanes doing useful work (the rest are predicated off / divergent).
inline void issue(KernelCounters& c, const ArchConfig& arch, InstrClass cls,
                  int active_lanes, u64 times = 1) {
  active_lanes = std::clamp(active_lanes, 0, arch.warp_size);
  switch (cls) {
    case InstrClass::kFp: c.fp_instr += times; break;
    case InstrClass::kInt: c.int_instr += times; break;
    case InstrClass::kControl: c.control_instr += times; break;
    case InstrClass::kMemory: c.memory_instr += times; break;
  }
  c.lane_slots_active += times * static_cast<u64>(active_lanes);
  c.lane_slots_inactive += times * static_cast<u64>(arch.warp_size - active_lanes);
}

/// Record the warp instructions needed to process `elements` parallel
/// work items `lanes_per_wave` at a time (e.g. a K-wide row handled by a
/// 32-lane warp takes ceil(K/32) waves, the last one partially active —
/// the paper's "last column slice is load imbalanced" case).
inline void issue_waves(KernelCounters& c, const ArchConfig& arch, InstrClass cls,
                        i64 elements, u64 instrs_per_wave = 1) {
  if (elements <= 0) return;
  const i64 full = elements / arch.warp_size;
  const int rem = static_cast<int>(elements % arch.warp_size);
  if (full > 0) issue(c, arch, cls, arch.warp_size, static_cast<u64>(full) * instrs_per_wave);
  if (rem > 0) issue(c, arch, cls, rem, instrs_per_wave);
}

}  // namespace nmdt
