#include "gpusim/energy.hpp"

namespace nmdt {

EnergyBreakdown estimate_energy(const EnergyModel& model, const ArchConfig& arch,
                                const KernelCounters& counters, const MemStats& mem,
                                u64 engine_rows, const TimingBreakdown& timing) {
  constexpr double kPjToUj = 1e-6;
  EnergyBreakdown e;
  e.dram_uj = static_cast<double>(mem.total_dram_bytes()) * model.dram_pj_per_byte *
              kPjToUj;
  e.l2_uj = static_cast<double>(mem.l2_service_bytes) * model.l2_pj_per_byte * kPjToUj;
  e.xbar_uj = static_cast<double>(mem.xbar_bytes) * model.xbar_pj_per_byte * kPjToUj;
  e.core_uj = static_cast<double>(counters.total_instr()) * model.instr_pj * kPjToUj;
  e.engine_uj = static_cast<double>(engine_rows) * model.engine_pj_per_row * kPjToUj;
  // Idle (leakage + uncore) power burns for the whole kernel runtime:
  // W × ns = 1e-3 µJ.
  e.static_uj = arch.idle_watts * timing.total_ns * 1e-3;
  return e;
}

}  // namespace nmdt
