// Sectored set-associative L2 cache model.
//
// NVIDIA L2s tag 128 B lines but fill 32 B sectors on demand; a miss on
// a resident line's missing sector costs a sector fill, not a line fill.
// Replacement is LRU per set.  This is the cache that gives C-stationary
// its "B strips can hit in LLC" advantage (Sec. 3.1.1) and that the
// paper's bandwidth simulation loads CSC metadata through (Sec. 5.1).
#pragma once

#include <vector>

#include "gpusim/arch.hpp"

namespace nmdt {

struct CacheStats {
  u64 accesses = 0;
  u64 sector_hits = 0;
  u64 sector_misses = 0;
  u64 evictions = 0;
  u64 writebacks = 0;

  bool operator==(const CacheStats&) const = default;

  double hit_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(sector_hits) / accesses;
  }
};

class L2Cache {
 public:
  explicit L2Cache(const ArchConfig& arch);

  struct AccessResult {
    bool hit = false;
    i64 dram_read_bytes = 0;   ///< sector fill on miss
    i64 dram_write_bytes = 0;  ///< dirty eviction writeback
  };

  /// Access one sector-aligned address (the memory system splits warp
  /// requests into sectors before calling this).
  AccessResult access(u64 addr, bool is_write);

  const CacheStats& stats() const { return stats_; }

  void reset();

  int num_sets() const { return num_sets_; }
  int sectors_per_line() const { return sectors_per_line_; }

 private:
  struct Line {
    u64 tag = 0;
    u32 valid_sectors = 0;  ///< bitmap
    u32 dirty_sectors = 0;
    u64 lru_stamp = 0;
    bool valid = false;
  };

  int ways_;
  int num_sets_;
  int line_bytes_;
  int sector_bytes_;
  int sectors_per_line_;
  u64 access_clock_ = 0;
  std::vector<Line> lines_;  ///< num_sets_ * ways_
  CacheStats stats_;
};

}  // namespace nmdt
