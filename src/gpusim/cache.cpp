#include "gpusim/cache.hpp"

#include <bit>

#include "util/error.hpp"

namespace nmdt {

L2Cache::L2Cache(const ArchConfig& arch)
    : ways_(arch.l2_ways),
      line_bytes_(arch.l2_line_bytes),
      sector_bytes_(arch.l2_sector_bytes),
      sectors_per_line_(arch.l2_line_bytes / arch.l2_sector_bytes) {
  arch.validate();
  num_sets_ = static_cast<int>(arch.l2_bytes / (static_cast<i64>(ways_) * line_bytes_));
  NMDT_CHECK_CONFIG(num_sets_ > 0, "L2 must have at least one set");
  NMDT_CHECK_CONFIG(sectors_per_line_ <= 32, "sector bitmap limited to 32 sectors");
  lines_.assign(static_cast<usize>(num_sets_) * ways_, Line{});
}

void L2Cache::reset() {
  for (auto& l : lines_) l = Line{};
  stats_ = CacheStats{};
  access_clock_ = 0;
}

L2Cache::AccessResult L2Cache::access(u64 addr, bool is_write) {
  ++stats_.accesses;
  ++access_clock_;
  AccessResult res;

  const u64 line_addr = addr / static_cast<u64>(line_bytes_);
  const int sector = static_cast<int>((addr % static_cast<u64>(line_bytes_)) /
                                      static_cast<u64>(sector_bytes_));
  const u32 sector_bit = u32{1} << sector;
  const int set = static_cast<int>(line_addr % static_cast<u64>(num_sets_));
  const u64 tag = line_addr / static_cast<u64>(num_sets_);

  Line* base = &lines_[static_cast<usize>(set) * ways_];

  // Lookup.
  for (int w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru_stamp = access_clock_;
      if (line.valid_sectors & sector_bit) {
        ++stats_.sector_hits;
        res.hit = true;
      } else {
        // Line resident, sector not: sector fill.
        ++stats_.sector_misses;
        line.valid_sectors |= sector_bit;
        res.dram_read_bytes = sector_bytes_;
      }
      if (is_write) line.dirty_sectors |= sector_bit;
      return res;
    }
  }

  // Miss: choose LRU victim.
  ++stats_.sector_misses;
  Line* victim = base;
  for (int w = 1; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru_stamp < victim->lru_stamp) victim = &base[w];
  }
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty_sectors != 0) {
      ++stats_.writebacks;
      res.dram_write_bytes =
          static_cast<i64>(std::popcount(victim->dirty_sectors)) * sector_bytes_;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->valid_sectors = sector_bit;
  victim->dirty_sectors = is_write ? sector_bit : 0;
  victim->lru_stamp = access_clock_;
  res.dram_read_bytes += sector_bytes_;
  return res;
}

}  // namespace nmdt
