#include "gpusim/timing.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nmdt {

TimingBreakdown compute_timing(const ArchConfig& arch, const KernelCounters& counters,
                               const MemStats& mem, double compute_inflation,
                               double engine_ns) {
  arch.validate();
  NMDT_CHECK_CONFIG(compute_inflation >= 1.0, "compute_inflation must be >= 1");
  TimingBreakdown t;

  // Compute: warp instructions over all SM issue slots, derated by the
  // achievable issue efficiency (dependency/pipeline stalls).
  const double issue_rate_per_ns = static_cast<double>(arch.num_sms) *
                                   arch.issue_slots_per_sm * arch.core_clock_ghz *
                                   arch.issue_efficiency;
  t.compute_ns = static_cast<double>(counters.total_instr()) / issue_rate_per_ns *
                 compute_inflation;

  // Latency regime: every warp visit pays a dependent-load chain and
  // each serial iteration a pipelined step; resident warps across all
  // SMs hide it.  A single chain is the floor when occupancy is low.
  const double chain_ns = static_cast<double>(counters.warp_visits) * arch.visit_latency_ns +
                          static_cast<double>(counters.serial_iterations) *
                              arch.iter_latency_ns;
  const double concurrency = static_cast<double>(arch.num_sms) * arch.max_warps_per_sm;
  if (counters.warp_visits > 0) {
    // The kernel cannot retire before its longest single-warp chain
    // (a skewed row serializing one warp, Sec. 5.2).
    const double critical_path_ns =
        arch.visit_latency_ns +
        static_cast<double>(counters.max_chain_iters) * arch.iter_latency_ns;
    t.latency_ns =
        std::max(critical_path_ns, chain_ns / concurrency) * compute_inflation;
  }

  // Memory: the most loaded pseudo channel bounds DRAM service time —
  // transfer bytes at pin rate plus, when the bank model ran, row-miss
  // penalties (1 GB/s == 1 byte/ns).
  t.memory_ns = mem.max_channel_service_ns(arch.bw_per_channel_gbps);

  // LLC: all SM traffic is serviced by L2; atomic RMWs consume
  // (multiplier − 1)× extra of its bandwidth.
  t.llc_ns = (static_cast<double>(mem.l2_service_bytes) +
              static_cast<double>(mem.atomic_rmw_bytes) *
                  (arch.atomic_cost_multiplier - 1.0)) /
             arch.l2_bandwidth_gbps;

  // Crossbar delivery of engine output.
  t.xbar_ns = static_cast<double>(mem.xbar_bytes) / arch.xbar_bandwidth_gbps;

  t.engine_ns = engine_ns;
  t.overhead_ns = static_cast<double>(counters.kernel_launches) * arch.launch_overhead_ns;

  const double bottleneck = std::max(
      {t.compute_ns, t.latency_ns, t.memory_ns, t.llc_ns, t.xbar_ns, t.engine_ns});
  t.total_ns = bottleneck + t.overhead_ns;

  if (t.total_ns > 0.0) {
    // While the kernel runs, SMs are either issuing (compute_ns) or
    // waiting on the memory system — bandwidth or dependent-load
    // latency, both memory stalls in the NVPROF sense; launch overhead
    // is "other".
    const double waiting = bottleneck - std::min(t.compute_ns, bottleneck);
    t.frac_memory = waiting / t.total_ns;
    t.frac_other = t.overhead_ns / t.total_ns;
    t.frac_sm = 1.0 - t.frac_memory - t.frac_other;
  }
  return t;
}

}  // namespace nmdt
