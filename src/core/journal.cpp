#include "core/journal.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <sstream>

#include "formats/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"  // json_escape
#include "util/crc32.hpp"
#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define NMDT_HAVE_FSYNC 1
#endif

namespace nmdt {

namespace {

constexpr char kMagic[4] = {'N', 'M', 'D', 'J'};
constexpr u32 kVersion = 1;

enum Kind : u8 {
  kHeader = 0,
  kRowPlanned = 1,
  kRowDegenerate = 2,
  kRowError = 3,
  kArmDone = 4,
  kArmError = 5,
};

// Strings inside entries are bounded (typed-error descriptions); a
// larger length is corruption that slipped past the CRC framing.
constexpr u32 kMaxStringBytes = 1 << 20;

struct ByteWriter {
  std::string out;

  void bytes(const void* p, usize n) { out.append(static_cast<const char*>(p), n); }
  void put_u8(u8 v) { bytes(&v, sizeof(v)); }
  void put_u32(u32 v) { bytes(&v, sizeof(v)); }
  void put_u64(u64 v) { bytes(&v, sizeof(v)); }
  void put_i64(i64 v) { bytes(&v, sizeof(v)); }
  void put_f64(double v) { bytes(&v, sizeof(v)); }
  void put_str(const std::string& s) {
    put_u32(static_cast<u32>(s.size()));
    bytes(s.data(), s.size());
  }
};

/// Bounds-checked reader over one CRC-verified entry payload.  Running
/// out of bytes here means writer/reader layout disagreement or a
/// corrupted length that still passed the CRC — typed, never UB.
struct ByteReader {
  const char* p;
  usize left;

  void bytes(void* dst, usize n, const char* what) {
    if (n > left) {
      throw FormatError(std::string("malformed checkpoint-journal entry: truncated ") +
                        what);
    }
    if (n > 0) std::memcpy(dst, p, n);
    p += n;
    left -= n;
  }
  u8 get_u8(const char* what) { u8 v = 0; bytes(&v, sizeof(v), what); return v; }
  u32 get_u32(const char* what) { u32 v = 0; bytes(&v, sizeof(v), what); return v; }
  u64 get_u64(const char* what) { u64 v = 0; bytes(&v, sizeof(v), what); return v; }
  i64 get_i64(const char* what) { i64 v = 0; bytes(&v, sizeof(v), what); return v; }
  double get_f64(const char* what) { double v = 0; bytes(&v, sizeof(v), what); return v; }
  std::string get_str(const char* what) {
    const u32 n = get_u32(what);
    if (n > kMaxStringBytes) {
      throw FormatError(std::string("malformed checkpoint-journal entry: implausible "
                                    "string length for ") +
                        what);
    }
    std::string s(static_cast<usize>(n), '\0');
    bytes(s.data(), s.size(), what);
    return s;
  }
};

void put_profile(ByteWriter& w, const MatrixProfile& p) {
  w.put_i64(p.stats.rows);
  w.put_i64(p.stats.cols);
  w.put_i64(p.stats.nnz);
  w.put_f64(p.stats.density);
  w.put_f64(p.stats.nnz_row_mean);
  w.put_f64(p.stats.nnz_row_max);
  w.put_f64(p.stats.nnz_row_cv);
  w.put_f64(p.stats.nnz_col_mean);
  w.put_f64(p.stats.nnz_col_max);
  w.put_f64(p.stats.nnz_col_cv);
  w.put_i64(p.stats.nonzero_rows);
  w.put_i64(p.stats.nonzero_cols);
  w.put_f64(p.nnzrow_frac);
  w.put_f64(p.nnzcol_frac);
  w.put_f64(p.mean_strip_nnzrow_frac);
  w.put_i64(p.total_strip_row_segments);
  w.put_i64(p.total_tile_row_segments);
  w.put_f64(p.h_norm);
  w.put_f64(p.ssf);
}

MatrixProfile get_profile(ByteReader& r) {
  MatrixProfile p;
  p.stats.rows = static_cast<index_t>(r.get_i64("profile.rows"));
  p.stats.cols = static_cast<index_t>(r.get_i64("profile.cols"));
  p.stats.nnz = r.get_i64("profile.nnz");
  p.stats.density = r.get_f64("profile.density");
  p.stats.nnz_row_mean = r.get_f64("profile.nnz_row_mean");
  p.stats.nnz_row_max = r.get_f64("profile.nnz_row_max");
  p.stats.nnz_row_cv = r.get_f64("profile.nnz_row_cv");
  p.stats.nnz_col_mean = r.get_f64("profile.nnz_col_mean");
  p.stats.nnz_col_max = r.get_f64("profile.nnz_col_max");
  p.stats.nnz_col_cv = r.get_f64("profile.nnz_col_cv");
  p.stats.nonzero_rows = r.get_i64("profile.nonzero_rows");
  p.stats.nonzero_cols = r.get_i64("profile.nonzero_cols");
  p.nnzrow_frac = r.get_f64("profile.nnzrow_frac");
  p.nnzcol_frac = r.get_f64("profile.nnzcol_frac");
  p.mean_strip_nnzrow_frac = r.get_f64("profile.mean_strip_nnzrow_frac");
  p.total_strip_row_segments = r.get_i64("profile.total_strip_row_segments");
  p.total_tile_row_segments = r.get_i64("profile.total_tile_row_segments");
  p.h_norm = r.get_f64("profile.h_norm");
  p.ssf = r.get_f64("profile.ssf");
  return p;
}

/// Fold an entry payload into the replay map.  Entries may repeat after
/// crash/resume cycles; the last occurrence wins (they carry identical
/// deterministic values anyway).
void apply_entry(JournalReplay& replay, ByteReader& r) {
  const u8 kind = r.get_u8("kind");
  if (kind == kHeader) {
    replay.fingerprint = r.get_u64("header.fingerprint");
    replay.total = r.get_i64("header.total");
    replay.k = r.get_i64("header.k");
    replay.arm_count = static_cast<int>(r.get_u8("header.arm_count"));
    replay.has_header = true;
    return;
  }
  const u32 row = r.get_u32("row");
  JournalRow& jr = replay.rows[static_cast<usize>(row)];
  switch (kind) {
    case kRowPlanned:
      jr.planned = true;
      jr.profile = get_profile(r);
      break;
    case kRowDegenerate:
      jr.degenerate = true;
      break;
    case kRowError:
      jr.error = r.get_str("row error");
      break;
    case kArmDone:
    case kArmError: {
      const u8 arm = r.get_u8("arm");
      if (arm >= jr.arms.size()) {
        throw FormatError("malformed checkpoint-journal entry: arm index " +
                          std::to_string(int{arm}) + " out of range");
      }
      JournalArmOutcome out;
      if (kind == kArmDone) {
        out.t_ms = r.get_f64("arm t_ms");
        out.prep_ms = r.get_f64("arm prep_ms");
      } else {
        out.error = r.get_str("arm error");
      }
      jr.arms[arm] = std::move(out);
      break;
    }
    default:
      throw FormatError("malformed checkpoint-journal entry: unknown kind " +
                        std::to_string(int{kind}));
  }
  if (r.left != 0) {
    throw FormatError("malformed checkpoint-journal entry: trailing bytes");
  }
}

std::string frame(const std::string& payload) {
  ByteWriter w;
  w.put_u32(static_cast<u32>(payload.size()));
  w.bytes(payload.data(), payload.size());
  w.put_u32(crc32(payload.data(), payload.size()));
  return w.out;
}

std::string header_payload(u64 fingerprint, usize total, index_t K, int arm_count) {
  ByteWriter w;
  w.put_u8(kHeader);
  w.put_u64(fingerprint);
  w.put_i64(static_cast<i64>(total));
  w.put_i64(static_cast<i64>(K));
  w.put_u8(static_cast<u8>(arm_count));
  return w.out;
}

// An entry frame larger than this is corruption (profiles are ~200 B,
// error strings bounded by kMaxStringBytes).
constexpr u32 kMaxFrameBytes = kMaxStringBytes + 256;

}  // namespace

std::string encode_profile(const MatrixProfile& profile) {
  ByteWriter w;
  put_profile(w, profile);
  return w.out;
}

MatrixProfile decode_profile(std::string_view bytes) {
  ByteReader r{bytes.data(), bytes.size()};
  MatrixProfile p = get_profile(r);
  if (r.left != 0) {
    throw FormatError("malformed encoded MatrixProfile: trailing bytes");
  }
  return p;
}

u64 suite_fingerprint(std::span<const MatrixSpec> specs, const SpmmConfig& cfg,
                      index_t K, int arm_count) {
  u64 h = fnv1a64(nullptr, 0);
  const auto mix_bytes = [&](const void* p, usize n) { h = fnv1a64(p, n, h); };
  const auto mix_i64 = [&](i64 v) { mix_bytes(&v, sizeof(v)); };
  const auto mix_f64 = [&](double v) { mix_bytes(&v, sizeof(v)); };
  const auto mix_str = [&](const std::string& s) {
    mix_i64(static_cast<i64>(s.size()));
    mix_bytes(s.data(), s.size());
  };
  for (const MatrixSpec& s : specs) {
    mix_str(s.name);
    mix_i64(static_cast<i64>(s.family));
    mix_i64(s.rows);
    mix_i64(s.cols);
    mix_f64(s.density);
    mix_f64(s.skew);
    mix_i64(s.aux);
    mix_i64(static_cast<i64>(s.seed));
  }
  mix_i64(K);
  mix_i64(arm_count);
  mix_i64(cfg.tiling.strip_width);
  mix_i64(cfg.tiling.tile_height);
  mix_i64(static_cast<i64>(cfg.traversal));
  mix_i64(static_cast<i64>(cfg.placement));
  mix_i64(static_cast<i64>(cfg.mem_mode));
  mix_i64(cfg.merge_chunk);
  mix_i64(cfg.hong_heavy_threshold);
  mix_i64(static_cast<i64>(cfg.fault.site));
  mix_f64(cfg.fault.rate);
  mix_i64(static_cast<i64>(cfg.fault.seed));
  mix_str(cfg.arch.name);
  mix_i64(cfg.arch.num_sms);
  mix_i64(cfg.arch.pseudo_channels);
  mix_i64(cfg.arch.l2_bytes);
  mix_f64(cfg.arch.bw_per_channel_gbps);
  mix_i64(cfg.engine_hw.lanes);
  mix_f64(cfg.engine_hw.cycle_ns_sp);
  // Precision changes every arm's modelled traffic, so a journal written
  // at one precision must never satisfy a resume at another.
  mix_i64(static_cast<i64>(cfg.precision));
  return h;
}

JournalReplay read_journal(std::istream& is) {
  const std::string bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  JournalReplay replay;
  replay.bytes = static_cast<i64>(bytes.size());
  if (bytes.empty()) return replay;  // nothing written yet: fresh start
  if (bytes.size() < sizeof(kMagic) + sizeof(u32)) {
    // Torn before the version word could land: nothing recoverable.
    replay.torn_tail = true;
    return replay;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw ParseError("not an NMDT checkpoint journal (bad magic)");
  }
  u32 version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kVersion) {
    throw ParseError("unsupported checkpoint-journal version " +
                     std::to_string(version));
  }
  usize off = sizeof(kMagic) + sizeof(u32);
  replay.valid_bytes = static_cast<i64>(off);
  while (off < bytes.size()) {
    if (bytes.size() - off < sizeof(u32)) {
      replay.torn_tail = true;  // torn mid-length
      break;
    }
    u32 len = 0;
    std::memcpy(&len, bytes.data() + off, sizeof(len));
    if (len > kMaxFrameBytes) {
      throw FormatError("checkpoint journal corrupted: implausible frame length " +
                        std::to_string(len));
    }
    if (bytes.size() - off - sizeof(u32) < static_cast<usize>(len) + sizeof(u32)) {
      replay.torn_tail = true;  // torn mid-payload or mid-trailer
      break;
    }
    const char* payload = bytes.data() + off + sizeof(u32);
    u32 stored = 0;
    std::memcpy(&stored, payload + len, sizeof(stored));
    if (crc32(payload, len) != stored) {
      throw FormatError(
          "checkpoint journal corrupted: entry checksum mismatch (bit flip or "
          "overwrite); delete the journal to restart the sweep from scratch");
    }
    ByteReader r{payload, len};
    apply_entry(replay, r);
    // `entries` mirrors JournalWriter::entries(): work records only,
    // not the header frame.
    if (len > 0 && static_cast<u8>(payload[0]) != kHeader) ++replay.entries;
    off += sizeof(u32) + len + sizeof(u32);
    replay.valid_bytes = static_cast<i64>(off);
  }
  return replay;
}

JournalReplay read_journal_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw ParseError("cannot open checkpoint journal: " + path);
  return read_journal(is);
}

void verify_journal(const JournalReplay& replay, u64 fingerprint, usize total,
                    index_t K, int arm_count) {
  if (replay.empty()) return;  // fresh start: nothing to contradict
  if (!replay.has_header) {
    throw FormatError("checkpoint journal has entries but no header frame");
  }
  NMDT_CHECK_CONFIG(replay.fingerprint == fingerprint,
                    "checkpoint journal belongs to a different sweep (suite "
                    "fingerprint mismatch: matrix set, K, kernel config, or fault "
                    "plan changed since the journal was written)");
  NMDT_CHECK_CONFIG(replay.total == static_cast<i64>(total) &&
                        replay.k == static_cast<i64>(K) &&
                        replay.arm_count == arm_count,
                    "checkpoint journal header disagrees with the suite being run");
}

std::string journal_summary_json(const JournalReplay& replay,
                                 const std::string& path) {
  usize planned = 0, degenerate = 0, row_errors = 0, arms_done = 0, arm_errors = 0,
        complete = 0;
  for (const auto& [idx, row] : replay.rows) {
    if (row.planned) ++planned;
    if (row.degenerate) ++degenerate;
    if (row.error.has_value()) ++row_errors;
    for (const auto& arm : row.arms) {
      if (!arm.has_value()) continue;
      if (arm->failed()) ++arm_errors;
      else ++arms_done;
    }
    if (replay.arm_count > 0 && row.complete(replay.arm_count)) ++complete;
  }
  std::ostringstream os;
  os << "{\n";
  os << "  \"journal\": \"" << obs::json_escape(path) << "\",\n";
  os << "  \"fingerprint\": \"" << std::hex << replay.fingerprint << std::dec
     << "\",\n";
  os << "  \"total_rows\": " << replay.total << ",\n";
  os << "  \"k\": " << replay.k << ",\n";
  os << "  \"arm_count\": " << replay.arm_count << ",\n";
  os << "  \"entries\": " << replay.entries << ",\n";
  os << "  \"bytes\": " << replay.bytes << ",\n";
  os << "  \"torn_tail\": " << (replay.torn_tail ? "true" : "false") << ",\n";
  os << "  \"rows_planned\": " << planned << ",\n";
  os << "  \"rows_degenerate\": " << degenerate << ",\n";
  os << "  \"rows_failed\": " << row_errors << ",\n";
  os << "  \"rows_complete\": " << complete << ",\n";
  os << "  \"arms_done\": " << arms_done << ",\n";
  os << "  \"arm_errors\": " << arm_errors << "\n";
  os << "}\n";
  return os.str();
}

JournalWriter::JournalWriter(const std::string& path, u64 fingerprint, usize total,
                             index_t K, int arm_count, int checkpoint_interval,
                             bool append)
    : path_(path), interval_(checkpoint_interval) {
  NMDT_CHECK_CONFIG(checkpoint_interval >= 1, "checkpoint interval must be >= 1");
  file_ = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (file_ == nullptr) {
    throw ParseError("cannot open checkpoint journal for writing: " + path);
  }
  if (!append) {
    std::string head(kMagic, sizeof(kMagic));
    const u32 version = kVersion;
    head.append(reinterpret_cast<const char*>(&version), sizeof(version));
    head += frame(header_payload(fingerprint, total, K, arm_count));
    if (std::fwrite(head.data(), 1, head.size(), file_) != head.size()) {
      std::fclose(file_);
      file_ = nullptr;
      throw ParseError("write failed on checkpoint journal: " + path);
    }
    flush();
  }
}

JournalWriter::~JournalWriter() {
  if (file_ == nullptr) return;
  // Best effort: the final checkpoint must land even on unwind paths.
  try {
    flush();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
  std::fclose(file_);
}

void JournalWriter::append(const std::string& payload) {
  const std::string framed = frame(payload);
  bool sync = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
      throw ParseError("write failed on checkpoint journal: " + path_);
    }
    ++entries_;
    if (++unsynced_ >= static_cast<usize>(interval_)) {
      unsynced_ = 0;
      sync = true;
    }
  }
  obs::MetricsRegistry::global().counter("checkpoint.written").add(1);
  obs::MetricsRegistry::global().counter("checkpoint.bytes").add(
      static_cast<i64>(framed.size()));
  if (sync) flush();
}

void JournalWriter::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fflush(file_) != 0) {
    throw ParseError("flush failed on checkpoint journal: " + path_);
  }
#ifdef NMDT_HAVE_FSYNC
  ::fsync(::fileno(file_));
#endif
}

usize JournalWriter::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void JournalWriter::row_planned(usize row, const MatrixProfile& profile) {
  ByteWriter w;
  w.put_u8(kRowPlanned);
  w.put_u32(static_cast<u32>(row));
  put_profile(w, profile);
  append(w.out);
}

void JournalWriter::row_degenerate(usize row) {
  ByteWriter w;
  w.put_u8(kRowDegenerate);
  w.put_u32(static_cast<u32>(row));
  append(w.out);
}

void JournalWriter::row_error(usize row, const std::string& description) {
  ByteWriter w;
  w.put_u8(kRowError);
  w.put_u32(static_cast<u32>(row));
  w.put_str(description);
  append(w.out);
}

void JournalWriter::arm_done(usize row, int arm, double t_ms, double prep_ms) {
  ByteWriter w;
  w.put_u8(kArmDone);
  w.put_u32(static_cast<u32>(row));
  w.put_u8(static_cast<u8>(arm));
  w.put_f64(t_ms);
  w.put_f64(prep_ms);
  append(w.out);
}

void JournalWriter::arm_error(usize row, int arm, const std::string& description) {
  ByteWriter w;
  w.put_u8(kArmError);
  w.put_u32(static_cast<u32>(row));
  w.put_u8(static_cast<u8>(arm));
  w.put_str(description);
  append(w.out);
}

}  // namespace nmdt
