// The top-level public API: profile a sparse matrix, pick the
// algorithm with the SSF heuristic (Sec. 3.1.4), run it on the GPU
// model, and report performance against the baseline — the full
// pipeline behind Fig. 16.
#pragma once

#include <functional>
#include <optional>

#include "analysis/heuristic.hpp"
#include "analysis/profile.hpp"
#include "kernels/spmm.hpp"
#include "matgen/suite.hpp"

namespace nmdt {

struct EngineOptions {
  SpmmConfig spmm = evaluation_config();
  /// SSF decision threshold.  The shipped default was learned by
  /// training on the medium standard suite (bench/fig04_ssf_heuristic
  /// re-derives it); pass a trained value for other workload mixes.
  double ssf_threshold = default_ssf_threshold();
  /// Verify the kernel output against the dense reference (the paper
  /// verifies against cuSPARSE output, Sec. 5.1).
  bool verify = true;
  /// Also run the baseline kernel and report speedup.
  bool run_baseline = true;
  /// Row fraction used to profile A; 1.0 scans the full matrix, smaller
  /// values use sampled SSF estimation (the paper's Sec. 3.1.4 future
  /// work; see analysis/sampling.hpp and bench/ssf_sampling).
  double profile_sample_fraction = 1.0;

  static double default_ssf_threshold();
};

struct SpmmReport {
  MatrixProfile profile;
  Strategy chosen = Strategy::kCStationary;
  KernelKind kernel = KernelKind::kDcsrCStationary;
  SpmmResult result;
  std::optional<SpmmResult> baseline;  ///< CSR C-stationary row-per-warp
  double speedup_vs_baseline = 1.0;
  double max_abs_error = 0.0;  ///< vs dense reference when verify = true
};

class SpmmEngine {
 public:
  explicit SpmmEngine(EngineOptions options = {});

  const EngineOptions& options() const { return options_; }

  /// Profile A, select B- vs C-stationary via SSF, run, report.
  SpmmReport run(const Csr& A, const DenseMatrix& B) const;

  /// Run a specific kernel with this engine's configuration (bypasses
  /// the heuristic).
  SpmmResult run_kernel(KernelKind kind, const Csr& A, const DenseMatrix& B) const;

 private:
  EngineOptions options_;
};

/// One row of a suite sweep: everything Fig. 4 / Fig. 16 plot per
/// matrix.
struct SuiteRow {
  MatrixSpec spec;
  MatrixProfile profile;
  double t_baseline_ms = 0.0;      ///< CSR C-stationary row-per-warp
  double t_dcsr_c_ms = 0.0;        ///< untiled DCSR C-stationary
  double t_online_b_ms = 0.0;      ///< online tiled DCSR B-stationary
  double t_offline_b_ms = 0.0;     ///< offline tiled DCSR B-stationary
  double offline_prep_ms = 0.0;    ///< tiling preprocessing cost

  double ratio_c_over_b() const { return t_dcsr_c_ms / t_online_b_ms; }
  double speedup_c_arm() const { return t_baseline_ms / t_dcsr_c_ms; }
  double speedup_online_b_arm() const { return t_baseline_ms / t_online_b_ms; }
  double speedup_offline_b_arm() const { return t_baseline_ms / t_offline_b_ms; }
};

using SuiteProgress = std::function<void(usize done, usize total, const SuiteRow&)>;

/// Run the four Fig. 16 kernels over a suite with dense B of K columns.
std::vector<SuiteRow> run_suite(std::span<const MatrixSpec> specs, const SpmmConfig& cfg,
                                index_t K, const SuiteProgress& progress = {});

/// Derive the SSF threshold from completed suite rows (the Fig. 4
/// training pass).
SsfThreshold train_threshold(std::span<const SuiteRow> rows);

}  // namespace nmdt
