// The top-level public API: profile a sparse matrix, pick the
// algorithm with the SSF heuristic (Sec. 3.1.4), run it on the GPU
// model, and report performance against the baseline — the full
// pipeline behind Fig. 16.
//
// Since the Plan → Cache → Execute split (DESIGN.md), the engine is a
// thin composition: planning (core/plan.hpp) captures everything
// derivable from A alone and is memoized in a per-engine PlanCache, so
// repeated run() calls against the same A — the multi-vector pattern of
// Sec. 2 — skip profiling and format conversion entirely; execution
// (core/executor.hpp) runs the cached plan against each B block.
#pragma once

#include <memory>
#include <optional>

#include "core/executor.hpp"
#include "core/plan.hpp"
#include "transform/comparator.hpp"

namespace nmdt {

struct EngineOptions {
  SpmmConfig spmm = evaluation_config();
  /// SSF decision threshold.  The shipped default was learned by
  /// training on the medium standard suite (bench/fig04_ssf_heuristic
  /// re-derives it); pass a trained value for other workload mixes.
  double ssf_threshold = default_ssf_threshold();
  /// Verify the kernel output against the dense reference (the paper
  /// verifies against cuSPARSE output, Sec. 5.1).  At the canonical f32
  /// precision the comparison is the historical exact max-abs-diff
  /// check; at other precisions the binary64 reference is compared
  /// under the fSPMV tolerance bound (transform/comparator.hpp) with
  /// `verify_eps`.
  bool verify = true;
  /// Tolerance for non-f32 verification; <= 0 uses the precision's
  /// default_tolerance().
  double verify_eps = 0.0;
  /// Also run the baseline kernel and report speedup.
  bool run_baseline = true;
  /// Row fraction used to profile A; 1.0 scans the full matrix, smaller
  /// values use sampled SSF estimation (the paper's Sec. 3.1.4 future
  /// work; see analysis/sampling.hpp and bench/ssf_sampling).
  double profile_sample_fraction = 1.0;
  /// Byte budget of the per-engine plan cache; <= 0 disables caching
  /// (every run() builds a one-shot plan).
  i64 plan_cache_bytes = PlanCache::kDefaultByteBudget;

  static double default_ssf_threshold() { return ::nmdt::default_ssf_threshold(); }
};

struct SpmmReport {
  MatrixProfile profile;
  Strategy chosen = Strategy::kCStationary;
  KernelKind kernel = KernelKind::kDcsrCStationary;
  SpmmResult result;
  std::optional<SpmmResult> baseline;  ///< CSR C-stationary row-per-warp
  double speedup_vs_baseline = 1.0;
  double max_abs_error = 0.0;  ///< vs dense reference when verify = true
  /// Tolerance verdict of the fSPMV-bound comparison; engaged only for
  /// non-f32 runs with verify = true (f32 keeps the exact check above).
  std::optional<ToleranceVerdict> tolerance;
  /// True when the plan (profile + conversions) came from the cache —
  /// i.e. this call performed no profiling or format conversion.
  bool plan_cache_hit = false;
  /// Host wall-clock spent planning for this call (0 on a cache hit).
  double plan_build_ms = 0.0;
};

class SpmmEngine {
 public:
  explicit SpmmEngine(EngineOptions options = {});

  const EngineOptions& options() const { return options_; }

  /// Profile A (via the plan cache), select B- vs C-stationary via SSF,
  /// run, report.
  SpmmReport run(const Csr& A, const DenseMatrix& B) const;

  /// Run a specific kernel with this engine's configuration (bypasses
  /// the heuristic and the plan cache — one-shot conversion).
  SpmmResult run_kernel(KernelKind kind, const Csr& A, const DenseMatrix& B) const;

  /// The plan this engine would execute for A, from the cache when
  /// resident.  Exposed so callers can amortize explicitly (e.g. plan
  /// during setup, execute per block).  `was_hit` (optional) reports
  /// whether the cache served it.
  std::shared_ptr<const SpmmPlan> plan_for(const Csr& A, bool* was_hit = nullptr) const;

  /// Hit/miss/eviction counters of the engine's plan cache (all zero
  /// when caching is disabled).
  PlanCacheStats cache_stats() const;

 private:
  PlanOptions plan_options() const;

  EngineOptions options_;
  std::shared_ptr<PlanCache> cache_;  ///< null when plan_cache_bytes <= 0
};

}  // namespace nmdt
