// The online-conversion API of paper Fig. 11.
//
// Device code keeps a per-strip `col_frontier` array (initialized to
// zero) and calls GetDCSRTile once per DCSR_HEIGHT rows; the intrinsic
// ships the frontier to the FB-partition conversion unit, which returns
// the tile in DCSR form together with its nnzrows/nnz counts and the
// advanced frontier.  `col_frontier[l]` holds the *within-column* offset
// of strip column l (so an all-zero array means "start of the strip",
// matching the Fig. 11 initialization).
#pragma once

#include <span>

#include "formats/csc.hpp"
#include "formats/tiling.hpp"
#include "transform/engine.hpp"

namespace nmdt {

struct DcsrTileHandle {
  DcsrTile tile;
  index_t nnzrows = 0;
  i64 nnz = 0;
};

/// Convert rows [row_start, row_start + spec.tile_height) of vertical
/// strip `strip_id` from `csc` into a DCSR tile.  `col_frontier` must
/// have one entry per strip column and is advanced past the consumed
/// elements.  Sequential calls down a strip (row_start += tile_height,
/// as in the Fig. 11 loop) convert the whole strip in one pass.
DcsrTileHandle GetDCSRTile(const Csc& csc, index_t strip_id, index_t row_start,
                           std::span<index_t> col_frontier, const TilingSpec& spec,
                           ConversionEngine& engine);

}  // namespace nmdt
