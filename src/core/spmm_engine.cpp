#include "core/spmm_engine.hpp"

#include "formats/retype.hpp"
#include "util/error.hpp"

namespace nmdt {

SpmmEngine::SpmmEngine(EngineOptions options) : options_(std::move(options)) {
  options_.spmm.arch.validate();
  options_.spmm.tiling.validate();
  NMDT_CHECK_CONFIG(
      options_.profile_sample_fraction > 0.0 && options_.profile_sample_fraction <= 1.0,
      "profile_sample_fraction must be in (0, 1]");
  if (options_.plan_cache_bytes > 0) {
    cache_ = std::make_shared<PlanCache>(options_.plan_cache_bytes);
  }
}

PlanOptions SpmmEngine::plan_options() const {
  return {options_.spmm.tiling, options_.ssf_threshold, options_.profile_sample_fraction,
          options_.spmm.precision};
}

std::shared_ptr<const SpmmPlan> SpmmEngine::plan_for(const Csr& A, bool* was_hit) const {
  if (cache_) return cache_->get_or_build(A, plan_options(), was_hit);
  if (was_hit) *was_hit = false;
  return build_plan(A, plan_options());
}

PlanCacheStats SpmmEngine::cache_stats() const {
  return cache_ ? cache_->stats() : PlanCacheStats{};
}

SpmmResult SpmmEngine::run_kernel(KernelKind kind, const Csr& A,
                                  const DenseMatrix& B) const {
  return run_spmm(kind, A, B, options_.spmm);
}

SpmmReport SpmmEngine::run(const Csr& A, const DenseMatrix& B) const {
  SpmmReport report;
  const auto plan = plan_for(A, &report.plan_cache_hit);
  report.plan_build_ms = report.plan_cache_hit ? 0.0 : plan->build_ms();
  report.profile = plan->profile();
  report.chosen = plan->strategy();
  report.kernel = plan->kernel();

  const SpmmExecutor executor(options_.spmm);
  report.result = executor.execute(*plan, B);

  if (options_.verify) {
    if (options_.spmm.precision == Precision::kF32) {
      // The historical exact path, untouched: f32 kernels are bitwise
      // deterministic against the f32 reference.
      const DenseMatrix ref = spmm_reference(A, B);
      report.max_abs_error = report.result.C.max_abs_diff(ref);
    } else {
      // Cross-precision verification: widen everything to binary64 and
      // apply the fSPMV bound with per-row accumulation headroom.
      dispatch_precision(options_.spmm.precision, [&](auto tag) {
        using V = typename decltype(tag)::type;
        const CsrT<V>& a = plan->operands_at<V>().csr;
        const DenseMatrixT<V> b = retype<V>(B);
        const DenseMatrixT<double> ref = spmm_reference_f64(a, b);
        const DenseMatrixT<double> actual = options_.spmm.precision == Precision::kF64
                                                ? report.result.C64
                                                : retype<double>(report.result.C);
        report.max_abs_error = actual.max_abs_diff(ref);
        const double eps = options_.verify_eps > 0.0
                               ? options_.verify_eps
                               : default_tolerance(options_.spmm.precision);
        report.tolerance = ToleranceComparator(eps).compare(ref, actual, a, b);
      });
    }
  }
  if (options_.run_baseline) {
    report.baseline = executor.execute(KernelKind::kCsrCStationaryRowWarp, *plan, B);
    if (report.result.timing.total_ns > 0.0) {
      report.speedup_vs_baseline =
          report.baseline->timing.total_ns / report.result.timing.total_ns;
    }
  }
  return report;
}

}  // namespace nmdt
